// Command figures regenerates every table and figure of the paper's
// evaluation, plus the comparison and ablation experiments listed in
// DESIGN.md.
//
// Usage:
//
//	figures -all                  # everything (the Table 1 sweep takes minutes)
//	figures -fig 3                # one figure (1..6)
//	figures -table 1              # Table 1
//	figures -gran -ft -dib        # selected extra experiments
//	figures -seed 7               # change the deterministic seed
//	figures -quick                # smaller processor counts for Table 1 / Figure 4
package main

import (
	"flag"
	"fmt"
	"os"

	"gossipbnb/internal/exp"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "regenerate figure N (1..6)")
		table   = flag.Int("table", 0, "regenerate table N (1)")
		gran    = flag.Bool("gran", false, "granularity sweep (§6.3.1)")
		ft      = flag.Bool("ft", false, "fault-tolerance scenario matrix")
		dib     = flag.Bool("dib", false, "comparison with DIB (§5.5)")
		central = flag.Bool("central", false, "centralized manager-worker baseline (§3)")
		membr   = flag.Bool("member", false, "membership protocol under churn (§5.2)")
		ablate  = flag.String("ablation", "", "ablation: report, recovery, compress, select, or adaptive")
		diffb   = flag.Bool("diffbytes", false, "anti-entropy diff gossip vs full-frontier wire bytes")
		all     = flag.Bool("all", false, "run everything")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		quick   = flag.Bool("quick", false, "smaller sweeps for Table 1 / Figure 4")
	)
	flag.Parse()

	out := os.Stdout
	ran := false
	section := func(name string) {
		fmt.Fprintf(out, "\n=== %s ===\n\n", name)
		ran = true
	}

	if *all || *fig == 1 {
		section("Figure 1")
		exp.Figure1(out)
	}
	if *all || *fig == 2 {
		section("Figure 2")
		exp.Figure2(out)
	}
	if *all || *fig == 3 {
		section("Figure 3")
		exp.RenderFigure3(out, exp.Figure3(*seed))
	}
	if *all || *table == 1 {
		section("Table 1")
		procs := exp.Table1Procs
		if *quick {
			procs = []int{10, 30, 50}
		}
		exp.RenderTable1(out, exp.Table1(*seed, procs))
	}
	if *all || *fig == 4 {
		section("Figure 4")
		if *quick {
			exp.RenderFigure4(out, exp.Table1(*seed, []int{10, 20, 40, 70, 100}))
		} else {
			exp.RenderFigure4(out, exp.Figure4(*seed))
		}
	}
	if *all || *fig == 5 {
		section("Figure 5")
		exp.RenderGantt(out, "Figure 5: very small problem, 3 processors, no failures", exp.Figure5(*seed))
	}
	if *all || *fig == 6 {
		section("Figure 6")
		exp.RenderGantt(out,
			"Figure 6: same problem, two processors crash at ~85%; the survivor recovers",
			exp.Figure6(*seed))
	}
	if *all || *gran {
		section("Granularity sweep")
		exp.RenderGranularity(out, exp.Granularity(*seed))
	}
	if *all || *ft {
		section("Fault tolerance")
		exp.RenderFaultTolerance(out, exp.FaultTolerance(*seed))
	}
	if *all || *dib {
		section("DIB comparison")
		exp.RenderDIBComparison(out, exp.DIBComparison(*seed))
	}
	if *all || *central {
		section("Centralized baseline")
		exp.RenderCentralized(out, exp.Centralized(*seed))
	}
	if *all || *membr {
		section("Membership protocol")
		exp.RenderMembership(out, exp.Membership(*seed))
	}
	if *all || *diffb {
		section("Diff gossip: wire bytes")
		exp.RenderDiffBytes(out, exp.DiffBytes(*seed))
	}
	if *all || *ablate == "report" {
		section("Ablation: report policy")
		exp.RenderAblationReportPolicy(out, exp.AblationReportPolicy(*seed))
	}
	if *all || *ablate == "recovery" {
		section("Ablation: recovery trigger")
		exp.RenderAblationRecoveryPatience(out, exp.AblationRecoveryPatience(*seed))
	}
	if *all || *ablate == "compress" {
		section("Ablation: report compression")
		exp.RenderAblationCompression(out, exp.AblationCompression(*seed))
	}
	if *all || *ablate == "select" {
		section("Ablation: selection rule")
		exp.RenderAblationSelectRule(out, exp.AblationSelectRule(*seed))
	}
	if *all || *ablate == "adaptive" {
		section("Ablation: adaptive reports")
		exp.RenderAblationAdaptiveReports(out, exp.AblationAdaptiveReports(*seed))
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
