// Command benchsnap converts `go test -bench` output on stdin into the
// JSON snapshot format of BENCH_baseline.json, so perf PRs have a committed
// trajectory to compare against. With -benchmem in the bench run, the
// snapshot also records B/op and allocs/op.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x -run '^$' . | go run ./cmd/benchsnap > BENCH_baseline.json
//
// With -baseline, the fresh snapshot is compared entry-by-entry against a
// committed baseline and a per-benchmark ratio table is printed to stderr
// (the JSON still goes to stdout). Wall-clock ratios move with hardware, so
// CI treats the table as informational; allocs/op is hardware-independent
// and is the number to watch.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Snapshot is the committed baseline: one entry per benchmark. Wall-clock
// numbers move with hardware, so comparisons should read ratios between
// entries of the same snapshot against ratios in a new one, not absolute
// times across machines. allocs/op and B/op are machine-independent.
type Snapshot struct {
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark measurement. BytesPerOp and AllocsPerOp are -1 when
// the bench run did not pass -benchmem.
type Bench struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	SecPerOp    float64 `json:"sec_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)
	metaLine  = regexp.MustCompile(`^(goos|goarch): (\S+)`)
)

func main() {
	baseline := flag.String("baseline", "", "committed snapshot JSON to compare against (ratio table on stderr)")
	flag.Parse()

	snap := Snapshot{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := metaLine.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				snap.GOOS = m[2]
			case "goarch":
				snap.GOARCH = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// m[2] is the GOMAXPROCS suffix (-8), stripped so snapshots from
		// machines with different core counts stay comparable by name.
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		b := Bench{
			Name: m[1], Iters: iters, NsPerOp: ns, SecPerOp: ns / 1e9,
			BytesPerOp: -1, AllocsPerOp: -1,
		}
		if m[5] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			b.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *baseline != "" {
		if err := compare(os.Stderr, snap, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

// compare prints a per-benchmark ratio table of the fresh snapshot against
// the committed baseline: ratio < 1 means the fresh run is better (faster,
// fewer allocations).
func compare(w *os.File, snap Snapshot, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	byName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(w, "--- vs %s (ratio this/baseline; <1 is better; ns ratios move with hardware, allocs do not) ---\n", path)
	fmt.Fprintf(w, "%-44s %14s %12s %14s %12s\n", "benchmark", "ns/op", "ns ratio", "allocs/op", "alloc ratio")
	seen := make(map[string]bool, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		seen[b.Name] = true
		old, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14.0f %12s %14s %12s\n", b.Name, b.NsPerOp, "new", allocs(b), "new")
			continue
		}
		nsRatio := "n/a"
		if old.NsPerOp > 0 {
			nsRatio = fmt.Sprintf("%.2f", b.NsPerOp/old.NsPerOp)
		}
		// -1 means the run lacked -benchmem; a measured 0 is real data, and a
		// 0 → N move is precisely the regression the table exists to show.
		allocRatio := "n/a"
		switch {
		case old.AllocsPerOp > 0 && b.AllocsPerOp >= 0:
			allocRatio = fmt.Sprintf("%.2f", float64(b.AllocsPerOp)/float64(old.AllocsPerOp))
		case old.AllocsPerOp == 0 && b.AllocsPerOp > 0:
			allocRatio = "+inf"
		case old.AllocsPerOp == 0 && b.AllocsPerOp == 0:
			allocRatio = "1.00"
		}
		fmt.Fprintf(w, "%-44s %14.0f %12s %14s %12s\n", b.Name, b.NsPerOp, nsRatio, allocs(b), allocRatio)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "%-44s %43s\n", b.Name, "MISSING from this run")
		}
	}
	return nil
}

func allocs(b Bench) string {
	if b.AllocsPerOp < 0 {
		return "n/a"
	}
	return strconv.FormatInt(b.AllocsPerOp, 10)
}
