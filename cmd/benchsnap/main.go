// Command benchsnap converts `go test -bench` output on stdin into the
// JSON snapshot format of BENCH_baseline.json, so perf PRs have a committed
// trajectory to compare against.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run '^$' . | go run ./cmd/benchsnap > BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Snapshot is the committed baseline: one entry per benchmark, nanoseconds
// per op. Wall-clock numbers move with hardware, so comparisons should read
// ratios between entries of the same snapshot against ratios in a new one,
// not absolute times across machines.
type Snapshot struct {
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark measurement.
type Bench struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	SecPerOp float64 `json:"sec_per_op"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)
	metaLine  = regexp.MustCompile(`^(goos|goarch): (\S+)`)
)

func main() {
	snap := Snapshot{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := metaLine.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				snap.GOOS = m[2]
			case "goarch":
				snap.GOARCH = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// m[2] is the GOMAXPROCS suffix (-8), stripped so snapshots from
		// machines with different core counts stay comparable by name.
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		snap.Benchmarks = append(snap.Benchmarks, Bench{
			Name: m[1], Iters: iters, NsPerOp: ns, SecPerOp: ns / 1e9,
		})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}
