// Command benchsnap converts `go test -bench` output on stdin into the
// JSON snapshot format of BENCH_baseline.json, so perf PRs have a committed
// trajectory to compare against. With -benchmem in the bench run, the
// snapshot also records B/op and allocs/op.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x -run '^$' . | go run ./cmd/benchsnap > BENCH_baseline.json
//
// With -baseline, the fresh snapshot is compared entry-by-entry against a
// committed baseline and a per-benchmark ratio table is printed to stderr
// (the JSON still goes to stdout). Wall-clock ratios move with hardware, so
// the table is informational by default; allocs/op is hardware-independent
// and is the number to watch.
//
// With -gate (requires -baseline), the comparison becomes a CI gate: the
// command exits non-zero when any benchmark regresses past a threshold —
// allocs/op ratio above -gate-allocs (default 1.5), or ns/op ratio above
// -gate-ns (default 1.5) for benchmarks whose baseline is at least
// -gate-min-ns (default 50 ms; shorter benches are one-iteration timing
// noise, so only their allocations are gated), or wire-B/op ratio above
// -gate-bytes (default 1.5) for benchmarks that report the custom wire-B/op
// metric (seeded simulated runs, so the ratio is machine-independent — a
// wire-cost regression in the gossip protocol fails CI like an allocation
// regression does). A benchmark present in the baseline but missing from
// the run also fails the gate: silently dropping a benchmark must not pass.
//
// With -gate-parallel R (no baseline needed), the command additionally
// compares sibling benchmarks WITHIN the fresh run: for every pair
// <X>/shards=cpu and <X>/shards=1, the cpu variant must not be slower than
// R times the serial variant — the "parallelism must not be a pessimization"
// gate. The check is skipped (with a note) when the run's GOMAXPROCS is 1,
// where the two variants are the same configuration up to barrier overhead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Snapshot is the committed baseline: one entry per benchmark. Wall-clock
// numbers move with hardware, so comparisons should read ratios between
// entries of the same snapshot against ratios in a new one, not absolute
// times across machines. allocs/op and B/op are machine-independent.
type Snapshot struct {
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark measurement. BytesPerOp and AllocsPerOp are -1 when
// the bench run did not pass -benchmem.
type Bench struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	SecPerOp    float64 `json:"sec_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// WireBPerOp is the custom wire-B/op metric (simulated network payload
	// bytes per run) reported by BenchmarkReportBytes; -1 when absent. Fully
	// seeded runs make it exact and machine-independent.
	WireBPerOp float64 `json:"wire_b_per_op"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.e+]+) wire-B/op)?(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)
	metaLine  = regexp.MustCompile(`^(goos|goarch): (\S+)`)
)

func main() {
	baseline := flag.String("baseline", "", "committed snapshot JSON to compare against (ratio table on stderr)")
	gate := flag.Bool("gate", false, "exit non-zero when any benchmark regresses past the -gate-* thresholds (requires -baseline)")
	gateNs := flag.Float64("gate-ns", 1.5, "max allowed ns/op ratio vs baseline")
	gateAllocs := flag.Float64("gate-allocs", 1.5, "max allowed allocs/op ratio vs baseline")
	gateBytes := flag.Float64("gate-bytes", 1.5, "max allowed wire-B/op ratio vs baseline (seeded runs: machine-independent)")
	gateMinNs := flag.Float64("gate-min-ns", 50e6, "skip the ns/op gate for benchmarks whose baseline ns/op is below this")
	gatePar := flag.Float64("gate-parallel", 0, "when > 0, fail if any <X>/shards=cpu bench is slower than this ratio times its <X>/shards=1 sibling (skipped at GOMAXPROCS=1)")
	flag.Parse()
	if *gate && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchsnap: -gate requires -baseline")
		os.Exit(2)
	}

	snap := Snapshot{}
	maxprocs := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := metaLine.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				snap.GOOS = m[2]
			case "goarch":
				snap.GOARCH = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// m[2] is the GOMAXPROCS suffix (-8), stripped so snapshots from
		// machines with different core counts stay comparable by name (but
		// remembered: the parallel gate is meaningless on one CPU).
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2][1:]); err == nil && p > maxprocs {
				maxprocs = p
			}
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		b := Bench{
			Name: m[1], Iters: iters, NsPerOp: ns, SecPerOp: ns / 1e9,
			BytesPerOp: -1, AllocsPerOp: -1, WireBPerOp: -1,
		}
		if m[5] != "" {
			b.WireBPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[6], 10, 64)
			b.AllocsPerOp, _ = strconv.ParseInt(m[7], 10, 64)
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}
	var violations []string
	if *baseline != "" {
		var err error
		violations, err = compare(os.Stderr, snap, *baseline, gateThresholds{
			ns: *gateNs, allocs: *gateAllocs, bytes: *gateBytes, minNs: *gateMinNs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if *gatePar > 0 {
		violations = append(violations, parallelGate(os.Stderr, snap, maxprocs, *gatePar)...)
	}
	if (*gate || *gatePar > 0) && len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: bench gate FAILED (%d violation(s)):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(3)
	}
}

// parallelGate checks, within one snapshot, that every <X>/shards=cpu
// benchmark is no slower than ratio times its <X>/shards=1 sibling.
func parallelGate(w *os.File, snap Snapshot, maxprocs int, ratio float64) []string {
	if maxprocs <= 1 {
		fmt.Fprintln(w, "benchsnap: parallel gate skipped — bench run used GOMAXPROCS=1, shards=cpu and shards=1 are the same configuration")
		return nil
	}
	byName := make(map[string]Bench, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	var violations []string
	const cpuSuffix, serialSuffix = "/shards=cpu", "/shards=1"
	for _, b := range snap.Benchmarks {
		if len(b.Name) <= len(cpuSuffix) || b.Name[len(b.Name)-len(cpuSuffix):] != cpuSuffix {
			continue
		}
		serial, ok := byName[b.Name[:len(b.Name)-len(cpuSuffix)]+serialSuffix]
		if !ok || serial.NsPerOp <= 0 {
			continue
		}
		r := b.NsPerOp / serial.NsPerOp
		fmt.Fprintf(w, "benchsnap: parallel %-40s %.2fx vs shards=1 (gate %.2f)\n", b.Name, r, ratio)
		if r > ratio {
			violations = append(violations, fmt.Sprintf(
				"%s: %.2fx slower than its shards=1 sibling (limit %.2f) — parallelism is a pessimization", b.Name, r, ratio))
		}
	}
	return violations
}

// gateThresholds are the regression limits the gate enforces.
type gateThresholds struct {
	ns     float64 // max ns/op ratio
	allocs float64 // max allocs/op ratio
	bytes  float64 // max wire-B/op ratio
	minNs  float64 // baseline ns/op floor below which the ns gate is skipped
}

// compare prints a per-benchmark ratio table of the fresh snapshot against
// the committed baseline (ratio < 1 means the fresh run is better: faster,
// fewer allocations) and returns the list of gate violations under th.
func compare(w *os.File, snap Snapshot, path string, th gateThresholds) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	byName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var violations []string
	fmt.Fprintf(w, "--- vs %s (ratio this/baseline; <1 is better; ns ratios move with hardware, allocs do not) ---\n", path)
	fmt.Fprintf(w, "%-44s %14s %12s %14s %12s %14s %12s\n", "benchmark", "ns/op", "ns ratio", "allocs/op", "alloc ratio", "wire-B/op", "wire ratio")
	seen := make(map[string]bool, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		seen[b.Name] = true
		old, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14.0f %12s %14s %12s %14s %12s\n", b.Name, b.NsPerOp, "new", allocs(b), "new", wire(b), "new")
			continue
		}
		nsRatio := "n/a"
		if old.NsPerOp > 0 {
			r := b.NsPerOp / old.NsPerOp
			nsRatio = fmt.Sprintf("%.2f", r)
			if r > th.ns && old.NsPerOp >= th.minNs {
				violations = append(violations, fmt.Sprintf(
					"%s: ns/op ratio %.2f exceeds %.2f (%.0f → %.0f)", b.Name, r, th.ns, old.NsPerOp, b.NsPerOp))
			}
		}
		// -1 means the run lacked -benchmem; a measured 0 is real data, and a
		// 0 → N move is precisely the regression the table exists to show.
		allocRatio := "n/a"
		switch {
		case old.AllocsPerOp > 0 && b.AllocsPerOp >= 0:
			r := float64(b.AllocsPerOp) / float64(old.AllocsPerOp)
			allocRatio = fmt.Sprintf("%.2f", r)
			if r > th.allocs {
				violations = append(violations, fmt.Sprintf(
					"%s: allocs/op ratio %.2f exceeds %.2f (%d → %d)", b.Name, r, th.allocs, old.AllocsPerOp, b.AllocsPerOp))
			}
		case old.AllocsPerOp == 0 && b.AllocsPerOp > 0:
			allocRatio = "+inf"
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op regressed from 0 to %d", b.Name, b.AllocsPerOp))
		case old.AllocsPerOp == 0 && b.AllocsPerOp == 0:
			allocRatio = "1.00"
		case old.AllocsPerOp >= 0 && b.AllocsPerOp < 0:
			// The baseline has allocation data but this run was made without
			// -benchmem. Letting that pass would silently disable the
			// machine-independent half of the gate.
			violations = append(violations, fmt.Sprintf(
				"%s: baseline has allocs/op but this run measured none (missing -benchmem?)", b.Name))
		}
		// Wire bytes come from fully seeded runs, so like allocs/op the
		// ratio is machine-independent; unlike allocs/op a measured value
		// disappearing (old recorded, new absent) just means the bench run
		// skipped BenchmarkReportBytes — the missing-benchmark check below
		// already covers a dropped benchmark, so no extra violation here.
		wireRatio := "n/a"
		if old.WireBPerOp > 0 && b.WireBPerOp >= 0 {
			r := b.WireBPerOp / old.WireBPerOp
			wireRatio = fmt.Sprintf("%.2f", r)
			if r > th.bytes {
				violations = append(violations, fmt.Sprintf(
					"%s: wire-B/op ratio %.2f exceeds %.2f (%.0f \u2192 %.0f)", b.Name, r, th.bytes, old.WireBPerOp, b.WireBPerOp))
			}
		}
		fmt.Fprintf(w, "%-44s %14.0f %12s %14s %12s %14s %12s\n", b.Name, b.NsPerOp, nsRatio, allocs(b), allocRatio, wire(b), wireRatio)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "%-44s %43s\n", b.Name, "MISSING from this run")
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from this run", b.Name))
		}
	}
	return violations, nil
}

func wire(b Bench) string {
	if b.WireBPerOp < 0 {
		return "n/a"
	}
	return strconv.FormatFloat(b.WireBPerOp, 'f', 0, 64)
}

func allocs(b Bench) string {
	if b.AllocsPerOp < 0 {
		return "n/a"
	}
	return strconv.FormatInt(b.AllocsPerOp, 10)
}
