// Command dbbsim runs one simulated scenario of the decentralized
// fault-tolerant B&B algorithm and prints its measurements.
//
// Usage:
//
//	dbbsim -procs 16 -size 10000 -mean 0.05                 # generated tree
//	dbbsim -procs 16 -tree tree.gbbt                        # saved tree
//	dbbsim -procs 8 -problem knapsack:20:7 -prune           # real problem,
//	dbbsim -procs 8 -problem qap:6:1 -prune                 #  no tree on disk
//	dbbsim -procs 8 -crash 30:3 -crash 40:5 -loss 0.05      # fault injection
//	dbbsim -procs 8 -crash 30:3:60 -dup 0.2 -reorder 0.3    # restart + chaos
//	dbbsim -procs 8 -nemesis partition:10-20:0,1 -prune     # scheduled faults
//	dbbsim -procs 8 -nemesis flap:0-2:4:0-30                #  (live grammar)
//	dbbsim -procs 4 -join 25:4                              # double mid-solve
//	dbbsim -procs 3 -gantt                                  # ASCII Gantt
//	dbbsim -procs 16 -membership                            # §5.2 protocol on
//	dbbsim -procs 8 -instances 4 -prune                     # 4 concurrent
//	                                                        #  problem instances
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
	"gossipbnb/internal/dbnb"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/nemesis"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/trace"
)

// crashList collects repeated -crash TIME:NODE[:RESTART] flags.
type crashList []dbnb.Crash

func (c *crashList) String() string { return fmt.Sprint(*c) }

func (c *crashList) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return fmt.Errorf("want TIME:NODE or TIME:NODE:RESTART, got %q", s)
	}
	t, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return fmt.Errorf("bad crash time in %q: %v", s, err)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad crash node in %q: %v", s, err)
	}
	cr := dbnb.Crash{Time: t, Node: n}
	if len(parts) == 3 {
		if cr.Restart, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return fmt.Errorf("bad restart time in %q: %v", s, err)
		}
		if cr.Restart <= cr.Time {
			return fmt.Errorf("restart time %g must be after crash time %g in %q", cr.Restart, cr.Time, s)
		}
	}
	*c = append(*c, cr)
	return nil
}

// joinList collects repeated -join TIME:COUNT flags — elastic membership,
// the converse of -crash.
type joinList []dbnb.Join

func (j *joinList) String() string { return fmt.Sprint(*j) }

func (j *joinList) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return fmt.Errorf("want TIME:COUNT, got %q", s)
	}
	t, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return fmt.Errorf("bad join time in %q: %v", s, err)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad join count in %q: %v", s, err)
	}
	if n <= 0 {
		return fmt.Errorf("join count must be positive in %q", s)
	}
	*j = append(*j, dbnb.Join{Time: t, Count: n})
	return nil
}

// nemesisList collects repeated -nemesis FAULT flags in the live runtime's
// fault grammar (internal/nemesis) and maps them onto the simulator's
// group-partition network model at parse time, so an unsupported spec fails
// at the command line, not mid-run.
type nemesisList struct {
	specs []string
	parts []dbnb.Partition
}

func (n *nemesisList) String() string { return strings.Join(n.specs, " ") }

func (n *nemesisList) Set(s string) error {
	f, err := nemesis.Parse(s)
	if err != nil {
		return err
	}
	ps, err := faultPartitions(f)
	if err != nil {
		return err
	}
	n.specs = append(n.specs, s)
	n.parts = append(n.parts, ps...)
	return nil
}

// faultPartitions maps one nemesis fault onto simulator partition windows.
// The simulator's only network fault is the group partition (Group isolated
// from everyone else for a window), so: partition and stall map directly on
// side A; a flap becomes its series of down half-periods (requiring a
// bounded window); oneway, slow, and corrupt have no simulator analogue and
// are rejected as live-only.
func faultPartitions(f nemesis.Fault) ([]dbnb.Partition, error) {
	end := math.Inf(1)
	if f.End > 0 {
		end = f.End.Seconds()
	}
	switch f.Kind {
	case nemesis.Partition, nemesis.Stall:
		return []dbnb.Partition{{Start: f.Start.Seconds(), End: end, Group: f.A}}, nil
	case nemesis.Flap:
		if f.End <= 0 {
			return nil, fmt.Errorf("flap needs a bounded window in the simulator (got %s): its down half-periods are enumerated up front", f)
		}
		// Approximation: the simulator cannot cut one link, so each down
		// half-period isolates side A from everyone.
		var ps []dbnb.Partition
		for t := f.Start; t < f.End; t += f.Period {
			down := t + f.Period/2
			if down > f.End {
				down = f.End
			}
			ps = append(ps, dbnb.Partition{Start: t.Seconds(), End: down.Seconds(), Group: f.A})
		}
		return ps, nil
	default:
		return nil, fmt.Errorf("%v faults are live-only: the simulator's network model has no per-link delay, direction, or payload damage (got %s)", f.Kind, f)
	}
}

// validateFlags rejects mutually inconsistent flag combinations up front,
// with an error naming both sides — previously some combinations silently
// ignored one flag (an explicit -shards with -membership or -gantt fell back
// to the serial kernel without a word).
func validateFlags(insts int, problem, treePath string, member, gantt bool, shards int, joins joinList) error {
	if insts < 0 {
		return fmt.Errorf("-instances must be >= 0, got %d", insts)
	}
	if problem != "" && treePath != "" {
		return fmt.Errorf("-problem and -tree are mutually exclusive")
	}
	if insts > 0 {
		switch {
		case problem != "":
			return fmt.Errorf("-instances and -problem are mutually exclusive: -instances generates its own problems")
		case treePath != "":
			return fmt.Errorf("-instances and -tree are mutually exclusive: multi-instance runs are code-driven")
		case member:
			return fmt.Errorf("-instances does not support -membership: multi-instance runs use the predetermined pool")
		case gantt:
			return fmt.Errorf("-instances does not support -gantt")
		case len(joins) > 0:
			return fmt.Errorf("-instances does not support -join")
		}
	}
	if shards >= 0 { // an explicit request for the sharded kernel
		if member {
			return fmt.Errorf("-shards and -membership are mutually exclusive: membership state cannot be partitioned (drop -shards for the serial kernel)")
		}
		if gantt {
			return fmt.Errorf("-shards and -gantt are mutually exclusive: tracing runs on the serial kernel (drop -shards)")
		}
	}
	return nil
}

func main() { os.Exit(run()) }

// run is main's body behind an exit code, so the profile-finalizing defers
// complete before the process exits.
func run() int {
	log.SetFlags(0)
	log.SetPrefix("dbbsim: ")
	var crashes crashList
	var joins joinList
	var nemeses nemesisList
	var (
		procs    = flag.Int("procs", 8, "number of processes")
		shards   = flag.Int("shards", -1, "parallel event shards: N >= 1 exact, 0 = one per CPU, -1 = legacy serial kernel")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		treePath = flag.String("tree", "", "basic-tree file (else a tree is generated)")
		problem  = flag.String("problem", "", "solve a real problem from initial data, no recorded tree: knapsack:<n>:<seed> or qap:<n>:<seed>")
		nodeCost = flag.Float64("nodecost", 0, "-problem mode: modeled seconds per expansion (0 = default)")
		size     = flag.Int("size", 10001, "generated tree size")
		mean     = flag.Float64("mean", 0.05, "generated mean node cost, seconds")
		prune    = flag.Bool("prune", false, "enable incumbent-based elimination")
		loss     = flag.Float64("loss", 0, "message loss probability")
		factor   = flag.Float64("granularity", 1, "node-cost multiplier (§6.3.1)")
		quiet    = flag.Float64("quiet", 0, "recovery quiet window, seconds (0 = default)")
		member   = flag.Bool("membership", false, "run the §5.2 membership protocol")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt of the run")
		dup      = flag.Float64("dup", 0, "message duplication probability")
		reorder  = flag.Float64("reorder", 0, "message reordering probability (bounded hold-back)")
		replay   = flag.Float64("replay", 0, "stale-replay probability (~1 s late)")
		diffG    = flag.Bool("diffgossip", false, "anti-entropy diff gossip: digests + subtree pulls instead of full frontiers")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
		insts    = flag.Int("instances", 0, "multi-instance mode: solve this many concurrent knapsack instances over one cluster")
		instSize = flag.Int("instsize", 13, "multi-instance mode: knapsack items per instance")
		stagger  = flag.Float64("stagger", 5, "multi-instance mode: seconds between instance submissions")
	)
	flag.Var(&crashes, "crash", "crash a process: TIME:NODE, or TIME:NODE:RESTART to reboot it (repeatable)")
	flag.Var(&joins, "join", "add COUNT brand-new processes at TIME: TIME:COUNT (repeatable)")
	flag.Var(&nemeses, "nemesis", "inject a scheduled fault in the live grammar, e.g. partition:10-20:0,1 or flap:0-2:4:0-30 (repeatable; oneway/slow/corrupt are live-only)")
	flag.Parse()

	if err := validateFlags(*insts, *problem, *treePath, *member, *gantt, *shards, joins); err != nil {
		log.Fatal(err)
	}

	// Profiling hooks, so hot-path work on the simulator starts from a
	// profile of a real scenario instead of a guess. Profiles are finalized
	// before the exit-code decision (os.Exit skips defers), so: both files
	// are created — fatally — before any profiling starts, and the deferred
	// finalizers only log.Print, never log.Fatal, lest one finalizer's
	// failure truncate the other profile.
	var cpuFile, memFile *os.File
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		cpuFile = f
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			log.Fatal(err)
		}
		memFile = f
	}
	if cpuFile != nil {
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				log.Print(err)
			}
		}()
	}
	if memFile != nil {
		defer func() {
			runtime.GC() // up-to-date live-heap statistics
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				log.Print(err)
			}
			if err := memFile.Close(); err != nil {
				log.Print(err)
			}
		}()
	}

	var lg *trace.Log
	if *gantt {
		lg = &trace.Log{}
	}
	// CLI shard semantics: -1 (default) is the legacy serial kernel
	// (Config.Shards == 0); 0 asks for one shard per CPU; N >= 1 is exact.
	nshards := *shards
	if nshards == 0 {
		nshards = runtime.GOMAXPROCS(0)
	} else if nshards < 0 {
		nshards = 0
	}
	cfg := dbnb.Config{
		Procs:         *procs,
		Shards:        nshards,
		Seed:          *seed,
		Prune:         *prune,
		Loss:          *loss,
		CostFactor:    *factor,
		NodeCost:      *nodeCost,
		RecoveryQuiet: *quiet,
		UseMembership: *member,
		Crashes:       crashes,
		Joins:         joins,
		Duplicate:     *dup,
		Reorder:       *reorder,
		Replay:        *replay,
		DiffGossip:    *diffG,
		Partitions:    nemeses.parts,
		Trace:         lg,
	}

	if *insts > 0 {
		return runMulti(cfg, *insts, *instSize, *stagger, *seed)
	}

	var res dbnb.Result
	wall := time.Now()
	if *problem != "" {
		p, err := bnb.ParseSpec(*problem)
		if err != nil {
			log.Fatal(err)
		}
		ref := bnb.SolveProblem(p)
		fmt.Printf("problem: %s, sequential optimum %.6g (%d expansions)\n",
			*problem, ref.Value, ref.Expanded)
		res = dbnb.RunProblemRef(p, ref, cfg)
	} else {
		var tree *btree.Tree
		if *treePath != "" {
			var err error
			tree, err = btree.Load(*treePath)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			r := rand.New(rand.NewSource(*seed))
			tree = btree.Random(r, btree.RandomConfig{
				Size:         *size,
				Cost:         btree.CostModel{Mean: *mean, Sigma: 0.5},
				BoundSpread:  1,
				FeasibleProb: 0.1,
			})
		}
		st := tree.Stats()
		fmt.Printf("tree: %d nodes, %.1f s uniprocessor, optimum %.6g\n",
			st.Size, st.TotalCost, st.Optimum)
		res = dbnb.Run(tree, cfg)
	}

	elapsed := time.Since(wall)
	fmt.Printf("terminated=%v  time=%.2fs  optimum=%.6g (correct=%v)\n",
		res.Terminated, res.Time, res.Optimum, res.OptimumOK)
	kernel := "serial kernel"
	if res.Shards > 0 {
		kernel = fmt.Sprintf("%d shards", res.Shards)
	}
	fmt.Printf("engine: %s, %d events in %.2fs wall (%.3g events/sec)\n",
		kernel, res.Events, elapsed.Seconds(), float64(res.Events)/elapsed.Seconds())
	fmt.Printf("expanded=%d  unique=%d  redundant=%d\n", res.Expanded, res.Unique, res.Redundant)
	if len(joins) > 0 || len(crashes) > 0 {
		restarts := 0
		for _, c := range crashes {
			if c.Restart > c.Time {
				restarts++
			}
		}
		fmt.Printf("churn: %d joined, %d crashed (%d restarted), final pool %d processes\n",
			res.Joined, len(crashes), restarts, *procs+res.Joined)
	}
	agg := res.Met.AggregateBreakdown()
	parts := make([]string, 0, 5)
	for _, a := range []metrics.Activity{metrics.BB, metrics.Comm, metrics.Contract, metrics.LB, metrics.Idle} {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", a, agg.Percent(a)))
	}
	fmt.Println("time split:", strings.Join(parts, ", "))
	fmt.Printf("network: %d msgs, %.3f MB, %d lost, %d cut, %d to dead\n",
		res.Net.Sent, metrics.MB(res.Net.Bytes), res.Net.Lost, res.Net.Cut, res.Net.ToDead)
	fmt.Printf("payload: %d bytes total, %.0f bytes/process\n",
		res.Net.Bytes, float64(res.Net.Bytes)/float64(*procs))
	kindParts := make([]string, 0, protocol.KindCount)
	for k := 1; k < protocol.KindCount; k++ {
		if res.Net.KindSent[k] == 0 {
			continue
		}
		kindParts = append(kindParts, fmt.Sprintf("%s %d/%.3gMB",
			protocol.KindName(byte(k)), res.Net.KindSent[k], metrics.MB(res.Net.KindBytes[k])))
	}
	if len(kindParts) > 0 {
		fmt.Println("by kind:", strings.Join(kindParts, ", "))
	}
	fmt.Printf("storage: %.3f MB total, %.3f MB redundant\n",
		metrics.MB(int64(res.Met.TotalStorage())), metrics.MB(int64(res.Met.RedundantStorage())))
	if *gantt {
		fmt.Println()
		lg.Gantt(os.Stdout, 100)
	}
	if !res.Terminated {
		return 1
	}
	return 0
}

// runMulti is the -instances mode: k staggered random knapsacks multiplexed
// over one simulated cluster, each instance's optimum cross-checked against
// its own sequential solve, with a per-instance work/overhead table.
func runMulti(cfg dbnb.Config, k, size int, stagger float64, seed int64) int {
	specs := make([]dbnb.Instance, k)
	for i := range specs {
		r := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		specs[i] = dbnb.Instance{
			Problem:   bnb.RandomKnapsack(r, size),
			Seed:      seed + int64(i+1),
			StartTime: float64(i) * stagger,
		}
	}
	cfg.Instances = specs
	fmt.Printf("instances: %d concurrent knapsack:%d, submissions staggered %gs apart\n", k, size, stagger)

	wall := time.Now()
	res := dbnb.RunInstances(cfg)
	elapsed := time.Since(wall)

	fmt.Printf("terminated=%v  time=%.2fs (last instance)\n", res.Terminated, res.Time)
	kernel := "serial kernel"
	if res.Shards > 0 {
		kernel = fmt.Sprintf("%d shards", res.Shards)
	}
	fmt.Printf("engine: %s, %d events in %.2fs wall (%.3g events/sec)\n",
		kernel, res.Events, elapsed.Seconds(), float64(res.Events)/elapsed.Seconds())

	fmt.Printf("%-5s %-6s %-8s %-12s %-8s %-9s %-8s %-9s %-10s %-10s\n",
		"inst", "start", "done", "optimum", "correct", "expanded", "unique", "redundant", "work", "overhead")
	for _, ir := range res.Instances {
		done := fmt.Sprintf("%.2f", ir.Time)
		if !ir.Terminated {
			done = "never"
		}
		fmt.Printf("%-5d %-6g %-8s %-12.6g %-8v %-9d %-8d %-9d %-10s %-10s\n",
			ir.ID, ir.Start, done, ir.Optimum, ir.OptimumOK,
			ir.Expanded, ir.Unique, ir.Redundant,
			fmt.Sprintf("%.2fs", ir.Work), fmt.Sprintf("%.2fs", ir.Overhead))
	}

	agg := res.Met.AggregateBreakdown()
	parts := make([]string, 0, 5)
	for _, a := range []metrics.Activity{metrics.BB, metrics.Comm, metrics.Contract, metrics.LB, metrics.Idle} {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", a, agg.Percent(a)))
	}
	fmt.Println("time split:", strings.Join(parts, ", "))
	fmt.Printf("network: %d msgs, %.3f MB, %d lost, %d cut, %d to dead\n",
		res.Net.Sent, metrics.MB(res.Net.Bytes), res.Net.Lost, res.Net.Cut, res.Net.ToDead)
	if !res.Terminated {
		return 1
	}
	return 0
}
