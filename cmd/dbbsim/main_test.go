package main

import "testing"

func TestCrashListParsing(t *testing.T) {
	var c crashList
	if err := c.Set("12.5:3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("40:0"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0].Time != 12.5 || c[0].Node != 3 || c[1].Node != 0 {
		t.Errorf("parsed = %+v", c)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
	for _, bad := range []string{"", "12", "a:b", "3;4"} {
		if err := c.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestJoinListParsing(t *testing.T) {
	var j joinList
	if err := j.Set("25:4"); err != nil {
		t.Fatal(err)
	}
	if err := j.Set("60.5:1"); err != nil {
		t.Fatal(err)
	}
	if len(j) != 2 || j[0].Time != 25 || j[0].Count != 4 || j[1].Time != 60.5 || j[1].Count != 1 {
		t.Errorf("parsed = %+v", j)
	}
	if j.String() == "" {
		t.Error("empty String")
	}
	for _, bad := range []string{"", "25", "a:b", "25:x", "25:0", "25:-3", "1:2:3"} {
		if err := j.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}
