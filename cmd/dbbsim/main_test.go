package main

import (
	"math"
	"testing"
)

func TestNemesisFlagParsing(t *testing.T) {
	var n nemesisList
	if err := n.Set("partition:10-20:0,1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Set("stall:3:5-"); err != nil {
		t.Fatal(err)
	}
	if err := n.Set("flap:0-2:4:0-20"); err != nil {
		t.Fatal(err)
	}
	if len(n.specs) != 3 {
		t.Fatalf("specs = %v", n.specs)
	}
	// partition → one window; open-ended stall → to +Inf; 20s flap at
	// period 4 → five down half-periods.
	if len(n.parts) != 1+1+5 {
		t.Fatalf("parts = %+v", n.parts)
	}
	if p := n.parts[0]; p.Start != 10 || p.End != 20 || len(p.Group) != 2 {
		t.Errorf("partition window = %+v", p)
	}
	if p := n.parts[1]; p.Start != 5 || !math.IsInf(p.End, 1) || len(p.Group) != 1 || p.Group[0] != 3 {
		t.Errorf("stall window = %+v", p)
	}
	if p := n.parts[2]; p.Start != 0 || p.End != 2 || len(p.Group) != 1 || p.Group[0] != 0 {
		t.Errorf("first flap window = %+v", p)
	}
	if p := n.parts[6]; p.Start != 16 || p.End != 18 {
		t.Errorf("last flap window = %+v", p)
	}
	if n.String() == "" {
		t.Error("empty String")
	}
	for _, bad := range []string{
		"",
		"bogus:1-2:0",
		"oneway:1-2:0|1",  // live-only: no directed cuts in the simulator
		"slow:0-1:10ms",   // live-only: no per-link delay
		"corrupt:0.5",     // live-only: no payload damage
		"flap:0-1:4:10-",  // open-ended flap cannot be enumerated
		"partition:2-1:0", // bad window
	} {
		if err := n.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	// Rejected specs must not leave partial state behind.
	if len(n.specs) != 3 || len(n.parts) != 7 {
		t.Errorf("rejected specs mutated the list: %v / %+v", n.specs, n.parts)
	}
}

func TestCrashListParsing(t *testing.T) {
	var c crashList
	if err := c.Set("12.5:3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("40:0"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0].Time != 12.5 || c[0].Node != 3 || c[1].Node != 0 {
		t.Errorf("parsed = %+v", c)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
	for _, bad := range []string{"", "12", "a:b", "3;4"} {
		if err := c.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestJoinListParsing(t *testing.T) {
	var j joinList
	if err := j.Set("25:4"); err != nil {
		t.Fatal(err)
	}
	if err := j.Set("60.5:1"); err != nil {
		t.Fatal(err)
	}
	if len(j) != 2 || j[0].Time != 25 || j[0].Count != 4 || j[1].Time != 60.5 || j[1].Count != 1 {
		t.Errorf("parsed = %+v", j)
	}
	if j.String() == "" {
		t.Error("empty String")
	}
	for _, bad := range []string{"", "25", "a:b", "25:x", "25:0", "25:-3", "1:2:3"} {
		if err := j.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestValidateFlagInstanceCombos(t *testing.T) {
	ok := func(err error) bool { return err == nil }
	cases := []struct {
		name    string
		insts   int
		problem string
		tree    string
		member  bool
		gantt   bool
		shards  int
		joins   joinList
		want    bool // valid?
	}{
		{name: "defaults", shards: -1, want: true},
		{name: "instances alone", insts: 4, shards: -1, want: true},
		{name: "instances sharded", insts: 4, shards: 4, want: true},
		{name: "negative instances", insts: -1, shards: -1, want: false},
		{name: "instances+problem", insts: 2, problem: "knapsack:12:1", shards: -1, want: false},
		{name: "instances+tree", insts: 2, tree: "t.gbbt", shards: -1, want: false},
		{name: "instances+membership", insts: 2, member: true, shards: -1, want: false},
		{name: "instances+gantt", insts: 2, gantt: true, shards: -1, want: false},
		{name: "instances+join", insts: 2, joins: joinList{{Time: 5, Count: 2}}, shards: -1, want: false},
		{name: "problem+tree", problem: "qap:6:1", tree: "t.gbbt", shards: -1, want: false},
		{name: "shards+membership", member: true, shards: 4, want: false},
		{name: "shards+gantt", gantt: true, shards: 0, want: false},
		{name: "membership serial", member: true, shards: -1, want: true},
		{name: "join without membership", joins: joinList{{Time: 5, Count: 2}}, shards: -1, want: true},
	}
	for _, c := range cases {
		err := validateFlags(c.insts, c.problem, c.tree, c.member, c.gantt, c.shards, c.joins)
		if ok(err) != c.want {
			t.Errorf("%s: err = %v, want valid=%v", c.name, err, c.want)
		}
	}
}
