package main

import "testing"

func TestCrashListParsing(t *testing.T) {
	var c crashList
	if err := c.Set("12.5:3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("40:0"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0].Time != 12.5 || c[0].Node != 3 || c[1].Node != 0 {
		t.Errorf("parsed = %+v", c)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
	for _, bad := range []string{"", "12", "a:b", "3;4"} {
		if err := c.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}
