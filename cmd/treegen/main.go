// Command treegen generates, inspects, and replays basic trees (§6.2).
//
// Usage:
//
//	treegen -gen random -size 10000 -mean 0.05 -o tree.gbbt
//	treegen -gen knapsack -items 24 -mean 0.01 -max 50000 -o tree.gbbt
//	treegen -info tree.gbbt
//	treegen -replay tree.gbbt        # sequential best-first replay
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("treegen: ")
	var (
		gen    = flag.String("gen", "", `generator: "random" or "knapsack"`)
		size   = flag.Int("size", 10001, "target node count (random)")
		items  = flag.Int("items", 20, "knapsack items")
		max    = flag.Int("max", 0, "node cap for knapsack recording (0 = unlimited)")
		mean   = flag.Float64("mean", 0.05, "mean node cost, seconds")
		sigma  = flag.Float64("sigma", 0.5, "lognormal cost shape (0 = constant)")
		spread = flag.Float64("spread", 1, "mean bound increment parent->child (random)")
		feas   = flag.Float64("feasible", 0.1, "leaf feasibility probability (random)")
		seed   = flag.Int64("seed", 1, "deterministic seed")
		out    = flag.String("o", "", "output file for -gen")
		info   = flag.String("info", "", "print statistics of a tree file")
		replay = flag.String("replay", "", "sequentially replay a tree file")
	)
	flag.Parse()

	switch {
	case *gen != "":
		r := rand.New(rand.NewSource(*seed))
		cm := btree.CostModel{Mean: *mean, Sigma: *sigma}
		var t *btree.Tree
		switch *gen {
		case "random":
			t = btree.Random(r, btree.RandomConfig{
				Size: *size, Cost: cm, BoundSpread: *spread, FeasibleProb: *feas,
			})
		case "knapsack":
			k := bnb.RandomKnapsack(r, *items)
			t = btree.FromKnapsack(k, r, cm, *max)
		default:
			log.Fatalf("unknown generator %q", *gen)
		}
		if err := t.Validate(); err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			log.Fatal("-gen requires -o FILE")
		}
		if err := t.Save(*out); err != nil {
			log.Fatal(err)
		}
		printStats(*out, t)

	case *info != "":
		t, err := btree.Load(*info)
		if err != nil {
			log.Fatal(err)
		}
		printStats(*info, t)

	case *replay != "":
		t, err := btree.Load(*replay)
		if err != nil {
			log.Fatal(err)
		}
		res := btree.Sequential(t)
		fmt.Printf("%s: expanded %d of %d nodes, optimum %.6g, %.2f s of work\n",
			*replay, res.Expanded, t.Size(), res.Optimum, res.Work)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(name string, t *btree.Tree) {
	s := t.Stats()
	fmt.Printf("%s: %d nodes (%d leaves, %d feasible), depth %d\n",
		name, s.Size, s.Leaves, s.Feasible, s.Depth)
	fmt.Printf("  total cost %.2f s (mean %.4f s/node), optimum %.6g\n",
		s.TotalCost, s.MeanCost, s.Optimum)
}
