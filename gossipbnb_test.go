package gossipbnb_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gossipbnb"
)

// TestEndToEnd exercises the whole public surface on one problem: solve a
// knapsack sequentially, record its basic tree, replay it, run the
// distributed simulation with crashes, and run the live cluster — all four
// answers must agree.
func TestEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	k := gossipbnb.RandomKnapsack(r, 14)

	seq := gossipbnb.Solve(k.Root(), gossipbnb.SolveOptions{})
	want := k.Best(seq)

	tree := gossipbnb.KnapsackTree(k, r, gossipbnb.CostModel{Mean: 0.02, Sigma: 0.3}, 0)
	if got := -gossipbnb.SequentialReplay(tree).Optimum; got != want {
		t.Fatalf("replay optimum %g, sequential %g", got, want)
	}

	sim := gossipbnb.Run(tree, gossipbnb.SimConfig{
		Procs: 4, Seed: 5, Prune: true, RecoveryQuiet: 10,
		Crashes: []gossipbnb.Crash{{Time: 5, Node: 3}},
	})
	if !sim.Terminated || -sim.Optimum != want {
		t.Fatalf("simulation: terminated=%v optimum=%g want %g", sim.Terminated, -sim.Optimum, want)
	}

	cl := gossipbnb.NewLiveCluster(tree, gossipbnb.LiveConfig{
		Nodes: 3, Seed: 5, TimeScale: 0.0005, Timeout: 30 * time.Second,
	})
	live := cl.Run()
	if !live.Terminated || -live.Optimum != want {
		t.Fatalf("live: terminated=%v optimum=%g want %g", live.Terminated, -live.Optimum, want)
	}
}

func TestCodeRoundTripThroughPublicAPI(t *testing.T) {
	c := gossipbnb.RootCode().Child(1, 0).Child(2, 1)
	parsed, err := gossipbnb.ParseCode(c.String())
	if err != nil || !parsed.Equal(c) {
		t.Fatalf("parse round trip failed: %v %v", parsed, err)
	}
	buf := c.Append(nil)
	got, n, err := gossipbnb.DecodeCode(buf)
	if err != nil || n != len(buf) || !got.Equal(c) {
		t.Fatalf("binary round trip failed: %v %d %v", got, n, err)
	}
}

func TestTableThroughPublicAPI(t *testing.T) {
	tb := gossipbnb.NewTable()
	tb.Insert(gossipbnb.RootCode().Child(1, 0))
	tb.Insert(gossipbnb.RootCode().Child(1, 1))
	if !tb.Complete() {
		t.Fatal("sibling pair did not contract to root")
	}
	enc := tb.Encode(nil)
	back, err := gossipbnb.DecodeTable(enc)
	if err != nil || !back.Complete() {
		t.Fatalf("table decode failed: %v", err)
	}
	// ListTable satisfies the shared TableSet interface.
	var set gossipbnb.TableSet = gossipbnb.NewListTable()
	set.Insert(gossipbnb.RootCode().Child(1, 0))
	if set.Complete() {
		t.Error("half pair complete")
	}
}

func TestBaselinesThroughPublicAPI(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         201,
		Cost:         gossipbnb.CostModel{Mean: 0.05},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	d := gossipbnb.RunDIB(tree, gossipbnb.DIBConfig{Procs: 3, Seed: 9})
	if !d.Terminated || !d.OptimumOK {
		t.Fatalf("DIB failed: %+v", d)
	}
	c := gossipbnb.RunCentral(tree, gossipbnb.CentralConfig{Workers: 3, Seed: 9})
	if !c.Terminated || !c.OptimumOK {
		t.Fatalf("central failed: %+v", c)
	}
	g := gossipbnb.Run(tree, gossipbnb.SimConfig{Procs: 3, Seed: 9})
	if !g.Terminated || !g.OptimumOK {
		t.Fatalf("gossipbnb failed: %+v", g)
	}
	// All three find the same optimum.
	if d.Optimum != c.Optimum || c.Optimum != g.Optimum {
		t.Errorf("optima disagree: dib=%g central=%g ours=%g", d.Optimum, c.Optimum, g.Optimum)
	}
}

func TestSelectionRulesThroughPublicAPI(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	k := gossipbnb.RandomKnapsack(r, 12)
	var vals []float64
	for _, pool := range []gossipbnb.SolvePool{
		gossipbnb.NewBestFirst(), gossipbnb.NewDepthFirst(), gossipbnb.NewBreadthFirst(),
	} {
		res := gossipbnb.Solve(k.Root(), gossipbnb.SolveOptions{Pool: pool})
		vals = append(vals, k.Best(res))
	}
	if vals[0] != vals[1] || vals[1] != vals[2] {
		t.Errorf("selection rules disagree: %v", vals)
	}
}

func TestLatencyModelsExported(t *testing.T) {
	paper := gossipbnb.PaperLatency()
	if got := paper(100); got != 1.5e-3+5e-6*100 {
		t.Errorf("PaperLatency(100) = %g", got)
	}
	lin := gossipbnb.LinearLatency(1, 2)
	if lin(3) != 7 {
		t.Errorf("LinearLatency(1,2)(3) = %g", lin(3))
	}
}

func TestTraceLogExported(t *testing.T) {
	var lg gossipbnb.TraceLog
	r := rand.New(rand.NewSource(3))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         101,
		Cost:         gossipbnb.CostModel{Mean: 0.05},
		BoundSpread:  1,
		FeasibleProb: 0.2,
	})
	res := gossipbnb.Run(tree, gossipbnb.SimConfig{Procs: 2, Seed: 3, Trace: &lg})
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	if lg.Len() == 0 {
		t.Error("no spans recorded through public TraceLog")
	}
}

// ExampleRun demonstrates the core guarantee: two of three processes crash
// mid-run and the search still finishes with the exact optimum.
func ExampleRun() {
	r := rand.New(rand.NewSource(1))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         201,
		Cost:         gossipbnb.CostModel{Mean: 0.05},
		BoundSpread:  1,
		FeasibleProb: 0.2,
	})
	res := gossipbnb.Run(tree, gossipbnb.SimConfig{
		Procs: 3, Seed: 1, RecoveryQuiet: 3,
		Crashes: []gossipbnb.Crash{{Time: 2, Node: 1}, {Time: 2.1, Node: 2}},
	})
	fmt.Println("terminated:", res.Terminated, "optimum correct:", res.OptimumOK)
	// Output: terminated: true optimum correct: true
}
