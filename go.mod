module gossipbnb

go 1.24.0
