package gossipbnb_test

import (
	"math/rand"
	"testing"
	"time"

	"gossipbnb"
)

// TestSimLiveParity is the payoff of the shared protocol core: the same
// recorded tree, run failure-free through the deterministic simulator and
// through a real goroutine cluster, must find the same optimum with
// comparable amounts of exploration — one algorithm, two substrates.
func TestSimLiveParity(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         501,
		Cost:         gossipbnb.CostModel{Mean: 0.02, Sigma: 0.3},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	want := tree.Stats().Optimum

	sim := gossipbnb.Run(tree, gossipbnb.SimConfig{Procs: 4, Seed: 77})
	if !sim.Terminated || !sim.OptimumOK {
		t.Fatalf("simulator run failed: %+v", sim)
	}

	cl := gossipbnb.NewLiveCluster(tree, gossipbnb.LiveConfig{
		Nodes: 4, Seed: 77, TimeScale: 0.0005, Timeout: 60 * time.Second,
	})
	live := cl.Run()
	if !live.Terminated || !live.OptimumOK {
		t.Fatalf("live run failed: %+v", live)
	}

	if sim.Optimum != live.Optimum || sim.Optimum != want {
		t.Errorf("optima disagree: sim=%g live=%g want=%g", sim.Optimum, live.Optimum, want)
	}

	// Failure-free, both runtimes must explore every node at least once and
	// must not blow past it with redundant work: the shared core's duplicate
	// suppression works the same on both substrates. The live bound is
	// looser — real timing lets end-game recovery re-create a little work.
	if sim.Expanded < tree.Size() || sim.Expanded > tree.Size()*3/2 {
		t.Errorf("sim explored %d nodes for a %d-node tree", sim.Expanded, tree.Size())
	}
	if live.Expanded < tree.Size() || live.Expanded > tree.Size()*5/2 {
		t.Errorf("live explored %d nodes for a %d-node tree", live.Expanded, tree.Size())
	}
}

// TestThreeWayParityKnapsack is the acceptance check of the code-driven
// expander: the same knapsack instance solved from initial data only — no
// recorded tree anywhere — by the sequential engine, the deterministic
// simulator, and a real goroutine cluster must agree on the optimum.
func TestThreeWayParityKnapsack(t *testing.T) {
	k := gossipbnb.RandomKnapsack(rand.New(rand.NewSource(41)), 16)
	seq := gossipbnb.SolveProblem(k)

	simCfg := gossipbnb.SimConfig{Procs: 4, Seed: 41, Prune: true}
	sim := gossipbnb.RunProblemRef(k, seq, simCfg)
	if !sim.Terminated || !sim.OptimumOK {
		t.Fatalf("simulator problem run failed: %+v", sim)
	}

	cl := gossipbnb.NewLiveProblemClusterRef(k, seq, gossipbnb.LiveConfig{
		Nodes: 4, Seed: 41, Prune: true, Timeout: 60 * time.Second,
	})
	live := cl.Run()
	if !live.Terminated || !live.OptimumOK {
		t.Fatalf("live problem run failed: %+v", live)
	}

	if sim.Optimum != seq.Value || live.Optimum != seq.Value {
		t.Errorf("optima disagree: seq=%g sim=%g live=%g", seq.Value, sim.Optimum, live.Optimum)
	}

	// Problem runs stay deterministic in (problem, seed, config).
	again := gossipbnb.RunProblemRef(k, seq, simCfg)
	if again.Time != sim.Time || again.Expanded != sim.Expanded || again.Optimum != sim.Optimum {
		t.Errorf("RunProblem not deterministic: (%g, %d, %g) vs (%g, %d, %g)",
			sim.Time, sim.Expanded, sim.Optimum, again.Time, again.Expanded, again.Optimum)
	}
}

// TestThreeWayParityQAP repeats the three-way check on the quadratic
// assignment workload under depth-first selection, the paper's motivating
// problem class.
func TestThreeWayParityQAP(t *testing.T) {
	q := gossipbnb.RandomQAP(rand.New(rand.NewSource(42)), 6)
	seq := gossipbnb.SolveProblem(q)

	sim := gossipbnb.RunProblemRef(q, seq, gossipbnb.SimConfig{
		Procs: 4, Seed: 42, Prune: true, Select: gossipbnb.SelectDepthFirst,
	})
	if !sim.Terminated || !sim.OptimumOK {
		t.Fatalf("simulator problem run failed: %+v", sim)
	}

	cl := gossipbnb.NewLiveProblemClusterRef(q, seq, gossipbnb.LiveConfig{
		Nodes: 4, Seed: 42, Prune: true, Select: gossipbnb.SelectDepthFirst,
		Timeout: 60 * time.Second,
	})
	live := cl.Run()
	if !live.Terminated || !live.OptimumOK {
		t.Fatalf("live problem run failed: %+v", live)
	}

	if sim.Optimum != seq.Value || live.Optimum != seq.Value {
		t.Errorf("optima disagree: seq=%g sim=%g live=%g", seq.Value, sim.Optimum, live.Optimum)
	}
}

// TestSimLiveParityDepthFirstPrune runs the parity check again under the
// other selection rule with pruning, covering the steal-smallest-bound and
// elimination paths of the shared core on both substrates.
func TestSimLiveParityDepthFirstPrune(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         501,
		Cost:         gossipbnb.CostModel{Mean: 0.02, Sigma: 0.3},
		BoundSpread:  3,
		FeasibleProb: 0.2,
	})
	want := tree.Stats().Optimum

	sim := gossipbnb.Run(tree, gossipbnb.SimConfig{
		Procs: 4, Seed: 78, Select: gossipbnb.SelectDepthFirst, Prune: true,
	})
	if !sim.Terminated || !sim.OptimumOK {
		t.Fatalf("simulator run failed: %+v", sim)
	}

	cl := gossipbnb.NewLiveCluster(tree, gossipbnb.LiveConfig{
		Nodes: 4, Seed: 78, TimeScale: 0.0005, Timeout: 60 * time.Second,
		Select: gossipbnb.SelectDepthFirst, Prune: true,
	})
	live := cl.Run()
	if !live.Terminated || !live.OptimumOK {
		t.Fatalf("live run failed: %+v", live)
	}

	if sim.Optimum != live.Optimum || sim.Optimum != want {
		t.Errorf("optima disagree: sim=%g live=%g want=%g", sim.Optimum, live.Optimum, want)
	}
}
