// Package gossipbnb is a reproduction of "A Problem-Specific Fault-Tolerance
// Mechanism for Asynchronous, Distributed Systems" (Iamnitchi & Foster,
// ICPP 2000): a fully decentralized, asynchronous, fault-tolerant parallel
// branch-and-bound algorithm for opportunistic pools of unreliable machines,
// together with the substrates its evaluation depends on.
//
// The package re-exports the stable public surface:
//
//   - subproblem codes and the contracted completed-problem table — the
//     paper's fault-tolerance and termination-detection mechanism;
//   - the canonical protocol vocabulary: the one wire-message set and
//     binary codec every runtime speaks (internal/protocol);
//   - a sequential branch-and-bound engine with pluggable selection rules,
//     knapsack and QAP workloads, and a code-driven expander that
//     re-derives any subproblem from its code plus the initial data;
//   - "basic trees": recorded search trees that drive replay runs;
//   - the deterministic discrete-event simulation of the full distributed
//     algorithm, with crash-stop, crash-restart, loss, partition,
//     duplication, reordering, and stale-replay injection;
//   - the DIB and centralized manager-worker baselines;
//   - a live goroutine/channel runtime of the same protocol core.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. Regenerate every table and figure with
//
//	go run ./cmd/figures -all
package gossipbnb

import (
	"math/rand"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
	"gossipbnb/internal/central"
	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
	"gossipbnb/internal/dbnb"
	"gossipbnb/internal/dib"
	"gossipbnb/internal/live"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/nemesis"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/sim"
	"gossipbnb/internal/trace"
)

// --- subproblem codes (§5.3.1) ----------------------------------------------

// Code identifies a node of the B&B tree by the branching decisions on its
// root path. Codes are self-contained: together with the initial problem
// data they reconstruct the subproblem on any processor.
type Code = code.Code

// Decision is one ⟨variable, branch⟩ pair of a Code.
type Decision = code.Decision

// RootCode returns the code of the original problem.
func RootCode() Code { return code.Root() }

// ParseCode parses the paper's notation, e.g. "(<x1,0>,<x2,1>)".
func ParseCode(s string) (Code, error) { return code.Parse(s) }

// DecodeCode reads one binary-encoded code from the front of buf.
func DecodeCode(buf []byte) (Code, int, error) { return code.Decode(buf) }

// --- completed-problem tables (§5.3.2, §5.4) -----------------------------------

// Table is a contracted set of completed-problem codes supporting the
// paper's three operations: contraction, complement, and termination
// detection.
type Table = ctree.Table

// TableSet abstracts Table and ListTable for the representation ablation.
type TableSet = ctree.Set

// ListTable is the flat-list table representation (ablation baseline).
type ListTable = ctree.ListTable

// NewTable returns an empty completion table.
func NewTable() *Table { return ctree.New() }

// NewListTable returns an empty flat-list completion table.
func NewListTable() *ListTable { return ctree.NewList() }

// DecodeTable reconstructs a table from Table.Encode output.
func DecodeTable(buf []byte) (*Table, error) { return ctree.Decode(buf) }

// --- canonical protocol messages and codec (§5) ---------------------------------

// Msg is a canonical wire message of the protocol — the single vocabulary
// both the simulator and the live runtime speak (internal/protocol).
type Msg = protocol.Msg

// Report is a work report: a contracted batch of completed-problem codes
// (§5.3.2). A report whose only code is the root is the termination
// broadcast of §5.4.
type Report = protocol.Report

// TableMsg is the occasional full-table consistency push.
type TableMsg = protocol.TableMsg

// WorkRequest asks a randomly chosen member for problems.
type WorkRequest = protocol.WorkRequest

// WorkGrant transfers problems by their self-contained codes.
type WorkGrant = protocol.WorkGrant

// WorkDeny tells a requester its target has no work to spare.
type WorkDeny = protocol.WorkDeny

// EncodeMsg appends the canonical binary encoding of m to dst — the codec
// used verbatim by the TCP transport's frames.
func EncodeMsg(dst []byte, m Msg) ([]byte, error) { return protocol.Encode(dst, m) }

// DecodeMsg reads one canonical message from the front of buf, returning
// the message and the number of bytes consumed.
func DecodeMsg(buf []byte) (Msg, int, error) { return protocol.Decode(buf) }

// InstanceID scopes a wire message to one problem instance when several are
// multiplexed over a cluster; 0 is the legacy single instance, whose
// encoding is bit-identical to the pre-instance wire format.
type InstanceID = protocol.InstanceID

// InstMsg tags a canonical message with its instance for the wire.
type InstMsg = protocol.InstMsg

// DecodeInstanceMsg reads one canonical message that may carry an instance
// tag, returning the instance (0 = legacy), the message, and the bytes
// consumed.
func DecodeInstanceMsg(buf []byte) (InstanceID, Msg, int, error) {
	return protocol.DecodeInstance(buf)
}

// --- sequential engine (§2) ------------------------------------------------------

// Subproblem is a node of a binary branch-and-bound search (minimization).
type Subproblem = bnb.Subproblem

// SolveOptions configures Solve.
type SolveOptions = bnb.Options

// SolveResult reports a sequential solve.
type SolveResult = bnb.Result

// SolvePool is the pool of active problems (the selection rule).
type SolvePool = bnb.Pool

// Solve runs sequential branch and bound from root.
func Solve(root Subproblem, opts SolveOptions) SolveResult { return bnb.Solve(root, opts) }

// NewBestFirst returns a best-first (smallest bound) selection pool.
func NewBestFirst() SolvePool { return bnb.NewBestFirst() }

// NewDepthFirst returns a depth-first (LIFO) selection pool.
func NewDepthFirst() SolvePool { return bnb.NewDepthFirst() }

// NewBreadthFirst returns a breadth-first (FIFO) selection pool.
func NewBreadthFirst() SolvePool { return bnb.NewBreadthFirst() }

// Knapsack is a 0/1 knapsack instance, the realistic workload generator.
type Knapsack = bnb.Knapsack

// NewKnapsack builds a knapsack instance.
func NewKnapsack(values, weights []float64, capacity float64) (*Knapsack, error) {
	return bnb.NewKnapsack(values, weights, capacity)
}

// RandomKnapsack generates a weakly correlated random instance.
func RandomKnapsack(r *rand.Rand, n int) *Knapsack { return bnb.RandomKnapsack(r, n) }

// QAP is a quadratic assignment instance with binarized branching — the
// problem class the paper's introduction motivates.
type QAP = bnb.QAP

// NewQAP builds a quadratic assignment instance from flow and distance
// matrices.
func NewQAP(flow, dist [][]float64) (*QAP, error) { return bnb.NewQAP(flow, dist) }

// RandomQAP generates a symmetric random instance of order n.
func RandomQAP(r *rand.Rand, n int) *QAP { return bnb.RandomQAP(r, n) }

// --- code-driven expansion (§5.3.1 for real) -------------------------------------

// Problem is the initial data of a code-driven workload: anything producing
// the root subproblem. *Knapsack and *QAP satisfy it.
type Problem = bnb.Problem

// BnBExpander resolves subproblem codes by re-deriving solver state from
// the initial problem data — the paper's central claim, exercised for real
// instead of replayed from a recorded tree. Create one per process.
type BnBExpander = bnb.Expander

// NewBnBExpander builds a code-driven expander over p's initial data.
func NewBnBExpander(p Problem) *BnBExpander { return bnb.NewExpander(p) }

// ParseProblemSpec builds a Problem from "knapsack:<n>:<seed>" or
// "qap:<n>:<seed>" — the vocabulary of cmd/dbbsim's -problem flag.
func ParseProblemSpec(spec string) (Problem, error) { return bnb.ParseSpec(spec) }

// SolveProblem runs the sequential engine over p: the single-processor
// reference that distributed runs are cross-checked against.
func SolveProblem(p Problem) SolveResult { return bnb.SolveProblem(p) }

// --- basic trees (§6.2) -------------------------------------------------------------

// Tree is a recorded ("basic") search tree: bounds, per-node costs,
// feasibility, and the decompose structure.
type Tree = btree.Tree

// TreeNode is one recorded subproblem.
type TreeNode = btree.Node

// TreeStats summarizes a tree.
type TreeStats = btree.Stats

// CostModel draws per-node costs for tree generators.
type CostModel = btree.CostModel

// RandomTreeConfig parameterizes RandomTree.
type RandomTreeConfig = btree.RandomConfig

// RandomTree generates a random basic tree.
func RandomTree(r *rand.Rand, cfg RandomTreeConfig) *Tree { return btree.Random(r, cfg) }

// KnapsackTree records the basic tree of a knapsack instance (§6.2's
// "instrumented B&B code"). maxNodes caps recording (0 = unlimited).
func KnapsackTree(k *Knapsack, r *rand.Rand, cm CostModel, maxNodes int) *Tree {
	return btree.FromKnapsack(k, r, cm, maxNodes)
}

// LoadTree reads a tree saved by Tree.Save.
func LoadTree(path string) (*Tree, error) { return btree.Load(path) }

// SequentialReplay replays best-first B&B over a basic tree on one
// processor: the baseline for speedup measurements.
func SequentialReplay(t *Tree) btree.SequentialResult { return btree.Sequential(t) }

// --- the distributed algorithm (§5) ---------------------------------------------------

// SimConfig parameterizes a simulated run of the paper's algorithm.
type SimConfig = dbnb.Config

// SimResult reports a simulated run.
type SimResult = dbnb.Result

// Crash schedules a failure: crash-stop, or crash-restart when Restart is
// set — the process reboots with empty state and rebuilds from gossip.
type Crash = dbnb.Crash

// SelectRule picks the local selection discipline of SimConfig.Select.
type SelectRule = dbnb.SelectRule

// Selection rules for SimConfig.Select.
const (
	SelectBestFirst  = dbnb.BestFirst
	SelectDepthFirst = dbnb.DepthFirst
)

// Partition schedules a temporary network partition.
type Partition = dbnb.Partition

// TraceLog records per-process activity spans (ASCII Gantt of Figures 5/6).
type TraceLog = trace.Log

// Run simulates the decentralized fault-tolerant algorithm replaying tree.
// Runs are deterministic in (tree, cfg).
func Run(tree *Tree, cfg SimConfig) SimResult { return dbnb.Run(tree, cfg) }

// RunProblem simulates the algorithm solving a code-driven problem from its
// initial data only — no recorded tree anywhere. Deterministic in
// (problem, cfg); expansion charges SimConfig.NodeCost.
func RunProblem(p Problem, cfg SimConfig) SimResult { return dbnb.RunProblem(p, cfg) }

// RunProblemRef is RunProblem with a precomputed sequential reference
// (from SolveProblem), sparing callers a second sequential solve.
func RunProblemRef(p Problem, ref SolveResult, cfg SimConfig) SimResult {
	return dbnb.RunProblemRef(p, ref, cfg)
}

// SimInstance describes one problem of a multi-instance simulated run:
// the code-driven problem, its protocol randomness seed, and its virtual
// submission time (SimConfig.Instances).
type SimInstance = dbnb.Instance

// MultiResult summarizes a multi-instance simulated run.
type MultiResult = dbnb.MultiResult

// InstanceResult is one instance's slice of a MultiResult.
type InstanceResult = dbnb.InstanceResult

// RunInstances solves every SimConfig.Instances problem concurrently over
// one simulated cluster, each scoped to its own wire InstanceID and
// cross-checked against its own sequential solve. Deterministic in
// (cfg, seed), invariant in the shard count.
func RunInstances(cfg SimConfig) MultiResult { return dbnb.RunInstances(cfg) }

// PaperLatency is the paper's communication model: 1.5 + 0.005·L ms.
func PaperLatency() sim.LatencyModel { return sim.PaperLatency() }

// LinearLatency builds a base + perByte·L seconds latency model.
func LinearLatency(base, perByte float64) sim.LatencyModel {
	return sim.LinearLatency(base, perByte)
}

// --- baselines (§3, §5.5) ----------------------------------------------------------------

// DIBConfig parameterizes the DIB baseline.
type DIBConfig = dib.Config

// DIBResult reports a DIB run.
type DIBResult = dib.Result

// RunDIB simulates Finkel & Manber's DIB on the same tree and failure model.
func RunDIB(tree *Tree, cfg DIBConfig) DIBResult { return dib.Run(tree, cfg) }

// CentralConfig parameterizes the centralized manager-worker baseline.
type CentralConfig = central.Config

// CentralResult reports a centralized run.
type CentralResult = central.Result

// RunCentral simulates the centralized manager-worker baseline.
func RunCentral(tree *Tree, cfg CentralConfig) CentralResult { return central.Run(tree, cfg) }

// --- live runtime -----------------------------------------------------------------------

// LiveConfig parameterizes a wall-clock goroutine/channel cluster.
type LiveConfig = live.Config

// LiveResult reports a live run.
type LiveResult = live.Result

// LiveCluster is a set of goroutine-backed processes running the protocol
// in real time over an in-memory lossy transport.
type LiveCluster = live.Cluster

// LiveNodeID identifies a process of a LiveCluster.
type LiveNodeID = live.NodeID

// LiveNet is the transport interface a LiveCluster runs over.
type LiveNet = live.Net

// LiveTransport is the in-memory lossy transport.
type LiveTransport = live.Transport

// LiveChaos parameterizes adversarial delivery for the in-memory transport:
// duplication, bounded reordering, and stale replay (LiveConfig.Chaos).
type LiveChaos = live.Chaos

// TCPNetwork runs the live protocol over real TCP sockets on loopback.
type TCPNetwork = live.TCPNetwork

// NewTCPNetwork creates listeners for n live nodes on 127.0.0.1.
func NewTCPNetwork(n int) (*TCPNetwork, error) { return live.NewTCPNetwork(n) }

// NewLiveCluster builds a live cluster replaying tree.
func NewLiveCluster(tree *Tree, cfg LiveConfig) *LiveCluster { return live.NewCluster(tree, cfg) }

// NewLiveProblemCluster builds a live cluster solving a code-driven problem
// from its initial data only: every process burns real CPU re-deriving
// subproblems through its own BnBExpander.
func NewLiveProblemCluster(p Problem, cfg LiveConfig) *LiveCluster {
	return live.NewProblemCluster(p, cfg)
}

// NewLiveProblemClusterRef is NewLiveProblemCluster with a precomputed
// sequential reference (from SolveProblem), sparing callers that already
// solved the instance a second solve.
func NewLiveProblemClusterRef(p Problem, ref SolveResult, cfg LiveConfig) *LiveCluster {
	return live.NewProblemClusterRef(p, ref, cfg)
}

// InstanceHandle tracks one problem instance submitted mid-run to a live
// cluster with LiveCluster.Submit: Done closes at cluster-wide resolution,
// Result cross-checks the optimum, Expanded reports live progress.
type InstanceHandle = live.Handle

// --- self-healing: failure detection and fault injection --------------------------------

// NemesisSchedule is a declarative fault-injection schedule for the live
// transports: partitions, one-way cuts, flapping links, stalls, slow links,
// and byte corruption, each over a time window (LiveConfig.Nemesis).
type NemesisSchedule = nemesis.Schedule

// NemesisFault is one scheduled fault of a NemesisSchedule.
type NemesisFault = nemesis.Fault

// ParseNemesis builds a schedule from fault specs in the nemesis grammar,
// e.g. "partition:1-3:0,1|2,3", "flap:0-2:0.25", "stall:2:1-",
// "corrupt:0.1:0-5".
func ParseNemesis(specs ...string) (*NemesisSchedule, error) {
	fs, err := nemesis.ParseAll(specs)
	if err != nil {
		return nil, err
	}
	return nemesis.New(fs...), nil
}

// DetectEvent is one failure-detector transition, delivered to
// LiveConfig.OnDetect: the observing node suspected, cleared, excluded, or
// re-absorbed a peer.
type DetectEvent = live.DetectEvent

// DetectKind labels a DetectEvent.
type DetectKind = live.DetectKind

// Detector transitions, in escalation order.
const (
	Suspected  = live.Suspected
	Cleared    = live.Cleared
	Excluded   = live.Excluded
	Reabsorbed = live.Reabsorbed
)

// LiveNetStats is a live transport's traffic ledger with per-cause drop
// counts (LiveResult.Net).
type LiveNetStats = live.NetStats

// NetHealth summarizes what the self-healing layer observed during a run:
// CRC rejections, injected-fault casualties, and detector transitions
// (LiveResult.Health).
type NetHealth = metrics.NetHealth
