// Real-knapsack: solve an actual 0/1 knapsack instance over real TCP
// sockets from the initial problem data only — no recorded tree anywhere.
// Every process owns a code-driven expander that re-derives subproblems
// from their ⟨variable, branch⟩ codes (§5.3.1), burns real CPU computing
// bounds, and the cluster survives a mid-run crash. The distributed optimum
// is cross-checked against the sequential engine on the same instance.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gossipbnb"
)

func main() {
	const items, seed, nodes = 26, 9, 4

	k := gossipbnb.RandomKnapsack(rand.New(rand.NewSource(seed)), items)
	seq := gossipbnb.SolveProblem(k)
	fmt.Printf("instance: %d items, capacity %.0f\n", items, k.Capacity)
	fmt.Printf("sequential: packed value %.0f in %d expansions\n",
		k.Best(seq), seq.Expanded)

	nw, err := gossipbnb.NewTCPNetwork(nodes)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		fmt.Printf("process %d listens on %s\n", i, nw.Addr(gossipbnb.LiveNodeID(i)))
	}

	cl := gossipbnb.NewLiveProblemClusterRef(k, seq, gossipbnb.LiveConfig{
		Nodes:         nodes,
		Seed:          seed,
		Network:       nw,
		Prune:         true,
		Select:        gossipbnb.SelectDepthFirst,
		RecoveryQuiet: 50 * time.Millisecond,
		Timeout:       120 * time.Second,
	})
	time.AfterFunc(2*time.Millisecond, func() { cl.Crash(3) })

	res := cl.Run()
	fmt.Printf("distributed: terminated=%v in %v, optimum %.6g (matches sequential=%v)\n",
		res.Terminated, res.Elapsed.Round(time.Millisecond), res.Optimum, res.OptimumOK)
	fmt.Printf("%d expansions across all processes, %d TCP messages, %d payload bytes\n",
		res.Expanded, res.MsgsSent, res.BytesSent)
	if !res.Terminated || !res.OptimumOK || res.Optimum != seq.Value {
		log.Fatal("distributed optimum does not match the sequential engine")
	}
	// The engine minimizes the negated objective; -Optimum is packed value.
	fmt.Printf("survivors packed value %.0f over real sockets, no tree on disk\n",
		-res.Optimum)
}
