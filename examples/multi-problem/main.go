// Multi-problem: one TCP cluster, many problems. The cluster boots solving a
// knapsack, a QAP is submitted mid-run and multiplexes over the same four
// processes and sockets — each instance's traffic tagged with its wire
// InstanceID, each instance running the paper's protocol independently among
// its own per-process cores — and then one process crashes while both are in
// flight. Both optima must come out equal to their sequential solves: the
// fault-tolerance mechanism is per-problem by construction, so multiplexing
// adds tenancy without coupling failures across instances.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gossipbnb"
)

func main() {
	r := rand.New(rand.NewSource(42))
	knap := gossipbnb.RandomKnapsack(r, 14)
	qap := gossipbnb.RandomQAP(r, 6)

	knapRef := gossipbnb.SolveProblem(knap)
	qapRef := gossipbnb.SolveProblem(qap)
	fmt.Printf("knapsack:14 sequential optimum %.6g (%d expansions)\n", knapRef.Value, knapRef.Expanded)
	fmt.Printf("qap:6      sequential optimum %.6g (%d expansions)\n", qapRef.Value, qapRef.Expanded)

	nw, err := gossipbnb.NewTCPNetwork(4)
	if err != nil {
		log.Fatal(err)
	}
	cl := gossipbnb.NewLiveProblemClusterRef(knap, knapRef, gossipbnb.LiveConfig{
		Nodes:         4,
		Seed:          42,
		Network:       nw,
		Prune:         true,
		RecoveryQuiet: 50 * time.Millisecond,
		Timeout:       120 * time.Second,
		// Hold the cluster open briefly once everything resolves: small
		// problems can finish before the submission below lands.
		Linger: time.Second,
	})
	resCh := make(chan gossipbnb.LiveResult, 1)
	go func() { resCh <- cl.Run() }()

	// Submit the QAP as soon as the cluster is up (Run sets the running flag
	// moments after it starts), then crash a process with both instances'
	// traffic multiplexed over the same sockets.
	var handle *gossipbnb.InstanceHandle
	for {
		h, err := cl.SubmitRef(qap, qapRef)
		if err == nil {
			handle = h
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("submitted qap:6 mid-run as instance %d\n", handle.ID)
	time.Sleep(10 * time.Millisecond)
	cl.Crash(2)
	fmt.Println("crashed process 2 with both instances in flight")

	res := <-resCh
	fmt.Printf("boot knapsack: terminated=%v in %v, optimum %.6g (correct=%v)\n",
		res.Terminated, res.Elapsed.Round(time.Millisecond), res.Optimum, res.OptimumOK)
	qapOpt, qapOK := handle.Result()
	fmt.Printf("submitted qap: optimum %.6g (correct=%v), %d cluster expansions\n",
		qapOpt, qapOK, handle.Expanded())
	fmt.Printf("%d TCP messages, %d payload bytes\n", res.MsgsSent, res.BytesSent)

	if !res.Terminated || !res.OptimumOK || !qapOK {
		log.Fatal("multi-problem cluster failed the scenario")
	}
	fmt.Println("both problems solved concurrently over one cluster, through a crash")
}
