// Live-gossip: run the protocol on real goroutines and channels — every
// process a goroutine, every message a channel send through a lossy,
// delaying in-memory transport — and crash two thirds of the cluster while
// it works. Wall-clock time, real concurrency, same guarantees.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gossipbnb"
)

func main() {
	r := rand.New(rand.NewSource(3))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         1501,
		Cost:         gossipbnb.CostModel{Mean: 0.02, Sigma: 0.3},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	st := tree.Stats()
	fmt.Printf("problem: %d nodes, %.0f s of simulated work (scaled 1000x down)\n",
		st.Size, st.TotalCost)

	cl := gossipbnb.NewLiveCluster(tree, gossipbnb.LiveConfig{
		Nodes:     6,
		Seed:      3,
		TimeScale: 0.001, // 1 simulated second = 1 ms of wall clock
		Delay: func(bytes int) time.Duration {
			return 100*time.Microsecond + time.Duration(bytes)*100*time.Nanosecond
		},
		Loss:          0.02,
		RecoveryQuiet: 40 * time.Millisecond,
		Timeout:       60 * time.Second,
	})

	// Crash four of the six goroutine-processes mid-run.
	for i, d := range []time.Duration{120, 140, 160, 180} {
		node := gossipbnb.LiveNodeID(i + 2)
		d := d
		time.AfterFunc(d*time.Millisecond, func() { cl.Crash(node) })
	}

	res := cl.Run()
	fmt.Printf("terminated=%v in %v wall clock\n", res.Terminated, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("optimum %.3f (correct=%v), %d expansions, %d messages, %d bytes\n",
		res.Optimum, res.OptimumOK, res.Expanded, res.MsgsSent, res.BytesSent)
	if !res.Terminated || !res.OptimumOK {
		log.Fatal("live cluster failed the scenario")
	}
	fmt.Println("two survivors finished the search after four of six goroutines crashed")
}
