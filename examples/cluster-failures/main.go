// Cluster-failures: the paper's headline scenario at cluster scale. A
// 32-process simulated pool solves a ~10,000-node problem while processes
// crash throughout the run — including a burst that leaves only a handful of
// survivors — a third of the crashed machines later reboot and rejoin with
// empty state, and a temporary network partition splits the pool in half.
// The run must still terminate with the exact optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"gossipbnb"
)

func main() {
	r := rand.New(rand.NewSource(7))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         10001,
		Cost:         gossipbnb.CostModel{Mean: 0.05, Sigma: 0.5},
		BoundSpread:  2,
		FeasibleProb: 0.1,
	})
	st := tree.Stats()
	fmt.Printf("problem: %d nodes, %.0f s of uniprocessor work\n", st.Size, st.TotalCost)

	// Failure-free reference run.
	base := gossipbnb.Run(tree, gossipbnb.SimConfig{Procs: 32, Seed: 1, RecoveryQuiet: 15})
	fmt.Printf("failure-free: %.1f s on 32 processes (speedup %.1fx)\n",
		base.Time, st.TotalCost/base.Time)

	// Now the hostile run: rolling crashes of 24 of the 32 processes plus a
	// 60-second partition isolating a third of the pool.
	cfg := gossipbnb.SimConfig{
		Procs: 32, Seed: 1, RecoveryQuiet: 15,
		Partitions: []gossipbnb.Partition{
			{Start: 0.3 * base.Time, End: 0.3*base.Time + 60,
				Group: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		},
	}
	restarts := 0
	for i := 0; i < 24; i++ {
		c := gossipbnb.Crash{
			// Crash every ~4% of the run, starting at 10%.
			Time: (0.10 + 0.035*float64(i)) * base.Time,
			Node: 31 - i,
		}
		if i%3 == 0 {
			// Every third machine reboots ~20% of the run later and rejoins
			// with an empty table, rebuilding purely from gossip.
			c.Restart = c.Time + 0.2*base.Time
			restarts++
		}
		cfg.Crashes = append(cfg.Crashes, c)
	}
	fmt.Printf("scheduling 24 crashes, of which %d machines restart\n", restarts)
	res := gossipbnb.Run(tree, cfg)
	fmt.Printf("hostile run: terminated=%v in %.1f s (%.2fx the failure-free time)\n",
		res.Terminated, res.Time, res.Time/base.Time)
	fmt.Printf("             optimum correct=%v, %d redundant expansions (%.1f%% of the tree)\n",
		res.OptimumOK, res.Redundant, 100*float64(res.Redundant)/float64(st.Size))
	recoveries := 0
	for i := range res.Met.Nodes {
		recoveries += res.Met.Nodes[i].Recoveries
	}
	fmt.Printf("             %d complement-based recoveries, %d messages cut by the partition\n",
		recoveries, res.Net.Cut)

	if !res.Terminated || !res.OptimumOK {
		log.SetFlags(0)
		log.Println("FAILURE: the run did not survive the scenario")
		os.Exit(1)
	}
	fmt.Println("the pool survived 24 crashes and a partition with the solution intact")
}
