// Tcp-cluster: run the protocol over real TCP sockets on the loopback
// interface — one listener per process, length-prefixed binary frames, lazy
// dialing — and crash half the cluster mid-run. This is the repository's
// closest stand-in for the paper's "collection of Internet-connected
// computers".
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gossipbnb"
)

func main() {
	r := rand.New(rand.NewSource(17))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         2001,
		Cost:         gossipbnb.CostModel{Mean: 0.02, Sigma: 0.3},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	st := tree.Stats()
	fmt.Printf("problem: %d nodes, %.0f s of simulated work (scaled 500x down)\n",
		st.Size, st.TotalCost)

	nw, err := gossipbnb.NewTCPNetwork(4)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fmt.Printf("process %d listens on %s\n", i, nw.Addr(gossipbnb.LiveNodeID(i)))
	}

	cl := gossipbnb.NewLiveCluster(tree, gossipbnb.LiveConfig{
		Nodes:         4,
		Seed:          17,
		TimeScale:     0.002,
		Network:       nw,
		RecoveryQuiet: 50 * time.Millisecond,
		Timeout:       120 * time.Second,
	})
	time.AfterFunc(150*time.Millisecond, func() { cl.Crash(2) })
	time.AfterFunc(170*time.Millisecond, func() { cl.Crash(3) })

	res := cl.Run()
	fmt.Printf("terminated=%v in %v, optimum %.3f (correct=%v)\n",
		res.Terminated, res.Elapsed.Round(time.Millisecond), res.Optimum, res.OptimumOK)
	fmt.Printf("%d expansions, %d TCP messages, %d payload bytes\n",
		res.Expanded, res.MsgsSent, res.BytesSent)
	if !res.Terminated || !res.OptimumOK {
		log.Fatal("TCP cluster failed the scenario")
	}
	fmt.Println("two survivors finished over real sockets after two processes crashed")
}
