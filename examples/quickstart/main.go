// Quickstart: solve a knapsack with the sequential engine, record its basic
// tree, then solve the same problem with the simulated distributed algorithm
// and check both agree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gossipbnb"
)

func main() {
	// A 0/1 knapsack: maximize packed value within capacity 50.
	k, err := gossipbnb.NewKnapsack(
		[]float64{60, 100, 120, 70, 90}, // values
		[]float64{10, 20, 30, 15, 25},   // weights
		50,
	)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Sequential branch and bound (best-first).
	res := gossipbnb.Solve(k.Root(), gossipbnb.SolveOptions{})
	fmt.Printf("sequential: best value %.0f after expanding %d nodes\n",
		k.Best(res), res.Expanded)
	fmt.Printf("            optimal node code: %v\n", res.Solution)

	// 2. Record the basic tree (the paper's instrumented-run artifact).
	r := rand.New(rand.NewSource(1))
	tree := gossipbnb.KnapsackTree(k, r, gossipbnb.CostModel{Mean: 0.05, Sigma: 0.3}, 0)
	st := tree.Stats()
	fmt.Printf("basic tree: %d nodes, %.1fs of uniprocessor work, optimum %.0f\n",
		st.Size, st.TotalCost, -st.Optimum)

	// 3. Solve it with the decentralized fault-tolerant algorithm on four
	//    simulated processes (virtual time: the run is instant for us).
	sim := gossipbnb.Run(tree, gossipbnb.SimConfig{Procs: 4, Seed: 42, Prune: true})
	fmt.Printf("distributed: terminated=%v in %.2fs of virtual time, optimum %.0f (correct=%v)\n",
		sim.Terminated, sim.Time, -sim.Optimum, sim.OptimumOK)
	fmt.Printf("             %d expansions (%d redundant), %d messages, %d bytes\n",
		sim.Expanded, sim.Redundant, sim.Net.Sent, sim.Net.Bytes)
}
