// Self-healing: a TCP cluster rides out a network partition with zero
// orchestration. The nemesis severs two processes from the other two
// mid-run and heals the cut later; nobody calls Crash, nobody restarts
// anything. Each side's failure detector notices the silence (heartbeats
// piggybacked on gossip, explicit pings only on idle links), suspects and
// then excludes the unreachable peers — the same §5.2 view shrink a crash
// produces — and keeps working on what it can reach. When the partition
// heals, Hello probes cross the mended link, the excluded peers are
// re-absorbed with a completion-table bootstrap, and the cluster finishes
// with the correct optimum, every view whole again.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gossipbnb"
)

func main() {
	r := rand.New(rand.NewSource(41))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         2001,
		Cost:         gossipbnb.CostModel{Mean: 0.02, Sigma: 0.3},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	st := tree.Stats()
	fmt.Printf("problem: %d nodes, %.0f s of simulated work (scaled down)\n",
		st.Size, st.TotalCost)

	// Cut {0,1} off from {2,3} between 100 ms and 400 ms into the run.
	sched, err := gossipbnb.ParseNemesis("partition:0.1-0.4:0,1|2,3")
	if err != nil {
		log.Fatal(err)
	}

	nw, err := gossipbnb.NewTCPNetwork(4)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	cl := gossipbnb.NewLiveCluster(tree, gossipbnb.LiveConfig{
		Nodes:         4,
		Seed:          41,
		TimeScale:     0.01,
		Network:       nw,
		RecoveryQuiet: 30 * time.Millisecond,
		SuspectAfter:  30 * time.Millisecond,
		ExcludeAfter:  120 * time.Millisecond,
		Nemesis:       sched,
		Linger:        time.Second,
		Timeout:       120 * time.Second,
		OnDetect: func(e gossipbnb.DetectEvent) {
			fmt.Printf("  %6s  node %d %s node %d\n",
				time.Since(start).Round(time.Millisecond), e.Node, e.Kind, e.Peer)
		},
	})

	res := cl.Run()
	fmt.Printf("terminated=%v in %v, optimum %.3f (correct=%v)\n",
		res.Terminated, res.Elapsed.Round(time.Millisecond), res.Optimum, res.OptimumOK)
	fmt.Printf("network: %d msgs, %d cut by the partition, %d suppressed toward excluded peers\n",
		res.Net.Sent, res.Net.Cut, res.Net.Suspect)
	fmt.Printf("detector: %d suspicions, %d exclusions, %d re-absorbed\n",
		res.Health.Suspicions, res.Health.Exclusions, res.Health.Reabsorbed)

	for id := 0; id < 4; id++ {
		if v := cl.PeerView(gossipbnb.LiveNodeID(id)); len(v) != 3 {
			log.Fatalf("node %d ended with view %v — a live peer stayed excluded", id, v)
		}
	}
	if !res.Terminated || !res.OptimumOK {
		log.Fatal("self-healing scenario failed")
	}
	fmt.Println("partition detected, excluded, healed, and re-absorbed — zero Crash calls")
}
