// Membership-churn: run the distributed B&B with the §5.2 gossip membership
// protocol enabled (the paper's own simulations predetermine the pool; this
// is its stated future work). Processes discover each other through gossip
// servers, pick load-balancing partners from their live views, and the
// computation survives crashes that the membership layer detects by
// heartbeat timeout.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gossipbnb"
)

func main() {
	r := rand.New(rand.NewSource(11))
	tree := gossipbnb.RandomTree(r, gossipbnb.RandomTreeConfig{
		Size:         4001,
		Cost:         gossipbnb.CostModel{Mean: 0.05, Sigma: 0.4},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	st := tree.Stats()
	fmt.Printf("problem: %d nodes, %.0f s of uniprocessor work\n", st.Size, st.TotalCost)

	for _, withMembership := range []bool{false, true} {
		cfg := gossipbnb.SimConfig{
			Procs: 12, Seed: 11,
			UseMembership: withMembership,
			RecoveryQuiet: 20,
			Crashes: []gossipbnb.Crash{
				{Time: 20, Node: 9},
				{Time: 35, Node: 10},
				{Time: 50, Node: 11},
			},
		}
		res := gossipbnb.Run(tree, cfg)
		mode := "predetermined pool  "
		if withMembership {
			mode = "gossip membership   "
		}
		fmt.Printf("%s terminated=%v time=%.1fs optimum=%v redundant=%d msgs=%d\n",
			mode, res.Terminated, res.Time, res.OptimumOK, res.Redundant, res.Net.Sent)
		if !res.Terminated || !res.OptimumOK {
			log.Fatalf("%s run failed", mode)
		}
	}
	fmt.Println("both modes solved the problem through three crashes; membership adds")
	fmt.Println("heartbeat traffic but steers requests away from members it timed out")
}
