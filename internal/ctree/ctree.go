// Package ctree implements the completed-problem table of the paper's
// fault-tolerance mechanism (§5.3.2) together with its three derived
// operations:
//
//   - contraction: the recursive replacement of pairs of sibling codes with
//     the code of their parent, and the deletion of codes whose ancestors are
//     also present, which keeps tables and work reports small;
//   - complement: the minimal list of codes covering every tree node *not*
//     known to be completed, which is how a process picks lost work to redo;
//   - termination detection (§5.4): successive contractions reaching the code
//     of the root problem prove that every expanded problem was completed.
//
// The table assumes deterministic decomposition: every processor that
// branches a given subproblem branches it on the same condition variable.
// This holds for the paper's "basic tree"-driven execution, where the
// decompose operator is recorded in the tree itself.
package ctree

import (
	"fmt"

	"gossipbnb/internal/code"
)

// node is one vertex of the completion trie. Its position in the trie is the
// code of the corresponding B&B tree node.
type node struct {
	branchVar uint32 // condition variable the children branch on
	children  [2]*node
	hasChild  [2]bool
	complete  bool
}

// Table is a contracted set of completed-problem codes. The zero value is not
// usable; call New. Table is not safe for concurrent use: in the simulator
// each process owns its table, and in the live runtime each node guards its
// table with the node's own mutex.
type Table struct {
	root      *node
	nodeCount int // trie vertices, for storage accounting
}

// New returns an empty table: nothing is known to be completed.
func New() *Table {
	return &Table{root: &node{}, nodeCount: 1}
}

// VarMismatchError reports an Insert whose code branches a subproblem on a
// different condition variable than a previously inserted code — impossible
// under deterministic decomposition, so it indicates a corrupt or forged
// report.
type VarMismatchError struct {
	Code  code.Code
	Depth int
	Want  uint32
	Got   uint32
}

func (e *VarMismatchError) Error() string {
	return fmt.Sprintf("ctree: code %v branches on x%d at depth %d, table has x%d",
		e.Code, e.Got, e.Depth, e.Want)
}

// Insert records that the subproblem encoded by c has been completed, then
// contracts. It returns true if the table changed (false when c was already
// subsumed by a completed ancestor or an identical entry).
func (t *Table) Insert(c code.Code) (bool, error) {
	n := t.root
	// Walk the path, creating trie vertices as needed.
	for depth, d := range c {
		if n.complete {
			return false, nil // an ancestor is complete: c is subsumed
		}
		if !n.hasChild[0] && !n.hasChild[1] {
			n.branchVar = d.Var
		} else if n.branchVar != d.Var {
			return false, &VarMismatchError{Code: c, Depth: depth, Want: n.branchVar, Got: d.Var}
		}
		b := d.Branch & 1
		if !n.hasChild[b] {
			n.children[b] = &node{}
			n.hasChild[b] = true
			t.nodeCount++
		}
		n = n.children[b]
	}
	if n.complete {
		return false, nil
	}
	n.complete = true
	t.prune(n)
	t.contract(c)
	return true, nil
}

// prune discards the subtree below a node that just became complete; its
// descendants carry no extra information.
func (t *Table) prune(n *node) {
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			t.nodeCount -= count(n.children[b])
			n.children[b] = nil
			n.hasChild[b] = false
		}
	}
}

func count(n *node) int {
	c := 1
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			c += count(n.children[b])
		}
	}
	return c
}

// contract walks the path of c bottom-up, replacing complete sibling pairs
// with their parent.
func (t *Table) contract(c code.Code) {
	for depth := len(c); depth > 0; depth-- {
		// Re-walk from the root to the node at depth-1 (the parent).
		p := t.root
		for i := 0; i < depth-1; i++ {
			p = p.children[c[i].Branch&1]
			if p == nil {
				return // path was pruned by a completed ancestor
			}
		}
		if p.complete {
			return
		}
		if !p.hasChild[0] || !p.hasChild[1] ||
			!p.children[0].complete || !p.children[1].complete {
			return // cannot contract further
		}
		p.complete = true
		t.prune(p)
	}
}

// Complete reports whether the root problem is known completed — the paper's
// termination condition.
func (t *Table) Complete() bool { return t.root.complete }

// Contains reports whether the subproblem encoded by c is known completed,
// either directly or through a completed ancestor.
func (t *Table) Contains(c code.Code) bool {
	n := t.root
	for _, d := range c {
		if n.complete {
			return true
		}
		if !n.hasChild[d.Branch&1] || n.branchVar != d.Var {
			return false
		}
		n = n.children[d.Branch&1]
	}
	return n.complete
}

// Codes returns the contracted frontier: the minimal set of codes whose
// completion implies everything the table knows. This is exactly what a
// process sends when it gossips its whole table. Order is deterministic
// (depth-first, branch 0 before branch 1).
func (t *Table) Codes() []code.Code {
	var out []code.Code
	var walk func(n *node, prefix code.Code)
	walk = func(n *node, prefix code.Code) {
		if n.complete {
			out = append(out, prefix.Clone())
			return
		}
		for b := uint8(0); b < 2; b++ {
			if n.hasChild[b] {
				walk(n.children[b], prefix.Child(n.branchVar, b))
			}
		}
	}
	walk(t.root, code.Root())
	return out
}

// Complement returns a minimal set of codes covering every tree node not
// known completed. A process that suspects work has been lost picks an entry
// of the complement and re-solves it (§5.3.2 failure recovery). If max > 0,
// at most max codes are returned. An empty result means the table is
// complete. An empty *table* yields the root code: nothing is known, so
// everything must be (re)done.
func (t *Table) Complement(max int) []code.Code {
	var out []code.Code
	var walk func(n *node, prefix code.Code) bool // returns false when max hit
	walk = func(n *node, prefix code.Code) bool {
		if n.complete {
			return true
		}
		if !n.hasChild[0] && !n.hasChild[1] {
			// Nothing below this node has been reported: the whole
			// subproblem is (as far as we know) outstanding.
			out = append(out, prefix.Clone())
			return max <= 0 || len(out) < max
		}
		for b := uint8(0); b < 2; b++ {
			child := prefix.Child(n.branchVar, b)
			if n.hasChild[b] {
				if !walk(n.children[b], child) {
					return false
				}
			} else {
				// The sibling branch was reported but this branch never
				// was: complement it (the paper's "complementing the code
				// of a solved problem whose sibling is not solved").
				out = append(out, child)
				if max > 0 && len(out) >= max {
					return false
				}
			}
		}
		return true
	}
	walk(t.root, code.Root())
	return out
}

// Merge inserts every frontier code of other into t. It returns the number
// of codes that changed t. Var-mismatch entries are counted in errs.
func (t *Table) Merge(other *Table) (changed int, errs int) {
	return t.InsertAll(other.Codes())
}

// InsertAll inserts each code, returning how many changed the table and how
// many failed validation.
func (t *Table) InsertAll(cs []code.Code) (changed int, errs int) {
	for _, c := range cs {
		ok, err := t.Insert(c)
		if err != nil {
			errs++
			continue
		}
		if ok {
			changed++
		}
	}
	return changed, errs
}

// Len returns the number of frontier codes (complete trie vertices).
func (t *Table) Len() int {
	n := 0
	var walk func(*node)
	walk = func(v *node) {
		if v.complete {
			n++
			return
		}
		for b := 0; b < 2; b++ {
			if v.hasChild[b] {
				walk(v.children[b])
			}
		}
	}
	walk(t.root)
	return n
}

// NodeCount returns the number of trie vertices, a proxy for in-memory size.
func (t *Table) NodeCount() int { return t.nodeCount }

// WireSize returns the number of bytes Encode produces: the simulator charges
// this against the communication model when a table is gossiped.
func (t *Table) WireSize() int {
	sz := 1 // count varint; tables are small enough that 1 byte dominates
	cs := t.Codes()
	sz = uvarintLen(uint64(len(cs)))
	for _, c := range cs {
		sz += c.WireSize()
	}
	return sz
}

// Encode appends the wire encoding of the table (its contracted frontier) to
// dst.
func (t *Table) Encode(dst []byte) []byte {
	return code.AppendAll(dst, t.Codes())
}

// Decode reconstructs a table from Encode output.
func Decode(buf []byte) (*Table, error) {
	cs, _, err := code.DecodeAll(buf)
	if err != nil {
		return nil, err
	}
	t := New()
	if _, errs := t.InsertAll(cs); errs > 0 {
		return nil, fmt.Errorf("ctree: decode: %d invalid codes", errs)
	}
	return t, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New()
	c.root = cloneNode(t.root)
	c.nodeCount = t.nodeCount
	return c
}

func cloneNode(n *node) *node {
	m := &node{branchVar: n.branchVar, hasChild: n.hasChild, complete: n.complete}
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			m.children[b] = cloneNode(n.children[b])
		}
	}
	return m
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
