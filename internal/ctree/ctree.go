// Package ctree implements the completed-problem table of the paper's
// fault-tolerance mechanism (§5.3.2) together with its three derived
// operations:
//
//   - contraction: the recursive replacement of pairs of sibling codes with
//     the code of their parent, and the deletion of codes whose ancestors are
//     also present, which keeps tables and work reports small;
//   - complement: the minimal list of codes covering every tree node *not*
//     known to be completed, which is how a process picks lost work to redo;
//   - termination detection (§5.4): successive contractions reaching the code
//     of the root problem prove that every expanded problem was completed.
//
// The table assumes deterministic decomposition: every processor that
// branches a given subproblem branches it on the same condition variable.
// This holds for the paper's "basic tree"-driven execution, where the
// decompose operator is recorded in the tree itself.
//
// The implementation is the protocol's hot path — every completion, report
// flush, table gossip, and wire-size query goes through it — so it is tuned
// to be O(depth) per insert and allocation-lean (DESIGN.md "Completion-table
// hot path"): Insert keeps an explicit path stack so contraction walks
// bottom-up without re-walking from the root per level; the walks share one
// prefix scratch buffer; the contracted frontier and its wire size are cached
// and invalidated on mutation; pruned trie vertices feed a free list that
// later inserts pop instead of allocating. The reference implementation the
// optimizations are property-tested against lives in reference_test.go.
package ctree

import (
	"fmt"
	"slices"

	"gossipbnb/internal/code"
)

// node is one vertex of the completion trie. Its position in the trie is the
// code of the corresponding B&B tree node. Free-listed nodes are threaded
// through children[0].
type node struct {
	branchVar uint32 // condition variable the children branch on
	children  [2]*node
	hasChild  [2]bool
	complete  bool

	// digest caches the content digest of the subtree rooted here (see
	// digest.go); digestOK is its validity bit, cleared along the mutation
	// path exactly like the table-level frontier cache.
	digest   uint64
	digestOK bool
}

// Table is a contracted set of completed-problem codes. The zero value is not
// usable; call New. Table is not safe for concurrent use: in the simulator
// each process owns its table, and in the live runtime each node guards its
// table with the node's own mutex.
type Table struct {
	root      *node
	nodeCount int // trie vertices, for storage accounting

	// free is the head of the trie-node free list, threaded through
	// children[0]. prune feeds it; newNode pops it.
	free *node

	// frontier caches Codes() output and wireSize caches WireSize(); both are
	// invalidated (frontier dropped, never mutated in place — callers may
	// still hold the old slice) by any mutation that changes the frontier.
	frontier   []code.Code
	frontierOK bool
	wireSize   int
	wireOK     bool

	// Reused scratch space. path holds the root-to-leaf node stack of the
	// last insert (path[i] = vertex at depth i); scratch is the shared walk
	// prefix; frames and nstack are the iterative-walk stacks; sortBuf holds
	// InsertAll's sorted view of its input.
	path    []*node
	scratch code.Code
	frames  []walkFrame
	nstack  []*node
	sortBuf []code.Code
}

// walkFrame is one level of an iterative depth-first walk: the vertex and the
// next branch to visit (0, 1, or 2 = exhausted).
type walkFrame struct {
	n *node
	b int8
}

// New returns an empty table: nothing is known to be completed.
func New() *Table {
	return &Table{root: &node{}, nodeCount: 1}
}

// Reset empties the table in place, recycling every trie vertex through the
// free list so the next inserts allocate nothing. The protocol core resets
// its report outbox on every flush instead of allocating a fresh table.
func (t *Table) Reset() {
	t.prune(t.root)
	*t.root = node{}
	t.invalidate()
}

// invalidate drops the cached frontier and wire size after a mutation. The
// old frontier slice is abandoned, not reused: callers of Codes may still
// hold it (e.g. a report in flight).
func (t *Table) invalidate() {
	t.frontier = nil
	t.frontierOK = false
	t.wireOK = false
}

// newNode pops a recycled vertex off the free list, or allocates one.
func (t *Table) newNode() *node {
	n := t.free
	if n == nil {
		return &node{}
	}
	t.free = n.children[0]
	*n = node{}
	return n
}

// VarMismatchError reports an Insert whose code branches a subproblem on a
// different condition variable than a previously inserted code — impossible
// under deterministic decomposition, so it indicates a corrupt or forged
// report.
type VarMismatchError struct {
	Code  code.Code
	Depth int
	Want  uint32
	Got   uint32
}

func (e *VarMismatchError) Error() string {
	return fmt.Sprintf("ctree: code %v branches on x%d at depth %d, table has x%d",
		e.Code, e.Got, e.Depth, e.Want)
}

// Insert records that the subproblem encoded by c has been completed, then
// contracts. It returns true if the table changed (false when c was already
// subsumed by a completed ancestor or an identical entry).
func (t *Table) Insert(c code.Code) (bool, error) {
	ok, _, err := t.insertFrom(c, 0)
	return ok, err
}

// insertFrom is Insert starting at depth from, reusing t.path[:from+1] — the
// vertices a previous insertFrom walked for a code sharing this prefix. The
// caller guarantees every reused vertex is live and incomplete (see
// InsertAll). It returns the number of path entries that remain valid for the
// next prefix-sharing insert: vertices at depths < valid are live and
// incomplete; the vertex at depth valid (if walked) may be complete.
//
// The single path stack is what makes contraction O(depth): the old
// implementation re-walked from the root for every level it contracted,
// paying O(depth²) per insert.
func (t *Table) insertFrom(c code.Code, from int) (changed bool, valid int, err error) {
	if from == 0 {
		t.path = append(t.path[:0], t.root)
	} else {
		t.path = t.path[:from+1]
	}
	n := t.path[from]
	for depth := from; depth < len(c); depth++ {
		d := c[depth]
		if n.complete {
			return false, depth, nil // an ancestor is complete: c is subsumed
		}
		if !n.hasChild[0] && !n.hasChild[1] {
			n.branchVar = d.Var
		} else if n.branchVar != d.Var {
			return false, depth, &VarMismatchError{Code: c, Depth: depth, Want: n.branchVar, Got: d.Var}
		}
		b := d.Branch & 1
		if !n.hasChild[b] {
			n.children[b] = t.newNode()
			n.hasChild[b] = true
			t.nodeCount++
		}
		n = n.children[b]
		t.path = append(t.path, n)
	}
	if n.complete {
		return false, len(c), nil
	}
	n.complete = true
	t.prune(n)
	// Contract bottom-up along the recorded path, replacing complete sibling
	// pairs with their parent. Vertices below the shallowest completed depth
	// are recycled, so only path[:valid+1] survives for prefix reuse.
	valid = len(c)
	for i := len(c) - 1; i >= 0; i-- {
		p := t.path[i]
		if !p.hasChild[0] || !p.hasChild[1] ||
			!p.children[0].complete || !p.children[1].complete {
			break // cannot contract further
		}
		p.complete = true
		t.prune(p)
		valid = i
	}
	// Every vertex on the walked path now roots a changed subtree, so their
	// cached digests are stale. Vertices recycled by the contraction above
	// were zeroed by prune; re-clearing them is harmless. Nothing off the
	// path changed, so nothing else needs touching — this is the same
	// invalidation discipline as the frontier cache, pushed down to vertices.
	for _, v := range t.path {
		v.digestOK = false
	}
	t.invalidate()
	return true, valid, nil
}

// prune recycles the subtrees below a node that just became complete; its
// descendants carry no extra information. The walk is iterative and feeds the
// free list, so a prune is allocation-free and later inserts reuse the
// vertices.
func (t *Table) prune(n *node) {
	t.nstack = t.nstack[:0]
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			t.nstack = append(t.nstack, n.children[b])
			n.children[b] = nil
			n.hasChild[b] = false
		}
	}
	for len(t.nstack) > 0 {
		v := t.nstack[len(t.nstack)-1]
		t.nstack = t.nstack[:len(t.nstack)-1]
		for b := 0; b < 2; b++ {
			if v.hasChild[b] {
				t.nstack = append(t.nstack, v.children[b])
			}
		}
		t.nodeCount--
		*v = node{children: [2]*node{t.free, nil}}
		t.free = v
	}
}

// Complete reports whether the root problem is known completed — the paper's
// termination condition.
func (t *Table) Complete() bool { return t.root.complete }

// Contains reports whether the subproblem encoded by c is known completed,
// either directly or through a completed ancestor.
func (t *Table) Contains(c code.Code) bool {
	n := t.root
	for _, d := range c {
		if n.complete {
			return true
		}
		if !n.hasChild[d.Branch&1] || n.branchVar != d.Var {
			return false
		}
		n = n.children[d.Branch&1]
	}
	return n.complete
}

// Covering returns the contraction of c in the table: the code of the
// shallowest completed node on c's path — the ancestor (or c itself) whose
// completion subsumes everything under it. ok is false when c is not
// contained. The result is a prefix of c and aliases its storage; callers
// must treat it as immutable.
func (t *Table) Covering(c code.Code) (code.Code, bool) {
	n := t.root
	for i, d := range c {
		if n.complete {
			return c[:i:i], true
		}
		if !n.hasChild[d.Branch&1] || n.branchVar != d.Var {
			return nil, false
		}
		n = n.children[d.Branch&1]
	}
	if n.complete {
		return c, true
	}
	return nil, false
}

// Codes returns the contracted frontier: the minimal set of codes whose
// completion implies everything the table knows. This is exactly what a
// process sends when it gossips its whole table. Order is deterministic
// (depth-first, branch 0 before branch 1).
//
// The result is cached until the next mutation; callers must treat both the
// slice and its codes as immutable. A mutation abandons the cache rather than
// reusing it, so a previously returned slice (say, a report in flight) is
// never scribbled over.
func (t *Table) Codes() []code.Code {
	if !t.frontierOK {
		t.frontier = t.appendFrontier(nil)
		t.frontierOK = true
	}
	return t.frontier
}

// appendFrontier appends the frontier codes to out with one iterative
// depth-first walk over a shared prefix scratch: the only allocations are the
// returned codes themselves, one per frontier entry, instead of one clone per
// trie edge as the recursive prefix.Child walk paid.
func (t *Table) appendFrontier(out []code.Code) []code.Code {
	out, _ = t.appendFrontierFrom(t.root, out, 0)
	return out
}

// appendFrontierFrom is appendFrontier generalized to the subtree rooted at
// start: codes are emitted relative to start's position. If max > 0 the walk
// aborts once more than max codes would be emitted and reports ok = false —
// the anti-entropy responder uses this to decide between inlining a small
// subtree's codes and descending another level of the digest walk.
func (t *Table) appendFrontierFrom(start *node, out []code.Code, max int) (_ []code.Code, ok bool) {
	t.scratch = t.scratch[:0]
	t.frames = append(t.frames[:0], walkFrame{n: start})
	emitted := 0
	for len(t.frames) > 0 {
		f := &t.frames[len(t.frames)-1]
		if f.b == 0 && f.n.complete {
			if emitted++; max > 0 && emitted > max {
				return out, false
			}
			out = append(out, t.scratch.Clone())
			f.b = 2
		}
		descended := false
		for f.b < 2 {
			b := f.b
			f.b++ // advance before the push below: append may move the frame
			if f.n.hasChild[b] {
				t.scratch = t.scratch.AppendChild(f.n.branchVar, uint8(b))
				t.frames = append(t.frames, walkFrame{n: f.n.children[b]})
				descended = true
				break
			}
		}
		if !descended {
			t.frames = t.frames[:len(t.frames)-1]
			if len(t.scratch) > 0 {
				t.scratch = t.scratch[:len(t.scratch)-1]
			}
		}
	}
	return out, true
}

// Complement returns a minimal set of codes covering every tree node not
// known completed. A process that suspects work has been lost picks an entry
// of the complement and re-solves it (§5.3.2 failure recovery). If max > 0,
// at most max codes are returned. An empty result means the table is
// complete. An empty *table* yields the root code: nothing is known, so
// everything must be (re)done.
func (t *Table) Complement(max int) []code.Code {
	var out []code.Code
	t.scratch = t.scratch[:0]
	t.frames = append(t.frames[:0], walkFrame{n: t.root})
	for len(t.frames) > 0 {
		f := &t.frames[len(t.frames)-1]
		if f.b == 0 {
			if f.n.complete {
				f.b = 2
			} else if !f.n.hasChild[0] && !f.n.hasChild[1] {
				// Nothing below this node has been reported: the whole
				// subproblem is (as far as we know) outstanding.
				out = append(out, t.scratch.Clone())
				if max > 0 && len(out) >= max {
					return out
				}
				f.b = 2
			}
		}
		if f.b < 2 {
			b := uint8(f.b)
			f.b++
			t.scratch = t.scratch.AppendChild(f.n.branchVar, b)
			if f.n.hasChild[b] {
				t.frames = append(t.frames, walkFrame{n: f.n.children[b]})
				continue
			}
			// The sibling branch was reported but this branch never was:
			// complement it (the paper's "complementing the code of a solved
			// problem whose sibling is not solved").
			out = append(out, t.scratch.Clone())
			t.scratch = t.scratch[:len(t.scratch)-1]
			if max > 0 && len(out) >= max {
				return out
			}
			continue
		}
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.scratch) > 0 {
			t.scratch = t.scratch[:len(t.scratch)-1]
		}
	}
	return out
}

// Merge inserts every frontier code of other into t. It returns the number
// of codes that changed t. Var-mismatch entries are counted in errs.
func (t *Table) Merge(other *Table) (changed int, errs int) {
	return t.InsertAll(other.Codes())
}

// InsertAll inserts each code, returning how many changed the table and how
// many failed validation. Batches are sorted into prefix order (into a
// scratch copy — cs itself, often a cached frontier or an in-flight message
// payload, is never reordered) so consecutive codes reuse the common-ancestor
// portion of the path walk, and so ancestors land before the descendants they
// subsume. The changed count of a batch with internal subsumption can
// therefore differ from inserting in the caller's order, but whether it is
// zero — the only protocol-visible property — cannot: changed == 0 exactly
// when every code was already subsumed by the initial table.
func (t *Table) InsertAll(cs []code.Code) (changed int, errs int) {
	if len(cs) == 1 { // overwhelmingly the common case for work reports
		ok, err := t.Insert(cs[0])
		if err != nil {
			return 0, 1
		}
		if ok {
			return 1, 0
		}
		return 0, 0
	}
	t.sortBuf = append(t.sortBuf[:0], cs...)
	// slices.SortFunc, not sort.Slice: the reflection-based sorter allocates
	// a Swapper closure per call, and InsertAll runs once per received
	// report/table/grant — tens of thousands of times in a big run.
	slices.SortFunc(t.sortBuf, prefixCmp)
	var prev code.Code
	valid := 0
	for _, c := range t.sortBuf {
		from := commonPrefixLen(prev, c)
		if from > valid {
			from = valid
		}
		ok, v, err := t.insertFrom(c, from)
		prev, valid = c, v
		if err != nil {
			errs++
			continue
		}
		if ok {
			changed++
		}
	}
	return changed, errs
}

// prefixLess orders codes so that codes sharing a prefix are adjacent and
// every ancestor precedes its descendants: decision-wise, ties to the
// shorter code.
func prefixLess(a, b code.Code) bool { return prefixCmp(a, b) < 0 }

// prefixCmp is the three-way form of the decision-prefix order.
func prefixCmp(a, b code.Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i].Var != b[i].Var {
				if a[i].Var < b[i].Var {
					return -1
				}
				return 1
			}
			if a[i].Branch < b[i].Branch {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// commonPrefixLen returns the length of the longest common decision prefix.
func commonPrefixLen(a, b code.Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Len returns the number of frontier codes (complete trie vertices).
func (t *Table) Len() int {
	if t.frontierOK {
		return len(t.frontier)
	}
	n := 0
	t.nstack = append(t.nstack[:0], t.root)
	for len(t.nstack) > 0 {
		v := t.nstack[len(t.nstack)-1]
		t.nstack = t.nstack[:len(t.nstack)-1]
		if v.complete {
			n++
			continue
		}
		for b := 0; b < 2; b++ {
			if v.hasChild[b] {
				t.nstack = append(t.nstack, v.children[b])
			}
		}
	}
	return n
}

// NodeCount returns the number of trie vertices, a proxy for in-memory size.
func (t *Table) NodeCount() int { return t.nodeCount }

// WireSize returns the number of bytes Encode produces: the simulator charges
// this against the communication model when a table is gossiped. Like the
// frontier it derives from, the size is cached until the next mutation.
func (t *Table) WireSize() int {
	if !t.wireOK {
		cs := t.Codes()
		sz := uvarintLen(uint64(len(cs)))
		for _, c := range cs {
			sz += c.WireSize()
		}
		t.wireSize, t.wireOK = sz, true
	}
	return t.wireSize
}

// Encode appends the wire encoding of the table (its contracted frontier) to
// dst.
func (t *Table) Encode(dst []byte) []byte {
	return code.AppendAll(dst, t.Codes())
}

// Decode reconstructs a table from Encode output. The whole buffer must be
// one encoded table: trailing bytes after the declared code count are
// rejected, so a corrupt or truncated-then-padded frame cannot half-decode.
func Decode(buf []byte) (*Table, error) {
	cs, n, err := code.DecodeAll(buf)
	if err != nil {
		return nil, err
	}
	if n != len(buf) {
		return nil, fmt.Errorf("ctree: decode: %d trailing bytes", len(buf)-n)
	}
	t := New()
	if _, errs := t.InsertAll(cs); errs > 0 {
		return nil, fmt.Errorf("ctree: decode: %d invalid codes", errs)
	}
	return t, nil
}

// Clone returns a deep copy of the table. Caches and scratch space are not
// copied; the clone derives its own on demand.
func (t *Table) Clone() *Table {
	c := New()
	c.root = cloneNode(t.root)
	c.nodeCount = t.nodeCount
	return c
}

func cloneNode(n *node) *node {
	m := &node{branchVar: n.branchVar, hasChild: n.hasChild, complete: n.complete}
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			m.children[b] = cloneNode(n.children[b])
		}
	}
	return m
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
