package ctree

import (
	"fmt"

	"gossipbnb/internal/code"
)

// Content-addressed digests over the completion trie, the foundation of the
// protocol's anti-entropy diff gossip (DESIGN.md "Anti-entropy diff gossip").
//
// Contraction makes the trie canonical: every leaf is complete, so the trie's
// shape and completion marks are a pure function of the frontier set — two
// tables with equal frontiers have structurally identical tries, and
// (modulo hash collisions) equal root digests. The digest of a vertex is:
//
//   - a fixed constant for a complete vertex. Its branchVar is dead state
//     (contraction marks parents complete without clearing it), and "this
//     whole subtree is done" means the same thing wherever it appears, so
//     the constant is position-independent by design;
//   - for an internal vertex, a mix of its branching variable and, per
//     branch, a presence marker and the child's digest;
//   - a distinct constant for the bare root of an empty table.
//
// Digests are maintained incrementally: insertFrom clears the validity bit
// of every vertex on its mutation path (the same path the contraction loop
// walks), and Digest recomputes only invalidated subtrees. The property
// tests in digest_test.go pin incremental == recompute-from-scratch and
// digest equality ⇔ frontier equality over arbitrary mutation sequences.

const (
	// digestComplete is the digest of every complete vertex.
	digestComplete = 0x9ae16a3b2f90404f
	// digestEmpty seeds the digest of an internal vertex; it is also the
	// digest of an empty table's bare root.
	digestEmpty = 0xc3a5c85c97cb3127
	// digestAbsent is mixed in place of a missing child's digest.
	digestAbsent = 0x165667b19e3779f9
)

// mixDigest folds v into h, order-sensitively. The splitmix64 finalizer
// diffuses v across all 64 bits first, so near-identical inputs (adjacent
// variable numbers, similar child digests) land far apart.
func mixDigest(h, v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return (h ^ v) * 0x100000001b3
}

// digestOf returns n's subtree digest, recomputing and re-caching it if a
// mutation invalidated it. Recursion depth is the trie depth — the length of
// the longest inserted code.
func (t *Table) digestOf(n *node) uint64 {
	if n.digestOK {
		return n.digest
	}
	var h uint64
	switch {
	case n.complete:
		h = digestComplete
	case !n.hasChild[0] && !n.hasChild[1]:
		h = digestEmpty // the bare root of an empty table
	default:
		h = mixDigest(digestEmpty, uint64(n.branchVar))
		for b := 0; b < 2; b++ {
			if n.hasChild[b] {
				h = mixDigest(h, t.digestOf(n.children[b]))
			} else {
				h = mixDigest(h, digestAbsent)
			}
		}
	}
	n.digest = h
	n.digestOK = true
	return h
}

// Digest returns the content digest of the whole table. Tables with equal
// frontiers have equal digests; unequal frontiers collide with probability
// ~2^-64. Like Codes, the result is cached until the next mutation.
func (t *Table) Digest() uint64 { return t.digestOf(t.root) }

// DigestAt returns the digest of the subtree at prefix. known is false when
// the table records no completion under prefix — no vertex on the path, a
// branching-variable mismatch, or the bare root of an empty table. complete
// reports that the whole subtree is covered by a complete vertex at or above
// prefix's end.
func (t *Table) DigestAt(prefix code.Code) (digest uint64, known, complete bool) {
	n := t.root
	for _, d := range prefix {
		if n.complete {
			return digestComplete, true, true
		}
		b := d.Branch & 1
		if !n.hasChild[b] || n.branchVar != d.Var {
			return 0, false, false
		}
		n = n.children[b]
	}
	if !n.complete && !n.hasChild[0] && !n.hasChild[1] {
		return 0, false, false
	}
	return t.digestOf(n), true, n.complete
}

// ChildDigest describes one branch of a trie vertex to an anti-entropy
// walker: whether the branch holds any completions, and the digest of its
// subtree if so.
type ChildDigest struct {
	Present bool
	Digest  uint64
}

// Children returns the branching variable and per-branch digests of the
// vertex at prefix, for a sync responder describing a subtree too large to
// inline. ok is false when no vertex exists at prefix or the subtree there
// is already complete (nothing to walk into).
func (t *Table) Children(prefix code.Code) (branchVar uint32, kids [2]ChildDigest, ok bool) {
	n := t.root
	for _, d := range prefix {
		if n.complete {
			return 0, kids, false
		}
		b := d.Branch & 1
		if !n.hasChild[b] || n.branchVar != d.Var {
			return 0, kids, false
		}
		n = n.children[b]
	}
	if n.complete || (!n.hasChild[0] && !n.hasChild[1]) {
		return 0, kids, false
	}
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			kids[b] = ChildDigest{Present: true, Digest: t.digestOf(n.children[b])}
		}
	}
	return n.branchVar, kids, true
}

// SubtreeCodes exports the frontier of the subtree at prefix, relative to
// prefix (an empty code in the result means prefix itself is complete). A
// prefix the table knows nothing under yields nil. If max > 0 and the
// subtree frontier exceeds max codes, ok is false and nothing is exported —
// the responder should describe children digests instead.
func (t *Table) SubtreeCodes(prefix code.Code, max int) (rel []code.Code, ok bool) {
	n := t.root
	for _, d := range prefix {
		if n.complete {
			return []code.Code{code.Root()}, true
		}
		b := d.Branch & 1
		if !n.hasChild[b] || n.branchVar != d.Var {
			return nil, true // nothing known under prefix
		}
		n = n.children[b]
	}
	return t.appendFrontierFrom(n, nil, max)
}

// InsertSubtree merges an exported subtree back in: each relative code is
// re-anchored under prefix and inserted. It returns how many codes changed
// the table and how many failed validation, like InsertAll.
func (t *Table) InsertSubtree(prefix code.Code, rel []code.Code) (changed, errs int) {
	if len(rel) == 0 {
		return 0, 0
	}
	abs := make([]code.Code, len(rel))
	for i, r := range rel {
		abs[i] = code.Join(prefix, r)
	}
	return t.InsertAll(abs)
}

// EncodeSubtree appends the wire encoding of one exported subtree: the
// prefix code followed by the batch of frontier codes relative to it.
func EncodeSubtree(dst []byte, prefix code.Code, rel []code.Code) []byte {
	dst = prefix.Append(dst)
	return code.AppendAll(dst, rel)
}

// SubtreeWireSize returns the number of bytes EncodeSubtree produces.
func SubtreeWireSize(prefix code.Code, rel []code.Code) int {
	sz := prefix.WireSize() + uvarintLen(uint64(len(rel)))
	for _, c := range rel {
		sz += c.WireSize()
	}
	return sz
}

// DecodeSubtree parses EncodeSubtree output. Like Decode, the whole buffer
// must be exactly one encoded subtree: a malformed prefix or relative code
// fails the parse, and trailing bytes after the declared code count are
// rejected, so a corrupt or padded frame cannot half-decode.
func DecodeSubtree(buf []byte) (prefix code.Code, rel []code.Code, err error) {
	prefix, n, err := code.Decode(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("ctree: subtree prefix: %w", err)
	}
	rel, m, err := code.DecodeAll(buf[n:])
	if err != nil {
		return nil, nil, fmt.Errorf("ctree: subtree codes: %w", err)
	}
	if n+m != len(buf) {
		return nil, nil, fmt.Errorf("ctree: subtree: %d trailing bytes", len(buf)-n-m)
	}
	return prefix, rel, nil
}
