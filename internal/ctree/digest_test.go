package ctree

// Property tests for the content-addressed digest layer and the subtree
// export/import used by anti-entropy diff gossip: incremental digests must
// equal a from-scratch recompute after arbitrary mutation sequences, digest
// equality must coincide with frontier equality, and the subtree wire format
// must reject malformed and padded input like Decode does.

import (
	"math/rand"
	"testing"

	"gossipbnb/internal/code"
)

// scratchDigest recomputes a vertex digest bottom-up, neither reading nor
// writing any cache — the oracle the incremental maintenance is pinned to.
func scratchDigest(n *node) uint64 {
	switch {
	case n.complete:
		return digestComplete
	case !n.hasChild[0] && !n.hasChild[1]:
		return digestEmpty
	}
	h := mixDigest(digestEmpty, uint64(n.branchVar))
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			h = mixDigest(h, scratchDigest(n.children[b]))
		} else {
			h = mixDigest(h, digestAbsent)
		}
	}
	return h
}

// checkDigest verifies the two digest invariants on one table state:
// the incrementally maintained digest equals the from-scratch recompute, and
// the digest ↔ frontier correspondence holds against everything seen so far.
func checkDigest(t *testing.T, tbl *Table, byFrontier map[string]uint64, byDigest map[uint64]string) {
	t.Helper()
	d := tbl.Digest()
	if s := scratchDigest(tbl.root); d != s {
		t.Fatalf("incremental digest %#x != from-scratch %#x (frontier %v)", d, s, tbl.Codes())
	}
	f := string(tbl.Encode(nil))
	if prev, ok := byFrontier[f]; ok && prev != d {
		t.Fatalf("equal frontiers, digests %#x and %#x", prev, d)
	}
	if prev, ok := byDigest[d]; ok && prev != f {
		t.Fatalf("digest %#x collides: frontiers %x and %x", d, prev, f)
	}
	byFrontier[f] = d
	byDigest[d] = f
}

// TestPropDigestIncremental drives randomized Insert/InsertAll/Merge/corrupt
// insert/Reset/endgame sequences (the reference-harness mix) and checks the
// digest invariants after every step.
func TestPropDigestIncremental(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 9)
		byFrontier := map[string]uint64{}
		byDigest := map[uint64]string{}
		tbl, src := New(), New()
		for step := 0; step < 40; step++ {
			switch r.Intn(6) {
			case 0:
				tbl.Insert(leaves[r.Intn(len(leaves))])
			case 1:
				k := 1 + r.Intn(6)
				batch := make([]code.Code, 0, k)
				for i := 0; i < k; i++ {
					batch = append(batch, leaves[r.Intn(len(leaves))])
				}
				tbl.InsertAll(batch)
			case 2:
				for i := 0; i < 3; i++ {
					src.Insert(leaves[r.Intn(len(leaves))])
				}
				tbl.Merge(src)
			case 3: // corrupt code: a failed insert must not disturb the digest
				c := leaves[r.Intn(len(leaves))].Clone()
				if len(c) > 0 {
					c[r.Intn(len(c))].Var += 1000
				}
				before := tbl.Digest()
				if _, err := tbl.Insert(c); err != nil && tbl.Digest() != before {
					t.Fatalf("seed %d step %d: rejected insert changed the digest", seed, step)
				}
			case 4: // endgame: all leaves in, then check completeness digests
				tbl.InsertAll(leaves)
			case 5: // recycle through the free list
				tbl.Reset()
			}
			checkDigest(t, tbl, byFrontier, byDigest)
		}
	}
}

// TestPropDigestEqualsAcrossInsertionOrders builds the same final frontier
// through shuffled insertion orders on distinct tables (exercising different
// contraction histories, free-list states, and stale branchVar values on
// complete vertices) and requires identical digests.
func TestPropDigestEqualsAcrossInsertionOrders(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 8)
		subset := leaves[:1+r.Intn(len(leaves))]
		want := uint64(0)
		for trial := 0; trial < 4; trial++ {
			shuffled := append([]code.Code(nil), subset...)
			r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			tbl := New()
			// Churn the table first so recycled vertices are in play.
			tbl.InsertAll(leaves)
			tbl.Reset()
			for _, c := range shuffled {
				tbl.Insert(c)
			}
			if trial == 0 {
				want = tbl.Digest()
			} else if got := tbl.Digest(); got != want {
				t.Fatalf("seed %d trial %d: digest %#x, want %#x", seed, trial, got, want)
			}
		}
	}
}

// TestDigestSubtreeRoundTrip exports random subtrees and re-imports them into
// fresh tables: the re-anchored subtree must reproduce the original subtree's
// digest and knowledge state exactly, including the complete-above-prefix and
// nothing-known edge cases.
func TestDigestSubtreeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 8)
		tbl := New()
		tbl.InsertAll(leaves[:1+r.Intn(len(leaves))])
		probes := []code.Code{code.Root()}
		for _, l := range leaves {
			probes = append(probes, l, l[:r.Intn(len(l)+1)].Clone())
		}
		for _, p := range probes {
			rel, ok := tbl.SubtreeCodes(p, 0)
			if !ok {
				t.Fatalf("seed %d: uncapped SubtreeCodes(%v) refused", seed, p)
			}
			fresh := New()
			fresh.InsertSubtree(p, rel)
			wd, wk, wc := tbl.DigestAt(p)
			gd, gk, gc := fresh.DigestAt(p)
			if wk != gk || wc != gc || (wk && wd != gd) {
				t.Fatalf("seed %d: subtree %v round trip: got (%#x,%v,%v), want (%#x,%v,%v)",
					seed, p, gd, gk, gc, wd, wk, wc)
			}
			// The cap must refuse exactly when the subtree exceeds it, and
			// never change what a permitted export contains.
			if len(rel) > 0 {
				if _, ok := tbl.SubtreeCodes(p, len(rel)-1); ok && len(rel) > 1 {
					t.Fatalf("seed %d: cap %d accepted %d codes", seed, len(rel)-1, len(rel))
				}
				capped, ok := tbl.SubtreeCodes(p, len(rel))
				if !ok || !codesExactlyEqual(capped, rel) {
					t.Fatalf("seed %d: capped export differs from uncapped", seed)
				}
			}
		}
	}
}

// TestDigestChildren checks the walk-descent view: each present child's
// digest must equal DigestAt of the corresponding extended prefix.
func TestDigestChildren(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	leaves := randTree(r, 8)
	tbl := New()
	tbl.InsertAll(leaves[:len(leaves)/2+1])
	var walk func(p code.Code)
	walk = func(p code.Code) {
		bv, kids, ok := tbl.Children(p)
		if !ok {
			return
		}
		for b := 0; b < 2; b++ {
			child := p.Child(bv, uint8(b))
			d, known, _ := tbl.DigestAt(child)
			if kids[b].Present != known {
				t.Fatalf("Children(%v) branch %d: Present %v, DigestAt known %v", p, b, kids[b].Present, known)
			}
			if known && kids[b].Digest != d {
				t.Fatalf("Children(%v) branch %d: digest %#x, DigestAt %#x", p, b, kids[b].Digest, d)
			}
			if known {
				walk(child)
			}
		}
	}
	walk(code.Root())
}

// TestDigestSubtreeDecodeHardening mirrors the Decode hardening: the subtree
// wire format must reject trailing bytes, truncation at every split point,
// and malformed prefixes.
func TestDigestSubtreeDecodeHardening(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	leaves := randTree(r, 6)
	tbl := New()
	tbl.InsertAll(leaves[:len(leaves)/2+1])
	prefix := leaves[0][:1]
	rel, _ := tbl.SubtreeCodes(prefix, 0)
	enc := EncodeSubtree(nil, prefix, rel)
	if len(enc) != SubtreeWireSize(prefix, rel) {
		t.Fatalf("SubtreeWireSize %d, encoded %d bytes", SubtreeWireSize(prefix, rel), len(enc))
	}

	gotP, gotRel, err := DecodeSubtree(enc)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !gotP.Equal(prefix) || !codesExactlyEqual(gotRel, rel) {
		t.Fatalf("round trip mismatch: (%v,%v) != (%v,%v)", gotP, gotRel, prefix, rel)
	}

	if _, _, err := DecodeSubtree(append(enc[:len(enc):len(enc)], 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeSubtree(enc[:cut]); err == nil {
			// A truncation may still parse as a shorter valid subtree only if
			// it ends exactly on a code boundary with a smaller count — the
			// count is up front, so any cut inside the declared payload fails.
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeSubtree([]byte{0xff}); err == nil {
		t.Fatal("malformed prefix accepted")
	}
	if _, _, err := DecodeSubtree([]byte{}); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

// TestDigestEmptyAndComplete pins the two distinguished states: all empty
// tables share one digest, all complete tables share another, and the two
// never coincide.
func TestDigestEmptyAndComplete(t *testing.T) {
	empty := New()
	if empty.Digest() != New().Digest() {
		t.Fatal("two empty tables disagree")
	}
	done := New()
	done.Insert(code.Root())
	done2 := New()
	done2.Insert(code.Root().Child(1, 0))
	done2.Insert(code.Root().Child(1, 1))
	if done.Digest() != done2.Digest() {
		t.Fatal("directly-complete and contraction-complete tables disagree")
	}
	if empty.Digest() == done.Digest() {
		t.Fatal("empty and complete tables share a digest")
	}
}

// covers reports whether p is a prefix of c (equal or proper ancestor).
func covers(p, c code.Code) bool {
	return p.Equal(c) || p.IsAncestorOf(c)
}

// TestPropCoveringMatchesFrontier pins Covering — the query the
// merge-forward relay is built on — to its specification: after any insert
// sequence, Covering(c) returns exactly the frontier code that is a prefix
// of c (inserted content is always covered, never-inserted siblings are
// covered only once contraction absorbed them).
func TestPropCoveringMatchesFrontier(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 8)
		tbl := New()
		for step := 0; step < 30; step++ {
			c := leaves[r.Intn(len(leaves))]
			if _, err := tbl.Insert(c); err != nil {
				t.Fatalf("seed %d: insert: %v", seed, err)
			}
			frontier := tbl.Codes()
			for _, probe := range leaves {
				cov, ok := tbl.Covering(probe)
				var want code.Code
				found := false
				for _, f := range frontier {
					if covers(f, probe) {
						want, found = f, true
						break
					}
				}
				if ok != found {
					t.Fatalf("seed %d step %d: Covering(%v) ok=%v, frontier says %v",
						seed, step, probe, ok, found)
				}
				if ok && !cov.Equal(want) {
					t.Fatalf("seed %d step %d: Covering(%v) = %v, want frontier code %v",
						seed, step, probe, cov, want)
				}
			}
			// Relay invariant: content this table accepted is always covered.
			cov, ok := tbl.Covering(c)
			if !ok || !covers(cov, c) {
				t.Fatalf("seed %d step %d: inserted %v not covered (ok=%v cov=%v)",
					seed, step, c, ok, cov)
			}
		}
	}
}
