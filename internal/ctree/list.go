package ctree

import (
	"sort"

	"gossipbnb/internal/code"
)

// Set is the interface shared by the trie-backed Table and the flat ListTable.
// The distributed algorithm is written against Set so that the two
// representations can be swapped for the table-representation ablation
// (DESIGN.md §5.4).
type Set interface {
	Insert(c code.Code) (bool, error)
	InsertAll(cs []code.Code) (changed, errs int)
	Contains(c code.Code) bool
	Complete() bool
	Codes() []code.Code
	Complement(max int) []code.Code
	Len() int
	WireSize() int
}

var (
	_ Set = (*Table)(nil)
	_ Set = (*ListTable)(nil)
)

// ListTable is the naive representation the paper's description literally
// suggests: a flat list of codes, contracted by repeatedly scanning for
// sibling pairs and subsumed entries. It is correct but asymptotically worse
// than the trie; it exists for the ablation benchmark.
type ListTable struct {
	codes []code.Code // invariant: contracted, sorted by Compare
}

// NewList returns an empty ListTable.
func NewList() *ListTable { return &ListTable{} }

// Insert records completion of c and re-contracts the list.
func (l *ListTable) Insert(c code.Code) (bool, error) {
	for _, e := range l.codes {
		if e.Equal(c) || e.IsAncestorOf(c) {
			return false, nil
		}
	}
	// Remove entries subsumed by c.
	kept := l.codes[:0]
	for _, e := range l.codes {
		if !c.IsAncestorOf(e) {
			kept = append(kept, e)
		}
	}
	l.codes = append(kept, c.Clone())
	l.contract()
	sort.Slice(l.codes, func(i, j int) bool { return l.codes[i].Compare(l.codes[j]) < 0 })
	return true, nil
}

// contract repeatedly merges sibling pairs into their parent until no pair
// remains — the paper's "successive code compressions".
func (l *ListTable) contract() {
	for {
		merged := false
		for i := 0; i < len(l.codes) && !merged; i++ {
			for j := i + 1; j < len(l.codes); j++ {
				if l.codes[i].SiblingOf(l.codes[j]) {
					p := l.codes[i].Parent()
					l.codes = append(l.codes[:j], l.codes[j+1:]...)
					l.codes = append(l.codes[:i], l.codes[i+1:]...)
					// The parent may itself be subsumed or subsume others;
					// route through the same cleanup as Insert.
					kept := l.codes[:0]
					dup := false
					for _, e := range l.codes {
						if e.Equal(p) || e.IsAncestorOf(p) {
							dup = true
						}
						if !p.IsAncestorOf(e) || dup {
							kept = append(kept, e)
						}
					}
					l.codes = kept
					if !dup {
						l.codes = append(l.codes, p)
					}
					merged = true
					break
				}
			}
		}
		if !merged {
			return
		}
	}
}

// InsertAll inserts each code in turn.
func (l *ListTable) InsertAll(cs []code.Code) (changed, errs int) {
	for _, c := range cs {
		ok, err := l.Insert(c)
		if err != nil {
			errs++
		} else if ok {
			changed++
		}
	}
	return changed, errs
}

// Contains reports whether c is subsumed by the list.
func (l *ListTable) Contains(c code.Code) bool {
	for _, e := range l.codes {
		if e.Equal(c) || e.IsAncestorOf(c) {
			return true
		}
	}
	return false
}

// Complete reports whether the list contracted to the root code.
func (l *ListTable) Complete() bool {
	return len(l.codes) == 1 && l.codes[0].IsRoot()
}

// Codes returns a copy of the contracted list.
func (l *ListTable) Codes() []code.Code {
	out := make([]code.Code, len(l.codes))
	for i, c := range l.codes {
		out[i] = c.Clone()
	}
	return out
}

// Complement delegates to a trie built from the list. The flat representation
// has no cheap complement, which is itself an ablation finding.
func (l *ListTable) Complement(max int) []code.Code {
	t := New()
	t.InsertAll(l.codes)
	return t.Complement(max)
}

// Len returns the number of codes in the contracted list.
func (l *ListTable) Len() int { return len(l.codes) }

// WireSize returns the encoded size of the list.
func (l *ListTable) WireSize() int {
	sz := uvarintLen(uint64(len(l.codes)))
	for _, c := range l.codes {
		sz += c.WireSize()
	}
	return sz
}
