package ctree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gossipbnb/internal/code"
)

func mk(pairs ...uint32) code.Code {
	c := code.Root()
	for i := 0; i < len(pairs); i += 2 {
		c = c.Child(pairs[i], uint8(pairs[i+1]))
	}
	return c
}

func TestEmptyTable(t *testing.T) {
	tb := New()
	if tb.Complete() {
		t.Error("empty table reports complete")
	}
	if tb.Len() != 0 {
		t.Errorf("Len = %d, want 0", tb.Len())
	}
	comp := tb.Complement(0)
	if len(comp) != 1 || !comp[0].IsRoot() {
		t.Errorf("Complement of empty table = %v, want [()]", comp)
	}
}

func TestInsertAndContains(t *testing.T) {
	tb := New()
	c := mk(1, 0, 2, 1)
	changed, err := tb.Insert(c)
	if err != nil || !changed {
		t.Fatalf("Insert = %v, %v", changed, err)
	}
	if !tb.Contains(c) {
		t.Error("Contains(inserted) = false")
	}
	if tb.Contains(mk(1, 0)) {
		t.Error("Contains(parent of inserted) = true")
	}
	if !tb.Contains(mk(1, 0, 2, 1, 7, 0)) {
		t.Error("Contains(descendant of inserted) = false; completion of a node implies its subtree")
	}
	// Re-insert: no change.
	changed, err = tb.Insert(c)
	if err != nil || changed {
		t.Errorf("duplicate Insert = %v, %v; want false, nil", changed, err)
	}
}

func TestSiblingContraction(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0, 2, 0))
	if tb.Contains(mk(1, 0)) {
		t.Fatal("half pair should not complete parent")
	}
	tb.Insert(mk(1, 0, 2, 1))
	if !tb.Contains(mk(1, 0)) {
		t.Error("sibling pair did not contract to parent")
	}
	cs := tb.Codes()
	if len(cs) != 1 || !cs[0].Equal(mk(1, 0)) {
		t.Errorf("Codes after contraction = %v, want [(<x1,0>)]", cs)
	}
}

func TestRecursiveContractionToRoot(t *testing.T) {
	// Paper §5.4: successive compressions reaching the root code detect
	// termination. Build a depth-3 complete tree and insert all 8 leaves.
	tb := New()
	leaves := []code.Code{}
	for i := 0; i < 8; i++ {
		c := mk(1, uint32(i>>2&1), 2, uint32(i>>1&1), 3, uint32(i&1))
		leaves = append(leaves, c)
	}
	for i, c := range leaves {
		if tb.Complete() {
			t.Fatalf("complete before all leaves inserted (after %d)", i)
		}
		tb.Insert(c)
	}
	if !tb.Complete() {
		t.Error("all leaves inserted but root not complete")
	}
	cs := tb.Codes()
	if len(cs) != 1 || !cs[0].IsRoot() {
		t.Errorf("Codes = %v, want [()]", cs)
	}
	if len(tb.Complement(0)) != 0 {
		t.Errorf("Complement of complete table = %v, want empty", tb.Complement(0))
	}
}

func TestHeterogeneousBranchVars(t *testing.T) {
	// Figure 1: the left subtree of the root branches on x2, the right on x3;
	// deeper still on x5 / x4. Contraction must respect per-node variables.
	tb := New()
	tb.Insert(mk(1, 0, 2, 0))
	tb.Insert(mk(1, 0, 2, 1, 5, 0))
	tb.Insert(mk(1, 0, 2, 1, 5, 1))
	tb.Insert(mk(1, 1, 3, 0))
	tb.Insert(mk(1, 1, 3, 1, 4, 0))
	tb.Insert(mk(1, 1, 3, 1, 4, 1))
	if !tb.Complete() {
		t.Error("Figure 1 tree fully inserted but not complete")
	}
}

func TestAncestorSubsumesDescendants(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0, 2, 0, 3, 1))
	tb.Insert(mk(1, 0)) // ancestor arrives later
	cs := tb.Codes()
	if len(cs) != 1 || !cs[0].Equal(mk(1, 0)) {
		t.Errorf("Codes = %v, want only the ancestor", cs)
	}
	// Descendant arriving after ancestor: no change.
	changed, err := tb.Insert(mk(1, 0, 2, 1))
	if err != nil || changed {
		t.Errorf("Insert(subsumed) = %v, %v; want false, nil", changed, err)
	}
}

func TestVarMismatch(t *testing.T) {
	tb := New()
	if _, err := tb.Insert(mk(1, 0, 2, 0)); err != nil {
		t.Fatal(err)
	}
	_, err := tb.Insert(mk(1, 0, 9, 1)) // same node branched on x9 instead of x2
	if err == nil {
		t.Fatal("var mismatch not detected")
	}
	if _, ok := err.(*VarMismatchError); !ok {
		t.Errorf("error type = %T, want *VarMismatchError", err)
	}
}

func TestComplementHalfTree(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0))
	comp := tb.Complement(0)
	if len(comp) != 1 || !comp[0].Equal(mk(1, 1)) {
		t.Errorf("Complement = %v, want [(<x1,1>)]", comp)
	}
}

func TestComplementDeep(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0, 2, 1, 5, 0))
	comp := tb.Complement(0)
	// Expected missing regions: (<x1,0>,<x2,0>), (<x1,0>,<x2,1>,<x5,1>), (<x1,1>)
	want := map[string]bool{
		mk(1, 0, 2, 0).Key():       true,
		mk(1, 0, 2, 1, 5, 1).Key(): true,
		mk(1, 1).Key():             true,
	}
	if len(comp) != len(want) {
		t.Fatalf("Complement = %v, want 3 regions", comp)
	}
	for _, c := range comp {
		if !want[c.Key()] {
			t.Errorf("unexpected complement entry %v", c)
		}
	}
}

func TestComplementMax(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0, 2, 1, 5, 0))
	if got := tb.Complement(1); len(got) != 1 {
		t.Errorf("Complement(1) returned %d codes", len(got))
	}
	if got := tb.Complement(2); len(got) != 2 {
		t.Errorf("Complement(2) returned %d codes", len(got))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0, 2, 1, 5, 0))
	tb.Insert(mk(1, 1, 3, 0))
	buf := tb.Encode(nil)
	if len(buf) != tb.WireSize() {
		t.Errorf("len(Encode) = %d, WireSize = %d", len(buf), tb.WireSize())
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCodes(got.Codes(), tb.Codes()) {
		t.Errorf("round trip: %v != %v", got.Codes(), tb.Codes())
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0, 2, 1, 5, 0))
	tb.Insert(mk(1, 1, 3, 0))
	buf := tb.Encode(nil)
	// The exact encoding round-trips…
	if _, err := Decode(buf); err != nil {
		t.Fatalf("clean round trip failed: %v", err)
	}
	// …but any suffix after the declared code count is rejected, whatever it
	// holds — a second table, zeros, or garbage.
	for _, tail := range [][]byte{{0}, {0xff}, tb.Encode(nil), {1, 2, 3, 4}} {
		if _, err := Decode(append(append([]byte(nil), buf...), tail...)); err == nil {
			t.Errorf("Decode accepted %d trailing bytes % x", len(tail), tail)
		}
	}
	// An empty table's encoding also round-trips exactly.
	empty := New().Encode(nil)
	if got, err := Decode(empty); err != nil || got.Len() != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestReset(t *testing.T) {
	tb := New()
	tb.Insert(mk(1, 0, 2, 1))
	tb.Insert(mk(1, 1))
	tb.Reset()
	if tb.Len() != 0 || tb.Complete() || tb.NodeCount() != 1 {
		t.Fatalf("after Reset: Len=%d Complete=%v NodeCount=%d", tb.Len(), tb.Complete(), tb.NodeCount())
	}
	comp := tb.Complement(0)
	if len(comp) != 1 || !comp[0].IsRoot() {
		t.Errorf("Complement after Reset = %v, want [()]", comp)
	}
	// The table is fully usable again, and codes handed out before the reset
	// survive it untouched.
	tb.Insert(mk(1, 0))
	before := tb.Codes()
	tb.Reset()
	tb.Insert(mk(1, 1))
	if len(before) != 1 || !before[0].Equal(mk(1, 0)) {
		t.Errorf("codes from before Reset were clobbered: %v", before)
	}
	if cs := tb.Codes(); len(cs) != 1 || !cs[0].Equal(mk(1, 1)) {
		t.Errorf("Codes after Reset+Insert = %v", cs)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Insert(mk(1, 0, 2, 0))
	b.Insert(mk(1, 0, 2, 1))
	b.Insert(mk(1, 1))
	changed, errs := a.Merge(b)
	if errs != 0 {
		t.Fatalf("Merge errs = %d", errs)
	}
	if changed != 2 {
		t.Errorf("Merge changed = %d, want 2", changed)
	}
	if !a.Complete() {
		t.Error("merged table should contract to root")
	}
}

func TestClone(t *testing.T) {
	a := New()
	a.Insert(mk(1, 0, 2, 0))
	b := a.Clone()
	b.Insert(mk(1, 0, 2, 1))
	if a.Contains(mk(1, 0)) {
		t.Error("mutation of clone leaked into original")
	}
	if !b.Contains(mk(1, 0)) {
		t.Error("clone missing inserted data")
	}
}

func TestNodeCountPrunes(t *testing.T) {
	tb := New()
	for i := 0; i < 8; i++ {
		tb.Insert(mk(1, uint32(i>>2&1), 2, uint32(i>>1&1), 3, uint32(i&1)))
	}
	if !tb.Complete() {
		t.Fatal("not complete")
	}
	if tb.NodeCount() != 1 {
		t.Errorf("NodeCount after full contraction = %d, want 1 (root only)", tb.NodeCount())
	}
}

// --- randomized / property tests -------------------------------------------

// randTree generates a random binary tree of nLeaves leaves and returns its
// leaf codes. Interior nodes get distinct branch variables.
func randTree(r *rand.Rand, maxDepth int) []code.Code {
	var leaves []code.Code
	varSeq := uint32(1)
	var build func(prefix code.Code, depth int)
	build = func(prefix code.Code, depth int) {
		if depth >= maxDepth || r.Intn(3) == 0 {
			leaves = append(leaves, prefix)
			return
		}
		v := varSeq
		varSeq++
		build(prefix.Child(v, 0), depth+1)
		build(prefix.Child(v, 1), depth+1)
	}
	build(code.Root(), 0)
	return leaves
}

func TestPropAllLeavesAnyOrderTerminates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 8)
		r.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
		tb := New()
		for _, c := range leaves {
			if _, err := tb.Insert(c); err != nil {
				return false
			}
		}
		return tb.Complete() && tb.NodeCount() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropComplementPartition(t *testing.T) {
	// For any partial insertion, every leaf is covered by exactly one of
	// {table frontier, complement}.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 7)
		tb := New()
		inserted := map[string]bool{}
		for _, c := range leaves {
			if r.Intn(2) == 0 {
				tb.Insert(c)
				inserted[c.Key()] = true
			}
		}
		comp := tb.Complement(0)
		for _, leaf := range leaves {
			inTable := tb.Contains(leaf)
			inComp := false
			for _, cc := range comp {
				if cc.Equal(leaf) || cc.IsAncestorOf(leaf) {
					inComp = true
					break
				}
			}
			if inTable == inComp {
				return false // must be exactly one
			}
			if inserted[leaf.Key()] != inTable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropInsertOrderIrrelevant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 7)
		subset := leaves[:r.Intn(len(leaves)+1)]
		a := New()
		for _, c := range subset {
			a.Insert(c)
		}
		shuffled := append([]code.Code(nil), subset...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := New()
		for _, c := range shuffled {
			b.Insert(c)
		}
		return sameCodes(a.Codes(), b.Codes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropListTableAgreesWithTrie(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 6)
		r.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
		trie, list := New(), NewList()
		for _, c := range leaves[:r.Intn(len(leaves)+1)] {
			trie.Insert(c)
			list.Insert(c)
		}
		if trie.Complete() != list.Complete() {
			return false
		}
		return sameCodes(trie.Codes(), list.Codes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 6)
		a1, b1 := New(), New()
		for _, c := range leaves {
			switch r.Intn(3) {
			case 0:
				a1.Insert(c)
			case 1:
				b1.Insert(c)
			}
		}
		ab := a1.Clone()
		ab.Merge(b1)
		ba := b1.Clone()
		ba.Merge(a1)
		return sameCodes(ab.Codes(), ba.Codes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sameCodes(a, b []code.Code) bool {
	if len(a) != len(b) {
		return false
	}
	am := map[string]bool{}
	for _, c := range a {
		am[c.Key()] = true
	}
	for _, c := range b {
		if !am[c.Key()] {
			return false
		}
	}
	return true
}

func TestListTableBasics(t *testing.T) {
	l := NewList()
	if l.Complete() {
		t.Error("empty list complete")
	}
	l.Insert(mk(1, 0))
	l.Insert(mk(1, 1))
	if !l.Complete() {
		t.Error("sibling pair did not contract to root")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1", l.Len())
	}
}

func TestListTableSubsumption(t *testing.T) {
	l := NewList()
	l.Insert(mk(1, 0, 2, 0))
	l.Insert(mk(1, 0, 2, 1, 5, 0))
	l.Insert(mk(1, 0)) // subsumes both
	cs := l.Codes()
	if len(cs) != 1 || !cs[0].Equal(mk(1, 0)) {
		t.Errorf("Codes = %v", cs)
	}
	if !l.Contains(mk(1, 0, 2, 0)) {
		t.Error("Contains(descendant) = false")
	}
}

// The two representation benches below share one workload so their numbers
// are directly comparable (the DESIGN.md table-representation ablation).
func repBenchLeaves() []code.Code {
	r := rand.New(rand.NewSource(1))
	return randTree(r, 11)
}

func BenchmarkTrieInsertContract(b *testing.B) {
	leaves := repBenchLeaves()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := New()
		for _, c := range leaves {
			tb.Insert(c)
		}
		if !tb.Complete() {
			b.Fatal("not complete")
		}
	}
}

func BenchmarkListInsertContract(b *testing.B) {
	leaves := repBenchLeaves()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewList()
		for _, c := range leaves {
			tb.Insert(c)
		}
		if !tb.Complete() {
			b.Fatal("not complete")
		}
	}
}
