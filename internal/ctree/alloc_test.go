package ctree

// Allocation regression guards for the table hot path (ISSUE 3): the
// O(depth) insert with a warm free list is allocation-free, and the cached
// derived views (Codes, WireSize, Len) are allocation-free between
// mutations. These bounds are what keeps the hot-path wins from silently
// eroding; if a change legitimately needs to allocate here, it has to argue
// with this file first.

import (
	"testing"

	"gossipbnb/internal/code"
)

// counterLeaves returns the leaves of a complete binary tree of the given
// depth in binary-counter order (level d branches on variable d+1).
func counterLeaves(depth int) []code.Code {
	n := 1 << depth
	out := make([]code.Code, 0, n)
	for i := 0; i < n; i++ {
		c := code.Root()
		for d := 0; d < depth; d++ {
			c = c.Child(uint32(d+1), uint8(i>>(depth-1-d))&1)
		}
		out = append(out, c)
	}
	return out
}

// TestInsertSteadyStateAllocs: once the free list is warm, a full
// insert-everything-and-reset cycle — every trie vertex popped off the free
// list, every contraction, every prune — performs zero heap allocations.
func TestInsertSteadyStateAllocs(t *testing.T) {
	leaves := counterLeaves(10)
	tb := New()
	for _, c := range leaves { // warm: grows scratch + populates the free list
		if _, err := tb.Insert(c); err != nil {
			t.Fatal(err)
		}
	}
	if !tb.Complete() {
		t.Fatal("warm-up did not contract to the root")
	}
	tb.Reset()
	avg := testing.AllocsPerRun(20, func() {
		for _, c := range leaves {
			tb.Insert(c)
		}
		tb.Reset()
	})
	if avg > 0 {
		t.Errorf("steady-state Insert cycle allocates: %.1f allocs per %d inserts, want 0",
			avg, len(leaves))
	}
}

// TestCachedViewAllocs: Codes, WireSize, and Len on an unchanged table hit
// the caches and allocate nothing — this is what lets FlushReport, SendTable,
// and the simulator's storage sampling stop re-deriving the same frontier.
func TestCachedViewAllocs(t *testing.T) {
	tb := New()
	for i, c := range counterLeaves(8) {
		if i%3 != 0 { // partial completion: a non-trivial frontier
			tb.Insert(c)
		}
	}
	tb.Codes() // derive once
	avg := testing.AllocsPerRun(100, func() {
		if len(tb.Codes()) == 0 || tb.WireSize() == 0 || tb.Len() == 0 {
			t.Fatal("table unexpectedly empty")
		}
	})
	if avg > 0 {
		t.Errorf("cached Codes/WireSize/Len allocate: %.1f allocs/op, want 0", avg)
	}
}

// TestInsertAllSteadyStateAllocs: the prefix-sharing batch insert reuses the
// sort scratch and path stack across batches; with a warm free list the only
// allocations sort.Slice itself makes are its two closure words.
func TestInsertAllSteadyStateAllocs(t *testing.T) {
	leaves := counterLeaves(10)
	tb := New()
	tb.InsertAll(leaves)
	tb.Reset()
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i+8 <= len(leaves); i += 8 {
			tb.InsertAll(leaves[i : i+8])
		}
		tb.Reset()
	})
	perBatch := avg / float64(len(leaves)/8)
	if perBatch > 3 {
		t.Errorf("steady-state InsertAll allocates %.2f allocs per 8-code batch, want ≤ 3", perBatch)
	}
}
