package ctree

// The pre-optimization completion table, kept verbatim as a test-only
// reference: recursive clone-per-node walks, per-level contraction re-walks
// from the root, no caches, no free list. TestPropTableMatchesReference
// drives it and the optimized Table through identical randomized
// insert/merge/complement/termination sequences and requires observably
// identical behavior, so the O(depth) hot path cannot drift from the
// mechanism the paper specifies.

import (
	"math/rand"
	"testing"

	"gossipbnb/internal/code"
)

type refNode struct {
	branchVar uint32
	children  [2]*refNode
	hasChild  [2]bool
	complete  bool
}

type refTable struct {
	root      *refNode
	nodeCount int
}

func newRef() *refTable { return &refTable{root: &refNode{}, nodeCount: 1} }

func (t *refTable) Insert(c code.Code) (bool, error) {
	n := t.root
	for depth, d := range c {
		if n.complete {
			return false, nil
		}
		if !n.hasChild[0] && !n.hasChild[1] {
			n.branchVar = d.Var
		} else if n.branchVar != d.Var {
			return false, &VarMismatchError{Code: c, Depth: depth, Want: n.branchVar, Got: d.Var}
		}
		b := d.Branch & 1
		if !n.hasChild[b] {
			n.children[b] = &refNode{}
			n.hasChild[b] = true
			t.nodeCount++
		}
		n = n.children[b]
	}
	if n.complete {
		return false, nil
	}
	n.complete = true
	t.prune(n)
	t.contract(c)
	return true, nil
}

func (t *refTable) prune(n *refNode) {
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			t.nodeCount -= refCount(n.children[b])
			n.children[b] = nil
			n.hasChild[b] = false
		}
	}
}

func refCount(n *refNode) int {
	c := 1
	for b := 0; b < 2; b++ {
		if n.hasChild[b] {
			c += refCount(n.children[b])
		}
	}
	return c
}

func (t *refTable) contract(c code.Code) {
	for depth := len(c); depth > 0; depth-- {
		p := t.root
		for i := 0; i < depth-1; i++ {
			p = p.children[c[i].Branch&1]
			if p == nil {
				return
			}
		}
		if p.complete {
			return
		}
		if !p.hasChild[0] || !p.hasChild[1] ||
			!p.children[0].complete || !p.children[1].complete {
			return
		}
		p.complete = true
		t.prune(p)
	}
}

func (t *refTable) Complete() bool { return t.root.complete }

func (t *refTable) Contains(c code.Code) bool {
	n := t.root
	for _, d := range c {
		if n.complete {
			return true
		}
		if !n.hasChild[d.Branch&1] || n.branchVar != d.Var {
			return false
		}
		n = n.children[d.Branch&1]
	}
	return n.complete
}

func (t *refTable) Codes() []code.Code {
	var out []code.Code
	var walk func(n *refNode, prefix code.Code)
	walk = func(n *refNode, prefix code.Code) {
		if n.complete {
			out = append(out, prefix.Clone())
			return
		}
		for b := uint8(0); b < 2; b++ {
			if n.hasChild[b] {
				walk(n.children[b], prefix.Child(n.branchVar, b))
			}
		}
	}
	walk(t.root, code.Root())
	return out
}

func (t *refTable) Complement(max int) []code.Code {
	var out []code.Code
	var walk func(n *refNode, prefix code.Code) bool
	walk = func(n *refNode, prefix code.Code) bool {
		if n.complete {
			return true
		}
		if !n.hasChild[0] && !n.hasChild[1] {
			out = append(out, prefix.Clone())
			return max <= 0 || len(out) < max
		}
		for b := uint8(0); b < 2; b++ {
			child := prefix.Child(n.branchVar, b)
			if n.hasChild[b] {
				if !walk(n.children[b], child) {
					return false
				}
			} else {
				out = append(out, child)
				if max > 0 && len(out) >= max {
					return false
				}
			}
		}
		return true
	}
	walk(t.root, code.Root())
	return out
}

func (t *refTable) InsertAll(cs []code.Code) (changed, errs int) {
	for _, c := range cs {
		ok, err := t.Insert(c)
		if err != nil {
			errs++
			continue
		}
		if ok {
			changed++
		}
	}
	return changed, errs
}

func (t *refTable) Len() int {
	n := 0
	var walk func(*refNode)
	walk = func(v *refNode) {
		if v.complete {
			n++
			return
		}
		for b := 0; b < 2; b++ {
			if v.hasChild[b] {
				walk(v.children[b])
			}
		}
	}
	walk(t.root)
	return n
}

func (t *refTable) WireSize() int {
	cs := t.Codes()
	sz := uvarintLen(uint64(len(cs)))
	for _, c := range cs {
		sz += c.WireSize()
	}
	return sz
}

func (t *refTable) Encode(dst []byte) []byte {
	return code.AppendAll(dst, t.Codes())
}

// --- equivalence property -----------------------------------------------------

func codesExactlyEqual(a, b []code.Code) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// checkAgainstRef compares every observable of the optimized table against
// the reference, including output order (both walk depth-first, branch 0
// first).
func checkAgainstRef(t *testing.T, opt *Table, ref *refTable, probes []code.Code) {
	t.Helper()
	if opt.Complete() != ref.Complete() {
		t.Fatalf("Complete: opt %v, ref %v", opt.Complete(), ref.Complete())
	}
	if opt.Len() != ref.Len() {
		t.Fatalf("Len: opt %d, ref %d", opt.Len(), ref.Len())
	}
	if opt.NodeCount() != ref.nodeCount {
		t.Fatalf("NodeCount: opt %d, ref %d", opt.NodeCount(), ref.nodeCount)
	}
	if opt.WireSize() != ref.WireSize() {
		t.Fatalf("WireSize: opt %d, ref %d", opt.WireSize(), ref.WireSize())
	}
	if oc, rc := opt.Codes(), ref.Codes(); !codesExactlyEqual(oc, rc) {
		t.Fatalf("Codes: opt %v, ref %v", oc, rc)
	}
	if ob, rb := opt.Encode(nil), ref.Encode(nil); string(ob) != string(rb) {
		t.Fatalf("Encode: opt %x, ref %x", ob, rb)
	}
	for _, max := range []int{0, 1, 3, 8} {
		if oc, rc := opt.Complement(max), ref.Complement(max); !codesExactlyEqual(oc, rc) {
			t.Fatalf("Complement(%d): opt %v, ref %v", max, oc, rc)
		}
	}
	for _, p := range probes {
		if opt.Contains(p) != ref.Contains(p) {
			t.Fatalf("Contains(%v): opt %v, ref %v", p, opt.Contains(p), ref.Contains(p))
		}
	}
}

// TestPropTableMatchesReference drives randomized operation sequences —
// single inserts, sorted-batch InsertAll, merges from a second table pair,
// corrupt (var-mismatch) codes, resets, and full-termination endgames —
// through the optimized table and the reference, comparing every observable
// after each step.
func TestPropTableMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 9)
		// Probe codes: the leaves plus some of their prefixes.
		probes := append([]code.Code(nil), leaves...)
		for _, l := range leaves {
			if len(l) > 1 {
				probes = append(probes, l[:r.Intn(len(l))].Clone())
			}
		}
		opt, ref := New(), newRef()
		opt2, ref2 := New(), newRef() // merge source pair
		for step := 0; step < 40; step++ {
			switch r.Intn(6) {
			case 0: // single insert
				c := leaves[r.Intn(len(leaves))]
				ok1, err1 := opt.Insert(c)
				ok2, err2 := ref.Insert(c)
				if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d step %d: Insert(%v): opt (%v,%v), ref (%v,%v)",
						seed, step, c, ok1, err1, ok2, err2)
				}
			case 1: // batch insert; changed counts may legitimately differ in
				// value (sorted vs caller order), but not in zeroness
				k := 1 + r.Intn(6)
				batch := make([]code.Code, 0, k)
				for i := 0; i < k; i++ {
					batch = append(batch, leaves[r.Intn(len(leaves))])
				}
				ch1, errs1 := opt.InsertAll(batch)
				ch2, errs2 := ref.InsertAll(batch)
				if (ch1 == 0) != (ch2 == 0) || errs1 != errs2 {
					t.Fatalf("seed %d step %d: InsertAll: opt (%d,%d), ref (%d,%d)",
						seed, step, ch1, errs1, ch2, errs2)
				}
			case 2: // grow the merge source, then merge it in
				for i := 0; i < 3; i++ {
					c := leaves[r.Intn(len(leaves))]
					opt2.Insert(c)
					ref2.Insert(c)
				}
				ch1, _ := opt.Merge(opt2)
				ch2, _ := ref.InsertAll(ref2.Codes())
				if (ch1 == 0) != (ch2 == 0) {
					t.Fatalf("seed %d step %d: Merge changed: opt %d, ref %d", seed, step, ch1, ch2)
				}
			case 3: // corrupt code: flip a branch variable mid-path
				c := leaves[r.Intn(len(leaves))].Clone()
				if len(c) > 0 {
					c[r.Intn(len(c))].Var += 1000
				}
				_, err1 := opt.Insert(c)
				_, err2 := ref.Insert(c)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d step %d: corrupt Insert: opt err %v, ref err %v",
						seed, step, err1, err2)
				}
			case 4: // completion endgame: insert every leaf. The tables reach
				// the root unless an earlier corrupt code poisoned a branch
				// variable — in which case both must be equally stuck, which
				// checkAgainstRef verifies.
				for _, c := range leaves {
					ok1, err1 := opt.Insert(c)
					ok2, err2 := ref.Insert(c)
					if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
						t.Fatalf("seed %d step %d: endgame Insert(%v): opt (%v,%v), ref (%v,%v)",
							seed, step, c, ok1, err1, ok2, err2)
					}
				}
				if opt.Complete() != ref.Complete() {
					t.Fatalf("seed %d step %d: endgame Complete: opt %v, ref %v",
						seed, step, opt.Complete(), ref.Complete())
				}
			case 5: // recycle the optimized table; rebuild the reference to match
				opt.Reset()
				ref = newRef()
			}
			checkAgainstRef(t, opt, ref, probes)
		}
	}
}

// TestPropInsertAllMatchesSequential checks the prefix-sharing batch insert
// against one-at-a-time insertion of the same batch into a sibling table:
// identical final state, and a changed count that is zero for exactly the
// same batches.
func TestPropInsertAllMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		r := rand.New(rand.NewSource(seed))
		leaves := randTree(r, 8)
		batchT, seqT := New(), New()
		for round := 0; round < 10; round++ {
			k := 1 + r.Intn(8)
			batch := make([]code.Code, 0, k)
			for i := 0; i < k; i++ {
				batch = append(batch, leaves[r.Intn(len(leaves))])
			}
			ch1, errs1 := batchT.InsertAll(batch)
			ch2, errs2 := 0, 0
			for _, c := range batch {
				ok, err := seqT.Insert(c)
				if err != nil {
					errs2++
				} else if ok {
					ch2++
				}
			}
			if (ch1 == 0) != (ch2 == 0) || errs1 != errs2 {
				t.Fatalf("seed %d round %d: batch (%d,%d) vs sequential (%d,%d)",
					seed, round, ch1, errs1, ch2, errs2)
			}
			if !codesExactlyEqual(batchT.Codes(), seqT.Codes()) {
				t.Fatalf("seed %d round %d: batch state %v, sequential state %v",
					seed, round, batchT.Codes(), seqT.Codes())
			}
		}
	}
}
