// Package trace records per-process activity spans during a simulation and
// renders them as an ASCII Gantt chart — the substitute for the paper's
// MPE/clog logs viewed in Jumpshot (Figures 5 and 6).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// State is what a process is doing during a span.
type State byte

// States and their one-character Gantt glyphs.
const (
	Compute  State = 'B' // expanding subproblems
	Comm     State = 'c' // handling messages
	Contract State = 't' // table contraction
	Balance  State = 'l' // load balancing
	Idle     State = '.' // out of work
	Recover  State = 'R' // complement-based failure recovery
	Dead     State = 'X' // crashed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case Contract:
		return "contract"
	case Balance:
		return "load-balance"
	case Idle:
		return "idle"
	case Recover:
		return "recover"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("State(%c)", byte(s))
}

// Span is one activity interval of one process.
type Span struct {
	Node       int
	State      State
	Start, End float64
}

// Log is an append-only collection of spans. The zero value is ready to use.
// A nil *Log discards everything, so instrumented code can log
// unconditionally.
type Log struct {
	spans []Span
	nodes int
}

// Add appends a span. Inverted spans are rejected, zero-length spans are
// dropped. Nil-safe.
func (l *Log) Add(node int, st State, start, end float64) {
	if l == nil || end <= start {
		return
	}
	l.spans = append(l.spans, Span{Node: node, State: st, Start: start, End: end})
	if node+1 > l.nodes {
		l.nodes = node + 1
	}
}

// Spans returns a copy of the recorded spans.
func (l *Log) Spans() []Span {
	if l == nil {
		return nil
	}
	return append([]Span(nil), l.spans...)
}

// Len returns the number of spans. Nil-safe.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// End returns the latest span end time.
func (l *Log) End() float64 {
	if l == nil {
		return 0
	}
	end := 0.0
	for _, s := range l.spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// Gantt renders the log as one row of width cells per process. Each cell
// shows the state that occupied the majority of its time slice; later spans
// win ties, and a cell a process spent crashed always shows Dead.
func (l *Log) Gantt(w io.Writer, width int) error {
	if l == nil || len(l.spans) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	if width < 10 {
		width = 10
	}
	end := l.End()
	if end == 0 {
		end = 1
	}
	cell := end / float64(width)
	occupancy := make([]map[State]float64, l.nodes*width) // allocated lazily
	for _, s := range l.spans {
		first := int(s.Start / cell)
		last := int(s.End / cell)
		if last >= width {
			last = width - 1
		}
		for c := first; c <= last; c++ {
			lo := float64(c) * cell
			hi := lo + cell
			if s.Start > lo {
				lo = s.Start
			}
			if s.End < hi {
				hi = s.End
			}
			if hi <= lo {
				continue
			}
			idx := s.Node*width + c
			if occupancy[idx] == nil {
				occupancy[idx] = map[State]float64{}
			}
			occupancy[idx][s.State] += hi - lo
		}
	}
	var states []State
	for _, s := range []State{Compute, Comm, Contract, Balance, Recover, Idle, Dead} {
		states = append(states, s)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 %s %.3gs\n", strings.Repeat(" ", width-8), end)
	for n := 0; n < l.nodes; n++ {
		fmt.Fprintf(&b, "p%-3d |", n)
		for c := 0; c < width; c++ {
			occ := occupancy[n*width+c]
			if len(occ) == 0 {
				b.WriteByte(' ')
				continue
			}
			if occ[Dead] > 0 {
				b.WriteByte(byte(Dead))
				continue
			}
			best, bestT := Idle, -1.0
			for _, st := range states {
				if tm, ok := occ[st]; ok && tm > bestT {
					best, bestT = st, tm
				}
			}
			b.WriteByte(byte(best))
		}
		b.WriteString("|\n")
	}
	b.WriteString("legend: B=compute c=comm t=contract l=load-balance R=recover .=idle X=dead\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary returns per-state total durations, for assertions in tests.
func (l *Log) Summary() map[State]float64 {
	out := map[State]float64{}
	if l == nil {
		return out
	}
	for _, s := range l.spans {
		out[s.State] += s.End - s.Start
	}
	return out
}

// SortedByStart returns spans ordered by start time (stable for equal times).
func (l *Log) SortedByStart() []Span {
	out := l.Spans()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
