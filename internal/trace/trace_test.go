package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAddAndSummary(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 5)
	l.Add(0, Idle, 5, 7)
	l.Add(1, Compute, 0, 7)
	sum := l.Summary()
	if sum[Compute] != 12 || sum[Idle] != 2 {
		t.Errorf("Summary = %v", sum)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if l.End() != 7 {
		t.Errorf("End = %g", l.End())
	}
}

func TestRejectsBadSpans(t *testing.T) {
	var l Log
	l.Add(0, Compute, 5, 5) // zero length
	l.Add(0, Compute, 5, 3) // inverted
	if l.Len() != 0 {
		t.Errorf("bad spans recorded: %d", l.Len())
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Add(0, Compute, 0, 1)
	if l.Len() != 0 || l.End() != 0 || l.Spans() != nil {
		t.Error("nil log misbehaved")
	}
	if got := l.Summary(); len(got) != 0 {
		t.Error("nil log summary non-empty")
	}
	var buf bytes.Buffer
	if err := l.Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("nil log Gantt should say empty")
	}
}

func TestGanttShape(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 10)
	l.Add(1, Compute, 0, 5)
	l.Add(1, Idle, 5, 10)
	var buf bytes.Buffer
	if err := l.Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// header + 2 process rows + legend
	if len(lines) != 4 {
		t.Fatalf("Gantt lines = %d:\n%s", len(lines), buf.String())
	}
	p0 := lines[1]
	if !strings.HasPrefix(p0, "p0") {
		t.Errorf("row 0 = %q", p0)
	}
	if strings.Count(p0, "B") < 35 {
		t.Errorf("p0 should be nearly all compute: %q", p0)
	}
	p1 := lines[2]
	if !strings.Contains(p1, "B") || !strings.Contains(p1, ".") {
		t.Errorf("p1 should mix compute and idle: %q", p1)
	}
	// Idle must appear in the second half of p1's band.
	band := p1[strings.Index(p1, "|")+1 : strings.LastIndex(p1, "|")]
	half := len(band) / 2
	if strings.Contains(band[:half-2], ".") {
		t.Errorf("idle leaked into first half: %q", band)
	}
}

func TestGanttDeadDominates(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 9)
	l.Add(0, Dead, 9, 10)
	var buf bytes.Buffer
	if err := l.Gantt(&buf, 20); err != nil {
		t.Fatal(err)
	}
	row := strings.Split(buf.String(), "\n")[1]
	if !strings.HasSuffix(strings.TrimRight(row, "|"), "X") {
		t.Errorf("dead cell not shown: %q", row)
	}
}

func TestGanttMinWidth(t *testing.T) {
	var l Log
	l.Add(0, Compute, 0, 1)
	var buf bytes.Buffer
	if err := l.Gantt(&buf, 1); err != nil { // clamped to ≥10
		t.Fatal(err)
	}
	if len(buf.String()) == 0 {
		t.Error("empty render")
	}
}

func TestSortedByStart(t *testing.T) {
	var l Log
	l.Add(0, Compute, 5, 6)
	l.Add(0, Compute, 1, 2)
	l.Add(0, Compute, 3, 4)
	spans := l.SortedByStart()
	prev := math.Inf(-1)
	for _, s := range spans {
		if s.Start < prev {
			t.Fatalf("not sorted: %v", spans)
		}
		prev = s.Start
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Compute, Comm, Contract, Balance, Idle, Recover, Dead} {
		if strings.HasPrefix(s.String(), "State(") {
			t.Errorf("state %c has no name", byte(s))
		}
	}
	if !strings.HasPrefix(State('?').String(), "State(") {
		t.Error("unknown state should fall back to State(...)")
	}
}
