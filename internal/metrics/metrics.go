// Package metrics implements the cost accounting of the paper's evaluation
// (§6.3): per-process execution time split into branch-and-bound work,
// communication handling, list contraction, load balancing, and idle time;
// message and byte counters; storage accounting for the replicated
// completed-problem tables (total and redundant); and redundant-work
// counters.
package metrics

import "fmt"

// Activity labels where a process's virtual time goes. The five categories
// are exactly the stacked bars of Figure 3.
type Activity int

// Activities, in the order the paper stacks them.
const (
	BB       Activity = iota // bounding + expanding subproblems
	Comm                     // packing, sending, and handling messages
	Contract                 // merging and contracting completed-code tables
	LB                       // requesting and transferring work
	Idle                     // nothing to do
	numActivities
)

// String returns the paper's label for the activity.
func (a Activity) String() string {
	switch a {
	case BB:
		return "BB time"
	case Comm:
		return "Communication time"
	case Contract:
		return "List Contraction time"
	case LB:
		return "LB time"
	case Idle:
		return "Idle time"
	}
	return fmt.Sprintf("Activity(%d)", int(a))
}

// Breakdown is a per-process split of virtual time by activity.
type Breakdown struct {
	t [numActivities]float64
}

// Add accrues d seconds to activity a. Negative durations panic: they would
// silently corrupt the percentages.
func (b *Breakdown) Add(a Activity, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative duration %g for %v", d, a))
	}
	b.t[a] += d
}

// Get returns the seconds accrued to a.
func (b Breakdown) Get(a Activity) float64 { return b.t[a] }

// Total returns the sum over all activities.
func (b Breakdown) Total() float64 {
	s := 0.0
	for _, v := range b.t {
		s += v
	}
	return s
}

// Percent returns a's share of the total, in percent (0 if the total is 0).
func (b Breakdown) Percent(a Activity) float64 {
	tot := b.Total()
	if tot == 0 {
		return 0
	}
	return 100 * b.t[a] / tot
}

// Merge adds o into b.
func (b *Breakdown) Merge(o *Breakdown) {
	for i := range b.t {
		b.t[i] += o.t[i]
	}
}

// Node aggregates everything measured about one simulated process.
type Node struct {
	Breakdown
	Expanded      int   // subproblems whose cost this node paid
	Redundant     int   // expansions of subproblems some node had already completed
	ReportsSent   int   // work-report messages sent
	ReportCodes   int   // codes carried by those reports (after compression)
	ReportedComps int   // completions covered by flushed reports (before compression)
	TablesSent    int   // full-table gossip messages sent
	WorkSent      int   // subproblems shipped to requesters
	WorkRequests  int   // work-request messages sent
	Recoveries    int   // complement-based recoveries triggered
	PeakTableSize int   // bytes, max over time of the local table encoding
	PeakPool      int   // max active problems held at once
	BytesSent     int64 // payload bytes (mirror of the network's per-sender count)
}

// ObserveTable records the current wire size of the node's table, tracking
// the peak. Storage in the paper is the space used to store completed-code
// information across the whole system.
func (n *Node) ObserveTable(bytes int) {
	if bytes > n.PeakTableSize {
		n.PeakTableSize = bytes
	}
}

// System aggregates per-node metrics plus the global storage view.
type System struct {
	Nodes []Node
	// UniquePeak is the peak wire size of the union of all completed-code
	// information, i.e. the storage a single perfectly shared copy would
	// need. TotalStorage − UniquePeak is the paper's "redundant" storage.
	UniquePeak int
}

// NewSystem returns a System sized for n nodes.
func NewSystem(n int) *System { return &System{Nodes: make([]Node, n)} }

// TotalStorage sums per-node peak table sizes: the system-wide space devoted
// to completed-problem bookkeeping.
func (s *System) TotalStorage() int {
	tot := 0
	for i := range s.Nodes {
		tot += s.Nodes[i].PeakTableSize
	}
	return tot
}

// RedundantStorage is the storage beyond one shared copy of the union.
func (s *System) RedundantStorage() int {
	r := s.TotalStorage() - s.UniquePeak
	if r < 0 {
		return 0
	}
	return r
}

// ObserveUnique records the current wire size of the global union table.
func (s *System) ObserveUnique(bytes int) {
	if bytes > s.UniquePeak {
		s.UniquePeak = bytes
	}
}

// TotalExpanded sums node expansions.
func (s *System) TotalExpanded() int {
	t := 0
	for i := range s.Nodes {
		t += s.Nodes[i].Expanded
	}
	return t
}

// TotalRedundant sums redundant expansions.
func (s *System) TotalRedundant() int {
	t := 0
	for i := range s.Nodes {
		t += s.Nodes[i].Redundant
	}
	return t
}

// AggregateBreakdown sums the per-node breakdowns.
func (s *System) AggregateBreakdown() Breakdown {
	var b Breakdown
	for i := range s.Nodes {
		b.Merge(&s.Nodes[i].Breakdown)
	}
	return b
}

// Work returns the productive seconds — branch-and-bound expansion time, the
// "work" axis of Dwork/Halpern/Waarts-style accounting.
func (b Breakdown) Work() float64 { return b.t[BB] }

// Overhead returns the protocol seconds: communication, contraction, and
// load balancing. Idle is excluded — it is neither work nor overhead, just a
// processor with nothing to do.
func (b Breakdown) Overhead() float64 { return b.t[Comm] + b.t[Contract] + b.t[LB] }

// Multi adds the instance label dimension to the registry: one System per
// problem instance multiplexed over the cluster, so work, overhead, storage,
// and redundancy stay attributable per tenant. Indexing is by instance slot
// (0-based), not wire InstanceID — drivers own that mapping.
type Multi struct {
	Systems []*System
}

// NewMulti returns a registry for instances slots of nodes processes each.
func NewMulti(instances, nodes int) *Multi {
	m := &Multi{Systems: make([]*System, instances)}
	for i := range m.Systems {
		m.Systems[i] = NewSystem(nodes)
	}
	return m
}

// At returns instance slot i's System.
func (m *Multi) At(i int) *System { return m.Systems[i] }

// AggregateBreakdown sums the per-instance aggregate breakdowns — the
// whole-cluster time split across every tenant.
func (m *Multi) AggregateBreakdown() Breakdown {
	var b Breakdown
	for _, s := range m.Systems {
		sb := s.AggregateBreakdown()
		b.Merge(&sb)
	}
	return b
}

// NetHealth aggregates what the self-healing layer observed during a run:
// transport integrity rejections, injected-fault casualties, and the failure
// detector's state transitions. Exclusions minus Reabsorbed that concern
// still-live nodes is the detector's false-positive cost — time lost, never
// correctness (§4's model already tolerates every drop counted here).
type NetHealth struct {
	CorruptFrames int64 // frames rejected by the transport CRC (or destroyed in transit)
	CutMessages   int64 // messages severed by injected partitions/stalls/flaps
	SuspectDrops  int64 // sends suppressed toward locally excluded peers
	Suspicions    int64 // alive → suspect transitions across all detectors
	Exclusions    int64 // suspect → excluded transitions across all detectors
	Reabsorbed    int64 // excluded peers readmitted after re-announcing
}

// Merge adds o into h.
func (h *NetHealth) Merge(o NetHealth) {
	h.CorruptFrames += o.CorruptFrames
	h.CutMessages += o.CutMessages
	h.SuspectDrops += o.SuspectDrops
	h.Suspicions += o.Suspicions
	h.Exclusions += o.Exclusions
	h.Reabsorbed += o.Reabsorbed
}

// MB converts bytes to megabytes (10^6, as the paper reports).
func MB(bytes int64) float64 { return float64(bytes) / 1e6 }
