package metrics

import (
	"math"
	"testing"
)

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Add(BB, 10)
	b.Add(Comm, 2)
	b.Add(Contract, 1)
	b.Add(LB, 3)
	b.Add(Idle, 4)
	if b.Total() != 20 {
		t.Errorf("Total = %g, want 20", b.Total())
	}
	if got := b.Percent(BB); math.Abs(got-50) > 1e-9 {
		t.Errorf("Percent(BB) = %g, want 50", got)
	}
	if b.Get(LB) != 3 {
		t.Errorf("Get(LB) = %g", b.Get(LB))
	}
}

func TestBreakdownNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	var b Breakdown
	b.Add(BB, -1)
}

func TestBreakdownEmptyPercent(t *testing.T) {
	var b Breakdown
	if b.Percent(BB) != 0 {
		t.Error("Percent of empty breakdown not 0")
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(BB, 1)
	b.Add(BB, 2)
	b.Add(Idle, 5)
	a.Merge(&b)
	if a.Get(BB) != 3 || a.Get(Idle) != 5 {
		t.Errorf("Merge wrong: BB=%g Idle=%g", a.Get(BB), a.Get(Idle))
	}
}

func TestActivityString(t *testing.T) {
	names := map[Activity]string{
		BB: "BB time", Comm: "Communication time", Contract: "List Contraction time",
		LB: "LB time", Idle: "Idle time",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if Activity(99).String() == "" {
		t.Error("unknown activity has empty String")
	}
}

func TestNodeObserveTable(t *testing.T) {
	var n Node
	n.ObserveTable(100)
	n.ObserveTable(50)
	n.ObserveTable(150)
	if n.PeakTableSize != 150 {
		t.Errorf("PeakTableSize = %d, want 150", n.PeakTableSize)
	}
}

func TestSystemStorage(t *testing.T) {
	s := NewSystem(3)
	s.Nodes[0].ObserveTable(100)
	s.Nodes[1].ObserveTable(200)
	s.Nodes[2].ObserveTable(300)
	s.ObserveUnique(250)
	s.ObserveUnique(240) // peak keeps the max
	if s.TotalStorage() != 600 {
		t.Errorf("TotalStorage = %d", s.TotalStorage())
	}
	if s.RedundantStorage() != 350 {
		t.Errorf("RedundantStorage = %d, want 350", s.RedundantStorage())
	}
}

func TestSystemRedundantClamped(t *testing.T) {
	s := NewSystem(1)
	s.Nodes[0].ObserveTable(10)
	s.ObserveUnique(50) // union larger than the lone replica (possible early on)
	if s.RedundantStorage() != 0 {
		t.Errorf("RedundantStorage = %d, want 0", s.RedundantStorage())
	}
}

func TestSystemCounters(t *testing.T) {
	s := NewSystem(2)
	s.Nodes[0].Expanded = 5
	s.Nodes[1].Expanded = 7
	s.Nodes[1].Redundant = 2
	if s.TotalExpanded() != 12 {
		t.Errorf("TotalExpanded = %d", s.TotalExpanded())
	}
	if s.TotalRedundant() != 2 {
		t.Errorf("TotalRedundant = %d", s.TotalRedundant())
	}
	s.Nodes[0].Add(BB, 4)
	s.Nodes[1].Add(BB, 6)
	if got := s.AggregateBreakdown().Get(BB); got != 10 {
		t.Errorf("AggregateBreakdown BB = %g", got)
	}
}

func TestMB(t *testing.T) {
	if MB(2_500_000) != 2.5 {
		t.Errorf("MB = %g", MB(2_500_000))
	}
}

func TestWorkOverhead(t *testing.T) {
	var b Breakdown
	b.Add(BB, 10)
	b.Add(Comm, 1)
	b.Add(Contract, 2)
	b.Add(LB, 3)
	b.Add(Idle, 100) // neither work nor overhead
	if b.Work() != 10 {
		t.Errorf("Work = %g", b.Work())
	}
	if b.Overhead() != 6 {
		t.Errorf("Overhead = %g", b.Overhead())
	}
}

func TestMultiInstanceDimension(t *testing.T) {
	m := NewMulti(3, 2)
	m.At(0).Nodes[0].Add(BB, 5)
	m.At(1).Nodes[1].Add(Comm, 2)
	m.At(2).Nodes[0].Add(BB, 1)
	if got := m.At(0).AggregateBreakdown().Work(); got != 5 {
		t.Errorf("instance 0 work = %g", got)
	}
	if got := m.At(1).AggregateBreakdown().Overhead(); got != 2 {
		t.Errorf("instance 1 overhead = %g", got)
	}
	agg := m.AggregateBreakdown()
	if agg.Work() != 6 || agg.Overhead() != 2 {
		t.Errorf("aggregate = work %g, overhead %g", agg.Work(), agg.Overhead())
	}
}
