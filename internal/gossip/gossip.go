// Package gossip implements the epidemic communication of §5.1: variants of
// the rumor-mongering algorithm of Demers et al. A site that receives a new
// update becomes "infectious" and repeatedly forwards it to randomly chosen
// members until the rumor cools. Epidemic spreading trades temporary
// inconsistency for low overhead, but guarantees eventual consistency when
// no new information enters the system — the property the paper's
// termination detection exploits.
//
// The membership protocol forwards rumors unprocessed; the fault-tolerance
// mechanism stores them for local processing and spreads them infrequently
// (§5.1). Both behaviours are expressed through Agent's configuration.
package gossip

import (
	"sort"

	"gossipbnb/internal/sim"
)

// PeerView returns the peers an agent may gossip with, excluding itself.
// Views are re-evaluated every round, so a membership protocol can feed its
// current view in.
type PeerView func() []sim.NodeID

// StaticView adapts a fixed peer list (minus self) into a PeerView.
func StaticView(self sim.NodeID, all []sim.NodeID) PeerView {
	peers := make([]sim.NodeID, 0, len(all))
	for _, id := range all {
		if id != self {
			peers = append(peers, id)
		}
	}
	return func() []sim.NodeID { return peers }
}

// Config tunes an Agent.
type Config struct {
	// Fanout is the number of peers each hot rumor is pushed to per round
	// (the paper's m).
	Fanout int
	// Interval is the virtual time between gossip rounds.
	Interval float64
	// MaxSends is how many rounds a rumor stays hot; after that the agent
	// loses interest (the counter variant of rumor mongering).
	MaxSends int
}

// DefaultConfig mirrors the low-overhead settings of the paper's membership
// gossip: one peer per round, rumors hot for a handful of rounds.
func DefaultConfig() Config {
	return Config{Fanout: 1, Interval: 1, MaxSends: 4}
}

// Rumor is a disseminated update.
type Rumor struct {
	ID   string
	Data []byte
}

type hotRumor struct {
	r         Rumor
	sendsLeft int
}

// Message is the wire format of one gossip push: a batch of rumors.
type Message struct{ Rumors []Rumor }

// Size implements sim.Message: per-rumor framing plus payload bytes.
func (m Message) Size() int {
	n := 1
	for _, r := range m.Rumors {
		n += 2 + len(r.ID) + len(r.Data)
	}
	return n
}

// Agent runs rumor mongering for one simulated node.
type Agent struct {
	id      sim.NodeID
	k       *sim.Kernel
	nw      *sim.Network
	cfg     Config
	view    PeerView
	rumors  map[string]*hotRumor
	seen    map[string]bool
	stopped bool
	// OnRumor, if non-nil, is invoked on first receipt of each rumor.
	OnRumor func(Rumor)
}

// NewAgent creates an agent; the caller must route the node's incoming
// gossip messages to Deliver and call Start to begin rounds.
func NewAgent(k *sim.Kernel, nw *sim.Network, id sim.NodeID, view PeerView, cfg Config) *Agent {
	if cfg.Fanout < 1 {
		cfg.Fanout = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 1
	}
	if cfg.MaxSends < 1 {
		cfg.MaxSends = 1
	}
	return &Agent{
		id: id, k: k, nw: nw, cfg: cfg, view: view,
		rumors: map[string]*hotRumor{},
		seen:   map[string]bool{},
	}
}

// Start schedules the agent's gossip rounds.
func (a *Agent) Start() { a.k.After(a.cfg.Interval, a.round) }

// Stop halts future rounds (the node left or crashed).
func (a *Agent) Stop() { a.stopped = true }

// Add introduces a locally originated rumor; it becomes hot immediately.
func (a *Agent) Add(r Rumor) {
	if a.seen[r.ID] {
		return
	}
	a.seen[r.ID] = true
	a.rumors[r.ID] = &hotRumor{r: r, sendsLeft: a.cfg.MaxSends}
}

// Knows reports whether the agent has seen the rumor.
func (a *Agent) Knows(id string) bool { return a.seen[id] }

// KnownCount returns how many distinct rumors the agent has seen.
func (a *Agent) KnownCount() int { return len(a.seen) }

// Deliver handles an incoming gossip message.
func (a *Agent) Deliver(from sim.NodeID, m Message) {
	if a.stopped {
		return
	}
	for _, r := range m.Rumors {
		if a.seen[r.ID] {
			continue
		}
		a.seen[r.ID] = true
		a.rumors[r.ID] = &hotRumor{r: r, sendsLeft: a.cfg.MaxSends}
		if a.OnRumor != nil {
			a.OnRumor(r)
		}
	}
}

// round pushes all hot rumors to Fanout random peers, cools them, and
// reschedules itself.
func (a *Agent) round() {
	if a.stopped || a.nw.Crashed(a.id) {
		return
	}
	hot := make([]Rumor, 0, len(a.rumors))
	ids := make([]string, 0, len(a.rumors))
	for id := range a.rumors {
		ids = append(ids, id)
	}
	sort.Strings(ids) // map order must not leak into the simulation
	for _, id := range ids {
		h := a.rumors[id]
		hot = append(hot, h.r)
		h.sendsLeft--
		if h.sendsLeft <= 0 {
			delete(a.rumors, id)
		}
	}
	if len(hot) > 0 {
		peers := a.view()
		if len(peers) > 0 {
			msg := Message{Rumors: hot}
			for i := 0; i < a.cfg.Fanout; i++ {
				to := peers[a.k.Rand().Intn(len(peers))]
				if to != a.id {
					a.nw.Send(a.id, to, msg)
				}
			}
		}
	}
	a.k.After(a.cfg.Interval, a.round)
}
