package gossip

import (
	"math"

	"gossipbnb/internal/sim"
)

// SpreadResult reports a standalone epidemic-dissemination experiment.
type SpreadResult struct {
	Nodes      int
	Reached    int     // nodes that eventually knew the rumor
	Time       float64 // virtual time until the last infection (or give-up)
	Messages   int64   // gossip messages sent
	Bytes      int64   // gossip bytes sent
	Saturation float64 // Reached / Nodes
}

// SpreadConfig parameterizes Spread.
type SpreadConfig struct {
	Nodes   int
	Gossip  Config
	Latency sim.LatencyModel // nil = paper model
	Loss    float64
	Seed    int64
}

// Spread injects a single rumor at node 0 and runs rumor mongering until the
// system quiesces. It measures the epidemic's reach, spreading time, and
// message cost — the knobs (fanout, max sends, loss) that the paper's
// mechanisms inherit from epidemic communication.
func Spread(cfg SpreadConfig) SpreadResult {
	if cfg.Latency == nil {
		cfg.Latency = sim.PaperLatency()
	}
	k := sim.New(cfg.Seed)
	nw := sim.NewNetwork(k, cfg.Latency)
	nw.SetLoss(cfg.Loss)
	ids := make([]sim.NodeID, cfg.Nodes)
	for i := range ids {
		ids[i] = sim.NodeID(i)
	}
	agents := make([]*Agent, cfg.Nodes)
	var lastInfection float64
	for i := range ids {
		id := ids[i]
		agents[i] = NewAgent(k, nw, id, StaticView(id, ids), cfg.Gossip)
		agents[i].OnRumor = func(Rumor) { lastInfection = k.Now() }
		nw.Register(id, func(from sim.NodeID, m sim.Message) {
			agents[id].Deliver(from, m.(Message))
		})
		agents[i].Start()
	}
	agents[0].Add(Rumor{ID: "r", Data: []byte("x")})
	// Run until every rumor everywhere has cooled; the queue never fully
	// drains (rounds reschedule forever), so bound by quiescence: once no
	// agent holds a hot rumor, nothing further can change.
	for {
		k.Run(k.Now() + 10*cfg.Gossip.Interval)
		hot := false
		for _, a := range agents {
			if len(a.rumors) > 0 {
				hot = true
				break
			}
		}
		if !hot {
			break
		}
		if k.Now() > 1e7 {
			break // safety valve; unreachable in practice
		}
	}
	res := SpreadResult{Nodes: cfg.Nodes, Time: lastInfection}
	for _, a := range agents {
		if a.Knows("r") {
			res.Reached++
		}
	}
	st := nw.Stats()
	res.Messages = st.Sent
	res.Bytes = st.Bytes
	if cfg.Nodes > 0 {
		res.Saturation = float64(res.Reached) / float64(cfg.Nodes)
	}
	if res.Reached == 0 {
		res.Time = math.NaN()
	}
	return res
}
