package gossip

import (
	"fmt"
	"math"
	"testing"

	"gossipbnb/internal/sim"
)

func TestMessageSize(t *testing.T) {
	m := Message{Rumors: []Rumor{{ID: "ab", Data: []byte("xyz")}}}
	if m.Size() != 1+2+2+3 {
		t.Errorf("Size = %d", m.Size())
	}
	if (Message{}).Size() != 1 {
		t.Errorf("empty Size = %d", Message{}.Size())
	}
}

func TestStaticViewExcludesSelf(t *testing.T) {
	all := []sim.NodeID{0, 1, 2}
	v := StaticView(1, all)()
	if len(v) != 2 {
		t.Fatalf("view = %v", v)
	}
	for _, id := range v {
		if id == 1 {
			t.Error("view contains self")
		}
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	k := sim.New(1)
	nw := sim.NewNetwork(k, nil)
	a := NewAgent(k, nw, 0, func() []sim.NodeID { return nil }, Config{})
	if a.cfg.Fanout != 1 || a.cfg.Interval != 1 || a.cfg.MaxSends != 1 {
		t.Errorf("defaults not applied: %+v", a.cfg)
	}
}

func TestAddIsIdempotent(t *testing.T) {
	k := sim.New(1)
	nw := sim.NewNetwork(k, nil)
	a := NewAgent(k, nw, 0, func() []sim.NodeID { return nil }, DefaultConfig())
	a.Add(Rumor{ID: "r"})
	a.Add(Rumor{ID: "r"})
	if a.KnownCount() != 1 {
		t.Errorf("KnownCount = %d", a.KnownCount())
	}
}

func TestDeliverTriggersCallbackOnce(t *testing.T) {
	k := sim.New(1)
	nw := sim.NewNetwork(k, nil)
	a := NewAgent(k, nw, 0, func() []sim.NodeID { return nil }, DefaultConfig())
	calls := 0
	a.OnRumor = func(r Rumor) {
		if r.ID != "r" {
			t.Errorf("rumor ID = %q", r.ID)
		}
		calls++
	}
	msg := Message{Rumors: []Rumor{{ID: "r"}}}
	a.Deliver(1, msg)
	a.Deliver(2, msg)
	if calls != 1 {
		t.Errorf("OnRumor calls = %d, want 1", calls)
	}
}

func TestStoppedAgentIgnoresDelivery(t *testing.T) {
	k := sim.New(1)
	nw := sim.NewNetwork(k, nil)
	a := NewAgent(k, nw, 0, func() []sim.NodeID { return nil }, DefaultConfig())
	a.Stop()
	a.Deliver(1, Message{Rumors: []Rumor{{ID: "r"}}})
	if a.Knows("r") {
		t.Error("stopped agent accepted rumor")
	}
}

func TestSpreadSaturatesReliableNetwork(t *testing.T) {
	res := Spread(SpreadConfig{
		Nodes:  64,
		Gossip: Config{Fanout: 2, Interval: 1, MaxSends: 6},
		Seed:   1,
	})
	if res.Saturation != 1 {
		t.Errorf("saturation = %g (%d/%d reached)", res.Saturation, res.Reached, res.Nodes)
	}
	if math.IsNaN(res.Time) || res.Time <= 0 {
		t.Errorf("Time = %g", res.Time)
	}
	if res.Messages == 0 || res.Bytes == 0 {
		t.Error("no traffic recorded")
	}
}

func TestSpreadLogarithmicTime(t *testing.T) {
	// Epidemic push spreads in O(log n) rounds: time for 256 nodes should be
	// well under 4x the time for 16 nodes.
	cfg := Config{Fanout: 2, Interval: 1, MaxSends: 8}
	t16 := Spread(SpreadConfig{Nodes: 16, Gossip: cfg, Seed: 2}).Time
	t256 := Spread(SpreadConfig{Nodes: 256, Gossip: cfg, Seed: 2}).Time
	if t256 > 4*t16 {
		t.Errorf("spreading time grew super-logarithmically: n=16: %g, n=256: %g", t16, t256)
	}
}

func TestSpreadToleratesLoss(t *testing.T) {
	// §5.2: tolerance to a small percentage of message loss.
	res := Spread(SpreadConfig{
		Nodes:  64,
		Gossip: Config{Fanout: 2, Interval: 1, MaxSends: 10},
		Loss:   0.10,
		Seed:   3,
	})
	if res.Saturation < 0.95 {
		t.Errorf("saturation under 10%% loss = %g", res.Saturation)
	}
}

func TestSpreadSingleNode(t *testing.T) {
	res := Spread(SpreadConfig{Nodes: 1, Gossip: DefaultConfig(), Seed: 1})
	if res.Reached != 1 {
		t.Errorf("Reached = %d", res.Reached)
	}
}

func TestSpreadDeterministic(t *testing.T) {
	cfg := SpreadConfig{Nodes: 32, Gossip: Config{Fanout: 1, Interval: 1, MaxSends: 5}, Loss: 0.05, Seed: 9}
	a, b := Spread(cfg), Spread(cfg)
	if a != b {
		t.Errorf("nondeterministic spread: %+v vs %+v", a, b)
	}
}

func TestCrashedAgentStopsGossiping(t *testing.T) {
	k := sim.New(1)
	nw := sim.NewNetwork(k, nil)
	ids := []sim.NodeID{0, 1}
	var agents [2]*Agent
	for i := range ids {
		id := ids[i]
		agents[i] = NewAgent(k, nw, id, StaticView(id, ids), Config{Fanout: 1, Interval: 1, MaxSends: 100})
		nw.Register(id, func(from sim.NodeID, m sim.Message) { agents[id].Deliver(from, m.(Message)) })
		agents[i].Start()
	}
	agents[0].Add(Rumor{ID: "r"})
	nw.Crash(0)
	k.Run(50)
	if agents[1].Knows("r") {
		t.Error("rumor escaped a crashed node")
	}
}

func BenchmarkSpread128(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Spread(SpreadConfig{
			Nodes:  128,
			Gossip: Config{Fanout: 2, Interval: 1, MaxSends: 6},
			Seed:   int64(i),
		})
	}
}

func ExampleSpread() {
	res := Spread(SpreadConfig{
		Nodes:  32,
		Gossip: Config{Fanout: 2, Interval: 1, MaxSends: 6},
		Seed:   1,
	})
	fmt.Printf("reached %d/%d nodes\n", res.Reached, res.Nodes)
	// Output: reached 32/32 nodes
}
