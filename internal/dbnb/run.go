package dbnb

import (
	"encoding/binary"
	"math"
	"sort"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
	"gossipbnb/internal/member"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/sim"
	"gossipbnb/internal/trace"
)

// Result summarizes a simulated run.
type Result struct {
	// Terminated reports whether every non-crashed process detected
	// termination before MaxTime.
	Terminated bool
	// Time is the virtual time at which the last live process detected
	// termination — the paper's "execution time".
	Time float64
	// FirstDetect is when the first process detected termination.
	FirstDetect float64
	// Optimum is the best solution value known to the terminated processes;
	// OptimumOK compares it against the tree's true optimum.
	Optimum   float64
	OptimumOK bool
	// Expanded counts node expansions summed over processes; Unique is the
	// number of distinct tree nodes expanded; Redundant = Expanded − Unique
	// is the paper's redundant work.
	Expanded  int
	Unique    int
	Redundant int
	// DetectTimes holds each process's termination-detection time, indexed
	// by identity — initial processes first, then joiners in join order
	// (NaN = crashed or never entered, +Inf = entered but never detected).
	DetectTimes []float64
	// Joined counts the scheduled joiners that actually entered before the
	// run ended.
	Joined int
	// Completions counts completion events summed over processes.
	Completions int
	// Events is the total simulator events fired — the denominator of the
	// events/sec throughput the CLI reports.
	Events uint64
	// Shards is how many event shards actually ran (0 = the serial
	// single-kernel path).
	Shards int
	// Met carries the per-process breakdowns, counters and storage peaks.
	Met *metrics.System
	// Net carries the network counters.
	Net sim.NetStats
}

// workload is what a simulated run solves: either a recorded basic tree
// (Run) or a code-driven problem expanded from initial data (RunProblem).
// The harness never looks past this struct, so the two modes share every
// line of driver code.
type workload struct {
	// newExpander builds one expander per process — processes re-derive
	// subproblems independently, exactly as the paper's model prescribes.
	newExpander func() protocol.Expander
	// costOf is the modeled CPU seconds charged for expanding it, before
	// the CostFactor granularity knob.
	costOf func(it protocol.Item) float64
	// trueOpt is the single-processor reference optimum.
	trueOpt float64
	// sizeHint estimates distinct subproblems, for map sizing only.
	sizeHint int
}

// shardCtx is one shard's slice of the harness: the kernel and network the
// shard's processes live on, plus every piece of bookkeeping the driver
// mutates during the run. Nothing here is shared — a node only ever touches
// its owner shard's context, from its owner shard's worker goroutine, which
// is what keeps the parallel run free of driver-level races. The legacy
// single-kernel mode is exactly one shardCtx with legacy set.
type shardCtx struct {
	h      *harness
	idx    int
	legacy bool // the bit-identical pre-sharding path (Config.Shards == 0)
	k      *sim.Kernel
	nw     *sim.Network

	expanded map[string]bool // tree nodes expanded at least once (shard-local)
	keyBuf   []byte          // scratch for expansion-map keys
	union    *ctree.Table    // completions observed by this shard's processes
	unionOps int
	// completions counts complete() events across processes (a subproblem
	// completed by k processes counts k times).
	completions int
	detected    int
	lastDet     float64
	firstDet    float64
}

// harness owns one simulated run.
type harness struct {
	cfg    Config
	w      workload
	mesh   *sim.Mesh // nil in legacy single-kernel mode
	shards []*shardCtx
	// joins is the validated, time-sorted elastic-membership schedule;
	// total is Procs plus every scheduled joiner. elastic marks runs with a
	// non-empty schedule: their peer views are epoch-dependent, so the
	// static-view caches (and the ring broadcast fast path, whose window
	// arithmetic assumes full membership) are off.
	joins   []Join
	total   int
	elastic bool
	// k/nw alias shards[0] in legacy mode, for the membership machinery
	// that only runs there.
	k  *sim.Kernel
	nw *sim.Network
	// ring is the doubled process-id ring: node i's static peer view is
	// ring[i+1 : i+procs] — every process but i, one shared backing array
	// for all nodes instead of O(procs²) per-node cached views.
	// Sharded mode only; the legacy path keeps its original per-node cache
	// (same elements, different order) for bit-identical runs.
	ring    []protocol.NodeID
	nodes   []*node
	members []*member.Member
	met     *metrics.System
}

// shardOf returns the context owning process i.
func (h *harness) shardOf(i int) *shardCtx {
	if h.mesh == nil {
		return h.shards[0]
	}
	return h.shards[h.mesh.ShardOf(sim.NodeID(i))]
}

// view returns the members a process may contact under the membership
// protocol (§5.2). Only the legacy path runs membership.
func (h *harness) view(self sim.NodeID) []sim.NodeID {
	return h.members[self].Peers()
}

// memberCountAt is the predetermined-pool membership function: how many
// processes exist at virtual time t under the join schedule. Every process
// derives its peer view from this pure function of its own clock, so views
// converge within one lookahead window without any message exchange — the
// deterministic analogue of §5.2 absorption — and sharded runs stay
// invariant in the shard count.
func (h *harness) memberCountAt(t float64) int {
	m := h.cfg.Procs
	for _, j := range h.joins {
		if j.Time > t {
			break
		}
		m += j.Count
	}
	return m
}

// registerNode wires a node's network handler, routing §5.2 membership
// traffic to its membership agent when the protocol is on. The member is
// looked up per delivery, not captured: a restart replaces it with a
// brand-new one rejoining the group.
func (h *harness) registerNode(n *node) {
	if !h.cfg.UseMembership {
		n.sh.nw.Register(n.id, n.deliver)
		return
	}
	id := n.id
	h.nw.Register(id, func(from sim.NodeID, msg sim.Message) {
		if member.IsProtocolMessage(msg) {
			h.members[id].Deliver(from, msg)
			return
		}
		n.deliver(from, msg)
	})
}

// spawnJoiner brings one scheduled joiner up mid-run: a brand-new process
// under a fresh identity, registered on its owner shard's network, announced
// to the group (§5.2 when membership runs), its periodic chains staggered
// like a boot, and its bootstrap pull chain started. The fresh core is
// seeded with zero-age activity evidence — a process launched into a
// running system must not read its own empty table and view as global
// quiescence and recover the root before the handshake completes.
func (h *harness) spawnJoiner(id int) {
	nid := sim.NodeID(id)
	sh := h.shardOf(id)
	n := newNode(nid, h, sh)
	h.nodes[id] = n
	if h.cfg.UseMembership {
		h.members[id] = member.New(h.k, h.nw, nid, []sim.NodeID{0}, member.DefaultConfig())
	}
	h.registerNode(n)
	if h.cfg.UseMembership {
		h.members[id].Join()
	}
	n.core.NoteRemoteActivity(0)
	jitter := n.rng.Float64()
	n.reportTimer = n.k.After(jitter*h.cfg.ReportTimeout, n.reportTickFn)
	if h.cfg.TableInterval > 0 {
		n.tableTimer = n.k.After(jitter*h.cfg.TableInterval, n.tableTickFn)
	}
	n.bootstrapTick()
	n.loop()
}

// rejoinMember replaces a restarted process's membership agent with a fresh
// one that rejoins through the gossip servers (§5.2): the old view died with
// the old incarnation, and peers that timed the process out re-admit it on
// its new join announcement.
func (h *harness) rejoinMember(id sim.NodeID) {
	// Retire the dead incarnation's agent explicitly: its gossip round may
	// not have ticked inside the crash window, and an undead agent would
	// keep gossiping its stale view under the same identity.
	h.members[id].Leave()
	h.members[id] = member.New(h.k, h.nw, id, []sim.NodeID{0}, member.DefaultConfig())
	h.members[id].Join()
}

// noteExpansion tracks redundant work: expansions of tree nodes some process
// already expanded. The key is encoded into a reused scratch buffer; the
// compiler elides the string conversion on lookup, so only first-time
// expansions allocate (their map key). Sharded runs dedup within each shard
// and merge the key sets after the run, so Result.Unique is exact; only the
// per-node Redundant tallies become shard-local approximations there.
func (sh *shardCtx) noteExpansion(n *node, c code.Code) {
	sh.keyBuf = c.EncodeInto(sh.keyBuf)
	if sh.expanded[string(sh.keyBuf)] {
		n.met.Redundant++
		return
	}
	sh.expanded[string(sh.keyBuf)] = true
}

// noteCompletion maintains the union of completion information; its peak
// wire size is the "one shared copy" baseline against which replicated
// storage is called redundant. Sampled for the same reason as observeTable.
// Sharded runs keep per-shard unions (the metrics sink is shared, so
// mid-run sampling is legacy-only) merged for the final observation.
func (sh *shardCtx) noteCompletion(c code.Code) {
	sh.completions++
	sh.union.Insert(c)
	sh.unionOps++
	if sh.legacy && sh.unionOps%32 == 0 {
		sh.h.met.ObserveUnique(sh.union.WireSize())
	}
}

// noteTermination records a process's detection.
func (sh *shardCtx) noteTermination(n *node) {
	sh.detected++
	now := sh.k.Now()
	if sh.detected == 1 || now < sh.firstDet {
		sh.firstDet = now
	}
	if now > sh.lastDet {
		sh.lastDet = now
	}
	if sh.h.cfg.UseMembership {
		// Leave the group so membership heartbeats quiesce; peers time the
		// process out exactly as they would a failed one (§5.2).
		sh.h.members[n.id].Leave()
	}
}

// Run simulates the algorithm of §5 replaying the given basic tree and
// returns the measured result. Runs are deterministic in (tree, cfg).
func Run(tree *btree.Tree, cfg Config) Result {
	exp := btree.Expander{Tree: tree}
	return run(cfg, workload{
		newExpander: func() protocol.Expander { return exp },
		costOf:      func(it protocol.Item) float64 { return tree.Nodes[it.Ref].Cost },
		trueOpt:     tree.Stats().Optimum,
		sizeHint:    tree.Size(),
	})
}

// RunProblem simulates the algorithm of §5 solving a code-driven problem
// from its initial data only — no recorded tree anywhere. Every process
// re-derives subproblems through its own bnb expander; expansion charges
// the modeled NodeCost (jittered deterministically per code). The
// single-processor reference optimum is established first by the
// sequential engine, so Result.OptimumOK is a real cross-check. Runs are
// deterministic in (problem, cfg).
func RunProblem(p bnb.Problem, cfg Config) Result {
	return RunProblemRef(p, bnb.SolveProblem(p), cfg)
}

// RunProblemRef is RunProblem with a precomputed sequential reference,
// sparing callers that already solved the instance a second solve.
func RunProblemRef(p bnb.Problem, ref bnb.Result, cfg Config) Result {
	base := cfg.withDefaults().NodeCost
	return run(cfg, workload{
		newExpander: func() protocol.Expander { return bnb.NewExpander(p) },
		costOf:      func(it protocol.Item) float64 { return base * costJitter(it.Code) },
		trueOpt:     ref.Value,
		sizeHint:    ref.Expanded,
	})
}

// costJitter maps a code to a deterministic factor in [0.5, 1.5), giving
// code-driven runs irregular per-node costs without a randomness source
// that would break (problem, seed, config) determinism. It streams FNV-1a
// over the code's wire encoding without materializing it — this runs once
// per expansion, and the c.Key() allocation it replaces was a measurable
// slice of the code-driven hot path. The byte stream (and therefore every
// simulated cost) is identical to hashing c.Key().
func costJitter(c code.Code) float64 {
	const (
		fnvOffset = 2166136261
		fnvPrime  = 16777619
	)
	var buf [binary.MaxVarintLen64]byte
	h := uint32(fnvOffset)
	n := binary.PutUvarint(buf[:], uint64(len(c)))
	for _, b := range buf[:n] {
		h = (h ^ uint32(b)) * fnvPrime
	}
	for _, d := range c {
		n = binary.PutUvarint(buf[:], uint64(d.Var)<<1|uint64(d.Branch))
		for _, b := range buf[:n] {
			h = (h ^ uint32(b)) * fnvPrime
		}
	}
	return 0.5 + float64(h%1024)/1024
}

// shardLookahead computes the static safe lookahead of a config: the
// minimum virtual delay any cross-shard message can have. The latency
// model is monotone in size, so its zero-byte value lower-bounds every
// send; replay copies can surface after only ReplayDelay.
func shardLookahead(cfg Config) float64 {
	la := cfg.Latency(0)
	if cfg.Replay > 0 {
		rd := cfg.ReplayDelay
		if rd <= 0 {
			rd = 1 // SetReplay's default floor
		}
		if rd < la {
			la = rd
		}
	}
	return la
}

// shardCount resolves how many shards a run actually uses: 0 is the legacy
// single-kernel path, and features whose state cannot be partitioned —
// membership, tracing, fire hooks, a latency model with no positive floor —
// force it.
func shardCount(cfg Config) int {
	s := cfg.Shards
	if s < 0 {
		s = 0
	}
	if s > cfg.Procs {
		s = cfg.Procs
	}
	if s >= 1 && (cfg.UseMembership || cfg.Trace != nil || cfg.fireHook != nil ||
		cfg.LinkLatency != nil || shardLookahead(cfg) <= 0) {
		s = 0
	}
	return s
}

// normalizeJoins validates and time-sorts the join schedule: joiner
// identities are assigned densely in event-time order, so the sort makes
// memberCountAt monotone and the identity assignment deterministic.
func normalizeJoins(joins []Join) []Join {
	out := make([]Join, 0, len(joins))
	for _, j := range joins {
		if j.Count <= 0 {
			continue
		}
		if j.Time < 0 {
			j.Time = 0
		}
		out = append(out, j)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out
}

func run(cfg Config, w workload) Result {
	cfg = cfg.withDefaults()
	h := &harness{cfg: cfg, w: w}
	h.joins = normalizeJoins(cfg.Joins)
	h.elastic = len(h.joins) > 0
	h.total = cfg.Procs
	for _, j := range h.joins {
		h.total += j.Count
	}
	h.met = metrics.NewSystem(h.total)

	if S := shardCount(cfg); S >= 1 {
		h.mesh = sim.NewMesh(cfg.Seed, S, cfg.Latency, shardLookahead(cfg))
		h.mesh.PlaceBlocks(h.total)
		h.shards = make([]*shardCtx, S)
		for s := 0; s < S; s++ {
			h.shards[s] = &shardCtx{
				h: h, idx: s, k: h.mesh.Kernel(s), nw: h.mesh.Net(s),
				union:    ctree.New(),
				expanded: make(map[string]bool, w.sizeHint/S+1),
			}
		}
		if !h.elastic {
			// The shared doubled ring backs the static sharded views and the
			// ring-range broadcast; elastic views are epoch-built per node.
			h.ring = make([]protocol.NodeID, 2*cfg.Procs)
			for i := 0; i < cfg.Procs; i++ {
				h.ring[i] = protocol.NodeID(i)
				h.ring[i+cfg.Procs] = protocol.NodeID(i)
			}
		}
	} else {
		h.k = sim.New(cfg.Seed)
		if cfg.fireHook != nil {
			h.k.SetFireHook(cfg.fireHook)
		}
		h.nw = sim.NewNetwork(h.k, cfg.Latency)
		h.shards = []*shardCtx{{
			h: h, legacy: true, k: h.k, nw: h.nw,
			union:    ctree.New(),
			expanded: make(map[string]bool, w.sizeHint),
		}}
	}

	for _, sh := range h.shards {
		if cfg.LinkLatency != nil {
			// Legacy serial kernel only (shardCount forces it), so no
			// lookahead bound constrains the per-link delays.
			sh.nw.SetLinkLatency(func(from, to sim.NodeID, bytes int) float64 {
				return cfg.LinkLatency(int(from), int(to), bytes)
			})
		}
		sh.nw.SetLoss(cfg.Loss)
		// Unconditional, like SetLoss: a malformed probability (a sign typo
		// for a knob the user believes is on) must panic, not silently run a
		// well-behaved network.
		sh.nw.SetDuplicate(cfg.Duplicate)
		sh.nw.SetReorder(cfg.Reorder, cfg.ReorderWindow)
		sh.nw.SetReplay(cfg.Replay, cfg.ReplayDelay)
		for _, p := range cfg.Partitions {
			ids := make([]sim.NodeID, len(p.Group))
			for i, g := range p.Group {
				ids[i] = sim.NodeID(g)
			}
			sh.nw.AddPartition(p.Start, p.End, ids)
		}
	}

	h.nodes = make([]*node, h.total)
	if cfg.UseMembership {
		h.members = make([]*member.Member, h.total)
	}
	for i := 0; i < cfg.Procs; i++ {
		id := sim.NodeID(i)
		h.nodes[i] = newNode(id, h, h.shardOf(i))
		if cfg.UseMembership {
			h.members[i] = member.New(h.k, h.nw, id, []sim.NodeID{0}, member.DefaultConfig())
		}
		h.registerNode(h.nodes[i])
		if cfg.UseMembership {
			h.members[i].Join()
		}
	}

	// Elastic membership: scheduled joiners come up mid-run, each on its
	// owner shard's clock, under fresh identities in event-time order.
	nextID := cfg.Procs
	for _, j := range h.joins {
		for c := 0; c < j.Count; c++ {
			id := nextID
			nextID++
			sh := h.shardOf(id)
			at := j.Time
			sh.k.At(at, func() { h.spawnJoiner(id) })
		}
	}

	// Process 0 starts with the original problem; everyone else pulls work
	// through the load-balancing mechanism.
	h.nodes[0].core.Seed(h.nodes[0].exp.Root())

	for i := 0; i < cfg.Procs; i++ {
		n := h.nodes[i]
		// Stagger periodic timers so they do not synchronize system-wide.
		// The handles are kept so a crash before the first tick can cancel
		// the boot chain — a restart starts a fresh one. (Joiners get the
		// same treatment in spawnJoiner, at join time.)
		jitter := n.rng.Float64()
		n.reportTimer = n.k.At(jitter*cfg.ReportTimeout, n.reportTickFn)
		if cfg.TableInterval > 0 {
			n.tableTimer = n.k.At(jitter*cfg.TableInterval, n.tableTickFn)
		}
		n.k.At(0, n.loop)
	}

	for _, c := range cfg.Crashes {
		c := c
		if c.Node < 0 || c.Node >= h.total {
			continue
		}
		// Failure events live on the failing process's own shard: crash
		// state is owned by the shard's network, like every delivery check.
		// A scheduled joiner's node may not exist yet when its crash fires
		// (the join is later, or never came); the crash then only marks the
		// network, exactly like crashing a process that never booted.
		sh := h.shardOf(c.Node)
		sh.k.At(c.Time, func() {
			sh.nw.Crash(sim.NodeID(c.Node))
			if n := h.nodes[c.Node]; n != nil {
				n.crash()
			}
		})
		if c.Restart > c.Time {
			// Crash-restart: the process reboots under its old identity and
			// rebuilds from gossip. Restore first so the rejoin traffic the
			// restart triggers is not swallowed by its own crashed mark.
			sh.k.At(c.Restart, func() {
				sh.nw.Restore(sim.NodeID(c.Node))
				if n := h.nodes[c.Node]; n != nil {
					n.restart()
				}
			})
		}
	}

	var end float64
	if h.mesh != nil {
		end = h.mesh.Run(cfg.MaxTime)
	} else {
		end = h.k.Run(cfg.MaxTime)
	}

	// Fold the per-shard detection records together.
	detected, completions := 0, 0
	firstDet, lastDet := 0.0, 0.0
	for _, sh := range h.shards {
		if sh.detected > 0 {
			if detected == 0 || sh.firstDet < firstDet {
				firstDet = sh.firstDet
			}
			if sh.lastDet > lastDet {
				lastDet = sh.lastDet
			}
			detected += sh.detected
		}
		completions += sh.completions
	}
	// Leftover staggered timer events can outlive the computation; clamp the
	// trace window to when the run actually finished.
	traceEnd := end
	if detected > 0 && lastDet < traceEnd {
		traceEnd = lastDet
	}

	res := Result{
		Time:        lastDet,
		FirstDetect: firstDet,
		Optimum:     math.Inf(1),
		DetectTimes: make([]float64, h.total),
		Met:         h.met,
		Completions: completions,
		Shards:      len(h.shards),
	}
	if h.mesh != nil {
		res.Net = h.mesh.Stats()
		res.Events = h.mesh.Events()
	} else {
		res.Net = h.nw.Stats()
		res.Events = h.k.Events()
		res.Shards = 0
	}
	// Distinct expansions: exact in both modes — shard-local dedup sets are
	// merged here, after the run.
	if len(h.shards) == 1 {
		res.Unique = len(h.shards[0].expanded)
	} else {
		total := 0
		for _, sh := range h.shards {
			total += len(sh.expanded)
		}
		seen := make(map[string]bool, total)
		for _, sh := range h.shards {
			for k := range sh.expanded {
				seen[k] = true
			}
		}
		res.Unique = len(seen)
	}
	trueOpt := h.w.trueOpt
	res.Terminated = true
	anyDetected := false
	for i, n := range h.nodes {
		if n == nil {
			// A scheduled joiner that never entered (its join time lay beyond
			// the run): it never participated, so like a crashed process it
			// neither counts toward nor blocks termination.
			res.DetectTimes[i] = math.NaN()
			continue
		}
		if i >= cfg.Procs {
			res.Joined++
		}
		// Fold the core's protocol-event tallies into the metrics. The
		// driver accounts only what the substrate defines (time splits,
		// storage peaks, expansions it paid for); event counts are the
		// core's, so a termination broadcast is not a "work report" in the
		// experiment tables. Dead crash-restart incarnations folded their
		// tallies into cntPrior — messages they sent were really sent.
		cnt := n.cntPrior.Merge(n.core.Counters())
		n.met.ReportsSent = cnt.ReportsSent
		n.met.ReportCodes = cnt.ReportCodes
		n.met.ReportedComps = cnt.ReportedComps
		n.met.TablesSent = cnt.TablesSent
		n.met.WorkRequests = cnt.WorkRequests
		n.met.WorkSent = cnt.WorkSent
		n.met.Recoveries = cnt.Recoveries
		n.met.PeakPool = cnt.PeakPool
		switch {
		case n.crashed:
			res.DetectTimes[i] = math.NaN()
			cfg.Trace.Add(i, trace.Dead, n.crashedAt, traceEnd)
		case n.done:
			res.DetectTimes[i] = n.detectedAt
			anyDetected = true
			if opt := n.core.Incumbent(); opt < res.Optimum {
				res.Optimum = opt
			}
		default:
			res.DetectTimes[i] = math.Inf(1)
			res.Terminated = false
		}
		res.Expanded += n.met.Expanded
	}
	res.Terminated = res.Terminated && anyDetected
	res.Redundant = res.Expanded - res.Unique
	res.OptimumOK = res.Terminated && res.Optimum == trueOpt
	// Final storage observations (peaks may have been missed by sampling).
	union := h.shards[0].union
	for _, sh := range h.shards[1:] {
		union.Merge(sh.union)
	}
	h.met.ObserveUnique(union.WireSize())
	return res
}
