package dbnb

import (
	"encoding/binary"
	"math"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
	"gossipbnb/internal/member"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/sim"
	"gossipbnb/internal/trace"
)

// Result summarizes a simulated run.
type Result struct {
	// Terminated reports whether every non-crashed process detected
	// termination before MaxTime.
	Terminated bool
	// Time is the virtual time at which the last live process detected
	// termination — the paper's "execution time".
	Time float64
	// FirstDetect is when the first process detected termination.
	FirstDetect float64
	// Optimum is the best solution value known to the terminated processes;
	// OptimumOK compares it against the tree's true optimum.
	Optimum   float64
	OptimumOK bool
	// Expanded counts node expansions summed over processes; Unique is the
	// number of distinct tree nodes expanded; Redundant = Expanded − Unique
	// is the paper's redundant work.
	Expanded  int
	Unique    int
	Redundant int
	// DetectTimes holds each process's termination-detection time
	// (NaN = crashed, +Inf = never detected).
	DetectTimes []float64
	// Completions counts completion events summed over processes.
	Completions int
	// Met carries the per-process breakdowns, counters and storage peaks.
	Met *metrics.System
	// Net carries the network counters.
	Net sim.NetStats
}

// workload is what a simulated run solves: either a recorded basic tree
// (Run) or a code-driven problem expanded from initial data (RunProblem).
// The harness never looks past this struct, so the two modes share every
// line of driver code.
type workload struct {
	// newExpander builds one expander per process — processes re-derive
	// subproblems independently, exactly as the paper's model prescribes.
	newExpander func() protocol.Expander
	// costOf is the modeled CPU seconds charged for expanding it, before
	// the CostFactor granularity knob.
	costOf func(it protocol.Item) float64
	// trueOpt is the single-processor reference optimum.
	trueOpt float64
	// sizeHint estimates distinct subproblems, for map sizing only.
	sizeHint int
}

// harness owns one simulated run.
type harness struct {
	cfg      Config
	k        *sim.Kernel
	nw       *sim.Network
	w        workload
	nodes    []*node
	members  []*member.Member
	met      *metrics.System
	union    *ctree.Table // ground truth of all completions, for storage accounting
	unionOps int
	expanded map[string]bool // tree nodes expanded at least once
	keyBuf   []byte          // scratch for expansion-map keys
	// completions counts complete() events across processes (a subproblem
	// completed by k processes counts k times).
	completions int
	detected    int
	lastDet     float64
	firstDet    float64
}

// view returns the members a process may contact. Without the membership
// protocol the paper's simulations use a predetermined pool: every process
// except oneself, including crashed ones — failures are not directly
// detectable (§4), they only manifest as unanswered requests.
func (h *harness) view(self sim.NodeID) []sim.NodeID {
	if h.cfg.UseMembership {
		return h.members[self].Peers()
	}
	out := make([]sim.NodeID, 0, len(h.nodes)-1)
	for i := range h.nodes {
		if sim.NodeID(i) != self {
			out = append(out, sim.NodeID(i))
		}
	}
	return out
}

// rejoinMember replaces a restarted process's membership agent with a fresh
// one that rejoins through the gossip servers (§5.2): the old view died with
// the old incarnation, and peers that timed the process out re-admit it on
// its new join announcement.
func (h *harness) rejoinMember(id sim.NodeID) {
	// Retire the dead incarnation's agent explicitly: its gossip round may
	// not have ticked inside the crash window, and an undead agent would
	// keep gossiping its stale view under the same identity.
	h.members[id].Leave()
	h.members[id] = member.New(h.k, h.nw, id, []sim.NodeID{0}, member.DefaultConfig())
	h.members[id].Join()
}

// noteExpansion tracks redundant work: expansions of tree nodes some process
// already expanded. The key is encoded into a reused scratch buffer; the
// compiler elides the string conversion on lookup, so only first-time
// expansions allocate (their map key).
func (h *harness) noteExpansion(n *node, c code.Code) {
	h.keyBuf = c.EncodeInto(h.keyBuf)
	if h.expanded[string(h.keyBuf)] {
		n.met.Redundant++
		return
	}
	h.expanded[string(h.keyBuf)] = true
}

// noteCompletion maintains the global union of completion information; its
// peak wire size is the "one shared copy" baseline against which replicated
// storage is called redundant. Sampled for the same reason as observeTable.
func (h *harness) noteCompletion(c code.Code) {
	h.completions++
	h.union.Insert(c)
	h.unionOps++
	if h.unionOps%32 == 0 {
		h.met.ObserveUnique(h.union.WireSize())
	}
}

// noteTermination records a process's detection.
func (h *harness) noteTermination(n *node) {
	h.detected++
	now := h.k.Now()
	if h.detected == 1 || now < h.firstDet {
		h.firstDet = now
	}
	if now > h.lastDet {
		h.lastDet = now
	}
	if h.cfg.UseMembership {
		// Leave the group so membership heartbeats quiesce; peers time the
		// process out exactly as they would a failed one (§5.2).
		h.members[n.id].Leave()
	}
}

// Run simulates the algorithm of §5 replaying the given basic tree and
// returns the measured result. Runs are deterministic in (tree, cfg).
func Run(tree *btree.Tree, cfg Config) Result {
	exp := btree.Expander{Tree: tree}
	return run(cfg, workload{
		newExpander: func() protocol.Expander { return exp },
		costOf:      func(it protocol.Item) float64 { return tree.Nodes[it.Ref].Cost },
		trueOpt:     tree.Stats().Optimum,
		sizeHint:    tree.Size(),
	})
}

// RunProblem simulates the algorithm of §5 solving a code-driven problem
// from its initial data only — no recorded tree anywhere. Every process
// re-derives subproblems through its own bnb expander; expansion charges
// the modeled NodeCost (jittered deterministically per code). The
// single-processor reference optimum is established first by the
// sequential engine, so Result.OptimumOK is a real cross-check. Runs are
// deterministic in (problem, cfg).
func RunProblem(p bnb.Problem, cfg Config) Result {
	return RunProblemRef(p, bnb.SolveProblem(p), cfg)
}

// RunProblemRef is RunProblem with a precomputed sequential reference,
// sparing callers that already solved the instance a second solve.
func RunProblemRef(p bnb.Problem, ref bnb.Result, cfg Config) Result {
	base := cfg.withDefaults().NodeCost
	return run(cfg, workload{
		newExpander: func() protocol.Expander { return bnb.NewExpander(p) },
		costOf:      func(it protocol.Item) float64 { return base * costJitter(it.Code) },
		trueOpt:     ref.Value,
		sizeHint:    ref.Expanded,
	})
}

// costJitter maps a code to a deterministic factor in [0.5, 1.5), giving
// code-driven runs irregular per-node costs without a randomness source
// that would break (problem, seed, config) determinism. It streams FNV-1a
// over the code's wire encoding without materializing it — this runs once
// per expansion, and the c.Key() allocation it replaces was a measurable
// slice of the code-driven hot path. The byte stream (and therefore every
// simulated cost) is identical to hashing c.Key().
func costJitter(c code.Code) float64 {
	const (
		fnvOffset = 2166136261
		fnvPrime  = 16777619
	)
	var buf [binary.MaxVarintLen64]byte
	h := uint32(fnvOffset)
	n := binary.PutUvarint(buf[:], uint64(len(c)))
	for _, b := range buf[:n] {
		h = (h ^ uint32(b)) * fnvPrime
	}
	for _, d := range c {
		n = binary.PutUvarint(buf[:], uint64(d.Var)<<1|uint64(d.Branch))
		for _, b := range buf[:n] {
			h = (h ^ uint32(b)) * fnvPrime
		}
	}
	return 0.5 + float64(h%1024)/1024
}

func run(cfg Config, w workload) Result {
	cfg = cfg.withDefaults()
	h := &harness{
		cfg:      cfg,
		k:        sim.New(cfg.Seed),
		w:        w,
		met:      metrics.NewSystem(cfg.Procs),
		union:    ctree.New(),
		expanded: make(map[string]bool, w.sizeHint),
	}
	if cfg.fireHook != nil {
		h.k.SetFireHook(cfg.fireHook)
	}
	h.nw = sim.NewNetwork(h.k, cfg.Latency)
	h.nw.SetLoss(cfg.Loss)
	// Unconditional, like SetLoss: a malformed probability (a sign typo for
	// a knob the user believes is on) must panic, not silently run a
	// well-behaved network.
	h.nw.SetDuplicate(cfg.Duplicate)
	h.nw.SetReorder(cfg.Reorder, cfg.ReorderWindow)
	h.nw.SetReplay(cfg.Replay, cfg.ReplayDelay)
	for _, p := range cfg.Partitions {
		ids := make([]sim.NodeID, len(p.Group))
		for i, g := range p.Group {
			ids[i] = sim.NodeID(g)
		}
		h.nw.AddPartition(p.Start, p.End, ids)
	}

	h.nodes = make([]*node, cfg.Procs)
	if cfg.UseMembership {
		h.members = make([]*member.Member, cfg.Procs)
	}
	for i := 0; i < cfg.Procs; i++ {
		id := sim.NodeID(i)
		h.nodes[i] = newNode(id, h)
		n := h.nodes[i]
		if cfg.UseMembership {
			h.members[i] = member.New(h.k, h.nw, id, []sim.NodeID{0}, member.DefaultConfig())
			// The member is looked up per delivery, not captured: a restart
			// replaces it with a brand-new one rejoining the group.
			h.nw.Register(id, func(from sim.NodeID, msg sim.Message) {
				if member.IsProtocolMessage(msg) {
					h.members[id].Deliver(from, msg)
					return
				}
				n.deliver(from, msg)
			})
			h.members[i].Join()
		} else {
			h.nw.Register(id, n.deliver)
		}
	}

	// Process 0 starts with the original problem; everyone else pulls work
	// through the load-balancing mechanism.
	h.nodes[0].core.Seed(h.nodes[0].exp.Root())

	for i := range h.nodes {
		n := h.nodes[i]
		// Stagger periodic timers so they do not synchronize system-wide.
		// The handles are kept so a crash before the first tick can cancel
		// the boot chain — a restart starts a fresh one.
		jitter := h.k.Rand().Float64()
		n.reportTimer = h.k.At(jitter*cfg.ReportTimeout, n.reportTickFn)
		if cfg.TableInterval > 0 {
			n.tableTimer = h.k.At(jitter*cfg.TableInterval, n.tableTickFn)
		}
		h.k.At(0, n.loop)
	}

	for _, c := range cfg.Crashes {
		c := c
		if c.Node < 0 || c.Node >= cfg.Procs {
			continue
		}
		h.k.At(c.Time, func() {
			h.nw.Crash(sim.NodeID(c.Node))
			h.nodes[c.Node].crash()
		})
		if c.Restart > c.Time {
			// Crash-restart: the process reboots under its old identity and
			// rebuilds from gossip. Restore first so the rejoin traffic the
			// restart triggers is not swallowed by its own crashed mark.
			h.k.At(c.Restart, func() {
				h.nw.Restore(sim.NodeID(c.Node))
				h.nodes[c.Node].restart()
			})
		}
	}

	end := h.k.Run(cfg.MaxTime)
	// Leftover staggered timer events can outlive the computation; clamp the
	// trace window to when the run actually finished.
	traceEnd := end
	if h.detected > 0 && h.lastDet < traceEnd {
		traceEnd = h.lastDet
	}

	res := Result{
		Time:        h.lastDet,
		FirstDetect: h.firstDet,
		Optimum:     math.Inf(1),
		DetectTimes: make([]float64, cfg.Procs),
		Met:         h.met,
		Net:         h.nw.Stats(),
		Unique:      len(h.expanded),
		Completions: h.completions,
	}
	trueOpt := h.w.trueOpt
	res.Terminated = true
	anyDetected := false
	for i, n := range h.nodes {
		// Fold the core's protocol-event tallies into the metrics. The
		// driver accounts only what the substrate defines (time splits,
		// storage peaks, expansions it paid for); event counts are the
		// core's, so a termination broadcast is not a "work report" in the
		// experiment tables. Dead crash-restart incarnations folded their
		// tallies into cntPrior — messages they sent were really sent.
		cnt := n.cntPrior.Merge(n.core.Counters())
		n.met.ReportsSent = cnt.ReportsSent
		n.met.ReportCodes = cnt.ReportCodes
		n.met.ReportedComps = cnt.ReportedComps
		n.met.TablesSent = cnt.TablesSent
		n.met.WorkRequests = cnt.WorkRequests
		n.met.WorkSent = cnt.WorkSent
		n.met.Recoveries = cnt.Recoveries
		n.met.PeakPool = cnt.PeakPool
		switch {
		case n.crashed:
			res.DetectTimes[i] = math.NaN()
			cfg.Trace.Add(i, trace.Dead, n.crashedAt, traceEnd)
		case n.done:
			res.DetectTimes[i] = n.detectedAt
			anyDetected = true
			if opt := n.core.Incumbent(); opt < res.Optimum {
				res.Optimum = opt
			}
		default:
			res.DetectTimes[i] = math.Inf(1)
			res.Terminated = false
		}
		res.Expanded += n.met.Expanded
	}
	res.Terminated = res.Terminated && anyDetected
	res.Redundant = res.Expanded - res.Unique
	res.OptimumOK = res.Terminated && res.Optimum == trueOpt
	// Final storage observations (peaks may have been missed by sampling).
	h.met.ObserveUnique(h.union.WireSize())
	return res
}
