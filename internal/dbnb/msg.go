package dbnb

import (
	"gossipbnb/internal/code"
)

// Every message carries two piggybacked scalars:
//
//   - incumbent: the sender's best-known solution value — the paper solves
//     information sharing by embedding it "in the most frequently sent
//     messages" (§5);
//   - actAge: how many seconds ago, as far as the sender knows, *some*
//     process in the system was actively computing (0 if the sender itself
//     is). Receivers keep the freshest evidence. This age diffuses
//     epidemically through the messages starving processes exchange anyway,
//     and gates failure recovery: a process only presumes work lost when the
//     whole system has looked inactive for a quiet window. Ages, unlike
//     timestamps, survive the unsynchronized clocks of §4. The paper notes
//     that "the lag in updating information can lead to faulty presumptions
//     on failure"; activity-age gossip is our implementation of the tuning
//     it prescribes.
//
// Sizes follow the wire encodings: codes in binary form, 8 bytes per scalar,
// 1 byte of framing.

// msgReport is a work report: a contracted batch of completed-problem codes
// (§5.3.2). A report whose only code is the root is the final termination
// broadcast of §5.4.
type msgReport struct {
	codes     []code.Code
	incumbent float64
	actAge    float64
}

// Size implements sim.Message.
func (m msgReport) Size() int { return 17 + codesWireSize(m.codes) }

// msgTable is the occasional full-table push "to inform new members of the
// current state of the execution and to increase the degree of consistency".
// Its payload is the sender's contracted table frontier.
type msgTable struct {
	codes     []code.Code
	incumbent float64
	actAge    float64
}

// Size implements sim.Message.
func (m msgTable) Size() int { return 17 + codesWireSize(m.codes) }

// msgWorkRequest asks a randomly chosen member for problems.
type msgWorkRequest struct {
	incumbent float64
	actAge    float64
}

// Size implements sim.Message.
func (m msgWorkRequest) Size() int { return 17 }

// msgWorkGrant transfers problems: codes suffice, because codes are
// self-contained (§5.3.1) — the receiver rebuilds bound and decomposition
// from the code plus the initial data every process holds.
type msgWorkGrant struct {
	codes     []code.Code
	incumbent float64
	actAge    float64
}

// Size implements sim.Message.
func (m msgWorkGrant) Size() int { return 17 + codesWireSize(m.codes) }

// msgWorkDeny tells a requester its target has no work to spare, so the
// requester need not wait out the timeout.
type msgWorkDeny struct {
	incumbent float64
	actAge    float64
}

// Size implements sim.Message.
func (m msgWorkDeny) Size() int { return 17 }

func codesWireSize(cs []code.Code) int {
	n := 1
	for _, c := range cs {
		n += c.WireSize()
	}
	return n
}
