package dbnb

// System-level tests for anti-entropy diff gossip (ISSUE 7). The protocol
// unit tests pin the walk mechanics; these pin the end-to-end claims: the
// mode changes WIRE COST, never the COMPUTATION — same optimum, same
// expansion parity, and the ≥5× steady-state report-byte reduction on the
// seeded Table-1 workload the acceptance criteria name. Test names carry
// "DiffGossip" so CI's chaos and race filters (-run '...|Digest|Diff')
// exercise this path under -race and adversarial delivery.

import (
	"testing"

	"gossipbnb/internal/btree"
	"gossipbnb/internal/protocol"
)

// reportPathBytes sums the wire bytes of every message kind that exists to
// propagate completion state: legacy reports and full-table pushes, plus —
// in diff mode — digest reports and the subtree walk traffic. Work-stealing
// kinds (request/grant/deny) are excluded: both modes need them and their
// volume is a function of starvation, not of the gossip encoding.
func reportPathBytes(res Result) int64 {
	return res.Net.KindBytes[protocol.KindReport] +
		res.Net.KindBytes[protocol.KindTable] +
		res.Net.KindBytes[protocol.KindDigestReport] +
		res.Net.KindBytes[protocol.KindSubtreeRequest] +
		res.Net.KindBytes[protocol.KindSubtreeReply]
}

// TestDiffGossipParityTable1 is the acceptance run: the seeded Table-1
// workload (8001 nodes, 100 processes) in both modes. Diff gossip must
// preserve the computation — termination, exact optimum, identical expansion
// count — while cutting steady-state completion-propagation bytes at least
// 5× (measured ~7.5×; the slack absorbs tuning drift, not regressions).
func TestDiffGossipParityTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Table-1 runs")
	}
	tree, cfg := goldenTable1()
	leg := Run(tree, cfg)
	cfg.DiffGossip = true
	dif := Run(tree, cfg)

	for _, r := range []struct {
		name string
		res  Result
	}{{"legacy", leg}, {"diff", dif}} {
		if !r.res.Terminated || !r.res.OptimumOK {
			t.Fatalf("%s: terminated=%v optimumOK=%v optimum=%g",
				r.name, r.res.Terminated, r.res.OptimumOK, r.res.Optimum)
		}
	}
	if leg.Expanded != dif.Expanded {
		t.Errorf("expansion parity broken: legacy %d vs diff %d",
			leg.Expanded, dif.Expanded)
	}
	// Legacy mode must not leak any diff-gossip traffic: the new kinds are
	// strictly opt-in, so recorded baselines stay comparable.
	for _, k := range []byte{protocol.KindDigestReport, protocol.KindSubtreeRequest, protocol.KindSubtreeReply} {
		if n := leg.Net.KindBytes[k]; n != 0 {
			t.Errorf("legacy run sent %d bytes of %s traffic", n, protocol.KindName(k))
		}
	}
	repLeg, repDif := reportPathBytes(leg), reportPathBytes(dif)
	if repDif == 0 {
		t.Fatal("diff run reported zero report-path bytes")
	}
	t.Logf("report-path bytes: legacy=%d diff=%d ratio=%.2f (total %d vs %d, time %.1f vs %.1f)",
		repLeg, repDif, float64(repLeg)/float64(repDif),
		leg.Net.Bytes, dif.Net.Bytes, leg.Time, dif.Time)
	if ratio := float64(repLeg) / float64(repDif); ratio < 5.0 {
		t.Errorf("report-path bytes ratio = %.2f (legacy %d / diff %d), want >= 5.0",
			ratio, repLeg, repDif)
	}
	// Diff mode trades a modest serial-time slowdown (extra round trips on
	// the walk path) for the byte reduction; it must stay modest.
	if dif.Time > 1.25*leg.Time {
		t.Errorf("diff gossip slowed the run %0.1f -> %0.1f (>25%%)", leg.Time, dif.Time)
	}
}

// TestDiffGossipChaosSoak mirrors the legacy dup/reorder soak with diff
// gossip on: digests ride the same lossy, duplicating, reordering network
// as everything else, and a stale digest must only ever cost extra walk
// traffic — never a missed completion or a wrong optimum.
func TestDiffGossipChaosSoak(t *testing.T) {
	tr := btree.Tiny(21)
	for seed := int64(0); seed < 50; seed++ {
		res := Run(tr, Config{
			Procs: 3, Seed: seed, RecoveryQuiet: 3,
			DiffGossip: true,
			Duplicate:  0.2, Reorder: 0.3,
		})
		if !res.Terminated || !res.OptimumOK {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if res.Net.Duplicated == 0 || res.Net.Reordered == 0 {
			t.Fatalf("seed %d: chaos knobs had no effect: %+v", seed, res.Net)
		}
	}
}

// TestDiffGossipChaosCrossProduct sweeps the full fault surface — restart,
// duplication, reordering, stale replay, loss, and all at once — in diff
// mode. The restart cells are the ones that matter most: a rejoining
// process holds an empty table, and the bootstrap fallback (a Full root
// request answered by the whole frontier) must rebuild it even when the
// digests that triggered it were duplicated, replayed, or lost.
func TestDiffGossipChaosCrossProduct(t *testing.T) {
	tr := btree.Tiny(22)
	base := Run(tr, Config{Procs: 4, Seed: 0, RecoveryQuiet: 3, DiffGossip: true})
	if !base.Terminated {
		t.Fatal("baseline did not terminate")
	}
	half := base.Time / 2
	scenarios := []struct {
		name string
		mut  func(*Config)
	}{
		{"restart", func(c *Config) {
			c.Crashes = []Crash{{Time: half / 2, Node: 1, Restart: half}}
		}},
		{"dup", func(c *Config) { c.Duplicate = 0.25 }},
		{"reorder", func(c *Config) { c.Reorder = 0.4 }},
		{"replay", func(c *Config) { c.Replay = 0.1; c.ReplayDelay = 2 }},
		{"loss", func(c *Config) { c.Loss = 0.15 }},
		{"everything", func(c *Config) {
			c.Crashes = []Crash{{Time: half / 2, Node: 1, Restart: half}, {Time: half, Node: 3}}
			c.Duplicate = 0.2
			c.Reorder = 0.3
			c.Replay = 0.05
			c.ReplayDelay = 2
			c.Loss = 0.1
		}},
	}
	for _, sc := range scenarios {
		for seed := int64(0); seed < 8; seed++ {
			cfg := Config{Procs: 4, Seed: seed, RecoveryQuiet: 3, DiffGossip: true}
			sc.mut(&cfg)
			res := Run(tr, cfg)
			if !res.Terminated || !res.OptimumOK {
				t.Fatalf("%s/seed %d: %+v", sc.name, seed, res)
			}
			if res.Redundant > 5*res.Unique {
				t.Fatalf("%s/seed %d: unbounded redundancy: %d redundant vs %d unique",
					sc.name, seed, res.Redundant, res.Unique)
			}
		}
	}
}

// TestDiffGossipRestartRejoin pins the bootstrap path on its own: a process
// that crashes after real progress and rejoins with an empty table must be
// rebuilt by the Full-root fallback and detect termination with the group.
func TestDiffGossipRestartRejoin(t *testing.T) {
	tr := btree.Tiny(12)
	base := Run(tr, Config{Procs: 3, Seed: 7, RecoveryQuiet: 3, DiffGossip: true})
	if !base.Terminated {
		t.Fatal("baseline did not terminate")
	}
	res := Run(tr, Config{Procs: 3, Seed: 7, RecoveryQuiet: 3, DiffGossip: true,
		Crashes: []Crash{{Time: 0.5 * base.Time, Node: 0, Restart: 0.6 * base.Time}}})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("late-restart rejoin failed: %+v", res)
	}
}

// TestDiffGossipDeterministic: diff mode draws its jitter from the same
// seeded per-node RNG streams as everything else, so runs stay exactly
// reproducible — counters, network stats, and finish time.
func TestDiffGossipDeterministic(t *testing.T) {
	tr := btree.Tiny(23)
	cfg := Config{Procs: 4, Seed: 42, RecoveryQuiet: 3, DiffGossip: true,
		Duplicate: 0.3, Reorder: 0.5, Replay: 0.1, ReplayDelay: 1,
		Crashes: []Crash{{Time: 1, Node: 2, Restart: 3}}}
	a, b := Run(tr, cfg), Run(tr, cfg)
	if a.Time != b.Time || a.Expanded != b.Expanded || a.Net != b.Net {
		t.Errorf("nondeterministic under diff gossip:\n%+v\nvs\n%+v", a.Net, b.Net)
	}
}

// TestDiffGossipShardInvariance: the sharded kernel runs the same protocol
// cores, so diff mode must keep the optimum at every shard count, chaos
// included.
func TestDiffGossipShardInvariance(t *testing.T) {
	k, ref := shardKnapsack()
	for _, S := range []int{1, 2, 4} {
		res := RunProblemRef(k, ref, Config{
			Procs: 64, Seed: 9, Prune: true, Shards: S, DiffGossip: true,
			Duplicate: 0.05, Reorder: 0.05,
			Crashes: []Crash{
				{Time: 0.5, Node: 3, Restart: 2.0},
				{Time: 1.0, Node: 17},
			},
			MaxTime: 1e6,
		})
		if !res.Terminated || !res.OptimumOK {
			t.Errorf("S=%d: terminated=%v optimumOK=%v optimum=%g",
				S, res.Terminated, res.OptimumOK, res.Optimum)
		}
	}
}
