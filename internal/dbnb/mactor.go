package dbnb

import (
	"math/rand"

	"gossipbnb/internal/code"
	"gossipbnb/internal/instance"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/sim"
)

// mactor drives one instance's protocol core on one simulated process — the
// multi-instance counterpart of node. The responsibility split is the same:
// protocol decisions live in the shared core; the actor owns what the
// substrate defines — busy periods, timers, modeled CPU costs, metrics,
// crash delivery — all scoped to its instance. Deliveries always go through
// the same-time wake event and the canonical (arrival, sender) batch order,
// the discipline that makes sharded runs invariant in the shard count.
type mactor struct {
	nid   sim.NodeID
	spec  *mspec
	h     *mharness
	sh    *mshard
	k     *sim.Kernel
	core  *protocol.Core
	exp   protocol.Expander
	entry *instance.Entry // this actor's mux entry; Core updated on restart

	// rng derives from (seed, instance, process) only — see mspec.actorSeed.
	rng *rand.Rand

	started    bool // activation (instance submission time) reached
	busy       bool
	crashed    bool
	done       bool
	detectedAt float64
	inbox      []inMsg
	wake       bool

	incarn   int
	cntPrior protocol.Counters

	reqWaiting  bool
	reqTimer    sim.Event
	reportTimer sim.Event
	tableTimer  sim.Event

	reportTickFn  func()
	tableTickFn   func()
	wakeFn        func()
	expandDoneFn  func(int)
	drainDoneFn   func(int)
	recoverDoneFn func(int)
	paceDoneFn    func(int)
	reqTimeoutFn  func(int)

	pendItem     protocol.Item
	pendStart    float64
	pendComm     float64
	pendContract float64
	pendPlan     []code.Code

	tableOps  int
	idleStart float64
	met       *metrics.Node
}

// actorSender transmits an instance core's messages over the shared network,
// tagged with the instance ID, charging each send's modeled CPU overhead to
// the activity it serves on the instance's own metrics.
type actorSender struct{ a *mactor }

func (s actorSender) Send(to protocol.NodeID, m protocol.Msg) {
	a := s.a
	a.sh.nw.Send(a.nid, sim.NodeID(to), protocol.InstMsg{Instance: a.spec.id, Msg: m})
	over := a.h.cfg.CommOverhead
	switch m.(type) {
	case protocol.Report, protocol.TableMsg,
		protocol.DigestReport, protocol.SubtreeRequest, protocol.SubtreeReply:
		a.met.Add(metrics.Comm, over)
	case protocol.WorkRequest, protocol.WorkGrant, protocol.WorkDeny:
		a.met.Add(metrics.LB, over)
	}
}

func newActor(id sim.NodeID, h *mharness, sh *mshard, spec *mspec) *mactor {
	a := &mactor{
		nid: id, spec: spec, h: h, sh: sh, k: sh.k,
		exp:       spec.w.newExpander(),
		rng:       rand.New(rand.NewSource(spec.actorSeed(h.cfg.Seed, int(id)))),
		idleStart: -1,
		met:       &h.met.At(spec.idx).Nodes[id],
	}
	a.reportTickFn = a.reportTick
	a.tableTickFn = a.tableTick
	a.wakeFn = a.wakeup
	a.expandDoneFn = a.expandDone
	a.drainDoneFn = a.drainDone
	a.recoverDoneFn = a.recoverDone
	a.paceDoneFn = a.paceDone
	a.reqTimeoutFn = a.reqTimeout
	a.initCore()
	return a
}

// initCore builds a fresh protocol core — at construction and again at every
// instance-scoped crash-restart.
func (a *mactor) initCore() {
	cfg := &a.h.cfg
	a.core = protocol.New(protocol.NodeID(a.nid), protocol.Config{
		Select:           cfg.Select,
		Prune:            cfg.Prune,
		ReportBatch:      cfg.ReportBatch,
		ReportFanout:     cfg.ReportFanout,
		ReportTimeout:    cfg.ReportTimeout,
		AdaptiveReports:  cfg.AdaptiveReports,
		MinPoolToShare:   cfg.MinPoolToShare,
		MaxShare:         cfg.MaxShare,
		RecoveryPatience: cfg.RecoveryPatience,
		RecoveryQuiet:    cfg.RecoveryQuiet,
		DisableRecovery:  cfg.DisableRecovery,
		DiffGossip:       cfg.DiffGossip,
	}, protocol.Deps{
		Clock:    a.k,
		Sender:   actorSender{a},
		Expander: a.exp,
		Peers:    a.peerView,
		Rand:     func(m int) int { return a.rng.Intn(m) },
		RandFloat: func() float64 {
			return a.rng.Float64()
		},
		OnComplete:    a.noteCompletion,
		OnTableChange: a.observeTable,
	})
	if a.entry != nil {
		a.entry.Core = a.core
	}
}

// peerView is the static full-pool view: a window of the shared doubled ring,
// every process but this one.
func (a *mactor) peerView() []protocol.NodeID {
	return a.h.ring[int(a.nid)+1 : int(a.nid)+a.h.cfg.Procs]
}

func (a *mactor) noteCompletion(code.Code) {
	a.sh.recs[a.spec.idx].completions++
}

func (a *mactor) dead() bool { return a.crashed || a.done }

// loop is invoked whenever the actor's context becomes free.
func (a *mactor) loop() {
	if !a.started || a.busy || a.crashed {
		return
	}
	if len(a.inbox) > 0 {
		a.drainInbox()
		return
	}
	if a.done {
		return
	}
	it, st := a.core.Next()
	switch st {
	case protocol.Expand:
		a.endIdle()
		a.expand(it)
	case protocol.Terminated:
		a.onTerminated()
	case protocol.Starved:
		a.beginIdle()
		a.requestWork()
	}
}

func (a *mactor) expand(it protocol.Item) {
	cost := a.spec.w.costOf(it) * a.h.cfg.CostFactor
	a.busy = true
	a.pendItem = it
	a.pendStart = a.k.Now()
	a.k.AfterArg(cost, a.expandDoneFn, a.incarn)
}

func (a *mactor) expandDone(gen int) {
	if a.incarn != gen {
		return
	}
	a.busy = false
	if a.crashed {
		return
	}
	it, start := a.pendItem, a.pendStart
	now := a.k.Now()
	a.met.Add(metrics.BB, now-start)
	a.met.Expanded++
	a.sh.noteExpansion(a, it.Code)
	a.core.OnExpanded(it, a.exp.Outcome(it), now-start)
	a.loop()
}

func (a *mactor) reportTick() {
	if a.dead() {
		return
	}
	if a.core.ReportOverdue() {
		a.core.FlushReport()
	}
	a.reportTimer = a.k.After(a.h.cfg.ReportTimeout, a.reportTickFn)
}

func (a *mactor) tableTick() {
	if a.dead() {
		return
	}
	peers := a.peerView()
	if len(peers) > 0 {
		a.core.SendTable(peers[a.rng.Intn(len(peers))])
	}
	a.tableTimer = a.k.After(a.h.cfg.TableInterval, a.tableTickFn)
}

func (a *mactor) requestWork() {
	if a.dead() || a.reqWaiting || a.busy {
		return
	}
	switch a.core.Starve() {
	case protocol.StarveRequested:
		a.reqTimer = a.k.AfterArg(a.h.cfg.RequestTimeout, a.reqTimeoutFn, a.incarn)
	case protocol.StarveRecover:
		a.recover()
	case protocol.StarveWait:
		if !a.core.RequestPending() {
			a.paceRetry()
		}
	}
}

func (a *mactor) reqTimeout(gen int) {
	if a.incarn != gen || a.dead() {
		return
	}
	a.core.RequestFailed()
	a.paceRetry()
}

func (a *mactor) paceRetry() {
	if a.reqWaiting {
		return
	}
	a.reqWaiting = true
	a.k.AfterArg(a.h.cfg.RetryDelay, a.paceDoneFn, a.incarn)
}

func (a *mactor) paceDone(gen int) {
	if a.incarn != gen {
		return
	}
	a.reqWaiting = false
	if !a.dead() && !a.busy {
		a.loop()
	}
}

func (a *mactor) recover() {
	if a.h.cfg.DisableRecovery || a.dead() {
		return
	}
	plan := a.core.PlanRecovery()
	if len(plan) == 0 {
		a.loop()
		return
	}
	scanCost := a.h.cfg.ContractPerCode * float64(a.core.Table().Len()+1)
	a.busy = true
	a.pendPlan = plan
	a.pendStart = a.k.Now()
	a.pendContract = scanCost
	a.endIdle()
	a.k.AfterArg(scanCost, a.recoverDoneFn, a.incarn)
}

func (a *mactor) recoverDone(gen int) {
	if a.incarn != gen {
		return
	}
	a.busy = false
	if a.crashed {
		return
	}
	plan := a.pendPlan
	a.pendPlan = nil
	a.met.Add(metrics.Contract, a.pendContract)
	a.core.Adopt(plan)
	a.loop()
}

// deliver queues one routed message for this actor's instance. Processing
// always defers to a wake event at the same virtual instant, so the whole
// same-time batch lands first and drainInbox orders it canonically — on any
// shard count, serial included.
func (a *mactor) deliver(from sim.NodeID, pm protocol.Msg) {
	if a.crashed {
		return
	}
	if a.done {
		// A done actor is about to be reaped (the tombstone path answers
		// stragglers); nothing here can teach it anything.
		return
	}
	a.inbox = append(a.inbox, inMsg{from: from, at: a.k.Now(), msg: pm})
	if !a.busy && !a.wake {
		a.wake = true
		a.k.After(0, a.wakeFn)
	}
}

func (a *mactor) wakeup() {
	a.wake = false
	if a.busy || a.crashed {
		return
	}
	a.loop()
}

func (a *mactor) drainInbox() {
	cfg := &a.h.cfg
	if len(a.inbox) > 1 {
		// Canonical batch order: (arrival time, sender), stable insertion
		// sort — the batch is nearly sorted already.
		for i := 1; i < len(a.inbox); i++ {
			m := a.inbox[i]
			j := i - 1
			for j >= 0 && (a.inbox[j].at > m.at || (a.inbox[j].at == m.at && a.inbox[j].from > m.from)) {
				a.inbox[j+1] = a.inbox[j]
				j--
			}
			a.inbox[j+1] = m
		}
	}
	commCost, contractCost, lbCost := 0.0, 0.0, 0.0
	for i := 0; i < len(a.inbox); i++ {
		m := a.inbox[i]
		commCost += cfg.CommOverhead
		switch t := m.msg.(type) {
		case protocol.Report:
			contractCost += cfg.ContractPerCode * float64(len(t.Codes))
		case protocol.TableMsg:
			contractCost += cfg.ContractPerCode * float64(len(t.Codes))
		case protocol.DigestReport:
			contractCost += cfg.ContractPerCode * float64(len(t.Codes)+1)
		case protocol.SubtreeRequest:
			contractCost += cfg.ContractPerCode
		case protocol.SubtreeReply:
			contractCost += cfg.ContractPerCode * float64(len(t.Rel)+1)
		case protocol.WorkGrant:
			lbCost += cfg.CommOverhead * float64(1+len(t.Codes)/8)
		}
		eff := a.core.HandleMessage(protocol.NodeID(m.from), m.msg)
		if eff.Answered {
			a.reqTimer.Cancel()
		}
		if eff.Failed {
			a.paceRetry()
		}
	}
	a.inbox = a.inbox[:0]
	a.met.Add(metrics.LB, lbCost)
	a.busy = true
	a.pendStart = a.k.Now()
	a.pendComm = commCost
	a.pendContract = contractCost
	a.endIdle()
	a.k.AfterArg(commCost+contractCost, a.drainDoneFn, a.incarn)
}

func (a *mactor) drainDone(gen int) {
	if a.incarn != gen {
		return
	}
	a.busy = false
	if a.crashed {
		return
	}
	a.met.Add(metrics.Comm, a.pendComm)
	a.met.Add(metrics.Contract, a.pendContract)
	a.loop()
}

func (a *mactor) observeTable() {
	a.tableOps++
	if a.tableOps%32 == 0 {
		a.met.ObserveTable(a.core.Table().WireSize())
	}
}

// onTerminated records this context's termination detection and reaps the
// instance from the process's mux: the routing tombstone answers straggler
// work requests, and the core's table arenas return to the pool.
func (a *mactor) onTerminated() {
	a.done = true
	a.detectedAt = a.k.Now()
	a.endIdle()
	a.met.ObserveTable(a.core.Table().WireSize())
	a.reqTimer.Cancel()
	a.sh.noteTermination(a)
	a.h.muxes[a.nid].Reap(a.spec.id)
}

func (a *mactor) beginIdle() {
	if a.idleStart < 0 {
		a.idleStart = a.k.Now()
	}
}

func (a *mactor) endIdle() {
	if a.idleStart >= 0 {
		a.met.Add(metrics.Idle, a.k.Now()-a.idleStart)
		a.idleStart = -1
	}
}

// crash halts this instance's context (instance-scoped, or as part of a
// whole-process failure).
func (a *mactor) crash() {
	if a.crashed || a.done {
		// Already down, or already played its part in this instance's §5.4
		// termination — a finished context has nothing left to fail.
		return
	}
	a.endIdle()
	a.crashed = true
	a.inbox = nil
	a.reqTimer.Cancel()
	a.reportTimer.Cancel()
	a.tableTimer.Cancel()
}

// restart reboots a crashed context under its old identity: empty table,
// empty pool, fresh expander — it rebuilds purely from its instance's
// gossip, exactly like a single-instance crash-restart.
func (a *mactor) restart() {
	if !a.crashed || a.done {
		return
	}
	a.cntPrior = a.cntPrior.Merge(a.core.Counters())
	a.incarn++
	a.crashed = false
	a.busy = false
	a.reqWaiting = false
	a.inbox = nil
	a.idleStart = -1
	a.tableOps = 0
	a.exp = a.spec.w.newExpander()
	a.initCore()
	a.core.NoteRemoteActivity(0)
	jitter := a.rng.Float64()
	a.reportTimer = a.k.After(jitter*a.h.cfg.ReportTimeout, a.reportTickFn)
	if a.h.cfg.TableInterval > 0 {
		a.tableTimer = a.k.After(jitter*a.h.cfg.TableInterval, a.tableTickFn)
	}
	a.loop()
}
