package dbnb

import (
	"math"
	"math/rand"
	"testing"

	"gossipbnb/internal/btree"
)

// Golden event-order hashes (ISSUE 5). Each constant is the FNV-1a hash of
// the exact (time, seq) stream of every kernel event fired during a seeded
// run, captured against the pre-rewrite container/heap kernel. The arena
// kernel must reproduce the stream bit-for-bit: the paper's reproducibility
// claim (§6.2) rests on seeded runs being exactly repeatable, so a scheduler
// swap that changes even one tie-break silently invalidates every recorded
// experiment. If either hash moves, the kernel changed observable behavior —
// that is a bug in the kernel, not a constant to refresh.
const (
	goldenTable1Hash uint64 = 0x7840152e70264cce
	goldenChaosHash  uint64 = 0xc9678d4fd42684a6
)

// fnvStream folds fired-event (time, seq) pairs into a running FNV-1a hash.
type fnvStream struct{ h uint64 }

func newFNVStream() *fnvStream { return &fnvStream{h: 14695981039346656037} }

func (f *fnvStream) observe(t float64, seq uint64) {
	const prime = 1099511628211
	bits := math.Float64bits(t)
	for i := 0; i < 8; i++ {
		f.h = (f.h ^ (bits & 0xff)) * prime
		bits >>= 8
	}
	for i := 0; i < 8; i++ {
		f.h = (f.h ^ (seq & 0xff)) * prime
		seq >>= 8
	}
}

// goldenTable1 is the BenchmarkTable1/procs=100 scenario: the size-scaled
// Table 1 workload (8001 nodes, 3.47 s mean cost) on 100 processes.
func goldenTable1() (*btree.Tree, Config) {
	r := rand.New(rand.NewSource(1))
	tree := btree.Random(r, btree.RandomConfig{
		Size:         8001,
		Cost:         btree.CostModel{Mean: 3.47, Sigma: 0.6},
		BoundSpread:  1,
		FeasibleProb: 0.05,
	})
	return tree, Config{Procs: 100, Seed: 1, RecoveryQuiet: 120}
}

// goldenChaos is a chaos-soak scenario: loss, duplication, reordering,
// replay, a crash-stop, and a crash-restart in one seeded run. The restart
// matters specifically: it exercises the orphaned-callback path where a dead
// incarnation's busy-period event still fires as a no-op, which the kernel
// swap must preserve event-for-event.
func goldenChaos() (*btree.Tree, Config) {
	r := rand.New(rand.NewSource(13))
	tree := btree.Random(r, btree.RandomConfig{
		Size:         1201,
		Cost:         btree.CostModel{Mean: 0.05, Sigma: 0.5},
		BoundSpread:  2,
		FeasibleProb: 0.1,
	})
	return tree, Config{
		Procs:         8,
		Seed:          13,
		Prune:         true,
		Select:        DepthFirst,
		Loss:          0.05,
		Duplicate:     0.1,
		Reorder:       0.1,
		Replay:        0.05,
		RecoveryQuiet: 8,
		Crashes: []Crash{
			{Time: 5, Node: 1, Restart: 25},
			{Time: 9, Node: 2},
		},
	}
}

func hashRun(t *testing.T, tree *btree.Tree, cfg Config) uint64 {
	t.Helper()
	f := newFNVStream()
	cfg.fireHook = f.observe
	res := Run(tree, cfg)
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("golden run failed: terminated=%v optimumOK=%v", res.Terminated, res.OptimumOK)
	}
	return f.h
}

func TestGoldenEventOrderTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table-1 run")
	}
	tree, cfg := goldenTable1()
	if h := hashRun(t, tree, cfg); h != goldenTable1Hash {
		t.Errorf("Table-1 event-order hash = %#x, want %#x — the kernel's firing order changed", h, goldenTable1Hash)
	}
}

func TestGoldenEventOrderChaos(t *testing.T) {
	tree, cfg := goldenChaos()
	if h := hashRun(t, tree, cfg); h != goldenChaosHash {
		t.Errorf("chaos event-order hash = %#x, want %#x — the kernel's firing order changed", h, goldenChaosHash)
	}
}
