package dbnb

import (
	"math/rand"
	"testing"

	"gossipbnb/internal/bnb"
)

// shardKnapsack is the shared workload for the shard-count tests: big
// enough that work actually migrates between processes, small enough to
// run at four shard counts in one test.
func shardKnapsack() (bnb.Problem, bnb.Result) {
	k := bnb.RandomKnapsack(rand.New(rand.NewSource(17)), 18)
	return k, bnb.SolveProblem(k)
}

// TestShardCountInvariance is the contract Config.Shards documents: with
// per-(Seed, id) node RNG streams, a failure-free run's results are a
// function of (problem, config, Seed) only — the shard count may reorder
// simultaneous events between DIFFERENT processes but never changes any
// process's own trajectory. Optimum, total and per-process expansions,
// unique work, and completion counts must all match exactly.
func TestShardCountInvariance(t *testing.T) {
	// Two workloads: a pruned code-driven knapsack (incumbent circulation,
	// light expansion) and an unpruned tree replay (all 301 nodes must be
	// expanded somewhere — guaranteed work migration, every per-process
	// counter nonzero-able).
	k, ref := shardKnapsack()
	tr := smallTree(4)
	cfg := Config{Procs: 64, Seed: 42, Prune: true}

	type fingerprint struct {
		res     Result
		perProc []int
	}
	runAt := func(shards int) fingerprint {
		c := cfg
		c.Shards = shards
		res := RunProblemRef(k, ref, c)
		mustTerminate(t, res)
		tres := Run(tr, Config{Procs: 32, Seed: 6, Shards: shards})
		mustTerminate(t, tres)
		if tres.Unique != tr.Size() {
			t.Fatalf("S=%d tree replay expanded %d unique nodes, want %d", shards, tres.Unique, tr.Size())
		}
		per := make([]int, 0, cfg.Procs+32)
		for i := range res.Met.Nodes {
			per = append(per, res.Met.Nodes[i].Expanded)
		}
		for i := range tres.Met.Nodes {
			per = append(per, tres.Met.Nodes[i].Expanded)
		}
		res.Expanded += tres.Expanded
		res.Unique += tres.Unique
		res.Completions += tres.Completions
		return fingerprint{res: res, perProc: per}
	}

	base := runAt(1)
	if base.res.Shards != 1 {
		t.Fatalf("Shards=1 ran on %d shards", base.res.Shards)
	}
	for _, S := range []int{2, 4, 8} {
		got := runAt(S)
		if got.res.Shards != S {
			t.Errorf("Shards=%d ran on %d shards", S, got.res.Shards)
		}
		if got.res.Optimum != base.res.Optimum {
			t.Errorf("S=%d optimum %g, S=1 %g", S, got.res.Optimum, base.res.Optimum)
		}
		if got.res.Time != base.res.Time {
			t.Errorf("S=%d virtual time %g, S=1 %g", S, got.res.Time, base.res.Time)
		}
		if got.res.Expanded != base.res.Expanded {
			t.Errorf("S=%d expanded %d, S=1 %d", S, got.res.Expanded, base.res.Expanded)
		}
		if got.res.Unique != base.res.Unique {
			t.Errorf("S=%d unique %d, S=1 %d", S, got.res.Unique, base.res.Unique)
		}
		if got.res.Completions != base.res.Completions {
			t.Errorf("S=%d completions %d, S=1 %d", S, got.res.Completions, base.res.Completions)
		}
		for i := range got.perProc {
			if got.perProc[i] != base.perProc[i] {
				t.Errorf("S=%d process %d expanded %d, S=1 %d",
					S, i, got.perProc[i], base.perProc[i])
			}
		}
	}
}

// TestShardChaosOptimumInvariance is the weaker contract under failures:
// chaos draws (who loses/duplicates/reorders which message, crash fallout)
// come from per-shard RNG streams, so trajectories legitimately differ
// across shard counts — but every shard count must still terminate with
// the true optimum. Crash-restart plus duplication plus reordering is the
// same adversary the serial chaos tier runs.
func TestShardChaosOptimumInvariance(t *testing.T) {
	k, ref := shardKnapsack()
	for _, S := range []int{1, 2, 4, 8} {
		res := RunProblemRef(k, ref, Config{
			Procs: 64, Seed: 9, Prune: true, Shards: S,
			Duplicate: 0.05, Reorder: 0.05,
			Crashes: []Crash{
				{Time: 0.5, Node: 3, Restart: 2.0},
				{Time: 1.0, Node: 17},
				{Time: 1.5, Node: 40, Restart: 3.5},
			},
			MaxTime: 1e6,
		})
		if !res.Terminated || !res.OptimumOK {
			t.Errorf("S=%d: terminated=%v optimumOK=%v optimum=%g",
				S, res.Terminated, res.OptimumOK, res.Optimum)
		}
	}
}

// TestShardDeterminism pins exact reproducibility: the same (seed, shards)
// pair must replay the identical run, event for event — the property that
// makes sharded failures debuggable.
func TestShardDeterminism(t *testing.T) {
	k, ref := shardKnapsack()
	cfg := Config{
		Procs: 48, Seed: 5, Prune: true, Shards: 4,
		Duplicate: 0.03, Reorder: 0.03,
		Crashes: []Crash{{Time: 0.8, Node: 7, Restart: 2.2}},
		MaxTime: 1e6,
	}
	a := RunProblemRef(k, ref, cfg)
	b := RunProblemRef(k, ref, cfg)
	if a.Time != b.Time || a.Events != b.Events || a.Expanded != b.Expanded ||
		a.Completions != b.Completions || a.Optimum != b.Optimum {
		t.Errorf("same (seed, shards) diverged:\n a = time %g events %d expanded %d completions %d optimum %g\n b = time %g events %d expanded %d completions %d optimum %g",
			a.Time, a.Events, a.Expanded, a.Completions, a.Optimum,
			b.Time, b.Events, b.Expanded, b.Completions, b.Optimum)
	}
	for i := range a.DetectTimes {
		if a.DetectTimes[i] != b.DetectTimes[i] {
			t.Errorf("process %d detect time %g vs %g", i, a.DetectTimes[i], b.DetectTimes[i])
		}
	}
}

// TestShardFallbacks pins the documented clamping and legacy fallbacks.
func TestShardFallbacks(t *testing.T) {
	k, ref := shardKnapsack()

	// Shards above Procs clamp to Procs.
	res := RunProblemRef(k, ref, Config{Procs: 4, Seed: 1, Prune: true, Shards: 64})
	mustTerminate(t, res)
	if res.Shards != 4 {
		t.Errorf("Shards=64 with 4 procs ran on %d shards, want clamp to 4", res.Shards)
	}

	// Membership state cannot be partitioned: falls back to the serial path.
	res = RunProblemRef(k, ref, Config{
		Procs: 8, Seed: 1, Prune: true, Shards: 4, UseMembership: true,
	})
	mustTerminate(t, res)
	if res.Shards != 0 {
		t.Errorf("UseMembership+Shards ran on %d shards, want serial fallback (0)", res.Shards)
	}

	// Shards=0 stays the legacy path regardless of GOMAXPROCS.
	res = RunProblemRef(k, ref, Config{Procs: 8, Seed: 1, Prune: true})
	mustTerminate(t, res)
	if res.Shards != 0 {
		t.Errorf("default config ran on %d shards, want 0 (legacy)", res.Shards)
	}
}
