package dbnb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gossipbnb/internal/btree"
)

// TestPropRandomCrashSchedules is the paper's headline guarantee as a
// property: for ANY schedule that leaves at least one process alive, the run
// terminates with the exact optimum.
func TestPropRandomCrashSchedules(t *testing.T) {
	tr := btree.Tiny(11)
	base := Run(tr, Config{Procs: 4, Seed: 1, RecoveryQuiet: 3})
	if !base.Terminated {
		t.Fatal("baseline did not terminate")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		procs := 2 + r.Intn(4)
		kills := r.Intn(procs) // 0 .. procs-1: at least one survivor
		perm := r.Perm(procs)
		cfg := Config{Procs: procs, Seed: seed, RecoveryQuiet: 3}
		for i := 0; i < kills; i++ {
			cfg.Crashes = append(cfg.Crashes, Crash{
				Time: r.Float64() * 2 * base.Time,
				Node: perm[i],
			})
		}
		res := Run(tr, cfg)
		return res.Terminated && res.OptimumOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropLossySchedules: message loss alone must never break termination
// or the optimum.
func TestPropLossySchedules(t *testing.T) {
	tr := btree.Tiny(12)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			Procs:         2 + r.Intn(5),
			Seed:          seed,
			Loss:          r.Float64() * 0.3,
			RecoveryQuiet: 4,
		}
		res := Run(tr, cfg)
		return res.Terminated && res.OptimumOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestChaosEverythingAtOnce combines crashes, loss, a partition, pruning,
// depth-first selection, membership, and adaptive reports in one run.
func TestChaosEverythingAtOnce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         1201,
		Cost:         btree.CostModel{Mean: 0.05, Sigma: 0.5},
		BoundSpread:  2,
		FeasibleProb: 0.1,
	})
	res := Run(tr, Config{
		Procs:           8,
		Seed:            13,
		Prune:           true,
		Select:          DepthFirst,
		Loss:            0.08,
		UseMembership:   true,
		AdaptiveReports: true,
		RecoveryQuiet:   8,
		Crashes: []Crash{
			{Time: 4, Node: 5}, {Time: 6, Node: 6}, {Time: 9, Node: 7},
		},
		Partitions: []Partition{{Start: 3, End: 10, Group: []int{0, 1, 2}}},
	})
	if !res.Terminated {
		t.Fatalf("chaos run did not terminate: %+v", res)
	}
	if !res.OptimumOK {
		t.Fatalf("chaos run lost the optimum: got %g", res.Optimum)
	}
}

// TestPartitionBothSidesProgress: during a partition, both sides keep
// working (recovery re-creates the other side's regions); after healing the
// system converges without double-counting completions in the tables.
func TestPartitionBothSidesProgress(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         801,
		Cost:         btree.CostModel{Mean: 0.05},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	base := Run(tr, Config{Procs: 6, Seed: 14, RecoveryQuiet: 4})
	res := Run(tr, Config{
		Procs: 6, Seed: 14, RecoveryQuiet: 4,
		Partitions: []Partition{{Start: 1, End: base.Time * 2, Group: []int{0, 1, 2}}},
	})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("partitioned run failed: %+v", res)
	}
	// Both sides redo each other's work, so redundancy must appear.
	if res.Redundant == 0 {
		t.Error("long partition caused no redundant work (suspicious)")
	}
}

// TestDepthFirstDeterministic: determinism must hold under the alternate
// selection rule too.
func TestDepthFirstDeterministic(t *testing.T) {
	tr := btree.Tiny(15)
	cfg := Config{Procs: 5, Seed: 99, Select: DepthFirst, Loss: 0.1, RecoveryQuiet: 4}
	a, b := Run(tr, cfg), Run(tr, cfg)
	if a.Time != b.Time || a.Expanded != b.Expanded || a.Net != b.Net {
		t.Errorf("nondeterministic under depth-first: %+v vs %+v", a, b)
	}
}

// TestAdaptiveReportsCorrectness: the adaptive flush must not change
// answers, only traffic.
func TestAdaptiveReportsCorrectness(t *testing.T) {
	tr := btree.Tiny(16)
	fixed := Run(tr, Config{Procs: 4, Seed: 5, RecoveryQuiet: 4, CostFactor: 20, ReportTimeout: 2})
	adaptive := Run(tr, Config{Procs: 4, Seed: 5, RecoveryQuiet: 4, CostFactor: 20, ReportTimeout: 2, AdaptiveReports: true})
	if !fixed.Terminated || !adaptive.Terminated {
		t.Fatal("runs did not terminate")
	}
	if fixed.Optimum != adaptive.Optimum {
		t.Errorf("adaptive reporting changed the optimum: %g vs %g",
			adaptive.Optimum, fixed.Optimum)
	}
}

// --- crash-restart (rejoin) ----------------------------------------------------

// TestRestartRejoinDeterministic is the acceptance scenario for
// crash-restart: a run with {Time: t1, Node: k, Restart: t2} terminates with
// the correct optimum, the restarted process itself detects termination, and
// the whole result is identical across repeated runs with the same seed.
func TestRestartRejoinDeterministic(t *testing.T) {
	tr := btree.Tiny(11)
	cfg := Config{Procs: 4, Seed: 1, RecoveryQuiet: 3,
		Crashes: []Crash{{Time: 1, Node: 2, Restart: 4}}}
	a := Run(tr, cfg)
	if !a.Terminated || !a.OptimumOK {
		t.Fatalf("restart run failed: %+v", a)
	}
	if math.IsNaN(a.DetectTimes[2]) || math.IsInf(a.DetectTimes[2], 1) {
		t.Fatalf("restarted process did not detect termination: %v", a.DetectTimes)
	}
	b := Run(tr, cfg)
	if a.Time != b.Time || a.Expanded != b.Expanded || a.Completions != b.Completions || a.Net != b.Net {
		t.Errorf("nondeterministic under restart:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRestartRebuildsFromGossip: a process that crashes late — after
// expanding a large share of the tree — and restarts re-enters with an empty
// table and rebuilds from peers' reports; the run must converge without
// state from its previous life.
func TestRestartRebuildsFromGossip(t *testing.T) {
	tr := btree.Tiny(12)
	base := Run(tr, Config{Procs: 3, Seed: 7, RecoveryQuiet: 3})
	if !base.Terminated {
		t.Fatal("baseline did not terminate")
	}
	res := Run(tr, Config{Procs: 3, Seed: 7, RecoveryQuiet: 3,
		Crashes: []Crash{{Time: 0.5 * base.Time, Node: 0, Restart: 0.6 * base.Time}}})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("late-restart run failed: %+v", res)
	}
}

// TestRestartAfterSystemTerminated: a process that comes back after everyone
// else finished must still learn the outcome (terminated peers answer its
// work requests with the root report) and terminate instead of recovering
// the whole tree alone forever.
func TestRestartAfterSystemTerminated(t *testing.T) {
	tr := btree.Tiny(13)
	base := Run(tr, Config{Procs: 3, Seed: 9, RecoveryQuiet: 3})
	if !base.Terminated {
		t.Fatal("baseline did not terminate")
	}
	res := Run(tr, Config{Procs: 3, Seed: 9, RecoveryQuiet: 3,
		Crashes: []Crash{{Time: 0.3 * base.Time, Node: 1, Restart: base.Time * 3}}})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("post-termination rejoin failed: %+v", res)
	}
	if math.IsInf(res.DetectTimes[1], 1) {
		t.Fatal("rejoined process never detected termination")
	}
}

// TestRestartWithMembership exercises the §5.2 rejoin path: the restarted
// process announces itself to the gossip servers as a brand-new member,
// rebuilds its view, and finishes the computation with the group.
func TestRestartWithMembership(t *testing.T) {
	tr := btree.Tiny(14)
	res := Run(tr, Config{Procs: 5, Seed: 3, RecoveryQuiet: 5, UseMembership: true,
		Crashes: []Crash{{Time: 2, Node: 3, Restart: 8}, {Time: 3, Node: 4}}})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("membership rejoin run failed: %+v", res)
	}
	if math.IsNaN(res.DetectTimes[3]) {
		t.Fatal("restarted member counted as crashed")
	}
}

// --- adversarial delivery ------------------------------------------------------

// TestChaosSoakDupReorder is the acceptance soak: with Duplicate 0.2 and
// reordering enabled, 50 seeds must all terminate with the correct optimum.
func TestChaosSoakDupReorder(t *testing.T) {
	tr := btree.Tiny(21)
	for seed := int64(0); seed < 50; seed++ {
		res := Run(tr, Config{
			Procs: 3, Seed: seed, RecoveryQuiet: 3,
			Duplicate: 0.2, Reorder: 0.3,
		})
		if !res.Terminated || !res.OptimumOK {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if res.Net.Duplicated == 0 || res.Net.Reordered == 0 {
			t.Fatalf("seed %d: chaos knobs had no effect: %+v", seed, res.Net)
		}
	}
}

// TestChaosSoakCrossProduct sweeps seeds across the full fault surface —
// restart, duplication, reordering, stale replay, loss, partition, and all
// of them at once — asserting termination, the exact optimum, and a bounded
// redundant-work counter for every cell.
func TestChaosSoakCrossProduct(t *testing.T) {
	tr := btree.Tiny(22)
	base := Run(tr, Config{Procs: 4, Seed: 0, RecoveryQuiet: 3})
	if !base.Terminated {
		t.Fatal("baseline did not terminate")
	}
	half := base.Time / 2
	scenarios := []struct {
		name string
		mut  func(*Config)
	}{
		{"restart", func(c *Config) {
			c.Crashes = []Crash{{Time: half / 2, Node: 1, Restart: half}}
		}},
		{"dup", func(c *Config) { c.Duplicate = 0.25 }},
		{"reorder", func(c *Config) { c.Reorder = 0.4 }},
		{"replay", func(c *Config) { c.Replay = 0.1; c.ReplayDelay = 2 }},
		{"loss", func(c *Config) { c.Loss = 0.15 }},
		{"partition", func(c *Config) {
			c.Partitions = []Partition{{Start: half / 2, End: half, Group: []int{0, 1}}}
		}},
		{"everything", func(c *Config) {
			c.Crashes = []Crash{{Time: half / 2, Node: 1, Restart: half}, {Time: half, Node: 3}}
			c.Duplicate = 0.2
			c.Reorder = 0.3
			c.Replay = 0.05
			c.ReplayDelay = 2
			c.Loss = 0.1
			c.Partitions = []Partition{{Start: half / 2, End: half, Group: []int{0, 1}}}
		}},
	}
	for _, sc := range scenarios {
		for seed := int64(0); seed < 8; seed++ {
			cfg := Config{Procs: 4, Seed: seed, RecoveryQuiet: 3}
			sc.mut(&cfg)
			res := Run(tr, cfg)
			if !res.Terminated || !res.OptimumOK {
				t.Fatalf("%s/seed %d: %+v", sc.name, seed, res)
			}
			// Redundant work is the price of uncoordinated fault tolerance,
			// but it must stay bounded: a run-away re-expansion loop would
			// redo the tree many times over.
			if res.Redundant > 5*res.Unique {
				t.Fatalf("%s/seed %d: unbounded redundancy: %d redundant vs %d unique",
					sc.name, seed, res.Redundant, res.Unique)
			}
		}
	}
}

// TestChaosDupReorderDeterministic: adversarial delivery draws from the same
// seeded kernel source, so even maximally mangled runs stay reproducible.
func TestChaosDupReorderDeterministic(t *testing.T) {
	tr := btree.Tiny(23)
	cfg := Config{Procs: 4, Seed: 42, RecoveryQuiet: 3,
		Duplicate: 0.3, Reorder: 0.5, Replay: 0.1, ReplayDelay: 1,
		Crashes: []Crash{{Time: 1, Node: 2, Restart: 3}}}
	a, b := Run(tr, cfg), Run(tr, cfg)
	if a.Time != b.Time || a.Expanded != b.Expanded || a.Net != b.Net {
		t.Errorf("nondeterministic under full chaos:\n%+v\nvs\n%+v", a.Net, b.Net)
	}
}
