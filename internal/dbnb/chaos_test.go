package dbnb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gossipbnb/internal/btree"
)

// TestPropRandomCrashSchedules is the paper's headline guarantee as a
// property: for ANY schedule that leaves at least one process alive, the run
// terminates with the exact optimum.
func TestPropRandomCrashSchedules(t *testing.T) {
	tr := btree.Tiny(11)
	base := Run(tr, Config{Procs: 4, Seed: 1, RecoveryQuiet: 3})
	if !base.Terminated {
		t.Fatal("baseline did not terminate")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		procs := 2 + r.Intn(4)
		kills := r.Intn(procs) // 0 .. procs-1: at least one survivor
		perm := r.Perm(procs)
		cfg := Config{Procs: procs, Seed: seed, RecoveryQuiet: 3}
		for i := 0; i < kills; i++ {
			cfg.Crashes = append(cfg.Crashes, Crash{
				Time: r.Float64() * 2 * base.Time,
				Node: perm[i],
			})
		}
		res := Run(tr, cfg)
		return res.Terminated && res.OptimumOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropLossySchedules: message loss alone must never break termination
// or the optimum.
func TestPropLossySchedules(t *testing.T) {
	tr := btree.Tiny(12)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			Procs:         2 + r.Intn(5),
			Seed:          seed,
			Loss:          r.Float64() * 0.3,
			RecoveryQuiet: 4,
		}
		res := Run(tr, cfg)
		return res.Terminated && res.OptimumOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestChaosEverythingAtOnce combines crashes, loss, a partition, pruning,
// depth-first selection, membership, and adaptive reports in one run.
func TestChaosEverythingAtOnce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         1201,
		Cost:         btree.CostModel{Mean: 0.05, Sigma: 0.5},
		BoundSpread:  2,
		FeasibleProb: 0.1,
	})
	res := Run(tr, Config{
		Procs:           8,
		Seed:            13,
		Prune:           true,
		Select:          DepthFirst,
		Loss:            0.08,
		UseMembership:   true,
		AdaptiveReports: true,
		RecoveryQuiet:   8,
		Crashes: []Crash{
			{Time: 4, Node: 5}, {Time: 6, Node: 6}, {Time: 9, Node: 7},
		},
		Partitions: []Partition{{Start: 3, End: 10, Group: []int{0, 1, 2}}},
	})
	if !res.Terminated {
		t.Fatalf("chaos run did not terminate: %+v", res)
	}
	if !res.OptimumOK {
		t.Fatalf("chaos run lost the optimum: got %g", res.Optimum)
	}
}

// TestPartitionBothSidesProgress: during a partition, both sides keep
// working (recovery re-creates the other side's regions); after healing the
// system converges without double-counting completions in the tables.
func TestPartitionBothSidesProgress(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         801,
		Cost:         btree.CostModel{Mean: 0.05},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	base := Run(tr, Config{Procs: 6, Seed: 14, RecoveryQuiet: 4})
	res := Run(tr, Config{
		Procs: 6, Seed: 14, RecoveryQuiet: 4,
		Partitions: []Partition{{Start: 1, End: base.Time * 2, Group: []int{0, 1, 2}}},
	})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("partitioned run failed: %+v", res)
	}
	// Both sides redo each other's work, so redundancy must appear.
	if res.Redundant == 0 {
		t.Error("long partition caused no redundant work (suspicious)")
	}
}

// TestDepthFirstDeterministic: determinism must hold under the alternate
// selection rule too.
func TestDepthFirstDeterministic(t *testing.T) {
	tr := btree.Tiny(15)
	cfg := Config{Procs: 5, Seed: 99, Select: DepthFirst, Loss: 0.1, RecoveryQuiet: 4}
	a, b := Run(tr, cfg), Run(tr, cfg)
	if a.Time != b.Time || a.Expanded != b.Expanded || a.Net != b.Net {
		t.Errorf("nondeterministic under depth-first: %+v vs %+v", a, b)
	}
}

// TestAdaptiveReportsCorrectness: the adaptive flush must not change
// answers, only traffic.
func TestAdaptiveReportsCorrectness(t *testing.T) {
	tr := btree.Tiny(16)
	fixed := Run(tr, Config{Procs: 4, Seed: 5, RecoveryQuiet: 4, CostFactor: 20, ReportTimeout: 2})
	adaptive := Run(tr, Config{Procs: 4, Seed: 5, RecoveryQuiet: 4, CostFactor: 20, ReportTimeout: 2, AdaptiveReports: true})
	if !fixed.Terminated || !adaptive.Terminated {
		t.Fatal("runs did not terminate")
	}
	if fixed.Optimum != adaptive.Optimum {
		t.Errorf("adaptive reporting changed the optimum: %g vs %g",
			adaptive.Optimum, fixed.Optimum)
	}
}
