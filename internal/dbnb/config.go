// Package dbnb simulates the paper's contribution (§5): a fully
// decentralized, asynchronous, fault-tolerant parallel branch-and-bound
// algorithm for unreliable pools of resources.
//
// The protocol itself — load balancing, incumbent circulation, the
// tree-code fault-tolerance mechanism, almost-implicit termination
// detection — lives in internal/protocol, shared verbatim with the live
// goroutine runtime (internal/live). This package is the deterministic-sim
// driver: it feeds virtual time and internal/sim network events into the
// core and charges the modeled CPU costs of the paper's evaluation. It
// solves either a recorded basic tree (Run — exactly the paper's Parsec
// experiments) or a real code-driven problem expanded from its initial
// data (RunProblem).
package dbnb

import (
	"gossipbnb/internal/bnb"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/sim"
	"gossipbnb/internal/trace"
)

// SelectRule chooses which active problem a process branches next — the
// protocol core's type, shared with the live runtime.
type SelectRule = protocol.SelectRule

// Selection rules.
const (
	BestFirst  = protocol.BestFirst
	DepthFirst = protocol.DepthFirst
)

// Crash schedules a failure of one process: crash-stop when Restart is zero,
// crash-restart when Restart > Time. A restarted process re-enters under its
// old identity with an empty table and an empty pool — the paper's central
// claim is that the completed-work table is the only state that matters, so
// the process rebuilds purely from the reports, tables, and grants it
// receives after rejoining. Runs stay deterministic in (scenario, seed).
type Crash struct {
	Time float64 // virtual time of the halt
	Node int
	// Restart, if > Time, is the virtual time the process comes back.
	Restart float64
	// Instance scopes the failure in multi-instance runs (RunInstances):
	// 0 fails the whole process — every instance it hosts plus its network
	// endpoint — while k > 0 fails only instance k's execution context
	// (1-based, in Instances order), leaving the process's other instances
	// running. Single-instance runs (Run/RunProblem) ignore it.
	Instance int
}

// Instance describes one problem of a multi-instance run (RunInstances): the
// code-driven problem to solve, the seed its per-process protocol randomness
// derives from, and the virtual time the instance is submitted to the
// cluster. Instances are identified on the wire by their 1-based position in
// Config.Instances.
type Instance struct {
	Problem   bnb.Problem
	Seed      int64
	StartTime float64
}

// Join schedules Count brand-new processes to enter the computation at
// virtual time Time — elastic membership, the converse of Crash. Joiners get
// fresh dense identities after the initial Procs (assigned in event-time
// order), announce themselves, are absorbed into every live peer view,
// bootstrap their completion tables from a neighbor via the Full-root
// subtree transfer, and start stealing work. Without UseMembership the view
// change is the predetermined-pool analogue: every process's view tracks the
// scheduled member count as a pure function of virtual time, so runs stay
// deterministic in (scenario, seed) and invariant in the shard count. With
// UseMembership joiners run the real §5.2 announce/absorb path.
type Join struct {
	Time  float64 // virtual time the processes come up
	Count int
}

// Partition isolates Group from everyone else during [Start, End).
type Partition struct {
	Start, End float64
	Group      []int
}

// Config parameterizes a simulated run.
type Config struct {
	Procs int
	Seed  int64

	// Shards partitions the simulated processes across that many parallel
	// event shards, each with its own kernel, synchronized by a conservative
	// lookahead barrier at the latency model's static minimum delay.
	//
	// 0 (the default) is the legacy serial path: one kernel, one global RNG
	// stream — bit-identical to every pre-sharding release, as pinned by the
	// golden event-order tests. Shards >= 1 selects the sharded substrate
	// (1 is its serial baseline): every process draws its randomness from
	// its own (Seed, id)-derived stream, so failure-free results are
	// invariant in the shard count, and a fixed (Seed, Shards) pair is
	// exactly reproducible. Chaos-model draws (loss/dup/reorder/replay)
	// come from per-shard streams, so under chaos only the solved optimum —
	// not the event trajectory — is shard-count invariant.
	//
	// Values above Procs are clamped. Features whose state cannot be
	// partitioned fall back to the legacy path: UseMembership, a non-nil
	// Trace, and latency models without a positive zero-byte floor.
	Shards int

	// Network model. Latency nil means the paper's 1.5 + 0.005·L ms model.
	Latency sim.LatencyModel
	Loss    float64

	// LinkLatency, if non-nil, refines the latency model per (from, to) pair
	// — non-uniform topologies like two clusters joined by a slow WAN link.
	// It must never return less than Latency(0). Scenarios with a link model
	// run on the legacy serial kernel (the sharded mesh's lookahead is
	// derived from the uniform model's floor).
	LinkLatency func(from, to int, bytes int) float64

	// DiffGossip switches the report path to anti-entropy diff gossip:
	// reports carry the completion table's content digest plus the recent
	// delta; a receiver whose digest differs walks the sender's per-subtree
	// digests and pulls only the missing regions, instead of everyone
	// periodically pushing full-table frontiers. Default off — the legacy
	// full-frontier path, pinned bit-identical by the golden tests.
	DiffGossip bool

	// Adversarial delivery — the full asynchronous model of §4, beyond the
	// loss-only network of the paper's own experiments. Duplicate is the
	// independent probability a message is delivered twice (the copy draws
	// its own latency, so the pair races). Reorder is the probability a
	// message is held back by up to ReorderWindow extra seconds, letting
	// later sends overtake it; ReorderWindow 0 means 10× the base latency.
	// Replay re-delivers a stale copy between ReplayDelay and 2·ReplayDelay
	// seconds after the send; ReplayDelay 0 means 1 second.
	Duplicate     float64
	Reorder       float64
	ReorderWindow float64
	Replay        float64
	ReplayDelay   float64

	// CostFactor scales every node cost, the paper's granularity knob
	// ("we tuned this granularity by multiplying all time values by a
	// constant factor"). 0 means 1.
	CostFactor float64

	// NodeCost is the modeled CPU seconds per expansion in code-driven
	// problem runs (RunProblem), standing in for the per-node costs a basic
	// tree records. The charge for each subproblem jitters ±50% by a hash
	// of its code, so runs stay deterministic in (problem, seed, config)
	// while avoiding system-wide lockstep. 0 means 0.01. Tree replays
	// (Run) ignore it.
	NodeCost float64

	// Prune enables incumbent-based elimination. The paper prunes real
	// trees and runs random trees "without eliminating the unpromising
	// nodes"; both modes are supported.
	Prune bool

	// Select is the local selection rule (§2): BestFirst pops the smallest
	// bound, DepthFirst the most recently generated problem. Depth-first
	// completes whole subtrees locally, which is what makes work-report
	// compression effective (§5.3.2) and keeps pools small.
	Select SelectRule

	// ReportBatch is c: completed codes accumulated before a work report is
	// sent. ReportFanout is m: how many random members receive each report.
	ReportBatch  int
	ReportFanout int
	// ReportTimeout flushes a non-empty outbox that has waited this long.
	ReportTimeout float64
	// AdaptiveReports scales the outbox flush timeout with the observed
	// per-subproblem execution time, so that coarse-granularity runs do not
	// ship half-empty reports at a fixed wall-clock cadence. This is the
	// adaptive mechanism the paper calls for after observing that
	// "communication increases unnecessarily because work reports are sent
	// at fixed time intervals" (§6.3.1, §7).
	AdaptiveReports bool
	// TableInterval is how often a member pushes its whole table to one
	// random member (0 disables).
	TableInterval float64

	// MinPoolToShare is how many active problems a process must hold before
	// it grants work away. MaxShare caps problems per grant.
	MinPoolToShare int
	MaxShare       int
	// RequestTimeout bounds the wait for a work-request answer before the
	// attempt counts as failed.
	RequestTimeout float64
	// RetryDelay paces retries after a failed work request. While retrying,
	// a starving process also pushes its table to random members — the
	// paper's observation that lightly loaded processes "suspect termination
	// and send more work reports".
	RetryDelay float64
	// RecoveryPatience is how many consecutive failed work requests a
	// process tolerates before it presumes work was lost and recovers an
	// uncompleted problem from the complement of its table (§5.3.2).
	RecoveryPatience int
	// RecoveryQuiet is the minimum window without any remote progress (a
	// work grant, or a report/table that taught the process something new)
	// before a starving process may presume work was lost. It prevents the
	// complement of a still-empty table — the root problem — from being
	// redundantly adopted during start-up, when idleness just means the
	// work has not spread yet. Each attempt jitters the window ±25% so
	// concurrent recoverers stagger. This is the paper's "how soon failure
	// is suspected after a machine unsuccessfully tries to get work" knob.
	RecoveryQuiet float64
	// DisableRecovery turns the failure-recovery mechanism off (ablation;
	// with failures the run will then hang until MaxTime).
	DisableRecovery bool

	// CommOverhead is the modeled CPU seconds to handle one received
	// message; ContractPerCode the CPU seconds per code merged into the
	// table. Together they produce the paper's "communication time" and
	// "list contraction time" columns.
	CommOverhead    float64
	ContractPerCode float64

	// UseMembership runs the gossip membership protocol (§5.2) instead of a
	// predetermined resource pool; the paper's own simulations use the
	// predetermined pool ("we do not include yet the membership protocol").
	UseMembership bool

	// Fault injection and elastic membership.
	Crashes    []Crash
	Partitions []Partition
	Joins      []Join

	// Instances is the multi-instance workload of RunInstances: every listed
	// problem is solved concurrently over the same process pool, each scoped
	// to its own wire InstanceID. Run/RunProblem ignore it.
	Instances []Instance

	// MaxTime aborts a run that fails to terminate (0 = 1e9 seconds).
	MaxTime float64

	// Trace, if non-nil, records per-process activity spans (Figures 5/6).
	Trace *trace.Log

	// fireHook, if non-nil, observes every kernel event's (time, seq) as it
	// fires. Test-only: the golden event-order tests hash this stream to
	// prove a kernel rewrite preserves the exact firing order of seeded runs.
	fireHook func(t float64, seq uint64)
}

// withDefaults fills unset fields with the defaults used throughout the
// experiments.
func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.Latency == nil {
		c.Latency = sim.PaperLatency()
	}
	if c.CostFactor <= 0 {
		c.CostFactor = 1
	}
	if c.NodeCost <= 0 {
		c.NodeCost = 0.01
	}
	if c.ReportBatch <= 0 {
		c.ReportBatch = 8
	}
	if c.ReportFanout <= 0 {
		c.ReportFanout = 2
	}
	if c.ReportTimeout <= 0 {
		c.ReportTimeout = 30
	}
	if c.TableInterval < 0 {
		c.TableInterval = 0
	} else if c.TableInterval == 0 {
		c.TableInterval = 120
	}
	if c.MinPoolToShare <= 0 {
		c.MinPoolToShare = 2
	}
	if c.MaxShare <= 0 {
		c.MaxShare = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 3
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 1
	}
	if c.RecoveryPatience <= 0 {
		c.RecoveryPatience = 3
	}
	if c.RecoveryQuiet <= 0 {
		c.RecoveryQuiet = 10 * c.RetryDelay
	}
	if c.CommOverhead <= 0 {
		c.CommOverhead = 200e-6
	}
	if c.ContractPerCode <= 0 {
		c.ContractPerCode = 20e-6
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 1e9
	}
	return c
}
