package dbnb

import (
	"math"
	"math/rand"
	"testing"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/trace"
)

// smallTree builds a quick workload: ~300 nodes, 50 ms mean cost.
func smallTree(seed int64) *btree.Tree {
	r := rand.New(rand.NewSource(seed))
	return btree.Random(r, btree.RandomConfig{
		Size:         301,
		Cost:         btree.CostModel{Mean: 0.05, Sigma: 0.4},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
}

func mustTerminate(t *testing.T, res Result) {
	t.Helper()
	if !res.Terminated {
		t.Fatalf("run did not terminate: %+v", res)
	}
	if !res.OptimumOK {
		t.Fatalf("wrong optimum: got %g", res.Optimum)
	}
}

func TestSingleProcess(t *testing.T) {
	tr := smallTree(1)
	res := Run(tr, Config{Procs: 1, Seed: 1})
	mustTerminate(t, res)
	if res.Expanded != tr.Size() {
		t.Errorf("Expanded = %d, want %d (no pruning)", res.Expanded, tr.Size())
	}
	if res.Redundant != 0 {
		t.Errorf("Redundant = %d on one process", res.Redundant)
	}
	st := tr.Stats()
	if math.Abs(res.Time-st.TotalCost) > 1 {
		t.Errorf("Time = %g, want ≈ TotalCost %g", res.Time, st.TotalCost)
	}
}

func TestMultiProcessSpeedup(t *testing.T) {
	tr := smallTree(2)
	t1 := Run(tr, Config{Procs: 1, Seed: 3}).Time
	res := Run(tr, Config{Procs: 4, Seed: 3})
	mustTerminate(t, res)
	if res.Time >= t1 {
		t.Errorf("4 processes (%.2fs) not faster than 1 (%.2fs)", res.Time, t1)
	}
	if res.Time < t1/4 {
		t.Errorf("superlinear speedup is impossible without pruning: %.2fs vs %.2fs", res.Time, t1)
	}
}

func TestEveryNodeExpandedExactlyOnceWhenHealthy(t *testing.T) {
	tr := smallTree(3)
	res := Run(tr, Config{Procs: 4, Seed: 5})
	mustTerminate(t, res)
	if res.Unique != tr.Size() {
		t.Errorf("Unique = %d, want %d", res.Unique, tr.Size())
	}
	// Some end-game redundancy is expected, but it must stay small on a
	// healthy run.
	if res.Redundant > tr.Size()/5 {
		t.Errorf("Redundant = %d (> 20%% of %d) on a failure-free run", res.Redundant, tr.Size())
	}
}

func TestDeterministic(t *testing.T) {
	tr := smallTree(4)
	cfg := Config{Procs: 5, Seed: 77, Loss: 0.05}
	a := Run(tr, cfg)
	b := Run(tr, cfg)
	if a.Time != b.Time || a.Expanded != b.Expanded || a.Net != b.Net {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSeedMatters(t *testing.T) {
	tr := smallTree(5)
	a := Run(tr, Config{Procs: 5, Seed: 1})
	b := Run(tr, Config{Procs: 5, Seed: 2})
	if a.Time == b.Time && a.Net.Sent == b.Net.Sent {
		t.Error("different seeds produced byte-identical runs (suspicious)")
	}
}

func TestPruningReducesWork(t *testing.T) {
	// A tree with generous bound spread prunes heavily.
	r := rand.New(rand.NewSource(6))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         2001,
		Cost:         btree.CostModel{Mean: 0.02},
		BoundSpread:  5,
		FeasibleProb: 0.3,
	})
	full := Run(tr, Config{Procs: 4, Seed: 1})
	pruned := Run(tr, Config{Procs: 4, Seed: 1, Prune: true})
	mustTerminate(t, full)
	mustTerminate(t, pruned)
	if pruned.Expanded >= full.Expanded {
		t.Errorf("pruning did not reduce expansions: %d >= %d", pruned.Expanded, full.Expanded)
	}
}

func TestCrashRecoverySingleSurvivor(t *testing.T) {
	// §5.5 / Figure 6: all processes but one crash; the survivor recovers
	// the lost work and solves the problem correctly.
	tr := btree.Tiny(2)
	res := Run(tr, Config{
		Procs: 3, Seed: 9,
		RecoveryQuiet: 3,
		Crashes:       []Crash{{Time: 2.0, Node: 1}, {Time: 2.1, Node: 2}},
	})
	mustTerminate(t, res)
	if !math.IsNaN(res.DetectTimes[1]) || !math.IsNaN(res.DetectTimes[2]) {
		t.Error("crashed processes should have NaN detect times")
	}
	if math.IsInf(res.DetectTimes[0], 1) {
		t.Error("survivor never detected termination")
	}
	survivors := 0
	for i := range res.Met.Nodes {
		if res.Met.Nodes[i].Recoveries > 0 {
			survivors++
		}
	}
	if survivors == 0 {
		t.Error("no process used complement-based recovery")
	}
}

// TestProblemRunCrashRecovery crashes processes mid-run of a code-driven
// problem: the survivors' complement recovery must re-derive the lost
// subproblems cold from the initial data (no recorded tree exists to look
// them up in) and still find the sequential optimum.
func TestProblemRunCrashRecovery(t *testing.T) {
	k := bnb.RandomKnapsack(rand.New(rand.NewSource(21)), 12)
	res := RunProblem(k, Config{
		Procs: 4, Seed: 21, Prune: true,
		RecoveryQuiet: 3,
		Crashes:       []Crash{{Time: 0.05, Node: 0}, {Time: 0.1, Node: 2}},
	})
	mustTerminate(t, res)
	if res.Time < 0.1 {
		t.Fatalf("run ended at %gs, before the scheduled crashes bit", res.Time)
	}
	if !math.IsNaN(res.DetectTimes[0]) || !math.IsNaN(res.DetectTimes[2]) {
		t.Error("crashed processes should have NaN detect times")
	}
	if want := bnb.SolveProblem(k).Value; res.Optimum != want {
		t.Errorf("optimum after crashes = %g, sequential = %g", res.Optimum, want)
	}
}

func TestCrashEarlyBeforeAnyReports(t *testing.T) {
	// The process holding the root crashes almost immediately: everything
	// must be recovered from empty tables.
	tr := btree.Tiny(3)
	res := Run(tr, Config{
		Procs: 4, Seed: 11,
		RecoveryQuiet: 3,
		Crashes:       []Crash{{Time: 0.01, Node: 0}},
	})
	mustTerminate(t, res)
}

func TestMassCrashWithPruning(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         801,
		Cost:         btree.CostModel{Mean: 0.05},
		BoundSpread:  3,
		FeasibleProb: 0.2,
	})
	res := Run(tr, Config{
		Procs: 6, Seed: 13, Prune: true,
		RecoveryQuiet: 3,
		Crashes: []Crash{
			{Time: 3, Node: 1}, {Time: 4, Node: 2}, {Time: 5, Node: 3},
			{Time: 6, Node: 4}, {Time: 7, Node: 5},
		},
	})
	mustTerminate(t, res)
	if res.Redundant == 0 {
		t.Log("note: no redundant work despite five crashes (possible but unusual)")
	}
}

func TestMessageLoss(t *testing.T) {
	tr := smallTree(8)
	res := Run(tr, Config{Procs: 4, Seed: 17, Loss: 0.15, RecoveryQuiet: 5})
	mustTerminate(t, res)
	if res.Net.Lost == 0 {
		t.Error("loss model inactive")
	}
}

func TestTemporaryPartition(t *testing.T) {
	// §5.3.2: the mechanism also works across temporary network partitions.
	tr := smallTree(9)
	res := Run(tr, Config{
		Procs: 6, Seed: 19, RecoveryQuiet: 4,
		Partitions: []Partition{{Start: 2, End: 8, Group: []int{0, 1, 2}}},
	})
	mustTerminate(t, res)
	if res.Net.Cut == 0 {
		t.Error("partition cut no messages (check scenario)")
	}
}

func TestDisableRecoveryHangsAfterCrash(t *testing.T) {
	tr := btree.Tiny(4)
	res := Run(tr, Config{
		Procs: 3, Seed: 21,
		DisableRecovery: true,
		RecoveryQuiet:   2,
		Crashes:         []Crash{{Time: 1.0, Node: 0}},
		MaxTime:         120,
	})
	if res.Terminated {
		// Only legitimate if node 0 held no unreported completed work and
		// no active problems when it crashed — overwhelmingly unlikely at
		// t=1 with this seed; treat as a test failure to catch regressions.
		t.Error("run terminated with recovery disabled after the root holder crashed")
	}
}

func TestWorkReportBatching(t *testing.T) {
	tr := smallTree(10)
	res := Run(tr, Config{Procs: 4, Seed: 23, ReportBatch: 4})
	mustTerminate(t, res)
	reports := 0
	for i := range res.Met.Nodes {
		reports += res.Met.Nodes[i].ReportsSent
	}
	if reports == 0 {
		t.Error("no work reports sent")
	}
}

func TestSmallerBatchMoreReports(t *testing.T) {
	tr := smallTree(11)
	count := func(batch int) int {
		res := Run(tr, Config{Procs: 4, Seed: 25, ReportBatch: batch})
		mustTerminate(t, res)
		n := 0
		for i := range res.Met.Nodes {
			n += res.Met.Nodes[i].ReportsSent
		}
		return n
	}
	if c4, c32 := count(4), count(32); c4 <= c32 {
		t.Errorf("batch 4 sent %d reports, batch 32 sent %d; want more with smaller batch", c4, c32)
	}
}

func TestMetricsAccounting(t *testing.T) {
	tr := smallTree(12)
	res := Run(tr, Config{Procs: 4, Seed: 27})
	mustTerminate(t, res)
	agg := res.Met.AggregateBreakdown()
	if agg.Get(metrics.BB) <= 0 {
		t.Error("no BB time accrued")
	}
	if agg.Get(metrics.Comm) <= 0 {
		t.Error("no communication time accrued")
	}
	if agg.Get(metrics.Contract) <= 0 {
		t.Error("no contraction time accrued")
	}
	// Per-process accrued time cannot exceed its detection time.
	for i := range res.Met.Nodes {
		total := res.Met.Nodes[i].Total()
		if det := res.DetectTimes[i]; !math.IsNaN(det) && !math.IsInf(det, 1) {
			if total > det*1.05+1 {
				t.Errorf("process %d accrued %.2fs but detected at %.2fs", i, total, det)
			}
		}
	}
	if res.Met.TotalStorage() <= 0 {
		t.Error("no storage observed")
	}
	if res.Net.Bytes <= 0 {
		t.Error("no bytes sent")
	}
}

func TestTraceRecordsAllStates(t *testing.T) {
	tr := btree.Tiny(5)
	var lg trace.Log
	res := Run(tr, Config{
		Procs: 3, Seed: 29, Trace: &lg, RecoveryQuiet: 3,
		Crashes: []Crash{{Time: 2, Node: 2}},
	})
	mustTerminate(t, res)
	sum := lg.Summary()
	for _, st := range []trace.State{trace.Compute, trace.Comm, trace.Idle, trace.Dead} {
		if sum[st] <= 0 {
			t.Errorf("trace has no %v spans", st)
		}
	}
}

func TestGranularityScaling(t *testing.T) {
	// §6.3.1: coarser granularity improves load balance (higher BB share).
	tr := smallTree(13)
	share := func(factor float64) float64 {
		res := Run(tr, Config{Procs: 6, Seed: 31, CostFactor: factor})
		mustTerminate(t, res)
		return res.Met.AggregateBreakdown().Percent(metrics.BB)
	}
	fine, coarse := share(0.2), share(5)
	if coarse <= fine {
		t.Errorf("BB share did not improve with coarser granularity: fine=%.1f%% coarse=%.1f%%", fine, coarse)
	}
}

func TestIncumbentPropagates(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         1501,
		Cost:         btree.CostModel{Mean: 0.02},
		BoundSpread:  4,
		FeasibleProb: 0.25,
	})
	res := Run(tr, Config{Procs: 5, Seed: 33, Prune: true})
	mustTerminate(t, res)
	// With pruning, every terminated process must know the true optimum —
	// the incumbent piggybacking requirement of §5.
	want := tr.Stats().Optimum
	if res.Optimum != want {
		t.Errorf("Optimum = %g, want %g", res.Optimum, want)
	}
}

func TestMembershipMode(t *testing.T) {
	tr := smallTree(15)
	res := Run(tr, Config{Procs: 5, Seed: 35, UseMembership: true, RecoveryQuiet: 6})
	mustTerminate(t, res)
}

func TestMembershipModeWithCrashes(t *testing.T) {
	tr := smallTree(16)
	res := Run(tr, Config{
		Procs: 5, Seed: 37, UseMembership: true, RecoveryQuiet: 5,
		Crashes: []Crash{{Time: 3, Node: 2}, {Time: 4, Node: 4}},
	})
	mustTerminate(t, res)
}

func TestLoneProcessWithMembership(t *testing.T) {
	tr := btree.Tiny(6)
	res := Run(tr, Config{Procs: 1, Seed: 39, UseMembership: true})
	mustTerminate(t, res)
}

func TestDetectTimesOrdered(t *testing.T) {
	tr := smallTree(17)
	res := Run(tr, Config{Procs: 4, Seed: 41})
	mustTerminate(t, res)
	if res.FirstDetect > res.Time {
		t.Errorf("FirstDetect %.2f after last detection %.2f", res.FirstDetect, res.Time)
	}
	for i, d := range res.DetectTimes {
		if d < res.FirstDetect || d > res.Time {
			t.Errorf("process %d detect time %.2f outside [%.2f, %.2f]", i, d, res.FirstDetect, res.Time)
		}
	}
}

func TestConfigValidationDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Procs != 1 || cfg.ReportBatch <= 0 || cfg.RetryDelay <= 0 || cfg.RecoveryQuiet <= 0 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
	// Negative TableInterval disables table gossip.
	cfg = Config{TableInterval: -1}.withDefaults()
	if cfg.TableInterval != 0 {
		t.Errorf("TableInterval = %g, want 0 (disabled)", cfg.TableInterval)
	}
}

func TestCrashOutOfRangeIgnored(t *testing.T) {
	tr := btree.Tiny(7)
	res := Run(tr, Config{Procs: 2, Seed: 43, Crashes: []Crash{{Time: 1, Node: 99}, {Time: 1, Node: -1}}})
	mustTerminate(t, res)
}

func BenchmarkRun8Procs(b *testing.B) {
	tr := smallTree(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(tr, Config{Procs: 8, Seed: int64(i)})
		if !res.Terminated {
			b.Fatal("did not terminate")
		}
	}
}
