package dbnb

import (
	"math"
	"math/rand"
	"testing"

	"gossipbnb/internal/btree"
)

// churnTree is a workload big enough that a mid-solve join lands while
// plenty of work remains: ~2000 nodes, ~100 s uniprocessor.
func churnTree(seed int64) *btree.Tree {
	r := rand.New(rand.NewSource(seed))
	return btree.Random(r, btree.RandomConfig{
		Size:         2001,
		Cost:         btree.CostModel{Mean: 0.05, Sigma: 0.5},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
}

// TestJoinDoublesClusterSpeedup is the headline elastic-membership scenario:
// the cluster starts at N processes, doubles to 2N mid-solve via the join
// path, and the speedup follows — the run finishes earlier than the N-process
// baseline, the optimum still matches the sequential reference, and the
// redundancy envelope stays bounded (joiners bootstrap their tables instead
// of re-expanding solved regions).
func TestJoinDoublesClusterSpeedup(t *testing.T) {
	tr := churnTree(21)
	base := Run(tr, Config{Procs: 4, Seed: 7})
	mustTerminate(t, base)
	res := Run(tr, Config{
		Procs: 4, Seed: 7,
		Joins: []Join{{Time: base.Time / 4, Count: 4}},
	})
	mustTerminate(t, res)
	if res.Joined != 4 {
		t.Fatalf("Joined = %d, want 4", res.Joined)
	}
	if len(res.DetectTimes) != 8 {
		t.Fatalf("DetectTimes tracks %d processes, want 8", len(res.DetectTimes))
	}
	for i, d := range res.DetectTimes {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Errorf("process %d never detected termination (%g)", i, d)
		}
	}
	if res.Time >= base.Time {
		t.Errorf("doubling mid-solve did not speed the run up: %.2fs vs baseline %.2fs",
			res.Time, base.Time)
	}
	joinerWork := 0
	for i := 4; i < 8; i++ {
		joinerWork += res.Met.Nodes[i].Expanded
	}
	if joinerWork == 0 {
		t.Error("joiners expanded nothing — they never stole work")
	}
	// Bounded redundancy: a join must cost bootstrap traffic, not re-expanded
	// subtrees. The envelope is deliberately loose (recovery under unlucky
	// timing legitimately re-expands a little) but far below "redo the tree".
	if res.Redundant > res.Unique/5 {
		t.Errorf("redundant work %d exceeds the envelope (unique %d)", res.Redundant, res.Unique)
	}
}

// TestJoinChurnDeterministic: elastic runs are deterministic in the seed,
// chaos and sharding included.
func TestJoinChurnDeterministic(t *testing.T) {
	tr := smallTree(9)
	cfg := Config{
		Procs: 3, Seed: 11, Shards: 2,
		Loss: 0.05, Duplicate: 0.1,
		Joins:         []Join{{Time: 2, Count: 3}},
		Crashes:       []Crash{{Time: 4, Node: 1}},
		RecoveryQuiet: 6,
	}
	a := Run(tr, cfg)
	b := Run(tr, cfg)
	mustTerminate(t, a)
	if a.Time != b.Time || a.Expanded != b.Expanded || a.Optimum != b.Optimum ||
		a.Completions != b.Completions || a.Events != b.Events {
		t.Errorf("same seed, different runs:\n a: %+v\n b: %+v", a, b)
	}
}

// TestJoinShardCountInvariance extends the Config.Shards contract to elastic
// runs: peer views are a pure function of each process's own clock and the
// join schedule, so a failure-free churn run's results cannot depend on how
// processes are sharded.
func TestJoinShardCountInvariance(t *testing.T) {
	tr := smallTree(4)
	runAt := func(shards int) Result {
		res := Run(tr, Config{
			Procs: 8, Seed: 6, Shards: shards,
			Joins: []Join{{Time: 1.5, Count: 8}},
		})
		mustTerminate(t, res)
		if res.Unique != tr.Size() {
			t.Fatalf("S=%d expanded %d unique nodes, want %d", shards, res.Unique, tr.Size())
		}
		return res
	}
	base := runAt(1)
	if base.Joined != 8 {
		t.Fatalf("Joined = %d, want 8", base.Joined)
	}
	for _, S := range []int{2, 4} {
		got := runAt(S)
		if got.Shards != S {
			t.Errorf("Shards=%d ran on %d shards", S, got.Shards)
		}
		if got.Optimum != base.Optimum || got.Time != base.Time ||
			got.Expanded != base.Expanded || got.Completions != base.Completions {
			t.Errorf("S=%d diverged from S=1:\n got %+v\nwant %+v", S, got, base)
		}
		for i := range got.Met.Nodes {
			if got.Met.Nodes[i].Expanded != base.Met.Nodes[i].Expanded {
				t.Errorf("S=%d process %d expanded %d, S=1 %d",
					S, i, got.Met.Nodes[i].Expanded, base.Met.Nodes[i].Expanded)
			}
		}
	}
}

// TestJoinWithMembership runs the real §5.2 path: joiners announce to the
// gossip server, are absorbed into live views by heartbeat gossip, bootstrap
// from a neighbor, and work.
func TestJoinWithMembership(t *testing.T) {
	tr := churnTree(22)
	res := Run(tr, Config{
		Procs:         4,
		Seed:          5,
		UseMembership: true,
		RecoveryQuiet: 8,
		Joins:         []Join{{Time: 10, Count: 4}},
	})
	mustTerminate(t, res)
	if res.Joined != 4 {
		t.Fatalf("Joined = %d, want 4", res.Joined)
	}
	joinerWork := 0
	for i := 4; i < 8; i++ {
		joinerWork += res.Met.Nodes[i].Expanded
		if d := res.DetectTimes[i]; math.IsNaN(d) || math.IsInf(d, 0) {
			t.Errorf("joiner %d never detected termination (%g)", i, d)
		}
	}
	if joinerWork == 0 {
		t.Error("membership joiners expanded nothing")
	}
}

// TestChurnJoinCrashMix: joins and crashes interleave — including a joiner
// that crashes and restarts — under loss and duplication, and the system
// still terminates on the exact optimum.
func TestChurnJoinCrashMix(t *testing.T) {
	tr := smallTree(31)
	res := Run(tr, Config{
		Procs:         4,
		Seed:          19,
		Loss:          0.05,
		Duplicate:     0.1,
		RecoveryQuiet: 6,
		Joins:         []Join{{Time: 3, Count: 2}, {Time: 6, Count: 2}},
		Crashes: []Crash{
			{Time: 5, Node: 1},
			{Time: 8, Node: 5, Restart: 12}, // a joiner fails and reboots
		},
	})
	mustTerminate(t, res)
	if res.Joined != 4 {
		t.Fatalf("Joined = %d, want 4", res.Joined)
	}
}

// TestJoinAfterTermination: a process that joins a finished computation must
// converge immediately — its work requests are answered with the root
// report, the §5.4 "computation is over" signal — not hang or redo the tree.
func TestJoinAfterTermination(t *testing.T) {
	tr := smallTree(8)
	res := Run(tr, Config{
		Procs: 2, Seed: 2,
		Joins: []Join{{Time: 500, Count: 1}},
	})
	mustTerminate(t, res)
	if res.Joined != 1 {
		t.Fatalf("Joined = %d, want 1", res.Joined)
	}
	if d := res.DetectTimes[2]; math.IsNaN(d) || math.IsInf(d, 0) || d < 500 {
		t.Fatalf("late joiner detect time = %g, want finite ≥ 500", d)
	}
	if res.Met.Nodes[2].Expanded != 0 {
		t.Errorf("post-termination joiner expanded %d nodes, want 0", res.Met.Nodes[2].Expanded)
	}
}

// TestJoinDiffGossipBootstrap: in diff-gossip mode the joiner's bootstrap is
// the same Full-root subtree pull; the run keeps the optimum and the joiners
// participate.
func TestJoinDiffGossipBootstrap(t *testing.T) {
	tr := churnTree(23)
	res := Run(tr, Config{
		Procs:      4,
		Seed:       3,
		DiffGossip: true,
		Joins:      []Join{{Time: 15, Count: 4}},
	})
	mustTerminate(t, res)
	if res.Joined != 4 {
		t.Fatalf("Joined = %d, want 4", res.Joined)
	}
	if res.Redundant > res.Unique/5 {
		t.Errorf("redundant work %d exceeds the envelope (unique %d)", res.Redundant, res.Unique)
	}
}
