package dbnb

import (
	"math"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/code"
	"gossipbnb/internal/instance"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/sim"
)

// This file is the multi-instance sim driver: one simulated cluster solving
// several problem instances concurrently, each scoped to its own wire
// InstanceID. The paper's mechanism is per-problem by construction — the
// completion tree and the termination detector scope to one root — so
// multiplexing is namespacing: every process hosts an instance.Mux routing
// inbound messages to one protocol core per instance, and each instance runs
// the unmodified §5 protocol among its peers' same-instance cores.
//
// The execution model gives every instance its own modeled execution context
// per process (an independent worker slice: own busy periods, own timers, own
// randomness stream derived from (seed, instance, process)), while the
// network endpoints are shared. That makes failure-free instances causally
// independent — the basis of the isolation guarantee the chaos tests pin —
// and keeps runs deterministic in (config, seed) and invariant in the shard
// count, by the same wake-event + canonical batch-order discipline as the
// sharded single-instance path. Chaos draws (loss/dup/reorder/replay) come
// from shared network streams, so under chaos only each instance's solved
// optimum — not its event trajectory — is isolation-invariant.

// InstanceResult is one instance's slice of a multi-instance run.
type InstanceResult struct {
	// ID is the instance's wire identifier (its 1-based Instances position).
	ID protocol.InstanceID
	// Terminated reports whether every process that did not fail this
	// instance detected its termination before MaxTime.
	Terminated bool
	// Start is the instance's submission time; Time is when the last live
	// process detected its termination; FirstDetect the first.
	Start       float64
	Time        float64
	FirstDetect float64
	// Optimum is the best solution value known to the instance's terminated
	// processes; OptimumOK compares it against the instance's own sequential
	// solve (SeqOptimum, found in SeqExpanded expansions).
	Optimum     float64
	OptimumOK   bool
	SeqOptimum  float64
	SeqExpanded int
	// Expanded/Unique/Redundant are this instance's expansion counts.
	Expanded  int
	Unique    int
	Redundant int
	// Completions counts completion events summed over processes.
	Completions int
	// DetectTimes is per-process detection, indexed by process identity
	// (NaN = failed for this instance, +Inf = never detected).
	DetectTimes []float64
	// Work and Overhead are the instance's modeled CPU seconds summed over
	// processes: BB expansion vs. communication + contraction + load
	// balancing (Dwork/Halpern/Waarts-style accounting, per tenant).
	Work     float64
	Overhead float64
}

// MultiResult summarizes a multi-instance run.
type MultiResult struct {
	// Terminated reports whether every instance terminated.
	Terminated bool
	// Time is when the last instance finished.
	Time      float64
	Instances []InstanceResult
	// Events is the total simulator events fired; Shards how many event
	// shards ran (0 = the serial single-kernel path).
	Events uint64
	Shards int
	// Met is the instance-labeled metrics registry: Met.At(i) is instance
	// i's per-process breakdowns and counters.
	Met *metrics.Multi
	// Net carries the shared network's counters (all instances together).
	Net sim.NetStats
}

// mspec is one instance's static description inside the harness.
type mspec struct {
	id       protocol.InstanceID
	idx      int // 0-based slot: Instances index, metrics index
	start    float64
	seed     int64
	seedNode int // the process whose core is seeded with the root
	w        workload
	ref      bnb.Result
}

// actorSeed derives the RNG stream of one instance's context on one process.
// It depends only on (run seed, instance seed, instance slot, process id) —
// not on the shard layout or on what other instances do — which is what
// makes an instance's stochastic choices isolation- and shard-invariant.
func (s *mspec) actorSeed(cfgSeed int64, id int) int64 {
	return sim.DeriveSeed(sim.DeriveSeed(cfgSeed^s.seed, 1_000_003+s.idx), id)
}

// mrec is one shard's detection/expansion record for one instance.
type mrec struct {
	detected    int
	firstDet    float64
	lastDet     float64
	completions int
	expanded    map[string]bool
}

// mshard is one shard's slice of the multi-instance harness.
type mshard struct {
	h      *mharness
	idx    int
	k      *sim.Kernel
	nw     *sim.Network
	recs   []mrec // per instance slot
	keyBuf []byte
}

// mharness owns one multi-instance run.
type mharness struct {
	cfg    Config
	specs  []*mspec
	mesh   *sim.Mesh // nil in serial mode
	shards []*mshard
	k      *sim.Kernel // serial mode alias of shards[0]
	// ring is the doubled process-id ring backing every actor's static peer
	// view (every process but its own), shared across instances.
	ring   []protocol.NodeID
	muxes  []*instance.Mux // per process: routes inbound traffic by instance
	actors [][]*mactor     // [process][instance slot]
	met    *metrics.Multi
}

func (h *mharness) shardOf(i int) *mshard {
	if h.mesh == nil {
		return h.shards[0]
	}
	return h.shards[h.mesh.ShardOf(sim.NodeID(i))]
}

// noteExpansion tracks an instance's redundant work, per shard (merged after
// the run, so Unique is exact).
func (sh *mshard) noteExpansion(a *mactor, c code.Code) {
	rec := &sh.recs[a.spec.idx]
	sh.keyBuf = c.EncodeInto(sh.keyBuf)
	if rec.expanded[string(sh.keyBuf)] {
		a.met.Redundant++
		return
	}
	rec.expanded[string(sh.keyBuf)] = true
}

func (sh *mshard) noteTermination(a *mactor) {
	rec := &sh.recs[a.spec.idx]
	rec.detected++
	now := sh.k.Now()
	if rec.detected == 1 || now < rec.firstDet {
		rec.firstDet = now
	}
	if now > rec.lastDet {
		rec.lastDet = now
	}
}

// RunInstances simulates the cluster solving every cfg.Instances problem
// concurrently and returns the per-instance measurements. Each instance's
// optimum is cross-checked against its own sequential solve. Runs are
// deterministic in (cfg, seed); failure-free runs are invariant in the shard
// count. Features whose state is inherently single-instance — §5.2
// membership, tracing, elastic joins, per-link latency — are rejected.
func RunInstances(cfg Config) MultiResult {
	if len(cfg.Instances) == 0 {
		panic("dbnb: RunInstances requires at least one Instance")
	}
	if cfg.UseMembership || cfg.Trace != nil || len(cfg.Joins) > 0 ||
		cfg.LinkLatency != nil || cfg.fireHook != nil {
		panic("dbnb: RunInstances does not support UseMembership, Trace, Joins, or LinkLatency")
	}
	cfg = cfg.withDefaults()
	h := &mharness{cfg: cfg}
	h.met = metrics.NewMulti(len(cfg.Instances), cfg.Procs)

	// Sequential references first: they are both the OptimumOK cross-check
	// and the throughput baseline the experiments compare against.
	h.specs = make([]*mspec, len(cfg.Instances))
	base := cfg.NodeCost
	for i, in := range cfg.Instances {
		p := in.Problem
		ref := bnb.SolveProblem(p)
		start := in.StartTime
		if start < 0 {
			start = 0
		}
		h.specs[i] = &mspec{
			id:       protocol.InstanceID(i + 1),
			idx:      i,
			start:    start,
			seed:     in.Seed,
			seedNode: i % cfg.Procs, // spread the roots across processes
			ref:      ref,
			w: workload{
				newExpander: func() protocol.Expander { return bnb.NewExpander(p) },
				costOf:      func(it protocol.Item) float64 { return base * costJitter(it.Code) },
				trueOpt:     ref.Value,
				sizeHint:    ref.Expanded,
			},
		}
	}

	// Substrate: the same sharded mesh (or serial kernel) as single-instance
	// runs, with per-instance records on every shard.
	S := cfg.Shards
	if S < 0 {
		S = 0
	}
	if S > cfg.Procs {
		S = cfg.Procs
	}
	if S >= 1 && shardLookahead(cfg) <= 0 {
		S = 0
	}
	if S >= 1 {
		h.mesh = sim.NewMesh(cfg.Seed, S, cfg.Latency, shardLookahead(cfg))
		h.mesh.PlaceBlocks(cfg.Procs)
		h.shards = make([]*mshard, S)
		for s := 0; s < S; s++ {
			h.shards[s] = &mshard{h: h, idx: s, k: h.mesh.Kernel(s), nw: h.mesh.Net(s)}
		}
	} else {
		h.k = sim.New(cfg.Seed)
		h.shards = []*mshard{{h: h, idx: 0, k: h.k, nw: sim.NewNetwork(h.k, cfg.Latency)}}
	}
	for _, sh := range h.shards {
		sh.recs = make([]mrec, len(h.specs))
		for i, spec := range h.specs {
			sh.recs[i].expanded = make(map[string]bool, spec.w.sizeHint/len(h.shards)+1)
		}
		sh.nw.SetLoss(cfg.Loss)
		sh.nw.SetDuplicate(cfg.Duplicate)
		sh.nw.SetReorder(cfg.Reorder, cfg.ReorderWindow)
		sh.nw.SetReplay(cfg.Replay, cfg.ReplayDelay)
		for _, p := range cfg.Partitions {
			ids := make([]sim.NodeID, len(p.Group))
			for i, g := range p.Group {
				ids[i] = sim.NodeID(g)
			}
			sh.nw.AddPartition(p.Start, p.End, ids)
		}
	}

	h.ring = make([]protocol.NodeID, 2*cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		h.ring[i] = protocol.NodeID(i)
		h.ring[i+cfg.Procs] = protocol.NodeID(i)
	}

	// One mux and one actor per (process, instance); every actor activates at
	// its instance's submission time on its owner shard's clock.
	h.muxes = make([]*instance.Mux, cfg.Procs)
	h.actors = make([][]*mactor, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		id := sim.NodeID(i)
		sh := h.shardOf(i)
		h.muxes[i] = instance.NewMux()
		h.actors[i] = make([]*mactor, len(h.specs))
		for _, spec := range h.specs {
			a := newActor(id, h, sh, spec)
			h.actors[i][spec.idx] = a
			e, ok := h.muxes[i].Open(spec.id, a.core, a.exp)
			if !ok {
				panic("dbnb: duplicate instance id")
			}
			e.Data = a
			a.entry = e
			spec := spec
			sh.k.At(spec.start, func() { h.activate(a) })
		}
		h.registerMultiNode(id)
	}

	// Failure schedule: Instance 0 fails the whole process (network endpoint
	// included, like the single-instance path); Instance k > 0 fails only
	// that instance's context, leaving the process's other instances — and
	// its endpoint — untouched.
	for _, c := range cfg.Crashes {
		c := c
		if c.Node < 0 || c.Node >= cfg.Procs || c.Instance < 0 || c.Instance > len(h.specs) {
			continue
		}
		sh := h.shardOf(c.Node)
		if c.Instance == 0 {
			sh.k.At(c.Time, func() {
				sh.nw.Crash(sim.NodeID(c.Node))
				for _, a := range h.actors[c.Node] {
					a.crash()
				}
			})
			if c.Restart > c.Time {
				sh.k.At(c.Restart, func() {
					sh.nw.Restore(sim.NodeID(c.Node))
					for _, a := range h.actors[c.Node] {
						a.restart()
					}
				})
			}
			continue
		}
		a := h.actors[c.Node][c.Instance-1]
		sh.k.At(c.Time, func() { a.crash() })
		if c.Restart > c.Time {
			sh.k.At(c.Restart, func() { a.restart() })
		}
	}

	if h.mesh != nil {
		h.mesh.Run(cfg.MaxTime)
	} else {
		h.k.Run(cfg.MaxTime)
	}

	res := MultiResult{
		Terminated: true,
		Instances:  make([]InstanceResult, len(h.specs)),
		Met:        h.met,
		Shards:     len(h.shards),
	}
	if h.mesh != nil {
		res.Net = h.mesh.Stats()
		res.Events = h.mesh.Events()
	} else {
		res.Net = h.shards[0].nw.Stats()
		res.Events = h.k.Events()
		res.Shards = 0
	}
	for _, spec := range h.specs {
		ir := h.foldInstance(spec)
		res.Instances[spec.idx] = ir
		res.Terminated = res.Terminated && ir.Terminated
		if ir.Time > res.Time {
			res.Time = ir.Time
		}
	}
	return res
}

// foldInstance assembles one instance's result from its actors and the
// per-shard records.
func (h *mharness) foldInstance(spec *mspec) InstanceResult {
	ir := InstanceResult{
		ID:          spec.id,
		Start:       spec.start,
		Optimum:     math.Inf(1),
		SeqOptimum:  spec.ref.Value,
		SeqExpanded: spec.ref.Expanded,
		DetectTimes: make([]float64, h.cfg.Procs),
		Terminated:  true,
	}
	detected := 0
	for _, sh := range h.shards {
		rec := &sh.recs[spec.idx]
		if rec.detected > 0 {
			if detected == 0 || rec.firstDet < ir.FirstDetect {
				ir.FirstDetect = rec.firstDet
			}
			if rec.lastDet > ir.Time {
				ir.Time = rec.lastDet
			}
			detected += rec.detected
		}
		ir.Completions += rec.completions
	}
	if len(h.shards) == 1 {
		ir.Unique = len(h.shards[0].recs[spec.idx].expanded)
	} else {
		seen := make(map[string]bool)
		for _, sh := range h.shards {
			for k := range sh.recs[spec.idx].expanded {
				seen[k] = true
			}
		}
		ir.Unique = len(seen)
	}
	sys := h.met.At(spec.idx)
	for i := 0; i < h.cfg.Procs; i++ {
		a := h.actors[i][spec.idx]
		cnt := a.cntPrior.Merge(a.core.Counters())
		a.met.ReportsSent = cnt.ReportsSent
		a.met.ReportCodes = cnt.ReportCodes
		a.met.ReportedComps = cnt.ReportedComps
		a.met.TablesSent = cnt.TablesSent
		a.met.WorkRequests = cnt.WorkRequests
		a.met.WorkSent = cnt.WorkSent
		a.met.Recoveries = cnt.Recoveries
		a.met.PeakPool = cnt.PeakPool
		switch {
		case a.crashed:
			ir.DetectTimes[i] = math.NaN()
		case a.done:
			ir.DetectTimes[i] = a.detectedAt
			if opt := a.core.Incumbent(); opt < ir.Optimum {
				ir.Optimum = opt
			}
		default:
			ir.DetectTimes[i] = math.Inf(1)
			ir.Terminated = false
		}
		ir.Expanded += a.met.Expanded
	}
	ir.Terminated = ir.Terminated && detected > 0
	ir.Redundant = ir.Expanded - ir.Unique
	ir.OptimumOK = ir.Terminated && ir.Optimum == spec.ref.Value
	agg := sys.AggregateBreakdown()
	ir.Work = agg.Work()
	ir.Overhead = agg.Overhead()
	return ir
}

// registerMultiNode wires one process's network handler: demultiplex by
// instance, deliver to the owning actor, and answer straggler work requests
// for reaped instances from the tombstone — a root report carrying the final
// incumbent, which terminates the requester's instance too.
func (h *mharness) registerMultiNode(id sim.NodeID) {
	mux := h.muxes[id]
	sh := h.shardOf(int(id))
	sh.nw.Register(id, func(from sim.NodeID, msg sim.Message) {
		im, ok := msg.(protocol.InstMsg)
		if !ok {
			return
		}
		pm, ok := im.Msg.(protocol.Msg)
		if !ok {
			return
		}
		e, v := mux.Route(im.Instance)
		switch v {
		case instance.RouteOpen:
			e.Data.(*mactor).deliver(from, pm)
		case instance.RouteReaped:
			if _, isReq := pm.(protocol.WorkRequest); isReq {
				inc, _ := mux.Reaped(im.Instance)
				sh.nw.Send(id, from, protocol.InstMsg{Instance: im.Instance,
					Msg: protocol.Report{Codes: []code.Code{code.Root()}, Incumbent: inc}})
			}
		}
	})
}

// activate brings one actor up at its instance's submission time: fresh
// activity evidence (a process joining a just-submitted instance must not
// read its empty table as global quiescence), the root seeded at the
// designated process, staggered periodic chains, and the main loop.
func (h *mharness) activate(a *mactor) {
	a.started = true
	a.core.NoteRemoteActivity(0)
	if a.spec.seedNode == int(a.nid) {
		a.core.Seed(a.exp.Root())
	}
	jitter := a.rng.Float64()
	a.reportTimer = a.k.After(jitter*h.cfg.ReportTimeout, a.reportTickFn)
	if h.cfg.TableInterval > 0 {
		a.tableTimer = a.k.After(jitter*h.cfg.TableInterval, a.tableTickFn)
	}
	a.loop()
}
