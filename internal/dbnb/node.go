package dbnb

import (
	"math"

	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/sim"
	"gossipbnb/internal/trace"
)

// poolItem is one active problem: its code, its index in the basic tree, and
// its recorded bound.
type poolItem struct {
	c     code.Code
	idx   int32
	bound float64
}

// pool holds the active problems under either selection rule: a binary heap
// on bound for best-first, a LIFO stack for depth-first. Steal always takes
// the entry with the smallest bound (for depth-first that is the shallowest,
// largest outstanding region — the classic steal-from-the-bottom choice).
type pool struct {
	items []poolItem
	dfs   bool
}

func (p *pool) Len() int { return len(p.items) }

func (p *pool) push(it poolItem) {
	p.items = append(p.items, it)
	if p.dfs {
		return
	}
	i := len(p.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.items[parent].bound <= p.items[i].bound {
			break
		}
		p.items[i], p.items[parent] = p.items[parent], p.items[i]
		i = parent
	}
}

func (p *pool) pop() poolItem {
	if p.dfs {
		n := len(p.items) - 1
		it := p.items[n]
		p.items[n] = poolItem{}
		p.items = p.items[:n]
		return it
	}
	top := p.items[0]
	n := len(p.items) - 1
	p.items[0] = p.items[n]
	p.items[n] = poolItem{}
	p.items = p.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(p.items) && p.items[l].bound < p.items[m].bound {
			m = l
		}
		if r < len(p.items) && p.items[r].bound < p.items[m].bound {
			m = r
		}
		if m == i {
			break
		}
		p.items[i], p.items[m] = p.items[m], p.items[i]
		i = m
	}
	return top
}

// steal removes and returns the entry with the smallest bound.
func (p *pool) steal() poolItem {
	if !p.dfs {
		return p.pop()
	}
	best := 0
	for i := range p.items {
		if p.items[i].bound < p.items[best].bound {
			best = i
		}
	}
	it := p.items[best]
	p.items = append(p.items[:best], p.items[best+1:]...)
	return it
}

// inMsg is a queued incoming message (the paper's processes check pending
// messages only after finishing the current subproblem).
type inMsg struct {
	from sim.NodeID
	msg  sim.Message
}

// node is one simulated process running the algorithm of §5.
type node struct {
	id sim.NodeID
	h  *harness

	pool       pool
	table      *ctree.Table
	outbox     *ctree.Table // new locally completed subproblems, contracted
	lastReport float64
	outboxAdds int     // completions inserted into the outbox since last flush
	ewmaCost   float64 // smoothed per-subproblem execution time (adaptive reports)
	incumbent  float64

	busy       bool
	crashed    bool
	terminated bool
	detectedAt float64
	inbox      []inMsg

	reqPending   bool
	reqWaiting   bool // pacing delay between failed attempts
	reqTimer     *sim.Event
	failedReqs   int
	lastProgress float64 // last remote progress: grant, or novel report/table
	// remoteAct anchors the freshest evidence that some OTHER process was
	// computing (merged from message ages); selfBusy anchors this process's
	// own last computation. Outgoing ages use both; the recovery gate uses
	// only remote evidence — a survivor's own work must not stop it from
	// presuming its dead peers' work lost.
	remoteAct float64
	selfBusy  float64
	tableOps  int // sampling counter for storage observation

	idleStart float64 // <0 when not idle
	met       *metrics.Node
}

func newNode(id sim.NodeID, h *harness) *node {
	return &node{
		id:        id,
		h:         h,
		pool:      pool{dfs: h.cfg.Select == DepthFirst},
		table:     ctree.New(),
		outbox:    ctree.New(),
		incumbent: math.Inf(1),
		idleStart: -1,
		met:       &h.met.Nodes[id],
	}
}

// dead reports whether the node should do nothing further.
func (n *node) dead() bool { return n.crashed || n.terminated }

// activityAge returns how long ago, as far as this node knows, some process
// was actively computing. A node that is itself computing (or holds active
// problems) reports zero; otherwise the freshest of its own past activity
// and the relayed remote evidence.
func (n *node) activityAge() float64 {
	if !n.terminated && (n.busy || n.pool.Len() > 0) {
		return 0
	}
	anchor := n.selfBusy
	if n.remoteAct > anchor {
		anchor = n.remoteAct
	}
	return n.h.k.Now() - anchor
}

// noteActivity merges activity evidence from a received message.
func (n *node) noteActivity(age float64) {
	if cand := n.h.k.Now() - age; cand > n.remoteAct {
		n.remoteAct = cand
	}
}

// --- the main loop ----------------------------------------------------------

// loop is invoked whenever the node becomes free: after a work unit, after
// processing messages, after a timer. It decides the next activity.
func (n *node) loop() {
	if n.busy || n.crashed {
		return
	}
	if len(n.inbox) > 0 {
		n.drainInbox()
		return
	}
	if n.terminated {
		return
	}
	if n.table.Complete() {
		n.detectTermination()
		return
	}
	cfg := &n.h.cfg
	for n.pool.Len() > 0 {
		it := n.pool.pop()
		if n.table.Contains(it.c) {
			continue // completed elsewhere in the meantime; drop silently
		}
		if cfg.Prune && it.bound >= n.incumbent {
			// Eliminate: the problem is fathomed without expansion, which
			// completes it (nothing below it can matter).
			n.complete(it.c)
			if n.table.Complete() {
				n.detectTermination()
				return
			}
			continue
		}
		n.endIdle()
		n.expand(it)
		return
	}
	// Out of work: dynamic load balancing, then (if it keeps failing)
	// failure recovery.
	n.beginIdle()
	n.requestWork()
}

// expand pays the recorded node cost, then applies the branching outcome.
func (n *node) expand(it poolItem) {
	cost := n.h.tree.Nodes[it.idx].Cost * n.h.cfg.CostFactor
	n.busy = true
	start := n.h.k.Now()
	n.h.k.After(cost, func() {
		n.busy = false
		if n.crashed {
			return
		}
		now := n.h.k.Now()
		n.selfBusy = now
		if n.ewmaCost == 0 {
			n.ewmaCost = now - start
		} else {
			n.ewmaCost += 0.2 * ((now - start) - n.ewmaCost)
		}
		n.met.Add(metrics.BB, now-start)
		n.h.cfg.Trace.Add(int(n.id), trace.Compute, start, now)
		n.met.Expanded++
		n.h.noteExpansion(n, it.c)
		tn := &n.h.tree.Nodes[it.idx]
		if tn.Feasible && tn.Bound < n.incumbent {
			n.incumbent = tn.Bound
		}
		if tn.Leaf() {
			n.complete(it.c)
		} else {
			for b := uint8(0); b < 2; b++ {
				childIdx := tn.Children[b]
				childCode := it.c.Child(tn.BranchVar, b)
				childBound := n.h.tree.Nodes[childIdx].Bound
				if n.table.Contains(childCode) {
					continue // already completed somewhere
				}
				if n.h.cfg.Prune && childBound >= n.incumbent {
					n.complete(childCode) // eliminated at generation
					continue
				}
				n.pool.push(poolItem{c: childCode, idx: childIdx, bound: childBound})
			}
			if n.pool.Len() > n.met.PeakPool {
				n.met.PeakPool = n.pool.Len()
			}
		}
		n.loop()
	})
}

// complete records the completion of a subproblem: into the table (for
// termination detection and duplicate suppression) and into the outbox (to
// be gossiped as a work report).
func (n *node) complete(c code.Code) {
	if changed, err := n.table.Insert(c); err != nil || !changed {
		return
	}
	if changed, _ := n.outbox.Insert(c); changed {
		n.outboxAdds++
	}
	n.observeTable()
	n.h.noteCompletion(c)
	if n.outbox.Len() >= n.h.cfg.ReportBatch {
		n.sendReport()
	}
}

// --- reporting and gossip ----------------------------------------------------

// sendReport flushes the outbox as a work report to ReportFanout random
// members. Compression already happened: the outbox is a contracted table.
func (n *node) sendReport() {
	codes := n.outbox.Codes()
	if len(codes) == 0 {
		return
	}
	n.outbox = ctree.New()
	n.met.ReportedComps += n.outboxAdds
	n.outboxAdds = 0
	n.lastReport = n.h.k.Now()
	msg := msgReport{codes: codes, incumbent: n.incumbent, actAge: n.activityAge()}
	peers := n.h.view(n.id)
	if len(peers) == 0 {
		return // lone process: nothing to gossip, its own table suffices
	}
	for i := 0; i < n.h.cfg.ReportFanout; i++ {
		to := peers[n.h.k.Rand().Intn(len(peers))]
		n.h.nw.Send(n.id, to, msg)
		n.met.ReportsSent++
		n.met.ReportCodes += len(codes)
	}
	n.met.Add(metrics.Comm, n.h.cfg.CommOverhead)
}

// reportTick flushes a stale outbox ("the list has not been updated for a
// long time"). With AdaptiveReports the staleness threshold tracks how long
// this process actually needs to fill a batch — roughly ReportBatch times
// its smoothed per-subproblem time — so coarse-granularity runs stop
// shipping half-empty reports at a fixed wall-clock cadence.
func (n *node) reportTick() {
	if n.dead() {
		return
	}
	timeout := n.h.cfg.ReportTimeout
	if n.h.cfg.AdaptiveReports {
		if adaptive := float64(n.h.cfg.ReportBatch) * n.ewmaCost; adaptive > timeout {
			timeout = adaptive
		}
	}
	if n.outbox.Len() > 0 && n.h.k.Now()-n.lastReport >= timeout {
		n.sendReport()
	}
	n.h.k.After(n.h.cfg.ReportTimeout, n.reportTick)
}

// tableTick occasionally pushes the full table to one random member.
func (n *node) tableTick() {
	if n.dead() {
		return
	}
	peers := n.h.view(n.id)
	if len(peers) > 0 {
		to := peers[n.h.k.Rand().Intn(len(peers))]
		n.h.nw.Send(n.id, to, msgTable{codes: n.table.Codes(), incumbent: n.incumbent, actAge: n.activityAge()})
		n.met.TablesSent++
		n.met.Add(metrics.Comm, n.h.cfg.CommOverhead)
	}
	n.h.k.After(n.h.cfg.TableInterval, n.tableTick)
}

// --- load balancing and recovery ---------------------------------------------

// requestWork sends a work request to one random member, or falls back to
// recovery when requests keep failing (or there is nobody left to ask).
func (n *node) requestWork() {
	if n.dead() || n.reqPending || n.reqWaiting || n.pool.Len() > 0 {
		return
	}
	cfg := &n.h.cfg
	peers := n.h.view(n.id)
	if n.failedReqs >= cfg.RecoveryPatience || len(peers) == 0 {
		// Enough failed attempts to suspect lost work — but only presume
		// failure after a quiet window with no remote progress at all;
		// during start-up, starvation just means the work has not spread
		// yet, and adopting the complement of an empty table would make
		// every process redo the root.
		quiet := cfg.RecoveryQuiet * (0.75 + 0.5*n.h.k.Rand().Float64())
		fresh := n.lastProgress
		if n.remoteAct > fresh {
			fresh = n.remoteAct
		}
		if n.h.k.Now()-fresh >= quiet {
			n.recover()
			return
		}
		if len(peers) == 0 {
			// Alone and inside the quiet window: try again later.
			n.reqFailed()
			return
		}
		// Keep probing; the counter stays at the threshold.
	}
	if n.failedReqs > 0 {
		// Starving: suspect termination and push the table to a random
		// member, spreading completion information faster (§6.3.1:
		// lightly loaded processes send more work reports).
		to := peers[n.h.k.Rand().Intn(len(peers))]
		n.h.nw.Send(n.id, to, msgTable{codes: n.table.Codes(), incumbent: n.incumbent, actAge: n.activityAge()})
		n.met.TablesSent++
		n.met.Add(metrics.Comm, cfg.CommOverhead)
	}
	to := peers[n.h.k.Rand().Intn(len(peers))]
	n.h.nw.Send(n.id, to, msgWorkRequest{incumbent: n.incumbent, actAge: n.activityAge()})
	n.met.WorkRequests++
	n.met.Add(metrics.LB, cfg.CommOverhead)
	n.reqPending = true
	n.reqTimer = n.h.k.After(cfg.RequestTimeout, func() {
		if n.dead() {
			return
		}
		n.reqPending = false
		n.reqFailed()
	})
}

// reqFailed records a failed load-balancing attempt and paces the retry.
func (n *node) reqFailed() {
	n.failedReqs++
	if n.reqWaiting {
		return
	}
	n.reqWaiting = true
	n.h.k.After(n.h.cfg.RetryDelay, func() {
		n.reqWaiting = false
		if !n.dead() && !n.busy {
			n.loop()
		}
	})
}

// recover presumes some reported-nowhere work was lost and re-creates it by
// complementing the local table (§5.3.2 failure recovery). The complement
// scan is charged as contraction time.
func (n *node) recover() {
	if n.h.cfg.DisableRecovery || n.dead() {
		return
	}
	// Stay at the suspicion threshold: while the remote-evidence gate stays
	// stale the node recovers again immediately on its next starvation;
	// fresh evidence (a report, a grant, a relayed activity age) pushes it
	// back into the probing path. Only an actual work grant resets the
	// counter — this is the paper's "how soon failure is suspected" knob.
	n.failedReqs = n.h.cfg.RecoveryPatience
	comp := n.table.Complement(8)
	if len(comp) == 0 {
		n.loop() // table is complete; loop will detect termination
		return
	}
	scanCost := n.h.cfg.ContractPerCode * float64(n.table.Len()+1)
	n.busy = true
	start := n.h.k.Now()
	n.endIdle()
	n.h.k.After(scanCost, func() {
		n.busy = false
		if n.crashed {
			return
		}
		n.met.Add(metrics.Contract, scanCost)
		n.h.cfg.Trace.Add(int(n.id), trace.Recover, start, n.h.k.Now())
		// Adopt a few uncompleted regions, starting from a random one so
		// concurrent recoverers tend to pick different regions (the paper's
		// "lack of coordination" redundancy, reduced but not eliminated).
		// Adopt more when much is missing (a lone survivor rebuilding) and
		// less when little is (the end-game tail, where regions picked here
		// are probably in progress elsewhere).
		adopt := 1 + len(comp)/4
		if adopt > 4 {
			adopt = 4
		}
		if adopt > len(comp) {
			adopt = len(comp)
		}
		off := n.h.k.Rand().Intn(len(comp))
		for i := 0; i < adopt; i++ {
			c := comp[(off+i)%len(comp)]
			if idx, ok := n.h.tree.Locate(c); ok && !n.table.Contains(c) {
				n.pool.push(poolItem{c: c, idx: idx, bound: n.h.tree.Nodes[idx].Bound})
				n.met.Recoveries++
			}
		}
		n.loop()
	})
}

// --- message handling ---------------------------------------------------------

// deliver is the network handler: queue while busy, otherwise process now.
func (n *node) deliver(from sim.NodeID, msg sim.Message) {
	if n.crashed {
		return
	}
	n.inbox = append(n.inbox, inMsg{from: from, msg: msg})
	if !n.busy {
		n.loop()
	}
}

// drainInbox processes all queued messages, charging their modeled CPU cost
// as one busy period, then resumes the loop.
func (n *node) drainInbox() {
	cfg := &n.h.cfg
	commCost, contractCost := 0.0, 0.0
	for len(n.inbox) > 0 {
		m := n.inbox[0]
		n.inbox = n.inbox[1:]
		commCost += cfg.CommOverhead
		switch t := m.msg.(type) {
		case msgReport:
			n.observeIncumbent(t.incumbent)
			n.noteActivity(t.actAge)
			n.mergeCodes(t.codes)
			contractCost += cfg.ContractPerCode * float64(len(t.codes))
		case msgTable:
			n.observeIncumbent(t.incumbent)
			n.noteActivity(t.actAge)
			n.mergeCodes(t.codes)
			contractCost += cfg.ContractPerCode * float64(len(t.codes))
		case msgWorkRequest:
			n.observeIncumbent(t.incumbent)
			n.noteActivity(t.actAge)
			n.handleWorkRequest(m.from)
		case msgWorkGrant:
			n.observeIncumbent(t.incumbent)
			n.noteActivity(t.actAge)
			n.handleGrant(t)
		case msgWorkDeny:
			n.observeIncumbent(t.incumbent)
			n.noteActivity(t.actAge)
			if n.reqPending {
				n.reqPending = false
				n.reqTimer.Cancel()
				n.reqFailed()
			}
		}
	}
	total := commCost + contractCost
	n.busy = true
	start := n.h.k.Now()
	n.endIdle()
	n.h.k.After(total, func() {
		n.busy = false
		if n.crashed {
			return
		}
		n.met.Add(metrics.Comm, commCost)
		n.met.Add(metrics.Contract, contractCost)
		now := n.h.k.Now()
		if contractCost > 0 {
			n.h.cfg.Trace.Add(int(n.id), trace.Contract, start+commCost, now)
		}
		if commCost > 0 {
			n.h.cfg.Trace.Add(int(n.id), trace.Comm, start, start+commCost)
		}
		n.loop()
	})
}

// mergeCodes stores a received report in the table and contracts it. Novel
// information counts as remote progress for the recovery quiet window.
func (n *node) mergeCodes(cs []code.Code) {
	changed, _ := n.table.InsertAll(cs)
	if changed > 0 {
		n.lastProgress = n.h.k.Now()
	}
	n.observeTable()
}

// observeTable samples the table's wire size for storage accounting.
// Computing the exact size on every mutation would cost O(table) each time,
// so it is sampled every 32 mutations (and at termination).
func (n *node) observeTable() {
	n.tableOps++
	if n.tableOps%32 == 0 {
		n.met.ObserveTable(n.table.WireSize())
	}
}

// observeIncumbent merges a piggybacked best-known solution.
func (n *node) observeIncumbent(v float64) {
	if v < n.incumbent {
		n.incumbent = v
	}
}

// handleWorkRequest grants half the pool (up to MaxShare) if the node has
// enough problems, else denies. A terminated node answers with the root
// report so the requester can terminate too.
func (n *node) handleWorkRequest(from sim.NodeID) {
	cfg := &n.h.cfg
	if n.terminated {
		n.h.nw.Send(n.id, from, msgReport{codes: []code.Code{code.Root()}, incumbent: n.incumbent, actAge: n.activityAge()})
		return
	}
	if n.pool.Len() < cfg.MinPoolToShare {
		n.h.nw.Send(n.id, from, msgWorkDeny{incumbent: n.incumbent, actAge: n.activityAge()})
		return
	}
	k := n.pool.Len() / 2
	if k > cfg.MaxShare {
		k = cfg.MaxShare
	}
	codes := make([]code.Code, 0, k)
	for i := 0; i < k; i++ {
		it := n.pool.steal()
		codes = append(codes, it.c)
	}
	n.h.nw.Send(n.id, from, msgWorkGrant{codes: codes, incumbent: n.incumbent, actAge: n.activityAge()})
	n.met.WorkSent += len(codes)
	n.met.Add(metrics.LB, cfg.CommOverhead)
}

// handleGrant adopts transferred problems.
func (n *node) handleGrant(g msgWorkGrant) {
	if n.reqPending {
		n.reqPending = false
		n.reqTimer.Cancel()
	}
	got := 0
	for _, c := range g.codes {
		idx, ok := n.h.tree.Locate(c)
		if !ok || n.table.Contains(c) {
			continue
		}
		n.pool.push(poolItem{c: c, idx: idx, bound: n.h.tree.Nodes[idx].Bound})
		got++
	}
	if n.pool.Len() > n.met.PeakPool {
		n.met.PeakPool = n.pool.Len()
	}
	if got > 0 {
		n.failedReqs = 0
		n.lastProgress = n.h.k.Now()
	} else {
		n.reqFailed()
	}
	n.met.Add(metrics.LB, n.h.cfg.CommOverhead*float64(1+len(g.codes)/8))
}

// --- termination ---------------------------------------------------------------

// detectTermination fires when contraction reached the root code (§5.4):
// the node broadcasts one final root report to every member it knows of,
// then stops.
func (n *node) detectTermination() {
	n.terminated = true
	n.detectedAt = n.h.k.Now()
	n.endIdle()
	n.met.ObserveTable(n.table.WireSize())
	if n.reqTimer != nil {
		n.reqTimer.Cancel()
	}
	msg := msgReport{codes: []code.Code{code.Root()}, incumbent: n.incumbent, actAge: n.activityAge()}
	for _, p := range n.h.view(n.id) {
		n.h.nw.Send(n.id, p, msg)
	}
	n.h.noteTermination(n)
}

// --- idle accounting -----------------------------------------------------------

func (n *node) beginIdle() {
	if n.idleStart < 0 {
		n.idleStart = n.h.k.Now()
	}
}

func (n *node) endIdle() {
	if n.idleStart >= 0 {
		now := n.h.k.Now()
		n.met.Add(metrics.Idle, now-n.idleStart)
		n.h.cfg.Trace.Add(int(n.id), trace.Idle, n.idleStart, now)
		n.idleStart = -1
	}
}

// crash halts the node (crash-stop).
func (n *node) crash() {
	n.endIdle()
	n.crashed = true
	n.inbox = nil
	if n.reqTimer != nil {
		n.reqTimer.Cancel()
	}
}
