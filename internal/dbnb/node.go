package dbnb

import (
	"math/rand"

	"gossipbnb/internal/code"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/protocol"
	"gossipbnb/internal/sim"
	"gossipbnb/internal/trace"
)

// inMsg is a queued incoming message (the paper's processes check pending
// messages only after finishing the current subproblem). at is the virtual
// arrival time — the sort key that makes sharded batch handling canonical.
type inMsg struct {
	from sim.NodeID
	at   float64
	msg  protocol.Msg
}

// node drives one protocol.Core under the virtual-time simulator. The split
// of responsibilities is strict: every protocol decision — what to expand,
// when to report, whom to probe, when to presume work lost — lives in the
// shared core; the node owns only what the simulated substrate defines:
// busy periods charged via the kernel, timers, modeled CPU costs, metrics
// and trace accounting, idle spans, and crash delivery.
type node struct {
	id   sim.NodeID
	h    *harness
	sh   *shardCtx   // owner shard: the kernel/network/accounting this node lives on
	k    *sim.Kernel // == sh.k, the node's scheduling clock
	core *protocol.Core
	exp  protocol.Expander // this process's own code resolver

	// rng drives every stochastic choice this process makes (timer stagger,
	// report fanout targets, recovery jitter). Legacy mode aliases the
	// single kernel's global stream — the pre-sharding draw order, byte for
	// byte. Sharded mode derives an independent stream from (seed, id), so
	// a process's decisions do not depend on how processes are sharded —
	// the root of the shard-count invariance property.
	rng *rand.Rand

	busy       bool
	crashed    bool
	done       bool // observed the core's termination detection
	detectedAt float64
	inbox      []inMsg
	// wake marks a pending same-time wake event (sharded mode). Deliveries
	// there never process the inbox directly: the first arrival at a virtual
	// instant schedules a wake at that same instant, which — because every
	// simultaneous delivery is already in the kernel queue by then (the
	// latency floor is at least the mesh lookahead) — fires after the WHOLE
	// same-time batch has landed, so the batch can be handled in canonical
	// order no matter which shards the senders ran on.
	wake bool

	// incarn is the crash-restart incarnation: every busy-period and pacing
	// callback captures it at schedule time and aborts if the node has been
	// reborn since — a pre-crash expansion finishing after the restart must
	// not leak the dead incarnation's state into the fresh core.
	incarn    int
	crashedAt float64
	// cntPrior accumulates dead incarnations' protocol counters, so the
	// experiment tables count messages a crashed process really sent.
	cntPrior protocol.Counters

	reqWaiting bool // pacing delay between failed load-balancing attempts
	reqTimer   sim.Event
	// reportTimer and tableTimer are the pending periodic ticks, cancelled at
	// crash so a restart can restagger fresh chains without doubling them.
	reportTimer sim.Event
	tableTimer  sim.Event

	// Pre-bound callbacks, created once per node: scheduling through them
	// (plus AfterArg's incarnation argument) costs zero allocations per
	// event, where a per-schedule closure or method value would allocate.
	// The busy-period callbacks read their inputs from the pend* fields
	// below — safe because the busy flag admits at most one outstanding
	// busy period per incarnation, and a stale fire from a dead incarnation
	// bails on the incarnation check before touching them.
	reportTickFn  func()
	tableTickFn   func()
	wakeFn        func()
	expandDoneFn  func(int)
	drainDoneFn   func(int)
	recoverDoneFn func(int)
	paceDoneFn    func(int)
	reqTimeoutFn  func(int)

	pendItem     protocol.Item // expansion in flight
	pendStart    float64       // busy-period start (expand/drain/recover)
	pendComm     float64       // drain: modeled communication cost
	pendContract float64       // drain: modeled contraction cost
	pendPlan     []code.Code   // recovery plan awaiting adoption

	tableOps  int     // sampling counter for storage observation
	idleStart float64 // <0 when not idle
	met       *metrics.Node

	// peersCache is the cached membership view (every process but this one).
	// Without joins the view never changes and this is built once —
	// rebuilding it on every core decision is O(procs), ruinous at the
	// 1000-process stress tier. Elastic runs rebuild it only when the
	// scheduled member count moves past a join epoch; viewSize is the epoch
	// (member count) the cache was built for, 0 = unbuilt.
	peersCache []protocol.NodeID
	viewSize   int

	// bootTimer is a late joiner's pending bootstrap pull (cancelled at
	// crash like the periodic chains).
	bootTimer  sim.Event
	bootTickFn func()
}

// nodeSender transmits the core's canonical messages over the simulated
// network, charging each send's modeled CPU overhead to the activity it
// serves. Event counts (reports, tables, requests, work sent) are NOT
// tallied here — the core counts them at protocol level (so e.g. the
// termination broadcast is not a "work report" in the experiment tables)
// and Run folds them into the metrics.
type nodeSender struct{ n *node }

func (s nodeSender) Send(to protocol.NodeID, m protocol.Msg) {
	n := s.n
	n.sh.nw.Send(n.id, sim.NodeID(to), m)
	over := n.h.cfg.CommOverhead
	switch m.(type) {
	case protocol.Report, protocol.TableMsg,
		protocol.DigestReport, protocol.SubtreeRequest, protocol.SubtreeReply:
		n.met.Add(metrics.Comm, over)
	case protocol.WorkRequest, protocol.WorkGrant, protocol.WorkDeny:
		n.met.Add(metrics.LB, over)
	}
}

// Broadcast implements protocol.BroadcastSender for the termination
// broadcast of §5.4. The legacy path loops Send — exactly what the core
// would do with a plain Sender. Sharded runs route the fan-out through the
// mesh's ring-range group path: the static peer view IS the ring minus the
// sender, so the procs² broadcast collapses to one group delivery per
// destination shard instead of procs² pending events.
func (s nodeSender) Broadcast(peers []protocol.NodeID, m protocol.Msg) {
	n := s.n
	if n.sh.legacy || n.h.elastic {
		// Legacy path, and elastic views on any kernel: the ring-range fast
		// path below walks a window of the full static ring, which is wrong
		// the moment the live member set is a prefix of the identity space.
		for _, p := range peers {
			s.Send(p, m)
		}
		return
	}
	n.sh.nw.BroadcastRange(n.id, int(n.id)+1, len(peers), m)
	over := n.h.cfg.CommOverhead * float64(len(peers))
	switch m.(type) {
	case protocol.Report, protocol.TableMsg:
		n.met.Add(metrics.Comm, over)
	default:
		n.met.Add(metrics.LB, over)
	}
}

func newNode(id sim.NodeID, h *harness, sh *shardCtx) *node {
	n := &node{id: id, h: h, sh: sh, k: sh.k, exp: h.w.newExpander(), idleStart: -1, met: &h.met.Nodes[id]}
	if sh.legacy {
		n.rng = sh.k.Rand()
	} else {
		n.rng = rand.New(rand.NewSource(sim.DeriveSeed(h.cfg.Seed, int(id))))
		if !h.elastic {
			// The static peer view is a window into the shared doubled ring:
			// every process but this one, O(1) extra memory per node where
			// the legacy per-node cache is O(procs). Elastic views are
			// epoch-built lazily instead — the window arithmetic assumes
			// full membership.
			n.peersCache = h.ring[int(id)+1 : int(id)+h.cfg.Procs]
		}
	}
	n.reportTickFn = n.reportTick
	n.tableTickFn = n.tableTick
	n.bootTickFn = n.bootstrapTick
	n.wakeFn = n.wakeup
	n.expandDoneFn = n.expandDone
	n.drainDoneFn = n.drainDone
	n.recoverDoneFn = n.recoverDone
	n.paceDoneFn = n.paceDone
	n.reqTimeoutFn = n.reqTimeout
	n.initCore()
	return n
}

// initCore builds a fresh protocol core over the node's current expander —
// at construction and again at every crash-restart (a rebooted process keeps
// nothing but its identity and the initial problem data).
func (n *node) initCore() {
	h := n.h
	cfg := &h.cfg
	n.core = protocol.New(protocol.NodeID(n.id), protocol.Config{
		Select:           cfg.Select,
		Prune:            cfg.Prune,
		ReportBatch:      cfg.ReportBatch,
		ReportFanout:     cfg.ReportFanout,
		ReportTimeout:    cfg.ReportTimeout,
		AdaptiveReports:  cfg.AdaptiveReports,
		MinPoolToShare:   cfg.MinPoolToShare,
		MaxShare:         cfg.MaxShare,
		RecoveryPatience: cfg.RecoveryPatience,
		RecoveryQuiet:    cfg.RecoveryQuiet,
		DisableRecovery:  cfg.DisableRecovery,
		DiffGossip:       cfg.DiffGossip,
	}, protocol.Deps{
		Clock:         n.k,
		Sender:        nodeSender{n},
		Expander:      n.exp,
		Peers:         n.peerView,
		Rand:          func(m int) int { return n.rng.Intn(m) },
		RandFloat:     func() float64 { return n.rng.Float64() },
		OnComplete:    n.sh.noteCompletion,
		OnTableChange: n.observeTable,
	})
}

// peerView adapts the harness's membership view to protocol identifiers. The
// core reads the returned slice without retaining or mutating it, so the
// static (no-membership) view is cached: legacy mode builds the original
// ascending-order per-node cache lazily (bit-identical runs); sharded mode
// pre-assigned a window of the shared ring at construction.
func (n *node) peerView() []protocol.NodeID {
	if !n.h.cfg.UseMembership {
		if n.h.elastic {
			// Predetermined elastic pool: the view is every process scheduled
			// to exist at this node's current clock. The cache is rebuilt
			// only when the clock crosses a join epoch, so between epochs the
			// view read stays O(1) and allocation-free.
			if m := n.h.memberCountAt(n.k.Now()); m != n.viewSize {
				n.peersCache = n.peersCache[:0]
				for i := 0; i < m; i++ {
					if sim.NodeID(i) != n.id {
						n.peersCache = append(n.peersCache, protocol.NodeID(i))
					}
				}
				n.viewSize = m
			}
			return n.peersCache
		}
		if n.peersCache == nil {
			n.peersCache = make([]protocol.NodeID, 0, len(n.h.nodes)-1)
			for i := range n.h.nodes {
				if sim.NodeID(i) != n.id {
					n.peersCache = append(n.peersCache, protocol.NodeID(i))
				}
			}
		}
		return n.peersCache
	}
	peers := n.h.view(n.id)
	out := make([]protocol.NodeID, len(peers))
	for i, p := range peers {
		out[i] = protocol.NodeID(p)
	}
	return out
}

// dead reports whether the node should do nothing further.
func (n *node) dead() bool { return n.crashed || n.done }

// --- the main loop ----------------------------------------------------------

// loop is invoked whenever the node becomes free: after a work unit, after
// processing messages, after a timer. The core decides the next activity;
// the loop charges its cost.
func (n *node) loop() {
	if n.busy || n.crashed {
		return
	}
	if len(n.inbox) > 0 {
		n.drainInbox()
		return
	}
	if n.done {
		return
	}
	it, st := n.core.Next()
	switch st {
	case protocol.Expand:
		n.endIdle()
		n.expand(it)
	case protocol.Terminated:
		n.onTerminated()
	case protocol.Starved:
		// Out of work: dynamic load balancing, then (if it keeps failing)
		// failure recovery.
		n.beginIdle()
		n.requestWork()
	}
}

// expand pays the workload's modeled node cost, then reports the branching
// outcome the expander computes to the core. The in-flight item rides in
// pendItem/pendStart rather than a capture closure — the busy flag admits
// only one expansion per incarnation, and expandDone discards stale fires
// from dead incarnations before reading them.
func (n *node) expand(it protocol.Item) {
	cost := n.h.w.costOf(it) * n.h.cfg.CostFactor
	n.busy = true
	n.pendItem = it
	n.pendStart = n.k.Now()
	n.k.AfterArg(cost, n.expandDoneFn, n.incarn)
}

func (n *node) expandDone(gen int) {
	if n.incarn != gen {
		return // the node was reborn; this expansion died with its incarnation
	}
	n.busy = false
	if n.crashed {
		return
	}
	it, start := n.pendItem, n.pendStart
	now := n.k.Now()
	n.met.Add(metrics.BB, now-start)
	n.h.cfg.Trace.Add(int(n.id), trace.Compute, start, now)
	n.met.Expanded++
	n.sh.noteExpansion(n, it.Code)
	n.core.OnExpanded(it, n.exp.Outcome(it), now-start)
	n.loop()
}

// --- reporting timers ---------------------------------------------------------

// reportTick flushes a stale outbox on the core's (possibly adaptive)
// schedule. The pending event handle is kept so crash can cancel the chain;
// a restart starts a freshly staggered one.
func (n *node) reportTick() {
	if n.dead() {
		return
	}
	if n.core.ReportOverdue() {
		n.core.FlushReport()
	}
	n.reportTimer = n.k.After(n.h.cfg.ReportTimeout, n.reportTickFn)
}

// tableTick occasionally pushes the full table to one random member.
func (n *node) tableTick() {
	if n.dead() {
		return
	}
	peers := n.peerView()
	if len(peers) > 0 {
		n.core.SendTable(peers[n.rng.Intn(len(peers))])
	}
	n.tableTimer = n.k.After(n.h.cfg.TableInterval, n.tableTickFn)
}

// bootstrapTick is a late joiner's table-bootstrap chain: while the joiner
// still knows nothing, pull a neighbor's whole completion table through the
// Full-root subtree transfer (the crash-restart rejoin payload), retrying on
// the request-timeout cadence until a reply lands — replies can be lost, and
// under §5.2 membership the first ticks may find the view still empty. The
// chain stops at the first completion learned (after that, ordinary gossip
// converges the table) and never runs for initial processes, so scheduled
// runs without joins are untouched.
func (n *node) bootstrapTick() {
	if n.dead() || n.core.Table().Len() > 0 {
		return
	}
	if peers := n.peerView(); len(peers) > 0 {
		n.core.Bootstrap(peers[n.rng.Intn(len(peers))])
	} else if n.h.cfg.UseMembership && n.id != 0 {
		// View not absorbed yet: pull from the gossip server, the one
		// address a joiner knows before the group knows it. The reply also
		// carries fresh activity evidence, keeping the empty-view joiner
		// from misreading gossip lag as global quiescence.
		n.core.Bootstrap(0)
	}
	n.bootTimer = n.k.After(n.h.cfg.RequestTimeout, n.bootTickFn)
}

// --- load balancing and recovery ---------------------------------------------

// requestWork lets the core run its starvation decision, then arranges the
// substrate side: a timeout for the probe, a pacing delay, or the recovery
// busy period.
func (n *node) requestWork() {
	if n.dead() || n.reqWaiting || n.busy {
		return
	}
	switch n.core.Starve() {
	case protocol.StarveRequested:
		n.reqTimer = n.k.AfterArg(n.h.cfg.RequestTimeout, n.reqTimeoutFn, n.incarn)
	case protocol.StarveRecover:
		n.recover()
	case protocol.StarveWait:
		if !n.core.RequestPending() {
			// Alone inside the quiet window: try again later. (With a
			// request outstanding its timer revives us instead.)
			n.paceRetry()
		}
	}
}

// reqTimeout fires when a work-request answer is overdue; gen is the
// incarnation that issued the request.
func (n *node) reqTimeout(gen int) {
	if n.incarn != gen || n.dead() {
		return
	}
	n.core.RequestFailed()
	n.paceRetry()
}

// paceRetry spaces failed load-balancing attempts RetryDelay apart.
func (n *node) paceRetry() {
	if n.reqWaiting {
		return
	}
	n.reqWaiting = true
	n.k.AfterArg(n.h.cfg.RetryDelay, n.paceDoneFn, n.incarn)
}

func (n *node) paceDone(gen int) {
	if n.incarn != gen {
		return
	}
	n.reqWaiting = false
	if !n.dead() && !n.busy {
		n.loop()
	}
}

// recover charges the table-complement scan as contraction time, then lets
// the core adopt the planned regions (§5.3.2 failure recovery).
func (n *node) recover() {
	if n.h.cfg.DisableRecovery || n.dead() {
		return
	}
	plan := n.core.PlanRecovery()
	if len(plan) == 0 {
		n.loop() // table is complete; loop will detect termination
		return
	}
	scanCost := n.h.cfg.ContractPerCode * float64(n.core.Table().Len()+1)
	n.busy = true
	n.pendPlan = plan
	n.pendStart = n.k.Now()
	n.pendContract = scanCost
	n.endIdle()
	n.k.AfterArg(scanCost, n.recoverDoneFn, n.incarn)
}

func (n *node) recoverDone(gen int) {
	if n.incarn != gen {
		return
	}
	n.busy = false
	if n.crashed {
		return
	}
	plan, start := n.pendPlan, n.pendStart
	n.pendPlan = nil
	n.met.Add(metrics.Contract, n.pendContract)
	n.h.cfg.Trace.Add(int(n.id), trace.Recover, start, n.k.Now())
	n.core.Adopt(plan)
	n.loop()
}

// --- message handling ---------------------------------------------------------

// deliver is the network handler: queue while busy, otherwise process now.
func (n *node) deliver(from sim.NodeID, msg sim.Message) {
	if n.crashed {
		return
	}
	pm, ok := msg.(protocol.Msg)
	if !ok {
		return
	}
	if n.done && !n.sh.legacy {
		// Fast drop at terminated processes (sharded mode): a done node's
		// table is complete, so reports, tables and grants teach it nothing
		// — their merges would all be no-ops — and denials answer requests
		// it no longer has outstanding. Only a WorkRequest still matters: a
		// straggler probing for work needs the root-report answer that tells
		// it the computation is over. This turns the tail of the procs²
		// termination storm from procs² full message handlings into procs²
		// type switches. The legacy path keeps the original handling (the
		// busy-period accounting differs, and legacy runs are pinned
		// bit-identical by the golden tests).
		if _, isReq := pm.(protocol.WorkRequest); !isReq {
			return
		}
	}
	n.inbox = append(n.inbox, inMsg{from: from, at: n.k.Now(), msg: pm})
	if n.sh.legacy {
		if !n.busy {
			n.loop()
		}
		return
	}
	// Sharded mode: defer processing to a wake event at this same virtual
	// instant. Every other delivery at this time is already in the kernel
	// queue (anything a shard fires now can only produce arrivals at least
	// one lookahead in the future, and earlier cross-shard mail was drained
	// at the last barrier), so the wake fires after the full same-time
	// batch — which drainInbox then orders canonically. Processing on the
	// first arrival instead would replay the kernel's tie order, which
	// depends on the shard count.
	if !n.busy && !n.wake {
		n.wake = true
		n.k.After(0, n.wakeFn)
	}
}

// wakeup resumes the loop after the same-time delivery batch has landed.
func (n *node) wakeup() {
	n.wake = false
	if n.busy || n.crashed {
		return
	}
	n.loop()
}

// drainInbox feeds all queued messages to the core, charging their modeled
// CPU cost as one busy period, then resumes the loop.
func (n *node) drainInbox() {
	cfg := &n.h.cfg
	if !n.sh.legacy && len(n.inbox) > 1 {
		// Canonical batch order: (arrival time, sender), stable. Arrival
		// times and per-sender send order are invariant in the shard count;
		// the raw append order is not — it follows kernel tie-breaking,
		// which differs once simultaneous senders live on different shards.
		// The batch is nearly sorted (time-ordered except same-time groups),
		// so a stable insertion sort runs in ~O(n) with zero allocations.
		for i := 1; i < len(n.inbox); i++ {
			m := n.inbox[i]
			j := i - 1
			for j >= 0 && (n.inbox[j].at > m.at || (n.inbox[j].at == m.at && n.inbox[j].from > m.from)) {
				n.inbox[j+1] = n.inbox[j]
				j--
			}
			n.inbox[j+1] = m
		}
	}
	commCost, contractCost, lbCost := 0.0, 0.0, 0.0
	// Handling a message never delivers another one synchronously (sends go
	// through the kernel), so the batch is fixed at entry: walk it by index
	// and reset, reusing the backing array. The previous head-slicing
	// (inbox = inbox[1:]) re-allocated and memmoved the queue constantly —
	// the single largest CPU sink in the 1000-process stress profile.
	for i := 0; i < len(n.inbox); i++ {
		m := n.inbox[i]
		commCost += cfg.CommOverhead
		switch t := m.msg.(type) {
		case protocol.Report:
			contractCost += cfg.ContractPerCode * float64(len(t.Codes))
		case protocol.TableMsg:
			contractCost += cfg.ContractPerCode * float64(len(t.Codes))
		case protocol.DigestReport:
			// Merging the delta plus one digest comparison.
			contractCost += cfg.ContractPerCode * float64(len(t.Codes)+1)
		case protocol.SubtreeRequest:
			// One trie descent to the requested prefix.
			contractCost += cfg.ContractPerCode
		case protocol.SubtreeReply:
			// Merging the pulled subtree frontier (branch replies have no
			// codes and cost the single digest comparison).
			contractCost += cfg.ContractPerCode * float64(len(t.Rel)+1)
		case protocol.WorkGrant:
			lbCost += cfg.CommOverhead * float64(1+len(t.Codes)/8)
		}
		eff := n.core.HandleMessage(protocol.NodeID(m.from), m.msg)
		if eff.Answered {
			n.reqTimer.Cancel()
		}
		if eff.Failed {
			n.paceRetry()
		}
	}
	n.inbox = n.inbox[:0]
	n.met.Add(metrics.LB, lbCost)
	n.busy = true
	n.pendStart = n.k.Now()
	n.pendComm = commCost
	n.pendContract = contractCost
	n.endIdle()
	n.k.AfterArg(commCost+contractCost, n.drainDoneFn, n.incarn)
}

func (n *node) drainDone(gen int) {
	if n.incarn != gen {
		return
	}
	n.busy = false
	if n.crashed {
		return
	}
	commCost, contractCost, start := n.pendComm, n.pendContract, n.pendStart
	n.met.Add(metrics.Comm, commCost)
	n.met.Add(metrics.Contract, contractCost)
	now := n.k.Now()
	if contractCost > 0 {
		n.h.cfg.Trace.Add(int(n.id), trace.Contract, start+commCost, now)
	}
	if commCost > 0 {
		n.h.cfg.Trace.Add(int(n.id), trace.Comm, start, start+commCost)
	}
	n.loop()
}

// observeTable samples the table's wire size for storage accounting.
// Computing the exact size on every mutation would cost O(table) each time,
// so it is sampled every 32 mutations (and at termination).
func (n *node) observeTable() {
	n.tableOps++
	if n.tableOps%32 == 0 {
		n.met.ObserveTable(n.core.Table().WireSize())
	}
}

// --- termination ---------------------------------------------------------------

// onTerminated records the core's termination detection (§5.4): the core
// already broadcast the final root report; the driver settles the books.
func (n *node) onTerminated() {
	n.done = true
	n.detectedAt = n.k.Now()
	n.endIdle()
	n.met.ObserveTable(n.core.Table().WireSize())
	n.reqTimer.Cancel()
	n.sh.noteTermination(n)
}

// --- idle accounting -----------------------------------------------------------

func (n *node) beginIdle() {
	if n.idleStart < 0 {
		n.idleStart = n.k.Now()
	}
}

func (n *node) endIdle() {
	if n.idleStart >= 0 {
		now := n.k.Now()
		n.met.Add(metrics.Idle, now-n.idleStart)
		n.h.cfg.Trace.Add(int(n.id), trace.Idle, n.idleStart, now)
		n.idleStart = -1
	}
}

// crash halts the node (crash-stop; a scheduled Restart turns it into
// crash-restart). Every pending timer chain is cancelled so a later rebirth
// can start fresh ones without doubling them.
func (n *node) crash() {
	n.endIdle()
	n.crashed = true
	n.crashedAt = n.k.Now()
	n.inbox = nil
	n.reqTimer.Cancel()
	n.reportTimer.Cancel()
	n.tableTimer.Cancel()
	n.bootTimer.Cancel()
}

// restart reboots a crashed node under its old identity (§5.2 rejoin): an
// empty table, an empty pool, a fresh expander over the initial data, and
// nothing else — the process rebuilds purely from the reports, tables, and
// grants it receives. The incarnation counter orphans every callback the
// dead incarnation left behind.
func (n *node) restart() {
	if !n.crashed || n.done {
		// Never crashed: nothing to do. Crashed after terminating: the
		// process already played its part in §5.4 — rebooting it would
		// re-enter a finished computation; it stays down and is counted
		// crashed like any post-termination failure.
		return
	}
	n.h.cfg.Trace.Add(int(n.id), trace.Dead, n.crashedAt, n.k.Now())
	n.cntPrior = n.cntPrior.Merge(n.core.Counters())
	n.incarn++
	n.crashed = false
	n.busy = false
	n.reqWaiting = false
	n.inbox = nil
	n.idleStart = -1
	n.tableOps = 0
	n.exp = n.h.w.newExpander()
	n.initCore()
	if n.h.cfg.UseMembership {
		// Rejoin the group through the §5.2 membership path: a brand-new
		// member announces itself to the gossip servers and rebuilds its
		// view from their gossip, exactly like a first join.
		n.h.rejoinMember(n.id)
	}
	// Restagger the periodic chains like at boot and resume the main loop.
	jitter := n.rng.Float64()
	n.reportTimer = n.k.After(jitter*n.h.cfg.ReportTimeout, n.reportTickFn)
	if n.h.cfg.TableInterval > 0 {
		n.tableTimer = n.k.After(jitter*n.h.cfg.TableInterval, n.tableTickFn)
	}
	n.loop()
}
