package dbnb

import (
	"math"
	"math/rand"
	"testing"

	"gossipbnb/internal/bnb"
)

// fourInstances is the canonical concurrent workload: four staggered
// knapsacks of different sizes and seeds.
func fourInstances() []Instance {
	return []Instance{
		{Problem: bnb.RandomKnapsack(rand.New(rand.NewSource(21)), 12), Seed: 1, StartTime: 0},
		{Problem: bnb.RandomKnapsack(rand.New(rand.NewSource(22)), 14), Seed: 2, StartTime: 5},
		{Problem: bnb.RandomKnapsack(rand.New(rand.NewSource(23)), 13), Seed: 3, StartTime: 10},
		{Problem: bnb.RandomKnapsack(rand.New(rand.NewSource(24)), 12), Seed: 4, StartTime: 15},
	}
}

func TestMultiInstanceConcurrentOptima(t *testing.T) {
	res := RunInstances(Config{
		Procs:     8,
		Seed:      7,
		Prune:     true,
		Select:    DepthFirst,
		Instances: fourInstances(),
	})
	if !res.Terminated {
		t.Fatal("not all instances terminated")
	}
	if len(res.Instances) != 4 {
		t.Fatalf("got %d instance results", len(res.Instances))
	}
	for _, ir := range res.Instances {
		if !ir.OptimumOK {
			t.Errorf("instance %d: optimum %g, sequential %g", ir.ID, ir.Optimum, ir.SeqOptimum)
		}
		if ir.Expanded < ir.Unique || ir.Unique == 0 {
			t.Errorf("instance %d: expanded %d < unique %d", ir.ID, ir.Expanded, ir.Unique)
		}
		if ir.Time < ir.Start {
			t.Errorf("instance %d finished at %g before its start %g", ir.ID, ir.Time, ir.Start)
		}
		if ir.Work <= 0 {
			t.Errorf("instance %d: no work recorded", ir.ID)
		}
	}
	// The instance metrics dimension must attribute expansions per tenant.
	for i, ir := range res.Instances {
		sum := 0
		for _, n := range res.Met.At(i).Nodes {
			sum += n.Expanded
		}
		if sum != ir.Expanded {
			t.Errorf("instance %d: metrics expansions %d != result %d", ir.ID, sum, ir.Expanded)
		}
	}
	// Staggered starts really overlap: a later instance must detect after an
	// earlier one starts solving (otherwise this test is k sequential runs).
	if res.Instances[1].FirstDetect <= res.Instances[1].Start {
		t.Errorf("instance 2 finished before it started: %g", res.Instances[1].FirstDetect)
	}
}

// TestMultiInstanceDeterminism pins (cfg, seed) determinism of the full
// per-instance result set.
func TestMultiInstanceDeterminism(t *testing.T) {
	cfg := Config{Procs: 6, Seed: 11, Prune: true, Select: DepthFirst, Instances: fourInstances()[:2]}
	a := RunInstances(cfg)
	b := RunInstances(cfg)
	for i := range a.Instances {
		if a.Instances[i].Time != b.Instances[i].Time ||
			a.Instances[i].Expanded != b.Instances[i].Expanded ||
			a.Instances[i].Optimum != b.Instances[i].Optimum {
			t.Fatalf("instance %d not deterministic:\n a=%+v\n b=%+v", i+1, a.Instances[i], b.Instances[i])
		}
	}
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
}

// TestMultiInstanceShardInvariance: the same run on 1, 2, and 4 shards must
// produce identical per-instance trajectories (detection times, expansion
// counts, optima) — the multi driver uses the same wake + canonical batch
// discipline as the single-instance sharded path.
func TestMultiInstanceShardInvariance(t *testing.T) {
	base := Config{Procs: 8, Seed: 13, Prune: true, Select: DepthFirst, Instances: fourInstances()[:3]}
	ref := RunInstances(withShardsM(base, 1))
	for _, s := range []int{2, 4} {
		got := RunInstances(withShardsM(base, s))
		for i := range ref.Instances {
			r, g := ref.Instances[i], got.Instances[i]
			if r.Time != g.Time || r.Expanded != g.Expanded || r.Optimum != g.Optimum || r.Unique != g.Unique {
				t.Errorf("shards=%d instance %d diverged:\n ref=%+v\n got=%+v", s, i+1, r, g)
			}
		}
	}
}

func withShardsM(c Config, s int) Config {
	c.Shards = s
	return c
}

// TestMultiInstanceChaosIsolation is the chaos-tier isolation guarantee: one
// instance's processes crash (and restart) while another instance must be
// byte-for-byte unaffected — same optimum, same expansion counts, same
// termination time — because instance contexts share nothing but the
// (deterministic-latency) network.
func TestMultiInstanceChaosIsolation(t *testing.T) {
	insts := fourInstances()[:2]
	base := Config{Procs: 6, Seed: 17, Prune: true, Select: DepthFirst, Instances: insts}

	quiet := RunInstances(base)
	if !quiet.Terminated {
		t.Fatal("quiet run did not terminate")
	}

	// Crash instance 1's context on three processes mid-solve; restart one.
	chaos := base
	chaos.Crashes = []Crash{
		{Time: 2, Node: 1, Instance: 1},
		{Time: 3, Node: 2, Instance: 1, Restart: 9},
		{Time: 4, Node: 4, Instance: 1},
	}
	hit := RunInstances(chaos)

	// Instance 1 must still solve correctly despite its failures.
	if !hit.Instances[0].Terminated || !hit.Instances[0].OptimumOK {
		t.Fatalf("crashed instance did not recover: %+v", hit.Instances[0])
	}
	// Instance 2 must be exactly unaffected.
	q, h := quiet.Instances[1], hit.Instances[1]
	if q.Optimum != h.Optimum {
		t.Errorf("bystander optimum changed: %g -> %g", q.Optimum, h.Optimum)
	}
	if q.Expanded != h.Expanded || q.Unique != h.Unique {
		t.Errorf("bystander expansions changed: %d/%d -> %d/%d", q.Expanded, q.Unique, h.Expanded, h.Unique)
	}
	if q.Time != h.Time || q.FirstDetect != h.FirstDetect {
		t.Errorf("bystander termination time changed: %g/%g -> %g/%g", q.FirstDetect, q.Time, h.FirstDetect, h.Time)
	}
	for i := range q.DetectTimes {
		if q.DetectTimes[i] != h.DetectTimes[i] {
			t.Errorf("bystander process %d detection changed: %g -> %g", i, q.DetectTimes[i], h.DetectTimes[i])
		}
	}
}

// TestMultiInstanceWholeProcessCrash: Instance 0 in a Crash fails the whole
// process — both instances lose that context (NaN detection) yet both still
// solve on the survivors.
func TestMultiInstanceWholeProcessCrash(t *testing.T) {
	cfg := Config{
		Procs:     6,
		Seed:      19,
		Prune:     true,
		Select:    DepthFirst,
		Instances: fourInstances()[:2],
		Crashes:   []Crash{{Time: 2, Node: 3}},
	}
	res := RunInstances(cfg)
	if !res.Terminated {
		t.Fatal("run did not terminate")
	}
	for _, ir := range res.Instances {
		if !ir.OptimumOK {
			t.Errorf("instance %d: optimum %g, want %g", ir.ID, ir.Optimum, ir.SeqOptimum)
		}
		if !math.IsNaN(ir.DetectTimes[3]) {
			t.Errorf("instance %d: crashed process detected at %g, want NaN", ir.ID, ir.DetectTimes[3])
		}
	}
}

// TestMultiInstanceLateSubmission: an instance submitted long after the first
// finished still solves — reaped instances must not wedge the cluster.
func TestMultiInstanceLateSubmission(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	cfg := Config{
		Procs:  4,
		Seed:   23,
		Prune:  true,
		Select: DepthFirst,
		Instances: []Instance{
			{Problem: bnb.RandomKnapsack(r, 12), Seed: 1, StartTime: 0},
			{Problem: bnb.RandomKnapsack(r, 12), Seed: 2, StartTime: 600},
		},
	}
	res := RunInstances(cfg)
	if !res.Terminated {
		t.Fatal("run did not terminate")
	}
	for _, ir := range res.Instances {
		if !ir.OptimumOK {
			t.Errorf("instance %d: optimum %g, want %g", ir.ID, ir.Optimum, ir.SeqOptimum)
		}
	}
	if res.Instances[1].FirstDetect < 600 {
		t.Errorf("late instance detected at %g, before its submission", res.Instances[1].FirstDetect)
	}
}

func TestRunInstancesRejectsUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunInstances accepted UseMembership")
		}
	}()
	RunInstances(Config{
		Procs:         4,
		UseMembership: true,
		Instances:     fourInstances()[:1],
	})
}
