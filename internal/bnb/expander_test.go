package bnb

import (
	"math"
	"math/rand"
	"testing"

	"gossipbnb/internal/code"
	"gossipbnb/internal/protocol"
)

// drive expands items through the expander the way a protocol driver would,
// best-first with pruning, and returns the best feasible value found.
func drive(t *testing.T, e *Expander) float64 {
	t.Helper()
	pool := []protocol.Item{e.Root()}
	best := math.Inf(1)
	for steps := 0; len(pool) > 0; steps++ {
		if steps > 1<<20 {
			t.Fatal("expander run did not finish")
		}
		it := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if it.Bound >= best {
			continue
		}
		out := e.Outcome(it)
		if out.Feasible && out.Value < best {
			best = out.Value
		}
		for _, ch := range out.Children {
			if ch.Bound < best {
				pool = append(pool, ch)
			}
		}
	}
	return best
}

// TestExpanderMatchesSequentialKnapsack drives a full solve through the
// code-driven expander and checks the optimum against the sequential engine
// over the same initial data — the §5.3.1 claim in miniature.
func TestExpanderMatchesSequentialKnapsack(t *testing.T) {
	k := RandomKnapsack(rand.New(rand.NewSource(3)), 14)
	want := SolveProblem(k).Value
	if got := drive(t, NewExpander(k)); got != want {
		t.Fatalf("expander optimum = %g, sequential = %g", got, want)
	}
}

func TestExpanderMatchesSequentialQAP(t *testing.T) {
	q := RandomQAP(rand.New(rand.NewSource(4)), 5)
	want := SolveProblem(q).Value
	if got := drive(t, NewExpander(q)); got != want {
		t.Fatalf("expander optimum = %g, sequential = %g", got, want)
	}
}

// TestExpanderColdLocate resolves a deep code on a fresh expander — the
// work-grant / failure-recovery path, where no ancestor state is cached and
// the whole decision path replays from the initial data.
func TestExpanderColdLocate(t *testing.T) {
	k := RandomKnapsack(rand.New(rand.NewSource(5)), 12)
	// Build a deep code by walking branch 1 (take) on a warm expander.
	warm := NewExpander(k)
	it := warm.Root()
	var deep protocol.Item
	for depth := 0; depth < 6; depth++ {
		out := warm.Outcome(it)
		if len(out.Children) == 0 {
			break
		}
		it = out.Children[1]
		deep = it
	}
	if deep.Code.Depth() == 0 {
		t.Fatal("could not build a deep code")
	}
	cold := NewExpander(k)
	got, ok := cold.Locate(deep.Code)
	if !ok {
		t.Fatalf("cold Locate(%v) failed", deep.Code)
	}
	if got.Bound != deep.Bound {
		t.Fatalf("cold bound %g != warm bound %g for %v", got.Bound, deep.Bound, deep.Code)
	}
	// And the re-derived state branches identically.
	w, c := warm.Outcome(deep), cold.Outcome(got)
	if w.Feasible != c.Feasible || w.Value != c.Value || len(w.Children) != len(c.Children) {
		t.Fatalf("warm/cold outcomes differ: %+v vs %+v", w, c)
	}
	for i := range w.Children {
		if !w.Children[i].Code.Equal(c.Children[i].Code) || w.Children[i].Bound != c.Children[i].Bound {
			t.Fatalf("child %d differs: %+v vs %+v", i, w.Children[i], c.Children[i])
		}
	}
}

// TestExpanderRejectsForeignCodes: a code whose decision variables disagree
// with the deterministic branching identifies no subproblem.
func TestExpanderRejectsForeignCodes(t *testing.T) {
	k := RandomKnapsack(rand.New(rand.NewSource(6)), 8)
	e := NewExpander(k)
	// Knapsack branches variable i+1 at depth i, so x99 at depth 0 is bogus.
	if _, ok := e.Locate(code.Root().Child(99, 0)); ok {
		t.Fatal("Locate accepted a code with a foreign branch variable")
	}
}

func TestParseSpec(t *testing.T) {
	if _, err := ParseSpec("knapsack:10:1"); err != nil {
		t.Errorf("knapsack spec rejected: %v", err)
	}
	if _, err := ParseSpec("qap:4:1"); err != nil {
		t.Errorf("qap spec rejected: %v", err)
	}
	for _, bad := range []string{"", "knapsack", "knapsack:0:1", "tsp:5:1", "qap:40:1", "qap:x:1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
