package bnb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteQAP enumerates all permutations (n ≤ 7).
func bruteQAP(q *QAP) float64 {
	n := q.Order()
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c := 0.0
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					c += q.Flow[a][b] * q.Dist[perm[a]][perm[b]]
				}
			}
			if c < best {
				best = c
			}
			return
		}
		for l := 0; l < n; l++ {
			if !used[l] {
				used[l] = true
				perm[i] = l
				rec(i + 1)
				used[l] = false
			}
		}
	}
	rec(0)
	return best
}

func TestQAPValidation(t *testing.T) {
	if _, err := NewQAP(nil, nil); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := NewQAP([][]float64{{0, 1}, {1, 0}}, [][]float64{{0}}); err == nil {
		t.Error("mismatched orders accepted")
	}
	if _, err := NewQAP([][]float64{{0, 1}}, [][]float64{{0, 1}}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := NewQAP([][]float64{{0, -1}, {1, 0}}, [][]float64{{0, 1}, {1, 0}}); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestQAPTinyExact(t *testing.T) {
	// 3 facilities: flow 0-1 heavy, distance 0-1 short; the optimum pairs
	// the heavy flow with the short edge.
	q, err := NewQAP(
		[][]float64{{0, 9, 1}, {9, 0, 1}, {1, 1, 0}},
		[][]float64{{0, 1, 5}, {1, 0, 5}, {5, 5, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(q.Root(), Options{})
	want := bruteQAP(q)
	if res.Value != want {
		t.Errorf("Value = %g, want %g", res.Value, want)
	}
	// Heavy pair on short edge: cost 2·9·1 + 2·1·5 + 2·1·5 = 38.
	if want != 38 {
		t.Errorf("brute force = %g, hand calculation says 38", want)
	}
}

func TestQAPAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		q := RandomQAP(r, 5)
		res := Solve(q.Root(), Options{})
		if want := bruteQAP(q); math.Abs(res.Value-want) > 1e-9 {
			t.Errorf("trial %d: Value = %g, want %g", trial, res.Value, want)
		}
	}
}

func TestQAPAllRulesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	q := RandomQAP(r, 6)
	want := bruteQAP(q)
	for name, pool := range map[string]Pool{
		"best-first":    NewBestFirst(),
		"depth-first":   NewDepthFirst(),
		"breadth-first": NewBreadthFirst(),
	} {
		res := Solve(q.Root(), Options{Pool: pool})
		if math.Abs(res.Value-want) > 1e-9 {
			t.Errorf("%s: Value = %g, want %g", name, res.Value, want)
		}
	}
}

func TestQAPBoundAdmissible(t *testing.T) {
	// Property: the root bound never exceeds the optimum.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := RandomQAP(r, 5)
		return q.Root().Bound() <= bruteQAP(q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQAPDeterministicBranching(t *testing.T) {
	// The encoding requires deterministic decomposition: branching the same
	// state twice must give the same variable and equivalent children.
	r := rand.New(rand.NewSource(6))
	q := RandomQAP(r, 6)
	s := q.Root()
	v1, a1, b1, ok1 := s.Branch()
	v2, a2, b2, ok2 := s.Branch()
	if !ok1 || !ok2 || v1 != v2 {
		t.Fatalf("nondeterministic branch: %d vs %d", v1, v2)
	}
	if a1.Bound() != a2.Bound() || b1.Bound() != b2.Bound() {
		t.Error("children bounds differ between identical branches")
	}
}

func TestQAPPrunesAgainstFullTree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	q := RandomQAP(r, 6)
	pruned := Solve(q.Root(), Options{})
	full := Solve(q.Root(), Options{DisablePruning: true, MaxNodes: 2_000_000})
	if pruned.Expanded >= full.Expanded {
		t.Errorf("pruning did not help: %d >= %d", pruned.Expanded, full.Expanded)
	}
	if !full.Truncated && math.Abs(pruned.Value-full.Value) > 1e-9 {
		t.Errorf("pruned %g != full %g", pruned.Value, full.Value)
	}
}

func BenchmarkSolveQAP7(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	q := RandomQAP(r, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(q.Root(), Options{})
	}
}
