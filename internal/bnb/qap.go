package bnb

import (
	"fmt"
	"math"
	"math/rand"
)

// QAP is a quadratic assignment instance: assign n facilities to n locations
// minimizing Σᵢⱼ Flow[i][j]·Dist[π(i)][π(j)]. The paper's motivation cites
// exactly this problem class (Hahn et al.'s QAP branch-and-bound, ref [16])
// as the kind of search that needs hundreds of processors for months.
//
// Branching is binarized to fit the paper's encoding: each decision fixes or
// forbids one (facility, location) pair, so a subproblem is a sequence of
// ⟨pair, 0|1⟩ decisions. Condition variable x(i·n+j+1) means "facility i at
// location j"; branch 1 assigns it, branch 0 forbids it.
type QAP struct {
	Flow [][]float64
	Dist [][]float64
	n    int
}

// NewQAP validates and builds an instance. Flow and Dist must be square,
// same order, with non-negative entries (non-negativity is what makes the
// partial-cost bound admissible).
func NewQAP(flow, dist [][]float64) (*QAP, error) {
	n := len(flow)
	if n == 0 || len(dist) != n {
		return nil, fmt.Errorf("bnb: QAP needs equal-order matrices, got %d and %d", n, len(dist))
	}
	for i := 0; i < n; i++ {
		if len(flow[i]) != n || len(dist[i]) != n {
			return nil, fmt.Errorf("bnb: QAP row %d is not length %d", i, n)
		}
		for j := 0; j < n; j++ {
			if flow[i][j] < 0 || dist[i][j] < 0 {
				return nil, fmt.Errorf("bnb: QAP entries must be non-negative")
			}
		}
	}
	if n > 30 {
		return nil, fmt.Errorf("bnb: QAP order %d exceeds the 30-facility encoding limit", n)
	}
	return &QAP{Flow: flow, Dist: dist, n: n}, nil
}

// RandomQAP generates a symmetric instance of order n with integer flows and
// distances in [0, 10).
func RandomQAP(r *rand.Rand, n int) *QAP {
	flow := make([][]float64, n)
	dist := make([][]float64, n)
	for i := 0; i < n; i++ {
		flow[i] = make([]float64, n)
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f := math.Floor(r.Float64() * 10)
			d := math.Floor(r.Float64() * 10)
			flow[i][j], flow[j][i] = f, f
			dist[i][j], dist[j][i] = d, d
		}
	}
	q, err := NewQAP(flow, dist)
	if err != nil {
		panic(err) // unreachable: generated inputs are valid by construction
	}
	return q
}

// Order returns n, the number of facilities.
func (q *QAP) Order() int { return q.n }

// Root returns the root subproblem (nothing assigned or forbidden).
func (q *QAP) Root() Subproblem {
	s := &qapState{q: q, loc: make([]int8, q.n), forbidden: make([]uint32, q.n)}
	for i := range s.loc {
		s.loc[i] = -1
	}
	return s
}

// qapState is a partial assignment with per-facility forbidden-location sets.
type qapState struct {
	q         *QAP
	loc       []int8   // loc[i] = location of facility i, -1 if unassigned
	taken     uint32   // bitmask of occupied locations
	forbidden []uint32 // forbidden[i] = locations facility i may not use
	cost      float64  // interaction cost among assigned facilities
}

func (s *qapState) clone() *qapState {
	c := &qapState{
		q:     s.q,
		loc:   append([]int8(nil), s.loc...),
		taken: s.taken,
		cost:  s.cost,
	}
	c.forbidden = append([]uint32(nil), s.forbidden...)
	return c
}

// nextFacility returns the lowest-index unassigned facility, or -1.
func (s *qapState) nextFacility() int {
	for i, l := range s.loc {
		if l < 0 {
			return i
		}
	}
	return -1
}

// available returns the locations facility i may still take.
func (s *qapState) available(i int) uint32 {
	full := uint32(1)<<s.q.n - 1
	return full &^ s.taken &^ s.forbidden[i]
}

// attach returns the interaction cost of placing facility i at location l
// against the already-assigned facilities.
func (s *qapState) attach(i, l int) float64 {
	c := 0.0
	for k, lk := range s.loc {
		if lk < 0 {
			continue
		}
		c += s.q.Flow[i][k]*s.q.Dist[l][lk] + s.q.Flow[k][i]*s.q.Dist[lk][l]
	}
	return c
}

// Bound is admissible: the fixed interaction cost plus, for each unassigned
// facility, the cheapest attachment to the assigned set. Interactions among
// unassigned facilities are bounded below by zero (all entries are
// non-negative).
func (s *qapState) Bound() float64 {
	lb := s.cost
	for i, l := range s.loc {
		if l >= 0 {
			continue
		}
		avail := s.available(i)
		if avail == 0 {
			return math.Inf(1) // facility has nowhere to go: infeasible
		}
		best := math.Inf(1)
		for j := 0; j < s.q.n; j++ {
			if avail&(1<<j) != 0 {
				if c := s.attach(i, j); c < best {
					best = c
				}
			}
		}
		lb += best
	}
	return lb
}

// Feasible reports the objective of a complete assignment.
func (s *qapState) Feasible() (float64, bool) {
	if s.nextFacility() != -1 {
		return 0, false
	}
	return s.cost, true
}

// Branch picks the first unassigned facility and its cheapest available
// location deterministically, then fixes (branch 1) or forbids (branch 0)
// that pair.
func (s *qapState) Branch() (uint32, Subproblem, Subproblem, bool) {
	i := s.nextFacility()
	if i < 0 {
		return 0, nil, nil, false
	}
	avail := s.available(i)
	if avail == 0 {
		return 0, nil, nil, false // infeasible: fathom
	}
	bestJ, bestC := -1, math.Inf(1)
	for j := 0; j < s.q.n; j++ {
		if avail&(1<<j) != 0 {
			if c := s.attach(i, j); c < bestC {
				bestJ, bestC = j, c
			}
		}
	}
	// Branch 1: assign facility i to location bestJ.
	take := s.clone()
	take.loc[i] = int8(bestJ)
	take.taken |= 1 << bestJ
	take.cost += bestC
	// Branch 0: forbid the pair.
	forbid := s.clone()
	forbid.forbidden[i] |= 1 << bestJ
	v := uint32(i*s.q.n + bestJ + 1)
	return v, forbid, take, true
}
