// Package bnb implements the sequential branch-and-bound engine of §2 of the
// paper: the four basic operators (decompose, bound, select, eliminate)
// applied over a pool of active problems, with pluggable selection rules.
//
// The engine minimizes. A subproblem is *fathomed* when it is infeasible,
// yields a feasible solution, or is eliminated by the incumbent; otherwise it
// is *branched* into exactly two children, each labelled by a decision on a
// condition variable — which is what makes the tree encodable by
// internal/code.
package bnb

import (
	"math"

	"gossipbnb/internal/code"
)

// Subproblem is one node of the search tree. Implementations must be
// deterministic: branching the same subproblem twice must yield the same
// condition variable and children (the paper's encoding relies on it).
type Subproblem interface {
	// Bound returns a lower bound on the objective of any solution in this
	// subtree. Infeasible subproblems return +Inf.
	Bound() float64
	// Feasible returns the objective value of this node if the node itself
	// is a feasible solution, and whether it is one.
	Feasible() (float64, bool)
	// Branch decomposes the subproblem on a condition variable, returning
	// the variable and the two children (branch 0 and branch 1). ok reports
	// whether decomposition was possible; a false return fathoms the node.
	Branch() (v uint32, zero, one Subproblem, ok bool)
}

// Item is a pool entry: a subproblem together with its code and cached bound.
type Item struct {
	Code  code.Code
	Sub   Subproblem
	Bound float64
}

// Pool is the pool of active problems. Implementations define the paper's
// selection rule.
type Pool interface {
	Push(Item)
	Pop() Item // undefined when empty
	Len() int
}

// Options configure a Solve run.
type Options struct {
	Pool      Pool    // selection rule; nil means best-first
	Incumbent float64 // initial best-known value; 0 means +Inf
	MaxNodes  int     // stop after expanding this many nodes; 0 means no limit
	// DisablePruning expands every node regardless of the incumbent. It is
	// used to build the paper's "basic trees" (§6.2): the full decomposition
	// tree from which pruned B&B trees are later derived.
	DisablePruning bool
	// OnExpand, if non-nil, is called for every node the engine visits,
	// before it is fathomed or branched. Used by internal/btree to record
	// basic trees.
	OnExpand func(Visit)
}

// Visit describes one node visit reported to Options.OnExpand.
type Visit struct {
	Code      code.Code
	Bound     float64
	Value     float64 // feasible objective, NaN if not feasible
	Feasible  bool
	Branched  bool   // node was decomposed
	BranchVar uint32 // valid when Branched
}

// Result summarizes a Solve run.
type Result struct {
	Value     float64   // objective of the best solution found (+Inf if none)
	Solution  code.Code // code of the node providing the incumbent
	Expanded  int       // nodes visited
	Branched  int       // nodes decomposed
	Fathomed  int       // leaves (feasible, infeasible, or eliminated)
	Truncated bool      // MaxNodes hit before exhaustion
}

// Solve runs branch and bound from root and returns the best solution found.
func Solve(root Subproblem, opts Options) Result {
	pool := opts.Pool
	if pool == nil {
		pool = NewBestFirst()
	}
	incumbent := math.Inf(1)
	if opts.Incumbent != 0 {
		incumbent = opts.Incumbent
	}
	res := Result{Value: incumbent}
	pool.Push(Item{Code: code.Root(), Sub: root, Bound: root.Bound()})
	for pool.Len() > 0 {
		if opts.MaxNodes > 0 && res.Expanded >= opts.MaxNodes {
			res.Truncated = true
			break
		}
		it := pool.Pop()
		// Eliminate: l(v) ≥ U cannot improve on the incumbent.
		if !opts.DisablePruning && it.Bound >= res.Value {
			res.Fathomed++
			continue
		}
		res.Expanded++
		visit := Visit{Code: it.Code, Bound: it.Bound, Value: math.NaN()}
		if val, ok := it.Sub.Feasible(); ok {
			visit.Feasible, visit.Value = true, val
			if val < res.Value {
				res.Value = val
				res.Solution = it.Code
			}
			res.Fathomed++
			emit(opts, visit)
			continue
		}
		v, zero, one, ok := it.Sub.Branch()
		if !ok {
			res.Fathomed++
			emit(opts, visit)
			continue
		}
		visit.Branched, visit.BranchVar = true, v
		emit(opts, visit)
		res.Branched++
		for b, child := range []Subproblem{zero, one} {
			bound := child.Bound()
			if opts.DisablePruning || bound < res.Value {
				pool.Push(Item{Code: it.Code.Child(v, uint8(b)), Sub: child, Bound: bound})
			} else {
				res.Fathomed++
			}
		}
	}
	return res
}

func emit(opts Options, v Visit) {
	if opts.OnExpand != nil {
		opts.OnExpand(v)
	}
}
