package bnb

import "container/heap"

// BestFirst selects the active problem with the smallest bound (the
// best-first rule of §2). It is a binary heap on Item.Bound.
type BestFirst struct{ h itemHeap }

// NewBestFirst returns an empty best-first pool.
func NewBestFirst() *BestFirst { return &BestFirst{} }

// Push adds an item to the pool.
func (p *BestFirst) Push(it Item) { heap.Push(&p.h, it) }

// Pop removes and returns the item with the smallest bound.
func (p *BestFirst) Pop() Item { return heap.Pop(&p.h).(Item) }

// Len returns the number of active problems.
func (p *BestFirst) Len() int { return len(p.h) }

type itemHeap []Item

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return h[i].Bound < h[j].Bound }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = Item{}
	*h = old[:n-1]
	return it
}

// DepthFirst selects the most recently generated problem (LIFO), the
// depth-first rule. It keeps memory small at the price of weaker incumbents
// early on.
type DepthFirst struct{ s []Item }

// NewDepthFirst returns an empty depth-first pool.
func NewDepthFirst() *DepthFirst { return &DepthFirst{} }

// Push adds an item to the pool.
func (p *DepthFirst) Push(it Item) { p.s = append(p.s, it) }

// Pop removes and returns the most recently pushed item.
func (p *DepthFirst) Pop() Item {
	n := len(p.s)
	it := p.s[n-1]
	p.s[n-1] = Item{}
	p.s = p.s[:n-1]
	return it
}

// Len returns the number of active problems.
func (p *DepthFirst) Len() int { return len(p.s) }

// BreadthFirst selects the oldest generated problem (FIFO), the breadth-first
// rule.
type BreadthFirst struct {
	q    []Item
	head int
}

// NewBreadthFirst returns an empty breadth-first pool.
func NewBreadthFirst() *BreadthFirst { return &BreadthFirst{} }

// Push adds an item to the pool.
func (p *BreadthFirst) Push(it Item) { p.q = append(p.q, it) }

// Pop removes and returns the oldest pushed item.
func (p *BreadthFirst) Pop() Item {
	it := p.q[p.head]
	p.q[p.head] = Item{}
	p.head++
	if p.head > len(p.q)/2 && p.head > 32 { // reclaim drained prefix
		p.q = append(p.q[:0], p.q[p.head:]...)
		p.head = 0
	}
	return it
}

// Len returns the number of active problems.
func (p *BreadthFirst) Len() int { return len(p.q) - p.head }
