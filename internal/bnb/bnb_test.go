package bnb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteKnapsack solves an instance exactly by enumeration (n ≤ ~20).
func bruteKnapsack(k *Knapsack) float64 {
	n := len(k.Values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		w, v := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				w += k.Weights[i]
				v += k.Values[i]
			}
		}
		if w <= k.Capacity && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackTiny(t *testing.T) {
	k, err := NewKnapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(k.Root(), Options{})
	if got := k.Best(res); got != 220 {
		t.Errorf("Best = %g, want 220", got)
	}
	if res.Truncated {
		t.Error("tiny instance truncated")
	}
}

func TestKnapsackValidation(t *testing.T) {
	if _, err := NewKnapsack([]float64{1}, []float64{1, 2}, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewKnapsack([]float64{1}, []float64{0}, 10); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewKnapsack([]float64{-1}, []float64{1}, 10); err == nil {
		t.Error("negative value accepted")
	}
}

func TestAllRulesAgreeWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		k := RandomKnapsack(r, 12)
		want := bruteKnapsack(k)
		for name, pool := range map[string]Pool{
			"best-first":    NewBestFirst(),
			"depth-first":   NewDepthFirst(),
			"breadth-first": NewBreadthFirst(),
		} {
			res := Solve(k.Root(), Options{Pool: pool})
			if got := k.Best(res); math.Abs(got-want) > 1e-9 {
				t.Errorf("trial %d, %s: Best = %g, want %g", trial, name, got, want)
			}
		}
	}
}

func TestBestFirstExpandsNoMoreThanDepthFirst(t *testing.T) {
	// Best-first with an exact LP bound should never expand more nodes than
	// depth-first on the same instance (it is optimally efficient for
	// consistent bounds, modulo ties).
	r := rand.New(rand.NewSource(3))
	worse := 0
	for trial := 0; trial < 15; trial++ {
		k := RandomKnapsack(r, 14)
		bf := Solve(k.Root(), Options{Pool: NewBestFirst()})
		df := Solve(k.Root(), Options{Pool: NewDepthFirst()})
		if bf.Expanded > df.Expanded {
			worse++
		}
	}
	if worse > 3 { // ties in bounds can flip a few instances either way
		t.Errorf("best-first expanded more than depth-first on %d/15 instances", worse)
	}
}

func TestMaxNodesTruncates(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	k := RandomKnapsack(r, 30)
	res := Solve(k.Root(), Options{MaxNodes: 100})
	if !res.Truncated {
		t.Error("MaxNodes did not truncate")
	}
	if res.Expanded > 100 {
		t.Errorf("Expanded = %d > MaxNodes", res.Expanded)
	}
}

func TestDisablePruningVisitsFullTree(t *testing.T) {
	k, _ := NewKnapsack([]float64{1, 2, 3}, []float64{1, 1, 1}, 3)
	pruned := Solve(k.Root(), Options{})
	full := Solve(k.Root(), Options{DisablePruning: true})
	// Full decomposition of 3 binary items: 2^4 - 1 = 15 nodes.
	if full.Expanded != 15 {
		t.Errorf("full tree Expanded = %d, want 15", full.Expanded)
	}
	if pruned.Expanded > full.Expanded {
		t.Errorf("pruned Expanded = %d > full %d", pruned.Expanded, full.Expanded)
	}
	if k.Best(full) != 6 {
		t.Errorf("full-tree Best = %g, want 6", k.Best(full))
	}
}

func TestOnExpandSeesEveryVisit(t *testing.T) {
	k, _ := NewKnapsack([]float64{5, 4}, []float64{2, 3}, 5)
	var visits []Visit
	res := Solve(k.Root(), Options{
		DisablePruning: true,
		OnExpand:       func(v Visit) { visits = append(visits, v) },
	})
	if len(visits) != res.Expanded {
		t.Fatalf("OnExpand called %d times, Expanded = %d", len(visits), res.Expanded)
	}
	if !visits[0].Code.IsRoot() {
		t.Error("first visit is not the root")
	}
	branched := 0
	for _, v := range visits {
		if v.Branched {
			branched++
			if v.BranchVar == 0 {
				t.Error("branched visit without BranchVar")
			}
		}
	}
	if branched != res.Branched {
		t.Errorf("branched visits = %d, Result.Branched = %d", branched, res.Branched)
	}
}

func TestIncumbentSeedPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	k := RandomKnapsack(r, 16)
	cold := Solve(k.Root(), Options{})
	// Seed with the known optimum: should expand no more nodes than cold.
	warm := Solve(k.Root(), Options{Incumbent: cold.Value})
	if warm.Expanded > cold.Expanded {
		t.Errorf("warm start expanded %d > cold %d", warm.Expanded, cold.Expanded)
	}
	if warm.Value > cold.Value {
		t.Errorf("warm Value = %g worse than cold %g", warm.Value, cold.Value)
	}
}

func TestPropPoolsPreserveItems(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		for _, pool := range []Pool{NewBestFirst(), NewDepthFirst(), NewBreadthFirst()} {
			sum := 0.0
			for i := 0; i < n; i++ {
				b := r.Float64()
				sum += b
				pool.Push(Item{Bound: b})
			}
			if pool.Len() != n {
				return false
			}
			got := 0.0
			for pool.Len() > 0 {
				got += pool.Pop().Bound
			}
			if math.Abs(got-sum) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBestFirstOrdering(t *testing.T) {
	p := NewBestFirst()
	for _, b := range []float64{5, 1, 3, 2, 4} {
		p.Push(Item{Bound: b})
	}
	prev := math.Inf(-1)
	for p.Len() > 0 {
		b := p.Pop().Bound
		if b < prev {
			t.Fatalf("heap order violated: %g after %g", b, prev)
		}
		prev = b
	}
}

func TestBreadthFirstFIFO(t *testing.T) {
	p := NewBreadthFirst()
	for i := 0; i < 100; i++ {
		p.Push(Item{Bound: float64(i)})
	}
	for i := 0; i < 100; i++ {
		if got := p.Pop().Bound; got != float64(i) {
			t.Fatalf("Pop %d = %g", i, got)
		}
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d after drain", p.Len())
	}
}

func TestDepthFirstLIFO(t *testing.T) {
	p := NewDepthFirst()
	for i := 0; i < 10; i++ {
		p.Push(Item{Bound: float64(i)})
	}
	for i := 9; i >= 0; i-- {
		if got := p.Pop().Bound; got != float64(i) {
			t.Fatalf("Pop = %g, want %d", got, i)
		}
	}
}

func BenchmarkSolveKnapsack24(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	k := RandomKnapsack(r, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(k.Root(), Options{})
	}
}
