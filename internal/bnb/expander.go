package bnb

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"gossipbnb/internal/code"
	"gossipbnb/internal/protocol"
)

// Problem is the initial problem data of a code-driven workload: anything
// that can produce the root subproblem. Every process of a distributed run
// holds the same Problem, which is what makes subproblem codes
// self-contained (§5.3.1). *Knapsack and *QAP satisfy it.
type Problem interface {
	Root() Subproblem
}

// maxCached bounds the expander's state cache. When exceeded, the cache is
// reset to just the root: correctness never depends on the cache, it only
// saves replaying decision paths, so a reset merely costs O(depth) branch
// calls on the next cold Locate.
const maxCached = 1 << 15

// Expander is the code-driven protocol.Expander: it resolves a subproblem
// code into live solver state by re-deriving it from the initial problem
// data — the paper's central §5.3.1 claim, exercised for real instead of
// replayed from a recorded tree.
//
// Reconstruction is incremental. States reached during normal expansion are
// cached, so a child's state is derived from its parent's in one Branch
// call; only codes arriving cold — work grants, failure recovery — replay
// their ⟨variable, branch⟩ path from the deepest cached ancestor (worst
// case the root). Because branching is deterministic, every process derives
// identical state for the same code.
//
// An Expander is not safe for concurrent use: create one per process, which
// also matches the model — each process re-derives subproblems from its own
// copy of the initial data.
type Expander struct {
	root  Subproblem
	cache map[string]Subproblem // code.Key() -> derived state
}

var _ protocol.Expander = (*Expander)(nil)

// NewExpander builds an expander over p's initial data.
func NewExpander(p Problem) *Expander {
	return &Expander{root: p.Root(), cache: make(map[string]Subproblem)}
}

// state returns the solver state behind c, deriving it from the deepest
// cached ancestor. ok is false when c disagrees with the deterministic
// branching — a code no honest process can produce.
func (e *Expander) state(c code.Code) (Subproblem, bool) {
	if len(c) == 0 {
		return e.root, true
	}
	if s, ok := e.cache[c.Key()]; ok {
		return s, true
	}
	s, depth := e.root, 0
	for d := len(c) - 1; d > 0; d-- {
		if cs, ok := e.cache[c[:d].Key()]; ok {
			s, depth = cs, d
			break
		}
	}
	for ; depth < len(c); depth++ {
		v, zero, one, ok := s.Branch()
		if !ok || v != c[depth].Var {
			return nil, false
		}
		if c[depth].Branch == 0 {
			s = zero
		} else {
			s = one
		}
		e.put(c[:depth+1].Key(), s)
	}
	return s, true
}

func (e *Expander) put(key string, s Subproblem) {
	if len(e.cache) >= maxCached {
		e.cache = make(map[string]Subproblem)
	}
	e.cache[key] = s
}

// Locate implements protocol.Expander: re-derive the state behind c and
// price it. Ref is unused — the code itself is the handle.
func (e *Expander) Locate(c code.Code) (protocol.Item, bool) {
	s, ok := e.state(c)
	if !ok {
		return protocol.Item{}, false
	}
	return protocol.Item{Code: c, Bound: s.Bound()}, true
}

// Root implements protocol.Expander.
func (e *Expander) Root() protocol.Item {
	return protocol.Item{Code: code.Root(), Bound: e.root.Bound()}
}

// Outcome implements protocol.Expander: branch the subproblem exactly as
// the sequential engine would — feasibility first, then decomposition —
// computing children bounds on the fly. The expanded state leaves the
// cache (it is never branched twice by the same process); its children
// enter it, so the cache tracks the frontier, not the whole tree.
func (e *Expander) Outcome(it protocol.Item) protocol.Outcome {
	s, ok := e.state(it.Code)
	if !ok {
		// Unreachable for codes produced by honest processes; fathom
		// defensively so the protocol completes rather than wedges.
		return protocol.Outcome{}
	}
	delete(e.cache, it.Code.Key())
	if val, feasible := s.Feasible(); feasible {
		return protocol.Outcome{Feasible: true, Value: val}
	}
	v, zero, one, ok := s.Branch()
	if !ok {
		return protocol.Outcome{} // infeasible leaf
	}
	out := protocol.Outcome{Children: make([]protocol.Item, 0, 2)}
	for b, child := range []Subproblem{zero, one} {
		cc := it.Code.Child(v, uint8(b))
		e.put(cc.Key(), child)
		out.Children = append(out.Children, protocol.Item{Code: cc, Bound: child.Bound()})
	}
	return out
}

// SolveProblem runs the sequential engine of §2 over p's root with
// depth-first selection and pruning: the single-processor reference every
// distributed run is checked against.
func SolveProblem(p Problem) Result {
	return Solve(p.Root(), Options{Pool: NewDepthFirst()})
}

// ParseSpec builds a Problem from a compact spec string, the vocabulary of
// cmd/dbbsim's -problem flag:
//
//	knapsack:<items>:<seed>   weakly correlated 0/1 knapsack
//	qap:<order>:<seed>        symmetric quadratic assignment
func ParseSpec(spec string) (Problem, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bnb: problem spec %q, want kind:size:seed", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("bnb: problem size %q", parts[1])
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bnb: problem seed %q", parts[2])
	}
	r := rand.New(rand.NewSource(seed))
	switch parts[0] {
	case "knapsack":
		return RandomKnapsack(r, n), nil
	case "qap":
		if n > 30 {
			return nil, fmt.Errorf("bnb: QAP order %d exceeds the 30-facility encoding limit", n)
		}
		return RandomQAP(r, n), nil
	default:
		return nil, fmt.Errorf("bnb: unknown problem kind %q (want knapsack or qap)", parts[0])
	}
}
