package bnb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Knapsack is a 0/1 knapsack instance used as the realistic workload behind
// the paper's "real problem" trees. The engine minimizes, so the instance
// exposes the negated value: minimizing -(packed value) maximizes the packed
// value. Branching fixes one item per level — item i maps to condition
// variable x(i+1) — with branch 0 = skip, branch 1 = take.
type Knapsack struct {
	Values   []float64
	Weights  []float64
	Capacity float64
	order    []int // item indices sorted by value density, for the LP bound
}

// NewKnapsack builds an instance. Items are branched in the given order;
// the LP relaxation bound greedily fills by value/weight density.
func NewKnapsack(values, weights []float64, capacity float64) (*Knapsack, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("bnb: %d values but %d weights", len(values), len(weights))
	}
	for i, w := range weights {
		if w <= 0 || values[i] < 0 {
			return nil, fmt.Errorf("bnb: item %d has weight %g, value %g", i, w, values[i])
		}
	}
	k := &Knapsack{
		Values:   append([]float64(nil), values...),
		Weights:  append([]float64(nil), weights...),
		Capacity: capacity,
	}
	k.order = make([]int, len(values))
	for i := range k.order {
		k.order[i] = i
	}
	sort.Slice(k.order, func(a, b int) bool {
		return values[k.order[a]]/weights[k.order[a]] > values[k.order[b]]/weights[k.order[b]]
	})
	return k, nil
}

// RandomKnapsack generates a weakly correlated instance of n items, the class
// that produces deep, irregular B&B trees (capacity = half the total weight).
func RandomKnapsack(r *rand.Rand, n int) *Knapsack {
	values := make([]float64, n)
	weights := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		weights[i] = 1 + math.Floor(r.Float64()*100)
		// Weakly correlated: value near weight with ±20 noise.
		values[i] = math.Max(1, weights[i]+math.Floor(r.Float64()*41)-20)
		total += weights[i]
	}
	k, err := NewKnapsack(values, weights, math.Floor(total/2))
	if err != nil {
		panic(err) // unreachable: generated inputs are valid by construction
	}
	return k
}

// Root returns the root subproblem (no items decided).
func (k *Knapsack) Root() Subproblem {
	return &knapState{k: k, next: 0, room: k.Capacity, value: 0}
}

// Best converts an engine Result on this instance back to the maximization
// objective: the total packed value.
func (k *Knapsack) Best(res Result) float64 { return -res.Value }

// knapState is a partial assignment: items [0, next) are decided.
type knapState struct {
	k     *Knapsack
	next  int
	room  float64 // remaining capacity
	value float64 // packed value so far
}

// Bound is the negated LP-relaxation upper bound: greedy fractional fill of
// the remaining capacity by the undecided items in density order.
func (s *knapState) Bound() float64 {
	if s.room < 0 {
		return math.Inf(1)
	}
	room, val := s.room, s.value
	for _, i := range s.k.order {
		if i < s.next {
			continue // already decided
		}
		w := s.k.Weights[i]
		if w <= room {
			room -= w
			val += s.k.Values[i]
		} else {
			val += s.k.Values[i] * room / w
			break
		}
	}
	return -val
}

// Feasible reports a complete assignment's value.
func (s *knapState) Feasible() (float64, bool) {
	if s.room < 0 {
		return math.Inf(1), false
	}
	if s.next == len(s.k.Values) {
		return -s.value, true
	}
	return 0, false
}

// Branch fixes item s.next: branch 0 skips it, branch 1 takes it.
func (s *knapState) Branch() (uint32, Subproblem, Subproblem, bool) {
	if s.room < 0 || s.next >= len(s.k.Values) {
		return 0, nil, nil, false
	}
	i := s.next
	skip := &knapState{k: s.k, next: i + 1, room: s.room, value: s.value}
	take := &knapState{k: s.k, next: i + 1, room: s.room - s.k.Weights[i], value: s.value + s.k.Values[i]}
	return uint32(i + 1), skip, take, true
}
