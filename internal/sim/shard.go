// Sharded parallel simulation: a Mesh partitions the simulated processes
// into S shards, each owning one Kernel (the PR 5 paged arena + 4-ary heap,
// reused verbatim) and one Network, run on S worker goroutines under a
// conservative lookahead barrier (barrier.go). Cross-shard messages travel
// through per-shard-pair mailboxes stamped with their absolute arrival
// times and are drained into the destination kernel between windows.
//
// Determinism contract: for a fixed (seed, shard count) the run is exactly
// reproducible. Every shard kernel gets a seed derived from (seed, shard)
// by a splitmix64 step; the barrier sequence depends only on event times;
// mailboxes drain in (source-shard, FIFO) order, so cross-shard deliveries
// are assigned kernel sequence numbers deterministically. Changing the
// shard count changes tie-breaking order between simultaneous events (and
// which shard RNG serves a node's chaos draws) but nothing else — every
// delivery keeps its exact virtual arrival time.
package sim

import "fmt"

// xmsg is one cross-shard mailbox entry: either a point-to-point message
// for to, or (bcast) a ring-range broadcast group [lo, lo+cnt).
type xmsg struct {
	at      float64
	from    NodeID
	to      NodeID
	lo, cnt int32
	msg     Message
	bcast   bool
}

// Mesh is a set of shard kernels advancing in lockstep windows.
// Build one with NewMesh, assign processes with PlaceBlocks, wire each
// node to its owner shard's Net, then call Run.
type Mesh struct {
	lookahead float64
	kernels   []*Kernel
	nets      []*Network
	n         int // ring size: total processes placed
	owner     []int32
	blockLo   []int32 // per shard: owned contiguous id range [lo, hi)
	blockHi   []int32
	// boxes[dst][src] is the src→dst mailbox. During a run window only the
	// src worker appends to it; during the drain phase only the dst worker
	// reads it. The two phases are separated by the barrier, so no entry is
	// ever accessed concurrently.
	boxes [][][]xmsg

	workers []chan meshCmd
	done    chan int
}

// splitmix64 is the seed-derivation step: one round of the SplitMix64
// generator, enough to decorrelate per-shard (and per-node) streams drawn
// from a single user seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed returns the deterministic sub-seed for stream i of seed.
func DeriveSeed(seed int64, i int) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(uint64(i)+1)))
}

// NewMesh creates a mesh of shards Kernel+Network pairs. lookahead is the
// static minimum cross-shard message delay in virtual seconds — for a
// LatencyModel this is the zero-byte latency (monotonicity makes it a lower
// bound), min'd with any replay floor. It must be positive: a zero
// lookahead admits no safe window and the conservative barrier degenerates.
func NewMesh(seed int64, shards int, latency LatencyModel, lookahead float64) *Mesh {
	if shards < 1 {
		panic(fmt.Sprintf("sim: mesh needs >= 1 shard, got %d", shards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: mesh needs positive lookahead, got %g", lookahead))
	}
	m := &Mesh{
		lookahead: lookahead,
		kernels:   make([]*Kernel, shards),
		nets:      make([]*Network, shards),
		boxes:     make([][][]xmsg, shards),
	}
	for s := 0; s < shards; s++ {
		k := New(DeriveSeed(seed, -(s + 1)))
		nw := NewNetwork(k, latency)
		nw.mesh = m
		nw.self = s
		m.kernels[s] = k
		m.nets[s] = nw
		m.boxes[s] = make([][]xmsg, shards)
	}
	return m
}

// Shards returns the number of shards.
func (m *Mesh) Shards() int { return len(m.kernels) }

// Kernel returns shard s's kernel.
func (m *Mesh) Kernel(s int) *Kernel { return m.kernels[s] }

// Net returns shard s's network.
func (m *Mesh) Net(s int) *Network { return m.nets[s] }

// PlaceBlocks assigns n processes (ids 0..n-1) to shards in contiguous
// blocks: shard s owns [s·n/S, (s+1)·n/S). Contiguity is what lets a
// broadcast group intersect a shard's holdings with index arithmetic
// instead of a full ring scan.
func (m *Mesh) PlaceBlocks(n int) {
	S := len(m.kernels)
	m.n = n
	m.owner = make([]int32, n)
	m.blockLo = make([]int32, S)
	m.blockHi = make([]int32, S)
	for s := 0; s < S; s++ {
		lo, hi := s*n/S, (s+1)*n/S
		m.blockLo[s], m.blockHi[s] = int32(lo), int32(hi)
		for id := lo; id < hi; id++ {
			m.owner[id] = int32(s)
		}
	}
}

// ShardOf returns the shard owning id.
func (m *Mesh) ShardOf(id NodeID) int {
	if id < 0 || int(id) >= len(m.owner) {
		panic(fmt.Sprintf("sim: node %d not placed on mesh", id))
	}
	return int(m.owner[id])
}

// NetOf returns the network of the shard owning id — the one to Register
// the node's handler on and to Send from.
func (m *Mesh) NetOf(id NodeID) *Network { return m.nets[m.ShardOf(id)] }

// KernelOf returns the kernel of the shard owning id — the one to schedule
// the node's timers on.
func (m *Mesh) KernelOf(id NodeID) *Kernel { return m.kernels[m.ShardOf(id)] }

// enqueue appends one point-to-point message to the src→dst mailbox.
// Called only by the src shard's worker during a run window.
func (m *Mesh) enqueue(src, dst int, at float64, from, to NodeID, msg Message) {
	m.boxes[dst][src] = append(m.boxes[dst][src], xmsg{at: at, from: from, to: to, msg: msg})
}

// broadcast fans a ring-range group out to every shard: the source shard
// schedules its own slice directly (the arrival is at least lookahead away,
// inside its own kernel's jurisdiction either way); every other shard gets
// one mailbox entry.
func (m *Mesh) broadcast(src int, at float64, from NodeID, lo, cnt int, msg Message) {
	for d := range m.kernels {
		if m.blockLo[d] == m.blockHi[d] {
			continue
		}
		if d == src {
			net := m.nets[d]
			m.kernels[d].At(at, func() { net.deliverRing(from, lo, cnt, msg) })
			continue
		}
		m.boxes[d][src] = append(m.boxes[d][src], xmsg{
			at: at, from: from, lo: int32(lo), cnt: int32(cnt), msg: msg, bcast: true,
		})
	}
}

// hasInbound reports whether any mailbox into dst holds messages.
func (m *Mesh) hasInbound(dst int) bool {
	for _, box := range m.boxes[dst] {
		if len(box) > 0 {
			return true
		}
	}
	return false
}

// drain moves every inbound mailbox entry into dst's kernel, in
// (source-shard, FIFO) order so sequence numbers — and therefore
// simultaneous-event tie-breaks — are assigned deterministically.
// Called only by the dst shard's worker, between run windows.
func (m *Mesh) drain(dst int) {
	net := m.nets[dst]
	k := m.kernels[dst]
	row := m.boxes[dst]
	for src := range row {
		box := row[src]
		for i := range box {
			x := &box[i]
			if x.bcast {
				from, lo, cnt, msg := x.from, int(x.lo), int(x.cnt), x.msg
				at := x.at
				if at < k.now {
					at = k.now
				}
				k.At(at, func() { net.deliverRing(from, lo, cnt, msg) })
			} else {
				k.DeliverAt(x.at, net.deliverHandler(x.to), x.from, x.msg)
			}
			box[i] = xmsg{} // release the payload reference
		}
		row[src] = box[:0]
	}
}

// Stats returns the merged counters of every shard, as a value copy.
func (m *Mesh) Stats() NetStats {
	var s NetStats
	for _, nw := range m.nets {
		s.add(nw.stats)
	}
	return s
}

// SentBytes returns the payload bytes sent by id (tracked by its owner
// shard: a node only ever sends from the shard it lives on).
func (m *Mesh) SentBytes(id NodeID) int64 { return m.NetOf(id).SentBytes(id) }

// SentMessages returns the number of messages sent by id.
func (m *Mesh) SentMessages(id NodeID) int64 { return m.NetOf(id).SentMessages(id) }

// Events returns the total events fired across all shard kernels.
func (m *Mesh) Events() uint64 {
	var n uint64
	for _, k := range m.kernels {
		n += k.fired
	}
	return n
}

// Now returns the maximum shard clock — the mesh's notion of elapsed
// virtual time after a Run.
func (m *Mesh) Now() float64 {
	var t float64
	for _, k := range m.kernels {
		if k.now > t {
			t = k.now
		}
	}
	return t
}

// Pending returns the total pending events plus undrained mailbox entries.
func (m *Mesh) Pending() int {
	n := 0
	for _, k := range m.kernels {
		n += k.Pending()
	}
	for dst := range m.boxes {
		for _, box := range m.boxes[dst] {
			n += len(box)
		}
	}
	return n
}
