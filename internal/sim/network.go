package sim

import "fmt"

// NodeID identifies a simulated process. IDs are dense small integers —
// the network's per-node tables are slices indexed by NodeID, not maps, so
// the per-message bookkeeping on the Send hot path is two array stores.
type NodeID int

// Message is a network payload. Size drives the communication-cost model;
// implementations should report their wire size, not their in-memory size.
type Message interface{ Size() int }

// Handler receives delivered messages.
type Handler func(from NodeID, msg Message)

// LatencyModel maps a message size in bytes to a one-way delay in seconds.
// Models must be monotone non-decreasing in size: the sharded mesh derives
// its safe lookahead from the zero-byte latency, which must lower-bound
// every real delay.
type LatencyModel func(bytes int) float64

// LinearLatency returns the paper's communication model: base + perByte·L,
// both in seconds. The paper's experiments use 1.5 ms + 0.005 ms/byte —
// PaperLatency.
func LinearLatency(base, perByte float64) LatencyModel {
	return func(bytes int) float64 { return base + perByte*float64(bytes) }
}

// PaperLatency is the model used throughout the paper's evaluation:
// 1.5 + 0.005·L milliseconds for messages of size L bytes.
func PaperLatency() LatencyModel { return LinearLatency(1.5e-3, 5e-6) }

// partition is a temporary network partition: during [start, end), nodes
// inside the group cannot exchange messages with nodes outside it.
type partition struct {
	start, end float64
	group      map[NodeID]bool
}

// MsgKinds bounds the dense per-kind accounting arrays. Message kinds are
// small dense bytes (the protocol codec's kind space); index 0 collects
// messages that expose no kind or one outside the dense range.
const MsgKinds = 16

// Kinded is an optional Message capability: a small dense kind byte that
// buckets the per-kind traffic accounting. Canonical protocol messages
// implement it; membership and test messages need not.
type Kinded interface{ Kind() byte }

// msgKind resolves a message's accounting bucket.
func msgKind(msg Message) byte {
	if km, ok := msg.(Kinded); ok {
		if k := km.Kind(); int(k) < MsgKinds {
			return k
		}
	}
	return 0
}

// NetStats aggregates network activity.
type NetStats struct {
	Sent       int64 // messages handed to the network
	Delivered  int64
	Lost       int64 // dropped by the loss model
	Cut        int64 // dropped by a partition
	ToDead     int64 // addressed to a crashed node
	Bytes      int64 // payload bytes of sent messages
	Duplicated int64 // extra copies injected by the duplication model
	Reordered  int64 // messages held back by the reordering model
	Replayed   int64 // stale copies injected by the replay model
	// KindSent and KindBytes break Sent/Bytes down by message kind (the
	// protocol codec's kind byte; bucket 0 is everything unkinded). Like
	// every other counter they are per-shard in a Mesh and merged read-only
	// at Stats time.
	KindSent  [MsgKinds]int64
	KindBytes [MsgKinds]int64
}

// add folds o into s — the mesh merges per-shard counter sets with it.
func (s *NetStats) add(o NetStats) {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.Lost += o.Lost
	s.Cut += o.Cut
	s.ToDead += o.ToDead
	s.Bytes += o.Bytes
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
	s.Replayed += o.Replayed
	for k := 0; k < MsgKinds; k++ {
		s.KindSent[k] += o.KindSent[k]
		s.KindBytes[k] += o.KindBytes[k]
	}
}

// Network delivers messages between registered nodes under a latency model,
// optional uniform loss, crash failures, and temporary partitions — the
// target-architecture assumptions of §4: unbounded delivery time and
// possible loss. §4 additionally permits duplicated and arbitrarily
// reordered delivery; SetDuplicate, SetReorder and SetReplay turn those on,
// widening the default well-behaved network into the full adversarial model.
//
// A Network is single-goroutine, like its Kernel. In a sharded Mesh every
// shard owns one Network; each mutates only its own counters and tables
// (merged read-only at Stats time), which is what makes the parallel run
// race-free by construction rather than by locking.
type Network struct {
	k       *Kernel
	latency LatencyModel
	// linkLatency optionally refines latency per (from, to) pair — see
	// SetLinkLatency. nil means the size-only model applies everywhere.
	linkLatency func(from, to NodeID, bytes int) float64
	lossProb    float64
	// dupProb injects an independent extra copy of a message, delivered
	// after its own fresh latency draw. reorderProb holds a message back by
	// up to reorderWindow extra seconds, letting later sends overtake it
	// (bounded reordering). replayProb re-delivers a stale copy roughly
	// replayDelay seconds later — a message from the system's past.
	dupProb       float64
	reorderProb   float64
	reorderWindow float64
	replayProb    float64
	replayDelay   float64
	handlers      []Handler
	crashed       []bool
	parts         []partition
	stats         NetStats
	sentBytes     []int64 // per-sender payload bytes
	sentMsgs      []int64
	// deliverTo caches one destination-bound delivery callback per receiver,
	// so scheduling a message costs no capture closure: the kernel's typed
	// delivery event carries (callback, from, msg) in its pooled slot, and
	// the callback closes over only the destination — allocated once per
	// node ever, not once per message.
	deliverTo []Handler

	// mesh/self route cross-shard traffic when this network is one shard of
	// a Mesh: a Send whose destination lives on another shard is stamped
	// with its absolute arrival time and enqueued in the shard-pair mailbox
	// instead of the local kernel. Both are nil/0 for a standalone Network.
	mesh *Mesh
	self int
}

// NewNetwork creates a network on k with the given latency model.
// A nil model means zero latency.
func NewNetwork(k *Kernel, latency LatencyModel) *Network {
	if latency == nil {
		latency = func(int) float64 { return 0 }
	}
	return &Network{k: k, latency: latency}
}

// SetLinkLatency installs a per-link latency model: f(from, to, bytes)
// replaces the size-only model for unicast delays, enabling non-uniform
// topologies (e.g. two clusters separated by a high-latency WAN link). f must
// never return less than the base model's latency(0) — the sharded mesh's
// lookahead is derived from it — so keep per-link delays additive on top of
// the base. Broadcast fast paths keep the base model; scenarios with a link
// model should run on the serial kernel (a single-shard mesh or a standalone
// Network), where no lookahead bound applies.
func (n *Network) SetLinkLatency(f func(from, to NodeID, bytes int) float64) {
	n.linkLatency = f
}

// delayFor resolves the one-way delay for a unicast message.
func (n *Network) delayFor(from, to NodeID, sz int) float64 {
	if n.linkLatency != nil {
		return n.linkLatency(from, to, sz)
	}
	return n.latency(sz)
}

// SetLoss sets the independent per-message loss probability.
func (n *Network) SetLoss(p float64) {
	n.lossProb = checkProb("loss", p)
}

// SetDuplicate sets the independent probability that a message is delivered
// twice. The duplicate is scheduled with its own base-latency delay, so when
// the original was held back by the reordering model the copies arrive in
// either order; under a plain deterministic latency model the duplicate
// follows the original.
func (n *Network) SetDuplicate(p float64) {
	n.dupProb = checkProb("duplicate", p)
}

// SetReorder sets the independent probability that a message is held back by
// up to window extra seconds of delay, so messages sent later can overtake
// it — bounded reordering. window <= 0 picks 10× the base latency of an
// empty message, floored at 10 ms so the knob still reorders under a
// zero-latency model.
func (n *Network) SetReorder(p, window float64) {
	n.reorderProb = checkProb("reorder", p)
	if window <= 0 {
		window = 10 * n.latency(0)
		if window <= 0 {
			window = 0.01
		}
	}
	n.reorderWindow = window
}

// SetReplay sets the independent probability that a message is re-delivered
// once more between delay and 2·delay seconds after the original send — a
// stale copy from the system's past, long after both ends moved on.
// delay <= 0 means 1 second.
func (n *Network) SetReplay(p, delay float64) {
	n.replayProb = checkProb("replay", p)
	if delay <= 0 {
		delay = 1
	}
	n.replayDelay = delay
}

func checkProb(what string, p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sim: %s probability %g out of [0,1]", what, p))
	}
	return p
}

// grow extends the per-node tables to cover id.
func (n *Network) grow(id NodeID) {
	if id < 0 {
		panic(fmt.Sprintf("sim: negative node id %d", id))
	}
	for int(id) >= len(n.handlers) {
		n.handlers = append(n.handlers, nil)
		n.crashed = append(n.crashed, false)
		n.sentBytes = append(n.sentBytes, 0)
		n.sentMsgs = append(n.sentMsgs, 0)
		n.deliverTo = append(n.deliverTo, nil)
	}
}

// Register installs the message handler for id. Registering twice panics —
// it would hide a scenario wiring bug.
func (n *Network) Register(id NodeID, h Handler) {
	n.grow(id)
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("sim: node %d registered twice", id))
	}
	n.handlers[id] = h
}

// Crash marks id as halted (the Crash failure model of §4: a processor fails
// by halting). Messages to and from it vanish; its handler does not run
// again unless the node is restored.
func (n *Network) Crash(id NodeID) {
	n.grow(id)
	n.crashed[id] = true
}

// Restore clears id's crashed mark: the process rebooted and rejoined under
// its old identity. Messages sent to it while it was down stay lost, but a
// message already in flight whose delivery time falls after the restore is
// delivered — the wire does not know the process was ever away, which is
// exactly the stale-delivery hazard a restarted process must tolerate.
func (n *Network) Restore(id NodeID) {
	n.grow(id)
	n.crashed[id] = false
}

// Crashed reports whether id has halted.
func (n *Network) Crashed(id NodeID) bool {
	return int(id) < len(n.crashed) && n.crashed[id]
}

// AddPartition isolates group from the rest of the network during
// [start, end) of virtual time.
func (n *Network) AddPartition(start, end float64, group []NodeID) {
	g := make(map[NodeID]bool, len(group))
	for _, id := range group {
		g[id] = true
	}
	n.parts = append(n.parts, partition{start: start, end: end, group: g})
}

// separated reports whether a partition currently cuts the (a, b) link.
func (n *Network) separated(a, b NodeID, t float64) bool {
	for _, p := range n.parts {
		if t >= p.start && t < p.end && p.group[a] != p.group[b] {
			return true
		}
	}
	return false
}

// Send queues msg for delivery from -> to under the latency model. Sends
// from or to crashed nodes, lost messages, and partitioned links all vanish
// silently — exactly the asynchronous model the algorithm must tolerate.
//
// In a Mesh, the crashed-destination check moves to delivery time for
// cross-shard sends (the sender's shard cannot see a remote node's crash
// state without synchronizing on it); the message still vanishes, it is
// just counted ToDead by the receiving shard.
func (n *Network) Send(from, to NodeID, msg Message) {
	if n.Crashed(from) {
		return
	}
	n.grow(from)
	n.stats.Sent++
	sz := msg.Size()
	n.stats.Bytes += int64(sz)
	k := msgKind(msg)
	n.stats.KindSent[k]++
	n.stats.KindBytes[k] += int64(sz)
	n.sentBytes[from] += int64(sz)
	n.sentMsgs[from]++
	if n.Crashed(to) {
		n.stats.ToDead++
		return
	}
	if n.lossProb > 0 && n.k.Rand().Float64() < n.lossProb {
		n.stats.Lost++
		return
	}
	delay := n.delayFor(from, to, sz)
	if n.reorderProb > 0 && n.k.Rand().Float64() < n.reorderProb {
		// Held back: messages sent after this one can overtake it.
		delay += n.k.Rand().Float64() * n.reorderWindow
		n.stats.Reordered++
	}
	n.route(from, to, msg, delay)
	if n.dupProb > 0 && n.k.Rand().Float64() < n.dupProb {
		// The duplicate draws its own latency, so the copies race.
		n.stats.Duplicated++
		n.route(from, to, msg, n.delayFor(from, to, sz))
	}
	if n.replayProb > 0 && n.k.Rand().Float64() < n.replayProb {
		// A stale copy surfaces much later — a retransmit buffer flushing, a
		// route flap healing — when the system has long moved past it.
		n.stats.Replayed++
		n.route(from, to, msg, n.replayDelay*(1+n.k.Rand().Float64()))
	}
}

// route sends one delivery attempt to the local kernel or, when the
// destination lives on another shard of a Mesh, to the shard-pair mailbox
// with its absolute arrival time. The lookahead barrier guarantees the
// arrival time is still in the receiving shard's future at drain time.
func (n *Network) route(from, to NodeID, msg Message, delay float64) {
	if m := n.mesh; m != nil {
		if d := m.ShardOf(to); d != n.self {
			m.enqueue(n.self, d, n.k.now+delay, from, to, msg)
			return
		}
	}
	n.schedule(from, to, msg, delay)
}

// deliverHandler returns the cached destination-bound delivery callback.
func (n *Network) deliverHandler(to NodeID) Handler {
	n.grow(to)
	h := n.deliverTo[to]
	if h == nil {
		h = func(from NodeID, msg Message) { n.deliverNow(from, to, msg) }
		n.deliverTo[to] = h
	}
	return h
}

// schedule queues one delivery attempt of msg after delay through the
// kernel's typed delivery event — no per-message closure; the pooled event
// slot carries the payload.
func (n *Network) schedule(from, to NodeID, msg Message, delay float64) {
	n.k.Deliver(delay, n.deliverHandler(to), from, msg)
}

// deliverNow runs one delivery attempt at its scheduled time. Every check is
// re-done at delivery time: the destination may have crashed, or a partition
// may have formed, while the message was in flight. A message already in
// flight from a sender that crashes later is still delivered — crash-stop
// halts the process, not the wire. The handler is also looked up at delivery
// time, so a receiver registered mid-flight still gets the message.
func (n *Network) deliverNow(from, to NodeID, msg Message) {
	if n.Crashed(to) {
		n.stats.ToDead++
		return
	}
	if n.separated(from, to, n.k.Now()) {
		n.stats.Cut++
		return
	}
	if int(to) >= len(n.handlers) {
		return
	}
	h := n.handlers[to]
	if h == nil {
		return
	}
	n.stats.Delivered++
	h(from, msg)
}

// BroadcastRange sends msg from -> every node in the mesh ring range
// [lo, lo+cnt) (positions mod ring size), the one-event-per-shard fast path
// for the protocol's termination broadcast. A procs² broadcast materialized
// as individual deliveries is what caps the simulator's scale: at 10k
// processes it is 10⁸ pending events (gigabytes of arena). This path
// instead enqueues ONE group entry per destination shard; the group fires
// as one kernel event that walks only the shard's own slice of the ring.
// Legal only under a failure-free network (no loss/dup/reorder/replay —
// those need independent per-recipient draws) and only on a Mesh; the
// caller falls back to per-recipient Send otherwise.
func (n *Network) BroadcastRange(from NodeID, lo, cnt int, msg Message) {
	m := n.mesh
	if m == nil {
		panic("sim: BroadcastRange on a standalone Network")
	}
	if cnt <= 0 || n.Crashed(from) {
		return
	}
	if n.lossProb > 0 || n.dupProb > 0 || n.reorderProb > 0 || n.replayProb > 0 {
		// Chaos knobs need one independent draw per recipient.
		for j := 0; j < cnt; j++ {
			n.Send(from, NodeID((lo+j)%m.n), msg)
		}
		return
	}
	n.grow(from)
	sz := msg.Size()
	n.stats.Sent += int64(cnt)
	n.stats.Bytes += int64(sz) * int64(cnt)
	k := msgKind(msg)
	n.stats.KindSent[k] += int64(cnt)
	n.stats.KindBytes[k] += int64(sz) * int64(cnt)
	n.sentBytes[from] += int64(sz) * int64(cnt)
	n.sentMsgs[from] += int64(cnt)
	m.broadcast(n.self, n.k.now+n.latency(sz), from, lo, cnt, msg)
}

// deliverRing delivers one broadcast group to this shard's slice of the
// ring: every owned id whose ring position falls in [lo, lo+cnt) mod n.
// Per-recipient crash/partition state is checked here, at delivery time,
// exactly like deliverNow.
func (n *Network) deliverRing(from NodeID, lo, cnt int, msg Message) {
	m := n.mesh
	blo, bhi := int(m.blockLo[n.self]), int(m.blockHi[n.self])
	checkParts := len(n.parts) > 0
	t := n.k.Now()
	for id := blo; id < bhi; id++ {
		d := id - lo
		if d < 0 {
			d += m.n
		}
		if d >= cnt {
			continue
		}
		if n.crashed[id] {
			n.stats.ToDead++
			continue
		}
		if checkParts && n.separated(from, NodeID(id), t) {
			n.stats.Cut++
			continue
		}
		h := n.handlers[id]
		if h == nil {
			continue
		}
		n.stats.Delivered++
		h(from, msg)
	}
}

// Stats returns a copy of the aggregate counters.
func (n *Network) Stats() NetStats { return n.stats }

// SentBytes returns the payload bytes sent by id.
func (n *Network) SentBytes(id NodeID) int64 {
	if int(id) >= len(n.sentBytes) {
		return 0
	}
	return n.sentBytes[id]
}

// SentMessages returns the number of messages sent by id.
func (n *Network) SentMessages(id NodeID) int64 {
	if int(id) >= len(n.sentMsgs) {
		return 0
	}
	return n.sentMsgs[id]
}
