package sim

import (
	"math"
	"testing"
)

type testMsg struct{ sz int }

func (m testMsg) Size() int { return m.sz }

// arrival is one recorded delivery, stamped with the receiving kernel's
// clock. Each node records into its own slice — handlers run only on the
// node's owner shard, so the recordings are race-free under -race.
type arrival struct {
	t    float64
	from NodeID
	msg  Message
}

func meshRecorders(m *Mesh, n int) [][]arrival {
	got := make([][]arrival, n)
	for id := 0; id < n; id++ {
		id := id
		k := m.KernelOf(NodeID(id))
		m.NetOf(NodeID(id)).Register(NodeID(id), func(from NodeID, msg Message) {
			got[id] = append(got[id], arrival{t: k.Now(), from: from, msg: msg})
		})
	}
	return got
}

// TestShardMeshCrossDelivery pins the core contract: a cross-shard message
// arrives at exactly send-time + latency(size), same as a local one.
func TestShardMeshCrossDelivery(t *testing.T) {
	lat := PaperLatency()
	m := NewMesh(1, 2, lat, lat(0))
	m.PlaceBlocks(4) // shard 0: {0,1}, shard 1: {2,3}
	got := meshRecorders(m, 4)

	net0 := m.Net(0)
	m.Kernel(0).At(0, func() {
		net0.Send(0, 1, testMsg{sz: 10}) // local
		net0.Send(0, 2, testMsg{sz: 20}) // cross-shard
	})
	m.Run(1)

	if len(got[1]) != 1 || len(got[2]) != 1 {
		t.Fatalf("deliveries: node1=%d node2=%d, want 1 each", len(got[1]), len(got[2]))
	}
	if want := lat(10); got[1][0].t != want {
		t.Errorf("local arrival at %g, want %g", got[1][0].t, want)
	}
	if want := lat(20); got[2][0].t != want {
		t.Errorf("cross-shard arrival at %g, want %g — sharding must not distort virtual time", got[2][0].t, want)
	}
}

// TestShardMeshPingPong bounces a message between two shards for many
// rounds: every hop must land at an exact multiple of the latency, across
// many barrier windows.
func TestShardMeshPingPong(t *testing.T) {
	lat := LinearLatency(2e-3, 0)
	m := NewMesh(7, 2, lat, lat(0))
	m.PlaceBlocks(2) // node 0 on shard 0, node 1 on shard 1
	const rounds = 50
	hops := 0
	var times []float64 // appended alternately, but strictly causally ordered
	for id := 0; id < 2; id++ {
		id := id
		k := m.KernelOf(NodeID(id))
		nw := m.NetOf(NodeID(id))
		m.NetOf(NodeID(id)).Register(NodeID(id), func(from NodeID, msg Message) {
			hops++
			times = append(times, k.Now())
			if hops < rounds {
				nw.Send(NodeID(id), from, msg)
			}
		})
	}
	m.Net(0).Send(0, 1, testMsg{})
	end := m.Run(10)
	if hops != rounds {
		t.Fatalf("hops = %d, want %d", hops, rounds)
	}
	for i, ti := range times {
		if want := float64(i+1) * lat(0); math.Abs(ti-want) > 1e-12 {
			t.Fatalf("hop %d at %g, want %g", i, ti, want)
		}
	}
	if want := float64(rounds) * lat(0); math.Abs(end-want) > 1e-12 {
		t.Errorf("end time %g, want %g", end, want)
	}
}

// TestShardMeshBroadcastRange checks the group fast path: everyone in the
// ring range gets exactly one copy at the same virtual instant; the sender
// and crashed nodes get none; stats merge correctly across shards.
func TestShardMeshBroadcastRange(t *testing.T) {
	lat := PaperLatency()
	const n, S = 10, 3
	m := NewMesh(3, S, lat, lat(0))
	m.PlaceBlocks(n)
	got := meshRecorders(m, n)

	const sender = 4
	// Crash state lives on the crashed node's OWNER shard — delivery-time
	// checks run there (node 7 is on shard 2 with n=10, S=3).
	m.NetOf(7).Crash(7)
	net := m.NetOf(sender)
	m.KernelOf(sender).At(0, func() {
		net.BroadcastRange(sender, sender+1, n-1, testMsg{sz: 8})
	})
	m.Run(1)

	want := lat(8)
	for id := 0; id < n; id++ {
		switch id {
		case sender, 7:
			if len(got[id]) != 0 {
				t.Errorf("node %d got %d messages, want 0", id, len(got[id]))
			}
		default:
			if len(got[id]) != 1 {
				t.Errorf("node %d got %d messages, want 1", id, len(got[id]))
				continue
			}
			if got[id][0].t != want || got[id][0].from != sender {
				t.Errorf("node %d: arrival (t=%g from=%d), want (t=%g from=%d)",
					id, got[id][0].t, got[id][0].from, want, sender)
			}
		}
	}
	st := m.Stats()
	if st.Sent != n-1 || st.Delivered != n-2 || st.ToDead != 1 {
		t.Errorf("stats = %+v, want Sent=%d Delivered=%d ToDead=1", st, n-1, n-2)
	}
	if b := m.SentBytes(sender); b != 8*(n-1) {
		t.Errorf("SentBytes(sender) = %d, want %d", b, 8*(n-1))
	}
	if c := m.SentMessages(sender); c != n-1 {
		t.Errorf("SentMessages(sender) = %d, want %d", c, n-1)
	}
}

// TestShardMeshMatchesSingleShard runs one deterministic all-to-all
// scenario at several shard counts: every node's arrival log (time, from,
// size) must be identical — delivery content and timing are invariant in
// the shard count; only tie-order between distinct receivers may differ,
// which per-node logs do not see.
func TestShardMeshMatchesSingleShard(t *testing.T) {
	lat := PaperLatency()
	const n = 12
	runAt := func(S int) [][]arrival {
		m := NewMesh(5, S, lat, lat(0))
		m.PlaceBlocks(n)
		got := make([][]arrival, n)
		for id := 0; id < n; id++ {
			id := id
			k := m.KernelOf(NodeID(id))
			nw := m.NetOf(NodeID(id))
			replied := false
			m.NetOf(NodeID(id)).Register(NodeID(id), func(from NodeID, msg Message) {
				got[id] = append(got[id], arrival{t: k.Now(), from: from, msg: msg})
				// A second causal generation: reply to the first arrival.
				// (One reply only — an open cascade could manufacture exact
				// time ties, whose relative order is not part of the
				// shard-count invariance contract.)
				if !replied {
					replied = true
					nw.Send(NodeID(id), from, testMsg{sz: int(from) + id})
				}
			})
		}
		for id := 0; id < n; id++ {
			id := id
			nw := m.NetOf(NodeID(id))
			m.KernelOf(NodeID(id)).At(float64(id)*1e-4, func() {
				for p := 0; p < n; p++ {
					if p != id {
						nw.Send(NodeID(id), NodeID(p), testMsg{sz: id})
					}
				}
			})
		}
		m.Run(1)
		return got
	}

	base := runAt(1)
	for _, S := range []int{2, 3, 4} {
		got := runAt(S)
		for id := 0; id < n; id++ {
			if len(got[id]) != len(base[id]) {
				t.Fatalf("S=%d node %d: %d arrivals, S=1 had %d", S, id, len(got[id]), len(base[id]))
			}
			for i := range got[id] {
				a, b := got[id][i], base[id][i]
				if a.t != b.t || a.from != b.from || a.msg.Size() != b.msg.Size() {
					t.Fatalf("S=%d node %d arrival %d = (%g,%d,%d), S=1 = (%g,%d,%d)",
						S, id, i, a.t, a.from, a.msg.Size(), b.t, b.from, b.msg.Size())
				}
			}
		}
	}
}

// TestShardMeshLookaheadSafety pins the barrier's correctness condition: a
// delivery is never scheduled into a shard's past, even under heavy
// cross-traffic with minimal lookahead (DeliverAt clamping would mask such
// a bug by warping arrival times — so equality-checking arrival times, as
// above, plus this stress, covers it).
func TestShardMeshLookaheadSafety(t *testing.T) {
	lat := LinearLatency(1e-3, 1e-6)
	const n = 8
	m := NewMesh(11, 4, lat, lat(0))
	m.PlaceBlocks(n)
	bad := make([]bool, n)
	for id := 0; id < n; id++ {
		id := id
		k := m.KernelOf(NodeID(id))
		nw := m.NetOf(NodeID(id))
		sent := 0
		var lastAt float64
		m.NetOf(NodeID(id)).Register(NodeID(id), func(from NodeID, msg Message) {
			now := k.Now()
			if now < lastAt {
				bad[id] = true // time ran backwards for this node
			}
			lastAt = now
			if sent < 200 {
				sent++
				nw.Send(NodeID(id), NodeID((id+1)%n), testMsg{sz: sent % 50})
				nw.Send(NodeID(id), NodeID((id+3)%n), testMsg{sz: sent % 31})
			}
		})
	}
	m.Net(0).Send(0, 1, testMsg{})
	m.Run(math.Inf(1))
	for id, b := range bad {
		if b {
			t.Errorf("node %d observed non-monotone delivery times", id)
		}
	}
	if m.Pending() != 0 {
		t.Errorf("pending = %d after full drain", m.Pending())
	}
}
