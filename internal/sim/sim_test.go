package sim

import (
	"math"
	"testing"
	"testing/quick"
)

type payload int

func (p payload) Size() int { return int(p) }

func TestKernelOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.At(3, func() { order = append(order, 3) })
	k.At(1, func() { order = append(order, 1) })
	k.At(2, func() { order = append(order, 2) })
	k.Run(math.Inf(1))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 3 {
		t.Errorf("Now = %g, want 3", k.Now())
	}
	if k.Events() != 3 {
		t.Errorf("Events = %d, want 3", k.Events())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		k.At(1, func() { order = append(order, i) })
	}
	k.Run(math.Inf(1))
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of schedule order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	hits := 0
	k.At(1, func() {
		k.After(1, func() {
			hits++
			if k.Now() != 2 {
				t.Errorf("nested event at %g, want 2", k.Now())
			}
		})
	})
	k.Run(math.Inf(1))
	if hits != 1 {
		t.Errorf("hits = %d", hits)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	fired := 0
	k.At(1, func() { fired++ })
	k.At(10, func() { fired++ })
	k.Run(5)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	k.Run(math.Inf(1))
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestCancel(t *testing.T) {
	k := New(1)
	fired := false
	ev := k.At(1, func() { fired = true })
	ev.Cancel()
	k.Run(math.Inf(1))
	if fired {
		t.Error("cancelled event fired")
	}
	var zero Event
	zero.Cancel() // the zero handle must be a safe no-op
}

func TestCancelExcludedFromPending(t *testing.T) {
	k := New(1)
	ev := k.At(1, func() {})
	k.At(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	ev.Cancel()
	if k.Pending() != 1 {
		t.Errorf("Pending after Cancel = %d, want 1 (cancelled events are reclaimed eagerly)", k.Pending())
	}
	ev.Cancel() // double-cancel: no-op
	if k.Pending() != 1 {
		t.Errorf("Pending after double Cancel = %d, want 1", k.Pending())
	}
}

func TestStaleHandleCannotCancelReusedSlot(t *testing.T) {
	k := New(1)
	fired := 0
	ev := k.At(1, func() { fired++ })
	k.Run(math.Inf(1))
	// ev's slot is free; the next event reuses it. The stale handle must
	// not be able to cancel the newcomer.
	k.At(2, func() { fired++ })
	ev.Cancel()
	k.Run(math.Inf(1))
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (stale Cancel hit a reused slot)", fired)
	}
}

func TestAfterArg(t *testing.T) {
	k := New(1)
	var got []int
	fn := func(v int) { got = append(got, v) }
	k.AfterArg(2, fn, 20)
	k.AfterArg(1, fn, 10)
	k.AfterArg(-1, fn, 0) // clamps to now, fires first
	k.Run(math.Inf(1))
	if len(got) != 3 || got[0] != 0 || got[1] != 10 || got[2] != 20 {
		t.Errorf("got = %v", got)
	}
}

func TestDeliverTyped(t *testing.T) {
	k := New(1)
	var from NodeID
	var size int
	var at float64
	k.Deliver(1.5, func(f NodeID, m Message) { from, size, at = f, m.Size(), k.Now() }, 7, payload(42))
	ev := k.Deliver(1, func(NodeID, Message) { t.Error("cancelled delivery fired") }, 1, payload(1))
	ev.Cancel()
	k.Run(math.Inf(1))
	if from != 7 || size != 42 || at != 1.5 {
		t.Errorf("delivery = (from %d, size %d, at %g), want (7, 42, 1.5)", from, size, at)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	k := New(1)
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		k.At(1, func() {})
	})
	k.Run(math.Inf(1))
}

func TestNegativeAfterClamps(t *testing.T) {
	k := New(1)
	fired := false
	k.After(-5, func() { fired = true })
	k.Run(math.Inf(1))
	if !fired {
		t.Error("After(-5) never fired")
	}
}

func TestNetworkDelivery(t *testing.T) {
	k := New(1)
	nw := NewNetwork(k, PaperLatency())
	var got []int
	var at []float64
	nw.Register(2, func(from NodeID, m Message) {
		if from != 1 {
			t.Errorf("from = %d", from)
		}
		got = append(got, m.(payload).Size())
		at = append(at, k.Now())
	})
	nw.Register(1, func(NodeID, Message) {})
	nw.Send(1, 2, payload(100))
	k.Run(math.Inf(1))
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("got = %v", got)
	}
	want := 1.5e-3 + 5e-6*100 // paper model: 1.5 + 0.005·L ms
	if math.Abs(at[0]-want) > 1e-12 {
		t.Errorf("delivery at %g, want %g", at[0], want)
	}
	st := nw.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Bytes != 100 {
		t.Errorf("stats = %+v", st)
	}
	if nw.SentBytes(1) != 100 || nw.SentMessages(1) != 1 {
		t.Errorf("per-sender: bytes=%d msgs=%d", nw.SentBytes(1), nw.SentMessages(1))
	}
}

func TestRegisterMidRun(t *testing.T) {
	// Elastic membership registers nodes from inside event callbacks, after
	// the kernel has started firing: the handler table must grow on demand,
	// and both directions of traffic with the late endpoint must work. A send
	// to the identity before it registers is a normal drop, not an error.
	k := New(1)
	nw := NewNetwork(k, nil)
	var got, back []int
	nw.Register(0, func(from NodeID, m Message) { back = append(back, m.(payload).Size()) })
	nw.Send(0, 7, payload(1)) // nobody there yet: vanishes like any loss
	k.At(2, func() {
		nw.Register(7, func(from NodeID, m Message) {
			got = append(got, m.(payload).Size())
			nw.Send(7, 0, payload(int(m.(payload).Size())+1))
		})
		nw.Send(0, 7, payload(5))
	})
	k.Run(math.Inf(1))
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("late node got = %v, want [5]", got)
	}
	if len(back) != 1 || back[0] != 6 {
		t.Errorf("reply to node 0 = %v, want [6]", back)
	}
	if st := nw.Stats(); st.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2", st.Delivered)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	k := New(1)
	nw := NewNetwork(k, nil)
	delivered := 0
	nw.Register(1, func(NodeID, Message) { delivered++ })
	nw.Register(2, func(NodeID, Message) { delivered++ })
	nw.Crash(2)
	nw.Send(1, 2, payload(1)) // to dead
	nw.Send(2, 1, payload(1)) // from dead
	k.Run(math.Inf(1))
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0", delivered)
	}
	st := nw.Stats()
	if st.ToDead != 1 {
		t.Errorf("ToDead = %d, want 1", st.ToDead)
	}
	if !nw.Crashed(2) || nw.Crashed(1) {
		t.Error("Crashed flags wrong")
	}
}

func TestCrashDuringFlightDropsAtDelivery(t *testing.T) {
	k := New(1)
	nw := NewNetwork(k, LinearLatency(1, 0)) // 1 s latency
	delivered := 0
	nw.Register(1, func(NodeID, Message) {})
	nw.Register(2, func(NodeID, Message) { delivered++ })
	nw.Send(1, 2, payload(1))
	k.At(0.5, func() { nw.Crash(2) }) // crashes while message in flight
	k.Run(math.Inf(1))
	if delivered != 0 {
		t.Error("message delivered to node that crashed in flight")
	}
}

func TestInFlightFromCrashedSenderStillDelivered(t *testing.T) {
	k := New(1)
	nw := NewNetwork(k, LinearLatency(1, 0))
	delivered := 0
	nw.Register(1, func(NodeID, Message) {})
	nw.Register(2, func(NodeID, Message) { delivered++ })
	nw.Send(1, 2, payload(1))
	k.At(0.5, func() { nw.Crash(1) }) // sender crashes after send
	k.Run(math.Inf(1))
	if delivered != 1 {
		t.Error("in-flight message from crashed sender was dropped; crash-stop halts the process, not the wire")
	}
}

func TestLoss(t *testing.T) {
	k := New(7)
	nw := NewNetwork(k, nil)
	nw.SetLoss(0.5)
	delivered := 0
	nw.Register(1, func(NodeID, Message) {})
	nw.Register(2, func(NodeID, Message) { delivered++ })
	const n = 2000
	for i := 0; i < n; i++ {
		nw.Send(1, 2, payload(1))
	}
	k.Run(math.Inf(1))
	if delivered < n*2/5 || delivered > n*3/5 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, n)
	}
	st := nw.Stats()
	if st.Lost+int64(delivered) != n {
		t.Errorf("Lost=%d + delivered=%d != %d", st.Lost, delivered, n)
	}
}

func TestSetLossValidates(t *testing.T) {
	nw := NewNetwork(New(1), nil)
	for _, p := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLoss(%g) did not panic", p)
				}
			}()
			nw.SetLoss(p)
		}()
	}
}

func TestPartition(t *testing.T) {
	k := New(1)
	nw := NewNetwork(k, LinearLatency(0.1, 0))
	var delivered []float64
	nw.Register(1, func(NodeID, Message) {})
	nw.Register(2, func(NodeID, Message) { delivered = append(delivered, k.Now()) })
	nw.AddPartition(1, 2, []NodeID{1}) // 1 isolated during [1, 2)
	// Send at t=0.5: delivers at 0.6 — before the partition.
	k.At(0.5, func() { nw.Send(1, 2, payload(1)) })
	// Send at t=1.2: would deliver at 1.3 — inside the partition, cut.
	k.At(1.2, func() { nw.Send(1, 2, payload(1)) })
	// Send at t=2.5: after healing, delivers.
	k.At(2.5, func() { nw.Send(1, 2, payload(1)) })
	k.Run(math.Inf(1))
	if len(delivered) != 2 {
		t.Fatalf("delivered %d messages, want 2 (partition should cut one): %v", len(delivered), delivered)
	}
	if nw.Stats().Cut != 1 {
		t.Errorf("Cut = %d, want 1", nw.Stats().Cut)
	}
	// Nodes on the same side of the partition still communicate.
	nw2 := NewNetwork(k, nil)
	got := 0
	nw2.Register(3, func(NodeID, Message) { got++ })
	nw2.Register(4, func(NodeID, Message) {})
	nw2.AddPartition(k.Now(), k.Now()+100, []NodeID{3, 4})
	nw2.Send(4, 3, payload(1))
	k.Run(math.Inf(1))
	if got != 1 {
		t.Error("same-side message was cut")
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	nw := NewNetwork(New(1), nil)
	nw.Register(1, func(NodeID, Message) {})
	defer func() {
		if recover() == nil {
			t.Error("double Register did not panic")
		}
	}()
	nw.Register(1, func(NodeID, Message) {})
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		k := New(99)
		nw := NewNetwork(k, PaperLatency())
		nw.SetLoss(0.2)
		count := int64(0)
		for id := NodeID(0); id < 5; id++ {
			id := id
			nw.Register(id, func(from NodeID, m Message) {
				count++
				if count < 200 {
					to := NodeID(k.Rand().Intn(5))
					nw.Send(id, to, payload(k.Rand().Intn(1000)))
				}
			})
		}
		nw.Send(0, 1, payload(10))
		nw.Send(0, 2, payload(10))
		return k.Run(math.Inf(1)), count
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Errorf("nondeterministic: (%g,%d) vs (%g,%d)", t1, c1, t2, c2)
	}
}

func TestPropEventsFireInOrder(t *testing.T) {
	f := func(times []float64) bool {
		k := New(1)
		var fired []float64
		for _, tm := range times {
			tm := math.Abs(tm)
			if math.IsNaN(tm) || math.IsInf(tm, 0) {
				continue
			}
			k.At(tm, func() { fired = append(fired, tm) })
		}
		k.Run(math.Inf(1))
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKernelThroughput(b *testing.B) {
	k := New(1)
	b.ReportAllocs()
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			k.After(1, step)
		}
	}
	k.After(1, step)
	b.ResetTimer()
	k.Run(math.Inf(1))
}

func TestRestoreRevivesDelivery(t *testing.T) {
	k := New(1)
	nw := NewNetwork(k, nil)
	got := 0
	nw.Register(1, func(from NodeID, msg Message) { got++ })
	nw.Crash(1)
	nw.Send(0, 1, payload(1)) // down: vanishes
	k.At(5, func() { nw.Restore(1) })
	k.At(6, func() { nw.Send(0, 1, payload(1)) }) // back: delivered
	k.Run(math.Inf(1))
	if nw.Crashed(1) {
		t.Error("Crashed(1) after Restore")
	}
	if got != 1 {
		t.Errorf("delivered %d messages, want 1 (only the post-restore send)", got)
	}
	st := nw.Stats()
	if st.ToDead != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRestoreDeliversInFlightStale(t *testing.T) {
	// A message in flight across a crash+restore window is delivered: the
	// wire does not know the process was away. The restarted process must
	// tolerate this stale delivery.
	k := New(1)
	nw := NewNetwork(k, LinearLatency(10, 0)) // 10 s in flight
	got := 0
	nw.Register(1, func(from NodeID, msg Message) { got++ })
	nw.Send(0, 1, payload(1)) // arrives at t=10
	k.At(2, func() { nw.Crash(1) })
	k.At(5, func() { nw.Restore(1) })
	k.Run(math.Inf(1))
	if got != 1 {
		t.Errorf("stale in-flight message delivered %d times, want 1", got)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	k := New(3)
	nw := NewNetwork(k, nil)
	nw.SetDuplicate(1)
	got := 0
	nw.Register(1, func(from NodeID, msg Message) { got++ })
	const n = 50
	for i := 0; i < n; i++ {
		nw.Send(0, 1, payload(1))
	}
	k.Run(math.Inf(1))
	if got != 2*n {
		t.Errorf("delivered %d, want %d (every message duplicated)", got, 2*n)
	}
	st := nw.Stats()
	if st.Duplicated != n || st.Sent != n {
		t.Errorf("stats = %+v", st)
	}
}

func TestReorderIsBoundedAndReorders(t *testing.T) {
	k := New(7)
	nw := NewNetwork(k, LinearLatency(1e-3, 0))
	nw.SetReorder(0.5, 0.05)
	var order []int
	nw.Register(1, func(from NodeID, msg Message) { order = append(order, int(msg.Size())) })
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		k.At(float64(i)*1e-3, func() { nw.Send(0, 1, payload(i)) })
	}
	end := k.Run(math.Inf(1))
	if len(order) != n {
		t.Fatalf("delivered %d of %d", len(order), n)
	}
	swapped := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			swapped++
		}
	}
	if swapped == 0 {
		t.Error("no reordering observed at p=0.5")
	}
	// Bounded: the last send is at (n-1) ms; nothing may arrive later than
	// send + latency + window.
	if maxEnd := float64(n-1)*1e-3 + 1e-3 + 0.05; end > maxEnd+1e-9 {
		t.Errorf("delivery at %g exceeds the reorder bound %g", end, maxEnd)
	}
	if st := nw.Stats(); st.Reordered == 0 {
		t.Error("Reordered counter stayed zero")
	}
}

func TestReplayDeliversStaleCopy(t *testing.T) {
	k := New(9)
	nw := NewNetwork(k, nil)
	nw.SetReplay(1, 10)
	var times []float64
	nw.Register(1, func(from NodeID, msg Message) { times = append(times, k.Now()) })
	nw.Send(0, 1, payload(1))
	k.Run(math.Inf(1))
	if len(times) != 2 {
		t.Fatalf("delivered %d times, want original + replay", len(times))
	}
	if times[1] < 10 || times[1] > 20 {
		t.Errorf("replay arrived at %g, want within [10, 20]", times[1])
	}
	if st := nw.Stats(); st.Replayed != 1 {
		t.Errorf("Replayed = %d", st.Replayed)
	}
}

func TestChaosProbabilityValidation(t *testing.T) {
	nw := NewNetwork(New(1), nil)
	for _, f := range []func(){
		func() { nw.SetDuplicate(-0.1) },
		func() { nw.SetReorder(1.5, 1) },
		func() { nw.SetReplay(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range probability accepted")
				}
			}()
			f()
		}()
	}
}
