package sim

// The pre-ISSUE-5 event kernel, kept verbatim as a test-only reference (the
// same move internal/ctree made in PR 3): container/heap over boxed *event
// nodes, lazily-skipped cancellations, one allocation per event and per
// handle. The randomized equivalence property below drives it and the arena
// kernel through identical schedules and demands identical firing orders —
// the strongest guard we have that the allocation work changed nothing
// observable.

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

type refKernel struct {
	now    float64
	seq    uint64
	events refHeap
}

type refHandle struct{ cancelled bool }

type refEvent struct {
	time   float64
	seq    uint64
	fn     func()
	handle *refHandle
}

func (k *refKernel) At(t float64, fn func()) *refHandle {
	if t < k.now {
		panic("refsim: scheduling into the past")
	}
	ev := &refEvent{time: t, seq: k.seq, fn: fn, handle: &refHandle{}}
	k.seq++
	heap.Push(&k.events, ev)
	return ev.handle
}

func (k *refKernel) After(d float64, fn func()) *refHandle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

func (k *refKernel) Run(until float64) float64 {
	for len(k.events) > 0 {
		next := k.events[0]
		if next.time > until {
			break
		}
		heap.Pop(&k.events)
		if next.handle.cancelled {
			continue
		}
		k.now = next.time
		next.fn()
	}
	return k.now
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// scriptKernel is the least common denominator the equivalence driver
// needs: schedule, cancel, clock.
type scriptKernel interface {
	schedule(d float64, fn func()) (cancel func())
	now() float64
	run(until float64) float64
}

type arenaAdapter struct{ k *Kernel }

func (a arenaAdapter) schedule(d float64, fn func()) func() {
	ev := a.k.After(d, fn)
	return ev.Cancel
}
func (a arenaAdapter) now() float64              { return a.k.Now() }
func (a arenaAdapter) run(until float64) float64 { return a.k.Run(until) }

type refAdapter struct{ k *refKernel }

func (a refAdapter) schedule(d float64, fn func()) func() {
	h := a.k.After(d, fn)
	return func() { h.cancelled = true }
}
func (a refAdapter) now() float64              { return a.k.now }
func (a refAdapter) run(until float64) float64 { return a.k.Run(until) }

// playScript drives one kernel through a pseudo-random schedule derived
// from seed: events log their (id, time) on firing and, from inside their
// callbacks, schedule children and cancel random outstanding events —
// exactly the At/After/Cancel interleavings a simulation produces. The
// returned log is the kernel's complete observable behavior.
type firing struct {
	id int
	at float64
}

func playScript(k scriptKernel, seed int64) []firing {
	rng := rand.New(rand.NewSource(seed))
	var log []firing
	var cancels []func()
	nextID := 0
	budget := 400 // total events scheduled, bounding the run

	var schedule func(depth int)
	schedule = func(depth int) {
		if budget == 0 {
			return
		}
		budget--
		id := nextID
		nextID++
		// Durations draw from a tiny domain so simultaneous events (and
		// their FIFO tie-break) occur constantly, plus occasional zero
		// delays for fire-now-within-now chains.
		d := float64(rng.Intn(4)) * 0.25
		cancels = append(cancels, k.schedule(d, func() {
			log = append(log, firing{id: id, at: k.now()})
			for n := rng.Intn(3); n > 0 && depth < 12; n-- {
				schedule(depth + 1)
			}
			if len(cancels) > 0 && rng.Intn(3) == 0 {
				// Cancel a random outstanding (or spent — must be a no-op)
				// handle, sometimes twice.
				c := cancels[rng.Intn(len(cancels))]
				c()
				if rng.Intn(4) == 0 {
					c()
				}
			}
		}))
	}
	for i := 0; i < 40; i++ {
		schedule(0)
	}
	k.run(math.Inf(1))
	return log
}

// TestPropKernelMatchesReference: for random schedules, the arena kernel
// and the reference kernel fire the same events at the same times in the
// same order.
func TestPropKernelMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		got := playScript(arenaAdapter{k: New(1)}, seed)
		want := playScript(refAdapter{k: &refKernel{}}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d = %+v, reference %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestPropKernelMatchesReferenceUntil: the until cutoff leaves both kernels
// at the same clock with the same remaining behavior.
func TestPropKernelMatchesReferenceUntil(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, r := arenaAdapter{k: New(1)}, refAdapter{k: &refKernel{}}
		rng := rand.New(rand.NewSource(seed))
		var aLog, rLog []firing
		for i := 0; i < 100; i++ {
			d := float64(rng.Intn(8)) * 0.5
			i := i
			a.schedule(d, func() { aLog = append(aLog, firing{i, a.now()}) })
			r.schedule(d, func() { rLog = append(rLog, firing{i, r.now()}) })
		}
		for _, until := range []float64{1, 2.5, 3, math.Inf(1)} {
			at, rt := a.run(until), r.run(until)
			if at != rt {
				t.Fatalf("seed %d: Run(%g) = %g, reference %g", seed, until, at, rt)
			}
		}
		if len(aLog) != len(rLog) {
			t.Fatalf("seed %d: fired %d, reference %d", seed, len(aLog), len(rLog))
		}
		for i := range aLog {
			if aLog[i] != rLog[i] {
				t.Fatalf("seed %d: firing %d = %+v, reference %+v", seed, i, aLog[i], rLog[i])
			}
		}
	}
}
