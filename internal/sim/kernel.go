// Package sim is a deterministic discrete-event simulation kernel, the
// substitute for the Parsec simulation language the paper used (§6.2).
// Processes are modeled by objects whose interactions are timestamped
// message exchanges; virtual time advances from event to event, so 75
// simulated hours of B&B cost only as much wall-clock time as the events
// they contain.
//
// Determinism: a single seeded random source drives every stochastic choice
// (latencies, loss, peer selection through user code), and simultaneous
// events fire in schedule order, so a given (scenario, seed) pair always
// produces the same run — unlike the original Parsec experiments, ours are
// exactly reproducible.
package sim

import (
	"container/heap"
	"math"
	"math/rand"
)

// Kernel is the event scheduler. Create one with New, schedule events with
// At/After, then call Run. A Kernel is single-goroutine by construction.
type Kernel struct {
	now    float64
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	fired  uint64
}

// New returns a kernel at virtual time 0 with a deterministic random source.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Rand returns the kernel's random source. All stochastic decisions in a
// simulation must draw from it to keep runs reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Events returns the number of events fired so far.
func (k *Kernel) Events() uint64 { return k.fired }

// Event is a handle to a scheduled event; Cancel prevents it from firing.
type Event struct{ cancelled bool }

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it would silently reorder causality.
func (k *Kernel) At(t float64, fn func()) *Event {
	if t < k.now {
		panic("sim: scheduling into the past")
	}
	ev := &event{time: t, seq: k.seq, fn: fn, handle: &Event{}}
	k.seq++
	heap.Push(&k.events, ev)
	return ev.handle
}

// After schedules fn d seconds from now.
func (k *Kernel) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Run fires events in timestamp order until the queue drains or virtual time
// would exceed until (use math.Inf(1) for no limit). It returns the final
// virtual time.
func (k *Kernel) Run(until float64) float64 {
	for len(k.events) > 0 {
		next := k.events[0]
		if next.time > until {
			break
		}
		heap.Pop(&k.events)
		if next.handle.cancelled {
			continue
		}
		k.now = next.time
		k.fired++
		next.fn()
	}
	if math.IsInf(until, 1) || k.now > until {
		return k.now
	}
	return k.now
}

// Pending returns the number of scheduled (possibly cancelled) events.
func (k *Kernel) Pending() int { return len(k.events) }

type event struct {
	time   float64
	seq    uint64
	fn     func()
	handle *Event
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
