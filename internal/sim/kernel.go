// Package sim is a deterministic discrete-event simulation kernel, the
// substitute for the Parsec simulation language the paper used (§6.2).
// Processes are modeled by objects whose interactions are timestamped
// message exchanges; virtual time advances from event to event, so 75
// simulated hours of B&B cost only as much wall-clock time as the events
// they contain.
//
// Determinism: a single seeded random source drives every stochastic choice
// (latencies, loss, peer selection through user code), and simultaneous
// events fire in schedule order, so a given (scenario, seed) pair always
// produces the same run — unlike the original Parsec experiments, ours are
// exactly reproducible.
//
// The scheduler is allocation-free in steady state: events live in an
// index-addressed arena recycled through a free list, the priority queue is
// an inlined monomorphic 4-ary min-heap of arena indices (no interface
// boxing, no per-event heap nodes), and handles are generation-counted
// values, so schedule→fire→reclaim costs zero heap allocations once the
// arena is warm. Callback-free scheduling variants (Deliver, AfterArg) let
// hot callers avoid the per-event capture closure too.
package sim

import (
	"math"
	"math/rand"
)

// Kernel is the event scheduler. Create one with New, schedule events with
// At/After/AfterArg/Deliver, then call Run. A Kernel is single-goroutine by
// construction.
type Kernel struct {
	now   float64
	seq   uint64
	rng   *rand.Rand
	fired uint64

	// The arena holds every scheduled (and recycled) event; heap orders
	// live events by (time, seq) as indices into the arena; free lists
	// reclaimed slots. Cancelled events are removed from the heap eagerly,
	// so heap length is exactly the pending-event count and a cancelled
	// event pins neither queue space nor its callback.
	//
	// The arena is paged, not one contiguous slice: simulations spike to
	// millions of simultaneously-pending events (a termination broadcast
	// puts procs² messages in flight), and growing a contiguous arena
	// through that spike re-zeroes and copies hundreds of megabytes. A new
	// page costs one fixed-size allocation and touches nothing that exists.
	//
	// Each slot is split across two parallel page arrays: the 24-byte
	// pointer-free key (time, seq, heap position, generation) that the sift
	// loops chase, and the payload (callback, message) they never need.
	// The split keeps key pages out of the garbage collector's scan set
	// entirely and packs 3.6× more keys per cache line than whole slots
	// would, which is most of the kernel's speed at millions of pending
	// events.
	keys     []*keyPage
	payloads []*payloadPage
	arenaLen int32 // slots handed out so far (== high-water pending events)
	heap     []int32
	free     []int32

	hook func(t float64, seq uint64)
}

// Arena page geometry: 2048 slots per page (48 KB of keys, 128 KB of
// payloads).
const (
	pageShift = 11
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type keyPage [pageSize]slotKey
type payloadPage [pageSize]slotPayload

// key returns the ordering record for slot idx.
func (k *Kernel) key(idx int32) *slotKey {
	return &k.keys[idx>>pageShift][idx&pageMask]
}

// payload returns the callback record for slot idx.
func (k *Kernel) payload(idx int32) *slotPayload {
	return &k.payloads[idx>>pageShift][idx&pageMask]
}

// slot kinds: which payload fields of a slot are live.
const (
	kindFunc = iota // fn()
	kindArg         // argFn(arg)
	kindMsg         // h(from, msg)
)

// slotKey is the pointer-free half of an arena slot: everything the heap
// needs to order and address it. gen counts reuses of the slot so stale
// Event handles (fired or cancelled) are detected exactly.
type slotKey struct {
	time    float64
	seq     uint64
	heapPos int32
	gen     uint32
}

// slotPayload is what fires: a tagged union — exactly one of fn / argFn / h
// is set, per kind.
type slotPayload struct {
	fn    func()
	argFn func(int)
	arg   int
	h     Handler
	from  NodeID
	msg   Message
	kind  uint8
}

// New returns a kernel at virtual time 0 with a deterministic random source.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Rand returns the kernel's random source. All stochastic decisions in a
// simulation must draw from it to keep runs reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Events returns the number of events fired so far.
func (k *Kernel) Events() uint64 { return k.fired }

// SetFireHook installs fn to observe every fired event's (time, seq) just
// before its callback runs. The hook exists for golden event-order tests:
// hashing the observed stream pins the kernel's exact firing order across
// rewrites. A nil fn removes the hook.
func (k *Kernel) SetFireHook(fn func(t float64, seq uint64)) { k.hook = fn }

// Event is a value handle to a scheduled event; Cancel prevents it from
// firing. The zero Event is valid and cancels nothing. Handles stay safe
// after the event fires or its slot is reused: the generation counter makes
// a stale Cancel an exact no-op.
type Event struct {
	k   *Kernel
	idx int32
	gen uint32
}

// Cancel removes the event from the schedule: it will not fire, it no
// longer counts as pending, and its slot (and callback) are reclaimed
// immediately. Cancelling the zero Event, an already-fired event, or an
// already-cancelled event is a no-op.
func (e Event) Cancel() {
	k := e.k
	if k == nil {
		return
	}
	s := k.key(e.idx)
	if s.gen != e.gen {
		return // already fired, cancelled, or slot reused
	}
	pos := s.heapPos
	k.removeAt(pos)
	k.release(e.idx)
}

// alloc pops a free slot (or grows the arena) and stamps it with the next
// sequence number at time t. It returns the slot's index.
func (k *Kernel) alloc(t float64) int32 {
	if t < k.now {
		panic("sim: scheduling into the past")
	}
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		if int(k.arenaLen)>>pageShift == len(k.keys) {
			k.keys = append(k.keys, new(keyPage))
			k.payloads = append(k.payloads, new(payloadPage))
		}
		idx = k.arenaLen
		k.arenaLen++
	}
	s := k.key(idx)
	s.time = t
	s.seq = k.seq
	k.seq++
	k.push(idx)
	return idx
}

// release recycles a slot that left the heap (fired or cancelled): the
// generation bump invalidates outstanding handles, and the payload is
// cleared so the arena does not pin dead callbacks or messages.
func (k *Kernel) release(idx int32) {
	k.key(idx).gen++
	p := k.payload(idx)
	p.fn = nil
	p.argFn = nil
	p.h = nil
	p.msg = nil
	k.free = append(k.free, idx)
}

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it would silently reorder causality.
func (k *Kernel) At(t float64, fn func()) Event {
	idx := k.alloc(t)
	p := k.payload(idx)
	p.kind = kindFunc
	p.fn = fn
	return Event{k: k, idx: idx, gen: k.key(idx).gen}
}

// After schedules fn d seconds from now.
func (k *Kernel) After(d float64, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// AfterArg schedules fn(arg) d seconds from now. Passing the argument
// through the event instead of a capture closure lets hot call sites reuse
// one pre-bound callback for every schedule — zero allocations per event.
// The canonical use is an incarnation counter: a driver schedules
// AfterArg(d, n.doneFn, n.incarn) and the callback discards the fire if the
// process was reborn in between.
func (k *Kernel) AfterArg(d float64, fn func(int), arg int) Event {
	if d < 0 {
		d = 0
	}
	idx := k.alloc(k.now + d)
	p := k.payload(idx)
	p.kind = kindArg
	p.argFn = fn
	p.arg = arg
	return Event{k: k, idx: idx, gen: k.key(idx).gen}
}

// Deliver schedules h(from, msg) d seconds from now — the typed delivery
// event. The network schedules every message through this instead of a
// per-message capture closure; the payload rides in the pooled event slot.
func (k *Kernel) Deliver(d float64, h Handler, from NodeID, msg Message) Event {
	if d < 0 {
		d = 0
	}
	idx := k.alloc(k.now + d)
	p := k.payload(idx)
	p.kind = kindMsg
	p.h = h
	p.from = from
	p.msg = msg
	return Event{k: k, idx: idx, gen: k.key(idx).gen}
}

// Run fires events in (time, seq) order until the queue drains or the next
// event's time would exceed until (use math.Inf(1) for no limit). It
// returns the final virtual time — the time of the last event fired. When
// the queue drains before until, the clock does NOT advance to until: a
// drained schedule means nothing further can ever happen, so the run is
// over at the last event, and Pending()==0 tells the caller which case
// occurred.
func (k *Kernel) Run(until float64) float64 {
	for len(k.heap) > 0 {
		if k.key(k.heap[0]).time > until {
			break
		}
		k.step()
	}
	return k.now
}

// step fires the root of the heap: copy the payload out, recycle the slot
// BEFORE dispatching — the callback may schedule new events, and handing it
// this very slot back is what makes the steady-state cycle allocation-free.
func (k *Kernel) step() {
	idx := k.heap[0]
	s := k.key(idx)
	t, seq := s.time, s.seq
	p := k.payload(idx)
	kind := p.kind
	fn, argFn, arg := p.fn, p.argFn, p.arg
	h, from, msg := p.h, p.from, p.msg
	k.removeAt(0)
	k.release(idx)
	k.now = t
	k.fired++
	if k.hook != nil {
		k.hook(t, seq)
	}
	switch kind {
	case kindFunc:
		fn()
	case kindArg:
		argFn(arg)
	default:
		h(from, msg)
	}
}

// NextTime returns the virtual time of the earliest pending event, or
// +Inf when the queue is empty. The parallel coordinator uses it to compute
// the global lower bound T that anchors each conservative window.
func (k *Kernel) NextTime() float64 {
	if len(k.heap) == 0 {
		return math.Inf(1)
	}
	return k.key(k.heap[0]).time
}

// RunWindow fires events while their time is strictly below before and at
// most until, in (time, seq) order, and returns the new current time. It is
// Run restricted to the half-open window [now, min(before, until+)): the
// conservative-lookahead barrier guarantees no cross-shard message can
// arrive before the horizon, so everything strictly inside it is safe to
// fire without synchronization.
func (k *Kernel) RunWindow(before, until float64) float64 {
	for len(k.heap) > 0 {
		t := k.key(k.heap[0]).time
		if t >= before || t > until {
			break
		}
		k.step()
	}
	return k.now
}

// DeliverAt schedules h(from, msg) at absolute virtual time t, clamped to
// now — the cross-shard drain path: a mailbox message carries the absolute
// arrival time stamped by the sending shard, and the lookahead barrier
// guarantees t is (weakly) ahead of every receiving shard's clock.
func (k *Kernel) DeliverAt(t float64, h Handler, from NodeID, msg Message) Event {
	if t < k.now {
		t = k.now
	}
	idx := k.alloc(t)
	p := k.payload(idx)
	p.kind = kindMsg
	p.h = h
	p.from = from
	p.msg = msg
	return Event{k: k, idx: idx, gen: k.key(idx).gen}
}

// Pending returns the number of scheduled events still due to fire.
// Cancelled events are reclaimed eagerly and never counted.
func (k *Kernel) Pending() int { return len(k.heap) }

// --- the 4-ary min-heap -------------------------------------------------------
//
// The queue is a monomorphic 4-ary min-heap of arena indices ordered by
// (time, seq); seq breaks ties FIFO and is unique, so comparisons are
// strict. 4-ary beats binary here: sift-down — the hot direction, every
// fired event pays one — does ~half the levels for the same comparison
// count, and the child scan is four sequential slot reads. Each slot tracks
// its heap position so Cancel removes in O(log₄ n) without searching.

// push appends idx and restores the heap property upward.
func (k *Kernel) push(idx int32) {
	k.heap = append(k.heap, idx)
	k.siftUp(len(k.heap) - 1)
}

// removeAt deletes the entry at heap position pos (the slot itself is NOT
// released — Run still needs its payload; Cancel releases separately).
func (k *Kernel) removeAt(pos int32) {
	n := len(k.heap) - 1
	last := k.heap[n]
	k.heap = k.heap[:n]
	if int(pos) == n {
		return
	}
	k.heap[pos] = last
	k.key(last).heapPos = pos
	if !k.siftDown(int(pos)) {
		k.siftUp(int(pos))
	}
}

// siftUp moves heap[pos] toward the root until its parent is smaller. The
// moving entry's key is held in registers; comparisons are strict because
// seq is unique.
func (k *Kernel) siftUp(pos int) {
	h := k.heap
	idx := h[pos]
	s := k.key(idx)
	t, q := s.time, s.seq
	for pos > 0 {
		parent := (pos - 1) / 4
		p := k.key(h[parent])
		if p.time < t || (p.time == t && p.seq < q) {
			break
		}
		h[pos] = h[parent]
		p.heapPos = int32(pos)
		pos = parent
	}
	h[pos] = idx
	s.heapPos = int32(pos)
}

// siftDown moves heap[pos] toward the leaves, swapping with its smallest
// child while one is smaller. It reports whether the entry moved.
func (k *Kernel) siftDown(pos int) bool {
	h := k.heap
	n := len(h)
	idx := h[pos]
	s := k.key(idx)
	t, q := s.time, s.seq
	start := pos
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		bs := k.key(h[first])
		bt, bq := bs.time, bs.seq
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			cs := k.key(h[c])
			if cs.time < bt || (cs.time == bt && cs.seq < bq) {
				best, bs, bt, bq = c, cs, cs.time, cs.seq
			}
		}
		if t < bt || (t == bt && q < bq) {
			break
		}
		h[pos] = h[best]
		bs.heapPos = int32(pos)
		pos = best
	}
	h[pos] = idx
	s.heapPos = int32(pos)
	return pos > start
}
