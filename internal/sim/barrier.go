package sim

import "math"

// The conservative lookahead barrier.
//
// Safety argument: let T = min over shards of the earliest pending event
// time, and L = the mesh lookahead (static minimum cross-shard delay).
// Any event that fires in this window does so at some t ≥ T, and any
// cross-shard message it sends arrives at t + delay ≥ T + L. So every
// pending event with time strictly below the horizon H = T + L can be
// fired WITHOUT seeing any message the other shards have not sent yet:
// nothing that arrives later in wall-clock time can carry a virtual
// timestamp below H. Events at exactly H must wait — an event firing at
// exactly T on another shard can produce an arrival at exactly H.
//
// Progress: the shard holding T always qualifies (T < T + L since L > 0),
// so every round fires at least one event; the barrier cannot live-lock.

// meshCmd is one instruction to a shard worker: either "fire your events
// strictly below horizon (and at most until)" or "drain your inbound
// mailboxes into your kernel".
type meshCmd struct {
	horizon, until float64
	drain          bool
}

// Run advances the whole mesh until every shard's next event would exceed
// until (or nothing is pending), and returns the final virtual time — the
// max over shard clocks. With one shard there is nothing to synchronize:
// the single kernel runs its ordinary serial loop, producing the exact
// same event sequence a standalone Kernel would.
func (m *Mesh) Run(until float64) float64 {
	S := len(m.kernels)
	if S == 1 {
		// A 1-shard mesh never has cross-shard traffic (route() always
		// picks the local path), so plain Run is trajectory-identical.
		return m.kernels[0].Run(until)
	}
	m.startWorkers()
	defer m.stopWorkers()
	for {
		// Drain phase: shards with inbound mail schedule it into their
		// kernels, in parallel. Draining first picks up both mail produced
		// by the previous window AND mail enqueued before Run was called
		// (or left past a previous Run's deadline), so T below always sees
		// the true earliest pending work.
		busy := 0
		for s := range m.kernels {
			if m.hasInbound(s) {
				m.workers[s] <- meshCmd{drain: true}
				busy++
			}
		}
		for i := 0; i < busy; i++ {
			<-m.done
		}
		T := math.Inf(1)
		for _, k := range m.kernels {
			if t := k.NextTime(); t < T {
				T = t
			}
		}
		if T > until || math.IsInf(T, 1) {
			// Past the deadline, or every queue drained. The explicit Inf
			// check matters when until is itself +Inf (run to completion):
			// Inf > Inf is false.
			break
		}
		horizon := T + m.lookahead
		// Run phase: every shard with work inside the window fires in
		// parallel; cross-shard sends land in mailboxes. The channel
		// synchronization between the phases is what makes mailbox rows
		// single-writer-then-single-reader — never concurrent.
		busy = 0
		for s, k := range m.kernels {
			if t := k.NextTime(); t < horizon && t <= until {
				m.workers[s] <- meshCmd{horizon: horizon, until: until}
				busy++
			}
		}
		for i := 0; i < busy; i++ {
			<-m.done
		}
	}
	return m.Now()
}

// startWorkers launches one goroutine per shard, each serving commands for
// exactly its own kernel/network/mailbox row — the single-goroutine
// discipline every Kernel requires, preserved under parallelism.
func (m *Mesh) startWorkers() {
	S := len(m.kernels)
	m.workers = make([]chan meshCmd, S)
	m.done = make(chan int, S)
	for s := 0; s < S; s++ {
		cmd := make(chan meshCmd)
		m.workers[s] = cmd
		go func(s int, cmd chan meshCmd) {
			for c := range cmd {
				if c.drain {
					m.drain(s)
				} else {
					m.kernels[s].RunWindow(c.horizon, c.until)
				}
				m.done <- s
			}
		}(s, cmd)
	}
}

// stopWorkers shuts the worker goroutines down; the mesh can Run again.
func (m *Mesh) stopWorkers() {
	for _, cmd := range m.workers {
		close(cmd)
	}
	m.workers = nil
}
