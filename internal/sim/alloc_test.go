package sim

// Allocation regression guards for the event kernel (ISSUE 5): once the
// arena is warm, scheduling and firing events — through every variant: the
// compat closure path with a pre-bound callback, AfterArg, typed delivery,
// and cancellation — performs zero heap allocations. If a change
// legitimately needs to allocate here, it has to argue with this file
// first.

import (
	"math"
	"testing"
)

// TestScheduleFireSteadyStateAllocs: a warm schedule→fire→reclaim cycle is
// allocation-free for every scheduling variant.
func TestScheduleFireSteadyStateAllocs(t *testing.T) {
	k := New(1)
	fn := func() {}
	argFn := func(int) {}
	h := func(NodeID, Message) {}
	var msg Message = payload(1)
	warm := func() {
		for i := 0; i < 64; i++ {
			k.After(0.5, fn)
			k.AfterArg(0.25, argFn, i)
			k.Deliver(0.75, h, NodeID(i), msg)
		}
		k.Run(math.Inf(1))
	}
	warm() // grows arena pages, heap, and free list to steady-state size
	if avg := testing.AllocsPerRun(50, warm); avg > 0 {
		t.Errorf("steady-state schedule→fire→reclaim allocates: %.1f allocs per 192-event cycle, want 0", avg)
	}
}

// TestCancelSteadyStateAllocs: cancelling reclaims through the free list
// without allocating, including the handle itself (a value, not a boxed
// pointer).
func TestCancelSteadyStateAllocs(t *testing.T) {
	k := New(1)
	fn := func() {}
	cycle := func() {
		evs := [64]Event{}
		for i := range evs {
			evs[i] = k.After(1, fn)
		}
		for i := range evs {
			evs[i].Cancel()
		}
	}
	cycle()
	if avg := testing.AllocsPerRun(50, cycle); avg > 0 {
		t.Errorf("steady-state schedule→cancel allocates: %.1f allocs per 64-event cycle, want 0", avg)
	}
}

// TestNetworkSendSteadyStateAllocs: a warm Network delivers messages with
// zero allocations per send — the typed delivery event replaces the
// per-message capture closure.
func TestNetworkSendSteadyStateAllocs(t *testing.T) {
	k := New(1)
	nw := NewNetwork(k, PaperLatency())
	got := 0
	nw.Register(1, func(NodeID, Message) {})
	nw.Register(2, func(NodeID, Message) { got++ })
	var msg Message = payload(3)
	cycle := func() {
		for i := 0; i < 64; i++ {
			nw.Send(1, 2, msg)
		}
		k.Run(math.Inf(1))
	}
	cycle()
	if avg := testing.AllocsPerRun(50, cycle); avg > 0 {
		t.Errorf("steady-state Send→deliver allocates: %.1f allocs per 64-message cycle, want 0", avg)
	}
	if got == 0 {
		t.Fatal("nothing delivered")
	}
}
