// Package btree implements the paper's "basic trees" (§6.2): search trees
// recorded by executing branch and bound *without* eliminating unpromising
// nodes. Each node carries (1) an identifier — its index —, (2) its bound
// value, (3) the time needed to bound and expand it, and (4) whether the
// bound value is a feasible solution. The simulator replays B&B over a basic
// tree: bound values drive pruning and incumbent updates, time values drive
// the virtual clock, and the decompose operator is the recorded tree
// structure itself.
package btree

import (
	"fmt"
	"math"

	"gossipbnb/internal/code"
)

// NoChild marks an absent child in Node.Children.
const NoChild = int32(-1)

// Node is one recorded subproblem.
type Node struct {
	Bound     float64  // lower bound on the subtree's objective (minimization)
	Cost      float64  // seconds to compute the bound and expand the node
	Feasible  bool     // the bound value is itself a feasible solution
	BranchVar uint32   // condition variable branched on; meaningful when not a leaf
	Children  [2]int32 // indices of branch-0 and branch-1 children; NoChild if leaf
}

// Leaf reports whether the node was not decomposed.
func (n *Node) Leaf() bool { return n.Children[0] == NoChild && n.Children[1] == NoChild }

// Tree is a basic tree. Node 0 is the root. Trees are immutable after
// construction and safe for concurrent readers.
type Tree struct {
	Nodes []Node
}

// Size returns the number of recorded nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// Locate resolves a subproblem code to a node index by replaying its
// decisions from the root. It reports false if the code walks off the
// recorded tree or disagrees with a recorded branch variable — which, for
// codes produced by honest processes, cannot happen.
func (t *Tree) Locate(c code.Code) (int32, bool) {
	if len(t.Nodes) == 0 {
		return NoChild, false
	}
	idx := int32(0)
	for _, d := range c {
		n := &t.Nodes[idx]
		if n.Leaf() || n.BranchVar != d.Var {
			return NoChild, false
		}
		idx = n.Children[d.Branch&1]
		if idx == NoChild {
			return NoChild, false
		}
	}
	return idx, true
}

// CodeOf returns the code of node idx by searching from the root. It is
// O(size) and intended for tests and tooling, not the hot path.
func (t *Tree) CodeOf(idx int32) (code.Code, bool) {
	var found code.Code
	var walk func(i int32, prefix code.Code) bool
	walk = func(i int32, prefix code.Code) bool {
		if i == idx {
			found = prefix
			return true
		}
		n := &t.Nodes[i]
		for b := uint8(0); b < 2; b++ {
			if n.Children[b] != NoChild && walk(n.Children[b], prefix.Child(n.BranchVar, b)) {
				return true
			}
		}
		return false
	}
	if len(t.Nodes) == 0 || !walk(0, code.Root()) {
		return nil, false
	}
	return found, true
}

// Stats summarizes a tree.
type Stats struct {
	Size      int
	Leaves    int
	Feasible  int
	Depth     int
	TotalCost float64 // seconds of uniprocessor work if nothing is pruned
	MeanCost  float64
	Optimum   float64 // minimum feasible value; +Inf if none
}

// Stats computes summary statistics in one pass.
func (t *Tree) Stats() Stats {
	s := Stats{Optimum: math.Inf(1)}
	s.Size = len(t.Nodes)
	type frame struct {
		idx   int32
		depth int
	}
	if s.Size == 0 {
		return s
	}
	stack := []frame{{0, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.Nodes[f.idx]
		s.TotalCost += n.Cost
		if f.depth > s.Depth {
			s.Depth = f.depth
		}
		if n.Feasible {
			s.Feasible++
			if n.Bound < s.Optimum {
				s.Optimum = n.Bound
			}
		}
		if n.Leaf() {
			s.Leaves++
			continue
		}
		for b := 0; b < 2; b++ {
			if n.Children[b] != NoChild {
				stack = append(stack, frame{n.Children[b], f.depth + 1})
			}
		}
	}
	s.MeanCost = s.TotalCost / float64(s.Size)
	return s
}

// Validate checks structural invariants: child indices in range, each node
// referenced at most once, bounds non-decreasing from parent to child (a
// valid relaxation never loosens), and strictly positive costs.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("btree: empty tree")
	}
	seen := make([]bool, len(t.Nodes))
	seen[0] = true
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Cost <= 0 {
			return fmt.Errorf("btree: node %d has non-positive cost %g", i, n.Cost)
		}
		if math.IsNaN(n.Bound) {
			return fmt.Errorf("btree: node %d has NaN bound", i)
		}
		has0, has1 := n.Children[0] != NoChild, n.Children[1] != NoChild
		if has0 != has1 {
			return fmt.Errorf("btree: node %d has exactly one child (binary decomposition requires two)", i)
		}
		for b := 0; b < 2; b++ {
			ch := n.Children[b]
			if ch == NoChild {
				continue
			}
			if ch <= 0 || int(ch) >= len(t.Nodes) {
				return fmt.Errorf("btree: node %d child %d out of range: %d", i, b, ch)
			}
			if seen[ch] {
				return fmt.Errorf("btree: node %d referenced twice", ch)
			}
			seen[ch] = true
			if t.Nodes[ch].Bound+1e-9 < n.Bound {
				return fmt.Errorf("btree: node %d bound %g below parent %d bound %g",
					ch, t.Nodes[ch].Bound, i, n.Bound)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("btree: node %d unreachable", i)
		}
	}
	return nil
}

// SequentialResult reports a sequential replay of B&B over a basic tree.
type SequentialResult struct {
	Expanded int     // nodes whose cost was paid
	Optimum  float64 // best feasible value found (+Inf if none)
	Work     float64 // total seconds of node cost paid
}

// Sequential replays best-first B&B over the tree on one processor: the
// baseline against which the simulator's distributed executions are compared
// (uniprocessor execution time, expanded-node counts).
func Sequential(t *Tree) SequentialResult {
	type item struct {
		idx   int32
		bound float64
	}
	res := SequentialResult{Optimum: math.Inf(1)}
	if len(t.Nodes) == 0 {
		return res
	}
	// Binary heap on bound.
	h := []item{{0, t.Nodes[0].Bound}}
	pop := func() item {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && h[l].bound < h[m].bound {
				m = l
			}
			if r < len(h) && h[r].bound < h[m].bound {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	push := func(it item) {
		h = append(h, it)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p].bound <= h[i].bound {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for len(h) > 0 {
		it := pop()
		if it.bound >= res.Optimum {
			continue // eliminated
		}
		n := &t.Nodes[it.idx]
		res.Expanded++
		res.Work += n.Cost
		if n.Feasible && n.Bound < res.Optimum {
			res.Optimum = n.Bound
		}
		if n.Leaf() {
			continue
		}
		for b := 0; b < 2; b++ {
			ch := n.Children[b]
			if ch != NoChild && t.Nodes[ch].Bound < res.Optimum {
				push(item{ch, t.Nodes[ch].Bound})
			}
		}
	}
	return res
}
