package btree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/code"
)

func testRandom(seed int64, size int) *Tree {
	r := rand.New(rand.NewSource(seed))
	return Random(r, RandomConfig{
		Size:         size,
		Cost:         CostModel{Mean: 0.01, Sigma: 0.5},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
}

func TestRandomValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := testRandom(seed, 501)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tr.Size() < 501 {
			t.Errorf("seed %d: size %d < 501", seed, tr.Size())
		}
		s := tr.Stats()
		if s.Feasible == 0 {
			t.Errorf("seed %d: no feasible node", seed)
		}
		if math.IsInf(s.Optimum, 1) {
			t.Errorf("seed %d: no optimum", seed)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := testRandom(42, 301), testRandom(42, 301)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("sizes differ for identical seed")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestLocate(t *testing.T) {
	tr := testRandom(1, 201)
	// Every node must be locatable by its own code.
	for idx := int32(0); idx < int32(tr.Size()); idx++ {
		c, ok := tr.CodeOf(idx)
		if !ok {
			t.Fatalf("CodeOf(%d) failed", idx)
		}
		got, ok := tr.Locate(c)
		if !ok || got != idx {
			t.Fatalf("Locate(CodeOf(%d)) = %d, %v", idx, got, ok)
		}
	}
}

func TestLocateRejectsForeignCodes(t *testing.T) {
	tr := testRandom(2, 101)
	// A code with a bogus variable at the root must not resolve.
	bad := code.Root().Child(999999, 0)
	if _, ok := tr.Locate(bad); ok {
		t.Error("Locate accepted a code with a wrong branch variable")
	}
	// A code descending past a leaf must not resolve.
	c, _ := tr.CodeAt()
	idx := int32(0)
	for !tr.Nodes[idx].Leaf() {
		c = c.Child(tr.Nodes[idx].BranchVar, 0)
		idx = tr.Nodes[idx].Children[0]
	}
	deep := c.Child(123456, 1)
	if _, ok := tr.Locate(deep); ok {
		t.Error("Locate accepted a code descending past a leaf")
	}
}

func TestSequentialFindsOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := testRandom(seed, 801)
		want := tr.Stats().Optimum
		res := Sequential(tr)
		if res.Optimum != want {
			t.Errorf("seed %d: Sequential optimum %g, tree optimum %g", seed, res.Optimum, want)
		}
		if res.Expanded > tr.Size() {
			t.Errorf("seed %d: expanded %d > size %d", seed, res.Expanded, tr.Size())
		}
		if res.Expanded == 0 || res.Work <= 0 {
			t.Errorf("seed %d: empty replay: %+v", seed, res)
		}
	}
}

func TestSequentialPrunes(t *testing.T) {
	// With a generous bound spread, best-first replay should expand fewer
	// nodes than the full tree on most instances.
	pruned := 0
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr := Random(r, RandomConfig{
			Size:         2001,
			Cost:         CostModel{Mean: 0.01},
			BoundSpread:  5,
			FeasibleProb: 0.3,
		})
		if Sequential(tr).Expanded < tr.Size() {
			pruned++
		}
	}
	if pruned < 8 {
		t.Errorf("pruning helped on only %d/10 trees", pruned)
	}
}

func TestFromKnapsack(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	k := bnb.RandomKnapsack(r, 12)
	tr := FromKnapsack(k, r, CostModel{Mean: 0.01, Sigma: 0.5}, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Feasible == 0 {
		t.Fatal("knapsack tree has no feasible node")
	}
	// The replayed optimum must match the engine's direct answer.
	direct := bnb.Solve(k.Root(), bnb.Options{})
	replay := Sequential(tr)
	if math.Abs(replay.Optimum-direct.Value) > 1e-9 {
		t.Errorf("replayed optimum %g, engine %g", replay.Optimum, direct.Value)
	}
}

func TestFromKnapsackCapSeals(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	k := bnb.RandomKnapsack(r, 20)
	tr := FromKnapsack(k, r, CostModel{Mean: 0.01}, 500)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() > 500 {
		t.Errorf("size %d exceeds cap", tr.Size())
	}
	if tr.Stats().Feasible == 0 {
		t.Error("sealed tree has no feasible node")
	}
}

func TestStats(t *testing.T) {
	// Hand-built: root branches on x1 into two leaves; leaf 1 feasible.
	tr := &Tree{Nodes: []Node{
		{Bound: 0, Cost: 1, BranchVar: 1, Children: [2]int32{1, 2}},
		{Bound: 2, Cost: 2, Children: [2]int32{NoChild, NoChild}},
		{Bound: 3, Cost: 3, Feasible: true, Children: [2]int32{NoChild, NoChild}},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Size != 3 || s.Leaves != 2 || s.Feasible != 1 || s.Depth != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.TotalCost != 6 || s.Optimum != 3 {
		t.Errorf("TotalCost = %g, Optimum = %g", s.TotalCost, s.Optimum)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := func() *Tree {
		return &Tree{Nodes: []Node{
			{Bound: 0, Cost: 1, BranchVar: 1, Children: [2]int32{1, 2}},
			{Bound: 1, Cost: 1, Children: [2]int32{NoChild, NoChild}},
			{Bound: 1, Cost: 1, Feasible: true, Children: [2]int32{NoChild, NoChild}},
		}}
	}
	cases := map[string]func(*Tree){
		"one child":      func(t *Tree) { t.Nodes[0].Children[1] = NoChild },
		"out of range":   func(t *Tree) { t.Nodes[0].Children[1] = 99 },
		"self reference": func(t *Tree) { t.Nodes[0].Children[1] = 0 },
		"bound decrease": func(t *Tree) { t.Nodes[1].Bound = -5 },
		"zero cost":      func(t *Tree) { t.Nodes[2].Cost = 0 },
		"double parent":  func(t *Tree) { t.Nodes[0].Children[1] = 1 },
		"nan bound":      func(t *Tree) { t.Nodes[1].Bound = math.NaN() },
	}
	for name, corrupt := range cases {
		tr := base()
		corrupt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt tree", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline tree invalid: %v", err)
	}
}

func TestIORoundTrip(t *testing.T) {
	tr := testRandom(9, 301)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(tr.Nodes) {
		t.Fatalf("size %d != %d", len(got.Nodes), len(tr.Nodes))
	}
	for i := range tr.Nodes {
		if got.Nodes[i] != tr.Nodes[i] {
			t.Fatalf("node %d: %+v != %+v", i, got.Nodes[i], tr.Nodes[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a tree"))); err == nil {
		t.Error("Read accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("Read accepted empty input")
	}
	// Valid magic, truncated body.
	if _, err := Read(bytes.NewReader(append([]byte("GBBT1"), 200))); err == nil {
		t.Error("Read accepted truncated body")
	}
}

func TestSaveLoad(t *testing.T) {
	tr := testRandom(10, 101)
	path := t.TempDir() + "/tree.gbbt"
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != tr.Size() {
		t.Errorf("loaded size %d, want %d", got.Size(), tr.Size())
	}
}

func TestPropLocateInverseOfCodeOf(t *testing.T) {
	f := func(seed int64) bool {
		tr := testRandom(seed, 101)
		r := rand.New(rand.NewSource(seed ^ 0x5a5a))
		idx := int32(r.Intn(tr.Size()))
		c, ok := tr.CodeOf(idx)
		if !ok {
			return false
		}
		got, ok := tr.Locate(c)
		return ok && got == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropSequentialOptimumMatchesStats(t *testing.T) {
	f := func(seed int64) bool {
		tr := testRandom(seed, 401)
		return Sequential(tr).Optimum == tr.Stats().Optimum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPaperWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size trees in short mode")
	}
	small := PaperSmall(1)
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := small.Size(); s < 3500 || s > 3600 {
		t.Errorf("PaperSmall size = %d, want ≈3500", s)
	}
	tiny := Tiny(1)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
	st := small.Stats()
	if st.MeanCost < 0.005 || st.MeanCost > 0.02 {
		t.Errorf("PaperSmall mean cost = %g, want ≈0.01", st.MeanCost)
	}
}

func TestCostModelMean(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	cm := CostModel{Mean: 3.47, Sigma: 0.6}
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += cm.draw(r)
	}
	got := sum / float64(n)
	if math.Abs(got-3.47) > 0.15 {
		t.Errorf("empirical mean = %g, want ≈3.47", got)
	}
	if c := (CostModel{Mean: 2}).draw(r); c != 2 {
		t.Errorf("sigma=0 draw = %g, want exactly 2", c)
	}
}

func BenchmarkRandomGen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		testRandom(int64(i), 10001)
	}
}

func BenchmarkSequentialReplay(b *testing.B) {
	tr := testRandom(1, 20001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(tr)
	}
}
