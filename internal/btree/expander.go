package btree

import (
	"gossipbnb/internal/code"
	"gossipbnb/internal/protocol"
)

// Expander is the protocol.Expander over a recorded basic tree — the replay
// stand-in for re-deriving a subproblem from the initial data (§5.3.1).
// Sharing one adapter guarantees the simulator and the live runtime
// translate codes and branching outcomes identically, which is the parity
// invariant between them. For expansion that actually re-derives solver
// state from the initial problem data, see internal/bnb's code-driven
// expander.
type Expander struct{ Tree *Tree }

var _ protocol.Expander = Expander{}

// Locate implements protocol.Expander.
func (e Expander) Locate(c code.Code) (protocol.Item, bool) {
	idx, ok := e.Tree.Locate(c)
	if !ok {
		return protocol.Item{}, false
	}
	return protocol.Item{Code: c, Ref: idx, Bound: e.Tree.Nodes[idx].Bound}, true
}

// Root returns the seed item for the original problem.
func (e Expander) Root() protocol.Item {
	return protocol.Item{Code: code.Root(), Ref: 0, Bound: e.Tree.Nodes[0].Bound}
}

// Outcome translates the recorded node behind it into the core's branching
// outcome.
func (e Expander) Outcome(it protocol.Item) protocol.Outcome {
	tn := &e.Tree.Nodes[it.Ref]
	out := protocol.Outcome{Feasible: tn.Feasible, Value: tn.Bound}
	if tn.Leaf() {
		return out
	}
	out.Children = make([]protocol.Item, 0, 2)
	for b := uint8(0); b < 2; b++ {
		idx := tn.Children[b]
		out.Children = append(out.Children, protocol.Item{
			Code:  it.Code.Child(tn.BranchVar, b),
			Ref:   idx,
			Bound: e.Tree.Nodes[idx].Bound,
		})
	}
	return out
}
