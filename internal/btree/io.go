package btree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// magic identifies the basic-tree binary format; the trailing digit is the
// format version.
var magic = []byte("GBBT1")

// Write serializes the tree to w in a compact binary format.
func (t *Tree) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(t.Nodes))); err != nil {
		return err
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(n.Bound)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(n.Cost)); err != nil {
			return err
		}
		flags := byte(0)
		if n.Feasible {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := writeUvarint(uint64(n.BranchVar)); err != nil {
			return err
		}
		// Children stored +1 so NoChild (-1) encodes as 0.
		if err := writeUvarint(uint64(n.Children[0] + 1)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(n.Children[1] + 1)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a tree written by Write and validates it.
func Read(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("btree: read header: %w", err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("btree: bad magic %q", head)
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("btree: read size: %w", err)
	}
	if size > 1<<28 {
		return nil, fmt.Errorf("btree: implausible size %d", size)
	}
	t := &Tree{Nodes: make([]Node, size)}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("btree: node %d bound: %w", i, err)
		}
		n.Bound = math.Float64frombits(bits)
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("btree: node %d cost: %w", i, err)
		}
		n.Cost = math.Float64frombits(bits)
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("btree: node %d flags: %w", i, err)
		}
		n.Feasible = flags&1 != 0
		bv, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("btree: node %d branch var: %w", i, err)
		}
		n.BranchVar = uint32(bv)
		for b := 0; b < 2; b++ {
			c, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("btree: node %d child %d: %w", i, b, err)
			}
			n.Children[b] = int32(c) - 1
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Save writes the tree to a file.
func (t *Tree) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a tree from a file written by Save.
func Load(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
