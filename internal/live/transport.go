// Package live runs the paper's algorithm on real goroutines and channels
// instead of the virtual-time simulator: each process is a goroutine, each
// message a value on a channel, delays and losses are injected by an
// in-memory transport. This is the "real implementation" the paper defers
// (§6: "We use simulations rather than a real implementation...") — the same
// protocol logic, subjected to genuine concurrency and the race detector.
package live

import (
	"math/rand"
	"sync"
	"time"
)

// NodeID identifies a live node.
type NodeID int

// Message is any payload exchanged between nodes.
type Message interface{ Size() int }

// Envelope wraps a delivered message with its sender.
type Envelope struct {
	From NodeID
	Msg  Message
}

// Net is the transport a Cluster runs over: the in-memory Transport for
// single-process experiments, or TCPNetwork for real sockets.
type Net interface {
	// Register creates the inbox for id and returns its receive channel.
	Register(id NodeID) <-chan Envelope
	// Send queues msg for asynchronous delivery; it must never block the
	// caller and may drop silently (loss, crash, congestion).
	Send(from, to NodeID, msg Message)
	// Crash halts id: messages to and from it vanish.
	Crash(id NodeID)
	// Crashed reports whether id halted.
	Crashed(id NodeID) bool
	// Stats returns (messages sent, messages dropped, payload bytes).
	Stats() (sent, dropped, bytes int64)
	// Close releases transport resources after the run.
	Close()
}

var _ Net = (*Transport)(nil)

// Transport is an in-memory lossy, delaying network. It is safe for
// concurrent use.
type Transport struct {
	mu      sync.Mutex
	inboxes map[NodeID]chan Envelope
	crashed map[NodeID]bool
	timers  map[*time.Timer]struct{} // in-flight delayed deliveries
	closed  bool
	rng     *rand.Rand
	delay   func(bytes int) time.Duration
	loss    float64
	sent    int64
	dropped int64
	bytes   int64
}

// NewTransport creates a transport. delay maps message size to one-way
// latency (nil = none); loss is the independent drop probability.
func NewTransport(seed int64, delay func(bytes int) time.Duration, loss float64) *Transport {
	return &Transport{
		inboxes: map[NodeID]chan Envelope{},
		crashed: map[NodeID]bool{},
		timers:  map[*time.Timer]struct{}{},
		rng:     rand.New(rand.NewSource(seed)),
		delay:   delay,
		loss:    loss,
	}
}

// inboxCap is the buffered capacity of every node inbox; sends beyond it
// drop, like a congested receiver.
const inboxCap = 4096

// Register creates the inbox for id and returns it.
func (t *Transport) Register(id NodeID) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan Envelope, inboxCap)
	t.inboxes[id] = ch
	return ch
}

// Crash marks id as halted: messages to and from it vanish.
func (t *Transport) Crash(id NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.crashed[id] = true
}

// Crashed reports whether id halted.
func (t *Transport) Crashed(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed[id]
}

// Send queues msg for delivery. Lost messages, crashed or unregistered
// endpoints, and full inboxes all drop silently — the asynchronous model of
// §4 — but every message that vanishes is counted in Stats' dropped column,
// so loss metrics see congestion and crash losses, not just injected loss.
func (t *Transport) Send(from, to NodeID, msg Message) {
	t.mu.Lock()
	if t.closed || t.crashed[from] || t.crashed[to] {
		t.mu.Unlock()
		return
	}
	t.sent++
	t.bytes += int64(msg.Size())
	if t.loss > 0 && t.rng.Float64() < t.loss {
		t.dropped++
		t.mu.Unlock()
		return
	}
	ch := t.inboxes[to]
	if ch == nil {
		t.dropped++ // unregistered destination: the message vanishes
		t.mu.Unlock()
		return
	}
	var d time.Duration
	if t.delay != nil {
		d = t.delay(msg.Size())
	}
	env := Envelope{From: from, Msg: msg}
	if d <= 0 {
		t.mu.Unlock()
		t.deliver(ch, env, to)
		return
	}
	// Delayed delivery: register the timer so Close can stop it — an
	// untracked timer outlives the cluster and delivers into inboxes after
	// teardown.
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		t.mu.Lock()
		delete(t.timers, tm)
		closed := t.closed
		t.mu.Unlock()
		if closed {
			t.drop() // torn down mid-flight; Close lost the Stop race
			return
		}
		t.deliver(ch, env, to)
	})
	t.timers[tm] = struct{}{}
	t.mu.Unlock()
}

// deliver hands env to the inbox unless the destination crashed meanwhile;
// either way that the message vanishes, it is counted dropped.
func (t *Transport) deliver(ch chan Envelope, env Envelope, to NodeID) {
	if t.Crashed(to) {
		t.drop()
		return
	}
	select {
	case ch <- env:
	default:
		t.drop() // inbox overflow: drop, like a congested link
	}
}

func (t *Transport) drop() {
	t.mu.Lock()
	t.dropped++
	t.mu.Unlock()
}

// Stats returns (messages sent, messages dropped, payload bytes).
func (t *Transport) Stats() (sent, dropped, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.dropped, t.bytes
}

// Close implements Net: stop every pending delayed delivery so no timer
// goroutine outlives the cluster and delivers into a torn-down inbox.
// Stopped messages were sent but never arrived, so they count as dropped;
// a timer that already fired counts its own fate.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	pending := make([]*time.Timer, 0, len(t.timers))
	for tm := range t.timers {
		pending = append(pending, tm)
	}
	t.timers = map[*time.Timer]struct{}{}
	t.mu.Unlock()
	for _, tm := range pending {
		if tm.Stop() {
			t.drop()
		}
	}
}
