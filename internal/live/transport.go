// Package live runs the paper's algorithm on real goroutines and channels
// instead of the virtual-time simulator: each process is a goroutine, each
// message a value on a channel, delays and losses are injected by an
// in-memory transport. This is the "real implementation" the paper defers
// (§6: "We use simulations rather than a real implementation...") — the same
// protocol logic, subjected to genuine concurrency and the race detector.
package live

import (
	"math/rand"
	"sync"
	"time"
)

// NodeID identifies a live node.
type NodeID int

// Message is any payload exchanged between nodes.
type Message interface{ Size() int }

// Envelope wraps a delivered message with its sender.
type Envelope struct {
	From NodeID
	Msg  Message
}

// Net is the transport a Cluster runs over: the in-memory Transport for
// single-process experiments, or TCPNetwork for real sockets.
type Net interface {
	// Register creates the inbox for id and returns its receive channel.
	Register(id NodeID) <-chan Envelope
	// Send queues msg for asynchronous delivery; it must never block the
	// caller and may drop silently (loss, crash, congestion).
	Send(from, to NodeID, msg Message)
	// Crash halts id: messages to and from it vanish.
	Crash(id NodeID)
	// Crashed reports whether id halted.
	Crashed(id NodeID) bool
	// Stats returns (messages sent, messages dropped, payload bytes).
	Stats() (sent, dropped, bytes int64)
	// Close releases transport resources after the run.
	Close()
}

var _ Net = (*Transport)(nil)

// Transport is an in-memory lossy, delaying network. It is safe for
// concurrent use.
type Transport struct {
	mu      sync.Mutex
	inboxes map[NodeID]chan Envelope
	crashed map[NodeID]bool
	rng     *rand.Rand
	delay   func(bytes int) time.Duration
	loss    float64
	sent    int64
	dropped int64
	bytes   int64
}

// NewTransport creates a transport. delay maps message size to one-way
// latency (nil = none); loss is the independent drop probability.
func NewTransport(seed int64, delay func(bytes int) time.Duration, loss float64) *Transport {
	return &Transport{
		inboxes: map[NodeID]chan Envelope{},
		crashed: map[NodeID]bool{},
		rng:     rand.New(rand.NewSource(seed)),
		delay:   delay,
		loss:    loss,
	}
}

// Register creates the inbox for id and returns it.
func (t *Transport) Register(id NodeID) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan Envelope, 4096)
	t.inboxes[id] = ch
	return ch
}

// Crash marks id as halted: messages to and from it vanish.
func (t *Transport) Crash(id NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.crashed[id] = true
}

// Crashed reports whether id halted.
func (t *Transport) Crashed(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed[id]
}

// Send queues msg for delivery. Lost messages, crashed endpoints, and full
// inboxes all drop silently — the asynchronous model of §4.
func (t *Transport) Send(from, to NodeID, msg Message) {
	t.mu.Lock()
	if t.crashed[from] || t.crashed[to] {
		t.mu.Unlock()
		return
	}
	t.sent++
	t.bytes += int64(msg.Size())
	if t.loss > 0 && t.rng.Float64() < t.loss {
		t.dropped++
		t.mu.Unlock()
		return
	}
	ch := t.inboxes[to]
	var d time.Duration
	if t.delay != nil {
		d = t.delay(msg.Size())
	}
	t.mu.Unlock()
	if ch == nil {
		return
	}
	deliver := func() {
		if t.Crashed(to) {
			return
		}
		select {
		case ch <- Envelope{From: from, Msg: msg}:
		default: // inbox overflow: drop, like a congested link
		}
	}
	if d <= 0 {
		deliver()
		return
	}
	time.AfterFunc(d, deliver)
}

// Stats returns (messages sent, messages dropped, payload bytes).
func (t *Transport) Stats() (sent, dropped, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.dropped, t.bytes
}

// Close implements Net; the in-memory transport holds no resources.
func (t *Transport) Close() {}
