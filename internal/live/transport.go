// Package live runs the paper's algorithm on real goroutines and channels
// instead of the virtual-time simulator: each process is a goroutine, each
// message a value on a channel, delays and losses are injected by an
// in-memory transport. This is the "real implementation" the paper defers
// (§6: "We use simulations rather than a real implementation...") — the same
// protocol logic, subjected to genuine concurrency and the race detector.
package live

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gossipbnb/internal/nemesis"
	"gossipbnb/internal/protocol"
)

// NodeID identifies a live node.
type NodeID int

// Message is any payload exchanged between nodes.
type Message interface{ Size() int }

// Envelope wraps a delivered message with its sender.
type Envelope struct {
	From NodeID
	Msg  Message
}

// Net is the transport a Cluster runs over: the in-memory Transport for
// single-process experiments, or TCPNetwork for real sockets.
type Net interface {
	// Register creates the inbox for id and returns its receive channel.
	Register(id NodeID) <-chan Envelope
	// Restart revives a crashed id under its old identity and returns a
	// fresh, empty inbox: messages that arrived while it was down stay
	// lost, exactly like a machine rebooting.
	Restart(id NodeID) <-chan Envelope
	// Add creates a brand-new endpoint mid-run — elastic membership's join —
	// and returns its inbox, or nil if the transport is already closed. For
	// TCP it brings up a fresh listener whose address peers then learn via
	// the Hello/Welcome gossip.
	Add(id NodeID) <-chan Envelope
	// Learn records a dialable address gossiped for id. Transports that
	// route by identity alone (the in-memory one) ignore it.
	Learn(id NodeID, addr string)
	// AddrOf returns id's dialable address, or "" when unknown or when the
	// transport routes by identity.
	AddrOf(id NodeID) string
	// Send queues msg for asynchronous delivery; it must never block the
	// caller and may drop silently (loss, crash, congestion).
	Send(from, to NodeID, msg Message)
	// Crash halts id: messages to and from it vanish.
	Crash(id NodeID)
	// Crashed reports whether id halted.
	Crashed(id NodeID) bool
	// Exclude sets or clears failure-detector suppression of the directed
	// link from → to: while set, sends on it drop (counted under the
	// NetStats Suspect cause) — except Hello and Welcome, the §5.2
	// re-announcement path a falsely-excluded peer needs to get back in.
	Exclude(from, to NodeID, down bool)
	// Stats returns (messages sent, messages dropped, payload bytes).
	Stats() (sent, dropped, bytes int64)
	// NetStats returns the full traffic ledger with per-cause drop counts.
	NetStats() NetStats
	// ByKind returns the per-message-kind traffic breakdown.
	ByKind() KindStats
	// Close releases transport resources after the run.
	Close()
}

// NetStats is the structured traffic ledger of a live transport. Dropped is
// the total; the cause counters below it partition that total, mirroring the
// simulator's NetStats so figures can compare runtimes column for column.
type NetStats struct {
	Sent    int64
	Dropped int64
	Bytes   int64 // payload bytes of sent messages

	// Why dropped messages vanished:
	Lost      int64 // injected uniform loss model
	Cut       int64 // severed by a nemesis fault (partition, stall, flap)
	Suspect   int64 // suppressed: destination excluded by the failure detector
	Corrupt   int64 // destroyed in transit; on TCP, rejected by the frame CRC
	ToDead    int64 // receiver crashed or was replaced while in flight
	Congested int64 // receiver inbox overflow
	Unrouted  int64 // no endpoint, no known address, or dial failed
	Closed    int64 // transport torn down with the message in flight

	// Chaos-model injections (extra or delayed deliveries, not drops):
	Duplicated int64
	Reordered  int64
	Replayed   int64
}

// joinExempt reports whether msg belongs to the Hello/Welcome join
// handshake, which failure-detector link exclusion must never suppress: it
// is the one path a falsely-suspected peer can re-announce through.
func joinExempt(msg Message) bool {
	k := msgKind(msg)
	return k == protocol.KindHello || k == protocol.KindWelcome
}

// MsgKinds bounds the dense per-kind accounting arrays — the protocol
// codec's kind space; bucket 0 collects messages that expose no kind.
const MsgKinds = 16

// KindStats breaks sent traffic down by message kind, indexed by the codec
// kind byte (protocol.KindName labels them).
type KindStats struct {
	Sent  [MsgKinds]int64
	Bytes [MsgKinds]int64
}

// note tallies one sent message of size sz under kind k.
func (s *KindStats) note(k byte, sz int) {
	s.Sent[k]++
	s.Bytes[k] += int64(sz)
}

// msgKind resolves a message's accounting bucket.
func msgKind(msg Message) byte {
	if km, ok := msg.(interface{ Kind() byte }); ok {
		if k := km.Kind(); int(k) < MsgKinds {
			return k
		}
	}
	return 0
}

// Chaos parameterizes adversarial delivery: the duplicated, reordered, and
// replayed arrivals the asynchronous model of §4 permits but well-behaved
// transports rarely produce. The zero value is a well-behaved network.
type Chaos struct {
	// Duplicate is the independent probability a message is delivered twice.
	// The copy is scheduled with the base delay, so it races the original
	// only when the original was held back by Reorder (or by delivery-time
	// scheduling jitter).
	Duplicate float64
	// Reorder is the probability a message is held back by up to
	// ReorderWindow extra delay, letting later sends overtake it.
	// ReorderWindow 0 means 5 ms.
	Reorder       float64
	ReorderWindow time.Duration
	// Replay re-delivers a stale copy between ReplayDelay and 2·ReplayDelay
	// after the send; ReplayDelay 0 means 50 ms.
	Replay      float64
	ReplayDelay time.Duration
}

func (c Chaos) withDefaults() Chaos {
	for _, p := range [...]struct {
		what string
		p    float64
	}{{"duplicate", c.Duplicate}, {"reorder", c.Reorder}, {"replay", c.Replay}} {
		if p.p < 0 || p.p > 1 {
			panic(fmt.Sprintf("live: %s probability %g out of [0,1]", p.what, p.p))
		}
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = 5 * time.Millisecond
	}
	if c.ReplayDelay <= 0 {
		c.ReplayDelay = 50 * time.Millisecond
	}
	return c
}

var _ Net = (*Transport)(nil)

// Transport is an in-memory lossy, delaying network. It is safe for
// concurrent use.
type Transport struct {
	mu      sync.Mutex
	inboxes map[NodeID]chan Envelope
	crashed map[NodeID]bool
	excl    map[[2]NodeID]bool       // failure-detector link suppression
	timers  map[*time.Timer]struct{} // in-flight delayed deliveries
	closed  bool
	rng     *rand.Rand
	delay   func(bytes int) time.Duration
	loss    float64
	chaos   Chaos
	nem     *nemesis.Schedule
	stats   NetStats
	kinds   KindStats
}

// NewTransport creates a transport. delay maps message size to one-way
// latency (nil = none); loss is the independent drop probability.
func NewTransport(seed int64, delay func(bytes int) time.Duration, loss float64) *Transport {
	return &Transport{
		inboxes: map[NodeID]chan Envelope{},
		crashed: map[NodeID]bool{},
		excl:    map[[2]NodeID]bool{},
		timers:  map[*time.Timer]struct{}{},
		rng:     rand.New(rand.NewSource(seed)),
		delay:   delay,
		loss:    loss,
	}
}

// inboxCap is the buffered capacity of every node inbox; sends beyond it
// drop, like a congested receiver.
const inboxCap = 4096

// Register creates the inbox for id and returns it.
func (t *Transport) Register(id NodeID) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan Envelope, inboxCap)
	t.inboxes[id] = ch
	return ch
}

// Restart implements Net: revive a crashed node under its old identity with
// a fresh, empty inbox. Deliveries still in flight toward the old inbox are
// dropped — a rebooted machine does not receive what arrived while it was
// down.
func (t *Transport) Restart(id NodeID) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	delete(t.crashed, id)
	ch := make(chan Envelope, inboxCap)
	t.inboxes[id] = ch
	return ch
}

// Add implements Net: a brand-new endpoint joins mid-run. In memory that is
// just a fresh inbox; identity is the only address there is.
func (t *Transport) Add(id NodeID) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	ch := make(chan Envelope, inboxCap)
	t.inboxes[id] = ch
	return ch
}

// Learn implements Net: the in-memory transport routes by identity, so
// gossiped addresses carry no information for it.
func (t *Transport) Learn(NodeID, string) {}

// AddrOf implements Net: in-memory endpoints have no dialable address.
func (t *Transport) AddrOf(NodeID) string { return "" }

// SetChaos turns on adversarial delivery: duplicated, reordered, and
// replayed arrivals. Call it before the cluster starts sending.
func (t *Transport) SetChaos(c Chaos) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.chaos = c.withDefaults()
}

// ChaosStats returns how many extra or delayed deliveries the chaos model
// injected: (duplicated, reordered, replayed).
func (t *Transport) ChaosStats() (duplicated, reordered, replayed int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.Duplicated, t.stats.Reordered, t.stats.Replayed
}

// SetNemesis attaches a fault-injection schedule: every send is judged
// against it, and cut, delayed, or corrupted accordingly. Call it before the
// cluster starts sending.
func (t *Transport) SetNemesis(s *nemesis.Schedule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nem = s
}

// Exclude implements Net: failure-detector suppression of one directed link.
func (t *Transport) Exclude(from, to NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.excl[[2]NodeID{from, to}] = true
	} else {
		delete(t.excl, [2]NodeID{from, to})
	}
}

// Crash marks id as halted: messages to and from it vanish.
func (t *Transport) Crash(id NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.crashed[id] = true
}

// Crashed reports whether id halted.
func (t *Transport) Crashed(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed[id]
}

// Send queues msg for delivery. Lost messages, crashed or unregistered
// endpoints, and full inboxes all drop silently — the asynchronous model of
// §4 — but every message that vanishes is counted in Stats' dropped column,
// so loss metrics see congestion and crash losses, not just injected loss.
// Under a Chaos model a message may additionally be delivered twice, held
// back so later sends overtake it, or replayed stale much later.
func (t *Transport) Send(from, to NodeID, msg Message) {
	t.mu.Lock()
	if t.closed || t.crashed[from] || t.crashed[to] {
		t.mu.Unlock()
		return
	}
	t.stats.Sent++
	t.stats.Bytes += int64(msg.Size())
	t.kinds.note(msgKind(msg), msg.Size())
	if t.excl[[2]NodeID{from, to}] && !joinExempt(msg) {
		// The local failure detector excluded this destination; only the
		// Hello/Welcome re-announcement path stays open.
		t.dropLocked(&t.stats.Suspect)
		t.mu.Unlock()
		return
	}
	// Judging is lock-free in the schedule, so it can run under t.mu.
	verdict := t.nem.JudgeNow(int(from), int(to))
	if verdict.Cut {
		t.dropLocked(&t.stats.Cut)
		t.mu.Unlock()
		return
	}
	if t.loss > 0 && t.rng.Float64() < t.loss {
		t.dropLocked(&t.stats.Lost)
		t.mu.Unlock()
		return
	}
	ch := t.inboxes[to]
	if ch == nil {
		t.dropLocked(&t.stats.Unrouted) // unregistered destination
		t.mu.Unlock()
		return
	}
	if verdict.Corrupt > 0 && t.rng.Float64() < verdict.Corrupt {
		// The in-memory transport has no frames to damage, so an injected
		// corruption behaves as its TCP outcome would: the message dies in
		// transit and the corruption is counted.
		t.dropLocked(&t.stats.Corrupt)
		t.mu.Unlock()
		return
	}
	d := verdict.Delay
	if t.delay != nil {
		d += t.delay(msg.Size())
	}
	var scratch [3]time.Duration
	copies := scratch[:0]
	first := d
	if t.chaos.Reorder > 0 && t.rng.Float64() < t.chaos.Reorder {
		// Held back: messages sent after this one can overtake it.
		first += time.Duration(t.rng.Float64() * float64(t.chaos.ReorderWindow))
		t.stats.Reordered++
	}
	copies = append(copies, first)
	if t.chaos.Duplicate > 0 && t.rng.Float64() < t.chaos.Duplicate {
		copies = append(copies, d)
		t.stats.Duplicated++
	}
	if t.chaos.Replay > 0 && t.rng.Float64() < t.chaos.Replay {
		// A stale copy from the past surfaces long after both ends moved on.
		copies = append(copies, t.chaos.ReplayDelay+time.Duration(t.rng.Float64()*float64(t.chaos.ReplayDelay)))
		t.stats.Replayed++
	}
	env := Envelope{From: from, Msg: msg}
	immediate := 0
	for _, dc := range copies {
		if dc <= 0 {
			immediate++
			continue
		}
		t.scheduleLocked(ch, env, to, dc)
	}
	t.mu.Unlock()
	for i := 0; i < immediate; i++ {
		t.deliver(ch, env, to)
	}
}

// scheduleLocked registers one delayed delivery attempt; t.mu must be held.
// The timer is tracked so Close can stop it — an untracked timer outlives
// the cluster and delivers into inboxes after teardown.
func (t *Transport) scheduleLocked(ch chan Envelope, env Envelope, to NodeID, d time.Duration) {
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		t.mu.Lock()
		delete(t.timers, tm)
		if t.closed {
			t.dropLocked(&t.stats.Closed) // torn down; Close lost the Stop race
			t.mu.Unlock()
			return
		}
		t.mu.Unlock()
		t.deliver(ch, env, to)
	})
	t.timers[tm] = struct{}{}
}

// deliver hands env to the inbox unless the destination crashed — or crashed
// and was replaced by a restart's fresh inbox — meanwhile; either way that
// the message vanishes, it is counted dropped.
func (t *Transport) deliver(ch chan Envelope, env Envelope, to NodeID) {
	t.mu.Lock()
	stale := t.crashed[to] || t.inboxes[to] != ch
	t.mu.Unlock()
	if stale {
		t.drop(&t.stats.ToDead)
		return
	}
	select {
	case ch <- env:
	default:
		t.drop(&t.stats.Congested) // inbox overflow: a congested receiver
	}
}

// drop counts one vanished message under the given cause; dropLocked is the
// same with t.mu already held.
func (t *Transport) drop(cause *int64) {
	t.mu.Lock()
	t.dropLocked(cause)
	t.mu.Unlock()
}

func (t *Transport) dropLocked(cause *int64) {
	t.stats.Dropped++
	*cause++
}

// Stats returns (messages sent, messages dropped, payload bytes).
func (t *Transport) Stats() (sent, dropped, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.Sent, t.stats.Dropped, t.stats.Bytes
}

// NetStats implements Net.
func (t *Transport) NetStats() NetStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// ByKind implements Net.
func (t *Transport) ByKind() KindStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kinds
}

// Close implements Net: stop every pending delayed delivery so no timer
// goroutine outlives the cluster and delivers into a torn-down inbox.
// Stopped messages were sent but never arrived, so they count as dropped;
// a timer that already fired counts its own fate.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	pending := make([]*time.Timer, 0, len(t.timers))
	for tm := range t.timers {
		pending = append(pending, tm)
	}
	t.timers = map[*time.Timer]struct{}{}
	t.mu.Unlock()
	for _, tm := range pending {
		if tm.Stop() {
			t.drop(&t.stats.Closed)
		}
	}
}
