package live

import (
	"math/rand"
	"testing"
	"time"

	"gossipbnb/internal/btree"
	"gossipbnb/internal/protocol"
)

func liveTree(seed int64, size int) *btree.Tree {
	r := rand.New(rand.NewSource(seed))
	return btree.Random(r, btree.RandomConfig{
		Size:         size,
		Cost:         btree.CostModel{Mean: 0.02, Sigma: 0.3},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
}

func TestSingleNode(t *testing.T) {
	tr := liveTree(1, 101)
	cl := NewCluster(tr, Config{Nodes: 1, Seed: 1, TimeScale: 0.001})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
	if res.Expanded != tr.Size() {
		t.Errorf("Expanded = %d, want %d", res.Expanded, tr.Size())
	}
}

func TestFourNodes(t *testing.T) {
	tr := liveTree(2, 301)
	cl := NewCluster(tr, Config{Nodes: 4, Seed: 2, TimeScale: 0.001})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
	if res.Expanded < tr.Size() {
		t.Errorf("Expanded = %d < tree size %d", res.Expanded, tr.Size())
	}
	if res.MsgsSent == 0 || res.BytesSent == 0 {
		t.Error("no traffic")
	}
}

func TestWithLatencyAndLoss(t *testing.T) {
	tr := liveTree(3, 201)
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 3, TimeScale: 0.001,
		Delay: func(bytes int) time.Duration {
			return 200*time.Microsecond + time.Duration(bytes)*time.Microsecond
		},
		Loss: 0.05,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
}

func TestCrashRecovery(t *testing.T) {
	tr := liveTree(4, 301)
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 4, TimeScale: 0.002,
		RecoveryQuiet: 20 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	// Crash two of three nodes shortly after start; the survivor must
	// recover the lost work — the Figure 6 scenario in real time.
	time.AfterFunc(80*time.Millisecond, func() { cl.Crash(1) })
	time.AfterFunc(90*time.Millisecond, func() { cl.Crash(2) })
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("survivor did not finish correctly: %+v", res)
	}
}

func TestTimeoutReported(t *testing.T) {
	tr := liveTree(5, 2001)
	cl := NewCluster(tr, Config{
		Nodes: 2, Seed: 5, TimeScale: 0.01, // deliberately too slow
		Timeout: 50 * time.Millisecond,
	})
	res := cl.Run()
	if res.Terminated {
		t.Error("run reported termination despite timeout")
	}
}

func TestTransportStats(t *testing.T) {
	tr := NewTransport(1, nil, 0)
	ch := tr.Register(1)
	tr.Send(0, 1, protocol.WorkDeny{})
	select {
	case env := <-ch:
		if env.From != 0 {
			t.Errorf("From = %d", env.From)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	sent, dropped, bytes := tr.Stats()
	if want := int64(protocol.WorkDeny{}.Size()); sent != 1 || dropped != 0 || bytes != want {
		t.Errorf("stats = %d %d %d, want 1 0 %d", sent, dropped, bytes, want)
	}
}

func TestTransportCrashDrops(t *testing.T) {
	tr := NewTransport(1, nil, 0)
	ch := tr.Register(1)
	tr.Crash(1)
	tr.Send(0, 1, protocol.WorkDeny{})
	select {
	case <-ch:
		t.Error("delivered to crashed node")
	case <-time.After(20 * time.Millisecond):
	}
	if !tr.Crashed(1) || tr.Crashed(0) {
		t.Error("crash flags wrong")
	}
}

func TestTransportLoss(t *testing.T) {
	tr := NewTransport(7, nil, 1.0)
	tr.Register(1)
	for i := 0; i < 100; i++ {
		tr.Send(0, 1, protocol.WorkDeny{})
	}
	_, dropped, _ := tr.Stats()
	if dropped != 100 {
		t.Errorf("dropped = %d, want 100", dropped)
	}
}
