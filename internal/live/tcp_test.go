package live

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"gossipbnb/internal/btree"
	"gossipbnb/internal/code"
	"gossipbnb/internal/protocol"
)

func TestFrameRoundTrip(t *testing.T) {
	codes := []code.Code{
		code.Root(),
		code.Root().Child(1, 0).Child(2, 1),
	}
	cases := []Message{
		protocol.Report{Codes: codes, Incumbent: 3.5, ActAge: 1},
		protocol.TableMsg{Codes: codes, Incumbent: 9},
		protocol.WorkRequest{Incumbent: math.Inf(1)},
		protocol.WorkGrant{Codes: codes[1:], Incumbent: -2},
		protocol.WorkDeny{Incumbent: 0, ActAge: 4},
	}
	for _, msg := range cases {
		frame, err := appendFrame(nil, 7, msg)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		env, err := readFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%T: read: %v", msg, err)
		}
		if env.From != 7 {
			t.Errorf("%T: From = %d", msg, env.From)
		}
		switch want := msg.(type) {
		case protocol.Report:
			got := env.Msg.(protocol.Report)
			if got.Incumbent != want.Incumbent || got.ActAge != want.ActAge || len(got.Codes) != len(want.Codes) {
				t.Errorf("report mismatch: %+v vs %+v", got, want)
			}
			for i := range want.Codes {
				if !got.Codes[i].Equal(want.Codes[i]) {
					t.Errorf("report code %d mismatch", i)
				}
			}
		case protocol.TableMsg:
			if got := env.Msg.(protocol.TableMsg); len(got.Codes) != len(want.Codes) {
				t.Error("table codes mismatch")
			}
		case protocol.WorkRequest:
			if env.Msg.(protocol.WorkRequest).Incumbent != want.Incumbent {
				t.Error("request incumbent mismatch")
			}
		case protocol.WorkGrant:
			if got := env.Msg.(protocol.WorkGrant); len(got.Codes) != len(want.Codes) {
				t.Error("grant codes mismatch")
			}
		case protocol.WorkDeny:
			got := env.Msg.(protocol.WorkDeny)
			if got.Incumbent != want.Incumbent || got.ActAge != want.ActAge {
				t.Error("deny mismatch")
			}
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	if _, err := readFrame(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Zero-length frame.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Implausible length.
	if _, err := readFrame(bytes.NewReader([]byte{255, 255, 255, 255})); err == nil {
		t.Error("oversized frame accepted")
	}
	// Unknown message kind (frame layout: u32 len, uvarint from=1 byte,
	// then the codec's kind byte).
	frame, _ := appendFrame(nil, 1, protocol.WorkDeny{})
	frame[5] = 99
	if _, err := readFrame(bytes.NewReader(frame)); err == nil {
		t.Error("unknown message kind accepted")
	}
	// Trailing garbage after a valid payload.
	frame, _ = appendFrame(nil, 1, protocol.WorkDeny{})
	frame = append(frame, 0xAB)
	frame[0] += 1 // extend the declared body length over the garbage byte
	if _, err := readFrame(bytes.NewReader(frame)); err == nil {
		t.Error("trailing frame bytes accepted")
	}
	if _, err := appendFrame(nil, 1, nil); err == nil {
		t.Error("nil message marshalled")
	}
}

// TestFrameCRCRejectsEveryByteFlip fuzzes the CRC trailer: any single-byte
// damage past the length prefix — sender, payload, or the checksum itself —
// must be rejected, and always as a frame-local (recoverable) error, never
// one that would kill the connection.
func TestFrameCRCRejectsEveryByteFlip(t *testing.T) {
	frame, err := appendFrame(nil, 3, protocol.Report{
		Codes: []code.Code{code.Root(), code.Root().Child(1, 0)}, Incumbent: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		_, err := readFrame(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		if !errors.Is(err, errCorruptFrame) {
			t.Errorf("flip at byte %d is not frame-local: %v", i, err)
		}
	}
	// The undamaged frame still reads back, ruling out a test that passes
	// because everything is rejected.
	if _, err := readFrame(bytes.NewReader(frame)); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
}

func TestTCPDelivery(t *testing.T) {
	nw, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	inbox := nw.Register(1)
	nw.Send(0, 1, protocol.WorkDeny{Incumbent: 42})
	select {
	case env := <-inbox:
		if env.From != 0 {
			t.Errorf("From = %d", env.From)
		}
		if got := env.Msg.(protocol.WorkDeny).Incumbent; got != 42 {
			t.Errorf("incumbent = %g", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery over TCP")
	}
	sent, _, _ := nw.Stats()
	if sent != 1 {
		t.Errorf("sent = %d", sent)
	}
	if nw.Addr(0) == "" || nw.Addr(1) == "" {
		t.Error("missing listen addresses")
	}
}

func TestTCPManyMessagesOneConnection(t *testing.T) {
	nw, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	inbox := nw.Register(1)
	const n = 500
	for i := 0; i < n; i++ {
		nw.Send(0, 1, protocol.WorkRequest{Incumbent: float64(i)})
	}
	got := 0
	deadline := time.After(10 * time.Second)
	for got < n {
		select {
		case <-inbox:
			got++
		case <-deadline:
			t.Fatalf("received %d of %d", got, n)
		}
	}
}

func TestTCPCrashSilences(t *testing.T) {
	nw, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	inbox := nw.Register(1)
	nw.Crash(1)
	nw.Send(0, 1, protocol.WorkDeny{})
	select {
	case <-inbox:
		t.Error("delivered to crashed node")
	case <-time.After(100 * time.Millisecond):
	}
	if !nw.Crashed(1) {
		t.Error("Crashed(1) = false")
	}
}

func TestClusterOverTCP(t *testing.T) {
	tr := liveTree(21, 301)
	nw, err := NewTCPNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 21, TimeScale: 0.0005,
		Network: nw,
		Timeout: 60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("TCP cluster failed: %+v", res)
	}
	if res.MsgsSent == 0 {
		t.Error("no TCP traffic")
	}
}

func TestClusterOverTCPWithCrashes(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         301,
		Cost:         btree.CostModel{Mean: 0.02, Sigma: 0.3},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 22, TimeScale: 0.002,
		Network:       nw,
		RecoveryQuiet: 25 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	time.AfterFunc(60*time.Millisecond, func() { cl.Crash(1) })
	time.AfterFunc(70*time.Millisecond, func() { cl.Crash(2) })
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("TCP survivor failed: %+v", res)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	nw, err := NewTCPNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	nw.Close() // must not panic or deadlock
	nw.Send(0, 0, protocol.WorkDeny{})
	_, dropped, _ := nw.Stats()
	_ = dropped // sends after close are silently refused
}
