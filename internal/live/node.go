package live

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
	"gossipbnb/internal/protocol"
)

// Config parameterizes a live cluster.
type Config struct {
	Nodes int
	Seed  int64
	// TimeScale converts tree node costs (seconds) to real durations; e.g.
	// 0.001 runs a 10-second tree in ~10 ms of wall clock per process.
	TimeScale float64
	// Delay maps message size to latency (nil = none); Loss drops messages.
	// Both apply only to the default in-memory transport.
	Delay func(bytes int) time.Duration
	Loss  float64
	// Network overrides the transport; nil means an in-memory Transport
	// built from Seed/Delay/Loss. Pass a TCPNetwork to run over real
	// sockets. The cluster closes the network when Run returns.
	Network Net
	// Protocol parameters, as in the simulator.
	Select           protocol.SelectRule
	Prune            bool
	ReportBatch      int
	ReportFanout     int
	MinPoolToShare   int
	MaxShare         int
	RecoveryPatience int
	RetryDelay       time.Duration
	RecoveryQuiet    time.Duration
	// Timeout bounds Run's wall-clock time.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.001
	}
	// Protocol parameters (ReportBatch, MaxShare, …) are left at zero here:
	// protocol.Config applies the shared defaults, so the two runtimes
	// cannot drift apart. Only driver-read fields get defaults.
	if c.RetryDelay <= 0 {
		c.RetryDelay = 5 * time.Millisecond
	}
	if c.RecoveryQuiet <= 0 {
		c.RecoveryQuiet = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Result summarizes a live run.
type Result struct {
	Terminated bool
	Optimum    float64
	OptimumOK  bool
	Expanded   int
	Elapsed    time.Duration
	MsgsSent   int64
	BytesSent  int64
}

// liveNode is one goroutine-backed process: a protocol.Core plus the
// wall-clock substrate — real sleeps for subproblem costs, a channel inbox,
// and real elapsed time for the recovery quiet window. All protocol
// decisions live in the core, which is confined to this node's goroutine.
type liveNode struct {
	id    NodeID
	cl    *Cluster
	inbox <-chan Envelope
	core  *protocol.Core
	exp   protocol.Expander // this process's own code resolver

	crashed atomic.Bool
	done    atomic.Bool

	lastProbe time.Time // paces starvation probes RetryDelay apart

	// peersCache is the predetermined resource pool (every other process),
	// built once at construction: the view is static, the core reads it
	// without retaining or mutating it, and rebuilding it on every protocol
	// decision allocated O(nodes) per decision.
	peersCache []protocol.NodeID
}

// Cluster wires live nodes over a shared transport. It solves either a
// recorded basic tree (NewCluster: expansion sleeps the scaled recorded
// cost) or a code-driven problem (NewProblemCluster: expansion burns real
// CPU re-deriving bounds from the initial data).
type Cluster struct {
	cfg   Config
	tr    Net
	start time.Time
	nodes []*liveNode
	// sleepOf is the scaled seconds an expansion sleeps before the expander
	// computes the outcome; zero for code-driven problems, whose outcome
	// computation is itself the work.
	sleepOf func(it protocol.Item) float64
	// trueOpt is the single-processor reference optimum for OptimumOK.
	trueOpt float64
	wg      sync.WaitGroup
	doneCh  chan NodeID
	stopAll chan struct{}
	rngMu   sync.Mutex
	rngSeed int64
}

// liveClock is the cluster's shared protocol clock: wall-clock seconds
// since construction. The protocol never compares clocks across processes,
// only local differences, so one shared epoch is merely convenient.
type liveClock struct{ start time.Time }

func (c liveClock) Now() float64 { return time.Since(c.start).Seconds() }

// liveSender transmits a core's canonical messages over the cluster
// transport.
type liveSender struct{ n *liveNode }

func (s liveSender) Send(to protocol.NodeID, m protocol.Msg) {
	s.n.cl.tr.Send(s.n.id, NodeID(to), m)
}

// NewCluster builds a cluster replaying a recorded basic tree under cfg:
// each expansion sleeps the recorded node cost scaled by TimeScale.
func NewCluster(tree *btree.Tree, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	exp := btree.Expander{Tree: tree}
	return newCluster(cfg,
		func() protocol.Expander { return exp },
		func(it protocol.Item) float64 { return tree.Nodes[it.Ref].Cost * cfg.TimeScale },
		tree.Stats().Optimum)
}

// NewProblemCluster builds a cluster solving a code-driven problem from its
// initial data only — no recorded tree anywhere. Every process owns a bnb
// expander and burns real CPU per expansion re-deriving bounds and
// branching. The single-processor reference optimum is established first by
// the sequential engine, so Result.OptimumOK is a real cross-check.
func NewProblemCluster(p bnb.Problem, cfg Config) *Cluster {
	return NewProblemClusterRef(p, bnb.SolveProblem(p), cfg)
}

// NewProblemClusterRef is NewProblemCluster with a precomputed sequential
// reference, sparing callers that already solved the instance a second
// solve.
func NewProblemClusterRef(p bnb.Problem, ref bnb.Result, cfg Config) *Cluster {
	return newCluster(cfg.withDefaults(),
		func() protocol.Expander { return bnb.NewExpander(p) },
		nil,
		ref.Value)
}

// newCluster wires nodes over the transport; cfg already has defaults.
func newCluster(cfg Config, newExp func() protocol.Expander, sleepOf func(it protocol.Item) float64, trueOpt float64) *Cluster {
	tr := cfg.Network
	if tr == nil {
		tr = NewTransport(cfg.Seed, cfg.Delay, cfg.Loss)
	}
	cl := &Cluster{
		cfg:     cfg,
		tr:      tr,
		start:   time.Now(),
		sleepOf: sleepOf,
		trueOpt: trueOpt,
		doneCh:  make(chan NodeID, cfg.Nodes),
		stopAll: make(chan struct{}),
		rngSeed: cfg.Seed,
	}
	clock := liveClock{start: cl.start}
	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(i)
		n := &liveNode{id: id, cl: cl, inbox: cl.tr.Register(id), exp: newExp()}
		n.peersCache = make([]protocol.NodeID, 0, cfg.Nodes-1)
		for j := 0; j < cfg.Nodes; j++ {
			if j != i {
				n.peersCache = append(n.peersCache, protocol.NodeID(j))
			}
		}
		n.core = protocol.New(protocol.NodeID(id), protocol.Config{
			Select:           cfg.Select,
			Prune:            cfg.Prune,
			ReportBatch:      cfg.ReportBatch,
			ReportFanout:     cfg.ReportFanout,
			MinPoolToShare:   cfg.MinPoolToShare,
			MaxShare:         cfg.MaxShare,
			RecoveryPatience: cfg.RecoveryPatience,
			RecoveryQuiet:    cfg.RecoveryQuiet.Seconds(),
		}, protocol.Deps{
			Clock:     clock,
			Sender:    liveSender{n},
			Expander:  n.exp,
			Peers:     n.peers,
			Rand:      cl.rand,
			RandFloat: cl.randFloat,
		})
		cl.nodes = append(cl.nodes, n)
	}
	cl.nodes[0].core.Seed(cl.nodes[0].exp.Root())
	return cl
}

// Crash halts a node mid-run.
func (cl *Cluster) Crash(id NodeID) {
	if int(id) < len(cl.nodes) {
		cl.nodes[id].crashed.Store(true)
		cl.tr.Crash(id)
	}
}

// rand returns a pseudo-random int below n, safe for concurrent callers.
func (cl *Cluster) rand(n int) int {
	cl.rngMu.Lock()
	cl.rngSeed = cl.rngSeed*6364136223846793005 + 1442695040888963407
	v := int(uint64(cl.rngSeed>>33) % uint64(n))
	cl.rngMu.Unlock()
	return v
}

// randFloat returns a pseudo-random float64 in [0, 1), safe for concurrent
// callers.
func (cl *Cluster) randFloat() float64 {
	cl.rngMu.Lock()
	cl.rngSeed = cl.rngSeed*6364136223846793005 + 1442695040888963407
	v := float64(uint64(cl.rngSeed)>>11) / (1 << 53)
	cl.rngMu.Unlock()
	return v
}

// Run starts every node goroutine and blocks until all live nodes detect
// termination or the timeout expires.
func (cl *Cluster) Run() Result {
	start := time.Now()
	for _, n := range cl.nodes {
		cl.wg.Add(1)
		go n.run()
	}
	deadline := time.After(cl.cfg.Timeout)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	timedOut := false
loop:
	for {
		// Crashed nodes never signal, so completion is "every non-crashed
		// node detected termination", re-checked on every tick.
		allDone := true
		for _, n := range cl.nodes {
			if !n.crashed.Load() && !n.done.Load() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		select {
		case <-cl.doneCh:
		case <-tick.C:
		case <-deadline:
			timedOut = true
			break loop
		}
	}
	close(cl.stopAll)
	cl.wg.Wait()
	defer cl.tr.Close()

	res := Result{Elapsed: time.Since(start), Optimum: math.Inf(1)}
	crashedCount := 0
	terminatedAll := true
	for _, n := range cl.nodes {
		res.Expanded += n.core.Counters().Expanded
		if n.crashed.Load() {
			crashedCount++
			continue
		}
		if n.done.Load() {
			if opt := n.core.Incumbent(); opt < res.Optimum {
				res.Optimum = opt
			}
		} else {
			terminatedAll = false
		}
	}
	res.Terminated = terminatedAll && crashedCount < len(cl.nodes) && !timedOut
	res.OptimumOK = res.Terminated && res.Optimum == cl.trueOpt
	sent, _, bytes := cl.tr.Stats()
	res.MsgsSent, res.BytesSent = sent, bytes
	return res
}

// peers returns every other process (the predetermined resource pool of the
// paper's experiments, crashed members included — failures only manifest as
// unanswered requests).
func (n *liveNode) peers() []protocol.NodeID {
	return n.peersCache
}

// run is the node goroutine: alternate work and message handling, exactly
// the process model of §5.
func (n *liveNode) run() {
	defer n.cl.wg.Done()
	for {
		select {
		case <-n.cl.stopAll:
			return
		default:
		}
		if n.crashed.Load() {
			// A crashed process halts; drain nothing, say nothing.
			return
		}
		if n.done.Load() {
			// Terminated: keep handling messages — the core answers work
			// requests with the root report so stragglers terminate too.
			select {
			case env := <-n.inbox:
				n.handle(env)
			case <-n.cl.stopAll:
				return
			}
			continue
		}
		// Handle all pending messages.
		drained := false
		for !drained {
			select {
			case env := <-n.inbox:
				n.handle(env)
			default:
				drained = true
			}
		}
		it, st := n.core.Next()
		switch st {
		case protocol.Expand:
			n.expand(it)
		case protocol.Terminated:
			n.terminate()
		case protocol.Starved:
			n.starve()
		}
	}
}

// handle feeds one delivered message to the core.
func (n *liveNode) handle(env Envelope) protocol.Effect {
	pm, ok := env.Msg.(protocol.Msg)
	if !ok {
		return protocol.Effect{}
	}
	return n.core.HandleMessage(protocol.NodeID(env.From), pm)
}

// expand performs one unit of work: tree replays sleep the scaled recorded
// cost and then translate the recorded outcome; code-driven problems spend
// their time inside Outcome itself, re-deriving bounds from the initial
// data. Either way the elapsed seconds feed the core's adaptive pacing.
func (n *liveNode) expand(it protocol.Item) {
	sleep := 0.0
	if n.cl.sleepOf != nil {
		sleep = n.cl.sleepOf(it)
		time.Sleep(time.Duration(sleep * float64(time.Second)))
	}
	start := time.Now()
	out := n.exp.Outcome(it)
	if n.crashed.Load() {
		return
	}
	n.core.OnExpanded(it, out, sleep+time.Since(start).Seconds())
}

// starve runs the core's out-of-work decision, then supplies the substrate
// side: a bounded wait standing in for the simulator's request timer, or
// the complement recovery the core planned.
func (n *liveNode) starve() {
	// Pace probes RetryDelay apart no matter how full the inbox is — the
	// wall-clock analogue of the simulator's retry pacing. Without it a
	// cluster of starving processes answers every incoming message with a
	// fresh probe and storms itself at network speed.
	if wait := n.cl.cfg.RetryDelay - time.Since(n.lastProbe); wait > 0 {
		select {
		case env := <-n.inbox:
			n.handle(env)
			return
		case <-time.After(wait):
		case <-n.cl.stopAll:
			return
		}
	}
	switch n.core.Starve() {
	case protocol.StarveRecover:
		if plan := n.core.PlanRecovery(); len(plan) > 0 {
			n.core.Adopt(plan)
		}
	case protocol.StarveRequested:
		n.lastProbe = time.Now()
		// Wait for the answer — or anything else worth reacting to.
		select {
		case env := <-n.inbox:
			if eff := n.handle(env); !eff.Answered {
				// Not the answer; don't count a failed attempt, just
				// re-enter the loop (the next starve probes again).
				n.core.AbandonRequest()
			}
		case <-time.After(n.cl.cfg.RetryDelay):
			n.core.RequestFailed()
		case <-n.cl.stopAll:
		}
	case protocol.StarveWait:
		// Nothing to send (e.g. a lone process inside the quiet window):
		// pace the retry.
		select {
		case env := <-n.inbox:
			n.handle(env)
		case <-time.After(n.cl.cfg.RetryDelay):
		case <-n.cl.stopAll:
		}
	}
}

// terminate signals the cluster; the core already broadcast the final root
// report of §5.4.
func (n *liveNode) terminate() {
	if n.done.Swap(true) {
		return
	}
	n.cl.doneCh <- n.id
}
