package live

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/btree"
	"gossipbnb/internal/code"
	"gossipbnb/internal/instance"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/nemesis"
	"gossipbnb/internal/protocol"
)

// Config parameterizes a live cluster.
type Config struct {
	Nodes int
	Seed  int64
	// TimeScale converts tree node costs (seconds) to real durations; e.g.
	// 0.001 runs a 10-second tree in ~10 ms of wall clock per process.
	TimeScale float64
	// Delay maps message size to latency (nil = none); Loss drops messages.
	// Both apply only to the default in-memory transport.
	Delay func(bytes int) time.Duration
	Loss  float64
	// Chaos turns on adversarial delivery (duplication, bounded reordering,
	// stale replay). It applies only to the default in-memory transport; a
	// caller-supplied Network brings its own delivery model.
	Chaos Chaos
	// Network overrides the transport; nil means an in-memory Transport
	// built from Seed/Delay/Loss/Chaos. Pass a TCPNetwork to run over real
	// sockets. The cluster closes the network when Run returns.
	Network Net
	// Protocol parameters, as in the simulator.
	Select           protocol.SelectRule
	Prune            bool
	ReportBatch      int
	ReportFanout     int
	MinPoolToShare   int
	MaxShare         int
	RecoveryPatience int
	RetryDelay       time.Duration
	RecoveryQuiet    time.Duration
	// DiffGossip switches the report path to anti-entropy diff gossip, as in
	// the simulator's knob: digests plus deltas instead of full frontiers.
	DiffGossip bool
	// Timeout bounds Run's wall-clock time.
	Timeout time.Duration
	// Linger keeps a fully terminated cluster running this much longer
	// before Run returns, leaving a window for late Submits — without it
	// the run closes within one completion-check tick of the last instance
	// resolving. A submission during the window resets it.
	Linger time.Duration
	// SuspectAfter enables the failure detector: a peer silent this long is
	// suspected. Zero disables detection entirely — no per-peer tracking, no
	// heartbeats, no pings — keeping the failure-free path unchanged.
	SuspectAfter time.Duration
	// ExcludeAfter is the silence after which a suspect is excluded from the
	// local view (defaults to 4×SuspectAfter, never below SuspectAfter).
	// Exclusion is the same §5.2 view shrink a crash notification produces,
	// and is always revocable: any message from the peer re-absorbs it.
	ExcludeAfter time.Duration
	// HeartbeatEvery paces explicit Ping heartbeats on otherwise idle links
	// (defaults to SuspectAfter/3). Busy links never ping — every received
	// envelope is already evidence of life.
	HeartbeatEvery time.Duration
	// Nemesis injects scheduled faults (partitions, flaps, stalls, slow
	// links, corruption) into the transport; nil means none. The schedule is
	// armed when Run starts.
	Nemesis *nemesis.Schedule
	// OnDetect observes failure-detector transitions (suspected, cleared,
	// excluded, reabsorbed) across all nodes. Called from node goroutines —
	// handlers must be fast and concurrency-safe.
	OnDetect func(DetectEvent)
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.001
	}
	// Protocol parameters (ReportBatch, MaxShare, …) are left at zero here:
	// protocol.Config applies the shared defaults, so the two runtimes
	// cannot drift apart. Only driver-read fields get defaults.
	if c.RetryDelay <= 0 {
		c.RetryDelay = 5 * time.Millisecond
	}
	if c.RecoveryQuiet <= 0 {
		c.RecoveryQuiet = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.SuspectAfter > 0 {
		if c.ExcludeAfter <= 0 {
			c.ExcludeAfter = 4 * c.SuspectAfter
		} else if c.ExcludeAfter < c.SuspectAfter {
			c.ExcludeAfter = c.SuspectAfter
		}
		if c.HeartbeatEvery <= 0 {
			c.HeartbeatEvery = c.SuspectAfter / 3
		}
		if c.HeartbeatEvery <= 0 {
			c.HeartbeatEvery = time.Millisecond
		}
	}
	return c
}

// Result summarizes a live run.
type Result struct {
	Terminated bool
	Optimum    float64
	OptimumOK  bool
	Expanded   int
	Elapsed    time.Duration
	MsgsSent   int64
	BytesSent  int64
	// Kinds breaks the sent traffic down by message kind.
	Kinds KindStats
	// Net is the transport's full traffic ledger, per-cause drops included.
	Net NetStats
	// Health aggregates what the self-healing layer saw: frame-integrity
	// rejections, nemesis casualties, and detector transitions.
	Health metrics.NetHealth
}

// liveNode is one goroutine-backed process identity: it survives
// crash-restart cycles, while each reboot runs as a fresh incarnation — a
// new core, a new expander, a new inbox — on its own goroutine. All
// protocol decisions live in the core, which is confined to its
// incarnation's goroutine.
type liveNode struct {
	id NodeID
	cl *Cluster

	// mu guards cur, the incarnation whose core is the node's current
	// protocol state; Restart swaps it. The goroutine of a dead incarnation
	// may briefly keep running against its own (orphaned) core — gen tells
	// it to exit at the next loop turn.
	mu  sync.Mutex
	cur *incarnation
	gen atomic.Int64

	crashed atomic.Bool
	done    atomic.Bool

	// expanded counts expansions across all incarnations — a crashed
	// incarnation's work was really performed (and possibly reported), so
	// the cluster-level tally must not lose it.
	expanded atomic.Int64

	// view is the node's current peer view: the boot-time resource pool,
	// plus every member learned since via the Hello/Welcome join gossip. It
	// is a copy-on-write slice behind an atomic pointer — the core reads it
	// on every protocol decision with a single load, no lock and no
	// allocation on the send path, while joins (rare) copy and swap under
	// viewMu. A restarted process keeps its view — machine identity, not
	// incarnation state.
	view   atomic.Pointer[[]protocol.NodeID]
	viewMu sync.Mutex

	// Failure-detector tallies, summed across incarnations — a restart wipes
	// the detector's state but not what it observed.
	detSuspicions atomic.Int64
	detExclusions atomic.Int64
	detReabsorbed atomic.Int64
	detCleared    atomic.Int64
}

// incarnation is one boot of a liveNode: everything a crash wipes. The §5
// process model runs here, against this incarnation's own cores and inbox.
// The mux multiplexes the boot problem (instance 0, the legacy untagged
// wire) and every instance submitted mid-run over the one goroutine, one
// inbox, and one transport endpoint the process owns.
type incarnation struct {
	n     *liveNode
	gen   int64
	inbox <-chan Envelope
	mux   *instance.Mux
	core  *protocol.Core    // the boot instance's core (mux instance 0)
	exp   protocol.Expander // the boot instance's own code resolver

	// instEpoch is the submission-registry generation this incarnation last
	// synchronized with; it trails Cluster.instEpoch until the next
	// syncInstances poll.
	instEpoch int64

	lastProbe time.Time // paces starvation probes RetryDelay apart

	// contacts is non-nil on a joiner's first incarnation: the members it
	// announces itself to. Until one of them answers with a Welcome
	// (welcomed), the announcement is re-sent on the RetryDelay cadence —
	// the Hello, or its answer, can be lost like any message.
	contacts  []NodeID
	welcomed  bool
	lastHello time.Time

	// det is the incarnation's failure detector; nil when SuspectAfter is
	// zero. Confined to this incarnation's goroutine.
	det *detector
}

// Cluster wires live nodes over a shared transport. It solves either a
// recorded basic tree (NewCluster: expansion sleeps the scaled recorded
// cost) or a code-driven problem (NewProblemCluster: expansion burns real
// CPU re-deriving bounds from the initial data).
type Cluster struct {
	cfg    Config
	tr     Net
	start  time.Time
	clock  liveClock
	newExp func() protocol.Expander
	nodes  []*liveNode
	// sleepOf is the scaled seconds an expansion sleeps before the expander
	// computes the outcome; zero for code-driven problems, whose outcome
	// computation is itself the work.
	sleepOf func(it protocol.Item) float64
	// trueOpt is the single-processor reference optimum for OptimumOK.
	trueOpt float64
	wg      sync.WaitGroup
	doneCh  chan NodeID
	stopAll chan struct{}
	// stopMu orders Restart's wg.Add against Run's close(stopAll)+wg.Wait:
	// a restart racing the shutdown must either win the Add before the stop
	// flag is set or see it and spawn nothing. started gates Restart to the
	// running window — before Run spawns the boot incarnations, a restart
	// would double-drive the same core from two goroutines.
	stopMu  sync.Mutex
	started bool
	stopped bool
	rngMu   sync.Mutex
	rngSeed int64

	// Submitted-instance registry: specs grows append-only under instMu, and
	// instEpoch bumps on every change so node loops can poll for news with one
	// atomic load instead of a lock acquisition per turn.
	instMu    sync.Mutex
	specs     []*instSpec
	instEpoch atomic.Int64
}

// liveClock is the cluster's shared protocol clock: wall-clock seconds
// since construction. The protocol never compares clocks across processes,
// only local differences, so one shared epoch is merely convenient.
type liveClock struct{ start time.Time }

func (c liveClock) Now() float64 { return time.Since(c.start).Seconds() }

// instSender transmits one instance's canonical messages over the cluster
// transport, tagging them with the instance ID. Instance 0 — the boot
// problem — stays untagged, so a never-multiplexed cluster speaks the exact
// legacy wire format. Sends refresh the failure detector's per-link clock,
// so heartbeats only fill links the protocol leaves idle.
type instSender struct {
	inc *incarnation
	id  protocol.InstanceID
}

func (s instSender) Send(to protocol.NodeID, m protocol.Msg) {
	if s.id != 0 {
		m = protocol.InstMsg{Instance: s.id, Msg: m}
	}
	s.inc.det.noteSent(NodeID(to))
	n := s.inc.n
	n.cl.tr.Send(n.id, NodeID(to), m)
}

// NewCluster builds a cluster replaying a recorded basic tree under cfg:
// each expansion sleeps the recorded node cost scaled by TimeScale.
func NewCluster(tree *btree.Tree, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	exp := btree.Expander{Tree: tree}
	return newCluster(cfg,
		func() protocol.Expander { return exp },
		func(it protocol.Item) float64 { return tree.Nodes[it.Ref].Cost * cfg.TimeScale },
		tree.Stats().Optimum)
}

// NewProblemCluster builds a cluster solving a code-driven problem from its
// initial data only — no recorded tree anywhere. Every process owns a bnb
// expander and burns real CPU per expansion re-deriving bounds and
// branching. The single-processor reference optimum is established first by
// the sequential engine, so Result.OptimumOK is a real cross-check.
func NewProblemCluster(p bnb.Problem, cfg Config) *Cluster {
	return NewProblemClusterRef(p, bnb.SolveProblem(p), cfg)
}

// NewProblemClusterRef is NewProblemCluster with a precomputed sequential
// reference, sparing callers that already solved the instance a second
// solve.
func NewProblemClusterRef(p bnb.Problem, ref bnb.Result, cfg Config) *Cluster {
	return newCluster(cfg.withDefaults(),
		func() protocol.Expander { return bnb.NewExpander(p) },
		nil,
		ref.Value)
}

// newCluster wires nodes over the transport; cfg already has defaults.
func newCluster(cfg Config, newExp func() protocol.Expander, sleepOf func(it protocol.Item) float64, trueOpt float64) *Cluster {
	tr := cfg.Network
	if tr == nil {
		mem := NewTransport(cfg.Seed, cfg.Delay, cfg.Loss)
		if cfg.Chaos != (Chaos{}) {
			mem.SetChaos(cfg.Chaos)
		}
		tr = mem
	}
	if cfg.Nemesis != nil {
		if s, ok := tr.(interface{ SetNemesis(*nemesis.Schedule) }); ok {
			s.SetNemesis(cfg.Nemesis)
		}
	}
	cl := &Cluster{
		cfg:     cfg,
		tr:      tr,
		start:   time.Now(),
		newExp:  newExp,
		sleepOf: sleepOf,
		trueOpt: trueOpt,
		doneCh:  make(chan NodeID, cfg.Nodes),
		stopAll: make(chan struct{}),
		rngSeed: cfg.Seed,
	}
	cl.clock = liveClock{start: cl.start}
	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(i)
		n := &liveNode{id: id, cl: cl}
		view := make([]protocol.NodeID, 0, cfg.Nodes-1)
		for j := 0; j < cfg.Nodes; j++ {
			if j != i {
				view = append(view, protocol.NodeID(j))
			}
		}
		n.view.Store(&view)
		n.cur = cl.newIncarnation(n, 0, cl.tr.Register(id))
		cl.nodes = append(cl.nodes, n)
	}
	cl.nodes[0].cur.core.Seed(cl.nodes[0].cur.exp.Root())
	return cl
}

// newIncarnation builds one boot of a node: a fresh mux whose instance 0 is
// the boot problem's core over a fresh expander, fed from the given inbox —
// all the state the paper lets a process lose. Submitted instances are
// (re)opened lazily by syncInstances at the first loop turn.
func (cl *Cluster) newIncarnation(n *liveNode, gen int64, inbox <-chan Envelope) *incarnation {
	inc := &incarnation{n: n, gen: gen, inbox: inbox, exp: cl.newExp(), mux: instance.NewMux()}
	inc.core = cl.newCore(inc, inc.exp, 0)
	inc.mux.Open(0, inc.core, inc.exp)
	if cl.cfg.SuspectAfter > 0 {
		inc.det = newDetector(inc)
	}
	return inc
}

// newCore builds one instance's protocol core for an incarnation, its sends
// tagged with the instance ID.
func (cl *Cluster) newCore(inc *incarnation, exp protocol.Expander, id protocol.InstanceID) *protocol.Core {
	cfg := &cl.cfg
	n := inc.n
	return protocol.New(protocol.NodeID(n.id), protocol.Config{
		Select:           cfg.Select,
		Prune:            cfg.Prune,
		ReportBatch:      cfg.ReportBatch,
		ReportFanout:     cfg.ReportFanout,
		MinPoolToShare:   cfg.MinPoolToShare,
		MaxShare:         cfg.MaxShare,
		RecoveryPatience: cfg.RecoveryPatience,
		RecoveryQuiet:    cfg.RecoveryQuiet.Seconds(),
		DiffGossip:       cfg.DiffGossip,
	}, protocol.Deps{
		Clock:     cl.clock,
		Sender:    instSender{inc, id},
		Expander:  exp,
		Peers:     n.peers,
		Rand:      cl.rand,
		RandFloat: cl.randFloat,
	})
}

// Crash halts a node mid-run. It serializes with Restart under stopMu so a
// concurrent crash and rebirth of the same node cannot interleave their
// flag and transport updates into a half-dead state.
func (cl *Cluster) Crash(id NodeID) {
	cl.stopMu.Lock()
	if int(id) < len(cl.nodes) {
		cl.nodes[id].crashed.Store(true)
		cl.tr.Crash(id)
	}
	cl.stopMu.Unlock()
}

// Restart reboots a crashed node mid-run under its old identity: it
// re-registers through the transport (fresh inbox, and for TCP a fresh
// listener on its old address), re-enters the predetermined resource pool
// it never left — failures are not directly detectable, so peers kept
// probing it all along — and rebuilds its state purely from the reports,
// tables, and grants it receives. Restarting a node that is not crashed is
// a no-op.
func (cl *Cluster) Restart(id NodeID) {
	// The whole rebirth happens under stopMu: Run's completion check closes
	// the run under the same lock, so a restart either lands before it (the
	// run extends and waits for the reborn node) or sees stopped and leaves
	// every node untouched — never a half-revived node in a closed run.
	// (AddNode also appends to cl.nodes under this lock.)
	cl.stopMu.Lock()
	defer cl.stopMu.Unlock()
	if int(id) >= len(cl.nodes) {
		return
	}
	n := cl.nodes[id]
	if !n.crashed.Load() || n.done.Load() {
		// Never crashed, or crashed after terminating — a finished process
		// has already played its part in §5.4 and stays down.
		return
	}
	if !cl.started || cl.stopped {
		return // not running: the boot spawn or nothing would double-drive it
	}
	inbox := cl.tr.Restart(id)
	if inbox == nil {
		return // transport already torn down
	}
	// Bump the generation first: the dead incarnation's goroutine may still
	// be running, and must see itself orphaned before crashed clears.
	inc := cl.newIncarnation(n, n.gen.Add(1), inbox)
	n.mu.Lock()
	n.cur = inc
	n.mu.Unlock()
	n.crashed.Store(false)
	cl.wg.Add(1)
	go inc.run()
}

// AddNode grows a running cluster by one brand-new process — elastic
// membership's join, the live counterpart of the simulator's Join events.
// The node gets the next free identity and a fresh transport endpoint (for
// TCP, a fresh listener whose address spreads via the join gossip), starts
// with only the contacts in its view (default: node 0), and announces itself
// to them. The Hello flood absorbs it into every live peer view, the first
// Welcome triggers its completion-table bootstrap, and from then on it
// steals, expands, and reports like any boot-time member. AddNode only works
// on a running cluster; it returns the new identity.
func (cl *Cluster) AddNode(contacts ...NodeID) (NodeID, error) {
	cl.stopMu.Lock()
	defer cl.stopMu.Unlock()
	if !cl.started || cl.stopped {
		return 0, fmt.Errorf("live: AddNode on a cluster that is not running")
	}
	id := NodeID(len(cl.nodes))
	inbox := cl.tr.Add(id)
	if inbox == nil {
		return 0, fmt.Errorf("live: transport already closed")
	}
	if len(contacts) == 0 {
		contacts = []NodeID{0}
	}
	n := &liveNode{id: id, cl: cl}
	view := make([]protocol.NodeID, 0, len(contacts))
	for _, c := range contacts {
		if c != id {
			view = append(view, protocol.NodeID(c))
		}
	}
	n.view.Store(&view)
	inc := cl.newIncarnation(n, 0, inbox)
	inc.contacts = append([]NodeID(nil), contacts...)
	// Seed the remote-activity anchor: a joiner's empty table means "I know
	// nothing yet", not "the cluster is quiet" — without the anchor the
	// recovery path could adopt the complement of an empty table (the root)
	// and redo the whole tree.
	inc.core.NoteRemoteActivity(0)
	n.cur = inc
	cl.nodes = append(cl.nodes, n)
	cl.wg.Add(1)
	go inc.run()
	return id, nil
}

// allDone reports whether every non-crashed node detected termination of the
// boot problem and every submitted instance resolved.
func (cl *Cluster) allDone() bool {
	for _, n := range cl.nodes {
		if !n.crashed.Load() && !n.done.Load() {
			return false
		}
	}
	return cl.specsResolved()
}

// checkDone samples completion without closing anything.
func (cl *Cluster) checkDone() bool {
	cl.stopMu.Lock()
	defer cl.stopMu.Unlock()
	return cl.allDone()
}

// tryStop closes the run iff it is complete, deciding under stopMu so no
// Restart can revive a node between the verdict and the close.
func (cl *Cluster) tryStop() bool {
	cl.stopMu.Lock()
	defer cl.stopMu.Unlock()
	if !cl.allDone() {
		return false
	}
	if !cl.stopped {
		cl.stopped = true
		close(cl.stopAll)
	}
	return true
}

// stop closes the run unconditionally (timeout path).
func (cl *Cluster) stop() {
	cl.stopMu.Lock()
	if !cl.stopped {
		cl.stopped = true
		close(cl.stopAll)
	}
	cl.stopMu.Unlock()
}

// rand returns a pseudo-random int below n, safe for concurrent callers.
func (cl *Cluster) rand(n int) int {
	cl.rngMu.Lock()
	cl.rngSeed = cl.rngSeed*6364136223846793005 + 1442695040888963407
	v := int(uint64(cl.rngSeed>>33) % uint64(n))
	cl.rngMu.Unlock()
	return v
}

// randFloat returns a pseudo-random float64 in [0, 1), safe for concurrent
// callers.
func (cl *Cluster) randFloat() float64 {
	cl.rngMu.Lock()
	cl.rngSeed = cl.rngSeed*6364136223846793005 + 1442695040888963407
	v := float64(uint64(cl.rngSeed)>>11) / (1 << 53)
	cl.rngMu.Unlock()
	return v
}

// Run starts every node goroutine and blocks until all live nodes detect
// termination or the timeout expires.
func (cl *Cluster) Run() Result {
	start := time.Now()
	if cl.cfg.Nemesis != nil {
		// Fault windows are relative to the run, not to construction or the
		// first send.
		cl.cfg.Nemesis.Arm(start)
	}
	cl.stopMu.Lock()
	cl.started = true
	for _, n := range cl.nodes {
		cl.wg.Add(1)
		go n.cur.run()
	}
	cl.stopMu.Unlock()
	deadline := time.After(cl.cfg.Timeout)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	timedOut := false
	var idleSince time.Time
loop:
	for {
		// Crashed nodes never signal, so completion is "every non-crashed
		// node detected termination (and every submitted instance resolved)",
		// re-checked on every tick — under stopMu, so a Restart racing the
		// check either revives its node before the verdict (the loop keeps
		// waiting for it) or is refused. A Linger window holds a finished
		// cluster open for late submissions, which reset the window.
		cl.resolveInstances()
		if cl.checkDone() {
			if idleSince.IsZero() {
				idleSince = time.Now()
			}
			if time.Since(idleSince) >= cl.cfg.Linger && cl.tryStop() {
				break
			}
		} else {
			idleSince = time.Time{}
		}
		select {
		case <-cl.doneCh:
		case <-tick.C:
		case <-deadline:
			timedOut = true
			cl.stop()
			break loop
		}
	}
	cl.wg.Wait()
	defer cl.tr.Close()

	res := Result{Elapsed: time.Since(start), Optimum: math.Inf(1)}
	crashedCount := 0
	terminatedAll := true
	for _, n := range cl.nodes {
		res.Expanded += int(n.expanded.Load())
		n.mu.Lock()
		core := n.cur.core
		n.mu.Unlock()
		if n.crashed.Load() {
			crashedCount++
			continue
		}
		if n.done.Load() {
			if opt := core.Incumbent(); opt < res.Optimum {
				res.Optimum = opt
			}
		} else {
			terminatedAll = false
		}
	}
	res.Terminated = terminatedAll && crashedCount < len(cl.nodes) && !timedOut
	res.OptimumOK = res.Terminated && res.Optimum == cl.trueOpt
	sent, _, bytes := cl.tr.Stats()
	res.MsgsSent, res.BytesSent = sent, bytes
	res.Kinds = cl.tr.ByKind()
	res.Net = cl.tr.NetStats()
	res.Health = metrics.NetHealth{
		CorruptFrames: res.Net.Corrupt,
		CutMessages:   res.Net.Cut,
		SuspectDrops:  res.Net.Suspect,
	}
	for _, n := range cl.nodes {
		res.Health.Suspicions += n.detSuspicions.Load()
		res.Health.Exclusions += n.detExclusions.Load()
		res.Health.Reabsorbed += n.detReabsorbed.Load()
	}
	return res
}

// PeerView returns a copy of id's current peer view — the membership the
// node would steer work exchange by right now. Soak harnesses use it to
// assert no live node ends a healed run permanently excluded.
func (cl *Cluster) PeerView(id NodeID) []protocol.NodeID {
	cl.stopMu.Lock()
	defer cl.stopMu.Unlock()
	if int(id) >= len(cl.nodes) {
		return nil
	}
	return append([]protocol.NodeID(nil), cl.nodes[id].peers()...)
}

// peers returns the node's current view (crashed members included — failures
// only manifest as unanswered requests). The slice is immutable once
// published; the core reads it without retaining or mutating it.
func (n *liveNode) peers() []protocol.NodeID {
	return *n.view.Load()
}

// learnPeer absorbs a newly learned member into the view (copy-on-write).
// It reports whether the member was news — the signal to forward its Hello
// onward, flooding the join through the cluster from one contact.
func (n *liveNode) learnPeer(id protocol.NodeID) bool {
	if NodeID(id) == n.id {
		return false
	}
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	cur := *n.view.Load()
	for _, p := range cur {
		if p == id {
			return false
		}
	}
	next := make([]protocol.NodeID, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = id
	n.view.Store(&next)
	return true
}

// dropPeer removes an excluded member from the view (copy-on-write) — the
// detector-driven counterpart of the §5.2 view shrink a crash notification
// produces. Re-absorption undoes it via learnPeer.
func (n *liveNode) dropPeer(id protocol.NodeID) {
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	cur := *n.view.Load()
	for i, p := range cur {
		if p == id {
			next := make([]protocol.NodeID, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			n.view.Store(&next)
			return
		}
	}
}

// run is the incarnation goroutine: alternate work and message handling,
// exactly the process model of §5, round-robin across every instance the
// process hosts. It exits when the cluster stops, the node crashes, or a
// restart orphans this incarnation (the generation moved on).
func (inc *incarnation) run() {
	n := inc.n
	defer n.cl.wg.Done()
	for {
		select {
		case <-n.cl.stopAll:
			return
		default:
		}
		if n.gen.Load() != inc.gen {
			// A restart replaced this incarnation; its cores are orphans.
			return
		}
		if n.crashed.Load() {
			// A crashed process halts; drain nothing, say nothing.
			return
		}
		inc.maybeAnnounce()
		inc.det.tick()
		inc.syncInstances()
		// Handle all pending messages.
		drained := false
		for !drained {
			select {
			case env := <-inc.inbox:
				inc.handle(env)
			default:
				drained = true
			}
		}
		e, it, st := inc.mux.Next()
		switch st {
		case protocol.Expand:
			inc.expand(e, it)
		case protocol.Terminated:
			inc.noteTerminated(e)
		case protocol.Starved:
			inc.starve(e)
		case protocol.Idle:
			// Every hosted instance terminated and was reaped. Keep answering
			// stragglers from the tombstones, and wake on the RetryDelay
			// cadence to poll the registry for newly submitted instances.
			select {
			case env := <-inc.inbox:
				inc.handle(env)
			case <-time.After(n.cl.cfg.RetryDelay):
			case <-n.cl.stopAll:
				return
			}
		}
	}
}

// handle demultiplexes one delivered message to its instance's core and
// reports which instance it addressed. The membership handshake
// (Hello/Welcome) is driver business — views live in the driver, exactly as
// in the simulator — so those two kinds are intercepted before any core.
// Untagged messages are the boot problem's (instance 0); tagged ones route
// through the mux, with reaped instances answered from their tombstone and
// unknown ones triggering a registry poll — a submitted instance's traffic
// can outrun the submission epoch's propagation to this node.
func (inc *incarnation) handle(env Envelope) (protocol.InstanceID, protocol.Effect) {
	// Every delivered envelope is evidence its sender is alive — the
	// piggybacked heartbeat. This must precede routing: a suspect's work
	// request clears the suspicion before the core decides how to answer.
	inc.det.heard(env.From)
	switch m := env.Msg.(type) {
	case protocol.Hello:
		inc.onHello(env.From, m)
		return 0, protocol.Effect{}
	case protocol.Welcome:
		inc.onWelcome(env.From, m)
		return 0, protocol.Effect{}
	}
	pm, ok := env.Msg.(protocol.Msg)
	if !ok {
		return 0, protocol.Effect{}
	}
	var id protocol.InstanceID
	if im, ok := pm.(protocol.InstMsg); ok {
		id, pm = im.Instance, im.Msg
	}
	e, v := inc.mux.Route(id)
	if v == instance.RouteUnknown {
		inc.syncInstances()
		e, v = inc.mux.Route(id)
	}
	switch v {
	case instance.RouteOpen:
		return id, e.Core.HandleMessage(protocol.NodeID(env.From), pm)
	case instance.RouteReaped:
		// The instance finished here. A straggler's work request is answered
		// with the §5.4 root report carrying the final incumbent — the same
		// answer a terminated core gives — so the requester terminates too;
		// everything else about a finished instance is droppable.
		if _, isReq := pm.(protocol.WorkRequest); isReq {
			if tomb, ok := inc.mux.Reaped(id); ok {
				instSender{inc, id}.Send(protocol.NodeID(env.From),
					protocol.Report{Codes: []code.Code{code.Root()}, Incumbent: tomb})
			}
		}
	}
	return id, protocol.Effect{}
}

// noteTerminated finishes one instance on this node: the boot problem flips
// the node's done flag (the cluster-level termination signal), a submitted
// instance records its completion in the registry. Either way the instance
// is reaped — its completion tables go back to the shared pool, and its
// tombstone keeps answering straggler work requests.
func (inc *incarnation) noteTerminated(e *instance.Entry) {
	n := inc.n
	if e.ID == 0 {
		n.terminate()
	} else {
		n.cl.noteInstanceDone(e.ID, n.id, e.Core.Incumbent())
	}
	inc.mux.Reap(e.ID)
}

// onHello absorbs a join announcement (§5.2 over the canonical wire): learn
// the joiner's address and membership, answer with this node's own view so
// the joiner can populate its pool and bootstrap its table, and — when the
// joiner was news — forward the hello to the rest of the view, flooding the
// join through the cluster from a single contact. Views reached at different
// times stay inconsistent for a while; that is safe, as the resource pool
// only steers randomized work exchange (see the Chandra et al. note in
// member.go).
func (inc *incarnation) onHello(from NodeID, h protocol.Hello) {
	n := inc.n
	cl := n.cl
	cl.tr.Learn(NodeID(h.ID), h.Addr)
	fresh := n.learnPeer(h.ID)
	view := n.peers()
	peers := make([]protocol.Peer, 0, len(view)+1)
	peers = append(peers, protocol.Peer{ID: protocol.NodeID(n.id), Addr: cl.tr.AddrOf(n.id)})
	for _, p := range view {
		if p == h.ID {
			continue
		}
		peers = append(peers, protocol.Peer{ID: p, Addr: cl.tr.AddrOf(NodeID(p))})
	}
	cl.tr.Send(n.id, NodeID(h.ID), protocol.Welcome{
		Peers:     peers,
		Incumbent: inc.core.Incumbent(),
		ActAge:    inc.core.ActivityAge(),
	})
	if fresh {
		for _, p := range view {
			if p == h.ID || NodeID(p) == from {
				continue
			}
			cl.tr.Send(n.id, NodeID(p), h)
		}
	}
}

// onWelcome merges a join answer: the responder's whole view, addresses
// included. The responder's activity evidence anchors the fresh core's
// remote-activity clock (an empty table must not read as global quiescence),
// and until the first subtree lands the joiner pulls its completion-table
// bootstrap — the Full-root subtree transfer — from whoever welcomed it.
func (inc *incarnation) onWelcome(from NodeID, w protocol.Welcome) {
	n := inc.n
	for _, p := range w.Peers {
		n.cl.tr.Learn(NodeID(p.ID), p.Addr)
		n.learnPeer(p.ID)
	}
	inc.core.NoteRemoteActivity(w.ActAge)
	// A Welcome from a peer this detector recently re-absorbed answers our
	// probe after a severed link: both sides completed work the other never
	// heard about, so pull the Full-root subtree to catch up — the same
	// bootstrap a brand-new joiner does.
	if !inc.welcomed || inc.core.Table().Len() == 0 || inc.det.rejoining(from) {
		inc.welcomed = true
		inc.core.Bootstrap(protocol.NodeID(from))
	}
}

// maybeAnnounce is the joiner's half of the handshake: until somebody
// welcomes it, it re-announces itself to its contacts on the RetryDelay
// cadence.
func (inc *incarnation) maybeAnnounce() {
	if inc.contacts == nil || inc.welcomed {
		return
	}
	cl := inc.n.cl
	if time.Since(inc.lastHello) < cl.cfg.RetryDelay {
		return
	}
	inc.lastHello = time.Now()
	h := protocol.Hello{
		ID:        protocol.NodeID(inc.n.id),
		Addr:      cl.tr.AddrOf(inc.n.id),
		Incumbent: inc.core.Incumbent(),
		ActAge:    inc.core.ActivityAge(),
	}
	for _, c := range inc.contacts {
		cl.tr.Send(inc.n.id, c, h)
	}
}

// expand performs one unit of work for one instance: tree replays (only ever
// the boot instance) sleep the scaled recorded cost and then translate the
// recorded outcome; code-driven problems spend their time inside Outcome
// itself, re-deriving bounds from the initial data. Either way the elapsed
// seconds feed the instance core's adaptive pacing.
func (inc *incarnation) expand(e *instance.Entry, it protocol.Item) {
	sleep := 0.0
	if e.ID == 0 && inc.n.cl.sleepOf != nil {
		sleep = inc.n.cl.sleepOf(it)
		time.Sleep(time.Duration(sleep * float64(time.Second)))
	}
	start := time.Now()
	out := e.Exp.Outcome(it)
	if inc.n.crashed.Load() || inc.n.gen.Load() != inc.gen {
		return // the work died with this incarnation
	}
	e.Core.OnExpanded(it, out, sleep+time.Since(start).Seconds())
	inc.n.expanded.Add(1)
	if sp, ok := e.Data.(*instSpec); ok {
		sp.expanded.Add(1)
	}
}

// starve runs one starving instance's out-of-work decision, then supplies
// the substrate side: a bounded wait standing in for the simulator's request
// timer, or the complement recovery the core planned. The mux only reaches
// here when no hosted instance can expand, so the bounded blocking never
// withholds the processor from runnable work.
func (inc *incarnation) starve(e *instance.Entry) {
	n := inc.n
	// Pace probes RetryDelay apart no matter how full the inbox is — the
	// wall-clock analogue of the simulator's retry pacing. Without it a
	// cluster of starving processes answers every incoming message with a
	// fresh probe and storms itself at network speed. The pace is shared
	// across the node's instances: it bounds the process's probe rate.
	if wait := n.cl.cfg.RetryDelay - time.Since(inc.lastProbe); wait > 0 {
		select {
		case env := <-inc.inbox:
			inc.handle(env)
			return
		case <-time.After(wait):
		case <-n.cl.stopAll:
			return
		}
	}
	switch e.Core.Starve() {
	case protocol.StarveRecover:
		if plan := e.Core.PlanRecovery(); len(plan) > 0 {
			e.Core.Adopt(plan)
		}
	case protocol.StarveRequested:
		inc.lastProbe = time.Now()
		// Wait for the answer — or anything else worth reacting to.
		select {
		case env := <-inc.inbox:
			if id, eff := inc.handle(env); id != e.ID || !eff.Answered {
				// Not this instance's answer; don't count a failed attempt,
				// just re-enter the loop (the next starve probes again).
				e.Core.AbandonRequest()
			}
		case <-time.After(n.cl.cfg.RetryDelay):
			e.Core.RequestFailed()
		case <-n.cl.stopAll:
		}
	case protocol.StarveWait:
		// Nothing to send (e.g. a lone process inside the quiet window):
		// pace the retry.
		select {
		case env := <-inc.inbox:
			inc.handle(env)
		case <-time.After(n.cl.cfg.RetryDelay):
		case <-n.cl.stopAll:
		}
	}
}

// terminate signals the cluster; the core already broadcast the final root
// report of §5.4.
func (n *liveNode) terminate() {
	if n.done.Swap(true) {
		return
	}
	select {
	case n.cl.doneCh <- n.id:
	default: // Run's ticker re-checks completion anyway
	}
}
