package live

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gossipbnb/internal/btree"
	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
)

// Config parameterizes a live cluster.
type Config struct {
	Nodes int
	Seed  int64
	// TimeScale converts tree node costs (seconds) to real durations; e.g.
	// 0.001 runs a 10-second tree in ~10 ms of wall clock per process.
	TimeScale float64
	// Delay maps message size to latency (nil = none); Loss drops messages.
	// Both apply only to the default in-memory transport.
	Delay func(bytes int) time.Duration
	Loss  float64
	// Network overrides the transport; nil means an in-memory Transport
	// built from Seed/Delay/Loss. Pass a TCPNetwork to run over real
	// sockets. The cluster closes the network when Run returns.
	Network Net
	// Protocol parameters, as in the simulator.
	ReportBatch   int
	ReportFanout  int
	RetryDelay    time.Duration
	RecoveryQuiet time.Duration
	// Timeout bounds Run's wall-clock time.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.001
	}
	if c.ReportBatch <= 0 {
		c.ReportBatch = 8
	}
	if c.ReportFanout <= 0 {
		c.ReportFanout = 2
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 5 * time.Millisecond
	}
	if c.RecoveryQuiet <= 0 {
		c.RecoveryQuiet = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Result summarizes a live run.
type Result struct {
	Terminated bool
	Optimum    float64
	OptimumOK  bool
	Expanded   int
	Elapsed    time.Duration
	MsgsSent   int64
	BytesSent  int64
}

// message types (sizes mirror the simulator's wire model)

type liveReport struct {
	codes     []code.Code
	incumbent float64
}

func (m liveReport) Size() int {
	n := 9
	for _, c := range m.codes {
		n += c.WireSize()
	}
	return n
}

type liveRequest struct{ incumbent float64 }

func (liveRequest) Size() int { return 9 }

type liveGrant struct {
	codes     []code.Code
	incumbent float64
}

func (m liveGrant) Size() int {
	n := 9
	for _, c := range m.codes {
		n += c.WireSize()
	}
	return n
}

type liveDeny struct{ incumbent float64 }

func (liveDeny) Size() int { return 9 }

// liveNode is one goroutine-backed process.
type liveNode struct {
	id      NodeID
	cl      *Cluster
	inbox   <-chan Envelope
	pool    []poolEntry // managed as a heap by the node goroutine only
	table   *ctree.Table
	outbox  *ctree.Table
	incum   float64
	crashed atomic.Bool
	done    atomic.Bool

	failedReqs   int
	lastProgress time.Time
	expanded     int
}

type poolEntry struct {
	c     code.Code
	idx   int32
	bound float64
}

// Cluster wires live nodes over a shared transport.
type Cluster struct {
	cfg     Config
	tree    *btree.Tree
	tr      Net
	nodes   []*liveNode
	wg      sync.WaitGroup
	doneCh  chan NodeID
	stopAll chan struct{}
	peersMu sync.Mutex
	rngMu   sync.Mutex
	rngSeed int64
}

// NewCluster builds a cluster solving tree under cfg.
func NewCluster(tree *btree.Tree, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	tr := cfg.Network
	if tr == nil {
		tr = NewTransport(cfg.Seed, cfg.Delay, cfg.Loss)
	}
	cl := &Cluster{
		cfg:     cfg,
		tree:    tree,
		tr:      tr,
		doneCh:  make(chan NodeID, cfg.Nodes),
		stopAll: make(chan struct{}),
		rngSeed: cfg.Seed,
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(i)
		n := &liveNode{
			id:           id,
			cl:           cl,
			inbox:        cl.tr.Register(id),
			table:        ctree.New(),
			outbox:       ctree.New(),
			incum:        math.Inf(1),
			lastProgress: time.Now(),
		}
		cl.nodes = append(cl.nodes, n)
	}
	cl.nodes[0].pool = []poolEntry{{c: code.Root(), idx: 0, bound: tree.Nodes[0].Bound}}
	return cl
}

// Crash halts a node mid-run.
func (cl *Cluster) Crash(id NodeID) {
	if int(id) < len(cl.nodes) {
		cl.nodes[id].crashed.Store(true)
		cl.tr.Crash(id)
	}
}

// rand returns a pseudo-random int below n, safe for concurrent callers.
func (cl *Cluster) rand(n int) int {
	cl.rngMu.Lock()
	cl.rngSeed = cl.rngSeed*6364136223846793005 + 1442695040888963407
	v := int(uint64(cl.rngSeed>>33) % uint64(n))
	cl.rngMu.Unlock()
	return v
}

// Run starts every node goroutine and blocks until all live nodes detect
// termination or the timeout expires.
func (cl *Cluster) Run() Result {
	start := time.Now()
	for _, n := range cl.nodes {
		cl.wg.Add(1)
		go n.run()
	}
	deadline := time.After(cl.cfg.Timeout)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	timedOut := false
loop:
	for {
		// Crashed nodes never signal, so completion is "every non-crashed
		// node detected termination", re-checked on every tick.
		allDone := true
		for _, n := range cl.nodes {
			if !n.crashed.Load() && !n.done.Load() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		select {
		case <-cl.doneCh:
		case <-tick.C:
		case <-deadline:
			timedOut = true
			break loop
		}
	}
	close(cl.stopAll)
	cl.wg.Wait()
	defer cl.tr.Close()

	res := Result{Elapsed: time.Since(start), Optimum: math.Inf(1)}
	crashedCount := 0
	terminatedAll := true
	for _, n := range cl.nodes {
		res.Expanded += n.expanded
		if n.crashed.Load() {
			crashedCount++
			continue
		}
		if n.done.Load() {
			if n.incum < res.Optimum {
				res.Optimum = n.incum
			}
		} else {
			terminatedAll = false
		}
	}
	res.Terminated = terminatedAll && crashedCount < len(cl.nodes) && !timedOut
	res.OptimumOK = res.Terminated && res.Optimum == cl.tree.Stats().Optimum
	sent, _, bytes := cl.tr.Stats()
	res.MsgsSent, res.BytesSent = sent, bytes
	return res
}

// run is the node goroutine: alternate work and message handling, exactly
// the process model of §5.
func (n *liveNode) run() {
	defer n.cl.wg.Done()
	for {
		select {
		case <-n.cl.stopAll:
			return
		default:
		}
		if n.crashed.Load() {
			// A crashed process halts; drain nothing, say nothing.
			return
		}
		if n.done.Load() {
			// Terminated: keep answering work requests with the root report
			// so stragglers can terminate too.
			select {
			case env := <-n.inbox:
				if _, ok := env.Msg.(liveRequest); ok {
					n.cl.tr.Send(n.id, env.From, liveReport{codes: []code.Code{code.Root()}, incumbent: n.incum})
				}
			case <-n.cl.stopAll:
				return
			}
			continue
		}
		// Handle all pending messages.
		drained := false
		for !drained {
			select {
			case env := <-n.inbox:
				n.handle(env)
			default:
				drained = true
			}
		}
		if n.table.Complete() {
			n.terminate()
			continue
		}
		if it, ok := n.popWork(); ok {
			n.expand(it)
			continue
		}
		n.starve()
	}
}

// popWork pops the best pool entry not already completed elsewhere.
func (n *liveNode) popWork() (poolEntry, bool) {
	for len(n.pool) > 0 {
		best := 0
		for i := range n.pool {
			if n.pool[i].bound < n.pool[best].bound {
				best = i
			}
		}
		it := n.pool[best]
		n.pool = append(n.pool[:best], n.pool[best+1:]...)
		if n.table.Contains(it.c) {
			continue
		}
		return it, true
	}
	return poolEntry{}, false
}

// expand sleeps the scaled node cost and applies the branching outcome.
func (n *liveNode) expand(it poolEntry) {
	tn := &n.cl.tree.Nodes[it.idx]
	time.Sleep(time.Duration(tn.Cost * n.cl.cfg.TimeScale * float64(time.Second)))
	if n.crashed.Load() {
		return
	}
	n.expanded++
	if tn.Feasible && tn.Bound < n.incum {
		n.incum = tn.Bound
	}
	if tn.Leaf() {
		n.complete(it.c)
		return
	}
	for b := uint8(0); b < 2; b++ {
		childCode := it.c.Child(tn.BranchVar, b)
		if n.table.Contains(childCode) {
			continue
		}
		childIdx := tn.Children[b]
		n.pool = append(n.pool, poolEntry{c: childCode, idx: childIdx, bound: n.cl.tree.Nodes[childIdx].Bound})
	}
}

// complete records a completion and ships reports when the batch fills.
func (n *liveNode) complete(c code.Code) {
	if changed, err := n.table.Insert(c); err != nil || !changed {
		return
	}
	n.outbox.Insert(c)
	if n.outbox.Len() >= n.cl.cfg.ReportBatch {
		n.sendReport()
	}
}

func (n *liveNode) sendReport() {
	codes := n.outbox.Codes()
	if len(codes) == 0 || len(n.cl.nodes) == 1 {
		n.outbox = ctree.New()
		return
	}
	n.outbox = ctree.New()
	msg := liveReport{codes: codes, incumbent: n.incum}
	for i := 0; i < n.cl.cfg.ReportFanout; i++ {
		n.cl.tr.Send(n.id, n.randomPeer(), msg)
	}
}

func (n *liveNode) randomPeer() NodeID {
	p := NodeID(n.cl.rand(len(n.cl.nodes) - 1))
	if p >= n.id {
		p++
	}
	return p
}

// starve requests work, pushes the table (spreading completion info), and
// falls back to complement recovery after a quiet period.
func (n *liveNode) starve() {
	if len(n.cl.nodes) == 1 {
		n.recoverLost()
		return
	}
	if n.outbox.Len() > 0 {
		n.sendReport()
	}
	peer := n.randomPeer()
	n.cl.tr.Send(n.id, peer, liveRequest{incumbent: n.incum})
	if n.failedReqs > 0 {
		n.cl.tr.Send(n.id, n.randomPeer(), liveReport{codes: n.table.Codes(), incumbent: n.incum})
	}
	// Wait for an answer or anything else.
	select {
	case env := <-n.inbox:
		n.handle(env)
	case <-time.After(n.cl.cfg.RetryDelay):
		n.failedReqs++
	case <-n.cl.stopAll:
		return
	}
	if len(n.pool) == 0 && n.failedReqs >= 3 &&
		time.Since(n.lastProgress) > n.cl.cfg.RecoveryQuiet {
		n.recoverLost()
	}
}

// recoverLost adopts uncompleted problems from the table complement.
func (n *liveNode) recoverLost() {
	for _, c := range n.table.Complement(4) {
		if idx, ok := n.cl.tree.Locate(c); ok && !n.table.Contains(c) {
			n.pool = append(n.pool, poolEntry{c: c, idx: idx, bound: n.cl.tree.Nodes[idx].Bound})
		}
	}
}

// handle processes one message.
func (n *liveNode) handle(env Envelope) {
	switch t := env.Msg.(type) {
	case liveReport:
		if t.incumbent < n.incum {
			n.incum = t.incumbent
		}
		if changed, _ := n.table.InsertAll(t.codes); changed > 0 {
			n.lastProgress = time.Now()
		}
	case liveRequest:
		if t.incumbent < n.incum {
			n.incum = t.incumbent
		}
		if len(n.pool) >= 2 {
			k := len(n.pool) / 2
			if k > 16 {
				k = 16
			}
			var codes []code.Code
			for i := 0; i < k; i++ {
				it, ok := n.popWork()
				if !ok {
					break
				}
				codes = append(codes, it.c)
			}
			n.cl.tr.Send(n.id, env.From, liveGrant{codes: codes, incumbent: n.incum})
		} else {
			n.cl.tr.Send(n.id, env.From, liveDeny{incumbent: n.incum})
		}
	case liveGrant:
		if t.incumbent < n.incum {
			n.incum = t.incumbent
		}
		got := 0
		for _, c := range t.codes {
			if idx, ok := n.cl.tree.Locate(c); ok && !n.table.Contains(c) {
				n.pool = append(n.pool, poolEntry{c: c, idx: idx, bound: n.cl.tree.Nodes[idx].Bound})
				got++
			}
		}
		if got > 0 {
			n.failedReqs = 0
			n.lastProgress = time.Now()
		}
	case liveDeny:
		if t.incumbent < n.incum {
			n.incum = t.incumbent
		}
		n.failedReqs++
	}
}

// terminate broadcasts the root report and signals the cluster.
func (n *liveNode) terminate() {
	if n.done.Swap(true) {
		return
	}
	msg := liveReport{codes: []code.Code{code.Root()}, incumbent: n.incum}
	for i := range n.cl.nodes {
		if NodeID(i) != n.id {
			n.cl.tr.Send(n.id, NodeID(i), msg)
		}
	}
	n.cl.doneCh <- n.id
}
