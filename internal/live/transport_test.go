package live

import (
	"testing"
	"time"

	"gossipbnb/internal/protocol"
)

// Regression tests for the transport's loss accounting and timer lifecycle:
// every message that vanishes — unregistered destination, inbox overflow,
// crash at delivery time, teardown mid-flight — must show up in Stats'
// dropped column, and Close must stop pending delayed deliveries instead of
// leaking timers that fire into a torn-down cluster.

func TestTransportUnregisteredCountsDropped(t *testing.T) {
	tr := NewTransport(1, nil, 0)
	defer tr.Close()
	tr.Send(0, 1, protocol.WorkDeny{}) // node 1 never registered
	sent, dropped, _ := tr.Stats()
	if sent != 1 || dropped != 1 {
		t.Fatalf("sent=%d dropped=%d after a send to an unregistered node, want 1/1", sent, dropped)
	}
}

func TestTransportOverflowCountsDropped(t *testing.T) {
	tr := NewTransport(1, nil, 0)
	defer tr.Close()
	tr.Register(1) // nobody drains the inbox
	const extra = 10
	for i := 0; i < inboxCap+extra; i++ {
		tr.Send(0, 1, protocol.WorkDeny{})
	}
	sent, dropped, _ := tr.Stats()
	if sent != inboxCap+extra {
		t.Fatalf("sent=%d, want %d", sent, inboxCap+extra)
	}
	if dropped != extra {
		t.Fatalf("dropped=%d overflow messages, want %d", dropped, extra)
	}
}

func TestTransportCrashAtDeliveryCountsDropped(t *testing.T) {
	tr := NewTransport(1, func(int) time.Duration { return 20 * time.Millisecond }, 0)
	defer tr.Close()
	ch := tr.Register(1)
	tr.Send(0, 1, protocol.WorkDeny{})
	tr.Crash(1) // receiver dies while the message is in flight
	deadline := time.After(2 * time.Second)
	for {
		if _, dropped, _ := tr.Stats(); dropped == 1 {
			break
		}
		select {
		case <-deadline:
			_, dropped, _ := tr.Stats()
			t.Fatalf("dropped=%d after crash-at-delivery, want 1", dropped)
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case env := <-ch:
		t.Fatalf("crashed node received %+v", env)
	default:
	}
}

func TestTransportCloseStopsPendingTimers(t *testing.T) {
	tr := NewTransport(1, func(int) time.Duration { return 50 * time.Millisecond }, 0)
	ch := tr.Register(1)
	for i := 0; i < 8; i++ {
		tr.Send(0, 1, protocol.WorkDeny{})
	}
	tr.Close() // before any delay elapses
	time.Sleep(120 * time.Millisecond)
	select {
	case env := <-ch:
		t.Fatalf("delivery after Close: %+v", env)
	default:
	}
	sent, dropped, _ := tr.Stats()
	if sent != 8 || dropped != 8 {
		t.Fatalf("sent=%d dropped=%d after Close with 8 in flight, want 8/8", sent, dropped)
	}
	// Close is idempotent and a send after Close vanishes without counting.
	tr.Close()
	tr.Send(0, 1, protocol.WorkDeny{})
	if s, _, _ := tr.Stats(); s != 8 {
		t.Fatalf("sent=%d after a post-Close send, want 8", s)
	}
}
