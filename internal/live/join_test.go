package live

import (
	"net"
	"testing"
	"time"

	"gossipbnb/internal/protocol"
)

// addAfter grows the running cluster by count joiners once the solve is
// underway, reporting their identities back on a channel.
func addAfter(t *testing.T, cl *Cluster, delay time.Duration, count int) <-chan NodeID {
	t.Helper()
	ids := make(chan NodeID, count)
	time.AfterFunc(delay, func() {
		for i := 0; i < count; i++ {
			id, err := cl.AddNode()
			if err != nil {
				t.Errorf("AddNode: %v", err)
				return
			}
			ids <- id
		}
	})
	return ids
}

// TestJoinDoublesLiveCluster is the live half of the headline scenario: a
// 2-node cluster doubles to 4 mid-solve via the join path. The joiners are
// absorbed into every peer view, bootstrap their tables, steal real work,
// and the run still terminates on the exact sequential optimum.
func TestJoinDoublesLiveCluster(t *testing.T) {
	tr := liveTree(40, 2001)
	cl := NewCluster(tr, Config{Nodes: 2, Seed: 40, TimeScale: 0.002})
	addAfter(t, cl, 10*time.Millisecond, 2)
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("churned run did not finish correctly: %+v", res)
	}
	if len(cl.nodes) != 4 {
		t.Fatalf("cluster has %d nodes, want 4", len(cl.nodes))
	}
	joinerWork := int64(0)
	for _, n := range cl.nodes[2:] {
		joinerWork += n.expanded.Load()
	}
	if joinerWork == 0 {
		t.Error("joiners expanded nothing — they never stole work")
	}
	// The Hello flood converged every view onto the full 4-member pool.
	for _, n := range cl.nodes {
		if got := len(n.peers()); got != 3 {
			t.Errorf("node %d view has %d peers, want 3", n.id, got)
		}
	}
	if res.Kinds.Sent[protocol.KindHello] == 0 || res.Kinds.Sent[protocol.KindWelcome] == 0 {
		t.Error("no join handshake traffic recorded")
	}
}

// TestJoinUnderLoss: the join handshake itself is unreliable traffic — the
// Hello or its Welcome can be dropped — so the joiner re-announces until it
// is absorbed, and the run still converges.
func TestJoinUnderLoss(t *testing.T) {
	tr := liveTree(41, 1001)
	cl := NewCluster(tr, Config{
		Nodes: 2, Seed: 41, TimeScale: 0.002,
		Loss:          0.25,
		RecoveryQuiet: 30 * time.Millisecond,
	})
	addAfter(t, cl, 8*time.Millisecond, 2)
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("lossy churned run did not finish correctly: %+v", res)
	}
	if len(cl.nodes) != 4 {
		t.Fatalf("cluster has %d nodes, want 4", len(cl.nodes))
	}
}

// TestJoinTCPCluster runs the same doubling over real sockets: the joiners
// come up on fresh listeners nobody knew at boot, their addresses spread via
// the join gossip, and peers dial them on demand.
func TestJoinTCPCluster(t *testing.T) {
	nw, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	tr := liveTree(42, 2001)
	cl := NewCluster(tr, Config{Nodes: 2, Seed: 42, TimeScale: 0.002, Network: nw})
	addAfter(t, cl, 10*time.Millisecond, 2)
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("TCP churned run did not finish correctly: %+v", res)
	}
	joinerWork := int64(0)
	for _, n := range cl.nodes[2:] {
		joinerWork += n.expanded.Load()
	}
	if joinerWork == 0 {
		t.Error("TCP joiners expanded nothing")
	}
	for _, n := range cl.nodes {
		if got := len(n.peers()); got != 3 {
			t.Errorf("node %d view has %d peers, want 3", n.id, got)
		}
	}
}

// TestJoinCrashRestartMix: a joiner is a full citizen — it can crash and
// restart under its old identity like any boot-time member, and the cluster
// still finishes on the right optimum.
func TestJoinCrashRestartMix(t *testing.T) {
	tr := liveTree(43, 2001)
	cl := NewCluster(tr, Config{
		Nodes: 2, Seed: 43, TimeScale: 0.002,
		RecoveryQuiet: 30 * time.Millisecond,
	})
	ids := addAfter(t, cl, 8*time.Millisecond, 2)
	time.AfterFunc(25*time.Millisecond, func() {
		select {
		case id := <-ids:
			cl.Crash(id)
			time.AfterFunc(15*time.Millisecond, func() { cl.Restart(id) })
		default:
		}
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("join+crash+restart run did not finish correctly: %+v", res)
	}
}

// TestAddNodeRefusedOffline: AddNode only works on a running cluster.
func TestAddNodeRefusedOffline(t *testing.T) {
	cl := NewCluster(liveTree(44, 101), Config{Nodes: 1, Seed: 44})
	if _, err := cl.AddNode(); err == nil {
		t.Error("AddNode before Run accepted")
	}
	res := cl.Run()
	if !res.Terminated {
		t.Fatalf("%+v", res)
	}
	if _, err := cl.AddNode(); err == nil {
		t.Error("AddNode after Run accepted")
	}
}

// TestTCPDialBackoff is the regression test for dial pacing: a node sending
// to a peer whose listener is not up yet — a joiner announcing before its
// contact listens, a machine mid-reboot — must trickle bounded reconnect
// attempts instead of hot-looping one TCP connect per message, and must
// eventually connect once the peer comes up.
func TestTCPDialBackoff(t *testing.T) {
	nw, err := NewTCPNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// Reserve an address, then release it: node 1's gossiped address points
	// at a port nobody listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	nw.Learn(1, ln.Addr().String())

	const sends = 400
	for i := 0; i < sends; i++ {
		nw.Send(0, 1, protocol.WorkRequest{})
		time.Sleep(250 * time.Microsecond) // ≥100 ms of real time across the loop
	}
	attempts := nw.DialStats()
	if attempts == 0 {
		t.Fatal("no dial ever attempted")
	}
	// The exponential schedule allows ~log2(cap/base) warm-up dials plus one
	// per capped window; even on a slow machine that is a few dozen, never
	// one per send.
	if attempts > 40 {
		t.Errorf("%d dial attempts for %d sends — backoff is not suppressing the hot loop", attempts, sends)
	}

	// The peer comes up (on a fresh port — its own listener address
	// supersedes the stale gossiped one) and the very same send path must
	// now get through, within the bounded backoff window.
	inbox := nw.Add(1)
	timeout := time.After(5 * time.Second)
	for {
		nw.Send(0, 1, protocol.WorkDeny{})
		select {
		case env := <-inbox:
			if env.From != 0 {
				t.Fatalf("From = %d", env.From)
			}
			return
		case <-timeout:
			t.Fatal("sender never connected after the peer started listening")
		case <-time.After(time.Millisecond):
		}
	}
}
