package live

import (
	"sync"
	"testing"
	"time"

	"gossipbnb/internal/nemesis"
	"gossipbnb/internal/protocol"
)

func mustFaults(t *testing.T, specs ...string) *nemesis.Schedule {
	t.Helper()
	fs, err := nemesis.ParseAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	return nemesis.New(fs...)
}

func wantFullView(t *testing.T, cl *Cluster, nodes int) {
	t.Helper()
	for id := 0; id < nodes; id++ {
		if v := cl.PeerView(NodeID(id)); len(v) != nodes-1 {
			t.Errorf("node %d ended with view %v, want %d peers", id, v, nodes-1)
		}
	}
}

// TestSuspectStalledNodeExcludedTCP is the headline scenario: a real TCP
// cluster, one node stalled by the nemesis past ExcludeAfter, and not a
// single Crash call. The detector must notice the silence, exclude the
// stalled node from the live views, and the run must still terminate with
// the correct optimum — the stalled side solo-finishes via complement
// recovery, the healthy side recovers its lost pool the same way.
func TestSuspectStalledNodeExcludedTCP(t *testing.T) {
	tr := liveTree(31, 601)
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 31, TimeScale: 0.002,
		Network:       nw,
		RecoveryQuiet: 20 * time.Millisecond,
		SuspectAfter:  20 * time.Millisecond,
		ExcludeAfter:  80 * time.Millisecond,
		Nemesis:       mustFaults(t, "stall:2:0.03-"),
		Linger:        400 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("stalled-node run failed: %+v", res)
	}
	if res.Health.Suspicions == 0 {
		t.Error("stalled node never suspected")
	}
	if res.Health.Exclusions == 0 {
		t.Error("stalled node never excluded")
	}
	if res.Net.Cut == 0 {
		t.Error("nemesis stall cut nothing")
	}
	// The stall never heals, so the healthy nodes must end without node 2.
	for _, id := range []NodeID{0, 1} {
		for _, p := range cl.PeerView(id) {
			if p == 2 {
				t.Errorf("node %d still has the stalled node in view", id)
			}
		}
	}
}

// TestHealUnstalledNodeReabsorbedTCP un-stalls the node before the run ends:
// the exclusion must be revoked through the Hello/Welcome re-announcement
// path, the node re-absorbed with a table bootstrap, and every view whole
// again by the end.
func TestHealUnstalledNodeReabsorbedTCP(t *testing.T) {
	tr := liveTree(32, 301)
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 32, TimeScale: 0.002,
		Network:       nw,
		RecoveryQuiet: 20 * time.Millisecond,
		SuspectAfter:  20 * time.Millisecond,
		ExcludeAfter:  70 * time.Millisecond,
		Nemesis:       mustFaults(t, "stall:2:0.03-0.25"),
		Linger:        900 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("healed run failed: %+v", res)
	}
	if res.Health.Exclusions == 0 {
		t.Error("stall window never produced an exclusion")
	}
	if res.Health.Reabsorbed == 0 {
		t.Error("healed node never re-absorbed")
	}
	wantFullView(t, cl, 3)
}

// TestHealAsymmetricPartition severs only one direction: node 0 can hear
// everyone, nobody hears node 0. The silent-to-them node must be suspected
// by its peers, and after the heal the suspicion must be revoked — observed
// through the OnDetect event stream.
func TestHealAsymmetricPartition(t *testing.T) {
	tr := liveTree(33, 301)
	var mu sync.Mutex
	var events []DetectEvent
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 33, TimeScale: 0.002,
		RecoveryQuiet: 20 * time.Millisecond,
		SuspectAfter:  15 * time.Millisecond,
		ExcludeAfter:  60 * time.Millisecond,
		Nemesis:       mustFaults(t, "oneway:0.02-0.18:0|1,2"),
		Linger:        800 * time.Millisecond,
		Timeout:       60 * time.Second,
		OnDetect: func(e DetectEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("asymmetric partition run failed: %+v", res)
	}
	saw := func(k DetectKind, peer NodeID) bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range events {
			if e.Kind == k && e.Peer == peer {
				return true
			}
		}
		return false
	}
	if !saw(Suspected, 0) {
		t.Error("unheard node 0 never suspected")
	}
	if !saw(Cleared, 0) && !saw(Reabsorbed, 0) {
		t.Error("suspicion of node 0 never revoked after the heal")
	}
	wantFullView(t, cl, 3)
}

// TestHealFalseSuspicionStorm violates the detector's accuracy wholesale: a
// constant network delay larger than ExcludeAfter makes every peer look dead
// all the time. Completeness plus revocability must still carry the run to
// the correct optimum — false suspicion costs time, never correctness.
func TestHealFalseSuspicionStorm(t *testing.T) {
	tr := liveTree(34, 201)
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 34, TimeScale: 0.001,
		Delay:         func(int) time.Duration { return 8 * time.Millisecond },
		RecoveryQuiet: 20 * time.Millisecond,
		SuspectAfter:  3 * time.Millisecond,
		ExcludeAfter:  6 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("storm run failed: %+v", res)
	}
	if res.Health.Suspicions == 0 {
		t.Error("pathological detector produced no suspicions")
	}
	if res.Health.Reabsorbed == 0 {
		t.Error("no exclusion was ever revoked despite every peer being live")
	}
}

// TestNemesisSoakLive composes a partition, a flapping link, and a
// corruption window over one run and asserts the robustness invariants: the
// optimum matches the sequential reference, termination is reached,
// redundant expansion stays bounded, and no live node ends permanently
// excluded.
func TestNemesisSoakLive(t *testing.T) {
	tr := liveTree(35, 1001)
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 35, TimeScale: 0.02,
		RecoveryQuiet: 20 * time.Millisecond,
		SuspectAfter:  20 * time.Millisecond,
		ExcludeAfter:  80 * time.Millisecond,
		Nemesis: mustFaults(t,
			"partition:0.05-0.15:0,1|2,3",
			"flap:0-2:0.04:0-0.3",
			"corrupt:0.1:0-0.2",
		),
		Linger:  700 * time.Millisecond,
		Timeout: 60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("soak run failed: %+v", res)
	}
	// Partition islands may each redo the other's work, but expansion must
	// stay bounded — runaway re-expansion would show up here.
	if max := 3 * tr.Size(); res.Expanded > max {
		t.Errorf("Expanded = %d > %d: unbounded redundancy", res.Expanded, max)
	}
	if res.Net.Cut == 0 {
		t.Error("faults cut nothing")
	}
	if res.Net.Corrupt == 0 {
		t.Error("corruption window destroyed nothing")
	}
	wantFullView(t, cl, 4)
}

// TestNemesisCorruptTCPStream pushes a message stream through a TCP link
// under heavy byte corruption: every damaged frame must be rejected by the
// CRC and counted, every clean frame delivered, and the connection itself
// must survive — corruption is frame-local, never fatal to the stream.
func TestNemesisCorruptTCPStream(t *testing.T) {
	nw, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.SetNemesis(mustFaults(t, "corrupt:0.5"))
	inbox := nw.Register(1)
	const n = 400
	for i := 0; i < n; i++ {
		nw.Send(0, 1, protocol.WorkRequest{Incumbent: float64(i)})
	}
	got := 0
	for {
		select {
		case <-inbox:
			got++
			continue
		case <-time.After(500 * time.Millisecond):
		}
		break
	}
	ns := nw.NetStats()
	if got == 0 {
		t.Fatal("no clean frame survived")
	}
	if ns.Corrupt == 0 {
		t.Fatal("no frame was ever corrupted")
	}
	if int64(got)+ns.Corrupt != n {
		t.Errorf("delivered %d + corrupt %d != sent %d: frames vanished without a cause",
			got, ns.Corrupt, n)
	}
}

// TestSuspectExclusionSuppression unit-tests the transport half of the
// detector: an excluded link drops protocol traffic under the Suspect cause
// but keeps the Hello/Welcome re-announcement door open.
func TestSuspectExclusionSuppression(t *testing.T) {
	tr := NewTransport(1, nil, 0)
	ch := tr.Register(1)
	tr.Exclude(0, 1, true)
	tr.Send(0, 1, protocol.WorkDeny{})
	tr.Send(0, 1, protocol.Hello{ID: 0})
	tr.Send(0, 1, protocol.Welcome{})
	for i := 0; i < 2; i++ {
		select {
		case env := <-ch:
			switch env.Msg.(type) {
			case protocol.Hello, protocol.Welcome:
			default:
				t.Errorf("suppressed link delivered %T", env.Msg)
			}
		case <-time.After(time.Second):
			t.Fatal("join handshake did not pass the suppressed link")
		}
	}
	ns := tr.NetStats()
	if ns.Sent != 3 || ns.Dropped != 1 || ns.Suspect != 1 {
		t.Errorf("stats = %+v, want 3 sent, 1 suspect-dropped", ns)
	}
	// Lifting the exclusion restores the link.
	tr.Exclude(0, 1, false)
	tr.Send(0, 1, protocol.WorkDeny{})
	select {
	case env := <-ch:
		if _, ok := env.Msg.(protocol.WorkDeny); !ok {
			t.Errorf("restored link delivered %T", env.Msg)
		}
	case <-time.After(time.Second):
		t.Fatal("restored link delivered nothing")
	}
}

// TestNemesisCutCounter unit-tests the nemesis hook in the in-memory
// transport: a judged cut drops the message under the Cut cause.
func TestNemesisCutCounter(t *testing.T) {
	tr := NewTransport(1, nil, 0)
	ch := tr.Register(1)
	tr.SetNemesis(nemesis.New(nemesis.Fault{
		Kind: nemesis.Partition, End: time.Hour, A: []int{0},
	}))
	tr.Send(0, 1, protocol.WorkDeny{})
	select {
	case <-ch:
		t.Error("partitioned link delivered")
	case <-time.After(20 * time.Millisecond):
	}
	if ns := tr.NetStats(); ns.Cut != 1 || ns.Dropped != 1 {
		t.Errorf("stats = %+v, want 1 cut", ns)
	}
}
