package live

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/code"
	"gossipbnb/internal/protocol"
)

// submitWhenRunning retries Submit until the cluster's Run has started.
func submitWhenRunning(t *testing.T, cl *Cluster, p bnb.Problem) *Handle {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h, err := cl.Submit(p)
		if err == nil {
			return h
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("cluster never accepted the submission")
	return nil
}

// TestSubmitConcurrentInstances is the live half of the acceptance scenario:
// two problems submitted mid-run multiplex over the cluster already solving
// its boot problem, and each yields its own sequential optimum.
func TestSubmitConcurrentInstances(t *testing.T) {
	tr := liveTree(31, 201)
	cl := NewCluster(tr, Config{Nodes: 4, Seed: 31, TimeScale: 0.0005, Timeout: 60 * time.Second})
	resCh := make(chan Result, 1)
	go func() { resCh <- cl.Run() }()

	r := rand.New(rand.NewSource(32))
	p1 := bnb.RandomKnapsack(r, 12)
	p2 := bnb.RandomKnapsack(r, 13)
	h1 := submitWhenRunning(t, cl, p1)
	h2 := submitWhenRunning(t, cl, p2)
	if h1.ID == h2.ID || h1.ID == 0 || h2.ID == 0 {
		t.Fatalf("bad instance ids %d, %d", h1.ID, h2.ID)
	}

	res := <-resCh
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("boot problem failed: %+v", res)
	}
	for i, h := range []*Handle{h1, h2} {
		select {
		case <-h.Done():
		default:
			t.Fatalf("instance %d not resolved after Run returned", i+1)
		}
		if opt, ok := h.Result(); !ok {
			t.Errorf("instance %d: optimum %g does not match sequential reference", i+1, opt)
		}
		if h.Expanded() == 0 {
			t.Errorf("instance %d: no expansions recorded", i+1)
		}
	}
}

// TestSubmitInstanceCrashIsolation races a whole-node crash against three
// concurrently multiplexed problems: everything must still solve correctly
// on the survivors — the raced counterpart of the simulator's seeded
// instance-isolation chaos test.
func TestSubmitInstanceCrashIsolation(t *testing.T) {
	tr := liveTree(33, 201)
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 33, TimeScale: 0.001,
		RecoveryQuiet: 25 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	resCh := make(chan Result, 1)
	go func() { resCh <- cl.Run() }()

	r := rand.New(rand.NewSource(34))
	h1 := submitWhenRunning(t, cl, bnb.RandomKnapsack(r, 12))
	h2 := submitWhenRunning(t, cl, bnb.RandomKnapsack(r, 13))
	time.AfterFunc(40*time.Millisecond, func() { cl.Crash(2) })

	res := <-resCh
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("boot problem failed despite recovery: %+v", res)
	}
	for i, h := range []*Handle{h1, h2} {
		if opt, ok := h.Result(); !ok {
			t.Errorf("instance %d: optimum %g wrong after crash", i+1, opt)
		}
	}
}

// TestSubmitAfterBootTerminated submits to a cluster whose boot problem —
// and therefore every node's instance 0 — already finished and was reaped:
// the idle loop's registry poll must pick the new instance up and solve it.
// Linger holds the otherwise-complete run open for the late submission.
func TestSubmitAfterBootTerminated(t *testing.T) {
	tr := liveTree(35, 51)
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 35, TimeScale: 0.0002,
		Timeout: 60 * time.Second,
		Linger:  2 * time.Second,
	})
	resCh := make(chan Result, 1)
	go func() { resCh <- cl.Run() }()

	// Wait until every node detected boot termination.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := 0
		for _, n := range cl.nodes {
			if n.done.Load() {
				done++
			}
		}
		if done == len(cl.nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("boot problem never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	h := submitWhenRunning(t, cl, bnb.RandomKnapsack(rand.New(rand.NewSource(36)), 12))
	res := <-resCh
	if !res.Terminated {
		t.Fatalf("run did not terminate: %+v", res)
	}
	if opt, ok := h.Result(); !ok {
		t.Errorf("late instance optimum %g wrong", opt)
	}
}

// TestSubmitOverTCP runs the multiplexed cluster over real sockets: tagged
// instance traffic must survive the TCP framing end to end.
func TestSubmitOverTCP(t *testing.T) {
	tr := liveTree(37, 151)
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 37, TimeScale: 0.0005,
		Network: nw,
		Timeout: 60 * time.Second,
	})
	resCh := make(chan Result, 1)
	go func() { resCh <- cl.Run() }()

	h := submitWhenRunning(t, cl, bnb.RandomKnapsack(rand.New(rand.NewSource(38)), 12))
	res := <-resCh
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("TCP boot problem failed: %+v", res)
	}
	if opt, ok := h.Result(); !ok {
		t.Errorf("TCP instance optimum %g wrong", opt)
	}
}

// TestSubmitRejectedWhenNotRunning pins the Submit lifecycle errors.
func TestSubmitRejectedWhenNotRunning(t *testing.T) {
	tr := liveTree(39, 51)
	cl := NewCluster(tr, Config{Nodes: 2, Seed: 39, TimeScale: 0.0002})
	p := bnb.RandomKnapsack(rand.New(rand.NewSource(40)), 10)
	if _, err := cl.Submit(p); err == nil {
		t.Error("Submit accepted before Run")
	}
	res := cl.Run()
	if !res.Terminated {
		t.Fatalf("%+v", res)
	}
	if _, err := cl.Submit(p); err == nil {
		t.Error("Submit accepted after Run returned")
	}
}

// TestFrameInstanceRoundTrip pins tagged messages through the TCP frame
// codec: the instance ID survives, and untagged frames stay byte-identical
// to the legacy framing.
func TestFrameInstanceRoundTrip(t *testing.T) {
	inner := protocol.WorkGrant{Codes: []code.Code{code.Root().Child(1, 0)}, Incumbent: -2}
	frame, err := appendFrame(nil, 3, protocol.InstMsg{Instance: 7, Msg: inner})
	if err != nil {
		t.Fatal(err)
	}
	env, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	im, ok := env.Msg.(protocol.InstMsg)
	if !ok {
		t.Fatalf("decoded %T, want InstMsg", env.Msg)
	}
	if im.Instance != 7 {
		t.Errorf("instance = %d, want 7", im.Instance)
	}
	if g, ok := im.Msg.(protocol.WorkGrant); !ok || g.Incumbent != -2 || len(g.Codes) != 1 {
		t.Errorf("inner message mangled: %+v", im.Msg)
	}

	// Instance 0 wraps must encode exactly like the bare message.
	tagged, err := appendFrame(nil, 3, protocol.InstMsg{Instance: 0, Msg: inner})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := appendFrame(nil, 3, inner)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tagged, bare) {
		t.Error("instance-0 frame differs from legacy frame")
	}
}
