package live

// Diff-gossip tests on the live runtime: real goroutines, real clocks, and
// (in one case) real TCP sockets. The simulator proves the protocol; these
// prove the wiring — Config.DiffGossip reaches the cores, digest and subtree
// traffic crosses both transports, and the per-kind accounting attributes it.
// Names carry "DiffGossip" so CI's race filter (-run '...|Digest|Diff')
// drives this path under -race.

import (
	"testing"
	"time"

	"gossipbnb/internal/protocol"
)

// TestDiffGossipLiveCluster: a four-node in-memory cluster in diff mode
// finds the exact optimum, and the kind breakdown shows both the digest
// stream and zero legacy full-table pushes — the wire-cost shape the mode
// exists for.
func TestDiffGossipLiveCluster(t *testing.T) {
	tr := liveTree(41, 301)
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 41, TimeScale: 0.001,
		DiffGossip: true,
		Timeout:    60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("diff-gossip live cluster failed: %+v", res)
	}
	if n := res.Kinds.Sent[protocol.KindDigestReport]; n == 0 {
		t.Error("diff mode sent no digest reports")
	}
	if n := res.Kinds.Sent[protocol.KindTable]; n != 0 {
		t.Errorf("diff mode sent %d legacy full-table pushes, want 0", n)
	}
	if res.Kinds.Bytes[protocol.KindDigestReport] == 0 {
		t.Error("digest reports carried no bytes")
	}
}

// TestDiffGossipLiveChaosRestart: duplication, reordering, replay, loss, a
// crash-stop, and a crash-restart — all with diff gossip on. The restarted
// node rejoins with an empty table and must be rebuilt by the bootstrap
// walk under genuinely concurrent, adversarial delivery.
func TestDiffGossipLiveChaosRestart(t *testing.T) {
	tr := liveTree(42, 401)
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 42, TimeScale: 0.002,
		DiffGossip:    true,
		Loss:          0.05,
		Chaos:         Chaos{Duplicate: 0.2, Reorder: 0.25, ReorderWindow: time.Millisecond},
		RecoveryQuiet: 25 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	time.AfterFunc(50*time.Millisecond, func() { cl.Crash(3) })
	time.AfterFunc(70*time.Millisecond, func() { cl.Crash(1) })
	time.AfterFunc(130*time.Millisecond, func() { cl.Restart(1) })
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("diff-gossip chaos restart run failed: %+v", res)
	}
}

// TestDiffGossipOverTCP: one diff-mode round over real sockets — the frame
// codec, the lazy re-dial path, and the TCP per-kind accounting all see the
// three new message kinds.
func TestDiffGossipOverTCP(t *testing.T) {
	tr := liveTree(43, 301)
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 43, TimeScale: 0.002,
		Network:    nw,
		DiffGossip: true,
		Timeout:    60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("diff-gossip TCP cluster failed: %+v", res)
	}
	if res.Kinds.Sent[protocol.KindDigestReport] == 0 {
		t.Error("no digest reports crossed the sockets")
	}
}
