package live

import (
	"fmt"
	"math"
	"sync/atomic"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/protocol"
)

// instSpec is the cluster-wide registry entry of one submitted instance: the
// recipe every node needs to open it (a fresh expander over the problem's
// initial data), the node elected to seed its root, and the resolution state
// the Run loop sweeps. Fields below the comment line are guarded by
// Cluster.instMu; the atomics are free-standing.
type instSpec struct {
	id      protocol.InstanceID
	newExp  func() protocol.Expander
	trueOpt float64
	// seedNode is the node elected at submission to seed the instance's root.
	// If it crashes before seeding, any other node that polls the registry
	// claims the seeding by the same CAS — the instance cannot be stranded by
	// one failure.
	seedNode *liveNode
	seeded   atomic.Bool
	expanded atomic.Int64

	// Guarded by Cluster.instMu.
	done      map[NodeID]bool    // nodes that detected this instance's termination
	incumbent map[NodeID]float64 // their final incumbents
	resolved  bool
	optimum   float64

	doneCh chan struct{} // closed at resolution; publishes optimum/resolved
}

// Handle tracks one submitted instance. Done is closed when every live node
// detected the instance's termination; Result is then stable.
type Handle struct {
	// ID is the instance's wire identifier, tagging all its traffic.
	ID   protocol.InstanceID
	spec *instSpec
}

// Done returns a channel closed when the instance resolves — every node
// still alive has detected its termination.
func (h *Handle) Done() <-chan struct{} { return h.spec.doneCh }

// Result returns the solved optimum once the instance resolved, and whether
// it matches the sequential reference. Before resolution it reports ok=false
// with a NaN optimum.
func (h *Handle) Result() (optimum float64, ok bool) {
	select {
	case <-h.spec.doneCh:
		// The closing write under instMu happens-before this read.
		return h.spec.optimum, h.spec.optimum == h.spec.trueOpt
	default:
		return math.NaN(), false
	}
}

// Expanded reports how many subproblems the cluster has expanded for this
// instance so far — live progress, monotone while the instance runs.
func (h *Handle) Expanded() int64 { return h.spec.expanded.Load() }

// Submit starts solving a brand-new problem instance on the running cluster,
// multiplexed over the same nodes, transport, and membership as everything
// already in flight. The sequential reference optimum is computed here
// (synchronously) for the Result cross-check; use SubmitRef to skip it.
func (cl *Cluster) Submit(p bnb.Problem) (*Handle, error) {
	return cl.SubmitRef(p, bnb.SolveProblem(p))
}

// SubmitRef is Submit with a precomputed sequential reference. The instance
// is assigned the next wire ID, a live node is elected to seed its root, and
// every node opens it at its next registry poll. Submission requires a
// running cluster, like AddNode.
func (cl *Cluster) SubmitRef(p bnb.Problem, ref bnb.Result) (*Handle, error) {
	cl.stopMu.Lock()
	defer cl.stopMu.Unlock()
	if !cl.started || cl.stopped {
		return nil, fmt.Errorf("live: Submit on a cluster that is not running")
	}
	var seed *liveNode
	for _, n := range cl.nodes {
		if !n.crashed.Load() {
			seed = n
			break
		}
	}
	if seed == nil {
		return nil, fmt.Errorf("live: no live node to seed the instance")
	}
	cl.instMu.Lock()
	sp := &instSpec{
		id:        protocol.InstanceID(len(cl.specs) + 1),
		newExp:    func() protocol.Expander { return bnb.NewExpander(p) },
		trueOpt:   ref.Value,
		seedNode:  seed,
		done:      map[NodeID]bool{},
		incumbent: map[NodeID]float64{},
		doneCh:    make(chan struct{}),
	}
	cl.specs = append(cl.specs, sp)
	cl.instMu.Unlock()
	cl.instEpoch.Add(1)
	return &Handle{ID: sp.id, spec: sp}, nil
}

// syncInstances reconciles this incarnation's mux with the submission
// registry. The fast path is one atomic epoch load; only a changed epoch —
// or an unknown tagged message — walks the spec list. Each unresolved
// instance this node has not yet finished gets a fresh core; the elected
// seeder (or, if it crashed, whoever gets here first) seeds the root, won
// by CAS so exactly one root ever enters the system.
func (inc *incarnation) syncInstances() {
	cl := inc.n.cl
	epoch := cl.instEpoch.Load()
	if epoch == inc.instEpoch {
		return
	}
	inc.instEpoch = epoch
	cl.instMu.Lock()
	specs := append([]*instSpec(nil), cl.specs...)
	cl.instMu.Unlock()
	for _, sp := range specs {
		if _, open := inc.mux.Get(sp.id); open {
			continue
		}
		if _, dead := inc.mux.Reaped(sp.id); dead {
			continue
		}
		cl.instMu.Lock()
		skip := sp.resolved || sp.done[inc.n.id]
		cl.instMu.Unlock()
		if skip {
			// Finished here before a crash, or globally resolved: a fresh
			// open would resurrect a done instance. Stragglers are served by
			// peers' tombstones instead.
			continue
		}
		exp := sp.newExp()
		core := cl.newCore(inc, exp, sp.id)
		// Anchor the remote-activity clock: a fresh empty table means "this
		// node knows nothing yet", not "the instance is quiet" — without the
		// anchor the recovery path could adopt the complement of an empty
		// table (the whole root) while work simply hasn't spread here.
		core.NoteRemoteActivity(0)
		e, ok := inc.mux.Open(sp.id, core, exp)
		if !ok {
			continue
		}
		e.Data = sp
		if sp.seedNode == inc.n || sp.seedNode.crashed.Load() {
			if sp.seeded.CompareAndSwap(false, true) {
				core.Seed(exp.Root())
			}
		}
	}
}

// noteInstanceDone records one node's termination detection for a submitted
// instance. The record survives the node's later crash — detection happened,
// exactly like a boot-instance finisher staying counted.
func (cl *Cluster) noteInstanceDone(id protocol.InstanceID, node NodeID, incumbent float64) {
	cl.instMu.Lock()
	defer cl.instMu.Unlock()
	if int(id) > len(cl.specs) || id == 0 {
		return
	}
	sp := cl.specs[id-1]
	if sp.resolved || sp.done[node] {
		return
	}
	sp.done[node] = true
	sp.incumbent[node] = incumbent
}

// resolveInstances sweeps the registry: an instance resolves when every
// node is crashed or has detected its termination — and at least one
// detected it, so a fully crashed cluster cannot "resolve" an unsolved
// instance. Decided under stopMu, like tryStop, so no Restart can revive a
// node between the verdict and the resolution.
func (cl *Cluster) resolveInstances() {
	cl.stopMu.Lock()
	defer cl.stopMu.Unlock()
	cl.instMu.Lock()
	defer cl.instMu.Unlock()
	for _, sp := range cl.specs {
		if sp.resolved {
			continue
		}
		all, any := true, false
		opt := math.Inf(1)
		for _, n := range cl.nodes {
			if sp.done[n.id] {
				any = true
				if v := sp.incumbent[n.id]; v < opt {
					opt = v
				}
				continue
			}
			if n.crashed.Load() {
				continue
			}
			all = false
			break
		}
		if all && any {
			sp.optimum = opt
			sp.resolved = true
			close(sp.doneCh)
		}
	}
}

// specsResolved reports whether every submitted instance resolved. Callers
// hold stopMu (the lock order is stopMu, then instMu).
func (cl *Cluster) specsResolved() bool {
	cl.instMu.Lock()
	defer cl.instMu.Unlock()
	for _, sp := range cl.specs {
		if !sp.resolved {
			return false
		}
	}
	return true
}
