package live

import (
	"testing"
	"time"

	"gossipbnb/internal/protocol"
)

// --- transport-level chaos and restart ----------------------------------------

func TestTransportRestartFreshInbox(t *testing.T) {
	tr := NewTransport(1, nil, 0)
	tr.Register(1)
	tr.Crash(1)
	tr.Send(0, 1, protocol.WorkDeny{}) // down: vanishes
	ch := tr.Restart(1)
	if tr.Crashed(1) {
		t.Fatal("Crashed(1) after Restart")
	}
	tr.Send(0, 1, protocol.WorkDeny{Incumbent: 7})
	select {
	case env := <-ch:
		if env.Msg.(protocol.WorkDeny).Incumbent != 7 {
			t.Error("wrong message on restarted inbox")
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery after restart")
	}
}

func TestTransportRestartDropsInFlight(t *testing.T) {
	// A message delayed across the crash+restart window targets the OLD
	// inbox: a rebooted machine does not receive what was in flight while it
	// was down.
	tr := NewTransport(1, func(int) time.Duration { return 50 * time.Millisecond }, 0)
	tr.Register(1)
	tr.Send(0, 1, protocol.WorkDeny{})
	tr.Crash(1)
	ch := tr.Restart(1)
	select {
	case <-ch:
		t.Error("in-flight pre-crash message delivered to the restarted inbox")
	case <-time.After(150 * time.Millisecond):
	}
	_, dropped, _ := tr.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the in-flight message)", dropped)
	}
}

func TestTransportChaosDuplicates(t *testing.T) {
	tr := NewTransport(3, nil, 0)
	tr.SetChaos(Chaos{Duplicate: 1})
	ch := tr.Register(1)
	const n = 20
	for i := 0; i < n; i++ {
		tr.Send(0, 1, protocol.WorkDeny{})
	}
	got := 0
	deadline := time.After(2 * time.Second)
	for got < 2*n {
		select {
		case <-ch:
			got++
		case <-deadline:
			t.Fatalf("delivered %d of %d (every message duplicated)", got, 2*n)
		}
	}
	dup, _, _ := tr.ChaosStats()
	if dup != n {
		t.Errorf("duplicated = %d, want %d", dup, n)
	}
}

func TestTransportChaosReplayArrivesLate(t *testing.T) {
	tr := NewTransport(5, nil, 0)
	tr.SetChaos(Chaos{Replay: 1, ReplayDelay: 30 * time.Millisecond})
	ch := tr.Register(1)
	start := time.Now()
	tr.Send(0, 1, protocol.WorkDeny{})
	<-ch // original, immediate
	select {
	case <-ch:
		if since := time.Since(start); since < 30*time.Millisecond {
			t.Errorf("replay arrived after %v, want >= 30ms", since)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stale replay never arrived")
	}
}

func TestTCPRestartRelisten(t *testing.T) {
	nw, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Register(1)
	nw.Crash(1)
	nw.Send(0, 1, protocol.WorkDeny{}) // dead socket: vanishes
	ch := nw.Restart(1)
	if ch == nil || nw.Crashed(1) {
		t.Fatal("restart did not revive the node")
	}
	// The sender's connection died with the crash; the next send re-dials
	// the reborn listener.
	nw.Send(0, 1, protocol.WorkDeny{Incumbent: 9})
	select {
	case env := <-ch:
		if env.Msg.(protocol.WorkDeny).Incumbent != 9 {
			t.Error("wrong message after TCP restart")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery to the restarted TCP node")
	}
}

// --- cluster-level chaos and restart ------------------------------------------

// TestRestartLiveCluster kills a node mid-run and reboots it: the rebooted
// process re-registers through the transport, rebuilds from gossip, and the
// cluster must finish with the exact optimum — with the restarted node
// detecting termination itself (it is not crashed at the end, so Run waits
// for it).
func TestRestartLiveCluster(t *testing.T) {
	tr := liveTree(31, 401)
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 31, TimeScale: 0.002,
		RecoveryQuiet: 25 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	time.AfterFunc(60*time.Millisecond, func() { cl.Crash(1) })
	time.AfterFunc(120*time.Millisecond, func() { cl.Restart(1) })
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("restart cluster failed: %+v", res)
	}
}

// TestChaosLiveDupReorderReplay runs a live cluster over an in-memory
// transport that duplicates, reorders, and replays messages, under genuine
// concurrency and the race detector.
func TestChaosLiveDupReorderReplay(t *testing.T) {
	tr := liveTree(32, 301)
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 32, TimeScale: 0.001,
		Delay: func(bytes int) time.Duration { return 100 * time.Microsecond },
		Chaos: Chaos{
			Duplicate:     0.25,
			Reorder:       0.3,
			ReorderWindow: 2 * time.Millisecond,
			Replay:        0.05,
			ReplayDelay:   10 * time.Millisecond,
		},
		Timeout: 60 * time.Second,
	})
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("chaotic live cluster failed: %+v", res)
	}
	mem := cl.tr.(*Transport)
	dup, reord, rep := mem.ChaosStats()
	if dup == 0 || reord == 0 || rep == 0 {
		t.Errorf("chaos knobs had no effect: dup=%d reorder=%d replay=%d", dup, reord, rep)
	}
}

// TestChaosLiveRestartEverything combines duplication, reordering, replay,
// loss, a crash-stop, and a crash-restart in one live run.
func TestChaosLiveRestartEverything(t *testing.T) {
	tr := liveTree(33, 401)
	cl := NewCluster(tr, Config{
		Nodes: 4, Seed: 33, TimeScale: 0.002,
		Loss:          0.05,
		Chaos:         Chaos{Duplicate: 0.2, Reorder: 0.25, ReorderWindow: time.Millisecond},
		RecoveryQuiet: 25 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	time.AfterFunc(50*time.Millisecond, func() { cl.Crash(3) })
	time.AfterFunc(70*time.Millisecond, func() { cl.Crash(1) })
	time.AfterFunc(130*time.Millisecond, func() { cl.Restart(1) })
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("everything-at-once live run failed: %+v", res)
	}
}

// TestRestartClusterOverTCP is the acceptance scenario on real sockets: a
// TCP cluster survives kill+restart of a node mid-run — the reborn node
// listens on its old address again and peers re-dial it lazily.
func TestRestartClusterOverTCP(t *testing.T) {
	tr := liveTree(34, 401)
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(tr, Config{
		Nodes: 3, Seed: 34, TimeScale: 0.002,
		Network:       nw,
		RecoveryQuiet: 25 * time.Millisecond,
		Timeout:       60 * time.Second,
	})
	time.AfterFunc(60*time.Millisecond, func() { cl.Crash(2) })
	time.AfterFunc(130*time.Millisecond, func() { cl.Restart(2) })
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("TCP restart cluster failed: %+v", res)
	}
}

// TestRestartNoopWhenAlive: restarting a node that never crashed must change
// nothing.
func TestRestartNoopWhenAlive(t *testing.T) {
	tr := liveTree(35, 101)
	cl := NewCluster(tr, Config{Nodes: 2, Seed: 35, TimeScale: 0.001})
	time.AfterFunc(5*time.Millisecond, func() { cl.Restart(1) })
	res := cl.Run()
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
}
