package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"gossipbnb/internal/nemesis"
	"gossipbnb/internal/protocol"
)

// TCPNetwork runs the live protocol over real TCP sockets on the loopback
// interface: one listener per node, lazily dialed connections, and a
// length-prefixed binary wire format. It is the closest in-process stand-in
// for the paper's "collection of Internet-connected computers".
type TCPNetwork struct {
	mu      sync.Mutex
	addrs   map[NodeID]string
	lns     map[NodeID]net.Listener
	inboxes map[NodeID]chan Envelope
	conns   map[[2]NodeID]*tcpConn // (from, to) -> outbound connection
	crashed map[NodeID]bool
	excl    map[[2]NodeID]bool       // failure-detector link suppression
	backoff map[NodeID]*dialBackoff  // per destination: failed-dial suppression
	timers  map[*time.Timer]struct{} // nemesis-delayed sends in flight
	nem     *nemesis.Schedule
	closed  bool
	stats   NetStats
	dials   int64
	kinds   KindStats
	wg      sync.WaitGroup
}

// dialBackoff is bounded jittered exponential backoff toward one destination:
// after a failed dial, further dials to it are suppressed until nextTry, with
// the window doubling up to dialBackoffCap; a successful dial resets it. It
// keeps a sender whose peer is not yet listening — a joiner announcing before
// its contact's listener is up, or a crashed machine mid-reboot — from
// hot-looping connect attempts at send rate.
type dialBackoff struct {
	delay   time.Duration
	nextTry time.Time
}

const (
	dialBackoffBase = time.Millisecond
	dialBackoffCap  = 200 * time.Millisecond
)

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	buf []byte // frame scratch, reused under mu so sends stop allocating
}

// NewTCPNetwork creates listeners for node IDs 0..n-1 on 127.0.0.1 and
// starts their accept loops.
func NewTCPNetwork(n int) (*TCPNetwork, error) {
	t := &TCPNetwork{
		addrs:   map[NodeID]string{},
		lns:     map[NodeID]net.Listener{},
		inboxes: map[NodeID]chan Envelope{},
		conns:   map[[2]NodeID]*tcpConn{},
		crashed: map[NodeID]bool{},
		excl:    map[[2]NodeID]bool{},
		backoff: map[NodeID]*dialBackoff{},
		timers:  map[*time.Timer]struct{}{},
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("live: listen for node %d: %w", i, err)
		}
		t.lns[id] = ln
		t.addrs[id] = ln.Addr().String()
		t.inboxes[id] = make(chan Envelope, inboxCap)
		t.wg.Add(1)
		go t.acceptLoop(id, ln)
	}
	return t, nil
}

// Addr returns the listen address of a node, for tests and tooling.
func (t *TCPNetwork) Addr(id NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[id]
}

// Register implements Net. The inboxes were created at construction; it
// just hands out the channel.
func (t *TCPNetwork) Register(id NodeID) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inboxes[id]
}

// Add implements Net: a brand-new node joins mid-run — a fresh listener on a
// fresh loopback port, a fresh inbox. Its address spreads to the rest of the
// cluster via the Hello/Welcome gossip, after which peers dial it on demand.
func (t *TCPNetwork) Add(id NodeID) <-chan Envelope {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	ch := make(chan Envelope, inboxCap)
	t.inboxes[id] = ch
	t.mu.Unlock()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ch // no listener: the node can send but never receive
	}
	t.mu.Lock()
	if t.closed || t.crashed[id] {
		t.mu.Unlock()
		ln.Close()
		return ch
	}
	t.lns[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.wg.Add(1)
	t.mu.Unlock()
	go t.acceptLoop(id, ln)
	return ch
}

// Learn implements Net: record a gossiped dialable address for id. A node's
// own listener address always wins — Learn only fills gaps, so a stale
// gossiped address cannot clobber a live endpoint's fresh one.
func (t *TCPNetwork) Learn(id NodeID, addr string) {
	if addr == "" {
		return
	}
	t.mu.Lock()
	if t.addrs[id] == "" {
		t.addrs[id] = addr
	}
	t.mu.Unlock()
}

// AddrOf implements Net.
func (t *TCPNetwork) AddrOf(id NodeID) string { return t.Addr(id) }

// Restart implements Net: the crashed node reboots under its old identity —
// a fresh listener on its recorded address, a fresh empty inbox. Peers
// whose connections died with the crash re-dial lazily on their next send,
// exactly like clients reconnecting to a rebooted machine. If the old port
// was claimed meanwhile, the node comes back on a new one.
func (t *TCPNetwork) Restart(id NodeID) <-chan Envelope {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	delete(t.crashed, id)
	addr := t.addrs[id]
	ch := make(chan Envelope, inboxCap)
	t.inboxes[id] = ch
	t.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return ch // no listener: the node can send but never receive
	}
	t.mu.Lock()
	if t.closed || t.crashed[id] {
		t.mu.Unlock()
		ln.Close()
		return ch
	}
	t.lns[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.wg.Add(1)
	t.mu.Unlock()
	go t.acceptLoop(id, ln)
	return ch
}

// Crash implements Net: the node's listener and connections close, so
// in-flight and future traffic to it is dropped by the kernel, exactly like
// a machine halting.
func (t *TCPNetwork) Crash(id NodeID) {
	t.mu.Lock()
	t.crashed[id] = true
	ln := t.lns[id]
	var victims []*tcpConn
	for key, c := range t.conns {
		if key[0] == id || key[1] == id {
			victims = append(victims, c)
			delete(t.conns, key)
		}
	}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range victims {
		c.c.Close()
	}
}

// Crashed implements Net.
func (t *TCPNetwork) Crashed(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed[id]
}

// Stats implements Net.
func (t *TCPNetwork) Stats() (sent, dropped, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.Sent, t.stats.Dropped, t.stats.Bytes
}

// NetStats implements Net.
func (t *TCPNetwork) NetStats() NetStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// SetNemesis attaches a fault-injection schedule: every send is judged
// against it, and cut, delayed, or byte-corrupted accordingly. Call it
// before the cluster starts sending.
func (t *TCPNetwork) SetNemesis(s *nemesis.Schedule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nem = s
}

// Exclude implements Net: failure-detector suppression of one directed link.
func (t *TCPNetwork) Exclude(from, to NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.excl[[2]NodeID{from, to}] = true
	} else {
		delete(t.excl, [2]NodeID{from, to})
	}
}

// ByKind implements Net.
func (t *TCPNetwork) ByKind() KindStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kinds
}

// Close implements Net: shuts every listener and connection down and waits
// for reader goroutines to drain.
func (t *TCPNetwork) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	lns := make([]net.Listener, 0, len(t.lns))
	for _, ln := range t.lns {
		lns = append(lns, ln)
	}
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = map[[2]NodeID]*tcpConn{}
	pending := make([]*time.Timer, 0, len(t.timers))
	for tm := range t.timers {
		pending = append(pending, tm)
	}
	t.timers = map[*time.Timer]struct{}{}
	t.mu.Unlock()
	for _, tm := range pending {
		if tm.Stop() {
			t.drop(&t.stats.Closed)
		}
	}
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.c.Close()
	}
	t.wg.Wait()
}

// acceptLoop serves one node's listener: each accepted connection feeds the
// node's inbox until it drops.
func (t *TCPNetwork) acceptLoop(id NodeID, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (crash or shutdown)
		}
		t.wg.Add(1)
		go t.readLoop(id, conn)
	}
}

// readLoop decodes frames from one inbound connection into the inbox. A
// frame that fails its CRC (or decodes to garbage despite passing it) is
// counted and skipped — the stream stays synchronized via the length prefix,
// so one bad frame must not kill the connection. Only stream-level failures
// (EOF, a corrupt length prefix) end the loop.
func (t *TCPNetwork) readLoop(to NodeID, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var scratch []byte
	for {
		var env Envelope
		var err error
		env, scratch, err = readFrameInto(conn, scratch)
		if err != nil {
			if errors.Is(err, errCorruptFrame) {
				t.drop(&t.stats.Corrupt)
				continue
			}
			return
		}
		t.mu.Lock()
		dead := t.crashed[to] || t.closed
		ch := t.inboxes[to]
		t.mu.Unlock()
		if dead {
			t.drop(&t.stats.ToDead) // decoded but the receiver died
			return
		}
		select {
		case ch <- env:
		default: // inbox overflow: drop, like a congested receiver
			t.drop(&t.stats.Congested)
		}
	}
}

// Send implements Net: marshal and write one frame, dialing on demand. Any
// error drops the message silently — the asynchronous model allows loss. A
// nemesis schedule may additionally cut the link, hold the frame back, or
// flip bytes in it (which the receiver's frame CRC then catches).
func (t *TCPNetwork) Send(from, to NodeID, msg Message) {
	t.mu.Lock()
	if t.closed || t.crashed[from] || t.crashed[to] {
		t.mu.Unlock()
		return
	}
	t.stats.Sent++
	t.stats.Bytes += int64(msg.Size())
	t.kinds.note(msgKind(msg), msg.Size())
	if t.excl[[2]NodeID{from, to}] && !joinExempt(msg) {
		// The local failure detector excluded this destination; only the
		// Hello/Welcome re-announcement path stays open.
		t.dropLocked(&t.stats.Suspect)
		t.mu.Unlock()
		return
	}
	verdict := t.nem.JudgeNow(int(from), int(to))
	if verdict.Cut {
		t.dropLocked(&t.stats.Cut)
		t.mu.Unlock()
		return
	}
	corrupt := verdict.Corrupt > 0 && rand.Float64() < verdict.Corrupt
	if verdict.Delay > 0 {
		// Hold the frame back: the write happens when the timer fires. The
		// verdict is not re-judged then — this message already took its
		// sentence — but crash/close state is.
		var tm *time.Timer
		tm = time.AfterFunc(verdict.Delay, func() {
			t.mu.Lock()
			delete(t.timers, tm)
			if t.closed {
				t.dropLocked(&t.stats.Closed)
				t.mu.Unlock()
				return
			}
			t.mu.Unlock()
			t.sendFrame(from, to, msg, corrupt)
		})
		t.timers[tm] = struct{}{}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.sendFrame(from, to, msg, corrupt)
}

// sendFrame performs the dial-on-demand connection lookup and frame write.
// corrupt flips one byte of the encoded frame past the length prefix, so the
// receiver stays stream-synchronized but its CRC check must reject the frame.
func (t *TCPNetwork) sendFrame(from, to NodeID, msg Message, corrupt bool) {
	t.mu.Lock()
	if t.closed || t.crashed[from] || t.crashed[to] {
		t.dropLocked(&t.stats.ToDead)
		t.mu.Unlock()
		return
	}
	key := [2]NodeID{from, to}
	c := t.conns[key]
	addr := t.addrs[to]
	t.mu.Unlock()

	if c == nil {
		if addr == "" || !t.dialGate(to) {
			t.drop(&t.stats.Unrouted) // destination unknown, or inside a backoff window
			return
		}
		conn, err := net.Dial("tcp", addr)
		t.noteDialResult(to, err == nil)
		if err != nil {
			t.drop(&t.stats.Unrouted)
			return
		}
		c = &tcpConn{c: conn}
		t.mu.Lock()
		if prev := t.conns[key]; prev != nil {
			// Lost the race; use the established connection.
			t.mu.Unlock()
			conn.Close()
			c = prev
		} else if t.closed || t.crashed[to] {
			t.mu.Unlock()
			conn.Close()
			t.drop(&t.stats.ToDead)
			return
		} else {
			t.conns[key] = c
			t.mu.Unlock()
		}
	}

	c.mu.Lock()
	frame, err := appendFrame(c.buf[:0], from, msg)
	c.buf = frame
	var werr error
	if err == nil {
		if corrupt && len(frame) > 4 {
			// Damage the body or trailer, never the length prefix: a wrong
			// length would desynchronize the stream, which is a connection
			// failure, not a frame failure.
			frame[4+rand.Intn(len(frame)-4)] ^= 0x40
		}
		_, werr = c.c.Write(frame)
	}
	c.mu.Unlock()
	if err != nil {
		t.drop(&t.stats.Unrouted) // unmarshalable message: nothing reached the wire
		return
	}
	if werr != nil {
		t.drop(&t.stats.ToDead)
		t.mu.Lock()
		if t.conns[key] == c {
			delete(t.conns, key)
		}
		t.mu.Unlock()
		c.c.Close()
	}
}

// dialGate reports whether a dial to `to` may proceed now, counting the
// attempt. While a backoff window is open the send is suppressed — it drops
// like any lost message, which the asynchronous model already allows.
func (t *TCPNetwork) dialGate(to NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b := t.backoff[to]; b != nil && time.Now().Before(b.nextTry) {
		return false
	}
	t.dials++
	return true
}

// noteDialResult updates the destination's backoff state: success resets it,
// failure doubles the suppression window (full jitter in [delay/2, delay], so
// concurrent senders to a down peer desynchronize) up to dialBackoffCap.
func (t *TCPNetwork) noteDialResult(to NodeID, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ok {
		delete(t.backoff, to)
		return
	}
	b := t.backoff[to]
	if b == nil {
		b = &dialBackoff{delay: dialBackoffBase}
		t.backoff[to] = b
	} else if b.delay < dialBackoffCap {
		b.delay *= 2
		if b.delay > dialBackoffCap {
			b.delay = dialBackoffCap
		}
	}
	jitter := b.delay/2 + time.Duration(rand.Int63n(int64(b.delay/2)+1))
	b.nextTry = time.Now().Add(jitter)
}

// DialStats returns how many TCP connect attempts Send made — the backoff
// regression tests pin that an unreachable peer costs a bounded trickle of
// dials, not one per message.
func (t *TCPNetwork) DialStats() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dials
}

// drop counts one vanished message under the given cause; dropLocked is the
// same with t.mu already held.
func (t *TCPNetwork) drop(cause *int64) {
	t.mu.Lock()
	t.dropLocked(cause)
	t.mu.Unlock()
}

func (t *TCPNetwork) dropLocked(cause *int64) {
	t.stats.Dropped++
	*cause++
}

// --- wire format ---------------------------------------------------------------
//
// frame := u32(len) body u32(crc)   (len = length of body)
// body  := uvarint(from) msg        (msg = the canonical protocol codec)
// crc   := CRC32-C over len prefix and body
//
// The message payload is encoded and decoded by internal/protocol — the one
// codec shared with every other transport — so the frame adds only what TCP
// itself needs: a length prefix for the stream, the sender identity the
// socket does not carry, and an integrity check so a damaged frame is
// rejected instead of fed to the decoder. Because the CRC trails a frame of
// known length, a body-level corruption never desynchronizes the stream:
// the reader skips the bad frame and keeps going. Only a corrupted length
// prefix — which the CRC detects but cannot repair — forces the connection
// down, and the regular dial-on-demand path then re-establishes it.

// maxFrame bounds a frame body; far above any real table push, it only
// guards against corrupt length prefixes.
const maxFrame = 16 << 20

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorruptFrame marks a frame-local integrity failure: the stream is still
// synchronized, so the reader may skip the frame and continue.
var errCorruptFrame = errors.New("live: corrupt frame")

// appendFrame marshals one message as a frame appended to dst, reserving the
// length prefix up front and patching it afterwards so the body is encoded
// in place — one buffer, reusable by the caller, instead of a fresh body
// allocation per send. The trailing CRC32-C covers the prefix and body.
func appendFrame(dst []byte, from NodeID, msg Message) ([]byte, error) {
	pm, ok := msg.(protocol.Msg)
	if !ok {
		return dst, fmt.Errorf("live: cannot marshal %T", msg)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.AppendUvarint(dst, uint64(from))
	dst, err := protocol.Encode(dst, pm)
	if err != nil {
		return dst[:start], fmt.Errorf("live: %w", err)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	sum := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, sum), nil
}

// readFrame reads and unmarshals one frame.
func readFrame(r io.Reader) (Envelope, error) {
	env, _, err := readFrameInto(r, nil)
	return env, err
}

// readFrameInto is readFrame with a reusable body scratch: it returns the
// (possibly grown) scratch so a read loop keeps one buffer per connection.
// The decoded Envelope shares no storage with the scratch. Integrity
// failures confined to one frame — a CRC mismatch, or a payload that passed
// the CRC yet fails to decode — return errCorruptFrame (wrapped), leaving
// the stream positioned at the next frame.
func readFrameInto(r io.Reader, scratch []byte) (Envelope, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Envelope{}, scratch, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return Envelope{}, scratch, fmt.Errorf("live: bad frame length %d", n)
	}
	if uint32(cap(scratch)) < n+4 {
		scratch = make([]byte, n+4)
	}
	body := scratch[:n+4] // body plus the CRC trailer
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, scratch, err
	}
	wantSum := binary.LittleEndian.Uint32(body[n:])
	body = body[:n]
	sum := crc32.Update(crc32.Checksum(lenBuf[:], castagnoli), castagnoli, body)
	if sum != wantSum {
		return Envelope{}, scratch, fmt.Errorf("%w: crc %#x, want %#x", errCorruptFrame, sum, wantSum)
	}
	from, k := binary.Uvarint(body)
	if k <= 0 {
		return Envelope{}, scratch, fmt.Errorf("%w: bad frame sender", errCorruptFrame)
	}
	inst, m, used, err := protocol.DecodeInstance(body[k:])
	if err != nil {
		return Envelope{}, scratch, fmt.Errorf("%w: frame payload: %v", errCorruptFrame, err)
	}
	if k+used != len(body) {
		return Envelope{}, scratch, fmt.Errorf("%w: %d trailing bytes in frame", errCorruptFrame, len(body)-k-used)
	}
	var msg Message = m
	if inst != 0 {
		msg = protocol.InstMsg{Instance: inst, Msg: m}
	}
	return Envelope{From: NodeID(from), Msg: msg}, scratch, nil
}
