package live

import (
	"time"

	"gossipbnb/internal/protocol"
)

// This file is the live runtime's failure detector: the unreliable,
// completeness-over-accuracy detector of Chandra & Toueg grafted onto the
// paper's §5.2 membership path. The paper's model makes failures
// "not directly detectable", so the detector never decides correctness —
// it only steers resources: a silent peer is first suspected, then excluded
// from the local view (the same view shrink a Crash produces), so work
// requests and gossip stop burning on a black hole. A false exclusion costs
// only time: the excluded peer keeps being probed with Hello on a slow
// cadence, and any message from it — evidence of life — re-absorbs it,
// Welcome answer and table bootstrap included, exactly the join path of a
// brand-new member.
//
// Evidence is piggybacked: every received envelope refreshes the sender's
// lastHeard, so a busy link never needs explicit traffic. Only idle links
// get Ping heartbeats, paced at HeartbeatEvery.

// DetectKind labels one failure-detector transition.
type DetectKind int

// Detector transitions, in escalation order. Cleared and Reabsorbed are the
// recoveries: a suspicion (or exclusion) that evidence of life revoked.
const (
	Suspected  DetectKind = iota // alive → suspect: silent past SuspectAfter
	Cleared                      // suspect → alive: heard again before exclusion
	Excluded                     // suspect → excluded: silent past ExcludeAfter
	Reabsorbed                   // excluded → alive: re-announced or just spoke
)

// String names the transition.
func (k DetectKind) String() string {
	switch k {
	case Suspected:
		return "suspected"
	case Cleared:
		return "cleared"
	case Excluded:
		return "excluded"
	case Reabsorbed:
		return "reabsorbed"
	}
	return "detect(?)"
}

// DetectEvent is one observer-local detector transition: Node's detector
// moved Peer to the state implied by Kind. Delivered to Config.OnDetect from
// the observing node's goroutine — handlers must not block.
type DetectEvent struct {
	Node NodeID // the observer
	Peer NodeID // the peer whose state changed
	Kind DetectKind
}

// peerState is the per-peer detector state machine.
type peerState int

const (
	peerAlive peerState = iota
	peerSuspect
	peerExcluded
)

// peerHealth is everything the detector tracks about one peer. All times are
// wall clock, read and written only on the owning incarnation's goroutine.
type peerHealth struct {
	lastHeard time.Time // last envelope received from the peer
	lastSent  time.Time // last message sent to the peer (heartbeat pacing)
	lastProbe time.Time // last Hello probe while excluded
	state     peerState
}

// detector is one incarnation's failure detector. It is confined to the
// incarnation's goroutine — heard runs from handle, tick from the run loop,
// noteSent from the core's sends — so it needs no locks; transitions that
// must outlive the incarnation (stats, view edits, link suppression) go
// through the liveNode and transport, which are concurrency-safe.
type detector struct {
	inc   *incarnation
	peers map[NodeID]*peerHealth

	// rejoin marks peers re-absorbed after exclusion whose next Welcome
	// should trigger a table bootstrap: while the link was severed both
	// sides completed work the other never heard about, and the Full-root
	// subtree pull is how the healed side catches up.
	rejoin map[NodeID]bool

	nextTick time.Time // internal pacing; tick is called every loop turn
}

// newDetector builds the detector for a fresh incarnation, seeding every
// current view peer as alive-as-of-now and clearing any link suppression a
// previous incarnation of this node left in the transport.
func newDetector(inc *incarnation) *detector {
	d := &detector{
		inc:    inc,
		peers:  map[NodeID]*peerHealth{},
		rejoin: map[NodeID]bool{},
	}
	now := time.Now()
	n := inc.n
	for _, p := range n.peers() {
		d.peers[NodeID(p)] = &peerHealth{lastHeard: now, lastSent: now}
		n.cl.tr.Exclude(n.id, NodeID(p), false)
	}
	return d
}

// ensure returns the tracking entry for id, creating it alive-as-of-now for
// peers learned mid-run (join gossip spreads the view faster than tick
// re-scans it).
func (d *detector) ensure(id NodeID) *peerHealth {
	p := d.peers[id]
	if p == nil {
		now := time.Now()
		p = &peerHealth{lastHeard: now, lastSent: now}
		d.peers[id] = p
	}
	return p
}

// heard records evidence of life: an envelope arrived from the peer. Called
// at the top of handle for every delivery, before any protocol routing — a
// corrupted or otherwise undecodable frame never gets here, so evidence is
// only ever a frame that passed integrity. Recoveries happen here: a suspect
// is cleared, an excluded peer is re-absorbed — back into the view, link
// suppression lifted, and its next Welcome flagged to bootstrap the table.
func (d *detector) heard(from NodeID) {
	if d == nil || from == d.inc.n.id {
		return
	}
	p := d.ensure(from)
	switch p.state {
	case peerSuspect:
		p.state = peerAlive
		d.inc.n.detCleared.Add(1)
		d.emit(from, Cleared)
	case peerExcluded:
		n := d.inc.n
		p.state = peerAlive
		n.learnPeer(protocol.NodeID(from))
		n.cl.tr.Exclude(n.id, from, false)
		d.rejoin[from] = true
		n.detReabsorbed.Add(1)
		d.emit(from, Reabsorbed)
	}
	p.lastHeard = time.Now()
}

// noteSent records outbound traffic toward a peer, so heartbeats only fill
// links the protocol leaves idle. Called from the core's sender on the same
// goroutine.
func (d *detector) noteSent(to NodeID) {
	if d == nil || to == d.inc.n.id {
		return
	}
	d.ensure(to).lastSent = time.Now()
}

// rejoining consumes the bootstrap flag for a re-absorbed peer: true means
// the Welcome now being handled should pull the Full-root subtree from it.
func (d *detector) rejoining(from NodeID) bool {
	if d == nil || !d.rejoin[from] {
		return false
	}
	delete(d.rejoin, from)
	return true
}

// tick advances every peer's state machine and fills idle links. It is
// called every run-loop turn but paces itself at a fraction of
// HeartbeatEvery, so the failure-free cost is one time read and one
// comparison per turn.
func (d *detector) tick() {
	if d == nil {
		return
	}
	now := time.Now()
	if now.Before(d.nextTick) {
		return
	}
	n := d.inc.n
	cl := n.cl
	pace := cl.cfg.HeartbeatEvery / 4
	if pace <= 0 {
		pace = time.Millisecond
	}
	d.nextTick = now.Add(pace)

	// The view can gain members between ticks (join gossip); make sure every
	// current peer is tracked before scanning. Excluded peers left the view
	// but stay in the map — that is where their probe cadence lives.
	for _, p := range n.peers() {
		d.ensure(NodeID(p))
	}
	for id, p := range d.peers {
		if cl.tr.Crashed(id) {
			// An oracle-crashed peer (driver Crash call) is not detector
			// business in tests that script both; skip so heartbeats don't
			// count against a node the harness itself halted. Detection of
			// real silence still works: Crashed is only true for scripted
			// crashes, never for nemesis faults.
			continue
		}
		silent := now.Sub(p.lastHeard)
		switch {
		case p.state != peerExcluded && silent > cl.cfg.ExcludeAfter:
			p.state = peerExcluded
			n.dropPeer(protocol.NodeID(id))
			cl.tr.Exclude(n.id, id, true)
			n.detExclusions.Add(1)
			d.emit(id, Excluded)
		case p.state == peerAlive && silent > cl.cfg.SuspectAfter:
			p.state = peerSuspect
			n.detSuspicions.Add(1)
			d.emit(id, Suspected)
		}
		if p.state == peerExcluded {
			// Excluded peers get slow direct Hello probes: the one exempt
			// message link suppression lets through, and the §5.2 door a
			// falsely-excluded (or healed) peer answers with Welcome. Jitter
			// desynchronizes probe storms after a partition heals.
			probeEvery := cl.cfg.ExcludeAfter +
				time.Duration(cl.randFloat()*float64(cl.cfg.ExcludeAfter/4))
			if now.Sub(p.lastProbe) > probeEvery {
				p.lastProbe = now
				cl.tr.Send(n.id, id, protocol.Hello{
					ID:        protocol.NodeID(n.id),
					Addr:      cl.tr.AddrOf(n.id),
					Incumbent: d.inc.core.Incumbent(),
					ActAge:    d.inc.core.ActivityAge(),
				})
			}
			continue
		}
		if now.Sub(p.lastSent) > cl.cfg.HeartbeatEvery {
			// Idle link: no protocol traffic flowed for a full heartbeat
			// period, so send the explicit Ping that keeps the peer's
			// detector fed. Busy links never pay this — every envelope is
			// already evidence.
			p.lastSent = now
			cl.tr.Send(n.id, id, protocol.Ping{
				Incumbent: d.inc.core.Incumbent(),
				ActAge:    d.inc.core.ActivityAge(),
			})
		}
	}
}

// emit delivers one transition to the configured observer callback.
func (d *detector) emit(peer NodeID, kind DetectKind) {
	if cb := d.inc.n.cl.cfg.OnDetect; cb != nil {
		cb(DetectEvent{Node: d.inc.n.id, Peer: peer, Kind: kind})
	}
}
