// Package instance multiplexes many concurrent problem instances over one
// process. The paper's mechanism is per-problem by construction — completion
// tree, termination detector, and load balancer all scope to one root — so a
// Mux is a namespacing layer, not a new protocol: it owns one protocol.Core
// per open instance, routes inbound messages by InstanceID, schedules the
// shared processor fairly across instances, tracks each instance's
// termination independently, and reaps finished instances, returning their
// completion-table arenas to the shared pool for the next instance to reuse.
package instance

import "gossipbnb/internal/protocol"

// ID aliases the wire-level instance identifier. Instance 0 is the legacy
// single instance of a pre-multiplexing cluster.
type ID = protocol.InstanceID

// Entry is one open instance hosted by a Mux.
type Entry struct {
	ID   ID
	Core *protocol.Core
	Exp  protocol.Expander
	// Data is driver-owned per-instance state (timers, pacing, metrics) the
	// mux itself never touches.
	Data any
}

// Verdict classifies where Route landed an inbound message.
type Verdict int

const (
	// RouteOpen: the entry is open; feed the message to its core.
	RouteOpen Verdict = iota
	// RouteReaped: the instance finished here and was reaped. The driver
	// should answer work requests from the tombstone (a root report carrying
	// the final incumbent terminates the requester's instance too) and drop
	// everything else.
	RouteReaped
	// RouteUnknown: never heard of the instance. The driver may open it from
	// a registry — traffic for a submitted instance can outrun the
	// registry's own propagation — or drop the message.
	RouteUnknown
)

// Mux routes a process's traffic and processor time across its open
// instances. It is driver-serialized like the cores it owns: one goroutine
// (or one simulated process) at a time.
type Mux struct {
	open   map[ID]*Entry
	order  []ID // insertion order: deterministic iteration and round-robin
	cursor int
	tombs  map[ID]float64 // final incumbents of reaped instances
}

// NewMux returns an empty mux.
func NewMux() *Mux {
	return &Mux{open: make(map[ID]*Entry), tombs: make(map[ID]float64)}
}

// Open registers a new instance. It returns false if the ID is already open
// or was already reaped (a late re-open after termination must not resurrect
// a finished instance).
func (m *Mux) Open(id ID, core *protocol.Core, exp protocol.Expander) (*Entry, bool) {
	if _, dup := m.open[id]; dup {
		return nil, false
	}
	if _, dead := m.tombs[id]; dead {
		return nil, false
	}
	e := &Entry{ID: id, Core: core, Exp: exp}
	m.open[id] = e
	m.order = append(m.order, id)
	return e, true
}

// Get returns the open entry for id, if any.
func (m *Mux) Get(id ID) (*Entry, bool) {
	e, ok := m.open[id]
	return e, ok
}

// Len reports the number of open instances.
func (m *Mux) Len() int { return len(m.open) }

// Each calls f for every open entry in insertion order.
func (m *Mux) Each(f func(*Entry)) {
	for _, id := range m.order {
		if e, ok := m.open[id]; ok {
			f(e)
		}
	}
}

// Route demultiplexes an inbound message's instance ID.
func (m *Mux) Route(id ID) (*Entry, Verdict) {
	if e, ok := m.open[id]; ok {
		return e, RouteOpen
	}
	if _, ok := m.tombs[id]; ok {
		return nil, RouteReaped
	}
	return nil, RouteUnknown
}

// Next runs the shared-processor scheduling decision round-robin from the
// cursor: the first core with real work (Expand) — or one that just detected
// termination — wins the processor, and the cursor advances past it so a
// long-running instance cannot starve its neighbors. If every runnable
// instance is starving, one of them (rotating likewise) is returned with
// Starved so the driver runs its load-balancing step. Idle with a nil entry
// means every open instance has terminated.
func (m *Mux) Next() (*Entry, protocol.Item, protocol.Status) {
	n := len(m.order)
	var starved *Entry
	starvedPos := 0
	if n > 0 {
		m.cursor %= n
	}
	for i := 0; i < n; i++ {
		pos := (m.cursor + i) % n
		e, ok := m.open[m.order[pos]]
		if !ok {
			continue
		}
		it, st := e.Core.Next()
		switch st {
		case protocol.Expand, protocol.Terminated:
			m.cursor = (pos + 1) % n
			return e, it, st
		case protocol.Starved:
			if starved == nil {
				starved, starvedPos = e, pos
			}
		}
	}
	if starved != nil {
		m.cursor = (starvedPos + 1) % n
		return starved, protocol.Item{}, protocol.Starved
	}
	return nil, protocol.Item{}, protocol.Idle
}

// Reap closes a finished instance: the entry leaves the routing table, its
// final incumbent is remembered so straggler work requests can still be
// answered with a termination report, and the core's completion tables —
// arena vertices included — go back to the shared pool. Returns the closed
// entry, or nil if id was not open.
func (m *Mux) Reap(id ID) *Entry {
	e, ok := m.open[id]
	if !ok {
		return nil
	}
	delete(m.open, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.tombs[id] = e.Core.Incumbent()
	e.Core.Release()
	return e
}

// Reaped returns the final incumbent of a reaped instance.
func (m *Mux) Reaped(id ID) (float64, bool) {
	v, ok := m.tombs[id]
	return v, ok
}
