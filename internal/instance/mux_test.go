package instance

import (
	"testing"

	"gossipbnb/internal/code"
	"gossipbnb/internal/protocol"
)

// binTree is a complete binary tree of the given depth: level d branches on
// variable d+1, leaf value 100 minus the number of 1-branches on the path.
type binTree struct{ depth int }

func (f binTree) ones(c code.Code) int {
	n := 0
	for _, d := range c {
		n += int(d.Branch)
	}
	return n
}

func (f binTree) bound(c code.Code) float64 {
	return float64(100 - f.ones(c) - (f.depth - len(c)))
}

func (f binTree) Locate(c code.Code) (protocol.Item, bool) {
	if len(c) > f.depth {
		return protocol.Item{}, false
	}
	return protocol.Item{Code: c, Bound: f.bound(c)}, true
}

func (f binTree) Root() protocol.Item {
	it, _ := f.Locate(code.Root())
	return it
}

func (f binTree) Outcome(it protocol.Item) protocol.Outcome {
	if len(it.Code) == f.depth {
		return protocol.Outcome{Feasible: true, Value: float64(100 - f.ones(it.Code))}
	}
	v := uint32(len(it.Code) + 1)
	var ch []protocol.Item
	for b := uint8(0); b < 2; b++ {
		cc := it.Code.Child(v, b)
		ch = append(ch, protocol.Item{Code: cc, Bound: f.bound(cc)})
	}
	return protocol.Outcome{Children: ch}
}

type muxClock struct{ t float64 }

func (c *muxClock) Now() float64 { return c.t }

type nullSender struct{}

func (nullSender) Send(protocol.NodeID, protocol.Msg) {}

// openSolo opens an instance backed by a lone core holding its whole tree.
func openSolo(t *testing.T, m *Mux, clk *muxClock, id ID, depth int) *Entry {
	t.Helper()
	tree := binTree{depth: depth}
	core := protocol.New(0, protocol.Config{}, protocol.Deps{
		Clock:    clk,
		Sender:   nullSender{},
		Expander: tree,
		Peers:    func() []protocol.NodeID { return nil },
		Rand:     func(n int) int { return 0 },
	})
	core.Seed(tree.Root())
	e, ok := m.Open(id, core, tree)
	if !ok {
		t.Fatalf("Open(%d) refused", id)
	}
	return e
}

func TestMuxRoundRobinSolvesAll(t *testing.T) {
	var clk muxClock
	m := NewMux()
	openSolo(t, m, &clk, 1, 4)
	openSolo(t, m, &clk, 2, 5)
	openSolo(t, m, &clk, 3, 3)

	// Track who got the processor: fair scheduling must interleave, not let
	// instance 1 run to completion before 2 starts.
	var schedule []ID
	done := map[ID]float64{}
	for steps := 0; steps < 1<<14; steps++ {
		e, it, st := m.Next()
		switch st {
		case protocol.Expand:
			schedule = append(schedule, e.ID)
			clk.t += 0.01
			e.Core.OnExpanded(it, e.Exp.(binTree).Outcome(it), 0.01)
		case protocol.Terminated:
			done[e.ID] = e.Core.Incumbent()
			m.Reap(e.ID)
		case protocol.Idle:
			steps = 1 << 14
		case protocol.Starved:
			t.Fatal("solo instance starved")
		}
	}
	if len(done) != 3 {
		t.Fatalf("terminated %d of 3 instances", len(done))
	}
	for id, depth := range map[ID]int{1: 4, 2: 5, 3: 3} {
		if want := float64(100 - depth); done[id] != want {
			t.Errorf("instance %d optimum = %g, want %g", id, done[id], want)
		}
	}
	// Fairness: within the first 6 expansions every instance must have run.
	seen := map[ID]bool{}
	for _, id := range schedule[:6] {
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Errorf("first 6 expansions touched only %d instances: %v", len(seen), schedule[:6])
	}
}

func TestMuxRouteVerdicts(t *testing.T) {
	var clk muxClock
	m := NewMux()
	e := openSolo(t, m, &clk, 7, 2)
	if got, v := m.Route(7); got != e || v != RouteOpen {
		t.Fatalf("Route(open) = %v, %v", got, v)
	}
	if _, v := m.Route(9); v != RouteUnknown {
		t.Fatalf("Route(unknown) = %v", v)
	}

	// Solve and reap: the tombstone must remember the final incumbent and
	// refuse a re-open.
	for {
		it, st := e.Core.Next()
		if st == protocol.Terminated {
			break
		}
		if st != protocol.Expand {
			t.Fatalf("unexpected status %v", st)
		}
		e.Core.OnExpanded(it, e.Exp.(binTree).Outcome(it), 0.01)
	}
	if m.Reap(7) == nil {
		t.Fatal("Reap returned nil for an open instance")
	}
	if _, v := m.Route(7); v != RouteReaped {
		t.Fatalf("Route(reaped) = %v", v)
	}
	if inc, ok := m.Reaped(7); !ok || inc != 98 {
		t.Fatalf("Reaped(7) = %g, %v; want 98", inc, ok)
	}
	if _, ok := m.Open(7, e.Core, e.Exp); ok {
		t.Fatal("Open resurrected a reaped instance")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after reap", m.Len())
	}
	// Next on an empty mux is Idle, not a panic.
	if _, _, st := m.Next(); st != protocol.Idle {
		t.Fatalf("Next on empty mux = %v", st)
	}
}
