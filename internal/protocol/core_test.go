package protocol

import (
	"testing"

	"gossipbnb/internal/code"
)

// --- a scripted environment ---------------------------------------------------

type fakeClock struct{ t float64 }

func (f *fakeClock) Now() float64 { return f.t }

type sent struct {
	to NodeID
	m  Msg
}

type fakeSender struct{ out []sent }

func (s *fakeSender) Send(to NodeID, m Msg) { s.out = append(s.out, sent{to, m}) }

func (s *fakeSender) take() []sent {
	o := s.out
	s.out = nil
	return o
}

// fakeTree is a complete binary tree of the given depth: level d branches on
// variable d+1. Leaf value is 100 minus the number of 1-branches on the
// path, so the optimum is 100-depth (the all-ones leaf); interior bounds are
// the best value reachable below.
type fakeTree struct{ depth int }

func (f fakeTree) ones(c code.Code) int {
	n := 0
	for _, d := range c {
		n += int(d.Branch)
	}
	return n
}

func (f fakeTree) bound(c code.Code) float64 {
	return float64(100 - f.ones(c) - (f.depth - len(c)))
}

func (f fakeTree) Locate(c code.Code) (Item, bool) {
	if len(c) > f.depth {
		return Item{}, false
	}
	for i, d := range c {
		if d.Var != uint32(i+1) {
			return Item{}, false
		}
	}
	return Item{Code: c, Bound: f.bound(c)}, true
}

func (f fakeTree) Root() Item {
	it, _ := f.Locate(code.Root())
	return it
}

func (f fakeTree) Outcome(it Item) Outcome {
	if len(it.Code) == f.depth {
		return Outcome{Feasible: true, Value: float64(100 - f.ones(it.Code))}
	}
	v := uint32(len(it.Code) + 1)
	var ch []Item
	for b := uint8(0); b < 2; b++ {
		cc := it.Code.Child(v, b)
		ch = append(ch, Item{Code: cc, Bound: f.bound(cc)})
	}
	return Outcome{Children: ch}
}

type env struct {
	clk  fakeClock
	snd  fakeSender
	tree fakeTree
	core *Core
}

func newEnv(t *testing.T, depth int, cfg Config, peers []NodeID) *env {
	t.Helper()
	e := &env{tree: fakeTree{depth: depth}}
	e.core = New(0, cfg, Deps{
		Clock:    &e.clk,
		Sender:   &e.snd,
		Expander: e.tree,
		Peers:    func() []NodeID { return peers },
		Rand:     func(n int) int { return 0 },
	})
	return e
}

// solve drives the core to termination the way a driver would, failing the
// test if it starves or stalls.
func (e *env) solve(t *testing.T) {
	t.Helper()
	for steps := 0; steps < 1<<14; steps++ {
		it, st := e.core.Next()
		switch st {
		case Expand:
			e.clk.t += 0.01
			e.core.OnExpanded(it, e.tree.Outcome(it), 0.01)
		case Terminated:
			return
		case Idle:
			t.Fatal("core went idle without the driver observing termination")
		case Starved:
			t.Fatal("core starved while solving alone with the whole problem")
		}
	}
	t.Fatal("core did not terminate")
}

// --- tests --------------------------------------------------------------------

func TestCoreSolvesAlone(t *testing.T) {
	for _, rule := range []SelectRule{BestFirst, DepthFirst} {
		e := newEnv(t, 5, Config{Select: rule}, nil)
		root, _ := e.tree.Locate(code.Root())
		e.core.Seed(root)
		e.solve(t)
		if !e.core.Terminated() {
			t.Fatal("not terminated")
		}
		if got, want := e.core.Incumbent(), 95.0; got != want {
			t.Errorf("rule %v: incumbent = %g, want %g", rule, got, want)
		}
		// A depth-5 complete binary tree has 2^6-1 nodes.
		if got := e.core.Counters().Expanded; got != 63 {
			t.Errorf("rule %v: expanded = %d, want 63", rule, got)
		}
	}
}

func TestCorePruneEliminates(t *testing.T) {
	e := newEnv(t, 6, Config{Prune: true, Select: BestFirst}, nil)
	root, _ := e.tree.Locate(code.Root())
	e.core.Seed(root)
	e.solve(t)
	if got, want := e.core.Incumbent(), 94.0; got != want {
		t.Errorf("incumbent = %g, want %g", got, want)
	}
	if got := e.core.Counters().Expanded; got >= 127 {
		t.Errorf("pruning expanded all %d nodes", got)
	}
}

func TestCoreGrantAndDeny(t *testing.T) {
	e := newEnv(t, 4, Config{MinPoolToShare: 2, MaxShare: 16}, []NodeID{1})
	// One item only: a request is denied.
	it, _ := e.tree.Locate(code.Root().Child(1, 0))
	e.core.Seed(it)
	e.core.HandleMessage(2, WorkRequest{Incumbent: 50})
	out := e.snd.take()
	if len(out) != 1 || out[0].to != 2 {
		t.Fatalf("deny not sent: %+v", out)
	}
	if _, ok := out[0].m.(WorkDeny); !ok {
		t.Fatalf("answer = %T, want WorkDeny", out[0].m)
	}
	// The piggybacked incumbent was merged.
	if e.core.Incumbent() != 50 {
		t.Errorf("incumbent = %g, want 50 (merged from request)", e.core.Incumbent())
	}
	// Grow the pool: now half is granted, smallest bounds first.
	for _, c := range []code.Code{
		code.Root().Child(1, 1),
		code.Root().Child(1, 0).Child(2, 0),
		code.Root().Child(1, 0).Child(2, 1),
	} {
		g, ok := e.tree.Locate(c)
		if !ok {
			t.Fatal("locate failed")
		}
		e.core.Seed(g)
	}
	e.core.HandleMessage(2, WorkRequest{})
	out = e.snd.take()
	if len(out) != 1 {
		t.Fatalf("want one grant, got %+v", out)
	}
	g, ok := out[0].m.(WorkGrant)
	if !ok {
		t.Fatalf("answer = %T, want WorkGrant", out[0].m)
	}
	if len(g.Codes) != 2 { // half of four
		t.Errorf("granted %d problems, want 2", len(g.Codes))
	}
	if e.core.Counters().WorkSent != 2 {
		t.Errorf("WorkSent = %d", e.core.Counters().WorkSent)
	}
}

func TestCoreRequestLifecycle(t *testing.T) {
	e := newEnv(t, 4, Config{RecoveryPatience: 3, RecoveryQuiet: 10}, []NodeID{1})
	if dec := e.core.Starve(); dec != StarveRequested {
		t.Fatalf("first starve = %v, want StarveRequested", dec)
	}
	if len(e.snd.take()) != 1 {
		t.Fatal("no request sent")
	}
	// A second starve while the request is outstanding sends nothing.
	if dec := e.core.Starve(); dec != StarveWait {
		t.Fatalf("starve with request pending = %v, want StarveWait", dec)
	}
	// A deny resolves it as a failure.
	eff := e.core.HandleMessage(1, WorkDeny{})
	if !eff.Answered || !eff.Failed {
		t.Fatalf("deny effect = %+v", eff)
	}
	// Next starve also pushes the table (starving processes gossip more).
	e.clk.t = 1
	if dec := e.core.Starve(); dec != StarveRequested {
		t.Fatalf("starve after deny = %v", dec)
	}
	out := e.snd.take()
	if len(out) != 2 {
		t.Fatalf("want table push + request, got %d messages", len(out))
	}
	if _, ok := out[0].m.(TableMsg); !ok {
		t.Errorf("first message = %T, want TableMsg", out[0].m)
	}
	// A grant with usable work resolves and resets the failure count.
	it, _ := e.tree.Locate(code.Root().Child(1, 0))
	eff = e.core.HandleMessage(1, WorkGrant{Codes: []code.Code{it.Code}})
	if !eff.Answered || eff.Failed {
		t.Fatalf("grant effect = %+v", eff)
	}
	if e.core.PoolLen() != 1 {
		t.Errorf("pool = %d after grant", e.core.PoolLen())
	}
}

func TestCoreRecoveryAfterQuietWindow(t *testing.T) {
	e := newEnv(t, 4, Config{RecoveryPatience: 3, RecoveryQuiet: 10}, []NodeID{1})
	// Three unanswered probes.
	for i := 0; i < 3; i++ {
		if dec := e.core.Starve(); dec != StarveRequested {
			t.Fatalf("probe %d: %v", i, dec)
		}
		e.core.RequestFailed()
		e.clk.t += 1
	}
	e.snd.take()
	// Patience exhausted but the quiet window (10s) has not passed: probing
	// continues.
	if dec := e.core.Starve(); dec != StarveRequested {
		t.Fatalf("inside quiet window: %v, want StarveRequested", dec)
	}
	e.core.RequestFailed()
	e.snd.take()
	// After the quiet window with no remote progress: recover.
	e.clk.t = 30
	if dec := e.core.Starve(); dec != StarveRecover {
		t.Fatalf("after quiet window: %v, want StarveRecover", dec)
	}
	plan := e.core.PlanRecovery()
	if len(plan) == 0 {
		t.Fatal("empty recovery plan on an incomplete table")
	}
	if got := e.core.Adopt(plan); got == 0 {
		t.Fatal("recovery adopted nothing")
	}
	if e.core.Counters().Recoveries == 0 {
		t.Error("Recoveries counter not incremented")
	}
	if _, st := e.core.Next(); st != Expand {
		t.Errorf("after recovery Next = %v, want Expand", st)
	}
}

func TestCoreRecoveryGatedByRemoteActivity(t *testing.T) {
	e := newEnv(t, 4, Config{RecoveryPatience: 1, RecoveryQuiet: 10}, []NodeID{1})
	e.core.Starve()
	e.core.RequestFailed()
	e.clk.t = 30
	// Evidence that some process computed 2 seconds ago arrives: the quiet
	// gate must hold recovery back.
	e.core.HandleMessage(1, WorkDeny{ActAge: 2})
	if dec := e.core.Starve(); dec == StarveRecover {
		t.Fatal("recovered despite fresh remote activity evidence")
	}
}

func TestCoreTerminationBroadcastAndRelay(t *testing.T) {
	e := newEnv(t, 3, Config{}, []NodeID{1, 2})
	root, _ := e.tree.Locate(code.Root())
	e.core.Seed(root)
	for {
		it, st := e.core.Next()
		if st == Terminated {
			break
		}
		if st != Expand {
			t.Fatalf("unexpected status %v", st)
		}
		e.core.OnExpanded(it, e.tree.Outcome(it), 0.01)
	}
	// The final broadcast: one root report per peer.
	var roots int
	for _, s := range e.snd.take() {
		if r, ok := s.m.(Report); ok && len(r.Codes) == 1 && r.Codes[0].IsRoot() {
			roots++
		}
	}
	if roots != 2 {
		t.Fatalf("root reports broadcast = %d, want 2", roots)
	}
	// A terminated core answers work requests with the root report, so
	// stragglers can terminate too.
	e.core.HandleMessage(2, WorkRequest{})
	out := e.snd.take()
	if len(out) != 1 {
		t.Fatalf("terminated core sent %d messages", len(out))
	}
	r, ok := out[0].m.(Report)
	if !ok || len(r.Codes) != 1 || !r.Codes[0].IsRoot() {
		t.Fatalf("terminated answer = %+v, want root report", out[0].m)
	}
	// A fresh core receiving the root report terminates immediately.
	e2 := newEnv(t, 3, Config{}, nil)
	e2.core.HandleMessage(0, r)
	if _, st := e2.core.Next(); st != Terminated {
		t.Fatalf("straggler status = %v, want Terminated", st)
	}
}

func TestCoreReportBatchingAndPacing(t *testing.T) {
	e := newEnv(t, 3, Config{ReportBatch: 100, ReportTimeout: 30, AdaptiveReports: true}, []NodeID{1})
	root, _ := e.tree.Locate(code.Root())
	e.core.Seed(root)
	// Expand the root and one leaf path far enough to complete something.
	for i := 0; i < 4; i++ {
		it, st := e.core.Next()
		if st != Expand {
			break
		}
		e.clk.t += 10 // coarse granularity: 10s per subproblem
		e.core.OnExpanded(it, e.tree.Outcome(it), 10)
	}
	if e.core.outbox.Len() == 0 {
		t.Fatal("nothing completed; test scenario broken")
	}
	// Fixed timeout would flush at 30s, but the adaptive threshold is
	// ReportBatch × ewma ≈ 1000s: not overdue yet.
	if e.core.ReportOverdue() {
		t.Error("overdue before the adaptive threshold")
	}
	e.clk.t = 1200
	if !e.core.ReportOverdue() {
		t.Error("not overdue after the adaptive threshold")
	}
	e.core.FlushReport()
	if len(e.snd.take()) == 0 {
		t.Error("flush sent nothing")
	}
	if e.core.ReportOverdue() {
		t.Error("overdue right after a flush")
	}
}

// TestCoreGrantEliminatesDominated is the regression test for the grant-side
// pruning hole: stolen codes whose bound cannot beat the incumbent must be
// eliminated on arrival (completed, like OnExpanded does at generation), not
// parked in the pool where they delay termination detection.
func TestCoreGrantEliminatesDominated(t *testing.T) {
	e := newEnv(t, 4, Config{Prune: true}, []NodeID{1})
	// fakeTree bounds sit near 100; an incumbent of 10 dominates everything.
	e.core.HandleMessage(1, Report{Incumbent: 10})
	dominated := code.Root().Child(1, 0)
	eff := e.core.HandleMessage(1, WorkGrant{Codes: []code.Code{dominated}, Incumbent: 10})
	if e.core.PoolLen() != 0 {
		t.Fatalf("pool = %d, dominated grant was pooled instead of eliminated", e.core.PoolLen())
	}
	if !e.core.Table().Contains(dominated) {
		t.Fatal("dominated grant not completed into the table")
	}
	// Elimination is progress: the completions will gossip, so the grant must
	// not count as a failed attempt.
	if eff.Failed {
		t.Errorf("all-eliminated grant reported as failed: %+v", eff)
	}
}

// TestCoreAdoptEliminatesDominated is the matching regression test for the
// recovery path: complement codes dominated by the incumbent are fathomed at
// adoption instead of being re-created as pool work.
func TestCoreAdoptEliminatesDominated(t *testing.T) {
	e := newEnv(t, 4, Config{Prune: true}, []NodeID{1})
	e.core.HandleMessage(1, Report{Incumbent: 10})
	dominated := code.Root().Child(1, 1)
	if got := e.core.Adopt([]code.Code{dominated}); got != 0 {
		t.Fatalf("Adopt re-created %d dominated problems", got)
	}
	if e.core.PoolLen() != 0 {
		t.Fatalf("pool = %d after adopting a dominated code", e.core.PoolLen())
	}
	if !e.core.Table().Contains(dominated) {
		t.Fatal("dominated recovery code not completed into the table")
	}
	if e.core.Counters().Recoveries != 0 {
		t.Errorf("Recoveries = %d for an eliminated code", e.core.Counters().Recoveries)
	}
}

// TestCoreGrantPooledCodeGuard is the double-pool regression test: a delayed
// grant arriving after complement recovery already adopted the same region —
// or a duplicated grant under at-least-once delivery — must not push a code
// that is already sitting in the pool, or the whole subtree below it is
// expanded twice locally.
func TestCoreGrantPooledCodeGuard(t *testing.T) {
	e := newEnv(t, 4, Config{}, []NodeID{1})
	region := code.Root().Child(1, 0)

	// Recovery re-created the region (the granter looked dead)...
	if got := e.core.Adopt([]code.Code{region}); got != 1 {
		t.Fatalf("Adopt re-created %d problems, want 1", got)
	}
	// ...and then the delayed grant for the very same region arrives.
	e.core.HandleMessage(1, WorkGrant{Codes: []code.Code{region}})
	if e.core.PoolLen() != 1 {
		t.Fatalf("pool = %d after delayed grant for an adopted region, want 1", e.core.PoolLen())
	}
	// A duplicated copy of the grant changes nothing either.
	e.core.HandleMessage(1, WorkGrant{Codes: []code.Code{region}})
	if e.core.PoolLen() != 1 {
		t.Fatalf("pool = %d after duplicated grant, want 1", e.core.PoolLen())
	}
	// And the mirror race: a grant pooled the region first, then a recovery
	// planned before the grant arrived tries to adopt it.
	other := code.Root().Child(1, 1)
	e.core.HandleMessage(1, WorkGrant{Codes: []code.Code{other}})
	if got := e.core.Adopt([]code.Code{other}); got != 0 {
		t.Fatalf("Adopt re-created %d copies of a pooled code, want 0", got)
	}
	if e.core.PoolLen() != 2 {
		t.Fatalf("pool = %d, want 2 (one per region)", e.core.PoolLen())
	}
	// Expanding to exhaustion must visit the depth-4 tree's 31 nodes exactly
	// once: 2 region roots covering the whole tree, no double subtree.
	expanded := map[string]int{}
	for steps := 0; steps < 1<<10; steps++ {
		it, st := e.core.Next()
		if st != Expand {
			break
		}
		expanded[it.Code.Key()]++
		e.core.OnExpanded(it, e.tree.Outcome(it), 0.01)
	}
	for k, n := range expanded {
		if n > 1 {
			t.Fatalf("code %q expanded %d times", k, n)
		}
	}
	if len(expanded) != 30 { // all 31 nodes minus the never-pooled root
		t.Errorf("expanded %d distinct nodes, want 30", len(expanded))
	}
}

// TestCoreSingletonPoolDenies: with MinPoolToShare 1 and a single pooled
// problem, halving the pool yields k = 0 — the answer must be an honest
// WorkDeny, not an empty WorkGrant the requester counts as a failed attempt.
func TestCoreSingletonPoolDenies(t *testing.T) {
	e := newEnv(t, 4, Config{MinPoolToShare: 1}, []NodeID{1})
	it, _ := e.tree.Locate(code.Root().Child(1, 0))
	e.core.Seed(it)
	e.core.HandleMessage(2, WorkRequest{})
	out := e.snd.take()
	if len(out) != 1 {
		t.Fatalf("want one answer, got %d messages", len(out))
	}
	if g, bad := out[0].m.(WorkGrant); bad {
		t.Fatalf("singleton pool answered with a WorkGrant of %d codes, want WorkDeny", len(g.Codes))
	}
	if _, ok := out[0].m.(WorkDeny); !ok {
		t.Fatalf("answer = %T, want WorkDeny", out[0].m)
	}
	if e.core.PoolLen() != 1 {
		t.Errorf("pool = %d, the singleton must stay", e.core.PoolLen())
	}
	// With two pooled problems the same config grants one.
	it2, _ := e.tree.Locate(code.Root().Child(1, 1))
	e.core.Seed(it2)
	e.core.HandleMessage(2, WorkRequest{})
	out = e.snd.take()
	if g, ok := out[0].m.(WorkGrant); !ok || len(g.Codes) != 1 {
		t.Fatalf("answer = %+v, want a 1-code WorkGrant", out[0].m)
	}
}

// TestCoreUnsolicitedGrantNotFailed: an unsolicited (or stale, replayed)
// grant carrying nothing usable must not flag Effect.Failed — the driver
// would pace a retry for a request it never issued — while the same grant
// answering a live request still counts as a failed attempt.
func TestCoreUnsolicitedGrantNotFailed(t *testing.T) {
	e := newEnv(t, 4, Config{Prune: true}, []NodeID{1})
	e.core.HandleMessage(1, Report{Incumbent: 10}) // dominates every fakeTree bound
	useless := WorkGrant{Codes: nil, Incumbent: 10}

	// No request outstanding: not answered, not failed, no failure counted.
	eff := e.core.HandleMessage(1, useless)
	if eff.Answered || eff.Failed {
		t.Fatalf("unsolicited useless grant effect = %+v, want neither flag", eff)
	}
	if e.core.failedReqs != 0 {
		t.Fatalf("failedReqs = %d after unsolicited grant, want 0", e.core.failedReqs)
	}

	// The same grant resolving an outstanding request is a failed attempt.
	if dec := e.core.Starve(); dec != StarveRequested {
		t.Fatalf("starve = %v, want StarveRequested", dec)
	}
	e.snd.take()
	eff = e.core.HandleMessage(1, useless)
	if !eff.Answered || !eff.Failed {
		t.Fatalf("answered useless grant effect = %+v, want Answered+Failed", eff)
	}
	if e.core.failedReqs != 1 {
		t.Fatalf("failedReqs = %d after answered useless grant, want 1", e.core.failedReqs)
	}
}

func TestCoreActivityAgeDiffusion(t *testing.T) {
	e := newEnv(t, 3, Config{}, []NodeID{1})
	// With work in the pool the process is active: age 0.
	root, _ := e.tree.Locate(code.Root())
	e.core.Seed(root)
	e.clk.t = 5
	if got := e.core.ActivityAge(); got != 0 {
		t.Errorf("age with active pool = %g, want 0", got)
	}
	// Drain the pool; its own last computation anchors the age.
	it, _ := e.core.Next()
	e.core.OnExpanded(it, Outcome{Feasible: true, Value: 1}, 0.1)
	// The fake outcome made the root a leaf: table is complete now, so use
	// a fresh core to check relayed evidence instead.
	e2 := newEnv(t, 3, Config{}, nil)
	e2.clk.t = 20
	e2.core.HandleMessage(1, WorkDeny{ActAge: 3})
	if got := e2.core.ActivityAge(); got != 3 {
		t.Errorf("relayed age = %g, want 3", got)
	}
	e2.clk.t = 25
	if got := e2.core.ActivityAge(); got != 8 {
		t.Errorf("relayed age after 5s = %g, want 8", got)
	}
}
