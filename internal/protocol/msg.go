package protocol

import "gossipbnb/internal/code"

// Msg is a canonical wire message of the protocol. Size reports the wire
// encoding's length in bytes — it is exact: Encode produces Size() bytes.
// The interface is structurally identical to sim.Message and live.Message,
// so canonical messages flow through either transport unchanged.
type Msg interface{ Size() int }

// Every message carries two piggybacked scalars:
//
//   - Incumbent: the sender's best-known solution value — the paper solves
//     information sharing by embedding it "in the most frequently sent
//     messages" (§5);
//   - ActAge: how many seconds ago, as far as the sender knows, *some*
//     process in the system was actively computing (0 if the sender itself
//     is). Receivers keep the freshest evidence. This age diffuses
//     epidemically through the messages starving processes exchange anyway,
//     and gates failure recovery: a process only presumes work lost when the
//     whole system has looked inactive for a quiet window. Ages, unlike
//     timestamps, survive the unsynchronized clocks of §4. The paper notes
//     that "the lag in updating information can lead to faulty presumptions
//     on failure"; activity-age gossip is our implementation of the tuning
//     it prescribes.

// Report is a work report: a contracted batch of completed-problem codes
// (§5.3.2). A report whose only code is the root is the final termination
// broadcast of §5.4.
type Report struct {
	Codes     []code.Code
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m Report) Size() int { return scalarSize + codesWireSize(m.Codes) }

// TableMsg is the occasional full-table push "to inform new members of the
// current state of the execution and to increase the degree of consistency".
// Its payload is the sender's contracted table frontier.
type TableMsg struct {
	Codes     []code.Code
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m TableMsg) Size() int { return scalarSize + codesWireSize(m.Codes) }

// WorkRequest asks a randomly chosen member for problems.
type WorkRequest struct {
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m WorkRequest) Size() int { return scalarSize }

// WorkGrant transfers problems: codes suffice, because codes are
// self-contained (§5.3.1) — the receiver rebuilds bound and decomposition
// from the code plus the initial data every process holds.
type WorkGrant struct {
	Codes     []code.Code
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m WorkGrant) Size() int { return scalarSize + codesWireSize(m.Codes) }

// WorkDeny tells a requester its target has no work to spare, so the
// requester need not wait out the timeout.
type WorkDeny struct {
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m WorkDeny) Size() int { return scalarSize }

// scalarSize is the fixed part of every message: one kind byte plus the two
// 8-byte piggybacked scalars.
const scalarSize = 17

func codesWireSize(cs []code.Code) int {
	n := uvarintLen(uint64(len(cs)))
	for _, c := range cs {
		n += c.WireSize()
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
