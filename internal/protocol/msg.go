package protocol

import (
	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
)

// Msg is a canonical wire message of the protocol. Size reports the wire
// encoding's length in bytes — it is exact: Encode produces Size() bytes.
// Kind reports the codec kind byte, which doubles as the dense index of the
// transports' per-kind byte accounting. The interface is structurally
// identical to sim.Message and live.Message, so canonical messages flow
// through either transport unchanged.
type Msg interface {
	Size() int
	Kind() byte
}

// InstanceID names one problem instance when several are multiplexed over a
// cluster. Zero is the legacy single instance: its messages encode
// bit-identically to the pre-instance wire format, so a one-problem cluster
// pays nothing for the namespace.
type InstanceID uint32

// InstMsg tags a canonical message with the instance it belongs to.
// Transports that carry many instances wrap outbound messages in InstMsg and
// route inbound ones by Instance; the embedded Msg keeps Kind (and thus
// per-kind accounting) transparent. Size counts the header's instance varint
// — zero extra bytes for instance 0.
type InstMsg struct {
	Instance InstanceID
	Msg
}

// Size implements Msg, adding the instance varint carried in the header.
func (m InstMsg) Size() int {
	if m.Instance == 0 {
		return m.Msg.Size()
	}
	return m.Msg.Size() + uvarintLen(uint64(m.Instance))
}

// instanceFlag is the kind-byte bit that marks an instance-scoped header: the
// encoded kind becomes kind|instanceFlag followed by uvarint(instance). Plain
// kinds stay below it, so version-0 decoders can reject flagged messages
// outright.
const instanceFlag byte = 0x80

// Message kind bytes, shared between the codec and the per-kind network
// accounting. Zero is deliberately invalid so an all-zero buffer never
// decodes (transports use it as the "unknown kind" accounting bucket).
const (
	KindReport byte = iota + 1
	KindTable
	KindRequest
	KindGrant
	KindDeny
	KindDigestReport
	KindSubtreeRequest
	KindSubtreeReply
	KindHello
	KindWelcome
	KindPing

	// KindCount bounds the dense kind space for accounting arrays.
	KindCount = int(KindPing) + 1
)

// KindName returns a short stable label for a kind byte, for CLI summaries
// and figure tables.
func KindName(k byte) string {
	switch k {
	case KindReport:
		return "report"
	case KindTable:
		return "table"
	case KindRequest:
		return "request"
	case KindGrant:
		return "grant"
	case KindDeny:
		return "deny"
	case KindDigestReport:
		return "digest"
	case KindSubtreeRequest:
		return "subreq"
	case KindSubtreeReply:
		return "subreply"
	case KindHello:
		return "hello"
	case KindWelcome:
		return "welcome"
	case KindPing:
		return "ping"
	}
	return "other"
}

// Every message carries two piggybacked scalars:
//
//   - Incumbent: the sender's best-known solution value — the paper solves
//     information sharing by embedding it "in the most frequently sent
//     messages" (§5);
//   - ActAge: how many seconds ago, as far as the sender knows, *some*
//     process in the system was actively computing (0 if the sender itself
//     is). Receivers keep the freshest evidence. This age diffuses
//     epidemically through the messages starving processes exchange anyway,
//     and gates failure recovery: a process only presumes work lost when the
//     whole system has looked inactive for a quiet window. Ages, unlike
//     timestamps, survive the unsynchronized clocks of §4. The paper notes
//     that "the lag in updating information can lead to faulty presumptions
//     on failure"; activity-age gossip is our implementation of the tuning
//     it prescribes.

// Report is a work report: a contracted batch of completed-problem codes
// (§5.3.2). A report whose only code is the root is the final termination
// broadcast of §5.4.
type Report struct {
	Codes     []code.Code
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m Report) Size() int { return scalarSize + codesWireSize(m.Codes) }

// Kind implements Msg.
func (m Report) Kind() byte { return KindReport }

// TableMsg is the occasional full-table push "to inform new members of the
// current state of the execution and to increase the degree of consistency".
// Its payload is the sender's contracted table frontier.
type TableMsg struct {
	Codes     []code.Code
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m TableMsg) Size() int { return scalarSize + codesWireSize(m.Codes) }

// Kind implements Msg.
func (m TableMsg) Kind() byte { return KindTable }

// WorkRequest asks a randomly chosen member for problems.
type WorkRequest struct {
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m WorkRequest) Size() int { return scalarSize }

// Kind implements Msg.
func (m WorkRequest) Kind() byte { return KindRequest }

// WorkGrant transfers problems: codes suffice, because codes are
// self-contained (§5.3.1) — the receiver rebuilds bound and decomposition
// from the code plus the initial data every process holds.
type WorkGrant struct {
	Codes     []code.Code
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m WorkGrant) Size() int { return scalarSize + codesWireSize(m.Codes) }

// Kind implements Msg.
func (m WorkGrant) Kind() byte { return KindGrant }

// WorkDeny tells a requester its target has no work to spare, so the
// requester need not wait out the timeout.
type WorkDeny struct {
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m WorkDeny) Size() int { return scalarSize }

// Kind implements Msg.
func (m WorkDeny) Kind() byte { return KindDeny }

// DigestReport is the diff-gossip work report: the same recent-delta codes a
// Report carries, plus the content digest of the sender's whole completion
// table (ctree.Table.Digest). The delta keeps steady-state convergence as
// cheap as legacy reports; the digest lets a receiver detect divergence
// beyond the delta — lost reports, a restart, a partition heal — and pull
// exactly the missing subtrees instead of waiting for a full-table push. A
// DigestReport with no codes is the diff-mode table push.
type DigestReport struct {
	Digest    uint64
	Codes     []code.Code
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m DigestReport) Size() int { return scalarSize + 8 + codesWireSize(m.Codes) }

// Kind implements Msg.
func (m DigestReport) Kind() byte { return KindDigestReport }

// SubtreeRequest asks a peer for the completion content under Prefix during
// an anti-entropy walk. Full set means the requester knows nothing under
// Prefix (the restart-rejoin and bootstrap case) and the responder should
// ship the whole subtree frontier instead of another level of digests.
type SubtreeRequest struct {
	Prefix    code.Code
	Full      bool
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m SubtreeRequest) Size() int { return scalarSize + 1 + m.Prefix.WireSize() }

// Kind implements Msg.
func (m SubtreeRequest) Kind() byte { return KindSubtreeRequest }

// SubtreeReply answers a SubtreeRequest. A leaf reply inlines the subtree's
// frontier codes relative to Prefix (nil = the responder knows nothing
// there; a single empty code = the whole subtree is complete). A branch
// reply describes the vertex at Prefix — its branching variable and
// per-child digests — so the requester can descend only into the children
// that differ.
type SubtreeReply struct {
	Prefix    code.Code
	Leaf      bool
	Rel       []code.Code // leaf replies: frontier relative to Prefix
	BranchVar uint32      // branch replies
	Kids      [2]ctree.ChildDigest
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m SubtreeReply) Size() int {
	sz := scalarSize + 1
	if m.Leaf {
		sec := ctree.SubtreeWireSize(m.Prefix, m.Rel)
		return sz + uvarintLen(uint64(sec)) + sec
	}
	sz += m.Prefix.WireSize() + uvarintLen(uint64(m.BranchVar)) + 1
	for _, k := range m.Kids {
		if k.Present {
			sz += 8
		}
	}
	return sz
}

// Kind implements Msg.
func (m SubtreeReply) Kind() byte { return KindSubtreeReply }

// Hello announces a brand-new process to a member it has an address for —
// the §5.2 join step lifted onto the canonical wire so it crosses real
// transports. ID is the joiner's own identity (which need not match the
// envelope sender when a member forwards the hello onward), Addr its dialable
// address ("" on transports that route by ID alone). A member that learns a
// new peer from a Hello forwards it to its own view and answers Welcome, so
// one contact suffices to flood a join through the cluster.
type Hello struct {
	ID        NodeID
	Addr      string
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m Hello) Size() int {
	return scalarSize + uvarintLen(uint64(m.ID)) + uvarintLen(uint64(len(m.Addr))) + len(m.Addr)
}

// Kind implements Msg.
func (m Hello) Kind() byte { return KindHello }

// Peer pairs a member's identity with its dialable address, for Welcome
// payloads.
type Peer struct {
	ID   NodeID
	Addr string
}

// Welcome answers a Hello with the responder's current view (itself
// included), each member with its last-known address. The joiner merges the
// peers into its own view and bootstraps its completion table from the
// responder via the Full-root subtree pull. Views gossiped this way may be
// mutually inconsistent while a join floods; that is safe for the same reason
// the paper's §5.2 protocol tolerates it — every view member is a valid
// steal/report target, and missing members only thin the fanout temporarily.
type Welcome struct {
	Peers     []Peer
	Incumbent float64
	ActAge    float64
}

// Ping is an explicit heartbeat, sent only when a link has been otherwise
// idle long enough that the receiver's failure detector would start doubting
// the sender. It carries nothing beyond the scalars every message already
// piggybacks — on a busy link the regular gossip traffic *is* the heartbeat,
// so pings cost nothing in failure-free, work-saturated runs.
type Ping struct {
	Incumbent float64
	ActAge    float64
}

// Size implements Msg.
func (m Ping) Size() int { return scalarSize }

// Kind implements Msg.
func (m Ping) Kind() byte { return KindPing }

// Size implements Msg.
func (m Welcome) Size() int {
	sz := scalarSize + uvarintLen(uint64(len(m.Peers)))
	for _, p := range m.Peers {
		sz += uvarintLen(uint64(p.ID)) + uvarintLen(uint64(len(p.Addr))) + len(p.Addr)
	}
	return sz
}

// Kind implements Msg.
func (m Welcome) Kind() byte { return KindWelcome }

// scalarSize is the fixed part of every message: one kind byte plus the two
// 8-byte piggybacked scalars.
const scalarSize = 17

func codesWireSize(cs []code.Code) int {
	n := uvarintLen(uint64(len(cs)))
	for _, c := range cs {
		n += c.WireSize()
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
