package protocol

import (
	"math/rand"
	"testing"
)

func TestPoolBestFirstOrder(t *testing.T) {
	bf := pool{}
	for _, b := range []float64{5, 1, 3, 2, 4} {
		bf.push(Item{Bound: b})
	}
	prev := -1.0
	for bf.Len() > 0 {
		b := bf.pop().Bound
		if b < prev {
			t.Fatalf("best-first order violated: %g after %g", b, prev)
		}
		prev = b
	}
}

func TestPoolDepthFirstLIFO(t *testing.T) {
	df := pool{dfs: true}
	for _, b := range []float64{5, 1, 3} {
		df.push(Item{Bound: b})
	}
	if got := df.pop().Bound; got != 3 {
		t.Errorf("depth-first pop = %g, want 3 (LIFO)", got)
	}
}

// TestStealSmallestBound pins the steal contract: under BOTH disciplines the
// stolen entry is the one with the smallest bound, even though the
// depth-first stack is ordered by recency and needs a linear scan to find it.
func TestStealSmallestBound(t *testing.T) {
	df := pool{dfs: true}
	for _, b := range []float64{5, 1, 3} {
		df.push(Item{Bound: b})
	}
	if got := df.steal().Bound; got != 1 {
		t.Errorf("depth-first steal = %g, want 1", got)
	}
	bf := pool{}
	bf.push(Item{Bound: 2})
	bf.push(Item{Bound: 1})
	if got := bf.steal().Bound; got != 1 {
		t.Errorf("best-first steal = %g, want 1", got)
	}
}

// TestStealDepthFirstPreservesStackOrder: removing the smallest-bound entry
// from the middle of a depth-first stack must not disturb the LIFO order of
// the remaining entries — the local process goes on refining its most recent
// subproblem as if nothing happened.
func TestStealDepthFirstPreservesStackOrder(t *testing.T) {
	df := pool{dfs: true}
	for _, b := range []float64{7, 2, 9, 4} {
		df.push(Item{Bound: b})
	}
	if got := df.steal().Bound; got != 2 {
		t.Fatalf("steal = %g, want 2", got)
	}
	for _, want := range []float64{4, 9, 7} {
		if got := df.pop().Bound; got != want {
			t.Errorf("pop after steal = %g, want %g (LIFO preserved)", got, want)
		}
	}
}

// TestStealDrainsEqualToSorted: stealing everything from a depth-first stack
// yields the entries in nondecreasing bound order — the linear scan really
// does find the global minimum each time.
func TestStealDrainsEqualToSorted(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		df := pool{dfs: true}
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			df.push(Item{Bound: r.Float64()})
		}
		prev := -1.0
		for df.Len() > 0 {
			b := df.steal().Bound
			if b < prev {
				t.Fatalf("trial %d: steal order violated: %g after %g", trial, b, prev)
			}
			prev = b
		}
	}
}
