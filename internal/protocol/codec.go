package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"gossipbnb/internal/code"
)

// The canonical binary encoding, shared by every transport that needs bytes
// (the TCP runtime today; any future wire goes through the same codec):
//
//	msg    := u8(kind) f64le(incumbent) f64le(actAge) [codes]
//	codes  := code.AppendAll encoding (report, table, and grant only)
//
// The encoding is self-delimiting, so messages can be concatenated; Decode
// returns the number of bytes consumed. Encode produces exactly Size() bytes.

// Message kind bytes. Zero is deliberately invalid so an all-zero buffer
// never decodes.
const (
	kindReport byte = iota + 1
	kindTable
	kindRequest
	kindGrant
	kindDeny
)

// Encode appends the wire encoding of m to dst and returns the extended
// slice. It fails only on a message type outside the canonical set.
func Encode(dst []byte, m Msg) ([]byte, error) {
	put := func(kind byte, incumbent, actAge float64, codes []code.Code, withCodes bool) {
		dst = append(dst, kind)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(incumbent))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(actAge))
		if withCodes {
			dst = code.AppendAll(dst, codes)
		}
	}
	switch t := m.(type) {
	case Report:
		put(kindReport, t.Incumbent, t.ActAge, t.Codes, true)
	case TableMsg:
		put(kindTable, t.Incumbent, t.ActAge, t.Codes, true)
	case WorkRequest:
		put(kindRequest, t.Incumbent, t.ActAge, nil, false)
	case WorkGrant:
		put(kindGrant, t.Incumbent, t.ActAge, t.Codes, true)
	case WorkDeny:
		put(kindDeny, t.Incumbent, t.ActAge, nil, false)
	default:
		return nil, fmt.Errorf("protocol: cannot encode %T", m)
	}
	return dst, nil
}

// Decode reads one message from the front of buf, returning the message and
// the number of bytes consumed.
func Decode(buf []byte) (Msg, int, error) {
	if len(buf) < scalarSize {
		return nil, 0, errors.New("protocol: truncated message")
	}
	kind := buf[0]
	incumbent := math.Float64frombits(binary.LittleEndian.Uint64(buf[1:9]))
	actAge := math.Float64frombits(binary.LittleEndian.Uint64(buf[9:17]))
	off := scalarSize
	readCodes := func() ([]code.Code, error) {
		cs, n, err := code.DecodeAll(buf[off:])
		if err != nil {
			return nil, err
		}
		off += n
		return cs, nil
	}
	switch kind {
	case kindReport:
		cs, err := readCodes()
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: report codes: %w", err)
		}
		return Report{Codes: cs, Incumbent: incumbent, ActAge: actAge}, off, nil
	case kindTable:
		cs, err := readCodes()
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: table codes: %w", err)
		}
		return TableMsg{Codes: cs, Incumbent: incumbent, ActAge: actAge}, off, nil
	case kindRequest:
		return WorkRequest{Incumbent: incumbent, ActAge: actAge}, off, nil
	case kindGrant:
		cs, err := readCodes()
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: grant codes: %w", err)
		}
		return WorkGrant{Codes: cs, Incumbent: incumbent, ActAge: actAge}, off, nil
	case kindDeny:
		return WorkDeny{Incumbent: incumbent, ActAge: actAge}, off, nil
	default:
		return nil, 0, fmt.Errorf("protocol: unknown message kind %d", kind)
	}
}
