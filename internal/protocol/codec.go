package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
)

// The canonical binary encoding, shared by every transport that needs bytes
// (the TCP runtime today; any future wire goes through the same codec):
//
//	msg     := header f64le(incumbent) f64le(actAge) [payload]
//	header  := u8(kind)                               (instance 0, legacy)
//	         | u8(kind|0x80) uvarint(instance)        (instance-scoped)
//	payload := codes                                  (report, table, grant)
//	         | u64le(digest) codes                    (digest report)
//	         | u8(full) prefix                        (subtree request)
//	         | u8(1) uvarint(len) subtree             (subtree reply, leaf)
//	         | u8(0) prefix uvarint(var) u8(mask) digests   (…, branch)
//	codes   := code.AppendAll encoding
//	prefix  := code.Code.Append encoding
//	subtree := ctree.EncodeSubtree encoding (length-prefixed so the hardened
//	           whole-buffer ctree.DecodeSubtree validates it in place)
//
// The encoding is self-delimiting, so messages can be concatenated; Decode
// returns the number of bytes consumed. Encode produces exactly Size() bytes.

// Encode appends the wire encoding of m to dst and returns the extended
// slice. An InstMsg encodes the instance-scoped header (instance 0 unwraps to
// the legacy bytes); anything else encodes exactly as before instances
// existed. It fails only on a message type outside the canonical set.
func Encode(dst []byte, m Msg) ([]byte, error) {
	var inst InstanceID
	if im, ok := m.(InstMsg); ok {
		inst, m = im.Instance, im.Msg
		if _, nested := m.(InstMsg); nested {
			return nil, errors.New("protocol: nested InstMsg")
		}
	}
	put := func(kind byte, incumbent, actAge float64) {
		if inst != 0 {
			dst = append(dst, kind|instanceFlag)
			dst = binary.AppendUvarint(dst, uint64(inst))
		} else {
			dst = append(dst, kind)
		}
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(incumbent))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(actAge))
	}
	switch t := m.(type) {
	case Report:
		put(KindReport, t.Incumbent, t.ActAge)
		dst = code.AppendAll(dst, t.Codes)
	case TableMsg:
		put(KindTable, t.Incumbent, t.ActAge)
		dst = code.AppendAll(dst, t.Codes)
	case WorkRequest:
		put(KindRequest, t.Incumbent, t.ActAge)
	case WorkGrant:
		put(KindGrant, t.Incumbent, t.ActAge)
		dst = code.AppendAll(dst, t.Codes)
	case WorkDeny:
		put(KindDeny, t.Incumbent, t.ActAge)
	case DigestReport:
		put(KindDigestReport, t.Incumbent, t.ActAge)
		dst = binary.LittleEndian.AppendUint64(dst, t.Digest)
		dst = code.AppendAll(dst, t.Codes)
	case SubtreeRequest:
		put(KindSubtreeRequest, t.Incumbent, t.ActAge)
		var full byte
		if t.Full {
			full = 1
		}
		dst = append(dst, full)
		dst = t.Prefix.Append(dst)
	case SubtreeReply:
		put(KindSubtreeReply, t.Incumbent, t.ActAge)
		if t.Leaf {
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(ctree.SubtreeWireSize(t.Prefix, t.Rel)))
			dst = ctree.EncodeSubtree(dst, t.Prefix, t.Rel)
		} else {
			dst = append(dst, 0)
			dst = t.Prefix.Append(dst)
			dst = binary.AppendUvarint(dst, uint64(t.BranchVar))
			var mask byte
			for b, k := range t.Kids {
				if k.Present {
					mask |= 1 << b
				}
			}
			dst = append(dst, mask)
			for _, k := range t.Kids {
				if k.Present {
					dst = binary.LittleEndian.AppendUint64(dst, k.Digest)
				}
			}
		}
	case Hello:
		put(KindHello, t.Incumbent, t.ActAge)
		dst = binary.AppendUvarint(dst, uint64(t.ID))
		dst = binary.AppendUvarint(dst, uint64(len(t.Addr)))
		dst = append(dst, t.Addr...)
	case Welcome:
		put(KindWelcome, t.Incumbent, t.ActAge)
		dst = binary.AppendUvarint(dst, uint64(len(t.Peers)))
		for _, p := range t.Peers {
			dst = binary.AppendUvarint(dst, uint64(p.ID))
			dst = binary.AppendUvarint(dst, uint64(len(p.Addr)))
			dst = append(dst, p.Addr...)
		}
	case Ping:
		put(KindPing, t.Incumbent, t.ActAge)
	default:
		return nil, fmt.Errorf("protocol: cannot encode %T", m)
	}
	return dst, nil
}

// maxAddrLen bounds address strings in Hello/Welcome payloads; real
// addresses are host:port strings, so anything longer is a corrupt frame.
const maxAddrLen = 1 << 10

// Decode reads one message from the front of buf, returning the message and
// the number of bytes consumed. Decode is the version-0 (single-instance)
// entry point: it rejects instance-scoped headers outright, so a legacy
// stream cannot smuggle the instance field onto kinds that predate it. Use
// DecodeInstance on multiplexed transports.
func Decode(buf []byte) (Msg, int, error) {
	if len(buf) > 0 && buf[0]&instanceFlag != 0 {
		return nil, 0, fmt.Errorf("protocol: instance-scoped kind byte %#x in a version-0 stream", buf[0])
	}
	if len(buf) < scalarSize {
		return nil, 0, errors.New("protocol: truncated message")
	}
	return decodeMsg(buf[0], buf, 1)
}

// DecodeInstance reads one message from the front of buf, returning its
// instance (0 for legacy headers), the message, and the bytes consumed. An
// instance-scoped header must carry a nonzero instance: the canonical
// encoding of instance 0 is the flagless legacy header, so a flagged zero is
// rejected as corrupt.
func DecodeInstance(buf []byte) (InstanceID, Msg, int, error) {
	if len(buf) == 0 || buf[0]&instanceFlag == 0 {
		m, n, err := Decode(buf)
		return 0, m, n, err
	}
	inst, n := binary.Uvarint(buf[1:])
	switch {
	case n <= 0:
		return 0, nil, 0, errors.New("protocol: truncated instance id")
	case inst == 0:
		return 0, nil, 0, errors.New("protocol: instance-scoped header with instance 0")
	case inst > math.MaxUint32:
		return 0, nil, 0, errors.New("protocol: instance id overflow")
	}
	off := 1 + n
	if len(buf) < off+16 {
		return 0, nil, 0, errors.New("protocol: truncated message")
	}
	m, consumed, err := decodeMsg(buf[0]&^instanceFlag, buf, off)
	if err != nil {
		return 0, nil, 0, err
	}
	return InstanceID(inst), m, consumed, nil
}

// decodeMsg decodes the scalars and payload of one message whose kind byte
// (instance flag already stripped) is kind; off points at the incumbent
// scalar, with at least 16 bytes available.
func decodeMsg(kind byte, buf []byte, off int) (Msg, int, error) {
	incumbent := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
	actAge := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
	off += 16
	readCodes := func() ([]code.Code, error) {
		cs, n, err := code.DecodeAll(buf[off:])
		if err != nil {
			return nil, err
		}
		off += n
		return cs, nil
	}
	switch kind {
	case KindReport:
		cs, err := readCodes()
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: report codes: %w", err)
		}
		return Report{Codes: cs, Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindTable:
		cs, err := readCodes()
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: table codes: %w", err)
		}
		return TableMsg{Codes: cs, Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindRequest:
		return WorkRequest{Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindGrant:
		cs, err := readCodes()
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: grant codes: %w", err)
		}
		return WorkGrant{Codes: cs, Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindDeny:
		return WorkDeny{Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindDigestReport:
		if len(buf) < off+8 {
			return nil, 0, errors.New("protocol: truncated digest")
		}
		digest := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		cs, err := readCodes()
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: digest report codes: %w", err)
		}
		return DigestReport{Digest: digest, Codes: cs, Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindSubtreeRequest:
		if len(buf) < off+1 {
			return nil, 0, errors.New("protocol: truncated subtree request")
		}
		full := buf[off] == 1
		off++
		prefix, n, err := code.Decode(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: subtree request prefix: %w", err)
		}
		off += n
		return SubtreeRequest{Prefix: prefix, Full: full, Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindSubtreeReply:
		if len(buf) < off+1 {
			return nil, 0, errors.New("protocol: truncated subtree reply")
		}
		leaf := buf[off] == 1
		off++
		m := SubtreeReply{Leaf: leaf, Incumbent: incumbent, ActAge: actAge}
		if leaf {
			sec, n := binary.Uvarint(buf[off:])
			if n <= 0 || sec > uint64(len(buf)-off-n) {
				return nil, 0, errors.New("protocol: bad subtree section length")
			}
			off += n
			prefix, rel, err := ctree.DecodeSubtree(buf[off : off+int(sec)])
			if err != nil {
				return nil, 0, fmt.Errorf("protocol: subtree reply: %w", err)
			}
			off += int(sec)
			m.Prefix, m.Rel = prefix, rel
			return m, off, nil
		}
		prefix, n, err := code.Decode(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: subtree reply prefix: %w", err)
		}
		off += n
		bv, n := binary.Uvarint(buf[off:])
		if n <= 0 || bv > math.MaxUint32 {
			return nil, 0, errors.New("protocol: bad subtree branch var")
		}
		off += n
		if len(buf) < off+1 {
			return nil, 0, errors.New("protocol: truncated subtree child mask")
		}
		mask := buf[off]
		off++
		if mask > 3 {
			return nil, 0, fmt.Errorf("protocol: bad subtree child mask %#x", mask)
		}
		m.Prefix, m.BranchVar = prefix, uint32(bv)
		for b := 0; b < 2; b++ {
			if mask&(1<<b) == 0 {
				continue
			}
			if len(buf) < off+8 {
				return nil, 0, errors.New("protocol: truncated child digest")
			}
			m.Kids[b] = ctree.ChildDigest{Present: true, Digest: binary.LittleEndian.Uint64(buf[off:])}
			off += 8
		}
		return m, off, nil
	case KindHello:
		id, n := binary.Uvarint(buf[off:])
		if n <= 0 || id > math.MaxInt32 {
			return nil, 0, errors.New("protocol: bad hello id")
		}
		off += n
		addr, n, err := decodeAddr(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: hello: %w", err)
		}
		off += n
		return Hello{ID: NodeID(id), Addr: addr, Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindWelcome:
		cnt, n := binary.Uvarint(buf[off:])
		if n <= 0 || cnt > uint64(len(buf)-off) {
			return nil, 0, errors.New("protocol: bad welcome count")
		}
		off += n
		var peers []Peer
		if cnt > 0 {
			peers = make([]Peer, 0, cnt)
		}
		for i := uint64(0); i < cnt; i++ {
			id, n := binary.Uvarint(buf[off:])
			if n <= 0 || id > math.MaxInt32 {
				return nil, 0, errors.New("protocol: bad welcome peer id")
			}
			off += n
			addr, n, err := decodeAddr(buf[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("protocol: welcome: %w", err)
			}
			off += n
			peers = append(peers, Peer{ID: NodeID(id), Addr: addr})
		}
		return Welcome{Peers: peers, Incumbent: incumbent, ActAge: actAge}, off, nil
	case KindPing:
		return Ping{Incumbent: incumbent, ActAge: actAge}, off, nil
	default:
		return nil, 0, fmt.Errorf("protocol: unknown message kind %d", kind)
	}
}

// decodeAddr reads one length-prefixed address string, returning it and the
// bytes consumed.
func decodeAddr(buf []byte) (string, int, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || l > maxAddrLen || l > uint64(len(buf)-n) {
		return "", 0, errors.New("bad address length")
	}
	return string(buf[n : n+int(l)]), n + int(l), nil
}
