package protocol

import "gossipbnb/internal/code"

// Item is one active problem: its self-contained code, an opaque driver
// handle (for the simulator this is the basic-tree index, saving a re-lookup
// on pop), and its recorded bound.
type Item struct {
	Code  code.Code
	Ref   int32
	Bound float64
}

// pool holds the active problems under either selection rule (§2): a binary
// heap on bound for best-first, a LIFO stack for depth-first.
//
// steal always removes the entry with the smallest bound, under BOTH
// disciplines. For depth-first the stack is ordered by recency, not bound,
// so the smallest bound can sit anywhere in it and steal must do a linear
// scan — O(n), paid only on work grants, which are rare next to pushes and
// pops. The smallest-bound entry of a depth-first stack is the shallowest,
// largest outstanding region: the classic steal-from-the-bottom choice,
// which hands a requester a big chunk of work and keeps the granter's
// cheap local refinements.
type pool struct {
	items []Item
	dfs   bool
}

func (p *pool) Len() int { return len(p.items) }

func (p *pool) push(it Item) {
	p.items = append(p.items, it)
	if p.dfs {
		return
	}
	i := len(p.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.items[parent].Bound <= p.items[i].Bound {
			break
		}
		p.items[i], p.items[parent] = p.items[parent], p.items[i]
		i = parent
	}
}

func (p *pool) pop() Item {
	if p.dfs {
		n := len(p.items) - 1
		it := p.items[n]
		p.items[n] = Item{}
		p.items = p.items[:n]
		return it
	}
	top := p.items[0]
	n := len(p.items) - 1
	p.items[0] = p.items[n]
	p.items[n] = Item{}
	p.items = p.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(p.items) && p.items[l].Bound < p.items[m].Bound {
			m = l
		}
		if r < len(p.items) && p.items[r].Bound < p.items[m].Bound {
			m = r
		}
		if m == i {
			break
		}
		p.items[i], p.items[m] = p.items[m], p.items[i]
		i = m
	}
	return top
}

// steal removes and returns the entry with the smallest bound.
func (p *pool) steal() Item {
	if !p.dfs {
		return p.pop()
	}
	best := 0
	for i := range p.items {
		if p.items[i].Bound < p.items[best].Bound {
			best = i
		}
	}
	it := p.items[best]
	copy(p.items[best:], p.items[best+1:])
	p.items[len(p.items)-1] = Item{}
	p.items = p.items[:len(p.items)-1]
	return it
}
