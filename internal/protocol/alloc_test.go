package protocol

// Allocation regression guard for the report hot path: one full cycle —
// a batch of leaf completions entering table and outbox, then FlushReport
// deriving the frontier once from the outbox cache and recycling the outbox —
// stays within a small constant allocation budget. Before the hot-path work
// (ISSUE 3) the same cycle allocated a fresh outbox table plus one clone per
// trie edge per flush.

import (
	"testing"

	"gossipbnb/internal/code"
)

// discardSender drops messages without retaining them, so the guard measures
// the core, not the test harness.
type discardSender struct{}

func (discardSender) Send(to NodeID, m Msg) {}

func TestFlushReportCycleAllocs(t *testing.T) {
	const depth = 12
	clk := &fakeClock{}
	peers := []NodeID{1, 2, 3}
	core := New(0, Config{ReportBatch: 1 << 20, ReportFanout: 2}, Deps{
		Clock:    clk,
		Sender:   discardSender{},
		Expander: fakeTree{depth: depth},
		Peers:    func() []NodeID { return peers },
		Rand:     func(n int) int { return 0 },
	})
	// Pre-generate the leaf items in binary-counter order so contraction
	// keeps both table and outbox small while every cycle does real trie
	// work. ReportBatch is out of reach, so flushes happen only where the
	// measured function calls FlushReport.
	n := 1 << depth
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		c := code.Root()
		for d := 0; d < depth; d++ {
			c = c.Child(uint32(d+1), uint8(i>>(depth-1-d))&1)
		}
		items = append(items, Item{Code: c})
	}
	leaf := Outcome{Feasible: true, Value: 1}
	cursor := 0
	cycle := func() {
		for i := 0; i < 8; i++ {
			core.OnExpanded(items[cursor], leaf, 0.01)
			cursor++
		}
		core.FlushReport()
	}
	cycle() // warm the outbox free list and the core's scratch
	avg := testing.AllocsPerRun(100, cycle)
	// The irreducible allocations per cycle: the cached-frontier slice and
	// its code clones (they leave the core inside the report), the Report's
	// interface boxing, and amortized trie growth in the long-lived table.
	// Before the hot-path work this cycle averaged 53 allocs.
	if avg > 20 {
		t.Errorf("flush-report cycle allocates %.1f allocs per 8 completions + flush, want ≤ 20", avg)
	}
}
