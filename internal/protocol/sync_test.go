package protocol

// Two-core tests for the anti-entropy diff-gossip exchange: digest walks must
// converge divergent tables, descend only into differing subtrees, respect
// the rate limit, tolerate duplicated and replayed traffic, and fall back to
// the legacy root report for termination.

import (
	"testing"

	"gossipbnb/internal/code"
)

// syncPair wires two cores (ids 0 and 1) back to back through fakeSenders.
type syncPair struct {
	clk    fakeClock
	tree   fakeTree
	a, b   *Core
	sa, sb *fakeSender
}

func newSyncPair(t *testing.T, depth int, cfg Config) *syncPair {
	t.Helper()
	p := &syncPair{tree: fakeTree{depth: depth}}
	p.sa, p.sb = &fakeSender{}, &fakeSender{}
	mk := func(id NodeID, snd *fakeSender, peer NodeID) *Core {
		return New(id, cfg, Deps{
			Clock:    &p.clk,
			Sender:   snd,
			Expander: p.tree,
			Peers:    func() []NodeID { return []NodeID{peer} },
			Rand:     func(n int) int { return 0 },
		})
	}
	p.a = mk(0, p.sa, 1)
	p.b = mk(1, p.sb, 0)
	return p
}

// pump relays queued messages between the two cores until both are quiescent,
// returning everything that crossed the wire (messages to third parties are
// dropped, like an asynchronous network would).
func (p *syncPair) pump(t *testing.T) []Msg {
	t.Helper()
	var relayed []Msg
	for rounds := 0; ; rounds++ {
		if rounds > 10000 {
			t.Fatal("sync did not quiesce")
		}
		progress := false
		for _, s := range p.sa.take() {
			relayed = append(relayed, s.m)
			if s.to == 1 {
				p.b.HandleMessage(0, s.m)
			}
			progress = true
		}
		for _, s := range p.sb.take() {
			relayed = append(relayed, s.m)
			if s.to == 0 {
				p.a.HandleMessage(1, s.m)
			}
			progress = true
		}
		if !progress {
			return relayed
		}
	}
}

// fakeLeaves returns every leaf code of the depth-d fakeTree.
func fakeLeaves(depth int) []code.Code {
	cs := []code.Code{code.Root()}
	for d := 0; d < depth; d++ {
		next := make([]code.Code, 0, 2*len(cs))
		for _, c := range cs {
			for b := uint8(0); b < 2; b++ {
				next = append(next, c.Child(uint32(d+1), b))
			}
		}
		cs = next
	}
	return cs
}

// tablesEqual compares the two cores' table frontiers exactly.
func (p *syncPair) tablesEqual() bool {
	x, y := p.a.Table().Codes(), p.b.Table().Codes()
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if !x[i].Equal(y[i]) {
			return false
		}
	}
	return true
}

// TestDiffGossipSyncBootstrap: a bare digest push to an empty core (the
// restart-rejoin case) triggers a Full root request answered by the whole
// frontier in one uncapped leaf reply.
func TestDiffGossipSyncBootstrap(t *testing.T) {
	p := newSyncPair(t, 6, Config{DiffGossip: true, SyncInterval: 1})
	leaves := fakeLeaves(6)
	var half []code.Code
	for i := 0; i < len(leaves); i += 2 {
		half = append(half, leaves[i]) // no sibling pairs: nothing contracts
	}
	p.a.HandleMessage(2, Report{Codes: half})
	if p.a.Table().Len() != len(half) {
		t.Fatalf("seeded %d codes, table holds %d", len(half), p.a.Table().Len())
	}

	p.a.SendTable(1)
	relayed := p.pump(t)

	if !p.tablesEqual() {
		t.Fatal("tables differ after bootstrap sync")
	}
	if p.a.Table().Digest() != p.b.Table().Digest() {
		t.Fatal("digests differ after bootstrap sync")
	}
	reqs, replies := 0, 0
	for _, m := range relayed {
		switch sm := m.(type) {
		case SubtreeRequest:
			reqs++
			if !sm.Full || !sm.Prefix.IsRoot() {
				t.Fatalf("bootstrap request = %+v, want Full root request", sm)
			}
		case SubtreeReply:
			replies++
			if !sm.Leaf || len(sm.Rel) != len(half) {
				t.Fatalf("bootstrap reply leaf=%v with %d codes, want whole %d-code frontier",
					sm.Leaf, len(sm.Rel), len(half))
			}
		}
	}
	if reqs != 1 || replies != 1 {
		t.Fatalf("bootstrap took %d requests / %d replies, want 1/1", reqs, replies)
	}
}

// TestDiffGossipSyncWalkDescends: a receiver that already shares half the
// sender's table must descend past the root branch digests and pull only the
// missing half — never requesting the subtree it already agrees on.
func TestDiffGossipSyncWalkDescends(t *testing.T) {
	p := newSyncPair(t, 8, Config{DiffGossip: true, SyncInterval: 1})
	leaves := fakeLeaves(8)
	var sparse []code.Code
	for i := 0; i < len(leaves); i += 2 {
		sparse = append(sparse, leaves[i])
	}
	p.a.HandleMessage(2, Report{Codes: sparse})
	// b already has the var-1=0 half: the walk must skip it.
	var shared []code.Code
	for _, c := range sparse {
		if c[0].Branch == 0 {
			shared = append(shared, c)
		}
	}
	p.b.HandleMessage(2, Report{Codes: shared})

	// Step past the quiet gate: b's table just changed, and a core whose
	// delta stream is still warm treats divergence as convergence lag.
	p.clk.t = 2
	p.a.SendTable(1)
	relayed := p.pump(t)

	if !p.tablesEqual() {
		t.Fatal("tables differ after walk")
	}
	syncBytes := 0
	for _, m := range relayed {
		switch sm := m.(type) {
		case SubtreeRequest:
			syncBytes += sm.Size()
			if len(sm.Prefix) > 0 && sm.Prefix[0].Branch == 0 {
				t.Fatalf("walk requested the already-shared subtree %v", sm.Prefix)
			}
		case SubtreeReply:
			syncBytes += sm.Size()
		}
	}
	// The pull must be delta-sized: far below re-shipping the full frontier.
	full := TableMsg{Codes: p.a.Table().Codes()}.Size()
	if syncBytes >= full {
		t.Fatalf("walk moved %d sync bytes >= %d full-frontier bytes", syncBytes, full)
	}
}

// TestDiffGossipSyncRateLimit: at most one walk per SyncInterval, no matter
// how many divergent digests arrive.
func TestDiffGossipSyncRateLimit(t *testing.T) {
	p := newSyncPair(t, 5, Config{DiffGossip: true, SyncInterval: 5})
	leaves := fakeLeaves(5)
	p.a.HandleMessage(2, Report{Codes: leaves[:7]})
	d := p.a.Table().Digest()

	p.b.HandleMessage(0, DigestReport{Digest: d})
	if n := len(p.sb.take()); n != 1 {
		t.Fatalf("first divergent digest sent %d messages, want 1 subtree request", n)
	}
	// Still inside the interval: further divergent digests are ignored.
	p.b.HandleMessage(0, DigestReport{Digest: d})
	p.b.HandleMessage(0, DigestReport{Digest: d ^ 1})
	if n := len(p.sb.take()); n != 0 {
		t.Fatalf("rate-limited core sent %d messages, want 0", n)
	}
	// After the interval the next divergent digest walks again.
	p.clk.t = 6
	p.b.HandleMessage(0, DigestReport{Digest: d})
	if n := len(p.sb.take()); n != 1 {
		t.Fatalf("post-interval digest sent %d messages, want 1", n)
	}
	// An equal digest never walks, whatever the clock says.
	p.clk.t = 100
	p.b.HandleMessage(0, DigestReport{Digest: p.b.Table().Digest()})
	if n := len(p.sb.take()); n != 0 {
		t.Fatalf("equal digest sent %d messages, want 0", n)
	}
}

// TestDiffGossipSyncIdempotent: duplicated requests and replayed stale
// replies must not change a converged table — the exchange is a pull of
// monotone completion facts, so at-least-once delivery is harmless.
func TestDiffGossipSyncIdempotent(t *testing.T) {
	p := newSyncPair(t, 6, Config{DiffGossip: true, SyncInterval: 1})
	leaves := fakeLeaves(6)
	var half []code.Code
	for i := 0; i < len(leaves); i += 2 {
		half = append(half, leaves[i])
	}
	p.a.HandleMessage(2, Report{Codes: half})
	p.a.SendTable(1)
	relayed := p.pump(t)
	if !p.tablesEqual() {
		t.Fatal("tables differ after sync")
	}
	want := p.b.Table().Digest()

	// Replay every sync message at both ends, twice.
	for i := 0; i < 2; i++ {
		for _, m := range relayed {
			p.b.HandleMessage(0, m)
			p.a.HandleMessage(1, m)
		}
		p.pump(t)
	}
	if got := p.b.Table().Digest(); got != want {
		t.Fatalf("replayed sync traffic changed the table: %#x != %#x", got, want)
	}
	if !p.tablesEqual() {
		t.Fatal("tables diverged under replay")
	}
}

// TestDiffGossipTerminationFallback: a core solving in diff mode still
// terminates stragglers with the legacy root report — the broadcast fallback
// no digest walk is needed for.
func TestDiffGossipTerminationFallback(t *testing.T) {
	p := newSyncPair(t, 4, Config{DiffGossip: true, SyncInterval: 1})
	root := p.tree.Root()
	p.a.Seed(root)
	for steps := 0; steps < 1<<12; steps++ {
		it, st := p.a.Next()
		if st == Terminated {
			break
		}
		if st != Expand {
			t.Fatalf("unexpected status %v", st)
		}
		p.clk.t += 0.01
		p.a.OnExpanded(it, p.tree.Outcome(it), 0.01)
	}
	if !p.a.Terminated() {
		t.Fatal("solver did not terminate")
	}
	// The termination broadcast must be a legacy root Report even in diff
	// mode: it is self-certifying and needs no walk.
	sawRoot := false
	for _, s := range p.sa.take() {
		if r, ok := s.m.(Report); ok && len(r.Codes) == 1 && r.Codes[0].IsRoot() {
			sawRoot = true
			if s.to == 1 {
				p.b.HandleMessage(0, s.m)
			}
		} else if s.to == 1 {
			p.b.HandleMessage(0, s.m)
		}
	}
	if !sawRoot {
		t.Fatal("no legacy root report in the termination broadcast")
	}
	p.pump(t)
	if _, st := p.b.Next(); st != Terminated {
		t.Fatalf("straggler status = %v, want Terminated", st)
	}
}
