package protocol

import (
	"gossipbnb/internal/btree"
	"gossipbnb/internal/code"
)

// TreeExpander is the standard Expander over a recorded basic tree — the
// stand-in both runtimes use for re-deriving a subproblem from the initial
// data (§5.3.1). Sharing one adapter guarantees the simulator and the live
// runtime translate codes and branching outcomes identically, which is the
// parity invariant between them.
type TreeExpander struct{ Tree *btree.Tree }

// Locate implements Expander.
func (e TreeExpander) Locate(c code.Code) (Item, bool) {
	idx, ok := e.Tree.Locate(c)
	if !ok {
		return Item{}, false
	}
	return Item{Code: c, Ref: idx, Bound: e.Tree.Nodes[idx].Bound}, true
}

// Root returns the seed item for the original problem.
func (e TreeExpander) Root() Item {
	return Item{Code: code.Root(), Ref: 0, Bound: e.Tree.Nodes[0].Bound}
}

// Outcome translates the recorded node behind it into the core's branching
// outcome.
func (e TreeExpander) Outcome(it Item) Outcome {
	tn := &e.Tree.Nodes[it.Ref]
	out := Outcome{Feasible: tn.Feasible, Value: tn.Bound}
	if tn.Leaf() {
		return out
	}
	out.Children = make([]Item, 0, 2)
	for b := uint8(0); b < 2; b++ {
		idx := tn.Children[b]
		out.Children = append(out.Children, Item{
			Code:  it.Code.Child(tn.BranchVar, b),
			Ref:   idx,
			Bound: e.Tree.Nodes[idx].Bound,
		})
	}
	return out
}
