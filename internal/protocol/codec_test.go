package protocol

import (
	"math"
	"reflect"
	"testing"

	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
)

func sampleCodes() []code.Code {
	return []code.Code{
		code.Root(),
		code.Root().Child(1, 0).Child(2, 1),
		code.Root().Child(300, 1), // multi-byte varint variable
	}
}

func TestCodecRoundTrip(t *testing.T) {
	codes := sampleCodes()
	cases := []Msg{
		Report{Codes: codes, Incumbent: 3.5, ActAge: 0.25},
		TableMsg{Codes: codes[1:], Incumbent: -1, ActAge: 12},
		WorkRequest{Incumbent: math.Inf(1), ActAge: 0},
		WorkGrant{Codes: codes[1:], Incumbent: -2, ActAge: 7},
		WorkDeny{Incumbent: 0, ActAge: 3},
		DigestReport{Digest: 0xdeadbeefcafef00d, Codes: codes, Incumbent: 2, ActAge: 1},
		SubtreeRequest{Prefix: codes[1], Full: true, Incumbent: 9, ActAge: 4},
		SubtreeRequest{Prefix: code.Root(), Incumbent: -3},
		SubtreeReply{Prefix: codes[1], Leaf: true, Rel: codes[2:], Incumbent: 5, ActAge: 2},
		SubtreeReply{Prefix: codes[2], BranchVar: 301,
			Kids: [2]ctree.ChildDigest{{Present: true, Digest: 7}, {Present: true, Digest: 0xffffffffffffffff}}},
		SubtreeReply{Prefix: code.Root(), BranchVar: 1,
			Kids: [2]ctree.ChildDigest{1: {Present: true, Digest: 42}}},
		Hello{ID: 7, Addr: "127.0.0.1:9021", Incumbent: math.Inf(1), ActAge: 0.5},
		Hello{ID: 300, Incumbent: 1},
		Welcome{Peers: []Peer{{ID: 0, Addr: "10.0.0.1:80"}, {ID: 5}, {ID: 999, Addr: "x"}},
			Incumbent: -4, ActAge: 6},
		Welcome{Incumbent: 2},
	}
	for _, m := range cases {
		buf, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		if len(buf) != m.Size() {
			t.Errorf("%T: Size() = %d but Encode produced %d bytes", m, m.Size(), len(buf))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if n != len(buf) {
			t.Errorf("%T: decode consumed %d of %d bytes", m, n, len(buf))
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T round trip mismatch:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestCodecEmptyCodeBatches(t *testing.T) {
	for _, m := range []Msg{Report{}, TableMsg{}, WorkGrant{}, DigestReport{}, SubtreeRequest{}, SubtreeReply{Leaf: true}} {
		buf, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, _, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(m) {
			t.Errorf("decoded %T, want %T", got, m)
		}
	}
}

func TestCodecSelfDelimiting(t *testing.T) {
	// Concatenated messages decode one at a time.
	a, _ := Encode(nil, WorkDeny{Incumbent: 1})
	buf, _ := Encode(a, Report{Codes: sampleCodes(), Incumbent: 2})
	first, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := first.(WorkDeny); !ok {
		t.Fatalf("first = %T", first)
	}
	second, _, err := Decode(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := second.(Report); !ok {
		t.Fatalf("second = %T", second)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, _, err := Decode(make([]byte, 16)); err == nil {
		t.Error("truncated scalars accepted")
	}
	if _, _, err := Decode(make([]byte, 17)); err == nil {
		t.Error("kind 0 accepted")
	}
	buf, _ := Encode(nil, WorkDeny{})
	buf[0] = 99
	if _, _, err := Decode(buf); err == nil {
		t.Error("unknown kind accepted")
	}
	// Report whose code batch is cut off.
	buf, _ = Encode(nil, Report{Codes: sampleCodes()})
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Error("truncated code batch accepted")
	}
	if _, err := Encode(nil, nil); err == nil {
		t.Error("nil message encoded")
	}
	// Digest report whose 8-byte digest is cut off.
	buf, _ = Encode(nil, DigestReport{Digest: 1, Codes: sampleCodes()})
	if _, _, err := Decode(buf[:scalarSize+4]); err == nil {
		t.Error("truncated digest accepted")
	}
	// Subtree request whose prefix is cut off.
	buf, _ = Encode(nil, SubtreeRequest{Prefix: sampleCodes()[2]})
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated subtree request prefix accepted")
	}
	// Leaf reply whose declared subtree section overruns the buffer.
	buf, _ = Encode(nil, SubtreeReply{Leaf: true, Prefix: sampleCodes()[1], Rel: sampleCodes()})
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated subtree section accepted")
	}
	// Branch reply with an invalid child mask.
	branch := SubtreeReply{Prefix: sampleCodes()[1], BranchVar: 9,
		Kids: [2]ctree.ChildDigest{{Present: true, Digest: 1}, {Present: true, Digest: 2}}}
	buf, _ = Encode(nil, branch)
	bad := append([]byte(nil), buf...)
	bad[len(bad)-17] = 7 // the mask byte precedes the two 8-byte digests
	if _, _, err := Decode(bad); err == nil {
		t.Error("invalid child mask accepted")
	}
	// Branch reply whose child digests are cut off.
	if _, _, err := Decode(buf[:len(buf)-3]); err == nil {
		t.Error("truncated child digests accepted")
	}
	// Hello whose address is cut off.
	buf, _ = Encode(nil, Hello{ID: 3, Addr: "host:1234"})
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Error("truncated hello address accepted")
	}
	// Welcome whose last peer is cut off.
	buf, _ = Encode(nil, Welcome{Peers: []Peer{{ID: 1, Addr: "a:1"}, {ID: 2, Addr: "b:2"}}})
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated welcome peer accepted")
	}
	// Hello with a corrupt declared address length.
	buf, _ = Encode(nil, Hello{ID: 1})
	buf[len(buf)-1] = 0xff // addr length varint continues into nothing
	if _, _, err := Decode(buf); err == nil {
		t.Error("bad hello address length accepted")
	}
}

// FuzzDecode throws arbitrary bytes at the codec: it must never panic, and
// anything it accepts must survive an encode/decode round trip unchanged.
// (Byte-identity is NOT required: varints have non-minimal encodings that
// decode fine but re-encode shorter.)
func FuzzDecode(f *testing.F) {
	for _, m := range []Msg{
		Report{Codes: sampleCodes(), Incumbent: 1, ActAge: 2},
		TableMsg{Codes: sampleCodes()[1:], Incumbent: 3},
		WorkRequest{Incumbent: 4},
		WorkGrant{Codes: sampleCodes()[1:2], ActAge: 5},
		WorkDeny{},
		DigestReport{Digest: 0x1234, Codes: sampleCodes(), Incumbent: 6},
		SubtreeRequest{Prefix: sampleCodes()[1], Full: true},
		SubtreeReply{Leaf: true, Prefix: sampleCodes()[1], Rel: sampleCodes()[2:]},
		SubtreeReply{Prefix: sampleCodes()[2], BranchVar: 3,
			Kids: [2]ctree.ChildDigest{{Present: true, Digest: 11}}},
		Hello{ID: 12, Addr: "127.0.0.1:8080", Incumbent: 7},
		Welcome{Peers: []Peer{{ID: 1, Addr: "a:1"}, {ID: 2}}, ActAge: 3},
	} {
		buf, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		// Compare canonical encodings: bit-exact even for NaN scalars,
		// which reflect.DeepEqual would reject.
		re2, err := Encode(nil, m2)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != string(re2) {
			t.Fatalf("round trip changed the message:\n was %+v\n now %+v", m, m2)
		}
	})
}
