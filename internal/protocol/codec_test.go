package protocol

import (
	"math"
	"reflect"
	"testing"

	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
)

func sampleCodes() []code.Code {
	return []code.Code{
		code.Root(),
		code.Root().Child(1, 0).Child(2, 1),
		code.Root().Child(300, 1), // multi-byte varint variable
	}
}

func TestCodecRoundTrip(t *testing.T) {
	codes := sampleCodes()
	cases := []Msg{
		Report{Codes: codes, Incumbent: 3.5, ActAge: 0.25},
		TableMsg{Codes: codes[1:], Incumbent: -1, ActAge: 12},
		WorkRequest{Incumbent: math.Inf(1), ActAge: 0},
		WorkGrant{Codes: codes[1:], Incumbent: -2, ActAge: 7},
		WorkDeny{Incumbent: 0, ActAge: 3},
		DigestReport{Digest: 0xdeadbeefcafef00d, Codes: codes, Incumbent: 2, ActAge: 1},
		SubtreeRequest{Prefix: codes[1], Full: true, Incumbent: 9, ActAge: 4},
		SubtreeRequest{Prefix: code.Root(), Incumbent: -3},
		SubtreeReply{Prefix: codes[1], Leaf: true, Rel: codes[2:], Incumbent: 5, ActAge: 2},
		SubtreeReply{Prefix: codes[2], BranchVar: 301,
			Kids: [2]ctree.ChildDigest{{Present: true, Digest: 7}, {Present: true, Digest: 0xffffffffffffffff}}},
		SubtreeReply{Prefix: code.Root(), BranchVar: 1,
			Kids: [2]ctree.ChildDigest{1: {Present: true, Digest: 42}}},
		Hello{ID: 7, Addr: "127.0.0.1:9021", Incumbent: math.Inf(1), ActAge: 0.5},
		Hello{ID: 300, Incumbent: 1},
		Welcome{Peers: []Peer{{ID: 0, Addr: "10.0.0.1:80"}, {ID: 5}, {ID: 999, Addr: "x"}},
			Incumbent: -4, ActAge: 6},
		Welcome{Incumbent: 2},
		Ping{Incumbent: 3.5, ActAge: 0.25},
		Ping{},
	}
	for _, m := range cases {
		buf, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		if len(buf) != m.Size() {
			t.Errorf("%T: Size() = %d but Encode produced %d bytes", m, m.Size(), len(buf))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if n != len(buf) {
			t.Errorf("%T: decode consumed %d of %d bytes", m, n, len(buf))
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T round trip mismatch:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestCodecEmptyCodeBatches(t *testing.T) {
	for _, m := range []Msg{Report{}, TableMsg{}, WorkGrant{}, DigestReport{}, SubtreeRequest{}, SubtreeReply{Leaf: true}} {
		buf, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, _, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(m) {
			t.Errorf("decoded %T, want %T", got, m)
		}
	}
}

func TestCodecSelfDelimiting(t *testing.T) {
	// Concatenated messages decode one at a time.
	a, _ := Encode(nil, WorkDeny{Incumbent: 1})
	buf, _ := Encode(a, Report{Codes: sampleCodes(), Incumbent: 2})
	first, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := first.(WorkDeny); !ok {
		t.Fatalf("first = %T", first)
	}
	second, _, err := Decode(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := second.(Report); !ok {
		t.Fatalf("second = %T", second)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, _, err := Decode(make([]byte, 16)); err == nil {
		t.Error("truncated scalars accepted")
	}
	if _, _, err := Decode(make([]byte, 17)); err == nil {
		t.Error("kind 0 accepted")
	}
	buf, _ := Encode(nil, WorkDeny{})
	buf[0] = 99
	if _, _, err := Decode(buf); err == nil {
		t.Error("unknown kind accepted")
	}
	// Report whose code batch is cut off.
	buf, _ = Encode(nil, Report{Codes: sampleCodes()})
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Error("truncated code batch accepted")
	}
	if _, err := Encode(nil, nil); err == nil {
		t.Error("nil message encoded")
	}
	// Digest report whose 8-byte digest is cut off.
	buf, _ = Encode(nil, DigestReport{Digest: 1, Codes: sampleCodes()})
	if _, _, err := Decode(buf[:scalarSize+4]); err == nil {
		t.Error("truncated digest accepted")
	}
	// Subtree request whose prefix is cut off.
	buf, _ = Encode(nil, SubtreeRequest{Prefix: sampleCodes()[2]})
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated subtree request prefix accepted")
	}
	// Leaf reply whose declared subtree section overruns the buffer.
	buf, _ = Encode(nil, SubtreeReply{Leaf: true, Prefix: sampleCodes()[1], Rel: sampleCodes()})
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated subtree section accepted")
	}
	// Branch reply with an invalid child mask.
	branch := SubtreeReply{Prefix: sampleCodes()[1], BranchVar: 9,
		Kids: [2]ctree.ChildDigest{{Present: true, Digest: 1}, {Present: true, Digest: 2}}}
	buf, _ = Encode(nil, branch)
	bad := append([]byte(nil), buf...)
	bad[len(bad)-17] = 7 // the mask byte precedes the two 8-byte digests
	if _, _, err := Decode(bad); err == nil {
		t.Error("invalid child mask accepted")
	}
	// Branch reply whose child digests are cut off.
	if _, _, err := Decode(buf[:len(buf)-3]); err == nil {
		t.Error("truncated child digests accepted")
	}
	// Hello whose address is cut off.
	buf, _ = Encode(nil, Hello{ID: 3, Addr: "host:1234"})
	if _, _, err := Decode(buf[:len(buf)-2]); err == nil {
		t.Error("truncated hello address accepted")
	}
	// Welcome whose last peer is cut off.
	buf, _ = Encode(nil, Welcome{Peers: []Peer{{ID: 1, Addr: "a:1"}, {ID: 2, Addr: "b:2"}}})
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated welcome peer accepted")
	}
	// Hello with a corrupt declared address length.
	buf, _ = Encode(nil, Hello{ID: 1})
	buf[len(buf)-1] = 0xff // addr length varint continues into nothing
	if _, _, err := Decode(buf); err == nil {
		t.Error("bad hello address length accepted")
	}
}

func TestCodecInstanceRoundTrip(t *testing.T) {
	codes := sampleCodes()
	inner := []Msg{
		Report{Codes: codes, Incumbent: 3.5, ActAge: 0.25},
		TableMsg{Codes: codes[1:], Incumbent: -1, ActAge: 12},
		WorkRequest{Incumbent: math.Inf(1)},
		WorkGrant{Codes: codes[1:], Incumbent: -2, ActAge: 7},
		WorkDeny{ActAge: 3},
		DigestReport{Digest: 0xdeadbeef, Codes: codes, Incumbent: 2},
		SubtreeRequest{Prefix: codes[1], Full: true, Incumbent: 9},
		SubtreeReply{Prefix: codes[1], Leaf: true, Rel: codes[2:], Incumbent: 5},
		Hello{ID: 7, Addr: "127.0.0.1:9021", Incumbent: 1},
		Welcome{Peers: []Peer{{ID: 0, Addr: "10.0.0.1:80"}}, Incumbent: -4},
		Ping{Incumbent: 12, ActAge: 0.5},
	}
	for _, inst := range []InstanceID{0, 1, 2, 127, 128, 300, math.MaxUint32} {
		for _, m := range inner {
			im := InstMsg{Instance: inst, Msg: m}
			buf, err := Encode(nil, im)
			if err != nil {
				t.Fatalf("inst %d %T: encode: %v", inst, m, err)
			}
			if len(buf) != im.Size() {
				t.Errorf("inst %d %T: Size() = %d but Encode produced %d bytes", inst, m, im.Size(), len(buf))
			}
			gotInst, got, n, err := DecodeInstance(buf)
			if err != nil {
				t.Fatalf("inst %d %T: decode: %v", inst, m, err)
			}
			if gotInst != inst || n != len(buf) {
				t.Errorf("inst %d %T: DecodeInstance = inst %d, %d of %d bytes", inst, m, gotInst, n, len(buf))
			}
			if !reflect.DeepEqual(got, m) {
				t.Errorf("inst %d %T round trip mismatch:\n got %+v\nwant %+v", inst, m, got, m)
			}
			if inst == 0 {
				// Instance 0 is the legacy encoding, bit for bit.
				legacy, _ := Encode(nil, m)
				if string(buf) != string(legacy) {
					t.Errorf("%T: instance 0 encoding differs from legacy", m)
				}
				if _, _, err := Decode(buf); err != nil {
					t.Errorf("%T: legacy Decode rejected instance-0 bytes: %v", m, err)
				}
			}
		}
	}
}

func TestDecodeRejectsInstanceInLegacyMode(t *testing.T) {
	// Every pre-instance kind must refuse the instance field in version-0
	// mode: a flagged header is a protocol violation there, not a message.
	for k := byte(1); k < byte(KindCount); k++ {
		buf, err := Encode(nil, InstMsg{Instance: 42, Msg: WorkDeny{}})
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = k | instanceFlag
		if _, _, err := Decode(buf); err == nil {
			t.Errorf("legacy Decode accepted instance-scoped kind %d", k)
		}
		if _, _, _, err := DecodeInstance(buf); err != nil && k == KindDeny {
			t.Errorf("DecodeInstance rejected a valid tagged message: %v", err)
		}
	}
}

func TestDecodeInstanceRejectsGarbage(t *testing.T) {
	if _, _, _, err := DecodeInstance(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	good, err := Encode(nil, InstMsg{Instance: 300, Msg: WorkDeny{Incumbent: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Flagged kind byte with nothing after it: the varint is truncated.
	if _, _, _, err := DecodeInstance(good[:1]); err == nil {
		t.Error("truncated instance varint accepted")
	}
	// Scalars cut off after a valid instance varint.
	if _, _, _, err := DecodeInstance(good[:len(good)-1]); err == nil {
		t.Error("truncated scalars accepted")
	}
	// A flagged header carrying instance 0 is non-canonical (the canonical
	// zero is flagless) and must be rejected, not aliased.
	zero := append([]byte{KindDeny | instanceFlag, 0}, good[3:]...)
	if _, _, _, err := DecodeInstance(zero); err == nil {
		t.Error("instance 0 with the flag set accepted")
	}
	// Instance varint overflowing uint32.
	over := append([]byte{KindDeny | instanceFlag, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, good[3:]...)
	if _, _, _, err := DecodeInstance(over); err == nil {
		t.Error("instance id overflow accepted")
	}
	// Unknown kind under the flag.
	bad := append([]byte(nil), good...)
	bad[0] = 99 | instanceFlag
	if _, _, _, err := DecodeInstance(bad); err == nil {
		t.Error("unknown flagged kind accepted")
	}
	// Payload truncation inside a tagged message.
	rep, _ := Encode(nil, InstMsg{Instance: 5, Msg: Report{Codes: sampleCodes()}})
	if _, _, _, err := DecodeInstance(rep[:len(rep)-2]); err == nil {
		t.Error("truncated tagged code batch accepted")
	}
	// Nested wrappers must not encode.
	if _, err := Encode(nil, InstMsg{Instance: 1, Msg: InstMsg{Instance: 2, Msg: WorkDeny{}}}); err == nil {
		t.Error("nested InstMsg encoded")
	}
}

// FuzzDecode throws arbitrary bytes at the codec: it must never panic, and
// anything it accepts must survive an encode/decode round trip unchanged.
// (Byte-identity is NOT required: varints have non-minimal encodings that
// decode fine but re-encode shorter.) Both decode modes run on every input:
// the version-0 Decode and the instance-aware DecodeInstance.
func FuzzDecode(f *testing.F) {
	for _, m := range []Msg{
		Report{Codes: sampleCodes(), Incumbent: 1, ActAge: 2},
		TableMsg{Codes: sampleCodes()[1:], Incumbent: 3},
		WorkRequest{Incumbent: 4},
		WorkGrant{Codes: sampleCodes()[1:2], ActAge: 5},
		WorkDeny{},
		DigestReport{Digest: 0x1234, Codes: sampleCodes(), Incumbent: 6},
		SubtreeRequest{Prefix: sampleCodes()[1], Full: true},
		SubtreeReply{Leaf: true, Prefix: sampleCodes()[1], Rel: sampleCodes()[2:]},
		SubtreeReply{Prefix: sampleCodes()[2], BranchVar: 3,
			Kids: [2]ctree.ChildDigest{{Present: true, Digest: 11}}},
		Hello{ID: 12, Addr: "127.0.0.1:8080", Incumbent: 7},
		Welcome{Peers: []Peer{{ID: 1, Addr: "a:1"}, {ID: 2}}, ActAge: 3},
		Ping{Incumbent: 1, ActAge: 2},
	} {
		buf, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// Instance-scoped headers: tagged seeds for the flagged-kind path.
	for _, inst := range []InstanceID{1, 128, math.MaxUint32} {
		for _, m := range []Msg{
			Report{Codes: sampleCodes(), Incumbent: 1},
			WorkRequest{ActAge: 2},
			DigestReport{Digest: 0x77, Codes: sampleCodes()[:1]},
			Hello{ID: 3, Addr: "h:1"},
		} {
			buf, err := Encode(nil, InstMsg{Instance: inst, Msg: m})
			if err != nil {
				f.Fatal(err)
			}
			f.Add(buf)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{KindDeny | 0x80})          // flagged kind, truncated varint
	f.Add([]byte{KindDeny | 0x80, 0})       // flagged instance 0 (non-canonical)
	f.Add([]byte{KindDeny | 0x80, 0xac, 2}) // flagged header, truncated scalars
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzInstanceDecode(t, data)
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		// Compare canonical encodings: bit-exact even for NaN scalars,
		// which reflect.DeepEqual would reject.
		re2, err := Encode(nil, m2)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != string(re2) {
			t.Fatalf("round trip changed the message:\n was %+v\n now %+v", m, m2)
		}
	})
}

// fuzzInstanceDecode holds the instance-aware half of the fuzz property: what
// DecodeInstance accepts must re-encode (tagged) and re-decode to the same
// instance and canonical bytes, and version-0 Decode must refuse any input
// whose header carries the instance flag.
func fuzzInstanceDecode(t *testing.T, data []byte) {
	if len(data) > 0 && data[0]&0x80 != 0 {
		if _, _, err := Decode(data); err == nil {
			t.Fatal("legacy Decode accepted an instance-flagged header")
		}
	}
	inst, m, n, err := DecodeInstance(data)
	if err != nil {
		return
	}
	if n <= 0 || n > len(data) {
		t.Fatalf("DecodeInstance consumed %d of %d bytes", n, len(data))
	}
	re, err := Encode(nil, InstMsg{Instance: inst, Msg: m})
	if err != nil {
		t.Fatalf("decoded message does not re-encode: %v", err)
	}
	inst2, m2, n2, err := DecodeInstance(re)
	if err != nil {
		t.Fatalf("re-encoded message does not decode: %v", err)
	}
	if inst2 != inst || n2 != len(re) {
		t.Fatalf("re-decode = inst %d, %d of %d bytes; want inst %d", inst2, n2, len(re), inst)
	}
	re2, err := Encode(nil, InstMsg{Instance: inst2, Msg: m2})
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(re2) {
		t.Fatalf("instance round trip changed the message:\n was %+v\n now %+v", m, m2)
	}
}
