// Package protocol implements the paper's §5 node state machine exactly
// once, independent of clock and transport: the active-problem pool with the
// selection rules of §2, the contracted completed-problem table and report
// outbox of §5.3.2, adaptive report pacing, on-demand load balancing
// (work request / grant / deny), failure recovery via the table complement,
// and the almost-implicit termination detection of §5.4 — together with the
// canonical wire-message set and its binary codec.
//
// A Core never schedules anything and never blocks. It talks to the world
// through three small interfaces — Clock (what time is it), Sender (emit a
// canonical message), Expander (resolve a self-contained code into a
// problem) — plus a handful of function hooks, so the same state machine
// runs under the deterministic virtual-time simulator (internal/dbnb) and
// the wall-clock goroutine runtime (internal/live). Drivers own everything
// the substrate defines: timers, busy periods, cost accounting, crash
// delivery. The Core owns every protocol decision.
package protocol

import (
	"math"
	"sync"

	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
)

// NodeID identifies a protocol participant. Drivers map it to their own
// process identifiers (sim.NodeID, live.NodeID).
type NodeID int

// Clock supplies the protocol's notion of time, in seconds. The simulator
// passes virtual time; the live runtime passes wall-clock seconds since
// start. The protocol never compares clocks across nodes — only local
// differences and relayed ages, which survive the unsynchronized clocks
// of §4.
type Clock interface {
	Now() float64
}

// Sender transmits one canonical message. Sends must not block and may
// silently drop — the asynchronous model of §4.
type Sender interface {
	Send(to NodeID, m Msg)
}

// BroadcastSender is an optional Sender capability: deliver one message to
// a whole peer set. The termination broadcast of §5.4 — the only procs-wide
// fan-out in the protocol — dispatches through it when available, letting a
// transport collapse the procs² message storm into per-destination group
// deliveries. A plain Sender gets the equivalent per-peer Send loop.
type BroadcastSender interface {
	Broadcast(peers []NodeID, m Msg)
}

// Expander is the full expansion contract of §5.3.1: subproblem codes are
// self-contained, so together with the initial problem data an Expander can
// resolve any code into live pool state and branch it. Implementations are
// btree.Expander (replaying a recorded basic tree) and bnb.Expander
// (re-deriving solver state from the initial data); this package knows
// neither problem representation. An Expander need not be safe for
// concurrent use: each process owns one.
type Expander interface {
	// Locate resolves a self-contained subproblem code into an active-problem
	// Item (driver handle plus bound). ok is false when the code does not
	// identify a node of the problem being solved.
	Locate(c code.Code) (Item, bool)
	// Root returns the seed item for the original problem.
	Root() Item
	// Outcome branches it, revealing feasibility, value, and children.
	Outcome(it Item) Outcome
}

// SelectRule chooses which active problem a process branches next (§2).
type SelectRule int

// Selection rules.
const (
	BestFirst SelectRule = iota
	DepthFirst
)

// Config carries the protocol parameters. All durations are in the driver's
// clock unit (seconds).
type Config struct {
	// Select is the local selection rule (§2).
	Select SelectRule
	// Prune enables incumbent-based elimination.
	Prune bool
	// ReportBatch is c: completed codes accumulated before a work report is
	// sent. ReportFanout is m: how many random members receive each report.
	ReportBatch  int
	ReportFanout int
	// ReportTimeout flushes a non-empty outbox that has waited this long.
	ReportTimeout float64
	// AdaptiveReports scales the outbox flush timeout with the observed
	// per-subproblem execution time (§6.3.1, §7).
	AdaptiveReports bool
	// MinPoolToShare is how many active problems a process must hold before
	// it grants work away. MaxShare caps problems per grant.
	MinPoolToShare int
	MaxShare       int
	// RecoveryPatience is how many consecutive failed work requests a
	// process tolerates before it presumes work was lost and recovers an
	// uncompleted problem from the complement of its table (§5.3.2).
	RecoveryPatience int
	// RecoveryQuiet is the minimum window without any remote progress
	// before a starving process may presume work was lost. Jittered ±25%
	// per attempt so concurrent recoverers stagger.
	RecoveryQuiet float64
	// DisableRecovery turns the failure-recovery mechanism off (ablation).
	DisableRecovery bool
	// DiffGossip switches the report path to anti-entropy diff gossip:
	// reports and table pushes carry the table's content digest (plus the
	// recent-delta codes a report would have carried anyway), and a receiver
	// whose digest differs walks the sender's subtree digests to pull only
	// what it is missing. Off by default — legacy full-frontier gossip is the
	// bit-identical baseline the golden tests pin.
	DiffGossip bool
	// SyncInterval rate-limits anti-entropy walks: a core starts at most one
	// digest walk per interval. During convergence peers' tables differ
	// almost always (deltas are in flight), so walking on every digest
	// mismatch would trade the report savings back for request storms; the
	// walk exists to repair real divergence — loss, restarts, partitions —
	// not convergence lag. Defaults to ReportTimeout.
	SyncInterval float64
}

func (c Config) withDefaults() Config {
	if c.ReportBatch <= 0 {
		c.ReportBatch = 8
	}
	if c.ReportFanout <= 0 {
		c.ReportFanout = 2
	}
	if c.ReportTimeout <= 0 {
		c.ReportTimeout = 30
	}
	if c.MinPoolToShare <= 0 {
		c.MinPoolToShare = 2
	}
	if c.MaxShare <= 0 {
		c.MaxShare = 16
	}
	if c.RecoveryPatience <= 0 {
		c.RecoveryPatience = 3
	}
	if c.RecoveryQuiet <= 0 {
		c.RecoveryQuiet = 10
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = c.ReportTimeout
	}
	return c
}

// Anti-entropy walk tuning.
const (
	// syncLeafMax is the subtree-frontier size at or below which a sync
	// responder inlines the codes instead of describing another level of
	// child digests. Every level of descent costs a request/reply pair per
	// differing child, so the threshold is set where inlining a frontier
	// chunk beats the structural traffic of walking it — a quiescent table's
	// whole diff then transfers in a handful of inline replies while the
	// digest comparison still prunes the subtrees the peers agree on.
	syncLeafMax = 64
	// maxSyncRequests caps in-flight subtree requests per walk. Replies
	// release budget, so a deep walk still completes — a converging core
	// must be able to pull its whole remaining diff, or termination stalls
	// and recovery re-expands work — while the cap bounds how much a single
	// digest mismatch fans out at once.
	maxSyncRequests = 32
	// syncQuietJitter spreads the quiet gate: each divergent digest draws a
	// quiet threshold uniform in [SyncInterval, (1+jitter)·SyncInterval), so
	// the longer a core's delta stream has been silent the likelier it is to
	// start repairing. At quiescence this thins the walker herd — every
	// starving member sees the same global silence, but only one converged
	// table is needed (its root broadcast terminates everyone), so the few
	// early walkers finish the job while the rest never pay for a pull.
	syncQuietJitter = 8.0
)

// Deps wires a Core to its driver. Clock, Sender, Expander, Peers, and Rand
// are required; RandFloat and the hooks are optional.
type Deps struct {
	Clock    Clock
	Sender   Sender
	Expander Expander
	// Peers returns the members this process may contact (its current view,
	// excluding itself). Crashed members may appear — failures are not
	// directly detectable (§4), they only manifest as unanswered requests.
	Peers func() []NodeID
	// Rand returns a uniform int in [0, n). All stochastic protocol choices
	// draw from it, so a deterministic source makes the Core deterministic.
	Rand func(n int) int
	// RandFloat returns a uniform float64 in [0, 1), used to jitter the
	// recovery quiet window. nil means no jitter.
	RandFloat func() float64
	// OnComplete fires for every locally completed subproblem entering the
	// table (not for completions learned from peers).
	OnComplete func(c code.Code)
	// OnTableChange fires after any table mutation — completion or merge —
	// for storage sampling.
	OnTableChange func()
}

// Counters tallies protocol-level events, for metrics and results.
type Counters struct {
	Expanded      int // subproblems whose branching outcome this core applied
	ReportsSent   int // work-report messages sent
	ReportCodes   int // codes carried by those reports (after compression)
	ReportedComps int // completions covered by flushed reports (before compression)
	TablesSent    int // full-table gossip messages sent
	WorkRequests  int // work-request messages sent
	WorkSent      int // subproblems shipped to requesters
	Recoveries    int // subproblems re-created by complement recovery
	PeakPool      int // max active problems held at once
}

// Merge folds another tally into c, for drivers that accumulate event counts
// across a process's crash-restart incarnations: counts add, PeakPool keeps
// the maximum.
func (c Counters) Merge(o Counters) Counters {
	c.Expanded += o.Expanded
	c.ReportsSent += o.ReportsSent
	c.ReportCodes += o.ReportCodes
	c.ReportedComps += o.ReportedComps
	c.TablesSent += o.TablesSent
	c.WorkRequests += o.WorkRequests
	c.WorkSent += o.WorkSent
	c.Recoveries += o.Recoveries
	if o.PeakPool > c.PeakPool {
		c.PeakPool = o.PeakPool
	}
	return c
}

// Core is the per-process protocol state machine. It is not safe for
// concurrent use: the driver must serialize all calls (the simulator is
// single-threaded by construction; the live runtime confines each Core to
// its node goroutine).
type Core struct {
	id  NodeID
	cfg Config
	d   Deps

	pool   pool
	table  *ctree.Table
	outbox *ctree.Table // new locally completed subproblems, contracted

	incumbent  float64
	lastReport float64
	outboxAdds int     // completions inserted into the outbox since last flush
	ewmaCost   float64 // smoothed per-subproblem execution time (adaptive reports)
	terminated bool

	reqPending bool
	failedReqs int
	// poolKeys and keyBuf are scratch for the pooled-code guard: the key set
	// of every code currently in the pool, rebuilt on demand when a grant or
	// recovery adoption arrives. At-least-once delivery means the same code
	// can reach this process twice — a duplicated grant, or a delayed grant
	// racing the complement recovery that already re-created its region — and
	// pooling it twice expands the whole subtree twice locally. The set lives
	// only on those rare paths, so the push/pop hot path stays untouched.
	poolKeys map[string]struct{}
	keyBuf   []byte
	// lastProgress is the last remote progress: a grant, or a novel
	// report/table. remoteAct anchors the freshest evidence that some OTHER
	// process was computing (merged from message ages); selfBusy anchors
	// this process's own last computation. Outgoing ages use both; the
	// recovery gate uses only remote evidence — a survivor's own work must
	// not stop it from presuming its dead peers' work lost.
	lastProgress float64
	remoteAct    float64
	selfBusy     float64

	// Anti-entropy walk state (DiffGossip only). lastSync is when the last
	// digest walk started (-Inf = never, so a fresh core — including a
	// crash-restart rejoin — syncs on its first divergent digest); syncOut
	// is the in-flight subtree-request budget of the current walk. lastDelta
	// is the last table change from the delta stream — a local completion or
	// a novel gossiped code, NOT a walk pull — anchoring the quiet gate that
	// keeps walks out of mid-run convergence; a walk's own pulls must not
	// re-arm the gate or endgame repair would crawl one round per interval.
	// syncHot marks a committed aggregator: it passed the quiet gate once
	// and keeps walking round after round (one walk in flight at a time)
	// until its table converges or the delta stream resumes.
	lastSync  float64
	syncOut   int
	lastDelta float64
	syncHot   bool

	cnt Counters
}

// New builds a Core. Deps must carry non-nil Clock, Sender, Expander, Peers,
// and Rand.
func New(id NodeID, cfg Config, d Deps) *Core {
	return &Core{
		id:        id,
		cfg:       cfg.withDefaults(),
		d:         d,
		pool:      pool{dfs: cfg.Select == DepthFirst},
		table:     newPooledTable(),
		outbox:    newPooledTable(),
		incumbent: math.Inf(1),
		lastSync:  math.Inf(-1),
	}
}

// tablePool recycles completion tables — trie-vertex free lists included —
// across core lifetimes, so a process multiplexing a stream of instances
// reuses the arenas of the instances it reaped instead of regrowing them.
var tablePool = sync.Pool{New: func() any { return ctree.New() }}

func newPooledTable() *ctree.Table {
	return tablePool.Get().(*ctree.Table)
}

// Release returns the core's completion table and outbox to the shared pool,
// for drivers reaping a finished instance. The core stays usable as a
// tombstone — Incumbent, Terminated, and ActivityAge still answer — but its
// tables are replaced by fresh empties, so callers must not expect table
// content to survive.
func (c *Core) Release() {
	c.table.Reset()
	c.outbox.Reset()
	tablePool.Put(c.table)
	tablePool.Put(c.outbox)
	c.table = ctree.New()
	c.outbox = ctree.New()
}

// --- state accessors ---------------------------------------------------------

// Terminated reports whether this core detected termination.
func (c *Core) Terminated() bool { return c.terminated }

// Incumbent returns the best solution value known to this core.
func (c *Core) Incumbent() float64 { return c.incumbent }

// PoolLen returns the number of active problems held.
func (c *Core) PoolLen() int { return len(c.pool.items) }

// Table exposes the completion table for driver-side storage accounting.
func (c *Core) Table() *ctree.Table { return c.table }

// Counters returns a snapshot of the protocol event tallies.
func (c *Core) Counters() Counters { return c.cnt }

// Seed hands the core an initial problem (process 0 gets the root; everyone
// else starts empty and pulls work through load balancing).
func (c *Core) Seed(it Item) {
	c.pool.push(it)
	c.notePool()
}

func (c *Core) notePool() {
	if n := c.pool.Len(); n > c.cnt.PeakPool {
		c.cnt.PeakPool = n
	}
}

// ActivityAge returns how long ago, as far as this core knows, some process
// was actively computing. A core that holds active problems reports zero;
// otherwise the freshest of its own past activity and the relayed remote
// evidence.
func (c *Core) ActivityAge() float64 {
	if !c.terminated && c.pool.Len() > 0 {
		return 0
	}
	anchor := c.selfBusy
	if c.remoteAct > anchor {
		anchor = c.remoteAct
	}
	return c.d.Clock.Now() - anchor
}

// noteActivity merges activity evidence from a received message.
func (c *Core) noteActivity(age float64) {
	if cand := c.d.Clock.Now() - age; cand > c.remoteAct {
		c.remoteAct = cand
	}
}

func (c *Core) observeIncumbent(v float64) {
	if v < c.incumbent {
		c.incumbent = v
	}
}

// --- the main decision point -------------------------------------------------

// Status tells the driver what the core wants to do next.
type Status int

// Next statuses.
const (
	// Idle: the core terminated earlier; there is nothing to do.
	Idle Status = iota
	// Expand: pay the returned item's cost, branch it, and report the
	// outcome via OnExpanded.
	Expand
	// Starved: the pool is empty; call Starve to run load balancing.
	Starved
	// Terminated: termination was detected just now (the final root-report
	// broadcast of §5.4 has been sent). Returned exactly once.
	Terminated
)

// Next is invoked whenever the process becomes free: after a work unit,
// after processing messages, after a timer. It decides the next activity,
// performing eliminations (and, if contraction reaches the root, termination
// detection) along the way.
func (c *Core) Next() (Item, Status) {
	if c.terminated {
		return Item{}, Idle
	}
	if c.table.Complete() {
		c.detectTermination()
		return Item{}, Terminated
	}
	for c.pool.Len() > 0 {
		it := c.pool.pop()
		if c.table.Contains(it.Code) {
			continue // completed elsewhere in the meantime; drop silently
		}
		if c.cfg.Prune && it.Bound >= c.incumbent {
			// Eliminate: the problem is fathomed without expansion, which
			// completes it (nothing below it can matter).
			c.complete(it.Code)
			if c.table.Complete() {
				c.detectTermination()
				return Item{}, Terminated
			}
			continue
		}
		return it, Expand
	}
	return Item{}, Starved
}

// Outcome is what branching one subproblem revealed: the node's own value
// (if feasible) and its children. An empty Children slice means a leaf.
type Outcome struct {
	Feasible bool
	Value    float64
	Children []Item
}

// OnExpanded applies the branching outcome of it. elapsed is the execution
// time the driver charged for the expansion, feeding the smoothed
// per-subproblem cost that paces adaptive reports.
func (c *Core) OnExpanded(it Item, out Outcome, elapsed float64) {
	c.selfBusy = c.d.Clock.Now()
	if c.ewmaCost == 0 {
		c.ewmaCost = elapsed
	} else {
		c.ewmaCost += 0.2 * (elapsed - c.ewmaCost)
	}
	c.cnt.Expanded++
	if out.Feasible && out.Value < c.incumbent {
		c.incumbent = out.Value
	}
	if len(out.Children) == 0 {
		c.complete(it.Code)
		return
	}
	for _, ch := range out.Children {
		if c.table.Contains(ch.Code) {
			continue // already completed somewhere
		}
		if c.cfg.Prune && ch.Bound >= c.incumbent {
			c.complete(ch.Code) // eliminated at generation
			continue
		}
		c.pool.push(ch)
	}
	c.notePool()
}

// complete records the completion of a subproblem: into the table (for
// termination detection and duplicate suppression) and into the outbox (to
// be gossiped as a work report).
func (c *Core) complete(cd code.Code) {
	if changed, err := c.table.Insert(cd); err != nil || !changed {
		return
	}
	c.lastDelta = c.d.Clock.Now()
	if changed, _ := c.outbox.Insert(cd); changed {
		c.outboxAdds++
	}
	if c.d.OnComplete != nil {
		c.d.OnComplete(cd)
	}
	if c.d.OnTableChange != nil {
		c.d.OnTableChange()
	}
	if c.outbox.Len() >= c.cfg.ReportBatch {
		c.FlushReport()
	}
}

// --- reporting and gossip ----------------------------------------------------

// FlushReport flushes the outbox as a work report to ReportFanout random
// members. Compression already happened: the outbox is a contracted table,
// and the codes slice is its cached frontier — Reset drops the cache without
// touching the slice, so the report rides the same allocation while the
// outbox recycles its trie vertices for the next batch.
func (c *Core) FlushReport() {
	codes := c.outbox.Codes()
	if len(codes) == 0 {
		return
	}
	c.outbox.Reset()
	c.cnt.ReportedComps += c.outboxAdds
	c.outboxAdds = 0
	c.lastReport = c.d.Clock.Now()
	peers := c.d.Peers()
	if len(peers) == 0 {
		return // lone process: nothing to gossip, its own table suffices
	}
	var m Msg = Report{Codes: codes, Incumbent: c.incumbent, ActAge: c.ActivityAge()}
	if c.cfg.DiffGossip {
		// Diff mode: the same delta codes, plus the table digest so the
		// receiver can detect divergence beyond the delta and pull what it
		// is missing (maybeSync on the receiving side).
		m = DigestReport{Digest: c.table.Digest(), Codes: codes, Incumbent: c.incumbent, ActAge: c.ActivityAge()}
	}
	for i := 0; i < c.cfg.ReportFanout; i++ {
		c.d.Sender.Send(peers[c.d.Rand(len(peers))], m)
		c.cnt.ReportsSent++
		c.cnt.ReportCodes += len(codes)
	}
}

// ReportOverdue reports whether a non-empty outbox has gone stale ("the list
// has not been updated for a long time"). With AdaptiveReports the staleness
// threshold tracks how long this process actually needs to fill a batch —
// roughly ReportBatch times its smoothed per-subproblem time — so
// coarse-granularity runs stop shipping half-empty reports at a fixed
// wall-clock cadence.
func (c *Core) ReportOverdue() bool {
	if c.terminated {
		return false
	}
	timeout := c.cfg.ReportTimeout
	if c.cfg.AdaptiveReports {
		if adaptive := float64(c.cfg.ReportBatch) * c.ewmaCost; adaptive > timeout {
			timeout = adaptive
		}
	}
	return c.outbox.Len() > 0 && c.d.Clock.Now()-c.lastReport >= timeout
}

// SendTable pushes the full table to one member (§5.2's consistency gossip).
// In diff mode the push is a bare digest: the receiver pulls only the
// subtrees it is actually missing instead of absorbing the whole frontier —
// the size-with-progress term this refactor removes from steady-state
// traffic.
func (c *Core) SendTable(to NodeID) {
	if c.cfg.DiffGossip {
		c.d.Sender.Send(to, DigestReport{Digest: c.table.Digest(), Incumbent: c.incumbent, ActAge: c.ActivityAge()})
		c.cnt.TablesSent++
		return
	}
	c.d.Sender.Send(to, TableMsg{Codes: c.table.Codes(), Incumbent: c.incumbent, ActAge: c.ActivityAge()})
	c.cnt.TablesSent++
}

// --- load balancing and recovery ---------------------------------------------

// StarveDecision is what a starving process should do.
type StarveDecision int

// Starve decisions.
const (
	// StarveWait: nothing was sent (terminated, a request is already
	// outstanding, or a lone process is inside the recovery quiet window);
	// the driver should retry after its pacing delay.
	StarveWait StarveDecision = iota
	// StarveRequested: a work request went out; the driver must bound the
	// wait and call RequestFailed if no grant or deny answers in time.
	StarveRequested
	// StarveRecover: enough failed attempts and a quiet window with no
	// remote progress — presume work lost and run PlanRecovery/Adopt.
	StarveRecover
)

// Starve runs the out-of-work decision of §5: flush any pending report
// (lightly loaded processes send more work reports, §6.3.1), then either
// probe a random member for work or — when requests keep failing and the
// whole system has looked inactive for a quiet window — fall back to
// failure recovery.
func (c *Core) Starve() StarveDecision {
	if c.terminated || c.reqPending || c.pool.Len() > 0 {
		return StarveWait
	}
	c.FlushReport()
	peers := c.d.Peers()
	if c.failedReqs >= c.cfg.RecoveryPatience || len(peers) == 0 {
		// Enough failed attempts to suspect lost work — but only presume
		// failure after a quiet window with no remote progress at all;
		// during start-up, starvation just means the work has not spread
		// yet, and adopting the complement of an empty table would make
		// every process redo the root.
		quiet := c.cfg.RecoveryQuiet
		if c.d.RandFloat != nil {
			quiet *= 0.75 + 0.5*c.d.RandFloat()
		}
		fresh := c.lastProgress
		if c.remoteAct > fresh {
			fresh = c.remoteAct
		}
		if c.d.Clock.Now()-fresh >= quiet {
			return StarveRecover
		}
		if len(peers) == 0 {
			// Alone and inside the quiet window: try again later.
			c.failedReqs++
			return StarveWait
		}
		// Keep probing; the counter stays at the threshold.
	}
	if c.failedReqs > 0 {
		// Starving: suspect termination and push the table to a random
		// member, spreading completion information faster (§6.3.1).
		c.SendTable(peers[c.d.Rand(len(peers))])
	}
	c.d.Sender.Send(peers[c.d.Rand(len(peers))], WorkRequest{Incumbent: c.incumbent, ActAge: c.ActivityAge()})
	c.cnt.WorkRequests++
	c.reqPending = true
	return StarveRequested
}

// RequestFailed records that the outstanding work request went unanswered.
func (c *Core) RequestFailed() {
	if c.reqPending {
		c.reqPending = false
		c.failedReqs++
	}
}

// AbandonRequest clears the outstanding request without counting a failure —
// for drivers that resolve each probe synchronously and received something
// other than the answer.
func (c *Core) AbandonRequest() { c.reqPending = false }

// RequestPending reports whether a work request is outstanding, so drivers
// with a request timer know the timer — not a pacing retry — will revive a
// waiting process.
func (c *Core) RequestPending() bool { return c.reqPending }

// PlanRecovery presumes some reported-nowhere work was lost and selects
// uncompleted regions to re-create by complementing the local table
// (§5.3.2 failure recovery). It returns nil when recovery is disabled or
// the table is already complete (Next will then detect termination). The
// driver charges the complement scan as contraction time, then calls Adopt —
// the split lets the simulator make the scan a busy period during which
// messages may still complete some of the planned codes.
func (c *Core) PlanRecovery() []code.Code {
	if c.cfg.DisableRecovery || c.terminated {
		return nil
	}
	// Stay at the suspicion threshold: while the remote-evidence gate stays
	// stale the node recovers again immediately on its next starvation;
	// fresh evidence (a report, a grant, a relayed activity age) pushes it
	// back into the probing path. Only an actual work grant resets the
	// counter — this is the paper's "how soon failure is suspected" knob.
	c.failedReqs = c.cfg.RecoveryPatience
	comp := c.table.Complement(8)
	if len(comp) == 0 {
		return nil
	}
	// Adopt a few uncompleted regions, starting from a random one so
	// concurrent recoverers tend to pick different regions (the paper's
	// "lack of coordination" redundancy, reduced but not eliminated).
	// Adopt more when much is missing (a lone survivor rebuilding) and
	// less when little is (the end-game tail, where regions picked here
	// are probably in progress elsewhere).
	adopt := 1 + len(comp)/4
	if adopt > 4 {
		adopt = 4
	}
	if adopt > len(comp) {
		adopt = len(comp)
	}
	off := c.d.Rand(len(comp))
	out := make([]code.Code, 0, adopt)
	for i := 0; i < adopt; i++ {
		out = append(out, comp[(off+i)%len(comp)])
	}
	return out
}

// Adopt pushes the planned recovery codes that are still uncompleted and
// resolvable, returning how many were re-created. Codes dominated by the
// incumbent are eliminated at adoption — completed, not pooled — exactly as
// OnExpanded eliminates dominated children at generation; re-created work
// that cannot matter must not sit in the pool delaying termination. Codes
// already pooled — a grant that arrived between PlanRecovery and Adopt can
// hold the very region the plan complements — are skipped, never doubled.
func (c *Core) Adopt(cands []code.Code) int {
	got := 0
	pooled := c.poolSet()
	for _, cd := range cands {
		it, ok := c.d.Expander.Locate(cd)
		if !ok || c.table.Contains(cd) {
			continue
		}
		c.keyBuf = cd.EncodeInto(c.keyBuf)
		if _, dup := pooled[string(c.keyBuf)]; dup {
			continue
		}
		if c.cfg.Prune && it.Bound >= c.incumbent {
			c.complete(cd)
			continue
		}
		pooled[string(c.keyBuf)] = struct{}{}
		c.pool.push(it)
		got++
	}
	c.cnt.Recoveries += got
	c.notePool()
	return got
}

// --- message handling ---------------------------------------------------------

// Effect summarizes what a delivered message changed, so drivers can cancel
// request timers and pace retries without owning protocol state.
type Effect struct {
	// Answered: an outstanding work request was resolved (grant or deny);
	// the driver should cancel its request timeout.
	Answered bool
	// Failed: the resolution counts as a failed attempt (a deny, or a grant
	// carrying nothing usable); the driver should pace the next attempt.
	Failed bool
}

// HandleMessage processes one delivered canonical message. The driver is
// responsible for queueing (the paper's processes check pending messages
// only after finishing the current subproblem) and for charging the modeled
// handling costs.
func (c *Core) HandleMessage(from NodeID, m Msg) Effect {
	var eff Effect
	switch t := m.(type) {
	case Report:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		c.merge(t.Codes)
	case TableMsg:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		c.merge(t.Codes)
	case WorkRequest:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		c.handleWorkRequest(from)
	case WorkGrant:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		eff = c.handleGrant(t)
	case WorkDeny:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		if c.reqPending {
			c.reqPending = false
			c.failedReqs++
			eff = Effect{Answered: true, Failed: true}
		}
	case DigestReport:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		c.merge(t.Codes)
		c.maybeSync(from, t.Digest)
	case SubtreeRequest:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		c.answerSubtree(from, t)
	case SubtreeReply:
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
		c.absorbSubtree(from, t)
	case Ping:
		// A heartbeat carries only the piggybacked scalars; its real payload
		// is the envelope's arrival, which the failure detector observes
		// before routing here.
		c.observeIncumbent(t.Incumbent)
		c.noteActivity(t.ActAge)
	}
	return eff
}

// --- anti-entropy sync (DiffGossip) -------------------------------------------

// maybeSync starts a digest walk against peer when a received table digest
// proves the tables differ. Only a starving core walks: while the pool is
// non-empty the table converges through the in-flight deltas on its own, and
// walking would re-pull mere convergence lag — the request storm that would
// trade the report savings straight back. A starving core is exactly where
// the legacy protocol spends its full-table pushes and where completeness
// matters (termination detection, complement recovery) — and a crash-restart
// rejoin starves until work arrives, so its first divergent digest still
// triggers the full-root bootstrap pull. Walks are additionally rate-limited
// by SyncInterval, and the pull is one-directional (this core requests what
// peer has); the symmetric repair happens when its own digest reaches peer.
func (c *Core) maybeSync(peer NodeID, digest uint64) {
	if c.terminated || c.pool.Len() > 0 || digest == c.table.Digest() {
		return
	}
	now := c.d.Clock.Now()
	if c.syncHot {
		// Committed aggregator: keep pulling, one walk in flight at a time.
		// A reply can be lost, so a walk whose budget never drains is
		// abandoned after a full SyncInterval rather than wedging the
		// aggregation forever.
		if c.syncOut > 0 && now-c.lastSync < c.cfg.SyncInterval {
			return
		}
	} else {
		if c.table.Len() > 0 {
			// Quiet gate: while completions are still flowing — own
			// expansions or novel gossiped codes — a digest mismatch is
			// convergence lag that the deltas and the merge-forward relay
			// repair on their own, and at that stage tables are fat with
			// transient fine-grained frontier a walk would pointlessly haul.
			// Only once the delta stream has been silent for a (jittered)
			// quiet window is remaining divergence real damage worth a pull.
			// An empty table skips the gate: a crash-restart rejoin must
			// bootstrap immediately, while reports are still flowing past it.
			quiet := c.cfg.SyncInterval
			if c.d.RandFloat != nil {
				quiet *= 1 + syncQuietJitter*c.d.RandFloat()
			}
			// Never out-wait the recovery watchdog: were the gate to hold
			// walks past RecoveryQuiet, a starving system would misread its
			// own convergence lag as crashed peers and re-expand "lost"
			// regions — far costlier than any walk. Half the window leaves
			// the walk time to converge before the watchdog fires.
			if lim := c.cfg.RecoveryQuiet / 2; quiet > lim {
				quiet = lim
			}
			if now-c.lastDelta < quiet {
				return
			}
		}
		if now-c.lastSync < c.cfg.SyncInterval {
			return
		}
		c.syncHot = true
	}
	c.lastSync = now
	c.syncOut = 0
	c.requestSubtree(peer, code.Root())
}

// Bootstrap pulls peer's completion table, starting a digest walk at the
// root. A brand-new joiner has an empty table, so the walk degenerates to the
// single Full-root SubtreeRequest/SubtreeReply transfer of the crash-restart
// rejoin path — the whole contracted frontier in one reply. Drivers call it
// when a process joins mid-run (and may call it again if the reply is lost:
// the walk is idempotent, and a non-empty table turns retries into cheap
// digest-guided diffs). It works in legacy gossip mode too — subtree
// request/reply handling is unconditional on DiffGossip.
func (c *Core) Bootstrap(peer NodeID) {
	if c.terminated {
		return
	}
	c.lastSync = c.d.Clock.Now()
	c.syncOut = 0
	c.requestSubtree(peer, code.Root())
}

// NoteRemoteActivity records out-of-band evidence that some remote process
// was computing age seconds ago. Drivers call it when a process joins an
// already-running system: a fresh core with an empty view and an empty table
// must not mistake its own ignorance for global quiescence and recover the
// root (§5.3.2) before the join handshake has even completed.
func (c *Core) NoteRemoteActivity(age float64) { c.noteActivity(age) }

// requestSubtree asks peer for the content under prefix, under the walk's
// total request budget. Full is set when this core knows nothing under prefix —
// the responder then ships the whole subtree frontier (the restart-rejoin
// bootstrap payload) instead of another level of digests.
func (c *Core) requestSubtree(peer NodeID, prefix code.Code) {
	if c.syncOut >= maxSyncRequests {
		return
	}
	c.syncOut++
	_, known, _ := c.table.DigestAt(prefix)
	c.d.Sender.Send(peer, SubtreeRequest{
		Prefix: prefix, Full: !known,
		Incumbent: c.incumbent, ActAge: c.ActivityAge(),
	})
}

// answerSubtree serves one walk step: inline the subtree's frontier when it
// is small (or the requester asked for everything), otherwise describe the
// children digests so the requester can descend only where they differ. A
// prefix this core knows nothing under yields an empty leaf reply, which
// ends that branch of the walk. The handler is stateless and idempotent, so
// duplicated or replayed requests are harmless.
func (c *Core) answerSubtree(from NodeID, req SubtreeRequest) {
	max := syncLeafMax
	if req.Full {
		max = 0 // bootstrap: ship the whole subtree frontier
	}
	if rel, ok := c.table.SubtreeCodes(req.Prefix, max); ok {
		c.d.Sender.Send(from, SubtreeReply{Prefix: req.Prefix, Leaf: true, Rel: rel, Incumbent: c.incumbent, ActAge: c.ActivityAge()})
		return
	}
	bv, kids, ok := c.table.Children(req.Prefix)
	if !ok {
		// SubtreeCodes refuses only on size, so a walkable vertex exists;
		// kept as a defensive empty reply for a racing contraction.
		c.d.Sender.Send(from, SubtreeReply{Prefix: req.Prefix, Leaf: true, Incumbent: c.incumbent, ActAge: c.ActivityAge()})
		return
	}
	c.d.Sender.Send(from, SubtreeReply{Prefix: req.Prefix, BranchVar: bv, Kids: kids, Incumbent: c.incumbent, ActAge: c.ActivityAge()})
}

// absorbSubtree consumes one walk step's answer: leaf replies merge the
// pulled codes; branch replies descend into children whose digests differ
// from this core's own. Descent depth strictly increases and the total
// request budget bounds fan-out, so the walk always terminates — and because
// every pulled code passes through the same insert path as any report, a
// stale or replayed reply can only re-insert what is already subsumed.
func (c *Core) absorbSubtree(from NodeID, rep SubtreeReply) {
	if c.syncOut > 0 {
		c.syncOut--
	}
	if c.terminated {
		return
	}
	if rep.Leaf {
		changed, _ := c.table.InsertSubtree(rep.Prefix, rep.Rel)
		if changed > 0 {
			c.lastProgress = c.d.Clock.Now()
		}
		if c.d.OnTableChange != nil {
			c.d.OnTableChange()
		}
		return
	}
	for b := 0; b < 2; b++ {
		k := rep.Kids[b]
		if !k.Present {
			continue // the peer has nothing there either
		}
		child := rep.Prefix.Child(rep.BranchVar, uint8(b))
		mine, known, complete := c.table.DigestAt(child)
		if complete || (known && mine == k.Digest) {
			continue // nothing to learn below this child
		}
		c.requestSubtree(from, child)
	}
}

// merge stores a received report in the table and contracts it. Novel
// information counts as remote progress for the recovery quiet window.
//
// In diff mode novel codes are also relayed: they enter the outbox and ride
// the next delta report, so a completion spreads epidemically in O(log n)
// gossip hops instead of waiting for a full-table exchange. Legacy gossip
// cannot afford relaying — without digests a re-delivered code looks novel
// forever and the frontier would echo around the ring — but the contracted
// table makes the novelty check exact: a code relays at most once per core,
// in whatever contracted form it had when it arrived. This is what lets the
// anti-entropy walk stay the rare repair path — convergence no longer
// depends on it.
func (c *Core) merge(cs []code.Code) {
	if c.cfg.DiffGossip {
		c.relayMerge(cs)
		return
	}
	changed, _ := c.table.InsertAll(cs)
	if changed > 0 {
		c.lastProgress = c.d.Clock.Now()
	}
	if c.d.OnTableChange != nil {
		c.d.OnTableChange()
	}
}

// relayMerge is merge for diff mode: per-code insertion so a code that
// CONTRACTS on arrival — this core held the sibling, so insertion merged up
// to a strictly shallower covering ancestor — relays onward: the covering
// code re-enters the outbox and rides the next delta report. Merge-forward
// gossip coarsens as it spreads: every forwarded code is shallower than the
// one received, subsumes (and evicts from the outbox) finer relays still
// pending, and deduplicates at each hop through the novelty check, while
// non-contracting codes spread no further than the completer's own fanout —
// pushing every fine completion to every member costs Ω(members × frontier),
// the very term diff gossip removes. Flush pacing is the same batch
// threshold complete() uses; relayed codes do not count as reported
// completions (outboxAdds), they are transit traffic.
func (c *Core) relayMerge(cs []code.Code) {
	changed := 0
	for _, cd := range cs {
		if ins, err := c.table.Insert(cd); err != nil || !ins {
			continue
		}
		changed++
		if cov, ok := c.table.Covering(cd); ok && len(cov) < len(cd) {
			c.outbox.Insert(cov)
		}
	}
	if changed > 0 {
		now := c.d.Clock.Now()
		c.lastProgress = now
		c.lastDelta = now
		// The delta stream is alive again: stand down from aggregation and
		// let convergence ride the deltas.
		c.syncHot = false
	}
	if c.d.OnTableChange != nil {
		c.d.OnTableChange()
	}
	if !c.terminated && c.outbox.Len() >= c.cfg.ReportBatch {
		c.FlushReport()
	}
}

// poolSet rebuilds the pooled-code key set from the current pool contents.
// It is called only on the rare paths that may re-introduce a code this
// process already holds (work grants, recovery adoption); the scratch map
// and key buffer are retained across calls so steady state allocates only
// for map entries of codes actually present.
func (c *Core) poolSet() map[string]struct{} {
	if c.poolKeys == nil {
		c.poolKeys = make(map[string]struct{}, c.pool.Len())
	} else {
		for k := range c.poolKeys {
			delete(c.poolKeys, k)
		}
	}
	for i := range c.pool.items {
		c.keyBuf = c.pool.items[i].Code.EncodeInto(c.keyBuf)
		c.poolKeys[string(c.keyBuf)] = struct{}{}
	}
	return c.poolKeys
}

// handleWorkRequest grants half the pool (up to MaxShare) if the process has
// enough problems, else denies. A terminated process answers with the root
// report so the requester can terminate too.
func (c *Core) handleWorkRequest(from NodeID) {
	if c.terminated {
		c.d.Sender.Send(from, Report{Codes: []code.Code{code.Root()}, Incumbent: c.incumbent, ActAge: c.ActivityAge()})
		return
	}
	k := c.pool.Len() / 2
	if k > c.cfg.MaxShare {
		k = c.cfg.MaxShare
	}
	if c.pool.Len() < c.cfg.MinPoolToShare || k == 0 {
		// k == 0 covers MinPoolToShare == 1 with a single pooled problem:
		// halving a singleton pool grants nothing, and an empty WorkGrant
		// would count as a failed attempt at the requester where an honest
		// WorkDeny resolves the probe immediately.
		c.d.Sender.Send(from, WorkDeny{Incumbent: c.incumbent, ActAge: c.ActivityAge()})
		return
	}
	codes := make([]code.Code, 0, k)
	for i := 0; i < k; i++ {
		codes = append(codes, c.pool.steal().Code)
	}
	c.d.Sender.Send(from, WorkGrant{Codes: codes, Incumbent: c.incumbent, ActAge: c.ActivityAge()})
	c.cnt.WorkSent += len(codes)
}

// handleGrant adopts transferred problems. Codes dominated by the incumbent
// (the grant may have been cut before the granter learned of it) are
// eliminated on arrival the same way OnExpanded eliminates dominated
// children: completed and reported, never pooled. Codes already sitting in
// the pool — a duplicated grant, or a delayed grant whose region complement
// recovery re-created meanwhile — are dropped: at-least-once delivery must
// not double-pool a code, or the subtree is expanded twice locally. An
// all-eliminated grant still counts as progress — the completions it
// produced will gossip.
func (c *Core) handleGrant(g WorkGrant) Effect {
	var eff Effect
	if c.reqPending {
		c.reqPending = false
		eff.Answered = true
	}
	got := 0
	pooled := c.poolSet()
	for _, cd := range g.Codes {
		it, ok := c.d.Expander.Locate(cd)
		if !ok || c.table.Contains(cd) {
			continue
		}
		c.keyBuf = cd.EncodeInto(c.keyBuf)
		if _, dup := pooled[string(c.keyBuf)]; dup {
			continue
		}
		if c.cfg.Prune && it.Bound >= c.incumbent {
			c.complete(cd)
			got++
			continue
		}
		pooled[string(c.keyBuf)] = struct{}{}
		c.pool.push(it)
		got++
	}
	c.notePool()
	if got > 0 {
		c.failedReqs = 0
		c.lastProgress = c.d.Clock.Now()
	} else if eff.Answered {
		// Only an answer to this process's own outstanding request counts as
		// a failed attempt. An unsolicited all-useless grant — stale, or a
		// replayed duplicate of one already absorbed — must not make the
		// driver pace a retry it never issued, nor push the process toward
		// presuming failure.
		c.failedReqs++
		eff.Failed = true
	}
	return eff
}

// --- termination ---------------------------------------------------------------

// detectTermination fires when contraction reached the root code (§5.4):
// the process broadcasts one final root report to every member it knows of,
// then stops.
func (c *Core) detectTermination() {
	c.terminated = true
	// Box the report into the Msg interface once, outside the loop: the
	// broadcast goes to every member, and re-boxing per peer is one heap
	// allocation × peers × processes at the end of every run — the single
	// largest allocator in the 1000-process stress tier.
	var m Msg = Report{Codes: []code.Code{code.Root()}, Incumbent: c.incumbent, ActAge: c.ActivityAge()}
	peers := c.d.Peers()
	if bs, ok := c.d.Sender.(BroadcastSender); ok {
		bs.Broadcast(peers, m)
		return
	}
	for _, p := range peers {
		c.d.Sender.Send(p, m)
	}
}
