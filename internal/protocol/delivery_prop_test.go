package protocol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gossipbnb/internal/code"
)

// Delivery-layer idempotence and commutativity: the asynchronous model of §4
// permits duplicated and reordered delivery, so the observable protocol
// state a trace of messages produces — the completion table, the incumbent,
// and whether termination is detected — must not depend on how the transport
// mangled the trace. (The pool is deliberately NOT compared: reordering a
// report past a grant legitimately changes whether a granted code is pooled
// or suppressed; what must be invariant is the completed work.)

// randCode draws a random fakeTree code of depth 0..depth.
func randCode(r *rand.Rand, depth int) code.Code {
	d := r.Intn(depth + 1)
	c := code.Root()
	for i := 0; i < d; i++ {
		c = c.Child(uint32(i+1), uint8(r.Intn(2)))
	}
	return c
}

// randTrace builds a random message trace over the fakeTree vocabulary.
// Root reports (the termination broadcast) are rare but present, so the
// property also covers the termination outcome.
func randTrace(r *rand.Rand, depth, n int) []Msg {
	msgs := make([]Msg, 0, n)
	for i := 0; i < n; i++ {
		inc := 90 + 20*r.Float64()
		age := 5 * r.Float64()
		codes := func() []code.Code {
			cs := make([]code.Code, 1+r.Intn(3))
			for j := range cs {
				cs[j] = randCode(r, depth)
			}
			return cs
		}
		switch r.Intn(10) {
		case 0, 1, 2:
			msgs = append(msgs, Report{Codes: codes(), Incumbent: inc, ActAge: age})
		case 3:
			msgs = append(msgs, TableMsg{Codes: codes(), Incumbent: inc, ActAge: age})
		case 4, 5:
			msgs = append(msgs, WorkGrant{Codes: codes(), Incumbent: inc, ActAge: age})
		case 6:
			msgs = append(msgs, WorkDeny{Incumbent: inc, ActAge: age})
		case 7, 8:
			msgs = append(msgs, WorkRequest{Incumbent: inc, ActAge: age})
		case 9:
			msgs = append(msgs, Report{Codes: []code.Code{code.Root()}, Incumbent: inc, ActAge: age})
		}
	}
	return msgs
}

// observe delivers a trace to a fresh core and returns the observable state:
// the contracted table frontier, the incumbent, and the termination outcome.
func observe(t *testing.T, depth int, trace []Msg) (table string, incumbent float64, complete bool) {
	t.Helper()
	e := newEnv(t, depth, Config{}, []NodeID{1})
	// Give the core a little work so grant answers have something to steal
	// from; the pool is not part of the compared state.
	e.core.Seed(e.tree.Root())
	for _, m := range trace {
		e.core.HandleMessage(1, m)
	}
	var buf []byte
	for _, c := range e.core.Table().Codes() {
		buf = c.Append(buf)
	}
	return string(buf), e.core.Incumbent(), e.core.Table().Complete()
}

// TestPropDupReorderDeliveryInvariant: for random message traces, delivering
// any prefix with each message duplicated k∈{1,2,3} times and random
// adjacent pairs swapped yields an identical table, incumbent, and
// termination outcome.
func TestPropDupReorderDeliveryInvariant(t *testing.T) {
	const depth = 5
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		trace := randTrace(r, depth, 4+r.Intn(28))
		prefix := trace[:r.Intn(len(trace)+1)]

		// Mangle: duplicate each message k∈{1,2,3} times...
		mangled := make([]Msg, 0, 3*len(prefix))
		for _, m := range prefix {
			for k := 1 + r.Intn(3); k > 0; k-- {
				mangled = append(mangled, m)
			}
		}
		// ...then swap random adjacent pairs (several passes of local
		// transpositions — bounded reordering).
		for pass := 0; pass < 3; pass++ {
			for i := 1; i < len(mangled); i++ {
				if r.Intn(2) == 1 {
					mangled[i-1], mangled[i] = mangled[i], mangled[i-1]
				}
			}
		}

		wantTable, wantInc, wantDone := observe(t, depth, prefix)
		gotTable, gotInc, gotDone := observe(t, depth, mangled)
		if gotTable != wantTable {
			t.Logf("seed %d: table diverged under dup+reorder", seed)
			return false
		}
		if gotInc != wantInc {
			t.Logf("seed %d: incumbent %g vs %g", seed, gotInc, wantInc)
			return false
		}
		if gotDone != wantDone {
			t.Logf("seed %d: termination %v vs %v", seed, gotDone, wantDone)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
