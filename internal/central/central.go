// Package central implements the conventional centralized manager–worker
// parallel B&B of §3: a single manager maintains the tree and hands out
// tasks to workers. Reliability comes from checkpointing at the manager,
// which is assumed to sit on a reliable machine — the assumption the paper's
// fully decentralized design removes. The manager is also the scalability
// bottleneck: every expansion costs manager service time, so throughput
// saturates at roughly (node cost / service time) workers, which the
// centralized-baseline experiment demonstrates.
package central

import (
	"container/heap"
	"math"

	"gossipbnb/internal/btree"
	"gossipbnb/internal/sim"
)

// Config parameterizes a centralized run.
type Config struct {
	// Workers is the number of worker processes (the manager is separate).
	Workers int
	Seed    int64
	Latency sim.LatencyModel
	Loss    float64
	Prune   bool
	// ServiceTime is the manager CPU cost to process one message
	// (bookkeeping + checkpoint write). Default 1 ms.
	ServiceTime float64
	// GrantBatch is how many problems one grant carries. Default 1.
	GrantBatch int
	// AssignTimeout re-queues work assigned to a worker that went silent
	// (worker crash recovery via the manager's checkpoint). Default 30 s.
	AssignTimeout float64
	// Crashes schedules worker crashes (worker indices 1..Workers; the
	// manager, node 0, is assumed reliable).
	Crashes []Crash
	MaxTime float64
}

// Crash schedules a worker crash.
type Crash struct {
	Time   float64
	Worker int // 1-based worker index
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Latency == nil {
		c.Latency = sim.PaperLatency()
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 1e-3
	}
	if c.GrantBatch <= 0 {
		c.GrantBatch = 1
	}
	if c.AssignTimeout <= 0 {
		c.AssignTimeout = 30
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 1e9
	}
	return c
}

// Result summarizes a centralized run.
type Result struct {
	Terminated bool
	Time       float64
	Optimum    float64
	OptimumOK  bool
	Expanded   int
	Redundant  int
	// ManagerUtilization is the fraction of the run the manager spent
	// processing messages — near 1.0 means the manager saturated.
	ManagerUtilization float64
	Net                sim.NetStats
}

// --- messages ----------------------------------------------------------------

type msgWant struct{}

func (msgWant) Size() int { return 5 }

type msgGrant struct {
	idxs      []int32
	incumbent float64
}

func (m msgGrant) Size() int { return 9 + 4*len(m.idxs) }

type msgResult struct {
	idx       int32
	incumbent float64
}

func (msgResult) Size() int { return 13 }

type msgDone struct{ incumbent float64 }

func (msgDone) Size() int { return 9 }

// --- manager -----------------------------------------------------------------

type item struct {
	idx   int32
	bound float64
}

type itemHeap []item

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type assignment struct {
	idxs  []int32
	since float64
}

type manager struct {
	cfg       Config
	k         *sim.Kernel
	nw        *sim.Network
	tree      *btree.Tree
	pool      itemHeap
	assigned  map[sim.NodeID]*assignment
	waiting   []sim.NodeID // workers waiting for work
	incumbent float64
	busyUntil float64
	busyTotal float64
	expanded  int
	seen      []bool // tree nodes handed out at least once (redundancy)
	redundant int
	finished  bool
	doneAt    float64
}

// service charges the manager's per-message cost and returns the time at
// which the message's effect takes place — the queueing model that makes the
// manager a bottleneck.
func (m *manager) service() float64 {
	now := m.k.Now()
	if m.busyUntil < now {
		m.busyUntil = now
	}
	m.busyUntil += m.cfg.ServiceTime
	m.busyTotal += m.cfg.ServiceTime
	return m.busyUntil - now
}

func (m *manager) deliver(from sim.NodeID, msg sim.Message) {
	if m.finished {
		return
	}
	delay := m.service()
	switch t := msg.(type) {
	case msgWant:
		m.k.After(delay, func() { m.handleWant(from) })
	case msgResult:
		m.k.After(delay, func() { m.handleResult(from, t) })
	}
}

func (m *manager) handleWant(from sim.NodeID) {
	if m.finished {
		return
	}
	m.grantOrPark(from)
}

// grantOrPark hands work to a worker or parks it until work appears.
func (m *manager) grantOrPark(w sim.NodeID) {
	var idxs []int32
	for len(m.pool) > 0 && len(idxs) < m.cfg.GrantBatch {
		it := heap.Pop(&m.pool).(item)
		if m.cfg.Prune && it.bound >= m.incumbent {
			m.expandedDoneCheck()
			continue
		}
		idxs = append(idxs, it.idx)
	}
	if len(idxs) == 0 {
		m.waiting = append(m.waiting, w)
		m.expandedDoneCheck()
		return
	}
	if a := m.assigned[w]; a != nil {
		a.idxs = append(a.idxs, idxs...)
		a.since = m.k.Now()
	} else {
		m.assigned[w] = &assignment{idxs: append([]int32(nil), idxs...), since: m.k.Now()}
	}
	for _, idx := range idxs {
		if m.seen[idx] {
			m.redundant++
		}
		m.seen[idx] = true
	}
	m.nw.Send(0, w, msgGrant{idxs: idxs, incumbent: m.incumbent})
}

func (m *manager) handleResult(from sim.NodeID, r msgResult) {
	if r.incumbent < m.incumbent {
		m.incumbent = r.incumbent
	}
	a := m.assigned[from]
	if a != nil {
		for i, idx := range a.idxs {
			if idx == r.idx {
				a.idxs = append(a.idxs[:i], a.idxs[i+1:]...)
				break
			}
		}
		if len(a.idxs) == 0 {
			delete(m.assigned, from)
		} else {
			a.since = m.k.Now()
		}
	}
	m.expanded++
	tn := &m.tree.Nodes[r.idx]
	for b := 0; b < 2; b++ {
		if ch := tn.Children[b]; ch != btree.NoChild {
			bound := m.tree.Nodes[ch].Bound
			if !m.cfg.Prune || bound < m.incumbent {
				heap.Push(&m.pool, item{idx: ch, bound: bound})
			}
		}
	}
	// Serve parked workers.
	for len(m.waiting) > 0 && len(m.pool) > 0 {
		w := m.waiting[0]
		m.waiting = m.waiting[1:]
		m.grantOrPark(w)
	}
	m.expandedDoneCheck()
}

// expandedDoneCheck declares termination when no work is pooled or assigned.
func (m *manager) expandedDoneCheck() {
	if m.finished || len(m.pool) > 0 || len(m.assigned) > 0 {
		return
	}
	m.finished = true
	m.doneAt = m.k.Now()
	for w := sim.NodeID(1); w <= sim.NodeID(m.cfg.Workers); w++ {
		m.nw.Send(0, w, msgDone{incumbent: m.incumbent})
	}
}

// reassignTick requeues work assigned to silent (crashed) workers, restoring
// it from the checkpoint.
func (m *manager) reassignTick() {
	if m.finished {
		return
	}
	now := m.k.Now()
	for w, a := range m.assigned {
		if now-a.since >= m.cfg.AssignTimeout {
			for _, idx := range a.idxs {
				heap.Push(&m.pool, item{idx: idx, bound: m.tree.Nodes[idx].Bound})
			}
			delete(m.assigned, w)
		}
	}
	for len(m.waiting) > 0 && len(m.pool) > 0 {
		w := m.waiting[0]
		m.waiting = m.waiting[1:]
		m.grantOrPark(w)
	}
	m.k.After(m.cfg.AssignTimeout/2, m.reassignTick)
}

// --- worker -------------------------------------------------------------------

type worker struct {
	id        sim.NodeID
	k         *sim.Kernel
	nw        *sim.Network
	tree      *btree.Tree
	incumbent float64
	queue     []int32
	busy      bool
	crashed   bool
	done      bool
	reqOut    bool
}

func (w *worker) loop() {
	if w.busy || w.crashed || w.done {
		return
	}
	if len(w.queue) > 0 {
		idx := w.queue[0]
		w.queue = w.queue[1:]
		w.busy = true
		w.k.After(w.tree.Nodes[idx].Cost, func() {
			w.busy = false
			if w.crashed {
				return
			}
			tn := &w.tree.Nodes[idx]
			if tn.Feasible && tn.Bound < w.incumbent {
				w.incumbent = tn.Bound
			}
			w.nw.Send(w.id, 0, msgResult{idx: idx, incumbent: w.incumbent})
			w.loop()
		})
		return
	}
	if !w.reqOut {
		w.reqOut = true
		w.nw.Send(w.id, 0, msgWant{})
	}
}

func (w *worker) deliver(_ sim.NodeID, msg sim.Message) {
	if w.crashed {
		return
	}
	switch t := msg.(type) {
	case msgGrant:
		w.reqOut = false
		if t.incumbent < w.incumbent {
			w.incumbent = t.incumbent
		}
		w.queue = append(w.queue, t.idxs...)
	case msgDone:
		w.done = true
	}
	if !w.busy {
		w.loop()
	}
}

// Run simulates the centralized baseline.
func Run(tree *btree.Tree, cfg Config) Result {
	cfg = cfg.withDefaults()
	k := sim.New(cfg.Seed)
	nw := sim.NewNetwork(k, cfg.Latency)
	nw.SetLoss(cfg.Loss)
	mgr := &manager{
		cfg: cfg, k: k, nw: nw, tree: tree,
		assigned:  map[sim.NodeID]*assignment{},
		incumbent: math.Inf(1),
		seen:      make([]bool, tree.Size()),
	}
	heap.Push(&mgr.pool, item{idx: 0, bound: tree.Nodes[0].Bound})
	nw.Register(0, mgr.deliver)
	workers := make([]*worker, cfg.Workers)
	for i := 1; i <= cfg.Workers; i++ {
		w := &worker{id: sim.NodeID(i), k: k, nw: nw, tree: tree, incumbent: math.Inf(1)}
		workers[i-1] = w
		nw.Register(w.id, w.deliver)
		k.At(0, w.loop)
	}
	k.After(cfg.AssignTimeout/2, mgr.reassignTick)
	for _, c := range cfg.Crashes {
		c := c
		if c.Worker < 1 || c.Worker > cfg.Workers {
			continue
		}
		k.At(c.Time, func() {
			nw.Crash(sim.NodeID(c.Worker))
			workers[c.Worker-1].crashed = true
		})
	}
	k.Run(cfg.MaxTime)

	res := Result{
		Terminated: mgr.finished,
		Time:       mgr.doneAt,
		Optimum:    mgr.incumbent,
		Expanded:   mgr.expanded,
		Redundant:  mgr.redundant,
		Net:        nw.Stats(),
	}
	if mgr.doneAt > 0 {
		res.ManagerUtilization = mgr.busyTotal / mgr.doneAt
	}
	res.OptimumOK = res.Terminated && res.Optimum == tree.Stats().Optimum
	return res
}
