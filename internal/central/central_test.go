package central

import (
	"math/rand"
	"testing"

	"gossipbnb/internal/btree"
)

func smallTree(seed int64) *btree.Tree {
	r := rand.New(rand.NewSource(seed))
	return btree.Random(r, btree.RandomConfig{
		Size:         301,
		Cost:         btree.CostModel{Mean: 0.05, Sigma: 0.4},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
}

func TestSingleWorker(t *testing.T) {
	tr := smallTree(1)
	res := Run(tr, Config{Workers: 1, Seed: 1})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
	if res.Expanded != tr.Size() {
		t.Errorf("Expanded = %d, want %d", res.Expanded, tr.Size())
	}
}

func TestSpeedup(t *testing.T) {
	tr := smallTree(2)
	t1 := Run(tr, Config{Workers: 1, Seed: 3}).Time
	t4 := Run(tr, Config{Workers: 4, Seed: 3}).Time
	if t4 >= t1 {
		t.Errorf("no speedup: %g vs %g", t4, t1)
	}
}

func TestManagerSaturation(t *testing.T) {
	// With tiny node costs the manager's service time dominates: adding
	// workers beyond the saturation point must not keep helping, and
	// utilization must approach 1.
	r := rand.New(rand.NewSource(4))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         2001,
		Cost:         btree.CostModel{Mean: 0.004}, // 4 ms/node vs 1 ms service
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
	t4 := Run(tr, Config{Workers: 4, Seed: 5})
	t32 := Run(tr, Config{Workers: 32, Seed: 5})
	if !t4.Terminated || !t32.Terminated {
		t.Fatal("runs did not terminate")
	}
	if t32.ManagerUtilization < 0.8 {
		t.Errorf("manager not saturated with 32 workers at fine granularity: util=%.2f", t32.ManagerUtilization)
	}
	// 8x workers must be far from 8x faster.
	if t32.Time < t4.Time/4 {
		t.Errorf("manager bottleneck missing: t4=%.2f t32=%.2f", t4.Time, t32.Time)
	}
}

func TestWorkerCrashRecovered(t *testing.T) {
	tr := smallTree(5)
	res := Run(tr, Config{
		Workers: 4, Seed: 7, AssignTimeout: 6,
		Crashes: []Crash{{Time: 2, Worker: 2}},
	})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("worker crash not recovered: %+v", res)
	}
}

func TestAllWorkersCrashButOne(t *testing.T) {
	tr := smallTree(6)
	res := Run(tr, Config{
		Workers: 3, Seed: 9, AssignTimeout: 6,
		Crashes: []Crash{{Time: 1, Worker: 1}, {Time: 2, Worker: 3}},
	})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
}

func TestPruning(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         1001,
		Cost:         btree.CostModel{Mean: 0.02},
		BoundSpread:  4,
		FeasibleProb: 0.25,
	})
	full := Run(tr, Config{Workers: 3, Seed: 11})
	pruned := Run(tr, Config{Workers: 3, Seed: 11, Prune: true})
	if !pruned.Terminated || !pruned.OptimumOK {
		t.Fatalf("%+v", pruned)
	}
	if pruned.Expanded >= full.Expanded {
		t.Errorf("pruning did not help: %d >= %d", pruned.Expanded, full.Expanded)
	}
}

func TestGrantBatching(t *testing.T) {
	tr := smallTree(8)
	b1 := Run(tr, Config{Workers: 4, Seed: 13, GrantBatch: 1})
	b8 := Run(tr, Config{Workers: 4, Seed: 13, GrantBatch: 8})
	if !b1.Terminated || !b8.Terminated {
		t.Fatal("runs did not terminate")
	}
	if b8.Net.Sent >= b1.Net.Sent {
		t.Errorf("batching did not reduce messages: %d vs %d", b8.Net.Sent, b1.Net.Sent)
	}
}

func TestDeterministic(t *testing.T) {
	tr := smallTree(9)
	cfg := Config{Workers: 5, Seed: 15, Crashes: []Crash{{Time: 2, Worker: 4}}, AssignTimeout: 6}
	a, b := Run(tr, cfg), Run(tr, cfg)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func BenchmarkCentral8Workers(b *testing.B) {
	tr := smallTree(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(tr, Config{Workers: 8, Seed: int64(i)})
		if !res.Terminated {
			b.Fatal("did not terminate")
		}
	}
}
