package exp

import (
	"fmt"
	"io"

	"gossipbnb/internal/dbnb"
	"gossipbnb/internal/metrics"
)

// --- report policy ablation (DESIGN.md §5.2) --------------------------------------

// ReportRow is one (c, m) work-report policy.
type ReportRow struct {
	Batch       int // c: codes per report
	Fanout      int // m: members per report
	ExecSeconds float64
	CommMB      float64
	ContractPct float64
	DetectLag   float64 // last detection − first detection
	OptimumOK   bool
}

// AblationReportPolicy sweeps the paper's c (batch) and m (fanout)
// parameters: larger batches compress better and cost less communication
// but delay information spread; larger fanout spreads faster at higher
// message cost.
func AblationReportPolicy(seed int64) []ReportRow {
	w := SmallWorkload(seed)
	var out []ReportRow
	for _, c := range []int{2, 8, 32} {
		for _, m := range []int{1, 2, 4} {
			cfg := baseConfig(w, 8, seed)
			cfg.ReportBatch = c
			cfg.ReportFanout = m
			res := dbnb.Run(w.Tree, cfg)
			agg := res.Met.AggregateBreakdown()
			out = append(out, ReportRow{
				Batch: c, Fanout: m,
				ExecSeconds: res.Time,
				CommMB:      metrics.MB(res.Net.Bytes),
				ContractPct: agg.Percent(metrics.Contract),
				DetectLag:   res.Time - res.FirstDetect,
				OptimumOK:   res.Terminated && res.OptimumOK,
			})
		}
	}
	return out
}

// RenderAblationReportPolicy prints the sweep.
func RenderAblationReportPolicy(w io.Writer, rows []ReportRow) {
	fmt.Fprintln(w, "Ablation: work-report batch c and fanout m (8 processes, small problem)")
	fmt.Fprintln(w, "    c    m  exec(s)  comm(MB)  contract%  detect-lag(s)  optimum")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %3d  %7.2f  %8.3f  %8.2f%%  %13.2f  %v\n",
			r.Batch, r.Fanout, r.ExecSeconds, r.CommMB, r.ContractPct, r.DetectLag, r.OptimumOK)
	}
}

// --- recovery patience ablation (DESIGN.md §5.3) -----------------------------------

// RecoveryRow is one recovery-trigger configuration under a crash scenario.
type RecoveryRow struct {
	Patience    int
	Quiet       float64
	ExecSeconds float64
	Redundant   int
	Recoveries  int
	OptimumOK   bool
}

// AblationRecoveryPatience crashes half the processes mid-run and sweeps how
// eagerly survivors presume failure: the paper's trade-off between recovery
// speed and redundant work.
func AblationRecoveryPatience(seed int64) []RecoveryRow {
	w := TinyWorkload(seed)
	base := dbnb.Run(w.Tree, baseConfig(w, 4, seed))
	mid := 0.5 * base.Time
	var out []RecoveryRow
	for _, patience := range []int{1, 3, 6} {
		for _, quiet := range []float64{2, 8, 24} {
			cfg := baseConfig(w, 4, seed)
			cfg.RecoveryPatience = patience
			cfg.RecoveryQuiet = quiet
			cfg.Crashes = []dbnb.Crash{{Time: mid, Node: 2}, {Time: mid + 0.1, Node: 3}}
			res := dbnb.Run(w.Tree, cfg)
			recov := 0
			for i := range res.Met.Nodes {
				recov += res.Met.Nodes[i].Recoveries
			}
			out = append(out, RecoveryRow{
				Patience: patience, Quiet: quiet,
				ExecSeconds: res.Time,
				Redundant:   res.Redundant,
				Recoveries:  recov,
				OptimumOK:   res.Terminated && res.OptimumOK,
			})
		}
	}
	return out
}

// RenderAblationRecoveryPatience prints the sweep.
func RenderAblationRecoveryPatience(w io.Writer, rows []RecoveryRow) {
	fmt.Fprintln(w, "Ablation: recovery trigger (patience × quiet window), 2 of 4 processes crash")
	fmt.Fprintln(w, "patience  quiet(s)  exec(s)  redundant  recoveries  optimum")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d  %8.0f  %7.2f  %9d  %10d  %v\n",
			r.Patience, r.Quiet, r.ExecSeconds, r.Redundant, r.Recoveries, r.OptimumOK)
	}
	fmt.Fprintln(w, "(eager triggers recover faster but redo more; patient triggers waste idle time)")
}

// --- compression ablation (§5.3.2) ---------------------------------------------------

// CompressRow measures work-report compression for one configuration.
type CompressRow struct {
	Rule            string
	Batch           int
	Completions     int     // completions covered by flushed reports
	CodesSent       int     // codes actually transmitted in those reports
	CompressionRate float64 // completions / codes sent
}

// AblationCompression measures how the recursive sibling-merge compresses
// work reports (§5.3.2: "the taller the subtree completed locally, the
// larger the number of codes that do not need to be sent"). Local subtree
// height is governed by the selection rule — depth-first completes whole
// subtrees in place, best-first hops across the frontier — and by the batch
// size c, which bounds how much may accumulate before a flush.
func AblationCompression(seed int64) []CompressRow {
	w := SmallWorkload(seed)
	var out []CompressRow
	for _, rule := range []dbnb.SelectRule{dbnb.BestFirst, dbnb.DepthFirst} {
		for _, batch := range []int{4, 8, 16} {
			cfg := baseConfig(w, 4, seed)
			cfg.Select = rule
			cfg.ReportBatch = batch
			cfg.ReportFanout = 1 // count each code once
			res := dbnb.Run(w.Tree, cfg)
			codes, comps := 0, 0
			for i := range res.Met.Nodes {
				codes += res.Met.Nodes[i].ReportCodes
				comps += res.Met.Nodes[i].ReportedComps
			}
			name := "best-first"
			if rule == dbnb.DepthFirst {
				name = "depth-first"
			}
			row := CompressRow{Rule: name, Batch: batch, Completions: comps, CodesSent: codes}
			if codes > 0 {
				row.CompressionRate = float64(comps) / float64(codes)
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderAblationCompression prints the locality-vs-compression table.
func RenderAblationCompression(w io.Writer, rows []CompressRow) {
	fmt.Fprintln(w, "Ablation: report compression vs selection rule and batch (4 processes)")
	fmt.Fprintln(w, "rule         batch  completions  codes sent  compression(x)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s  %5d  %11d  %10d  %14.2f\n",
			r.Rule, r.Batch, r.Completions, r.CodesSent, r.CompressionRate)
	}
	fmt.Fprintln(w, "(depth-first completes tall subtrees in place, so sibling merges erase")
	fmt.Fprintln(w, " most codes before they are sent — the paper's loaded-processor effect)")
}

// --- selection-rule ablation (DESIGN.md §5.5) ---------------------------------------

// SelectRow compares local selection rules on a prunable workload.
type SelectRow struct {
	Rule        string
	ExecSeconds float64
	Expanded    int
	PeakPool    int // largest pool any process held (memory pressure)
	OptimumOK   bool
}

// AblationSelectRule compares best-first and depth-first local selection on
// a prunable tree: best-first expands fewer nodes (stronger incumbents
// sooner), depth-first holds smaller pools and compresses reports better.
func AblationSelectRule(seed int64) []SelectRow {
	w := pruneWorkload(seed)
	var out []SelectRow
	for _, rule := range []dbnb.SelectRule{dbnb.BestFirst, dbnb.DepthFirst} {
		cfg := baseConfig(w, 8, seed)
		cfg.Select = rule
		cfg.Prune = true
		res := dbnb.Run(w.Tree, cfg)
		peak := 0
		for i := range res.Met.Nodes {
			if res.Met.Nodes[i].PeakPool > peak {
				peak = res.Met.Nodes[i].PeakPool
			}
		}
		name := "best-first"
		if rule == dbnb.DepthFirst {
			name = "depth-first"
		}
		out = append(out, SelectRow{
			Rule:        name,
			ExecSeconds: res.Time,
			Expanded:    res.Expanded,
			PeakPool:    peak,
			OptimumOK:   res.Terminated && res.OptimumOK,
		})
	}
	return out
}

// RenderAblationSelectRule prints the comparison.
func RenderAblationSelectRule(w io.Writer, rows []SelectRow) {
	fmt.Fprintln(w, "Ablation: selection rule on a prunable tree (8 processes, pruning on)")
	fmt.Fprintln(w, "rule         exec(s)  expanded  peak pool  optimum")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s  %7.1f  %8d  %9d  %v\n",
			r.Rule, r.ExecSeconds, r.Expanded, r.PeakPool, r.OptimumOK)
	}
}

// --- adaptive-report ablation (§6.3.1, §7 future work) ------------------------------

// AdaptiveRow compares fixed and adaptive report flushing at one granularity.
type AdaptiveRow struct {
	Factor          float64 // node-cost multiplier
	Mode            string  // "fixed" or "adaptive"
	Reports         int
	CodesPerReport  float64
	CommMBPerHrWork float64 // report traffic per hour of useful work
	OptimumOK       bool
}

// AblationAdaptiveReports reproduces the paper's §6.3.1 observation — fixed
// report intervals waste communication as granularity coarsens — and
// implements its proposed fix: scale the flush interval with the observed
// per-subproblem execution time. The adaptive mode should cut reports per
// unit of work at coarse granularity without changing the answer.
func AblationAdaptiveReports(seed int64) []AdaptiveRow {
	w := SmallWorkload(seed)
	var out []AdaptiveRow
	for _, factor := range []float64{1, 32, 128} {
		for _, adaptive := range []bool{false, true} {
			cfg := baseConfig(w, 8, seed)
			cfg.CostFactor = factor
			cfg.AdaptiveReports = adaptive
			// A short fixed interval makes the paper's observation visible:
			// at coarse granularity it fires long before a batch fills.
			cfg.ReportTimeout = 2
			res := dbnb.Run(w.Tree, cfg)
			reports, codes := 0, 0
			for i := range res.Met.Nodes {
				reports += res.Met.Nodes[i].ReportsSent
				codes += res.Met.Nodes[i].ReportCodes
			}
			mode := "fixed"
			if adaptive {
				mode = "adaptive"
			}
			row := AdaptiveRow{
				Factor:    factor,
				Mode:      mode,
				Reports:   reports,
				OptimumOK: res.Terminated && res.OptimumOK,
			}
			if reports > 0 {
				row.CodesPerReport = float64(codes) / float64(reports)
			}
			bbHours := res.Met.AggregateBreakdown().Get(metrics.BB) / 3600
			if bbHours > 0 {
				row.CommMBPerHrWork = metrics.MB(res.Net.Bytes) / bbHours
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderAblationAdaptiveReports prints the comparison.
func RenderAblationAdaptiveReports(w io.Writer, rows []AdaptiveRow) {
	fmt.Fprintln(w, "Ablation: fixed vs adaptive report flushing across granularities (8 processes)")
	fmt.Fprintln(w, "granularity  mode      reports  codes/report  MB per work-hour  optimum")
	for _, r := range rows {
		fmt.Fprintf(w, "%11.0fx  %-8s  %7d  %12.1f  %16.3f  %v\n",
			r.Factor, r.Mode, r.Reports, r.CodesPerReport, r.CommMBPerHrWork, r.OptimumOK)
	}
	fmt.Fprintln(w, "(at coarse granularity the fixed interval ships half-empty reports; the")
	fmt.Fprintln(w, " adaptive interval tracks the observed per-subproblem time — §7 future work)")
}
