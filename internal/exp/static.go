package exp

import (
	"fmt"
	"io"

	"gossipbnb/internal/code"
	"gossipbnb/internal/ctree"
)

// Figure1 prints the paper's problem-representation example: the tree whose
// root branches on x1, whose left subtree branches on x2 then x5, and whose
// right subtree branches on x3.
func Figure1(w io.Writer) {
	root := code.Root()
	l := root.Child(1, 0)
	r := root.Child(1, 1)
	ll := l.Child(2, 0)
	lr := l.Child(2, 1)
	lrl := lr.Child(5, 0)
	lrr := lr.Child(5, 1)
	fmt.Fprintln(w, "Figure 1: problem representation — each node's code is its root path")
	fmt.Fprintf(w, `
                        %v
               x1 ______/\______
                 /              \
          %v          %v
         x2 ___/\___          x3 /\...
           /        \
 %v   %v
                 x5 ___/\___
                   /        \
 %v  %v
`, root, l, r, ll, lr, lrl, lrr)
	fmt.Fprintln(w, "codes are self-contained: the code plus the initial data reconstructs the")
	fmt.Fprintln(w, "subproblem on any processor (§5.3.1)")
}

// Figure2 demonstrates completed vs solved vs unsolved problems on the
// Figure 1 tree: inserting the left-left child and both grandchildren of the
// left-right child contracts to the code of the whole left subtree.
func Figure2(w io.Writer) {
	t := ctree.New()
	steps := []struct {
		c    code.Code
		note string
	}{
		{code.Root().Child(1, 0).Child(2, 0), "leaf (<x1,0>,<x2,0>) completed"},
		{code.Root().Child(1, 0).Child(2, 1).Child(5, 0), "leaf (<x1,0>,<x2,1>,<x5,0>) completed"},
		{code.Root().Child(1, 0).Child(2, 1).Child(5, 1), "leaf (<x1,0>,<x2,1>,<x5,1>) completed — siblings contract"},
	}
	fmt.Fprintln(w, "Figure 2: completed, unsolved, and solved problems (table contraction)")
	for _, s := range steps {
		t.Insert(s.c)
		fmt.Fprintf(w, "insert %-28v -> table %v   (%s)\n", s.c, t.Codes(), s.note)
	}
	fmt.Fprintf(w, "complement (uncompleted problems): %v\n", t.Complement(0))
	fmt.Fprintln(w, "a solved problem whose sibling is unsolved is what failure recovery re-creates (§5.3.2)")
}
