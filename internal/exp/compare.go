package exp

import (
	"fmt"
	"io"

	"gossipbnb/internal/central"
	"gossipbnb/internal/dbnb"
	"gossipbnb/internal/dib"
	"gossipbnb/internal/member"
	"gossipbnb/internal/sim"
)

// --- DIB comparison (§5.5) -------------------------------------------------------

// DIBRow is one scenario of the DIB-vs-paper comparison.
type DIBRow struct {
	Scenario       string
	OursTerminated bool
	OursOptimumOK  bool
	OursRedundant  int
	OursTime       float64
	DIBTerminated  bool
	DIBOptimumOK   bool
	DIBRedundant   int
	DIBTime        float64
}

// DIBComparison runs both algorithms on the same workload under the same
// failure scenarios. The defining difference (§5.5): DIB needs a reliable
// root machine; the paper's algorithm survives the loss of any processes,
// including the one that started with the original problem.
func DIBComparison(seed int64) []DIBRow {
	w := TinyWorkload(seed)
	type scenario struct {
		name    string
		crashes []dbnb.Crash
	}
	base := dbnb.Run(w.Tree, baseConfig(w, 4, seed))
	mid := 0.5 * base.Time
	scenarios := []scenario{
		{name: "no failures"},
		{name: "one worker crashes", crashes: []dbnb.Crash{{Time: mid, Node: 2}}},
		{name: "two workers crash", crashes: []dbnb.Crash{{Time: mid, Node: 2}, {Time: mid + 0.2, Node: 3}}},
		{name: "process 0 crashes (DIB root)", crashes: []dbnb.Crash{{Time: mid, Node: 0}}},
		{name: "all but process 3 crash", crashes: []dbnb.Crash{
			{Time: mid, Node: 0}, {Time: mid + 0.1, Node: 1}, {Time: mid + 0.2, Node: 2}}},
	}
	var out []DIBRow
	for _, sc := range scenarios {
		cfg := baseConfig(w, 4, seed)
		cfg.Crashes = sc.crashes
		ours := dbnb.Run(w.Tree, cfg)

		dcfg := dib.Config{
			Procs: 4, Seed: seed, RedoTimeout: 10,
			MaxTime: 50 * (base.Time + 10),
		}
		for _, c := range sc.crashes {
			dcfg.Crashes = append(dcfg.Crashes, dib.Crash{Time: c.Time, Node: c.Node})
		}
		theirs := dib.Run(w.Tree, dcfg)

		out = append(out, DIBRow{
			Scenario:       sc.name,
			OursTerminated: ours.Terminated, OursOptimumOK: ours.OptimumOK,
			OursRedundant: ours.Redundant, OursTime: ours.Time,
			DIBTerminated: theirs.Terminated, DIBOptimumOK: theirs.OptimumOK,
			DIBRedundant: theirs.Redundant, DIBTime: theirs.Time,
		})
	}
	return out
}

// RenderDIBComparison prints the side-by-side table.
func RenderDIBComparison(w io.Writer, rows []DIBRow) {
	fmt.Fprintln(w, "Comparison with DIB (Finkel & Manber), 4 processes, same crash schedules")
	fmt.Fprintln(w, "scenario                          ours: term opt  red  time | DIB: term opt  red  time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s  %10v %3v %4d %5.1f |     %4v %3v %4d %5.1f\n",
			r.Scenario,
			r.OursTerminated, r.OursOptimumOK, r.OursRedundant, r.OursTime,
			r.DIBTerminated, r.DIBOptimumOK, r.DIBRedundant, r.DIBTime)
	}
	fmt.Fprintln(w, "(a DIB row with term=false hit its time budget: the reliable-root assumption was violated)")
}

// --- centralized baseline (§3) ------------------------------------------------------

// CentralRow compares the centralized manager-worker with the decentralized
// algorithm at one processor count.
type CentralRow struct {
	Procs              int
	CentralTime        float64
	CentralUtilization float64
	DecentralTime      float64
}

// Centralized sweeps worker counts on a fine-granularity problem, where the
// single manager saturates while the decentralized algorithm keeps scaling.
func Centralized(seed int64) []CentralRow {
	w := SmallWorkload(seed)
	var out []CentralRow
	for _, procs := range []int{2, 4, 8, 16, 32} {
		c := central.Run(w.Tree, central.Config{
			Workers: procs, Seed: seed, ServiceTime: 2e-3,
		})
		d := dbnb.Run(w.Tree, baseConfig(w, procs, seed))
		out = append(out, CentralRow{
			Procs:              procs,
			CentralTime:        c.Time,
			CentralUtilization: c.ManagerUtilization,
			DecentralTime:      d.Time,
		})
	}
	return out
}

// RenderCentralized prints the comparison.
func RenderCentralized(w io.Writer, rows []CentralRow) {
	fmt.Fprintln(w, "Centralized manager-worker vs decentralized, small problem (0.01 s/node)")
	fmt.Fprintln(w, "procs  central(s)  mgr-util  decentral(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %10.2f  %7.0f%%  %12.2f\n",
			r.Procs, r.CentralTime, 100*r.CentralUtilization, r.DecentralTime)
	}
	fmt.Fprintln(w, "(manager utilization near 100% marks the central bottleneck of §3)")
}

// --- membership under churn (§5.2, §7 future work) -----------------------------------

// MemberRow is one churn configuration.
type MemberRow struct {
	Members    int
	MsgsPerSec float64 // protocol messages per member per second
	DetectSecs float64 // mean crash-detection latency
}

// Membership measures the §5.2 protocol standalone: per-member network load
// as the group grows, and failure-detection latency.
func Membership(seed int64) []MemberRow {
	var out []MemberRow
	for _, n := range []int{8, 16, 32, 64} {
		k := sim.New(seed)
		nw := sim.NewNetwork(k, sim.PaperLatency())
		cfg := member.Config{GossipInterval: 1, Fanout: 2, FailTimeout: 8}
		ms := make([]*member.Member, n)
		for i := 0; i < n; i++ {
			id := sim.NodeID(i)
			ms[i] = member.New(k, nw, id, []sim.NodeID{0}, cfg)
			m := ms[i]
			nw.Register(id, func(from sim.NodeID, msg sim.Message) { m.Deliver(from, msg) })
			m.Join()
		}
		k.Run(60)
		// Crash the highest-numbered member; measure mean detection latency.
		victim := sim.NodeID(n - 1)
		crashAt := k.Now()
		nw.Crash(victim)
		detected := make([]float64, 0, n-1)
		for i := 0; i < n-1; i++ {
			m := ms[i]
			m.OnLeave = func(id sim.NodeID) {
				if id == victim {
					detected = append(detected, k.Now()-crashAt)
				}
			}
		}
		k.Run(crashAt + 120)
		row := MemberRow{Members: n}
		row.MsgsPerSec = float64(nw.Stats().Sent) / k.Now() / float64(n)
		if len(detected) > 0 {
			sum := 0.0
			for _, d := range detected {
				sum += d
			}
			row.DetectSecs = sum / float64(len(detected))
		}
		out = append(out, row)
	}
	return out
}

// RenderMembership prints the churn table.
func RenderMembership(w io.Writer, rows []MemberRow) {
	fmt.Fprintln(w, "Membership protocol: load and failure-detection latency vs group size")
	fmt.Fprintln(w, "members  msgs/member/s  mean detect(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d  %13.2f  %14.1f\n", r.Members, r.MsgsPerSec, r.DetectSecs)
	}
	fmt.Fprintln(w, "(per-member load stays flat with group size — §5.2 advantage 1)")
}
