// Package exp regenerates every table and figure of the paper's evaluation
// (§6.3), plus the comparison and ablation experiments DESIGN.md calls out.
// Each experiment is a pure function of a seed (runs are deterministic), and
// each has a Render companion that prints rows shaped like the paper's.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"gossipbnb/internal/btree"
	"gossipbnb/internal/dbnb"
	"gossipbnb/internal/metrics"
)

// Workload bundles a basic tree with the algorithm parameters appropriate
// for its granularity.
type Workload struct {
	Name string
	Tree *btree.Tree
	// QuietFactor scales RecoveryQuiet relative to the default.
	Quiet float64
}

// SmallWorkload is the Figure 3 problem: ≈3,500 nodes, 0.01 s mean cost.
func SmallWorkload(seed int64) Workload {
	return Workload{Name: "small", Tree: btree.PaperSmall(seed), Quiet: 10}
}

// LargeWorkload is the Table 1 / Figure 4 problem: ≈79,600 nodes, 3.47 s
// mean cost (≈75 h of uniprocessor work).
func LargeWorkload(seed int64) Workload {
	return Workload{Name: "large", Tree: btree.PaperLarge(seed), Quiet: 120}
}

// TinyWorkload is the Figures 5/6 problem.
func TinyWorkload(seed int64) Workload {
	return Workload{Name: "tiny", Tree: btree.Tiny(seed), Quiet: 5}
}

// ScaledLargeWorkload is a Table 1-shaped workload (3.47 s mean node cost)
// of a custom size, for benchmarks that cannot afford the full 79,600-node
// sweep on every iteration.
func ScaledLargeWorkload(seed int64, size int) Workload {
	r := rand.New(rand.NewSource(seed))
	return Workload{
		Name: "large-scaled",
		Tree: btree.Random(r, btree.RandomConfig{
			Size:         size,
			Cost:         btree.CostModel{Mean: 3.47, Sigma: 0.6},
			BoundSpread:  1,
			FeasibleProb: 0.05,
		}),
		Quiet: 120,
	}
}

// Measure runs one configuration of a workload and extracts its Row.
func Measure(w Workload, procs int, seed int64) Row { return measure(w, procs, seed) }

// baseConfig builds the shared simulation configuration for a workload.
func baseConfig(w Workload, procs int, seed int64) dbnb.Config {
	return dbnb.Config{
		Procs:         procs,
		Seed:          seed,
		RecoveryQuiet: w.Quiet,
	}
}

// Row is one measured configuration, with the columns of Table 1 plus the
// extras Figure 3 stacks.
type Row struct {
	Procs       int
	ExecSeconds float64
	// Per-activity shares, percent of total process time.
	BBPct       float64
	CommPct     float64
	ContractPct float64
	LBPct       float64
	IdlePct     float64
	// Storage (whole system, bytes) and communication.
	StorageTotal     int
	StorageRedundant int
	CommMBPerHrProc  float64
	// Work accounting.
	Expanded  int
	Redundant int
	Reports   int
	OptimumOK bool
}

// measure runs one configuration and extracts a Row.
func measure(w Workload, procs int, seed int64) Row {
	res := dbnb.Run(w.Tree, baseConfig(w, procs, seed))
	return rowFrom(res, procs)
}

func rowFrom(res dbnb.Result, procs int) Row {
	agg := res.Met.AggregateBreakdown()
	row := Row{
		Procs:            procs,
		ExecSeconds:      res.Time,
		BBPct:            agg.Percent(metrics.BB),
		CommPct:          agg.Percent(metrics.Comm),
		ContractPct:      agg.Percent(metrics.Contract),
		LBPct:            agg.Percent(metrics.LB),
		IdlePct:          agg.Percent(metrics.Idle),
		StorageTotal:     res.Met.TotalStorage(),
		StorageRedundant: res.Met.RedundantStorage(),
		Expanded:         res.Expanded,
		Redundant:        res.Redundant,
		OptimumOK:        res.OptimumOK,
	}
	for i := range res.Met.Nodes {
		row.Reports += res.Met.Nodes[i].ReportsSent
	}
	if res.Time > 0 && procs > 0 {
		hours := res.Time / 3600
		row.CommMBPerHrProc = metrics.MB(res.Net.Bytes) / hours / float64(procs)
	}
	return row
}

// --- Figure 3 -----------------------------------------------------------------

// Fig3Row is one stacked bar of Figure 3: average per-process seconds spent
// in each activity, for one processor count.
type Fig3Row struct {
	Procs                    int
	BB, Comm, Contract, LB   float64
	Idle                     float64
	ExecSeconds              float64
	OptimumOK                bool
	ExpandedNodes, Redundant int
	OverheadPctOfTotal       float64 // everything but BB, as % of total
}

// Figure3 measures the small problem on 1..8 processors.
func Figure3(seed int64) []Fig3Row {
	w := SmallWorkload(seed)
	out := make([]Fig3Row, 0, 8)
	for procs := 1; procs <= 8; procs++ {
		res := dbnb.Run(w.Tree, baseConfig(w, procs, seed))
		agg := res.Met.AggregateBreakdown()
		p := float64(procs)
		r := Fig3Row{
			Procs:         procs,
			BB:            agg.Get(metrics.BB) / p,
			Comm:          agg.Get(metrics.Comm) / p,
			Contract:      agg.Get(metrics.Contract) / p,
			LB:            agg.Get(metrics.LB) / p,
			Idle:          agg.Get(metrics.Idle) / p,
			ExecSeconds:   res.Time,
			OptimumOK:     res.OptimumOK,
			ExpandedNodes: res.Expanded,
			Redundant:     res.Redundant,
		}
		if tot := agg.Total(); tot > 0 {
			r.OverheadPctOfTotal = 100 * (tot - agg.Get(metrics.BB)) / tot
		}
		out = append(out, r)
	}
	return out
}

// RenderFigure3 prints the rows as a text table plus ASCII stacked bars.
func RenderFigure3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3: execution-time breakdown, small problem (~3,500 nodes, 0.01 s/node)")
	fmt.Fprintln(w, "procs  exec(s)   BB(s)  comm(s)  contr(s)  LB(s)  idle(s)  overhead%  optimum")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %7.2f  %6.2f  %7.3f  %8.3f  %5.2f  %7.2f  %8.1f%%  %v\n",
			r.Procs, r.ExecSeconds, r.BB, r.Comm, r.Contract, r.LB, r.Idle,
			r.OverheadPctOfTotal, r.OptimumOK)
	}
	fmt.Fprintln(w, "\nstacked bars (each char ≈ total/60):")
	max := 0.0
	for _, r := range rows {
		if t := r.BB + r.Comm + r.Contract + r.LB + r.Idle; t > max {
			max = t
		}
	}
	for _, r := range rows {
		scale := 60 / max
		bar := strings.Repeat("B", int(r.BB*scale+0.5)) +
			strings.Repeat("c", int(r.Comm*scale+0.5)) +
			strings.Repeat("t", int(r.Contract*scale+0.5)) +
			strings.Repeat("l", int(r.LB*scale+0.5)) +
			strings.Repeat(".", int(r.Idle*scale+0.5))
		fmt.Fprintf(w, "%2d |%s\n", r.Procs, bar)
	}
	fmt.Fprintln(w, "legend: B=B&B c=communication t=list contraction l=load balancing .=idle")
}

// --- Table 1 -------------------------------------------------------------------

// Table1Procs are the processor counts of the paper's Table 1.
var Table1Procs = []int{10, 30, 50, 70, 100}

// Table1 measures the large problem at the paper's processor counts.
func Table1(seed int64, procs []int) []Row {
	if procs == nil {
		procs = Table1Procs
	}
	w := LargeWorkload(seed)
	out := make([]Row, 0, len(procs))
	for _, p := range procs {
		out = append(out, measure(w, p, seed))
	}
	return out
}

// RenderTable1 prints rows with the paper's Table 1 columns.
func RenderTable1(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Table 1: simulated execution of the large problem (~79,600 nodes, 3.47 s/node)")
	fmt.Fprintln(w, "procs  exec(h)    BB%   contr%  storage(MB)  redund(MB)  comm(MB/h/proc)  optimum")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %7.2f  %5.2f%%  %5.2f%%  %11.2f  %10.2f  %15.2f  %v\n",
			r.Procs, r.ExecSeconds/3600, r.BBPct, r.ContractPct,
			metrics.MB(int64(r.StorageTotal)), metrics.MB(int64(r.StorageRedundant)),
			r.CommMBPerHrProc, r.OptimumOK)
	}
}

// --- Figure 4 -------------------------------------------------------------------

// Figure4 sweeps 10..100 processors in steps of 10 on the large problem:
// the execution-time and communication curves.
func Figure4(seed int64) []Row {
	procs := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	return Table1(seed, procs)
}

// RenderFigure4 prints the two series of Figure 4.
func RenderFigure4(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 4 (left): execution time vs processors")
	plotSeries(w, rows, func(r Row) float64 { return r.ExecSeconds / 3600 }, "h")
	fmt.Fprintln(w, "\nFigure 4 (right): communication vs processors")
	plotSeries(w, rows, func(r Row) float64 { return r.CommMBPerHrProc }, "MB/proc/h")
}

func plotSeries(w io.Writer, rows []Row, f func(Row) float64, unit string) {
	max := 0.0
	for _, r := range rows {
		if v := f(r); v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	for _, r := range rows {
		v := f(r)
		fmt.Fprintf(w, "%4d | %-50s %8.2f %s\n",
			r.Procs, strings.Repeat("#", int(v/max*50+0.5)), v, unit)
	}
}

// pruneWorkload builds a tree with enough bound spread that incumbent-based
// elimination matters — the workload for pruning-sensitive ablations.
func pruneWorkload(seed int64) Workload {
	r := rand.New(rand.NewSource(seed))
	return Workload{
		Name: "prunable",
		Tree: btree.Random(r, btree.RandomConfig{
			Size:         6001,
			Cost:         btree.CostModel{Mean: 0.02, Sigma: 0.4},
			BoundSpread:  0.25,
			FeasibleProb: 0.004,
		}),
		Quiet: 10,
	}
}
