package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"gossipbnb/internal/dbnb"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/trace"
)

// GanttResult bundles a traced run with its rendered chart.
type GanttResult struct {
	Result dbnb.Result
	Log    *trace.Log
}

// Figure5 runs the very small problem on three processors with no failures
// and returns the traced execution (the paper's Jumpshot snapshot).
func Figure5(seed int64) GanttResult {
	w := TinyWorkload(seed)
	var lg trace.Log
	cfg := baseConfig(w, 3, seed)
	cfg.Trace = &lg
	res := dbnb.Run(w.Tree, cfg)
	return GanttResult{Result: res, Log: &lg}
}

// Figure6 repeats Figure 5 but crashes two of the three processors at about
// 85% of the failure-free execution time; the surviving processor recovers
// the lost work and terminates correctly.
func Figure6(seed int64) GanttResult {
	w := TinyWorkload(seed)
	base := dbnb.Run(w.Tree, baseConfig(w, 3, seed))
	crashAt := 0.85 * base.Time
	var lg trace.Log
	cfg := baseConfig(w, 3, seed)
	cfg.Trace = &lg
	cfg.Crashes = []dbnb.Crash{
		{Time: crashAt, Node: 1},
		{Time: crashAt * 1.02, Node: 2},
	}
	res := dbnb.Run(w.Tree, cfg)
	return GanttResult{Result: res, Log: &lg}
}

// RenderGantt writes the run summary and the ASCII Gantt chart.
func RenderGantt(w io.Writer, title string, g GanttResult) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "terminated=%v  time=%.2fs  optimum ok=%v  expanded=%d  redundant=%d\n",
		g.Result.Terminated, g.Result.Time, g.Result.OptimumOK,
		g.Result.Expanded, g.Result.Redundant)
	g.Log.Gantt(w, 100)
}

// --- fault-tolerance verification (§6.3.2, §5.5) --------------------------------

// FTRow is one fault-injection scenario outcome.
type FTRow struct {
	Procs      int
	Crashed    int
	CrashAtPct float64 // fraction of failure-free time
	Terminated bool
	OptimumOK  bool
	SlowdownX  float64 // time / failure-free time
	Redundant  int
}

// FaultTolerance verifies the paper's headline claim: the loss of up to all
// but one resource does not affect the quality of the solution. It crashes
// k of n processes at several points of the execution and checks
// termination and optimality every time.
func FaultTolerance(seed int64) []FTRow {
	w := TinyWorkload(seed)
	var out []FTRow
	for _, procs := range []int{3, 6} {
		base := dbnb.Run(w.Tree, baseConfig(w, procs, seed))
		for _, frac := range []float64{0.25, 0.5, 0.85} {
			for _, kill := range []int{1, procs / 2, procs - 1} {
				if kill < 1 {
					continue
				}
				cfg := baseConfig(w, procs, seed)
				for i := 0; i < kill; i++ {
					cfg.Crashes = append(cfg.Crashes, dbnb.Crash{
						Time: frac*base.Time + 0.1*float64(i),
						Node: procs - 1 - i, // keep process 0 (holds early work) last
					})
				}
				res := dbnb.Run(w.Tree, cfg)
				slow := math.NaN()
				if base.Time > 0 {
					slow = res.Time / base.Time
				}
				out = append(out, FTRow{
					Procs: procs, Crashed: kill, CrashAtPct: frac,
					Terminated: res.Terminated, OptimumOK: res.OptimumOK,
					SlowdownX: slow, Redundant: res.Redundant,
				})
			}
		}
	}
	return out
}

// RenderFaultTolerance prints the scenario matrix.
func RenderFaultTolerance(w io.Writer, rows []FTRow) {
	fmt.Fprintln(w, "Fault tolerance: crash k of n processes at t = pct of failure-free time")
	fmt.Fprintln(w, "procs  crashed  at%   terminated  optimum  slowdown  redundant")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %7d  %3.0f%%  %10v  %7v  %7.2fx  %9d\n",
			r.Procs, r.Crashed, 100*r.CrashAtPct, r.Terminated, r.OptimumOK,
			r.SlowdownX, r.Redundant)
	}
}

// --- granularity sweep (§6.3.1) ---------------------------------------------------

// GranRow is one granularity configuration.
type GranRow struct {
	Factor      float64
	ExecSeconds float64
	BBPct       float64
	IdlePct     float64
	MsgsPerSec  float64
	OptimumOK   bool
}

// Granularity multiplies all node costs by constant factors, reproducing the
// §6.3.1 observations: coarser granularity improves load balance, while
// fixed-interval reporting makes communication per unit work grow as
// granularity coarsens.
func Granularity(seed int64) []GranRow {
	w := SmallWorkload(seed)
	var out []GranRow
	for _, f := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		cfg := baseConfig(w, 8, seed)
		cfg.CostFactor = f
		res := dbnb.Run(w.Tree, cfg)
		agg := res.Met.AggregateBreakdown()
		var bbPct, idlePct float64
		if agg.Total() > 0 {
			bbPct = agg.Percent(metrics.BB)
			idlePct = agg.Percent(metrics.Idle)
		}
		r := GranRow{
			Factor: f, ExecSeconds: res.Time,
			BBPct: bbPct, IdlePct: idlePct,
			OptimumOK: res.Terminated && res.OptimumOK,
		}
		if res.Time > 0 {
			r.MsgsPerSec = float64(res.Net.Sent) / res.Time
		}
		out = append(out, r)
	}
	return out
}

// RenderGranularity prints the sweep.
func RenderGranularity(w io.Writer, rows []GranRow) {
	fmt.Fprintln(w, "Granularity sweep: node costs × factor, 8 processors, small problem")
	fmt.Fprintln(w, "factor  exec(s)    BB%   idle%   msgs/s  optimum")
	for _, r := range rows {
		fmt.Fprintf(w, "%6.2f  %7.1f  %5.1f  %6.1f  %7.1f  %v\n",
			r.Factor, r.ExecSeconds, r.BBPct, r.IdlePct, r.MsgsPerSec, r.OptimumOK)
	}
	fmt.Fprintln(w, strings.TrimSpace(`
expected shape (§6.3.1): BB share rises and idle share falls as granularity
coarsens; message rate per second of execution falls, but messages per unit
of useful work rise because reports are sent at fixed time intervals.`))
}
