package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestFigure3Shape(t *testing.T) {
	rows := Figure3(1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Procs != i+1 {
			t.Errorf("row %d procs = %d", i, r.Procs)
		}
		if !r.OptimumOK {
			t.Errorf("procs=%d wrong optimum", r.Procs)
		}
	}
	// The paper's shape: execution time falls with processors, and overhead
	// share rises (36% at 8 processors in the paper).
	if rows[7].ExecSeconds >= rows[0].ExecSeconds {
		t.Errorf("no speedup: 1 proc %.2fs vs 8 procs %.2fs",
			rows[0].ExecSeconds, rows[7].ExecSeconds)
	}
	if rows[7].OverheadPctOfTotal <= rows[1].OverheadPctOfTotal {
		t.Errorf("overhead share should grow with processors: 2p=%.1f%% 8p=%.1f%%",
			rows[1].OverheadPctOfTotal, rows[7].OverheadPctOfTotal)
	}
	if rows[7].OverheadPctOfTotal < 10 {
		t.Errorf("8-proc overhead %.1f%% implausibly small for 0.01 s granularity",
			rows[7].OverheadPctOfTotal)
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestScaledTable1Shape(t *testing.T) {
	// The full Table 1 runs in cmd/figures; shape-check on a scaled tree.
	w := ScaledLargeWorkload(1, 4001)
	r10 := Measure(w, 10, 1)
	r50 := Measure(w, 50, 1)
	if !r10.OptimumOK || !r50.OptimumOK {
		t.Fatalf("wrong optimum: %+v %+v", r10, r50)
	}
	if r50.ExecSeconds >= r10.ExecSeconds {
		t.Errorf("no speedup from 10 to 50 procs: %.0fs vs %.0fs",
			r10.ExecSeconds, r50.ExecSeconds)
	}
	if r10.BBPct < 80 {
		t.Errorf("BB share at 10 procs = %.1f%%, want ≥80%% (coarse granularity)", r10.BBPct)
	}
	if r50.CommMBPerHrProc <= r10.CommMBPerHrProc {
		t.Errorf("comm per processor should rise with processors: %.2f vs %.2f",
			r10.CommMBPerHrProc, r50.CommMBPerHrProc)
	}
	if r50.StorageTotal <= r10.StorageTotal {
		t.Errorf("storage should grow with processors: %d vs %d",
			r10.StorageTotal, r50.StorageTotal)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, []Row{r10, r50})
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestFigure5NoFailures(t *testing.T) {
	g := Figure5(1)
	if !g.Result.Terminated || !g.Result.OptimumOK {
		t.Fatalf("%+v", g.Result)
	}
	if g.Result.Redundant != 0 {
		t.Errorf("failure-free tiny run has %d redundant expansions", g.Result.Redundant)
	}
	if g.Log.Len() == 0 {
		t.Error("no trace recorded")
	}
	var buf bytes.Buffer
	RenderGantt(&buf, "t", g)
	if !strings.Contains(buf.String(), "p0") {
		t.Error("gantt missing process rows")
	}
}

func TestFigure6SurvivorRecovers(t *testing.T) {
	g := Figure6(1)
	if !g.Result.Terminated || !g.Result.OptimumOK {
		t.Fatalf("survivor failed: %+v", g.Result)
	}
	// Two processes must be dead, and the run must take longer than the
	// failure-free run (lost work is redone).
	base := Figure5(1)
	if g.Result.Time <= base.Result.Time {
		t.Errorf("crash run (%.2fs) not slower than failure-free (%.2fs)",
			g.Result.Time, base.Result.Time)
	}
	var buf bytes.Buffer
	RenderGantt(&buf, "t", g)
	if !strings.Contains(buf.String(), "X") {
		t.Error("gantt shows no dead processes")
	}
}

func TestFaultToleranceMatrix(t *testing.T) {
	rows := FaultTolerance(1)
	if len(rows) == 0 {
		t.Fatal("empty matrix")
	}
	for _, r := range rows {
		if !r.Terminated {
			t.Errorf("scenario %+v did not terminate", r)
		}
		if !r.OptimumOK {
			t.Errorf("scenario %+v lost solution quality", r)
		}
	}
	var buf bytes.Buffer
	RenderFaultTolerance(&buf, rows)
	if !strings.Contains(buf.String(), "crash") {
		t.Error("render missing header")
	}
}

func TestGranularityShape(t *testing.T) {
	rows := Granularity(1)
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.OptimumOK {
			t.Errorf("factor %.2f wrong optimum", r.Factor)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.BBPct <= first.BBPct {
		t.Errorf("load balance should improve with coarser granularity: %.1f%% -> %.1f%%",
			first.BBPct, last.BBPct)
	}
	var buf bytes.Buffer
	RenderGranularity(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestDIBComparisonShape(t *testing.T) {
	rows := DIBComparison(1)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.OursTerminated || !r.OursOptimumOK {
			t.Errorf("our algorithm failed scenario %q", r.Scenario)
		}
	}
	// DIB must fail exactly the scenarios that crash process 0.
	for _, r := range rows {
		rootDies := strings.Contains(r.Scenario, "process 0") || strings.Contains(r.Scenario, "all but")
		if rootDies && r.DIBTerminated {
			t.Errorf("DIB survived root failure in %q", r.Scenario)
		}
		if !rootDies && !r.DIBTerminated {
			t.Errorf("DIB failed recoverable scenario %q", r.Scenario)
		}
	}
	var buf bytes.Buffer
	RenderDIBComparison(&buf, rows)
	if !strings.Contains(buf.String(), "DIB") {
		t.Error("render missing header")
	}
}

func TestCentralizedShape(t *testing.T) {
	rows := Centralized(1)
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.CentralUtilization < 0.5 {
		t.Errorf("manager utilization at %d workers = %.2f; bottleneck not visible",
			last.Procs, last.CentralUtilization)
	}
	var buf bytes.Buffer
	RenderCentralized(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestMembershipShape(t *testing.T) {
	rows := Membership(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Per-member load must not grow materially with group size.
	if last.MsgsPerSec > 2*first.MsgsPerSec {
		t.Errorf("per-member load grew with group size: %.2f -> %.2f",
			first.MsgsPerSec, last.MsgsPerSec)
	}
	for _, r := range rows {
		if r.DetectSecs <= 0 {
			t.Errorf("no failure detection at %d members", r.Members)
		}
	}
	var buf bytes.Buffer
	RenderMembership(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestAblationReportPolicyShape(t *testing.T) {
	rows := AblationReportPolicy(1)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Communication volume must rise with fanout at fixed batch.
	byKey := map[[2]int]ReportRow{}
	for _, r := range rows {
		if !r.OptimumOK {
			t.Errorf("c=%d m=%d wrong optimum", r.Batch, r.Fanout)
		}
		byKey[[2]int{r.Batch, r.Fanout}] = r
	}
	if byKey[[2]int{8, 4}].CommMB <= byKey[[2]int{8, 1}].CommMB {
		t.Errorf("fanout 4 should cost more communication than fanout 1: %.3f vs %.3f",
			byKey[[2]int{8, 4}].CommMB, byKey[[2]int{8, 1}].CommMB)
	}
	var buf bytes.Buffer
	RenderAblationReportPolicy(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestAblationRecoveryShape(t *testing.T) {
	rows := AblationRecoveryPatience(1)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.OptimumOK {
			t.Errorf("patience=%d quiet=%.0f failed", r.Patience, r.Quiet)
		}
	}
	var buf bytes.Buffer
	RenderAblationRecoveryPatience(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestAblationCompressionShape(t *testing.T) {
	rows := AblationCompression(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]CompressRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Rule, r.Batch)] = r
	}
	// Depth-first's subtree locality must compress far better than
	// best-first at the same batch size — the paper's loaded-processor
	// effect, with locality as the mechanism.
	for _, batch := range []int{4, 8, 16} {
		bf := byKey[fmt.Sprintf("best-first/%d", batch)]
		df := byKey[fmt.Sprintf("depth-first/%d", batch)]
		if df.CompressionRate <= bf.CompressionRate {
			t.Errorf("batch %d: depth-first %.2fx not better than best-first %.2fx",
				batch, df.CompressionRate, bf.CompressionRate)
		}
	}
	if df := byKey["depth-first/8"]; df.CompressionRate < 1.5 {
		t.Errorf("depth-first compression = %.2fx, want ≥1.5x", df.CompressionRate)
	}
	var buf bytes.Buffer
	RenderAblationCompression(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestAblationSelectRuleShape(t *testing.T) {
	rows := AblationSelectRule(1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var bf, df SelectRow
	for _, r := range rows {
		if !r.OptimumOK {
			t.Errorf("%s failed", r.Rule)
		}
		if r.Rule == "best-first" {
			bf = r
		} else {
			df = r
		}
	}
	// The classic trade-off: best-first finds strong incumbents sooner and
	// expands fewer nodes; depth-first holds far smaller pools.
	if bf.Expanded > df.Expanded {
		t.Errorf("best-first expanded %d > depth-first %d", bf.Expanded, df.Expanded)
	}
	if df.PeakPool >= bf.PeakPool {
		t.Errorf("depth-first peak pool %d not smaller than best-first %d",
			df.PeakPool, bf.PeakPool)
	}
}

func TestAblationAdaptiveShape(t *testing.T) {
	rows := AblationAdaptiveReports(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]AdaptiveRow{}
	for _, r := range rows {
		if !r.OptimumOK {
			t.Errorf("%s at %gx failed", r.Mode, r.Factor)
		}
		byKey[fmt.Sprintf("%s/%g", r.Mode, r.Factor)] = r
	}
	// At the coarsest granularity, adaptive flushing must ship fewer
	// reports with fuller batches than the fixed interval.
	fixed, adaptive := byKey["fixed/128"], byKey["adaptive/128"]
	if adaptive.Reports >= fixed.Reports {
		t.Errorf("adaptive sent %d reports, fixed %d; want fewer", adaptive.Reports, fixed.Reports)
	}
	if adaptive.CodesPerReport <= fixed.CodesPerReport {
		t.Errorf("adaptive batches %.1f codes/report, fixed %.1f; want fuller",
			adaptive.CodesPerReport, fixed.CodesPerReport)
	}
	// At baseline granularity the two modes should behave alike.
	f1, a1 := byKey["fixed/1"], byKey["adaptive/1"]
	if a1.Reports > f1.Reports*3/2+5 {
		t.Errorf("adaptive at 1x sent far more reports: %d vs %d", a1.Reports, f1.Reports)
	}
}

func TestStaticFigures(t *testing.T) {
	var buf bytes.Buffer
	Figure1(&buf)
	if !strings.Contains(buf.String(), "(<x1,0>,<x2,1>,<x5,0>)") {
		t.Error("figure 1 missing the paper's example code")
	}
	buf.Reset()
	Figure2(&buf)
	out := buf.String()
	if !strings.Contains(out, "(<x1,0>)") {
		t.Error("figure 2 contraction result missing")
	}
	if !strings.Contains(out, "(<x1,1>)") {
		t.Error("figure 2 complement missing")
	}
}

func TestDeterministicExperiments(t *testing.T) {
	a := Figure3(3)
	b := Figure3(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("figure 3 row %d differs between identical runs", i)
		}
	}
}
