package exp

// The anti-entropy diff-gossip experiment (ISSUE 7): the same workload run
// with legacy full-frontier reports and with content-addressed diff gossip,
// measuring what actually crosses the wire. "Report-path bytes" counts every
// kind that exists to propagate completion state — legacy reports and table
// pushes, plus digests and subtree pulls in diff mode — and excludes the
// work-stealing kinds both modes need. The headline is the ratio: steady
// state, diff mode ships codes at most once plus fixed-size digests, where
// the legacy protocol re-ships entire frontiers on every probe.

import (
	"fmt"
	"io"
	"math/rand"

	"gossipbnb/internal/bnb"
	"gossipbnb/internal/dbnb"
	"gossipbnb/internal/metrics"
	"gossipbnb/internal/protocol"
)

// DiffRow is one (scenario, mode) cell of the diff-gossip byte comparison.
type DiffRow struct {
	Scenario    string
	Mode        string // "frontier" or "diff"
	Time        float64
	Expanded    int
	ReportBytes int64 // completion-propagation kinds only
	TotalBytes  int64
	Msgs        int64
	OptimumOK   bool
}

// reportPathBytes sums the wire bytes of the completion-propagation kinds.
func reportPathBytes(res dbnb.Result) int64 {
	return res.Net.KindBytes[protocol.KindReport] +
		res.Net.KindBytes[protocol.KindTable] +
		res.Net.KindBytes[protocol.KindDigestReport] +
		res.Net.KindBytes[protocol.KindSubtreeRequest] +
		res.Net.KindBytes[protocol.KindSubtreeReply]
}

func diffRow(scenario, mode string, res dbnb.Result) DiffRow {
	return DiffRow{
		Scenario:    scenario,
		Mode:        mode,
		Time:        res.Time,
		Expanded:    res.Expanded,
		ReportBytes: reportPathBytes(res),
		TotalBytes:  res.Net.Bytes,
		Msgs:        res.Net.Sent,
		OptimumOK:   res.OptimumOK,
	}
}

// DiffBytes runs the three scenarios of the comparison:
//
//   - table1-100: the size-scaled Table 1 workload (8001 nodes, 3.47 s mean
//     cost) on 100 processes — the paper's steady-state regime, where most
//     processes starve and probe while tables grow to thousands of codes.
//   - stress-1000: a deep knapsack on 1000 processes — the scale tier,
//     dominated by starving processes chasing reports.
//   - wan-2x50: the Table 1 workload on two 50-process clusters joined by a
//     high-latency, low-bandwidth link — the regime the byte reduction is
//     for, where every full frontier crossing the WAN link costs real time.
func DiffBytes(seed int64) []DiffRow {
	var rows []DiffRow
	run := func(scenario string, f func(diff bool) dbnb.Result) {
		rows = append(rows,
			diffRow(scenario, "frontier", f(false)),
			diffRow(scenario, "diff", f(true)))
	}

	w := ScaledLargeWorkload(seed, 8001)
	run("table1-100", func(diff bool) dbnb.Result {
		cfg := baseConfig(w, 100, seed)
		cfg.DiffGossip = diff
		return dbnb.Run(w.Tree, cfg)
	})

	k := bnb.RandomKnapsack(rand.New(rand.NewSource(7)), 30)
	ref := bnb.SolveProblem(k)
	run("stress-1000", func(diff bool) dbnb.Result {
		return dbnb.RunProblemRef(k, ref, dbnb.Config{
			Procs: 1000, Seed: 7, Prune: true, DiffGossip: diff,
		})
	})

	// Two 50-process clusters: 1 ms + 1 Gb/s within a cluster, 80 ms +
	// 10 Mb/s across. LinkLatency forces the serial kernel, so the run
	// stays deterministic.
	run("wan-2x50", func(diff bool) dbnb.Result {
		cfg := baseConfig(w, 100, seed)
		cfg.DiffGossip = diff
		cfg.LinkLatency = func(from, to, bytes int) float64 {
			if (from < 50) == (to < 50) {
				return 0.001 + float64(bytes)/125e6
			}
			return 0.080 + float64(bytes)/1.25e6
		}
		return dbnb.Run(w.Tree, cfg)
	})
	return rows
}

// RenderDiffBytes prints the before/after table plus the per-scenario ratio.
func RenderDiffBytes(w io.Writer, rows []DiffRow) {
	fmt.Fprintf(w, "%-12s %-9s %10s %9s %12s %12s %9s %4s\n",
		"scenario", "mode", "exec(s)", "expanded", "report-KB", "total-KB", "msgs", "opt")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-9s %10.1f %9d %12.1f %12.1f %9d %4v\n",
			r.Scenario, r.Mode, r.Time, r.Expanded,
			float64(r.ReportBytes)/1024, float64(r.TotalBytes)/1024, r.Msgs, r.OptimumOK)
	}
	fmt.Fprintln(w)
	for i := 0; i+1 < len(rows); i += 2 {
		leg, dif := rows[i], rows[i+1]
		fmt.Fprintf(w, "%-12s report-path bytes %.3f MB -> %.3f MB (%.2fx), total %.2fx\n",
			leg.Scenario,
			metrics.MB(leg.ReportBytes), metrics.MB(dif.ReportBytes),
			float64(leg.ReportBytes)/float64(dif.ReportBytes),
			float64(leg.TotalBytes)/float64(dif.TotalBytes))
	}
}
