package nemesis

import (
	"strings"
	"testing"
	"time"
)

func TestNemesisParse(t *testing.T) {
	cases := []struct {
		in   string
		want Fault
	}{
		{"partition:1-3:0,1|2,3", Fault{Kind: Partition, Start: time.Second, End: 3 * time.Second,
			A: []int{0, 1}, B: []int{2, 3}}},
		{"partition:500ms-2s:2", Fault{Kind: Partition, Start: 500 * time.Millisecond,
			End: 2 * time.Second, A: []int{2}}},
		{"partition:2-:0", Fault{Kind: Partition, Start: 2 * time.Second, A: []int{0}}},
		{"oneway:0-1:0|1,2", Fault{Kind: OneWay, End: time.Second, A: []int{0}, B: []int{1, 2}}},
		{"flap:0-2:250ms", Fault{Kind: Flap, A: []int{0}, B: []int{2}, Period: 250 * time.Millisecond}},
		{"flap:0-2:0.5:1-4", Fault{Kind: Flap, A: []int{0}, B: []int{2},
			Period: 500 * time.Millisecond, Start: time.Second, End: 4 * time.Second}},
		{"stall:3:1-2", Fault{Kind: Stall, A: []int{3}, Start: time.Second, End: 2 * time.Second}},
		{"stall:1,2:0-", Fault{Kind: Stall, A: []int{1, 2}}},
		{"slow:1-3:20ms:0-5", Fault{Kind: Slow, A: []int{1}, B: []int{3},
			Delay: 20 * time.Millisecond, End: 5 * time.Second}},
		{"corrupt:0.25", Fault{Kind: Corrupt, Prob: 0.25}},
		{"corrupt:1:1-2", Fault{Kind: Corrupt, Prob: 1, Start: time.Second, End: 2 * time.Second}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got.Kind != c.want.Kind || got.Start != c.want.Start || got.End != c.want.End ||
			got.Period != c.want.Period || got.Delay != c.want.Delay || got.Prob != c.want.Prob ||
			!eqGroup(got.A, c.want.A) || !eqGroup(got.B, c.want.B) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String must render back to something Parse accepts equivalently.
		back, err := Parse(got.String())
		if err != nil {
			t.Errorf("Parse(String(%q)) = %q: %v", c.in, got.String(), err)
		} else if back.Kind != got.Kind || !eqGroup(back.A, got.A) {
			t.Errorf("round trip of %q via %q changed the fault", c.in, got.String())
		}
	}
}

func eqGroup(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNemesisParseRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"partition",
		"partition:1-2",
		"partition:2-1:0",     // end before start
		"partition:1-2:",      // empty group
		"partition:1-2:a",     // non-numeric id
		"partition:1-2:0|1|2", // three sides
		"oneway:1-2:0",        // missing second side
		"flap:0-0:1",          // self link
		"flap:0-1:-5ms",       // negative period
		"flap:0-1:0",          // zero period
		"slow:0:10ms",         // not a link
		"stall:0",             // missing window
		"corrupt:1.5",         // probability out of range
		"corrupt:-0.1",        // negative probability
		"meteor:1-2:0",        // unknown kind
		"partition:x-2:0",     // bad duration
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestNemesisVerdicts(t *testing.T) {
	sched := New(
		Fault{Kind: Partition, Start: time.Second, End: 2 * time.Second, A: []int{0, 1}},
		Fault{Kind: OneWay, Start: 3 * time.Second, End: 4 * time.Second, A: []int{0}, B: []int{1}},
		Fault{Kind: Slow, A: []int{0}, B: []int{2}, Delay: 10 * time.Millisecond, End: 10 * time.Second},
		Fault{Kind: Corrupt, Prob: 0.5, Start: 5 * time.Second, End: 6 * time.Second},
	)
	at := func(from, to int, sec float64) Verdict {
		return sched.At(from, to, time.Duration(sec*float64(time.Second)))
	}
	// Before the partition window: only the slow link acts.
	if v := at(0, 2, 0.5); v.Cut || v.Delay != 10*time.Millisecond {
		t.Errorf("pre-window 0->2 = %+v", v)
	}
	// Inside the partition: group {0,1} vs rest, both directions.
	if !at(0, 2, 1.5).Cut || !at(2, 1, 1.5).Cut {
		t.Error("partition did not cut group boundary")
	}
	if at(0, 1, 1.5).Cut || at(2, 3, 1.5).Cut {
		t.Error("partition cut inside a side")
	}
	// Window end is exclusive.
	if at(0, 2, 2.0).Cut {
		t.Error("partition active at its end instant")
	}
	// One-way: 0->1 dead, 1->0 alive.
	if !at(0, 1, 3.5).Cut || at(1, 0, 3.5).Cut {
		t.Error("oneway verdict wrong")
	}
	// Corruption window applies to all links and composes with slow.
	v := at(0, 2, 5.5)
	if v.Corrupt != 0.5 || v.Delay != 10*time.Millisecond {
		t.Errorf("corrupt window verdict = %+v", v)
	}
}

func TestNemesisFlapPhases(t *testing.T) {
	f := Fault{Kind: Flap, A: []int{0}, B: []int{1}, Period: time.Second,
		Start: time.Second, End: 10 * time.Second}
	sched := New(f)
	// Down during the first half of each period, up during the second.
	for _, c := range []struct {
		sec  float64
		down bool
	}{
		{0.5, false}, // before window
		{1.1, true},
		{1.6, false},
		{2.2, true},
		{2.9, false},
		{10.1, false}, // after window
	} {
		v := sched.At(0, 1, time.Duration(c.sec*float64(time.Second)))
		if v.Cut != c.down {
			t.Errorf("flap at %.1fs: cut=%v, want %v", c.sec, v.Cut, c.down)
		}
		// Symmetric.
		if w := sched.At(1, 0, time.Duration(c.sec*float64(time.Second))); w.Cut != v.Cut {
			t.Errorf("flap asymmetric at %.1fs", c.sec)
		}
	}
	// Unrelated link untouched.
	if sched.At(0, 2, 1100*time.Millisecond).Cut {
		t.Error("flap cut an unrelated link")
	}
}

func TestNemesisStall(t *testing.T) {
	sched := New(Fault{Kind: Stall, A: []int{2}, Start: 0, End: time.Second})
	if !sched.At(2, 0, 0).Cut || !sched.At(1, 2, 0).Cut {
		t.Error("stall did not cut both directions")
	}
	if sched.At(0, 1, 0).Cut {
		t.Error("stall cut an unrelated link")
	}
}

func TestNemesisJudgeNowArms(t *testing.T) {
	// A schedule whose fault starts at 0 must act immediately after the
	// first JudgeNow call even without an explicit Arm.
	sched := New(Fault{Kind: Partition, Start: 0, End: time.Hour, A: []int{0}})
	if !sched.JudgeNow(0, 1).Cut {
		t.Error("auto-armed schedule did not judge")
	}
	// Re-arming in the future pushes a delayed window back out of reach.
	sched2 := New(Fault{Kind: Partition, Start: time.Hour, End: 2 * time.Hour, A: []int{0}})
	sched2.Arm(time.Now())
	if sched2.JudgeNow(0, 1).Cut {
		t.Error("future window active now")
	}
	// A nil schedule judges everything clean.
	var nilSched *Schedule
	if v := nilSched.JudgeNow(0, 1); v.Cut || v.Delay != 0 || v.Corrupt != 0 {
		t.Error("nil schedule not a no-op")
	}
}

func TestNemesisHorizon(t *testing.T) {
	if h := New(
		Fault{Kind: Partition, Start: 0, End: 2 * time.Second, A: []int{0}},
		Fault{Kind: Stall, Start: time.Second, End: 5 * time.Second, A: []int{1}},
	).Horizon(); h != 5*time.Second {
		t.Errorf("Horizon = %v, want 5s", h)
	}
	if h := New(Fault{Kind: Partition, Start: 0, A: []int{0}}).Horizon(); h != 0 {
		t.Errorf("open-ended Horizon = %v, want 0", h)
	}
}

func TestNemesisParseAll(t *testing.T) {
	fs, err := ParseAll([]string{"partition:1-2:0|1", "corrupt:0.1"})
	if err != nil || len(fs) != 2 {
		t.Fatalf("ParseAll = %v, %v", fs, err)
	}
	if _, err := ParseAll([]string{"partition:1-2:0|1", "bogus"}); err == nil {
		t.Error("ParseAll accepted a bad spec")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the bad spec: %v", err)
	}
}
