// Package nemesis is a declarative fault-injection schedule for the live
// transports and the simulator CLI. A scenario is a list of Faults, each a
// network misbehaviour active over a time window; a Schedule judges every
// directed link at every instant and returns a Verdict — cut, delayed,
// and/or corrupted — that a transport applies to the message in flight.
//
// The grammar is runtime-neutral: the live runtime arms a Schedule against
// the wall clock, the simulator maps the subset of faults it can express
// onto virtual-time partitions. Faults compose: a link may be simultaneously
// slowed by one fault and flapped by another.
package nemesis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind enumerates the fault types.
type Kind int

const (
	// Partition cuts every link between group A and group B (both
	// directions). An empty B means "everyone not in A".
	Partition Kind = iota
	// OneWay cuts only messages from group A to group B — the asymmetric
	// partition where B still reaches A but never hears back.
	OneWay
	// Flap toggles the single link A[0]–B[0] down and up with a fixed
	// period (down during the first half of each period).
	Flap
	// Stall cuts all traffic to and from the nodes in A — the network view
	// of a frozen process.
	Stall
	// Slow adds a fixed delay to every message on the link A[0]–B[0]
	// (both directions).
	Slow
	// Corrupt flips bytes in transit with the given per-message
	// probability, on every link. The CRC layer must catch these.
	Corrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Partition:
		return "partition"
	case OneWay:
		return "oneway"
	case Flap:
		return "flap"
	case Stall:
		return "stall"
	case Slow:
		return "slow"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// Fault is one scheduled network misbehaviour. Start/End bound its active
// window ([Start, End), End 0 = open-ended); the remaining fields depend on
// Kind as documented on the Kind constants.
type Fault struct {
	Kind   Kind
	Start  time.Duration
	End    time.Duration // 0 = until the run ends
	A, B   []int         // node groups (single-element for link faults)
	Period time.Duration // Flap
	Delay  time.Duration // Slow
	Prob   float64       // Corrupt
}

// active reports whether the fault's window covers instant t.
func (f Fault) active(t time.Duration) bool {
	return t >= f.Start && (f.End == 0 || t < f.End)
}

func in(g []int, id int) bool {
	for _, v := range g {
		if v == id {
			return true
		}
	}
	return false
}

// hits reports whether the fault, active at t, affects the directed link
// from → to, plus the flap phase test.
func (f Fault) hits(from, to int, t time.Duration) bool {
	switch f.Kind {
	case Partition:
		if len(f.B) == 0 {
			return in(f.A, from) != in(f.A, to)
		}
		return (in(f.A, from) && in(f.B, to)) || (in(f.B, from) && in(f.A, to))
	case OneWay:
		return in(f.A, from) && in(f.B, to)
	case Flap:
		if !f.link(from, to) || f.Period <= 0 {
			return false
		}
		phase := (t - f.Start) % f.Period
		return phase < f.Period/2
	case Stall:
		return in(f.A, from) || in(f.A, to)
	case Slow, Corrupt:
		// handled by Verdict accumulation, not a cut
	}
	return false
}

// link reports whether (from, to) is the undirected link A[0]–B[0].
func (f Fault) link(from, to int) bool {
	if len(f.A) != 1 || len(f.B) != 1 {
		return false
	}
	return (f.A[0] == from && f.B[0] == to) || (f.B[0] == from && f.A[0] == to)
}

// String renders the fault back in the scenario grammar.
func (f Fault) String() string {
	win := fmtDur(f.Start) + "-"
	if f.End != 0 {
		win += fmtDur(f.End)
	}
	g := func(ids []int) string {
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = strconv.Itoa(id)
		}
		return strings.Join(parts, ",")
	}
	switch f.Kind {
	case Partition:
		s := fmt.Sprintf("partition:%s:%s", win, g(f.A))
		if len(f.B) > 0 {
			s += "|" + g(f.B)
		}
		return s
	case OneWay:
		return fmt.Sprintf("oneway:%s:%s|%s", win, g(f.A), g(f.B))
	case Flap:
		return fmt.Sprintf("flap:%d-%d:%s:%s", f.A[0], f.B[0], fmtDur(f.Period), win)
	case Stall:
		return fmt.Sprintf("stall:%s:%s", g(f.A), win)
	case Slow:
		return fmt.Sprintf("slow:%d-%d:%s:%s", f.A[0], f.B[0], fmtDur(f.Delay), win)
	case Corrupt:
		return fmt.Sprintf("corrupt:%g:%s", f.Prob, win)
	}
	return "unknown"
}

func fmtDur(d time.Duration) string {
	if d == d.Truncate(time.Second) {
		return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
	}
	return d.String()
}

// Verdict is a Schedule's judgement of one message on one directed link at
// one instant. Zero value = deliver normally.
type Verdict struct {
	Cut     bool
	Delay   time.Duration // extra latency to add before delivery
	Corrupt float64       // probability the frame should be corrupted
}

// Schedule holds a scenario's faults and judges links against them. The
// zero time origin is set by Arm (or lazily by the first JudgeNow call), so
// fault windows are relative to the start of the run, not process start.
type Schedule struct {
	faults []Fault
	t0     atomic.Int64 // wall-clock origin, unix nanos; 0 = not armed
}

// New builds a schedule over the given faults.
func New(faults ...Fault) *Schedule {
	return &Schedule{faults: faults}
}

// Faults returns the scenario (shared slice; treat as read-only).
func (s *Schedule) Faults() []Fault { return s.faults }

// Arm fixes the schedule's time origin. Calling Arm again re-bases the
// windows — useful when one Schedule value is reused across runs.
func (s *Schedule) Arm(t0 time.Time) { s.t0.Store(t0.UnixNano()) }

// At is the pure judgement: the verdict for a message from → to at instant
// t after the origin. Deterministic and lock-free, so tests can table-drive
// it and the simulator can call it with virtual time.
func (s *Schedule) At(from, to int, t time.Duration) Verdict {
	var v Verdict
	if s == nil {
		return v
	}
	for _, f := range s.faults {
		if !f.active(t) {
			continue
		}
		switch f.Kind {
		case Slow:
			if f.link(from, to) {
				v.Delay += f.Delay
			}
		case Corrupt:
			v.Corrupt = 1 - (1-v.Corrupt)*(1-f.Prob)
		default:
			if f.hits(from, to, t) {
				v.Cut = true
			}
		}
	}
	return v
}

// JudgeNow judges a message from → to at the current wall-clock instant,
// arming the schedule at first use if Arm was never called.
func (s *Schedule) JudgeNow(from, to int) Verdict {
	if s == nil || len(s.faults) == 0 {
		return Verdict{}
	}
	t0 := s.t0.Load()
	if t0 == 0 {
		s.t0.CompareAndSwap(0, time.Now().UnixNano())
		t0 = s.t0.Load()
	}
	return s.At(from, to, time.Duration(time.Now().UnixNano()-t0))
}

// Horizon returns the latest window end across all faults (0 if any fault
// is open-ended or the schedule is empty) — callers use it to size run
// timeouts.
func (s *Schedule) Horizon() time.Duration {
	if s == nil {
		return 0
	}
	var h time.Duration
	for _, f := range s.faults {
		if f.End == 0 {
			return 0
		}
		if f.End > h {
			h = f.End
		}
	}
	return h
}

// Parse reads one fault in the scenario grammar:
//
//	partition:T1-T2:a[|b]    cut group a from group b (b defaults to rest)
//	oneway:T1-T2:a|b         cut only the a → b direction
//	flap:A-B:PERIOD[:T1-T2]  link A–B toggles down/up each PERIOD
//	stall:a:T1-T2            nodes in a drop all traffic, both directions
//	slow:A-B:DELAY[:T1-T2]   add DELAY to each message on link A–B
//	corrupt:P[:T1-T2]        corrupt frames with probability P, all links
//
// Durations accept Go syntax ("750ms") or bare seconds ("1.5"); windows are
// "start-end" with an optional open end ("2-"). Groups are comma-separated
// node IDs; "|" separates two sides.
func Parse(s string) (Fault, error) {
	parts := strings.Split(s, ":")
	bad := func(why string) (Fault, error) {
		return Fault{}, fmt.Errorf("nemesis: %q: %s", s, why)
	}
	if len(parts) < 2 {
		return bad("want kind:args")
	}
	switch parts[0] {
	case "partition", "oneway":
		if len(parts) != 3 {
			return bad("want " + parts[0] + ":T1-T2:a|b")
		}
		f := Fault{Kind: Partition}
		if parts[0] == "oneway" {
			f.Kind = OneWay
		}
		var err error
		if f.Start, f.End, err = parseWindow(parts[1]); err != nil {
			return bad(err.Error())
		}
		sides := strings.Split(parts[2], "|")
		if f.A, err = parseGroup(sides[0]); err != nil {
			return bad(err.Error())
		}
		if len(sides) > 2 {
			return bad("more than two sides")
		}
		if len(sides) == 2 {
			if f.B, err = parseGroup(sides[1]); err != nil {
				return bad(err.Error())
			}
		}
		if f.Kind == OneWay && len(f.B) == 0 {
			return bad("oneway needs both sides: a|b")
		}
		return f, nil
	case "flap", "slow":
		if len(parts) != 3 && len(parts) != 4 {
			return bad("want " + parts[0] + ":A-B:arg[:T1-T2]")
		}
		f := Fault{Kind: Flap}
		if parts[0] == "slow" {
			f.Kind = Slow
		}
		a, b, err := parseLink(parts[1])
		if err != nil {
			return bad(err.Error())
		}
		f.A, f.B = []int{a}, []int{b}
		d, err := parseDur(parts[2])
		if err != nil || d <= 0 {
			return bad("bad duration " + strconv.Quote(parts[2]))
		}
		if f.Kind == Flap {
			f.Period = d
		} else {
			f.Delay = d
		}
		if len(parts) == 4 {
			if f.Start, f.End, err = parseWindow(parts[3]); err != nil {
				return bad(err.Error())
			}
		}
		return f, nil
	case "stall":
		if len(parts) != 3 {
			return bad("want stall:nodes:T1-T2")
		}
		f := Fault{Kind: Stall}
		var err error
		if f.A, err = parseGroup(parts[1]); err != nil {
			return bad(err.Error())
		}
		if f.Start, f.End, err = parseWindow(parts[2]); err != nil {
			return bad(err.Error())
		}
		return f, nil
	case "corrupt":
		if len(parts) != 2 && len(parts) != 3 {
			return bad("want corrupt:P[:T1-T2]")
		}
		p, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || p < 0 || p > 1 {
			return bad("probability must be in [0,1]")
		}
		f := Fault{Kind: Corrupt, Prob: p}
		if len(parts) == 3 {
			if f.Start, f.End, err = parseWindow(parts[2]); err != nil {
				return bad(err.Error())
			}
		}
		return f, nil
	}
	return bad("unknown fault kind " + strconv.Quote(parts[0]))
}

// ParseAll parses a whole scenario, one fault per string.
func ParseAll(specs []string) ([]Fault, error) {
	fs := make([]Fault, 0, len(specs))
	for _, s := range specs {
		f, err := Parse(s)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

func parseDur(s string) (time.Duration, error) {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if f < 0 {
			return 0, fmt.Errorf("negative duration %q", s)
		}
		return time.Duration(f * float64(time.Second)), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return d, nil
}

// parseWindow reads "start-end", where end may be empty for an open window.
func parseWindow(s string) (start, end time.Duration, err error) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return 0, 0, fmt.Errorf("window %q: want start-end", s)
	}
	if start, err = parseDur(s[:i]); err != nil {
		return 0, 0, fmt.Errorf("window %q: %v", s, err)
	}
	if s[i+1:] == "" {
		return start, 0, nil
	}
	if end, err = parseDur(s[i+1:]); err != nil {
		return 0, 0, fmt.Errorf("window %q: %v", s, err)
	}
	if end <= start {
		return 0, 0, fmt.Errorf("window %q: end before start", s)
	}
	return start, end, nil
}

// parseLink reads "A-B", two distinct node IDs.
func parseLink(s string) (int, int, error) {
	i := strings.Index(s, "-")
	if i < 0 {
		return 0, 0, fmt.Errorf("link %q: want A-B", s)
	}
	a, err1 := strconv.Atoi(s[:i])
	b, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || a < 0 || b < 0 {
		return 0, 0, fmt.Errorf("link %q: want two node ids", s)
	}
	if a == b {
		return 0, 0, fmt.Errorf("link %q: self-link", s)
	}
	return a, b, nil
}

// parseGroup reads a comma-separated list of node IDs.
func parseGroup(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty node group")
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad node id %q", p)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}
