package member

import (
	"testing"

	"gossipbnb/internal/sim"
)

// cluster wires n members on a fresh kernel; member 0 is the gossip server.
func cluster(seed int64, n int, cfg Config) (*sim.Kernel, *sim.Network, []*Member) {
	k := sim.New(seed)
	nw := sim.NewNetwork(k, sim.PaperLatency())
	ms := make([]*Member, n)
	servers := []sim.NodeID{0}
	for i := 0; i < n; i++ {
		id := sim.NodeID(i)
		ms[i] = New(k, nw, id, servers, cfg)
		m := ms[i]
		nw.Register(id, func(from sim.NodeID, msg sim.Message) { m.Deliver(from, msg) })
	}
	return k, nw, ms
}

func TestJoinPropagation(t *testing.T) {
	k, _, ms := cluster(1, 8, DefaultConfig())
	for _, m := range ms {
		m.Join()
	}
	k.Run(30)
	for i, m := range ms {
		if got := len(m.View()); got != 8 {
			t.Errorf("member %d view size = %d, want 8 (%v)", i, got, m.View())
		}
	}
}

func TestPeersExcludesSelf(t *testing.T) {
	k, _, ms := cluster(2, 4, DefaultConfig())
	for _, m := range ms {
		m.Join()
	}
	k.Run(20)
	for i, m := range ms {
		for _, p := range m.Peers() {
			if p == sim.NodeID(i) {
				t.Errorf("member %d's Peers contains itself", i)
			}
		}
	}
}

func TestLateJoiner(t *testing.T) {
	k, _, ms := cluster(3, 5, DefaultConfig())
	for _, m := range ms[:4] {
		m.Join()
	}
	k.Run(20)
	ms[4].Join()
	k.Run(60)
	for i, m := range ms {
		if !m.Knows(4) {
			t.Errorf("member %d never learned of late joiner", i)
		}
		_ = i
	}
	if len(ms[4].View()) != 5 {
		t.Errorf("late joiner view = %v", ms[4].View())
	}
}

func TestFailureDetection(t *testing.T) {
	cfg := Config{GossipInterval: 1, Fanout: 2, FailTimeout: 8}
	k, nw, ms := cluster(4, 6, cfg)
	for _, m := range ms {
		m.Join()
	}
	k.Run(20)
	nw.Crash(5)
	k.Run(120)
	for i, m := range ms[:5] {
		if m.Knows(5) {
			t.Errorf("member %d still believes crashed member 5 is alive", i)
		}
	}
}

func TestLeaveIsDetectedLikeFailure(t *testing.T) {
	cfg := Config{GossipInterval: 1, Fanout: 2, FailTimeout: 8}
	k, _, ms := cluster(5, 4, cfg)
	for _, m := range ms {
		m.Join()
	}
	k.Run(20)
	ms[3].Leave()
	if ms[3].Alive() {
		t.Error("Alive after Leave")
	}
	k.Run(120)
	for i, m := range ms[:3] {
		if m.Knows(3) {
			t.Errorf("member %d still has departed member in view", i)
		}
	}
}

func TestOnJoinOnLeaveCallbacks(t *testing.T) {
	cfg := Config{GossipInterval: 1, Fanout: 2, FailTimeout: 6}
	k, nw, ms := cluster(6, 3, cfg)
	joins, leaves := 0, 0
	ms[0].OnJoin = func(sim.NodeID) { joins++ }
	ms[0].OnLeave = func(sim.NodeID) { leaves++ }
	for _, m := range ms {
		m.Join()
	}
	k.Run(15)
	if joins != 2 {
		t.Errorf("joins = %d, want 2", joins)
	}
	nw.Crash(2)
	k.Run(120)
	if leaves == 0 {
		t.Error("no leave observed after crash")
	}
}

func TestToleratesMessageLoss(t *testing.T) {
	cfg := Config{GossipInterval: 1, Fanout: 2, FailTimeout: 15}
	k, nw, ms := cluster(7, 8, cfg)
	nw.SetLoss(0.15)
	for _, m := range ms {
		m.Join()
	}
	k.Run(200)
	// §5.2: tolerance to a small percentage of message loss — live members
	// must not be evicted.
	for i, m := range ms {
		if got := len(m.View()); got != 8 {
			t.Errorf("member %d view size under loss = %d, want 8", i, got)
		}
	}
}

func TestDeadMemberIgnoresMessages(t *testing.T) {
	k, _, ms := cluster(8, 2, DefaultConfig())
	ms[0].Join()
	// member 1 never joined; deliveries must not resurrect it.
	ms[1].Deliver(0, viewMessage{pairs: []hbPair{{id: 0, hb: 3}}})
	k.Run(5)
	if ms[1].Knows(0) {
		t.Error("non-joined member built a view")
	}
}

func TestStaleRelayDoesNotResurrect(t *testing.T) {
	k := sim.New(1)
	nw := sim.NewNetwork(k, nil)
	m := New(k, nw, 0, []sim.NodeID{0}, Config{GossipInterval: 1, Fanout: 1, FailTimeout: 3})
	nw.Register(0, func(from sim.NodeID, msg sim.Message) { m.Deliver(from, msg) })
	m.Join()
	// Learn of member 1 at heartbeat 5, then silence until eviction.
	m.Deliver(2, viewMessage{pairs: []hbPair{{id: 1, hb: 5}}})
	k.Run(10)
	if m.Knows(1) {
		t.Fatal("member 1 not evicted")
	}
	// A slow peer relays the same stale heartbeat: must stay evicted.
	m.Deliver(2, viewMessage{pairs: []hbPair{{id: 1, hb: 5}}})
	if m.Knows(1) {
		t.Error("stale relay resurrected an evicted member")
	}
	// Genuine progress (a higher heartbeat) readmits it.
	m.Deliver(2, viewMessage{pairs: []hbPair{{id: 1, hb: 6}}})
	if !m.Knows(1) {
		t.Error("heartbeat progress did not readmit the member")
	}
}

func TestLostJoinIsRetried(t *testing.T) {
	cfg := Config{GossipInterval: 1, Fanout: 2, FailTimeout: 30}
	k, nw, ms := cluster(11, 4, cfg)
	nw.SetLoss(0.6) // well beyond "a small percentage": joins need retries
	for _, m := range ms {
		m.Join()
	}
	k.Run(300)
	for i, m := range ms {
		if len(m.View()) < 2 {
			t.Errorf("member %d still isolated after join retries: %v", i, m.View())
		}
	}
}

func TestHeartbeatFlapReadmits(t *testing.T) {
	// A member that goes quiet long enough is suspected and dropped. A direct
	// announcement from the member itself — first-hand evidence, unlike a
	// stale relay — must flap it straight back into the view, and renewed
	// silence must evict it again.
	k := sim.New(12)
	nw := sim.NewNetwork(k, nil)
	m := New(k, nw, 0, []sim.NodeID{0}, Config{GossipInterval: 1, Fanout: 1, FailTimeout: 3})
	nw.Register(0, func(from sim.NodeID, msg sim.Message) { m.Deliver(from, msg) })
	m.Join()
	m.Deliver(1, viewMessage{pairs: []hbPair{{id: 1, hb: 5}}})
	if !m.Knows(1) {
		t.Fatal("member 1 not admitted")
	}
	k.Run(10) // silence beyond FailTimeout: suspected and dropped
	if m.Knows(1) {
		t.Fatal("member 1 not evicted after silence")
	}
	// The member reappears with a direct join announce at its old heartbeat:
	// no counter progress, but first-hand.
	m.Deliver(1, joinMessage{id: 1})
	if !m.Knows(1) {
		t.Error("direct announce did not readmit the flapped member")
	}
	k.Run(20)
	if m.Knows(1) {
		t.Error("readmitted member survived renewed silence")
	}
}

func TestLateJoinAnnounceLostAndRetried(t *testing.T) {
	// A late joiner announces into a total blackout — the §4 adversary may
	// drop every message. When the network heals, the joiner's periodic
	// re-announce must get it absorbed without any outside help.
	cfg := Config{GossipInterval: 1, Fanout: 2, FailTimeout: 30}
	k, nw, ms := cluster(13, 5, cfg)
	for _, m := range ms[:4] {
		m.Join()
	}
	k.Run(20)
	nw.SetLoss(1)
	ms[4].Join()
	k.Run(30)
	for i, m := range ms[:4] {
		if m.Knows(4) {
			t.Fatalf("member %d learned of the joiner through a lossless blackout", i)
		}
	}
	nw.SetLoss(0)
	k.Run(90)
	for i, m := range ms {
		if !m.Knows(4) {
			t.Errorf("member %d never absorbed the joiner after the network healed", i)
		}
	}
	if got := len(ms[4].View()); got != 5 {
		t.Errorf("joiner view size = %d, want 5 (%v)", got, ms[4].View())
	}
}

func TestConvergenceTimeUnderLoss(t *testing.T) {
	// View convergence slows under loss but stays bounded: with 30% of
	// messages vanishing, a late joiner must still be in every view within a
	// modest multiple of the lossless convergence time — and well inside
	// FailTimeout, or churn would outrun detection.
	cfg := Config{GossipInterval: 1, Fanout: 2, FailTimeout: 60}
	k, nw, ms := cluster(14, 8, cfg)
	nw.SetLoss(0.3)
	for _, m := range ms[:7] {
		m.Join()
	}
	k.Run(30)
	ms[7].Join()
	joined := k.Now()
	allKnow := func() bool {
		for _, m := range ms {
			if !m.Knows(7) {
				return false
			}
		}
		return len(ms[7].View()) == 8
	}
	for !allKnow() {
		if k.Now() > joined+40 {
			t.Fatalf("views did not converge on the joiner within 40 s of virtual time under 30%% loss")
		}
		k.Run(k.Now() + 1)
	}
	if conv := k.Now() - joined; conv > 30 {
		t.Errorf("convergence took %.0f s — beyond the expected bound under 30%% loss", conv)
	}
}

func TestViewMessageSize(t *testing.T) {
	m := viewMessage{pairs: make([]hbPair, 7)}
	if m.Size() != 1+70 {
		t.Errorf("Size = %d", m.Size())
	}
	if (joinMessage{}).Size() <= 0 {
		t.Error("join size must be positive")
	}
}

func TestConfigDefaults(t *testing.T) {
	k := sim.New(1)
	nw := sim.NewNetwork(k, nil)
	m := New(k, nw, 0, nil, Config{})
	if m.cfg.GossipInterval <= 0 || m.cfg.Fanout < 1 || m.cfg.FailTimeout <= 0 {
		t.Errorf("defaults not applied: %+v", m.cfg)
	}
}

func TestScalabilityOfNetworkLoad(t *testing.T) {
	// §5.2 advantage (1): network load per member stays bounded as the group
	// grows (each member sends Fanout messages per interval regardless of n).
	load := func(n int) float64 {
		k, nw, ms := cluster(9, n, Config{GossipInterval: 1, Fanout: 1, FailTimeout: 10})
		for _, m := range ms {
			m.Join()
		}
		k.Run(100)
		return float64(nw.Stats().Sent) / float64(n)
	}
	l8, l64 := load(8), load(64)
	if l64 > 1.5*l8 {
		t.Errorf("per-member load grew with group size: n=8: %.1f, n=64: %.1f", l8, l64)
	}
}

func BenchmarkMembershipRound64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k, _, ms := cluster(int64(i), 64, DefaultConfig())
		for _, m := range ms {
			m.Join()
		}
		k.Run(50)
	}
}
