// Package member implements the group membership protocol of §5.2: a
// gossip-style protocol inspired by the failure-detection service of van
// Renesse, Minsky and Hayden. Each member maintains a view — the set of
// processes it believes are in the group, with a log of when it last heard
// of each — and periodically gossips heartbeat counters to randomly chosen
// members. New members announce themselves to gossip servers: ordinary
// members of which at least one is guaranteed to be alive at any moment,
// whose main task is to propagate information about newly arrived members.
//
// Consistent views are impossible in asynchronous unreliable systems
// (Chandra et al.), and the paper's algorithm does not need them: the view
// only has to be good enough to pick gossip and load-balancing partners.
package member

import (
	"sort"

	"gossipbnb/internal/sim"
)

// Config tunes the protocol. The paper chooses these "to keep communication
// and the probability of false membership information under some threshold
// values".
type Config struct {
	// GossipInterval is the virtual time between heartbeat gossip rounds.
	GossipInterval float64
	// Fanout is how many random members receive each gossip message.
	Fanout int
	// FailTimeout is how long a member may stay silent (no direct or
	// indirect heartbeat progress) before it is suspected failed and
	// dropped from the view.
	FailTimeout float64
}

// DefaultConfig returns moderate settings: gossip every second, declare
// failure after 10 missed intervals.
func DefaultConfig() Config {
	return Config{GossipInterval: 1, Fanout: 1, FailTimeout: 10}
}

// entry is what a member knows about a peer.
type entry struct {
	heartbeat uint64
	lastHeard float64 // local virtual time of last heartbeat progress
}

// viewMessage carries heartbeat state; joinMessage announces a new member to
// a gossip server.
type viewMessage struct {
	pairs []hbPair
}

type hbPair struct {
	id sim.NodeID
	hb uint64
}

// Size implements sim.Message: ~10 bytes per (id, heartbeat) pair.
func (m viewMessage) Size() int { return 1 + 10*len(m.pairs) }

type joinMessage struct{ id sim.NodeID }

// Size implements sim.Message.
func (m joinMessage) Size() int { return 5 }

// IsProtocolMessage reports whether msg belongs to the membership protocol,
// so applications multiplexing a node's network handler can route it to
// Deliver.
func IsProtocolMessage(msg sim.Message) bool {
	switch msg.(type) {
	case joinMessage, viewMessage:
		return true
	}
	return false
}

// Member is one participant in the membership protocol.
type Member struct {
	id      sim.NodeID
	k       *sim.Kernel
	nw      *sim.Network
	cfg     Config
	servers []sim.NodeID // known gossip servers
	entries map[sim.NodeID]*entry
	// dead records evicted members and the heartbeat they were last seen
	// with, so a stale relay from a slower peer cannot flap them back into
	// the view. A direct join or genuine heartbeat progress clears the entry.
	dead  map[sim.NodeID]uint64
	hb    uint64
	alive bool
	// OnJoin and OnLeave, if non-nil, observe view changes.
	OnJoin  func(sim.NodeID)
	OnLeave func(sim.NodeID)
}

// New creates a member. servers are the well-known gossip servers the member
// contacts on Join; a gossip server passes its own ID. The caller must route
// incoming messages to Deliver.
func New(k *sim.Kernel, nw *sim.Network, id sim.NodeID, servers []sim.NodeID, cfg Config) *Member {
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 1
	}
	if cfg.Fanout < 1 {
		cfg.Fanout = 1
	}
	if cfg.FailTimeout <= 0 {
		cfg.FailTimeout = 10 * cfg.GossipInterval
	}
	return &Member{
		id: id, k: k, nw: nw, cfg: cfg,
		servers: append([]sim.NodeID(nil), servers...),
		entries: map[sim.NodeID]*entry{},
		dead:    map[sim.NodeID]uint64{},
	}
}

// Join enters the group: the member announces itself to every known gossip
// server and starts gossiping heartbeats.
func (m *Member) Join() {
	m.alive = true
	m.entries[m.id] = &entry{heartbeat: 0, lastHeard: m.k.Now()}
	for _, s := range m.servers {
		if s != m.id {
			m.nw.Send(m.id, s, joinMessage{id: m.id})
		}
	}
	m.k.After(m.cfg.GossipInterval, m.round)
}

// Leave exits the group silently; peers will time the member out, exactly as
// if it had failed (§5.2: a process leaves either by leaving or by failing).
func (m *Member) Leave() { m.alive = false }

// Alive reports whether the member is participating.
func (m *Member) Alive() bool { return m.alive }

// View returns the members currently believed alive, in ascending order,
// including the member itself.
func (m *Member) View() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(m.entries))
	for id := range m.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peers returns the view without the member itself — the candidate set for
// gossip and work requests.
func (m *Member) Peers() []sim.NodeID {
	out := m.View()
	for i, id := range out {
		if id == m.id {
			return append(out[:i], out[i+1:]...)
		}
	}
	return out
}

// Knows reports whether id is in the current view.
func (m *Member) Knows(id sim.NodeID) bool {
	_, ok := m.entries[id]
	return ok
}

// Deliver handles an incoming protocol message.
func (m *Member) Deliver(from sim.NodeID, msg sim.Message) {
	if !m.alive {
		return
	}
	switch t := msg.(type) {
	case joinMessage:
		// A join is a direct message from the node itself, so it counts as
		// hearing from it regardless of heartbeat progress.
		m.bump(t.id, 0, true)
	case viewMessage:
		for _, p := range t.pairs {
			m.bump(p.id, p.hb, false)
		}
	}
}

// bump merges one heartbeat observation. Indirect observations refresh
// lastHeard only on strict heartbeat progress: a relayed stale heartbeat
// must not keep a dead member alive forever.
func (m *Member) bump(id sim.NodeID, hb uint64, direct bool) {
	if id == m.id {
		return
	}
	e, ok := m.entries[id]
	if !ok {
		if deadHb, wasDead := m.dead[id]; wasDead && !direct && hb <= deadHb {
			return // stale relay of an evicted member
		}
		delete(m.dead, id)
		m.entries[id] = &entry{heartbeat: hb, lastHeard: m.k.Now()}
		if m.OnJoin != nil {
			m.OnJoin(id)
		}
		return
	}
	if hb > e.heartbeat {
		e.heartbeat = hb
		e.lastHeard = m.k.Now()
	} else if direct {
		e.lastHeard = m.k.Now()
	}
}

// round advances the member's own heartbeat, expires silent peers, and
// gossips the view to Fanout random peers.
func (m *Member) round() {
	if !m.alive || m.nw.Crashed(m.id) {
		return
	}
	m.hb++
	m.entries[m.id].heartbeat = m.hb
	m.entries[m.id].lastHeard = m.k.Now()
	// Expire peers that have made no heartbeat progress within FailTimeout.
	for id, e := range m.entries {
		if id == m.id {
			continue
		}
		if m.k.Now()-e.lastHeard > m.cfg.FailTimeout {
			m.dead[id] = e.heartbeat
			delete(m.entries, id)
			if m.OnLeave != nil {
				m.OnLeave(id)
			}
		}
	}
	peers := m.Peers()
	if len(peers) == 0 {
		// Still isolated: the join announcement may have been lost (§4
		// allows it). Retry the gossip servers until someone answers.
		for _, s := range m.servers {
			if s != m.id {
				m.nw.Send(m.id, s, joinMessage{id: m.id})
			}
		}
	} else {
		msg := m.snapshot()
		for i := 0; i < m.cfg.Fanout; i++ {
			to := peers[m.k.Rand().Intn(len(peers))]
			m.nw.Send(m.id, to, msg)
		}
	}
	m.k.After(m.cfg.GossipInterval, m.round)
}

// snapshot encodes the view as heartbeat pairs, deterministically ordered.
func (m *Member) snapshot() viewMessage {
	pairs := make([]hbPair, 0, len(m.entries))
	for id, e := range m.entries {
		pairs = append(pairs, hbPair{id: id, hb: e.heartbeat})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
	return viewMessage{pairs: pairs}
}
