// Package code implements the tree-based subproblem encoding at the heart of
// the paper's fault-tolerance mechanism (§5.3.1).
//
// A branch-and-bound tree with branching factor 2 decomposes a problem by
// deciding one condition variable per level. A subproblem is therefore fully
// described by the sequence of ⟨variable, branch⟩ pairs on the path from the
// root to its node: the code. Codes are self-contained — together with the
// initial problem data, a code suffices to reconstruct and solve the
// subproblem on any processor — which is what makes loss recovery possible
// without checkpointing process state.
package code

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Decision is a single branching decision: condition variable Var was fixed
// to Branch (0 = left subtree, 1 = right subtree).
type Decision struct {
	Var    uint32
	Branch uint8
}

// Code identifies a node of the B&B tree by the decisions on its root path.
// The empty code identifies the root (the original problem). Codes are value
// types; operations never mutate their receiver.
type Code []Decision

// Root returns the code of the original problem.
func Root() Code { return Code{} }

// IsRoot reports whether c encodes the original problem.
func (c Code) IsRoot() bool { return len(c) == 0 }

// Depth returns the depth of the encoded node (root = 0).
func (c Code) Depth() int { return len(c) }

// Leaf reports the final decision of the code. It panics on the root code.
func (c Code) Leaf() Decision {
	if len(c) == 0 {
		panic("code: Leaf of root code")
	}
	return c[len(c)-1]
}

// Parent returns the code of the node's parent. The result shares no storage
// with c. It panics on the root code.
func (c Code) Parent() Code {
	if len(c) == 0 {
		panic("code: Parent of root code")
	}
	p := make(Code, len(c)-1)
	copy(p, c[:len(c)-1])
	return p
}

// Sibling returns the code of the node's sibling: the same path with the
// final branch flipped. It panics on the root code.
func (c Code) Sibling() Code {
	if len(c) == 0 {
		panic("code: Sibling of root code")
	}
	s := make(Code, len(c))
	copy(s, c)
	s[len(s)-1].Branch ^= 1
	return s
}

// Child returns the code of the child reached by fixing variable v to branch b.
func (c Code) Child(v uint32, b uint8) Code {
	ch := make(Code, len(c)+1)
	copy(ch, c)
	ch[len(c)] = Decision{Var: v, Branch: b & 1}
	return ch
}

// AppendChild appends the decision ⟨v,b⟩ to c in place, like append: the
// result shares c's storage when capacity allows. It is the
// append-into-scratch counterpart of Child for callers that own a reusable
// prefix buffer (the completion-table walks); everyone else should use Child,
// which never aliases.
func (c Code) AppendChild(v uint32, b uint8) Code {
	return append(c, Decision{Var: v, Branch: b & 1})
}

// Join returns the concatenation prefix·suffix as a fresh code: the node
// reached by replaying suffix's decisions below the node prefix encodes. It
// re-anchors subtree-relative codes (ctree.SubtreeCodes output) under their
// prefix. The result shares no storage with either input.
func Join(prefix, suffix Code) Code {
	j := make(Code, 0, len(prefix)+len(suffix))
	return append(append(j, prefix...), suffix...)
}

// Clone returns a copy of c that shares no storage with it.
func (c Code) Clone() Code {
	d := make(Code, len(c))
	copy(d, c)
	return d
}

// Equal reports whether c and d encode the same node.
func (c Code) Equal(d Code) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// IsAncestorOf reports whether c is a proper ancestor of d, i.e. c's decision
// sequence is a proper prefix of d's. The completion of an ancestor implies
// the completion of all of its descendants, which is what lets work-report
// tables discard subsumed codes.
func (c Code) IsAncestorOf(d Code) bool {
	if len(c) >= len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// SiblingOf reports whether c and d are siblings: equal-length codes that
// agree on every decision except the final branch.
func (c Code) SiblingOf(d Code) bool {
	n := len(c)
	if n == 0 || n != len(d) {
		return false
	}
	for i := 0; i < n-1; i++ {
		if c[i] != d[i] {
			return false
		}
	}
	return c[n-1].Var == d[n-1].Var && c[n-1].Branch != d[n-1].Branch
}

// Compare orders codes first by depth, then lexicographically by decisions.
// It returns -1, 0, or +1. The ordering is used only to make report contents
// deterministic; it has no protocol meaning.
func (c Code) Compare(d Code) int {
	switch {
	case len(c) < len(d):
		return -1
	case len(c) > len(d):
		return 1
	}
	for i := range c {
		switch {
		case c[i].Var < d[i].Var:
			return -1
		case c[i].Var > d[i].Var:
			return 1
		case c[i].Branch < d[i].Branch:
			return -1
		case c[i].Branch > d[i].Branch:
			return 1
		}
	}
	return 0
}

// String renders the code in the paper's notation: (<x1,0>,<x2,1>).
// The root code renders as ().
func (c Code) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "<x%d,%d>", d.Var, d.Branch)
	}
	b.WriteByte(')')
	return b.String()
}

// Parse is the inverse of String. It accepts the paper's notation with
// arbitrary interior whitespace.
func Parse(s string) (Code, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return nil, errors.New("code: parse: missing parentheses")
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return Root(), nil
	}
	var c Code
	for _, tok := range strings.Split(inner, ">") {
		tok = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(tok), ","))
		if tok == "" {
			continue
		}
		var v uint32
		var b uint8
		if _, err := fmt.Sscanf(tok, "<x%d,%d", &v, &b); err != nil {
			return nil, fmt.Errorf("code: parse %q: %w", tok, err)
		}
		if b > 1 {
			return nil, fmt.Errorf("code: parse %q: branch must be 0 or 1", tok)
		}
		c = append(c, Decision{Var: v, Branch: b})
	}
	if c == nil {
		c = Root()
	}
	return c, nil
}

// Key returns a compact string usable as a map key. Two codes have equal keys
// iff they are Equal.
func (c Code) Key() string { return string(c.Append(nil)) }

// WireSize returns the number of bytes Append will produce for c. It is the
// size used by the simulator's communication-cost model.
func (c Code) WireSize() int {
	n := uvarintLen(uint64(len(c)))
	for _, d := range c {
		n += uvarintLen(uint64(d.Var)<<1 | uint64(d.Branch))
	}
	return n
}

// Append appends the binary encoding of c to dst and returns the extended
// slice. The format is: uvarint(depth), then per decision
// uvarint(var<<1 | branch). The format is self-delimiting so codes can be
// concatenated in report messages.
func (c Code) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(c)))
	for _, d := range c {
		dst = binary.AppendUvarint(dst, uint64(d.Var)<<1|uint64(d.Branch))
	}
	return dst
}

// EncodeInto encodes c into buf's storage, reusing its capacity: it is
// Append(buf[:0]). Callers that encode in a loop (framing, report flushes)
// keep one buffer alive instead of allocating per message.
func (c Code) EncodeInto(buf []byte) []byte {
	return c.Append(buf[:0])
}

// Decode reads one code from the front of buf, returning the code and the
// number of bytes consumed.
func Decode(buf []byte) (Code, int, error) {
	depth, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, errors.New("code: decode: truncated depth")
	}
	if depth > uint64(len(buf)) { // each decision takes ≥1 byte
		return nil, 0, fmt.Errorf("code: decode: implausible depth %d", depth)
	}
	c := make(Code, 0, depth)
	off := n
	for i := uint64(0); i < depth; i++ {
		w, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, errors.New("code: decode: truncated decision")
		}
		off += n
		c = append(c, Decision{Var: uint32(w >> 1), Branch: uint8(w & 1)})
	}
	return c, off, nil
}

// AppendAll encodes a batch of codes: uvarint(count) followed by each code.
func AppendAll(dst []byte, cs []Code) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cs)))
	for _, c := range cs {
		dst = c.Append(dst)
	}
	return dst
}

// DecodeAll is the inverse of AppendAll. It returns the codes and the number
// of bytes consumed.
func DecodeAll(buf []byte) ([]Code, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, errors.New("code: decode: truncated count")
	}
	if count > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("code: decode: implausible count %d", count)
	}
	off := n
	cs := make([]Code, 0, count)
	for i := uint64(0); i < count; i++ {
		c, n, err := Decode(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		cs = append(cs, c)
	}
	return cs, off, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
