package code

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(pairs ...uint32) Code {
	// mk(v0, b0, v1, b1, ...) builds a code from flat pairs.
	if len(pairs)%2 != 0 {
		panic("mk: odd arg count")
	}
	c := Root()
	for i := 0; i < len(pairs); i += 2 {
		c = c.Child(pairs[i], uint8(pairs[i+1]))
	}
	return c
}

func TestRoot(t *testing.T) {
	r := Root()
	if !r.IsRoot() {
		t.Error("Root().IsRoot() = false")
	}
	if r.Depth() != 0 {
		t.Errorf("Root().Depth() = %d, want 0", r.Depth())
	}
	if got := r.String(); got != "()" {
		t.Errorf("Root().String() = %q, want ()", got)
	}
}

func TestChildParent(t *testing.T) {
	c := mk(1, 0, 2, 1, 5, 0)
	if c.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", c.Depth())
	}
	p := c.Parent()
	want := mk(1, 0, 2, 1)
	if !p.Equal(want) {
		t.Errorf("Parent = %v, want %v", p, want)
	}
	if c.Leaf() != (Decision{Var: 5, Branch: 0}) {
		t.Errorf("Leaf = %v", c.Leaf())
	}
}

func TestPaperExampleString(t *testing.T) {
	// Figure 1 of the paper: (<X1,0>,<X2,1>,<X5,0>).
	c := mk(1, 0, 2, 1, 5, 0)
	if got := c.String(); got != "(<x1,0>,<x2,1>,<x5,0>)" {
		t.Errorf("String() = %q", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Code
		ok   bool
	}{
		{"()", Root(), true},
		{" ( ) ", Root(), true},
		{"(<x1,0>)", mk(1, 0), true},
		{"(<x1,0>,<x2,1>,<x5,0>)", mk(1, 0, 2, 1, 5, 0), true},
		{"( <x1,0> , <x2,1> )", mk(1, 0, 2, 1), true},
		{"<x1,0>", nil, false},
		{"", nil, false},
		{"(<x1,2>)", nil, false},
		{"(<y1,0>)", nil, false},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if tc.ok && err != nil {
			t.Errorf("Parse(%q) error: %v", tc.in, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.in)
			}
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, c := range []Code{Root(), mk(0, 0), mk(7, 1, 3, 0, 9, 1, 2, 0)} {
		got, err := Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.String(), err)
		}
		if !got.Equal(c) {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestSibling(t *testing.T) {
	c := mk(1, 0, 2, 1)
	s := c.Sibling()
	if !s.Equal(mk(1, 0, 2, 0)) {
		t.Errorf("Sibling = %v", s)
	}
	if !c.SiblingOf(s) || !s.SiblingOf(c) {
		t.Error("SiblingOf not symmetric")
	}
	if c.SiblingOf(c) {
		t.Error("code is its own sibling")
	}
	// Same depth, same final var, but differing earlier decision: not siblings.
	d := mk(1, 1, 2, 0)
	if c.SiblingOf(d) {
		t.Errorf("%v and %v reported as siblings", c, d)
	}
	// Same prefix, differing final var: not siblings.
	e := mk(1, 0, 3, 0)
	if c.SiblingOf(e) {
		t.Errorf("%v and %v reported as siblings", c, e)
	}
}

func TestSiblingPanicsOnRoot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sibling of root did not panic")
		}
	}()
	Root().Sibling()
}

func TestParentPanicsOnRoot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Parent of root did not panic")
		}
	}()
	Root().Parent()
}

func TestAncestor(t *testing.T) {
	root := Root()
	a := mk(1, 0)
	b := mk(1, 0, 2, 1)
	c := mk(1, 1)
	if !root.IsAncestorOf(a) || !root.IsAncestorOf(b) {
		t.Error("root should be ancestor of all non-root codes")
	}
	if !a.IsAncestorOf(b) {
		t.Errorf("%v should be ancestor of %v", a, b)
	}
	if a.IsAncestorOf(c) {
		t.Errorf("%v should not be ancestor of %v", a, c)
	}
	if b.IsAncestorOf(a) {
		t.Error("descendant reported as ancestor")
	}
	if a.IsAncestorOf(a) {
		t.Error("code reported as its own ancestor (must be proper)")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Code
		want int
	}{
		{Root(), Root(), 0},
		{Root(), mk(1, 0), -1},
		{mk(1, 0), Root(), 1},
		{mk(1, 0), mk(1, 1), -1},
		{mk(2, 0), mk(1, 1), 1},
		{mk(1, 0, 2, 1), mk(1, 0, 2, 1), 0},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	codes := []Code{
		Root(),
		mk(0, 0),
		mk(1, 0, 2, 1, 5, 0),
		mk(1000000, 1, 2, 0),
	}
	for _, c := range codes {
		buf := c.Append(nil)
		if len(buf) != c.WireSize() {
			t.Errorf("%v: len(Append) = %d, WireSize = %d", c, len(buf), c.WireSize())
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", c, err)
		}
		if n != len(buf) {
			t.Errorf("Decode consumed %d of %d bytes", n, len(buf))
		}
		if !got.Equal(c) {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	// Depth claims 5 decisions but buffer is empty after depth byte.
	if _, _, err := Decode([]byte{5}); err == nil {
		t.Error("Decode(truncated) succeeded")
	}
	if _, _, err := DecodeAll(nil); err == nil {
		t.Error("DecodeAll(nil) succeeded")
	}
	if _, _, err := DecodeAll([]byte{2, 1}); err == nil {
		t.Error("DecodeAll(truncated) succeeded")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	batch := []Code{Root(), mk(1, 0), mk(1, 1, 2, 0), mk(3, 1)}
	buf := AppendAll(nil, batch)
	got, n, err := DecodeAll(buf)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if len(got) != len(batch) {
		t.Fatalf("got %d codes, want %d", len(got), len(batch))
	}
	for i := range batch {
		if !got[i].Equal(batch[i]) {
			t.Errorf("code %d: %v != %v", i, got[i], batch[i])
		}
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]Code{}
	var walk func(c Code, depth int)
	walk = func(c Code, depth int) {
		k := c.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision: %v and %v", prev, c)
		}
		seen[k] = c
		if depth == 0 {
			return
		}
		walk(c.Child(uint32(depth), 0), depth-1)
		walk(c.Child(uint32(depth), 1), depth-1)
	}
	walk(Root(), 6)
	if len(seen) == 0 {
		t.Fatal("walk visited nothing")
	}
}

// randomCode builds a random code of depth ≤ 12 for property tests.
func randomCode(r *rand.Rand) Code {
	c := Root()
	depth := r.Intn(13)
	for i := 0; i < depth; i++ {
		c = c.Child(uint32(r.Intn(1000)), uint8(r.Intn(2)))
	}
	return c
}

func TestPropSiblingInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCode(r)
		if c.IsRoot() {
			return true
		}
		return c.Sibling().Sibling().Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropParentOfChild(t *testing.T) {
	f := func(seed int64, v uint32, b uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCode(r)
		return c.Child(v, b).Parent().Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCode(r)
		got, n, err := Decode(c.Append(nil))
		return err == nil && n == c.WireSize() && got.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompareConsistentWithEqual(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomCode(rand.New(rand.NewSource(s1)))
		b := randomCode(rand.New(rand.NewSource(s2)))
		return (a.Compare(b) == 0) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAncestorTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCode(r)
		b := a.Child(uint32(r.Intn(100)), uint8(r.Intn(2)))
		c := b.Child(uint32(r.Intn(100)), uint8(r.Intn(2)))
		return a.IsAncestorOf(b) && b.IsAncestorOf(c) && a.IsAncestorOf(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := mk(1, 0, 2, 1)
	d := c.Clone()
	d[0].Branch = 1
	if c[0].Branch != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestChildDoesNotAliasParentStorage(t *testing.T) {
	c := mk(1, 0)
	a := c.Child(2, 0)
	b := c.Child(3, 1)
	if a[1] == b[1] {
		t.Fatalf("children collided: %v vs %v", a, b)
	}
	if !a.Parent().Equal(c) || !b.Parent().Equal(c) {
		t.Error("parents corrupted")
	}
}

func TestAppendChild(t *testing.T) {
	// AppendChild is the scratch-buffer variant: same result as Child, but it
	// extends the receiver in place when capacity allows.
	scratch := make(Code, 0, 8)
	scratch = scratch.AppendChild(1, 0).AppendChild(2, 1)
	if !scratch.Equal(mk(1, 0, 2, 1)) {
		t.Fatalf("AppendChild chain = %v", scratch)
	}
	if scratch[1].Branch != 1 {
		t.Error("branch not recorded")
	}
	// Branch is masked to one bit, like Child.
	if c := Root().AppendChild(5, 0xff); c[0].Branch != 1 {
		t.Errorf("branch not masked: %v", c)
	}
	// Truncate-and-reuse must overwrite the old tail, the pattern the table
	// walks rely on.
	scratch = scratch[:1].AppendChild(7, 0)
	if !scratch.Equal(mk(1, 0, 7, 0)) {
		t.Errorf("reused scratch = %v", scratch)
	}
}

func TestEncodeInto(t *testing.T) {
	c := mk(1, 0, 2, 1, 5, 0)
	buf := make([]byte, 0, 64)
	buf = c.EncodeInto(buf)
	if string(buf) != string(c.Append(nil)) {
		t.Fatalf("EncodeInto = % x, Append = % x", buf, c.Append(nil))
	}
	// Reuse overwrites, never appends.
	d := mk(9, 1)
	buf = d.EncodeInto(buf)
	if string(buf) != string(d.Append(nil)) {
		t.Fatalf("reused EncodeInto = % x", buf)
	}
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) || !got.Equal(d) {
		t.Fatalf("round trip: %v %d %v", got, n, err)
	}
}

func BenchmarkAppend(b *testing.B) {
	c := mk(1, 0, 2, 1, 5, 0, 9, 1, 12, 0, 31, 1)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Append(buf[:0])
	}
}

func BenchmarkDecode(b *testing.B) {
	c := mk(1, 0, 2, 1, 5, 0, 9, 1, 12, 0, 31, 1)
	buf := c.Append(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
