// Package dib implements DIB — Finkel and Manber's Distributed
// Implementation of Backtracking (ACM TOPLAS 1987) — as the baseline the
// paper compares against (§3, §5.5). DIB is decentralized and fault
// tolerant, but its failure-recovery bookkeeping is hierarchical:
//
//   - every machine remembers the problems it is responsible for and the
//     machines to which it delegated subproblems;
//   - completion of a problem is reported to the machine the problem came
//     from; a donor whose delegation stays unconfirmed past a timeout redoes
//     the whole delegated subtree itself;
//   - the root of the responsibility hierarchy (machine 0, which adopts the
//     original problem) must be reliable: if it fails, nobody is responsible
//     for the root problem and the computation cannot terminate.
//
// Contrast with the paper's mechanism (internal/dbnb): there every process
// is equally responsible, recovery granularity is individual tree codes
// rather than whole delegated subtrees, and the failure of any subset of
// processes — including the one holding the original problem — is survivable
// as long as one process remains.
package dib

import (
	"gossipbnb/internal/code"
	"gossipbnb/internal/sim"
)

// Config parameterizes a DIB run. Zero fields default like dbnb's.
type Config struct {
	Procs   int
	Seed    int64
	Latency sim.LatencyModel
	Loss    float64
	// Prune enables incumbent-based elimination.
	Prune bool
	// MinPoolToShare / MaxShare mirror dbnb's work-sharing thresholds.
	MinPoolToShare int
	MaxShare       int
	// RequestTimeout / RetryDelay pace the work-request loop.
	RequestTimeout float64
	RetryDelay     float64
	// RedoTimeout is how long a donor waits for a delegation's completion
	// report before redoing the delegated subtree itself.
	RedoTimeout float64
	// Crashes schedules crash-stop failures. Crashing machine 0 violates
	// DIB's reliable-root assumption; the run then fails to terminate,
	// which is precisely the comparison the paper draws.
	Crashes []Crash
	MaxTime float64
}

// Crash schedules a crash-stop failure.
type Crash struct {
	Time float64
	Node int
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.Latency == nil {
		c.Latency = sim.PaperLatency()
	}
	if c.MinPoolToShare <= 0 {
		c.MinPoolToShare = 2
	}
	if c.MaxShare <= 0 {
		c.MaxShare = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 3
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 1
	}
	if c.RedoTimeout <= 0 {
		c.RedoTimeout = 30
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 1e9
	}
	return c
}

// Result summarizes a DIB run.
type Result struct {
	Terminated bool
	Time       float64 // when machine 0 confirmed the root problem
	Optimum    float64
	OptimumOK  bool
	Expanded   int
	Unique     int
	Redundant  int
	Redos      int // delegations redone by their donors
	Net        sim.NetStats
}

// --- messages ---------------------------------------------------------------

type msgRequest struct{ incumbent float64 }

func (msgRequest) Size() int { return 9 }

type msgDeny struct{ incumbent float64 }

func (msgDeny) Size() int { return 9 }

type msgGrant struct {
	problems  []grantProblem
	incumbent float64
}

type grantProblem struct {
	id int64 // delegation id at the donor
	c  code.Code
}

func (m msgGrant) Size() int {
	n := 9
	for _, p := range m.problems {
		n += 8 + p.c.WireSize()
	}
	return n
}

// msgDone confirms completion of delegation id to its donor.
type msgDone struct {
	id        int64
	incumbent float64
}

func (msgDone) Size() int { return 17 }

// msgFinished is machine 0's termination broadcast.
type msgFinished struct{ incumbent float64 }

func (msgFinished) Size() int { return 9 }

// --- node state ---------------------------------------------------------------

// adoption is a problem this machine is responsible for solving.
type adoption struct {
	id          int64 // delegation id at the donor (0 for the root problem)
	donor       sim.NodeID
	root        code.Code
	outstanding int // local active nodes + unconfirmed re-delegations
}

// delegation is a problem this machine gave away and still tracks.
type delegation struct {
	c       code.Code
	idx     int32
	to      sim.NodeID
	adopt   *adoption // whose outstanding count the confirmation decrements
	since   float64
	expired bool
}

// poolItem is one active search node, tagged with its adoption.
type poolItem struct {
	c     code.Code
	idx   int32
	bound float64
	adopt *adoption
}

type pool []poolItem

func (p pool) Len() int            { return len(p) }
func (p pool) Less(i, j int) bool  { return p[i].bound < p[j].bound }
func (p pool) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pool) Push(x interface{}) { *p = append(*p, x.(poolItem)) }
func (p *pool) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = poolItem{}
	*p = old[:n-1]
	return it
}
