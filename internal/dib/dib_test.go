package dib

import (
	"math"
	"math/rand"
	"testing"

	"gossipbnb/internal/btree"
)

func smallTree(seed int64) *btree.Tree {
	r := rand.New(rand.NewSource(seed))
	return btree.Random(r, btree.RandomConfig{
		Size:         301,
		Cost:         btree.CostModel{Mean: 0.05, Sigma: 0.4},
		BoundSpread:  1,
		FeasibleProb: 0.1,
	})
}

func TestSingleMachine(t *testing.T) {
	tr := smallTree(1)
	res := Run(tr, Config{Procs: 1, Seed: 1})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
	if res.Expanded != tr.Size() {
		t.Errorf("Expanded = %d, want %d", res.Expanded, tr.Size())
	}
	if res.Redundant != 0 {
		t.Errorf("Redundant = %d", res.Redundant)
	}
}

func TestParallelNoFailures(t *testing.T) {
	tr := smallTree(2)
	t1 := Run(tr, Config{Procs: 1, Seed: 5}).Time
	res := Run(tr, Config{Procs: 4, Seed: 5})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
	if res.Time >= t1 {
		t.Errorf("no speedup: %g vs %g", res.Time, t1)
	}
	if res.Redundant != 0 {
		t.Errorf("failure-free DIB run did redundant work: %d", res.Redundant)
	}
}

func TestPruning(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := btree.Random(r, btree.RandomConfig{
		Size:         1001,
		Cost:         btree.CostModel{Mean: 0.02},
		BoundSpread:  4,
		FeasibleProb: 0.25,
	})
	full := Run(tr, Config{Procs: 3, Seed: 7})
	pruned := Run(tr, Config{Procs: 3, Seed: 7, Prune: true})
	if !pruned.Terminated || !pruned.OptimumOK {
		t.Fatalf("%+v", pruned)
	}
	if pruned.Expanded >= full.Expanded {
		t.Errorf("pruning did not help: %d >= %d", pruned.Expanded, full.Expanded)
	}
}

func TestWorkerCrashIsRecovered(t *testing.T) {
	// A non-root machine crashes: its donors redo the delegated subtrees.
	tr := smallTree(4)
	res := Run(tr, Config{
		Procs: 4, Seed: 9, RedoTimeout: 8,
		Crashes: []Crash{{Time: 3, Node: 2}},
	})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("worker crash not recovered: %+v", res)
	}
	if res.Redos == 0 {
		t.Error("no delegation was redone despite a crash")
	}
}

func TestMultipleWorkerCrashes(t *testing.T) {
	tr := smallTree(5)
	res := Run(tr, Config{
		Procs: 5, Seed: 11, RedoTimeout: 8,
		Crashes: []Crash{{Time: 2, Node: 1}, {Time: 3, Node: 2}, {Time: 4, Node: 3}, {Time: 5, Node: 4}},
	})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("mass worker crash not recovered: %+v", res)
	}
}

func TestRootCrashIsFatal(t *testing.T) {
	// DIB's defining weakness (§5.5): the root of the recovery hierarchy
	// must be reliable. Crash machine 0 and the run cannot terminate.
	tr := smallTree(6)
	res := Run(tr, Config{
		Procs: 4, Seed: 13, RedoTimeout: 5,
		Crashes: []Crash{{Time: 2, Node: 0}},
		MaxTime: 300,
	})
	if res.Terminated {
		t.Fatal("DIB terminated despite root failure — reliable-root assumption not modeled")
	}
}

func TestCrashLosesDescendantReports(t *testing.T) {
	// §5.5: "the failure of a node affects not only the problems solved
	// locally ... but also the problems given to other nodes, whose
	// completion cannot be reported anymore." A crashed middleman forces
	// redo of work that live machines already finished, so DIB's redundant
	// work exceeds zero even though the dead machine's own work was tiny.
	tr := smallTree(7)
	res := Run(tr, Config{
		Procs: 5, Seed: 15, RedoTimeout: 10,
		Crashes: []Crash{{Time: 4, Node: 1}},
	})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("%+v", res)
	}
	if res.Redundant == 0 && res.Redos == 0 {
		t.Error("middleman crash caused neither redo nor redundancy (suspicious)")
	}
}

func TestDeterministic(t *testing.T) {
	tr := smallTree(8)
	cfg := Config{Procs: 4, Seed: 17, Crashes: []Crash{{Time: 3, Node: 3}}, RedoTimeout: 8}
	a, b := Run(tr, cfg), Run(tr, cfg)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestOptimumUnderLoss(t *testing.T) {
	tr := smallTree(9)
	res := Run(tr, Config{Procs: 4, Seed: 19, Loss: 0.05, RedoTimeout: 10})
	if !res.Terminated || !res.OptimumOK {
		t.Fatalf("loss broke DIB: %+v", res)
	}
	if math.IsInf(res.Optimum, 1) {
		t.Error("no optimum found")
	}
}

func BenchmarkDIB4Procs(b *testing.B) {
	tr := smallTree(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(tr, Config{Procs: 4, Seed: int64(i)})
		if !res.Terminated {
			b.Fatal("did not terminate")
		}
	}
}
