package dib

import (
	"container/heap"
	"math"

	"gossipbnb/internal/btree"
	"gossipbnb/internal/code"
	"gossipbnb/internal/sim"
)

// harness owns one DIB run.
type harness struct {
	cfg      Config
	k        *sim.Kernel
	nw       *sim.Network
	tree     *btree.Tree
	nodes    []*node
	expanded map[string]bool
	redos    int
	doneAt   float64
	finished bool
	optimum  float64
}

// node is one DIB machine.
type node struct {
	id sim.NodeID
	h  *harness

	pool        pool
	adoptions   map[*adoption]bool
	delegations map[int64]*delegation
	nextDelegID int64
	incumbent   float64

	busy       bool
	crashed    bool
	finished   bool
	reqPending bool
	reqWaiting bool
	reqTimer   sim.Event
	expandedN  int
	redundantN int
}

func newDIBNode(id sim.NodeID, h *harness) *node {
	return &node{
		id: id, h: h,
		adoptions:   map[*adoption]bool{},
		delegations: map[int64]*delegation{},
		incumbent:   math.Inf(1),
	}
}

func (n *node) dead() bool { return n.crashed || n.finished }

// loop picks the next activity.
func (n *node) loop() {
	if n.busy || n.dead() {
		return
	}
	cfg := &n.h.cfg
	for len(n.pool) > 0 {
		it := heap.Pop(&n.pool).(poolItem)
		if cfg.Prune && it.bound >= n.incumbent {
			n.finishNode(it.adopt) // eliminated: node fathomed
			continue
		}
		n.expand(it)
		return
	}
	// Idle: before asking for work, redo expired delegations (DIB failure
	// recovery: an idle machine redoes work it is responsible for whose
	// completion was never reported).
	if n.redoExpired() {
		n.loop()
		return
	}
	n.requestWork()
}

// expand pays the node cost, then branches or fathoms.
func (n *node) expand(it poolItem) {
	n.busy = true
	cost := n.h.tree.Nodes[it.idx].Cost
	n.h.k.After(cost, func() {
		n.busy = false
		if n.crashed {
			return
		}
		n.expandedN++
		n.h.noteExpansion(n, it.c)
		tn := &n.h.tree.Nodes[it.idx]
		if tn.Feasible && tn.Bound < n.incumbent {
			n.incumbent = tn.Bound
		}
		if tn.Leaf() {
			n.finishNode(it.adopt)
		} else {
			pushed := 0
			for b := uint8(0); b < 2; b++ {
				childIdx := tn.Children[b]
				childBound := n.h.tree.Nodes[childIdx].Bound
				if n.h.cfg.Prune && childBound >= n.incumbent {
					continue // eliminated at generation: not outstanding
				}
				heap.Push(&n.pool, poolItem{
					c:     it.c.Child(tn.BranchVar, b),
					idx:   childIdx,
					bound: childBound,
					adopt: it.adopt,
				})
				pushed++
			}
			// The node itself is done; its pushed children take its place.
			it.adopt.outstanding += pushed - 1
			if pushed == 0 {
				n.finishNode(it.adopt)
				n.loop()
				return
			}
		}
		n.loop()
	})
}

// finishNode decrements an adoption's outstanding count and, at zero,
// reports completion to the donor.
func (n *node) finishNode(a *adoption) {
	a.outstanding--
	if a.outstanding > 0 {
		return
	}
	delete(n.adoptions, a)
	if a.donor == n.id {
		// The root problem: DIB's termination. Machine 0 broadcasts.
		n.h.rootDone(n)
		return
	}
	n.h.nw.Send(n.id, a.donor, msgDone{id: a.id, incumbent: n.incumbent})
}

// redoExpired re-adopts the oldest delegation whose completion report is
// overdue. Returns true if something was re-queued.
func (n *node) redoExpired() bool {
	now := n.h.k.Now()
	var oldest *delegation
	var oldestID int64
	for id, d := range n.delegations {
		if !d.expired && now-d.since >= n.h.cfg.RedoTimeout {
			if oldest == nil || d.since < oldest.since {
				oldest, oldestID = d, id
			}
		}
	}
	if oldest == nil {
		return false
	}
	// Redo the whole delegated subtree locally. The delegation record is
	// dropped: a late confirmation from a slow (not dead) delegatee is
	// ignored, and its work wasted — DIB's coarse recovery granularity.
	delete(n.delegations, oldestID)
	n.h.redos++
	heap.Push(&n.pool, poolItem{
		c:     oldest.c,
		idx:   oldest.idx,
		bound: n.h.tree.Nodes[oldest.idx].Bound,
		adopt: oldest.adopt,
	})
	return true
}

// requestWork asks a random machine for problems.
func (n *node) requestWork() {
	if n.dead() || n.reqPending || n.reqWaiting {
		return
	}
	if n.h.cfg.Procs == 1 {
		return // alone: either working or done
	}
	peers := n.h.cfg.Procs - 1
	target := n.h.k.Rand().Intn(peers)
	if sim.NodeID(target) >= n.id {
		target++
	}
	n.h.nw.Send(n.id, sim.NodeID(target), msgRequest{incumbent: n.incumbent})
	n.reqPending = true
	n.reqTimer = n.h.k.After(n.h.cfg.RequestTimeout, func() {
		if n.dead() {
			return
		}
		n.reqPending = false
		n.reqFailed()
	})
}

func (n *node) reqFailed() {
	if n.reqWaiting {
		return
	}
	n.reqWaiting = true
	n.h.k.After(n.h.cfg.RetryDelay, func() {
		n.reqWaiting = false
		if !n.dead() && !n.busy {
			n.loop()
		}
	})
}

// deliver handles one message (DIB machines also defer handling to idle
// moments; for simplicity messages are handled immediately — DIB's
// correctness does not depend on the deferral).
func (n *node) deliver(from sim.NodeID, msg sim.Message) {
	if n.crashed {
		return
	}
	switch t := msg.(type) {
	case msgRequest:
		n.observe(t.incumbent)
		n.handleRequest(from)
	case msgGrant:
		n.observe(t.incumbent)
		n.handleGrant(from, t)
	case msgDeny:
		n.observe(t.incumbent)
		if n.reqPending {
			n.reqPending = false
			n.reqTimer.Cancel()
			n.reqFailed()
		}
	case msgDone:
		n.observe(t.incumbent)
		if d, ok := n.delegations[t.id]; ok {
			delete(n.delegations, t.id)
			n.finishNode(d.adopt)
		}
	case msgFinished:
		n.observe(t.incumbent)
		n.finished = true
	}
	if !n.busy && !n.dead() {
		n.loop()
	}
}

func (n *node) observe(v float64) {
	if v < n.incumbent {
		n.incumbent = v
	}
}

// handleRequest grants half the pool, recording each granted problem as a
// delegation whose completion must be reported back.
func (n *node) handleRequest(from sim.NodeID) {
	cfg := &n.h.cfg
	if n.finished {
		n.h.nw.Send(n.id, from, msgFinished{incumbent: n.incumbent})
		return
	}
	if len(n.pool) < cfg.MinPoolToShare {
		n.h.nw.Send(n.id, from, msgDeny{incumbent: n.incumbent})
		return
	}
	k := len(n.pool) / 2
	if k > cfg.MaxShare {
		k = cfg.MaxShare
	}
	var probs []grantProblem
	for i := 0; i < k; i++ {
		it := heap.Pop(&n.pool).(poolItem)
		n.nextDelegID++
		id := n.nextDelegID
		n.delegations[id] = &delegation{
			c: it.c, idx: it.idx, to: from, adopt: it.adopt, since: n.h.k.Now(),
		}
		probs = append(probs, grantProblem{id: id, c: it.c})
	}
	n.h.nw.Send(n.id, from, msgGrant{problems: probs, incumbent: n.incumbent})
}

// handleGrant adopts the delegated problems.
func (n *node) handleGrant(from sim.NodeID, g msgGrant) {
	if n.reqPending {
		n.reqPending = false
		n.reqTimer.Cancel()
	}
	for _, p := range g.problems {
		idx, ok := n.h.tree.Locate(p.c)
		if !ok {
			continue
		}
		a := &adoption{id: p.id, donor: from, root: p.c, outstanding: 1}
		n.adoptions[a] = true
		heap.Push(&n.pool, poolItem{c: p.c, idx: idx, bound: n.h.tree.Nodes[idx].Bound, adopt: a})
	}
}

// --- harness -------------------------------------------------------------------

func (h *harness) noteExpansion(n *node, c code.Code) {
	key := c.Key()
	if h.expanded[key] {
		n.redundantN++
		return
	}
	h.expanded[key] = true
}

// rootDone fires when machine 0's root adoption completes.
func (h *harness) rootDone(n *node) {
	if h.finished {
		return
	}
	h.finished = true
	h.doneAt = h.k.Now()
	h.optimum = n.incumbent
	n.finished = true
	for i := range h.nodes {
		if sim.NodeID(i) != n.id {
			h.nw.Send(n.id, sim.NodeID(i), msgFinished{incumbent: n.incumbent})
		}
	}
}

// Run simulates DIB solving the given basic tree.
func Run(tree *btree.Tree, cfg Config) Result {
	cfg = cfg.withDefaults()
	h := &harness{
		cfg:      cfg,
		k:        sim.New(cfg.Seed),
		tree:     tree,
		expanded: make(map[string]bool, tree.Size()),
		optimum:  math.Inf(1),
	}
	h.nw = sim.NewNetwork(h.k, cfg.Latency)
	h.nw.SetLoss(cfg.Loss)
	h.nodes = make([]*node, cfg.Procs)
	for i := range h.nodes {
		h.nodes[i] = newDIBNode(sim.NodeID(i), h)
		n := h.nodes[i]
		h.nw.Register(sim.NodeID(i), n.deliver)
	}
	// Machine 0 adopts the original problem and is its own donor.
	rootAdopt := &adoption{id: 0, donor: 0, root: code.Root(), outstanding: 1}
	h.nodes[0].adoptions[rootAdopt] = true
	h.nodes[0].pool = pool{{c: code.Root(), idx: 0, bound: tree.Nodes[0].Bound, adopt: rootAdopt}}
	for i := range h.nodes {
		n := h.nodes[i]
		h.k.At(0, n.loop)
	}
	for _, c := range cfg.Crashes {
		c := c
		if c.Node < 0 || c.Node >= cfg.Procs {
			continue
		}
		h.k.At(c.Time, func() {
			h.nw.Crash(sim.NodeID(c.Node))
			h.nodes[c.Node].crashed = true
		})
	}
	h.k.Run(cfg.MaxTime)

	res := Result{
		Terminated: h.finished,
		Time:       h.doneAt,
		Optimum:    h.optimum,
		Unique:     len(h.expanded),
		Redos:      h.redos,
		Net:        h.nw.Stats(),
	}
	for _, n := range h.nodes {
		res.Expanded += n.expandedN
	}
	res.Redundant = res.Expanded - res.Unique
	res.OptimumOK = res.Terminated && res.Optimum == tree.Stats().Optimum
	return res
}
