// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the DESIGN.md ablations. Each bench runs the same code path as
// `cmd/figures`; the Table 1 / Figure 4 benches use a size-scaled workload
// (same 3.47 s granularity, fewer nodes) so an iteration stays in benchmark
// territory — run `go run ./cmd/figures -all` for the paper-size rows.
package gossipbnb

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"gossipbnb/internal/exp"
	"gossipbnb/internal/protocol"
)

// BenchmarkFigure3 regenerates the execution-time breakdown of Figure 3
// (1..8 processors, ~3,500-node problem at 0.01 s/node).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Figure3(1)
		if len(rows) != 8 || !rows[0].OptimumOK {
			b.Fatal("figure 3 regeneration failed")
		}
	}
}

// BenchmarkTable1 regenerates Table 1's measurement at its smallest and
// largest processor counts on a size-scaled Table 1 workload.
func BenchmarkTable1(b *testing.B) {
	w := exp.ScaledLargeWorkload(1, 8001)
	for _, procs := range []int{10, 100} {
		procs := procs
		b.Run(benchName("procs", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := exp.Measure(w, procs, 1)
				if !row.OptimumOK {
					b.Fatal("wrong optimum")
				}
			}
		})
	}
}

// BenchmarkFigure4 regenerates the Figure 4 sweep shape (execution time and
// communication vs processors) on the scaled workload.
func BenchmarkFigure4(b *testing.B) {
	w := exp.ScaledLargeWorkload(1, 8001)
	for i := 0; i < b.N; i++ {
		prev := 0.0
		for _, procs := range []int{10, 40, 70, 100} {
			row := exp.Measure(w, procs, 1)
			if !row.OptimumOK {
				b.Fatal("wrong optimum")
			}
			if prev != 0 && row.ExecSeconds > prev*1.3 {
				b.Fatalf("execution time not shrinking with processors: %g after %g",
					row.ExecSeconds, prev)
			}
			prev = row.ExecSeconds
		}
	}
}

// BenchmarkFigure5 regenerates the failure-free Gantt run of Figure 5.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := exp.Figure5(1)
		if !g.Result.OptimumOK || g.Log.Len() == 0 {
			b.Fatal("figure 5 regeneration failed")
		}
	}
}

// BenchmarkFigure6 regenerates the crash-and-recover Gantt run of Figure 6
// (two of three processors crash at ~85%).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := exp.Figure6(1)
		if !g.Result.Terminated || !g.Result.OptimumOK {
			b.Fatal("figure 6 survivor failed")
		}
	}
}

// BenchmarkGranularity regenerates the §6.3.1 granularity sweep.
func BenchmarkGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Granularity(1)
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFaultTolerance regenerates the crash-scenario matrix verifying
// that losing up to all but one process preserves the solution.
func BenchmarkFaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exp.FaultTolerance(1) {
			if !r.Terminated || !r.OptimumOK {
				b.Fatalf("scenario failed: %+v", r)
			}
		}
	}
}

// BenchmarkDIBComparison regenerates the §5.5 comparison with DIB.
func BenchmarkDIBComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.DIBComparison(1)
		if len(rows) == 0 {
			b.Fatal("empty comparison")
		}
	}
}

// BenchmarkCentralized regenerates the §3 centralized-baseline comparison.
func BenchmarkCentralized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Centralized(1)
		if len(rows) == 0 {
			b.Fatal("empty comparison")
		}
	}
}

// BenchmarkMembership regenerates the §5.2 membership measurements.
func BenchmarkMembership(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Membership(1)
		if len(rows) == 0 {
			b.Fatal("empty measurement")
		}
	}
}

// BenchmarkAblationReportPolicy sweeps the work-report batch and fanout.
func BenchmarkAblationReportPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.AblationReportPolicy(1)) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// BenchmarkAblationRecoveryPatience sweeps the failure-suspicion trigger.
func BenchmarkAblationRecoveryPatience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.AblationRecoveryPatience(1)) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// BenchmarkAblationCompression measures report compression vs load.
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.AblationCompression(1)) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// BenchmarkAblationSelectRule compares local selection disciplines.
func BenchmarkAblationSelectRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.AblationSelectRule(1)) != 2 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkAblationAdaptiveReports compares fixed and adaptive flushing.
func BenchmarkAblationAdaptiveReports(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.AblationAdaptiveReports(1)) != 6 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkRealKnapsackSim solves a knapsack instance from initial data only
// through the deterministic simulator — the code-driven expander's hot path
// (state replay, bound computation, per-code cost model).
func BenchmarkRealKnapsackSim(b *testing.B) {
	k := RandomKnapsack(rand.New(rand.NewSource(11)), 16)
	seq := SolveProblem(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunProblemRef(k, seq, SimConfig{Procs: 4, Seed: 11, Prune: true})
		if !res.OptimumOK {
			b.Fatal("wrong optimum")
		}
	}
}

// BenchmarkRealKnapsackLive solves the same class of instance on a real
// goroutine cluster burning actual CPU per expansion.
func BenchmarkRealKnapsackLive(b *testing.B) {
	k := RandomKnapsack(rand.New(rand.NewSource(12)), 18)
	seq := SolveProblem(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := NewLiveProblemClusterRef(k, seq, LiveConfig{
			Nodes: 4, Seed: 12, Prune: true, Timeout: 60 * time.Second,
		})
		if res := cl.Run(); !res.OptimumOK {
			b.Fatal("wrong optimum")
		}
	}
}

// BenchmarkSelfHealing measures the failure-free price of the self-healing
// machinery on a real TCP cluster. Every frame already pays the CRC32-C
// trailer unconditionally; detector=off is that baseline, detector=on adds
// heartbeat tracking and idle-link pings at thresholds no healthy run
// crosses. The two must stay within gate noise of each other — the paper's
// argument needs failure detection to cost nothing when nothing fails —
// and the run itself asserts that a clean cluster produces zero
// suspicions, zero exclusions, and zero corrupt frames.
func BenchmarkSelfHealing(b *testing.B) {
	k := RandomKnapsack(rand.New(rand.NewSource(12)), 18)
	seq := SolveProblem(k)
	run := func(b *testing.B, suspect time.Duration) {
		for i := 0; i < b.N; i++ {
			nw, err := NewTCPNetwork(4)
			if err != nil {
				b.Fatal(err)
			}
			cl := NewLiveProblemClusterRef(k, seq, LiveConfig{
				Nodes: 4, Seed: 12, Prune: true, Network: nw,
				SuspectAfter: suspect,
				Timeout:      60 * time.Second,
			})
			res := cl.Run()
			nw.Close()
			if !res.Terminated || !res.OptimumOK {
				b.Fatal("wrong optimum")
			}
			if res.Net.Corrupt != 0 {
				b.Fatalf("clean TCP run rejected %d frames", res.Net.Corrupt)
			}
			if res.Health.Suspicions != 0 || res.Health.Exclusions != 0 {
				b.Fatalf("failure-free run tripped the detector: %+v", res.Health)
			}
		}
	}
	b.Run("detector=off", func(b *testing.B) { run(b, 0) })
	b.Run("detector=on", func(b *testing.B) { run(b, 500*time.Millisecond) })
}

// stressRun is one scale-tier iteration: a deep (30-item) knapsack solved
// from initial data on procs simulated processes. Most processes starve,
// probe, gossip tables, and chase the final termination broadcast, so the
// run leans on report flushes, table merges, wire-size queries, peer-view
// fan-out — and, sharded, on the mesh barrier and the ring-range broadcast.
func stressRun(b *testing.B, k *Knapsack, seq SolveResult, procs, shards int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := RunProblemRef(k, seq, SimConfig{Procs: procs, Seed: 7, Prune: true, Shards: shards})
		if !res.Terminated || !res.OptimumOK {
			b.Fatal("stress run failed to terminate at the optimum")
		}
	}
}

// BenchmarkStress1000 is the 1000-process scale tier, measured on the
// legacy serial kernel (the pre-sharding code path, shards=0), the sharded
// substrate's serial baseline (shards=1), and the parallel mesh at one
// shard per CPU. Sub-benchmark names avoid runtime.NumCPU so baselines
// compare across machines (the -N GOMAXPROCS suffix is stripped by
// cmd/benchsnap).
func BenchmarkStress1000(b *testing.B) {
	k := RandomKnapsack(rand.New(rand.NewSource(7)), 30)
	seq := SolveProblem(k)
	b.Run("shards=0", func(b *testing.B) { stressRun(b, k, seq, 1000, 0) })
	b.Run("shards=1", func(b *testing.B) { stressRun(b, k, seq, 1000, 1) })
	b.Run("shards=cpu", func(b *testing.B) { stressRun(b, k, seq, 1000, runtime.GOMAXPROCS(0)) })
}

// BenchmarkStress10000 is the 10,000-process tier the sharded substrate
// unlocks: the legacy kernel's procs² termination storm (~100M pending
// events at this size) made it unrunnable; the ring-range broadcast plus
// done-node fast drop bring one full solve to seconds.
func BenchmarkStress10000(b *testing.B) {
	k := RandomKnapsack(rand.New(rand.NewSource(7)), 30)
	seq := SolveProblem(k)
	b.Run("shards=1", func(b *testing.B) { stressRun(b, k, seq, 10000, 1) })
	b.Run("shards=cpu", func(b *testing.B) { stressRun(b, k, seq, 10000, runtime.GOMAXPROCS(0)) })
}

// TestStress100000Smoke boots 100,000 simulated processes on the sharded
// substrate and runs a capped virtual-time window of a tree replay: work
// seeds at one process and spreads while everyone else starves, probes and
// retries — a pure scale smoke of registration, boot stagger, the request/
// retry machinery and the mesh barrier at 100× the paper's largest pool.
// No termination is expected inside the cap.
func TestStress100000Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-process smoke skipped in -short mode")
	}
	r := rand.New(rand.NewSource(31))
	tr := RandomTree(r, RandomTreeConfig{
		Size: 200001, Cost: CostModel{Mean: 0.05, Sigma: 0.3},
		BoundSpread: 1, FeasibleProb: 0.05,
	})
	res := Run(tr, SimConfig{
		Procs: 100000, Seed: 31, Shards: runtime.GOMAXPROCS(0), MaxTime: 2,
	})
	if res.Terminated {
		t.Error("100k smoke terminated inside a 2-virtual-second cap — workload misconfigured")
	}
	if res.Expanded == 0 {
		t.Error("no work expanded: the pool never booted")
	}
	if res.Events < 100000 {
		t.Errorf("only %d events fired across 100k processes", res.Events)
	}
}

// BenchmarkMultiInstance multiplexes four concurrent problem instances over
// one simulated 8-process cluster — the instance-scoped protocol's hot path
// (tagged wire codec, mux routing, per-instance termination, reaping cores
// back to the pools) — and checks every instance against its own sequential
// optimum.
func BenchmarkMultiInstance(b *testing.B) {
	insts := make([]SimInstance, 4)
	for i := range insts {
		r := rand.New(rand.NewSource(int64(21 + i*1_000_003)))
		insts[i] = SimInstance{
			Problem:   RandomKnapsack(r, 13),
			Seed:      int64(22 + i),
			StartTime: float64(i) * 5,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunInstances(SimConfig{Procs: 8, Seed: 21, Prune: true, Instances: insts})
		if !res.Terminated {
			b.Fatal("multi-instance run did not terminate")
		}
		for _, ir := range res.Instances {
			if !ir.OptimumOK {
				b.Fatalf("instance %d missed its sequential optimum", ir.ID)
			}
		}
	}
}

// BenchmarkRealQAPSim solves a QAP instance from initial data through the
// simulator under depth-first selection.
func BenchmarkRealQAPSim(b *testing.B) {
	q := RandomQAP(rand.New(rand.NewSource(13)), 6)
	seq := SolveProblem(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunProblemRef(q, seq, SimConfig{Procs: 4, Seed: 13, Prune: true, Select: SelectDepthFirst})
		if !res.OptimumOK {
			b.Fatal("wrong optimum")
		}
	}
}

// BenchmarkReportBytes measures the wire cost of completion propagation on
// the scaled Table 1 workload in both gossip modes, reporting it as a custom
// wire-B/op metric that cmd/benchsnap snapshots and gates (-gate-bytes).
// The run is fully seeded, so the metric is exact, machine-independent, and
// the diff-mode byte reduction stays a recorded artifact rather than a
// one-off measurement.
func BenchmarkReportBytes(b *testing.B) {
	w := exp.ScaledLargeWorkload(1, 8001)
	for _, mode := range []struct {
		name string
		diff bool
	}{{"mode=frontier", false}, {"mode=diff", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var wire int64
			for i := 0; i < b.N; i++ {
				res := Run(w.Tree, SimConfig{
					Procs: 100, Seed: 1, RecoveryQuiet: 120, DiffGossip: mode.diff,
				})
				if !res.Terminated || !res.OptimumOK {
					b.Fatal("benchmark run failed to terminate at the optimum")
				}
				wire += res.Net.KindBytes[protocol.KindReport] +
					res.Net.KindBytes[protocol.KindTable] +
					res.Net.KindBytes[protocol.KindDigestReport] +
					res.Net.KindBytes[protocol.KindSubtreeRequest] +
					res.Net.KindBytes[protocol.KindSubtreeReply]
			}
			b.ReportMetric(float64(wire)/float64(b.N), "wire-B/op")
		})
	}
}

func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s=%d", prefix, n)
}
